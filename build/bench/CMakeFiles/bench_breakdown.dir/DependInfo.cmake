
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_breakdown.cpp" "bench/CMakeFiles/bench_breakdown.dir/bench_breakdown.cpp.o" "gcc" "bench/CMakeFiles/bench_breakdown.dir/bench_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/npb/CMakeFiles/orca_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/tool/CMakeFiles/orca_tool.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/orca_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/orca_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/unwind/CMakeFiles/orca_unwind.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/orca_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/orca_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/orca_collector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
