file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_npb_mz.dir/bench_fig6_npb_mz.cpp.o"
  "CMakeFiles/bench_fig6_npb_mz.dir/bench_fig6_npb_mz.cpp.o.d"
  "bench_fig6_npb_mz"
  "bench_fig6_npb_mz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_npb_mz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
