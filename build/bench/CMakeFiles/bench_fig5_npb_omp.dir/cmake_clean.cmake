file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_npb_omp.dir/bench_fig5_npb_omp.cpp.o"
  "CMakeFiles/bench_fig5_npb_omp.dir/bench_fig5_npb_omp.cpp.o.d"
  "bench_fig5_npb_omp"
  "bench_fig5_npb_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_npb_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
