# Empty compiler generated dependencies file for bench_fig5_npb_omp.
# This may be replaced when dependencies are built.
