# Empty compiler generated dependencies file for bench_callstack.
# This may be replaced when dependencies are built.
