file(REMOVE_RECURSE
  "CMakeFiles/bench_callstack.dir/bench_callstack.cpp.o"
  "CMakeFiles/bench_callstack.dir/bench_callstack.cpp.o.d"
  "bench_callstack"
  "bench_callstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_callstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
