# Empty dependencies file for bench_fig4_epcc.
# This may be replaced when dependencies are built.
