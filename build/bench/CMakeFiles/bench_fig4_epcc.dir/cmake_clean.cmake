file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_epcc.dir/bench_fig4_epcc.cpp.o"
  "CMakeFiles/bench_fig4_epcc.dir/bench_fig4_epcc.cpp.o.d"
  "bench_fig4_epcc"
  "bench_fig4_epcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_epcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
