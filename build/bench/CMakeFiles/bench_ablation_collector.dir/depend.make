# Empty dependencies file for bench_ablation_collector.
# This may be replaced when dependencies are built.
