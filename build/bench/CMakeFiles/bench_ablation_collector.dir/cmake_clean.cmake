file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collector.dir/bench_ablation_collector.cpp.o"
  "CMakeFiles/bench_ablation_collector.dir/bench_ablation_collector.cpp.o.d"
  "bench_ablation_collector"
  "bench_ablation_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
