file(REMOVE_RECURSE
  "CMakeFiles/offline_analyze.dir/offline_analyze.cpp.o"
  "CMakeFiles/offline_analyze.dir/offline_analyze.cpp.o.d"
  "offline_analyze"
  "offline_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
