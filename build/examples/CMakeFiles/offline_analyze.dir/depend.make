# Empty dependencies file for offline_analyze.
# This may be replaced when dependencies are built.
