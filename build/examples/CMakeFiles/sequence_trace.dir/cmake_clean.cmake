file(REMOVE_RECURSE
  "CMakeFiles/sequence_trace.dir/sequence_trace.cpp.o"
  "CMakeFiles/sequence_trace.dir/sequence_trace.cpp.o.d"
  "sequence_trace"
  "sequence_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
