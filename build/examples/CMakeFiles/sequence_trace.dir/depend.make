# Empty dependencies file for sequence_trace.
# This may be replaced when dependencies are built.
