# Empty compiler generated dependencies file for user_model_profile.
# This may be replaced when dependencies are built.
