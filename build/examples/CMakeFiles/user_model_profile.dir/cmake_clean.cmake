file(REMOVE_RECURSE
  "CMakeFiles/user_model_profile.dir/user_model_profile.cpp.o"
  "CMakeFiles/user_model_profile.dir/user_model_profile.cpp.o.d"
  "user_model_profile"
  "user_model_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_model_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
