file(REMOVE_RECURSE
  "CMakeFiles/hybrid_mz.dir/hybrid_mz.cpp.o"
  "CMakeFiles/hybrid_mz.dir/hybrid_mz.cpp.o.d"
  "hybrid_mz"
  "hybrid_mz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_mz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
