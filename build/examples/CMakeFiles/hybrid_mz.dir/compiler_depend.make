# Empty compiler generated dependencies file for hybrid_mz.
# This may be replaced when dependencies are built.
