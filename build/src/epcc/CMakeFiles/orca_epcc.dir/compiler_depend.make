# Empty compiler generated dependencies file for orca_epcc.
# This may be replaced when dependencies are built.
