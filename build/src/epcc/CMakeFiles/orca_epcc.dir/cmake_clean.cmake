file(REMOVE_RECURSE
  "CMakeFiles/orca_epcc.dir/syncbench.cpp.o"
  "CMakeFiles/orca_epcc.dir/syncbench.cpp.o.d"
  "liborca_epcc.a"
  "liborca_epcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_epcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
