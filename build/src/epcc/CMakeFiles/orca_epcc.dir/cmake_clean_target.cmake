file(REMOVE_RECURSE
  "liborca_epcc.a"
)
