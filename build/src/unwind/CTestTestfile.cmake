# CMake generated Testfile for 
# Source directory: /root/repo/src/unwind
# Build directory: /root/repo/build/src/unwind
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
