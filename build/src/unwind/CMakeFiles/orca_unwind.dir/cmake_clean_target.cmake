file(REMOVE_RECURSE
  "liborca_unwind.a"
)
