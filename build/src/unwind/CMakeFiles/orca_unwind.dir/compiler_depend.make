# Empty compiler generated dependencies file for orca_unwind.
# This may be replaced when dependencies are built.
