file(REMOVE_RECURSE
  "CMakeFiles/orca_unwind.dir/backtrace.cpp.o"
  "CMakeFiles/orca_unwind.dir/backtrace.cpp.o.d"
  "CMakeFiles/orca_unwind.dir/symbolize.cpp.o"
  "CMakeFiles/orca_unwind.dir/symbolize.cpp.o.d"
  "CMakeFiles/orca_unwind.dir/user_model.cpp.o"
  "CMakeFiles/orca_unwind.dir/user_model.cpp.o.d"
  "liborca_unwind.a"
  "liborca_unwind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_unwind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
