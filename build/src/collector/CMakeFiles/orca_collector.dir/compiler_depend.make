# Empty compiler generated dependencies file for orca_collector.
# This may be replaced when dependencies are built.
