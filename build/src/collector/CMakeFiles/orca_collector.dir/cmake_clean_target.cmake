file(REMOVE_RECURSE
  "liborca_collector.a"
)
