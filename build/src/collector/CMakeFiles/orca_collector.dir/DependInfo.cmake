
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collector/dispatch.cpp" "src/collector/CMakeFiles/orca_collector.dir/dispatch.cpp.o" "gcc" "src/collector/CMakeFiles/orca_collector.dir/dispatch.cpp.o.d"
  "/root/repo/src/collector/message.cpp" "src/collector/CMakeFiles/orca_collector.dir/message.cpp.o" "gcc" "src/collector/CMakeFiles/orca_collector.dir/message.cpp.o.d"
  "/root/repo/src/collector/names.cpp" "src/collector/CMakeFiles/orca_collector.dir/names.cpp.o" "gcc" "src/collector/CMakeFiles/orca_collector.dir/names.cpp.o.d"
  "/root/repo/src/collector/registry.cpp" "src/collector/CMakeFiles/orca_collector.dir/registry.cpp.o" "gcc" "src/collector/CMakeFiles/orca_collector.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
