file(REMOVE_RECURSE
  "CMakeFiles/orca_collector.dir/dispatch.cpp.o"
  "CMakeFiles/orca_collector.dir/dispatch.cpp.o.d"
  "CMakeFiles/orca_collector.dir/message.cpp.o"
  "CMakeFiles/orca_collector.dir/message.cpp.o.d"
  "CMakeFiles/orca_collector.dir/names.cpp.o"
  "CMakeFiles/orca_collector.dir/names.cpp.o.d"
  "CMakeFiles/orca_collector.dir/registry.cpp.o"
  "CMakeFiles/orca_collector.dir/registry.cpp.o.d"
  "liborca_collector.a"
  "liborca_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
