# Empty dependencies file for orca_mpi.
# This may be replaced when dependencies are built.
