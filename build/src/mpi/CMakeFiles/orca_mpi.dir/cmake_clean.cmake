file(REMOVE_RECURSE
  "CMakeFiles/orca_mpi.dir/minimpi.cpp.o"
  "CMakeFiles/orca_mpi.dir/minimpi.cpp.o.d"
  "liborca_mpi.a"
  "liborca_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
