file(REMOVE_RECURSE
  "liborca_mpi.a"
)
