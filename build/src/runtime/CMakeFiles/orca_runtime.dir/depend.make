# Empty dependencies file for orca_runtime.
# This may be replaced when dependencies are built.
