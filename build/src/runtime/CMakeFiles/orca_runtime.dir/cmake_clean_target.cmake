file(REMOVE_RECURSE
  "liborca_runtime.a"
)
