
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/config.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/config.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/config.cpp.o.d"
  "/root/repo/src/runtime/ompc_api.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/ompc_api.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/ompc_api.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/sync.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/sync.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/sync.cpp.o.d"
  "/root/repo/src/runtime/tasking.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/tasking.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/tasking.cpp.o.d"
  "/root/repo/src/runtime/worksharing.cpp" "src/runtime/CMakeFiles/orca_runtime.dir/worksharing.cpp.o" "gcc" "src/runtime/CMakeFiles/orca_runtime.dir/worksharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collector/CMakeFiles/orca_collector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
