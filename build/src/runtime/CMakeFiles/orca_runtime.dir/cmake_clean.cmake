file(REMOVE_RECURSE
  "CMakeFiles/orca_runtime.dir/config.cpp.o"
  "CMakeFiles/orca_runtime.dir/config.cpp.o.d"
  "CMakeFiles/orca_runtime.dir/ompc_api.cpp.o"
  "CMakeFiles/orca_runtime.dir/ompc_api.cpp.o.d"
  "CMakeFiles/orca_runtime.dir/runtime.cpp.o"
  "CMakeFiles/orca_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/orca_runtime.dir/sync.cpp.o"
  "CMakeFiles/orca_runtime.dir/sync.cpp.o.d"
  "CMakeFiles/orca_runtime.dir/tasking.cpp.o"
  "CMakeFiles/orca_runtime.dir/tasking.cpp.o.d"
  "CMakeFiles/orca_runtime.dir/worksharing.cpp.o"
  "CMakeFiles/orca_runtime.dir/worksharing.cpp.o.d"
  "liborca_runtime.a"
  "liborca_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
