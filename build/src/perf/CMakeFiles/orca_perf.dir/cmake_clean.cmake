file(REMOVE_RECURSE
  "CMakeFiles/orca_perf.dir/counter.cpp.o"
  "CMakeFiles/orca_perf.dir/counter.cpp.o.d"
  "CMakeFiles/orca_perf.dir/psx.cpp.o"
  "CMakeFiles/orca_perf.dir/psx.cpp.o.d"
  "CMakeFiles/orca_perf.dir/samples.cpp.o"
  "CMakeFiles/orca_perf.dir/samples.cpp.o.d"
  "CMakeFiles/orca_perf.dir/trace.cpp.o"
  "CMakeFiles/orca_perf.dir/trace.cpp.o.d"
  "liborca_perf.a"
  "liborca_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
