file(REMOVE_RECURSE
  "liborca_perf.a"
)
