# Empty dependencies file for orca_perf.
# This may be replaced when dependencies are built.
