file(REMOVE_RECURSE
  "liborca_tool.a"
)
