# Empty dependencies file for orca_tool.
# This may be replaced when dependencies are built.
