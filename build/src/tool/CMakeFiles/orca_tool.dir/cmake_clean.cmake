file(REMOVE_RECURSE
  "CMakeFiles/orca_tool.dir/client.cpp.o"
  "CMakeFiles/orca_tool.dir/client.cpp.o.d"
  "CMakeFiles/orca_tool.dir/collector_tool.cpp.o"
  "CMakeFiles/orca_tool.dir/collector_tool.cpp.o.d"
  "CMakeFiles/orca_tool.dir/tracer.cpp.o"
  "CMakeFiles/orca_tool.dir/tracer.cpp.o.d"
  "liborca_tool.a"
  "liborca_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
