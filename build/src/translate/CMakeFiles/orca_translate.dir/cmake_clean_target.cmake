file(REMOVE_RECURSE
  "liborca_translate.a"
)
