file(REMOVE_RECURSE
  "CMakeFiles/orca_translate.dir/region_registry.cpp.o"
  "CMakeFiles/orca_translate.dir/region_registry.cpp.o.d"
  "liborca_translate.a"
  "liborca_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
