# Empty compiler generated dependencies file for orca_translate.
# This may be replaced when dependencies are built.
