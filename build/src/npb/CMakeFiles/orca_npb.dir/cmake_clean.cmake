file(REMOVE_RECURSE
  "CMakeFiles/orca_npb.dir/bt.cpp.o"
  "CMakeFiles/orca_npb.dir/bt.cpp.o.d"
  "CMakeFiles/orca_npb.dir/cg.cpp.o"
  "CMakeFiles/orca_npb.dir/cg.cpp.o.d"
  "CMakeFiles/orca_npb.dir/ep.cpp.o"
  "CMakeFiles/orca_npb.dir/ep.cpp.o.d"
  "CMakeFiles/orca_npb.dir/ft.cpp.o"
  "CMakeFiles/orca_npb.dir/ft.cpp.o.d"
  "CMakeFiles/orca_npb.dir/kernels.cpp.o"
  "CMakeFiles/orca_npb.dir/kernels.cpp.o.d"
  "CMakeFiles/orca_npb.dir/lu.cpp.o"
  "CMakeFiles/orca_npb.dir/lu.cpp.o.d"
  "CMakeFiles/orca_npb.dir/mg.cpp.o"
  "CMakeFiles/orca_npb.dir/mg.cpp.o.d"
  "CMakeFiles/orca_npb.dir/multizone.cpp.o"
  "CMakeFiles/orca_npb.dir/multizone.cpp.o.d"
  "CMakeFiles/orca_npb.dir/sp.cpp.o"
  "CMakeFiles/orca_npb.dir/sp.cpp.o.d"
  "liborca_npb.a"
  "liborca_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
