
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/bt.cpp" "src/npb/CMakeFiles/orca_npb.dir/bt.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/bt.cpp.o.d"
  "/root/repo/src/npb/cg.cpp" "src/npb/CMakeFiles/orca_npb.dir/cg.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/cg.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/npb/CMakeFiles/orca_npb.dir/ep.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/ep.cpp.o.d"
  "/root/repo/src/npb/ft.cpp" "src/npb/CMakeFiles/orca_npb.dir/ft.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/ft.cpp.o.d"
  "/root/repo/src/npb/kernels.cpp" "src/npb/CMakeFiles/orca_npb.dir/kernels.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/kernels.cpp.o.d"
  "/root/repo/src/npb/lu.cpp" "src/npb/CMakeFiles/orca_npb.dir/lu.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/lu.cpp.o.d"
  "/root/repo/src/npb/mg.cpp" "src/npb/CMakeFiles/orca_npb.dir/mg.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/mg.cpp.o.d"
  "/root/repo/src/npb/multizone.cpp" "src/npb/CMakeFiles/orca_npb.dir/multizone.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/multizone.cpp.o.d"
  "/root/repo/src/npb/sp.cpp" "src/npb/CMakeFiles/orca_npb.dir/sp.cpp.o" "gcc" "src/npb/CMakeFiles/orca_npb.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/translate/CMakeFiles/orca_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/orca_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/orca_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/orca_collector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
