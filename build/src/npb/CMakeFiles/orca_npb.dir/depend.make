# Empty dependencies file for orca_npb.
# This may be replaced when dependencies are built.
