file(REMOVE_RECURSE
  "liborca_npb.a"
)
