file(REMOVE_RECURSE
  "CMakeFiles/tool_filtering_test.dir/tool_filtering_test.cpp.o"
  "CMakeFiles/tool_filtering_test.dir/tool_filtering_test.cpp.o.d"
  "tool_filtering_test"
  "tool_filtering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_filtering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
