# Empty dependencies file for tool_filtering_test.
# This may be replaced when dependencies are built.
