# Empty dependencies file for runtime_sync_test.
# This may be replaced when dependencies are built.
