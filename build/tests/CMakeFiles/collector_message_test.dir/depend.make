# Empty dependencies file for collector_message_test.
# This may be replaced when dependencies are built.
