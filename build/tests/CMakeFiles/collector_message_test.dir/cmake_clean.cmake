file(REMOVE_RECURSE
  "CMakeFiles/collector_message_test.dir/collector_message_test.cpp.o"
  "CMakeFiles/collector_message_test.dir/collector_message_test.cpp.o.d"
  "collector_message_test"
  "collector_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
