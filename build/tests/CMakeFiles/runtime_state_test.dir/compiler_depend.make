# Empty compiler generated dependencies file for runtime_state_test.
# This may be replaced when dependencies are built.
