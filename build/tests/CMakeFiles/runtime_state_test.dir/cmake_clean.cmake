file(REMOVE_RECURSE
  "CMakeFiles/runtime_state_test.dir/runtime_state_test.cpp.o"
  "CMakeFiles/runtime_state_test.dir/runtime_state_test.cpp.o.d"
  "runtime_state_test"
  "runtime_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
