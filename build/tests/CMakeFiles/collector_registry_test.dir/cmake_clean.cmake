file(REMOVE_RECURSE
  "CMakeFiles/collector_registry_test.dir/collector_registry_test.cpp.o"
  "CMakeFiles/collector_registry_test.dir/collector_registry_test.cpp.o.d"
  "collector_registry_test"
  "collector_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
