# Empty dependencies file for collector_dispatch_test.
# This may be replaced when dependencies are built.
