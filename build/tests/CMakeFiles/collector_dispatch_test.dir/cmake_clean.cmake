file(REMOVE_RECURSE
  "CMakeFiles/collector_dispatch_test.dir/collector_dispatch_test.cpp.o"
  "CMakeFiles/collector_dispatch_test.dir/collector_dispatch_test.cpp.o.d"
  "collector_dispatch_test"
  "collector_dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
