file(REMOVE_RECURSE
  "CMakeFiles/runtime_task_test.dir/runtime_task_test.cpp.o"
  "CMakeFiles/runtime_task_test.dir/runtime_task_test.cpp.o.d"
  "runtime_task_test"
  "runtime_task_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
