# Empty dependencies file for runtime_nested_test.
# This may be replaced when dependencies are built.
