file(REMOVE_RECURSE
  "CMakeFiles/runtime_nested_test.dir/runtime_nested_test.cpp.o"
  "CMakeFiles/runtime_nested_test.dir/runtime_nested_test.cpp.o.d"
  "runtime_nested_test"
  "runtime_nested_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
