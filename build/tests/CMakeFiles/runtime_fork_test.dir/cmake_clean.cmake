file(REMOVE_RECURSE
  "CMakeFiles/runtime_fork_test.dir/runtime_fork_test.cpp.o"
  "CMakeFiles/runtime_fork_test.dir/runtime_fork_test.cpp.o.d"
  "runtime_fork_test"
  "runtime_fork_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_fork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
