# Empty dependencies file for runtime_fork_test.
# This may be replaced when dependencies are built.
