# Empty compiler generated dependencies file for runtime_worksharing_test.
# This may be replaced when dependencies are built.
