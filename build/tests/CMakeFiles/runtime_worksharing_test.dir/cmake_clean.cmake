file(REMOVE_RECURSE
  "CMakeFiles/runtime_worksharing_test.dir/runtime_worksharing_test.cpp.o"
  "CMakeFiles/runtime_worksharing_test.dir/runtime_worksharing_test.cpp.o.d"
  "runtime_worksharing_test"
  "runtime_worksharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_worksharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
