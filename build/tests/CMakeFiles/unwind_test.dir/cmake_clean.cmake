file(REMOVE_RECURSE
  "CMakeFiles/unwind_test.dir/unwind_test.cpp.o"
  "CMakeFiles/unwind_test.dir/unwind_test.cpp.o.d"
  "unwind_test"
  "unwind_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unwind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
