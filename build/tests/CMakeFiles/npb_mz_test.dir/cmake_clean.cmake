file(REMOVE_RECURSE
  "CMakeFiles/npb_mz_test.dir/npb_mz_test.cpp.o"
  "CMakeFiles/npb_mz_test.dir/npb_mz_test.cpp.o.d"
  "npb_mz_test"
  "npb_mz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_mz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
