# Empty dependencies file for collector_fuzz_test.
# This may be replaced when dependencies are built.
