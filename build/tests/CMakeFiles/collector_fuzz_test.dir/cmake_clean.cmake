file(REMOVE_RECURSE
  "CMakeFiles/collector_fuzz_test.dir/collector_fuzz_test.cpp.o"
  "CMakeFiles/collector_fuzz_test.dir/collector_fuzz_test.cpp.o.d"
  "collector_fuzz_test"
  "collector_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
