file(REMOVE_RECURSE
  "CMakeFiles/runtime_config_test.dir/runtime_config_test.cpp.o"
  "CMakeFiles/runtime_config_test.dir/runtime_config_test.cpp.o.d"
  "runtime_config_test"
  "runtime_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
