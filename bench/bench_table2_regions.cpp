/// Table II — "Number of parallel region calls for the NPB3.2-MZ-MPI
/// benchmarks (process x thread)."
///
/// Runs the three MZ analogs at every process split at full scale (one
/// OpenMP thread per rank: call counts are thread-independent) and prints
/// the measured per-process region calls against the paper's values.
#include <cstdio>
#include <vector>

#include "common/strutil.hpp"
#include "npb/multizone.hpp"

int main() {
  std::printf("Table II: parallel region calls per process, NPB3.2-MZ "
              "analogs (full scale; columns are process counts from the "
              "paper's P x T splits)\n\n");

  const std::vector<int> proc_counts = {1, 2, 4, 8};
  orca::TextTable table({"benchmark", "1 X 8", "2 X 4", "4 X 2", "8 X 1",
                         "paper row", "match"});
  bool all_match = true;
  for (const auto& target : orca::npb::table2_targets()) {
    std::vector<std::string> row;
    row.emplace_back(target.name);
    bool match = true;
    for (const int procs : proc_counts) {
      orca::npb::MzOptions opts;
      opts.procs = procs;
      opts.threads_per_proc = 1;
      opts.scale = 1.0;
      const auto result = orca::npb::run_mz_by_name(target.name, opts);
      const std::uint64_t paper =
          orca::npb::table2_target(target.name, procs);
      match = match && result.max_rank_calls == paper;
      row.push_back(orca::strfmt(
          "%llu", static_cast<unsigned long long>(result.max_rank_calls)));
    }
    std::string paper_row;
    for (const int procs : proc_counts) {
      paper_row += orca::strfmt(
          "%llu ", static_cast<unsigned long long>(
                       orca::npb::table2_target(target.name, procs)));
    }
    row.push_back(paper_row);
    row.push_back(match ? "yes" : "NO");
    all_match = all_match && match;
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n", all_match ? "all rows match the paper's Table II"
                                  : "MISMATCH against the paper's Table II");
  return all_match ? 0 : 1;
}
