/// Shm drain throughput — how fast can orcamon's sharded readers pull
/// records out of a producer's broadcast rings? (docs/FLEET.md)
///
/// P producer threads each push N events through shm::mirror_event (the
/// armed fast path: clock read + wait-free broadcast push) while S reader
/// shards — each with its own SegmentReader attachment, owning rings
/// r % S == shard, exactly orcamon's ownership rule — drain concurrently.
/// Reports drained Mev/s per shard count; the loss column shows what the
/// ring capacity could not absorb when readers fall behind.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "shm/exporter.hpp"
#include "shm/reader.hpp"

using orca::bench::flag_int;
using orca::bench::has_flag;

namespace {

struct DrainResult {
  double seconds = 0;
  std::uint64_t read = 0;
  std::uint64_t lost = 0;
  std::uint64_t produced = 0;
};

DrainResult run_drain(int producers, int events_per_producer, int shards,
                      int ring_capacity) {
  orca::shm::ExporterOptions opts;
  opts.name = orca::shm::default_segment_name(
      "orcabench-" + std::to_string(::getpid()));
  opts.label = "bench_shm_drain";
  opts.ring_count = static_cast<std::uint32_t>(producers);
  opts.event_capacity = static_cast<std::uint32_t>(ring_capacity);
  opts.sample_capacity = 16;
  opts.heartbeat_ms = 50;
  if (!orca::shm::arm(opts)) {
    std::fprintf(stderr, "bench_shm_drain: shm::arm failed\n");
    std::exit(1);
  }

  std::atomic<bool> go{false};
  std::atomic<int> producers_left{producers};

  std::vector<std::thread> prod;
  prod.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    prod.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < events_per_producer; ++i) {
        orca::shm::mirror_event(p, 1);
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }

  // One SegmentReader per shard: cursors are reader-private, and each
  // shard only polls the rings it owns, so the attachments never race.
  std::vector<std::unique_ptr<orca::shm::SegmentReader>> readers;
  for (int s = 0; s < shards; ++s) {
    auto r = orca::shm::SegmentReader::attach(opts.name);
    if (r == nullptr) {
      std::fprintf(stderr, "bench_shm_drain: attach failed\n");
      std::exit(1);
    }
    readers.push_back(std::move(r));
  }

  std::vector<std::thread> drains;
  for (int s = 0; s < shards; ++s) {
    drains.emplace_back([&, s] {
      orca::shm::SegmentReader& reader = *readers[static_cast<std::size_t>(s)];
      orca::shm::Record rec;
      for (;;) {
        bool progressed = false;
        for (std::uint32_t r = static_cast<std::uint32_t>(s);
             r < reader.ring_count();
             r += static_cast<std::uint32_t>(shards)) {
          while (reader.poll_event(r, &rec) == orca::shm::Poll::kRecord) {
            progressed = true;
          }
        }
        if (!progressed &&
            producers_left.load(std::memory_order_acquire) == 0) {
          break;  // producers finished and a full sweep came up empty
        }
      }
    });
  }

  const std::uint64_t t0 = orca::SteadyClock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : prod) t.join();
  for (auto& t : drains) t.join();
  const std::uint64_t t1 = orca::SteadyClock::now();

  DrainResult result;
  result.seconds = static_cast<double>(t1 - t0) * 1e-9;
  for (int s = 0; s < shards; ++s) {
    orca::shm::SegmentReader& reader = *readers[static_cast<std::size_t>(s)];
    for (std::uint32_t r = static_cast<std::uint32_t>(s);
         r < reader.ring_count(); r += static_cast<std::uint32_t>(shards)) {
      reader.finalize_ring(r);
    }
    result.read += reader.total_read();
    result.lost += reader.total_lost();
  }
  result.produced = readers[0]->total_produced();
  orca::shm::disarm();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "smoke");
  const int producers = flag_int(argc, argv, "producers", 4);
  const int events =
      flag_int(argc, argv, "events", smoke ? 200000 : 1000000);
  const int ring_capacity = flag_int(argc, argv, "ring", 16384);

  std::printf("shm drain throughput: %d producer(s) x %d events, ring "
              "capacity %d, sharded readers (docs/FLEET.md)\n\n",
              producers, events, ring_capacity);

  for (const int shards : {1, 2, 4}) {
    const DrainResult r = run_drain(producers, events, shards, ring_capacity);
    const double mev =
        static_cast<double>(r.read) / r.seconds * 1e-6;
    std::printf("shards=%d  drained %llu of %llu (lost %llu) in %.3fs -> "
                "%.2f Mev/s\n",
                shards, static_cast<unsigned long long>(r.read),
                static_cast<unsigned long long>(r.produced),
                static_cast<unsigned long long>(r.lost), r.seconds, mev);
    if (r.read + r.lost != r.produced) {
      std::fprintf(stderr, "bench_shm_drain: loss books do not balance "
                   "(read %llu + lost %llu != produced %llu)\n",
                   static_cast<unsigned long long>(r.read),
                   static_cast<unsigned long long>(r.lost),
                   static_cast<unsigned long long>(r.produced));
      return 1;
    }
    orca::bench::JsonRow("shm_drain")
        .str("shards", std::to_string(shards).c_str())
        .num("threads", producers)
        .num("events", events)
        .num("read", static_cast<unsigned long long>(r.read))
        .num("lost", static_cast<unsigned long long>(r.lost))
        .fixed("mev_per_s", mev, 3)
        .print();
  }
  return 0;
}
