/// Figure 5 — "Overhead measurements for NPB3.2-OMP benchmarks."
///
/// Runs each NPB analog at 1/2/4/8 threads with the prototype collector
/// detached vs. attached and reports the percentage runtime increase.
/// Paper shape: LU-HP worst (~6% at 8 threads in the paper — it makes
/// ~300k parallel region calls); most benchmarks < 5%; overheads grow with
/// region-call count. Values < 1% print as 0, as in the paper.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "npb/kernels.hpp"
#include "runtime/runtime.hpp"
#include "tool/collector_tool.hpp"

using orca::bench::flag_double;
using orca::bench::flag_int;
using orca::npb::BenchResult;
using orca::npb::NpbOptions;

namespace {

double run_once(const std::string& name, int threads, double scale,
                bool with_tool) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = threads;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  auto& tool = orca::tool::PrototypeCollector::instance();
  if (with_tool) {
    tool.reset();
    tool.attach(orca::tool::ToolOptions{});
  }
  NpbOptions opts;
  opts.num_threads = threads;
  opts.scale = scale;
  // Short kernels repeat until enough wall time accumulates for a stable
  // percentage (overhead differences are a few percent of the total).
  constexpr double kMinSeconds = 0.25;
  double total = 0;
  int iters = 0;
  do {
    const BenchResult result = orca::npb::run_by_name(name, opts);
    total += result.seconds;
    ++iters;
    if (with_tool) tool.reset();  // bound sample-store memory
  } while (total < kMinSeconds);
  if (with_tool) tool.detach();
  orca::rt::Runtime::make_current(nullptr);
  return total / iters;
}

/// Best-of-N wall time (minimum is robust on a shared/oversubscribed box;
/// the paper reports std-dev < 2s across runs).
double best_of(const std::string& name, int threads, double scale,
               bool with_tool, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, run_once(name, threads, scale, with_tool));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = flag_double(argc, argv, "scale", 0.25);
  const int reps = flag_int(argc, argv, "reps", 2);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::printf("Figure 5: NPB3.2-OMP analogs — %% runtime overhead with the "
              "prototype collector attached\n");
  std::printf("(scale=%.2f of the paper's region schedule, best of %d runs; "
              "events: fork/join/ibar + join callstacks)\n\n",
              scale, reps);

  orca::TextTable table({"benchmark", "1 thr %", "2 thr %", "4 thr %",
                         "8 thr %", "region calls", "off@4 s"});
  for (const auto& target : orca::npb::table1_targets()) {
    std::vector<std::string> row;
    row.emplace_back(target.name);
    double off4 = 0;
    for (const int t : thread_counts) {
      const double off = best_of(target.name, t, scale, false, reps);
      const double on = best_of(target.name, t, scale, true, reps);
      if (t == 4) off4 = off;
      row.push_back(
          orca::strfmt("%.1f", orca::bench::overhead_percent(off, on)));
    }
    row.push_back(orca::strfmt(
        "%llu", static_cast<unsigned long long>(
                    orca::npb::scaled_target(target.calls, scale))));
    row.push_back(orca::strfmt("%.3f", off4));
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\npaper shape: LU-HP highest (most region calls, ~6%% on 8 "
              "threads); majority < 5%%; <1%% reported as zero.\n");
  return 0;
}
