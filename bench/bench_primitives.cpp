/// \file bench_primitives.cpp
/// Primitive-level synchronization costs, isolated from whole-benchmark
/// noise (EPCC/NPB measure directive overhead end to end; this measures the
/// three hot loops those numbers decompose into):
///
///  * barrier round-trip — one arrive..release episode through
///    `Runtime::explicit_barrier`, swept over barrier algorithm
///    (ORCA_BARRIER=centralized|dissemination|tree) × thread count. The
///    master times batches of `--inner` crossings; since a barrier holds
///    the team in lockstep, its per-batch time is the team round-trip.
///  * spinlock acquire — one TTAS SpinLock lock/unlock under contention
///    from the rest of the team (non-masters hammer the lock until the
///    master's timed batches complete).
///  * disarmed event emit — one `Runtime::event` with no collector
///    registered: the epoch fast path every uninstrumented program pays
///    (one relaxed EmitterCache mask load + branch).
///
/// Per cell, batch samples are reduced to mean/p50/p99 (bench_util.hpp
/// Summary) and emitted as one JSON row; `scripts/ci.sh` harvests the
/// rows into build/artifacts/BENCH_primitives.json, which
/// `scripts/perf_gate.py` diffs against bench/baselines/.
///
/// Usage: bench_primitives [--reps=20] [--inner=...] [--smoke]
///   --smoke: CI sanity mode (ctest -L perf-smoke) — fewer batches and
///   thread counts, same code paths, no timing claims.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "common/strutil.hpp"
#include "runtime/barrier.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::SpinLock;
using orca::SteadyClock;
using orca::bench::Summary;
using orca::rt::BarrierKind;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::rt::ThreadDescriptor;

struct Frame {
  Runtime* rt = nullptr;
  int reps = 0;   ///< timed batches (master-side samples)
  int inner = 0;  ///< operations per batch
  std::vector<double> samples;  ///< ns/op per batch, filled by the master
  SpinLock* lock = nullptr;
  std::atomic<bool> done{false};  ///< master finished its timed batches
};

void barrier_microtask(int, void* raw) {
  Frame& frame = *static_cast<Frame*>(raw);
  ThreadDescriptor* td = frame.rt->self();
  if (td == nullptr) return;
  const bool master = td->tid_in_team == 0;
  for (int b = 0; b < frame.reps; ++b) {
    const std::uint64_t begin = master ? SteadyClock::now() : 0;
    for (int i = 0; i < frame.inner; ++i) {
      frame.rt->explicit_barrier(*td);
    }
    if (master) {
      frame.samples.push_back(
          static_cast<double>(SteadyClock::now() - begin) /
          static_cast<double>(frame.inner));
    }
  }
}

void spinlock_microtask(int, void* raw) {
  Frame& frame = *static_cast<Frame*>(raw);
  ThreadDescriptor* td = frame.rt->self();
  if (td == nullptr) return;
  if (td->tid_in_team != 0) {
    // Contention generators: hammer the lock until the master is done
    // timing, so every timed acquire races a realistic opponent.
    while (!frame.done.load(std::memory_order_acquire)) {
      frame.lock->lock();
      frame.lock->unlock();
    }
    return;
  }
  for (int b = 0; b < frame.reps; ++b) {
    const std::uint64_t begin = SteadyClock::now();
    for (int i = 0; i < frame.inner; ++i) {
      frame.lock->lock();
      frame.lock->unlock();
    }
    frame.samples.push_back(static_cast<double>(SteadyClock::now() - begin) /
                            static_cast<double>(frame.inner));
  }
  frame.done.store(true, std::memory_order_release);
}

void emit_microtask(int, void* raw) {
  Frame& frame = *static_cast<Frame*>(raw);
  ThreadDescriptor* td = frame.rt->self();
  if (td == nullptr) return;
  const bool master = td->tid_in_team == 0;
  // Every thread fires the same load (the disarmed path is per-thread and
  // contention-free); only the master's batches are timed.
  for (int b = 0; b < frame.reps; ++b) {
    const std::uint64_t begin = master ? SteadyClock::now() : 0;
    for (int i = 0; i < frame.inner; ++i) {
      frame.rt->event(*td, OMP_EVENT_FORK);
    }
    if (master) {
      frame.samples.push_back(
          static_cast<double>(SteadyClock::now() - begin) /
          static_cast<double>(frame.inner));
    }
  }
}

struct Cell {
  Summary dist;
};

Cell run_cell(void (*microtask)(int, void*), BarrierKind algo, int threads,
              int reps, int inner) {
  RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.barrier = algo;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  SpinLock lock;
  Frame frame;
  frame.rt = &rt;
  frame.reps = reps;
  frame.inner = inner;
  frame.lock = &lock;
  frame.samples.reserve(static_cast<std::size_t>(reps));

  rt.fork(microtask, &frame, threads);
  rt.quiesce();
  Runtime::make_current(nullptr);

  Cell cell;
  cell.dist = orca::bench::summarize(frame.samples);
  return cell;
}

void print_row(orca::TextTable& table, const char* primitive,
               const char* algo, int threads, int reps, int inner,
               const Summary& dist) {
  table.add_row({primitive, algo, orca::strfmt("%d", threads),
                 orca::strfmt("%.1f", dist.mean),
                 orca::strfmt("%.1f", dist.p50),
                 orca::strfmt("%.1f", dist.p99)});
  orca::bench::JsonRow("primitives")
      .str("primitive", primitive)
      .str("algo", algo)
      .num("threads", threads)
      .num("reps", reps)
      .num("inner", inner)
      .fixed("ns_per_op", dist.mean)
      .latency_tail(dist, "ns")
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = orca::bench::has_flag(argc, argv, "smoke");
  // Batch counts sized for the worst cell (oversubscribed dissemination on
  // a small host): every barrier crossing can cost scheduling quanta.
  const int reps = orca::bench::flag_int(argc, argv, "reps", smoke ? 8 : 20);
  const int barrier_inner =
      orca::bench::flag_int(argc, argv, "inner", smoke ? 30 : 100);
  const int op_inner = smoke ? 2000 : 20000;

  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const BarrierKind algos[] = {BarrierKind::kCentralized,
                               BarrierKind::kDissemination,
                               BarrierKind::kTree};

  std::printf("Synchronization primitives: ns/op, %d batches "
              "(barrier inner=%d, lock/emit inner=%d)%s\n\n",
              reps, barrier_inner, op_inner, smoke ? " [smoke mode]" : "");
  orca::TextTable table(
      {"primitive", "algo", "threads", "mean ns", "p50 ns", "p99 ns"});

  for (const BarrierKind algo : algos) {
    for (const int threads : thread_counts) {
      const Cell cell =
          run_cell(&barrier_microtask, algo, threads, reps, barrier_inner);
      print_row(table, "barrier", orca::rt::barrier_kind_name(algo), threads,
                reps, barrier_inner, cell.dist);
    }
  }
  for (const int threads : thread_counts) {
    const Cell cell = run_cell(&spinlock_microtask, BarrierKind::kCentralized,
                               threads, reps, op_inner);
    print_row(table, "spinlock_acquire", "none", threads, reps, op_inner,
              cell.dist);
  }
  for (const int threads : thread_counts) {
    const Cell cell = run_cell(&emit_microtask, BarrierKind::kCentralized,
                               threads, reps, op_inner);
    print_row(table, "disarmed_emit", "none", threads, reps, op_inner,
              cell.dist);
  }

  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
