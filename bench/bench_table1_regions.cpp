/// Table I — "Number of parallel regions for the NPB3.2-OMP benchmarks."
///
/// Runs every analog at full scale on one thread (region counts are
/// thread-independent) and prints measured vs. paper values for both the
/// static region inventory and the dynamic invocation count.
#include <cstdio>

#include "common/strutil.hpp"
#include "npb/kernels.hpp"
#include "runtime/runtime.hpp"

int main() {
  std::printf("Table I: number of parallel regions / region calls, "
              "NPB3.2-OMP analogs (full scale)\n\n");

  orca::TextTable table({"benchmark", "# parallel regions", "paper",
                         "# region calls", "paper", "match"});
  bool all_match = true;
  for (const auto& target : orca::npb::table1_targets()) {
    orca::rt::RuntimeConfig cfg;
    cfg.num_threads = 1;
    orca::rt::Runtime rt(cfg);
    orca::rt::Runtime::make_current(&rt);
    orca::npb::NpbOptions opts;
    opts.num_threads = 1;
    opts.scale = 1.0;
    const auto result = orca::npb::run_by_name(target.name, opts);
    orca::rt::Runtime::make_current(nullptr);

    const bool match = result.region_calls == target.calls &&
                       result.distinct_regions == target.regions;
    all_match = all_match && match;
    table.add_row({target.name, orca::strfmt("%zu", result.distinct_regions),
                   orca::strfmt("%zu", target.regions),
                   orca::strfmt("%llu", static_cast<unsigned long long>(
                                            result.region_calls)),
                   orca::strfmt("%llu", static_cast<unsigned long long>(
                                            target.calls)),
                   match ? "yes" : "NO"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n", all_match ? "all rows match the paper's Table I"
                                  : "MISMATCH against the paper's Table I");
  return all_match ? 0 : 1;
}
