/// \file bench_util.hpp
/// Small shared helpers for the figure/table bench drivers: flag parsing
/// ("--key=value"), best-of-N timing, and sample summary statistics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace orca::bench {

/// Parse "--name=value" from argv; falls back to `fallback`.
inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline int flag_int(int argc, char** argv, const char* name, int fallback) {
  return static_cast<int>(
      flag_double(argc, argv, name, static_cast<double>(fallback)));
}

/// True when a bare "--name" switch is present.
inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Percentage increase of `with` over `without`, clamped at 0 like the
/// paper ("outlier cases, where we observed overhead values of less than
/// 1%, are listed as zero overhead").
inline double overhead_percent(double without, double with) {
  if (without <= 0) return 0;
  const double pct = (with - without) / without * 100.0;
  return pct < 1.0 ? 0.0 : pct;
}

/// Raw (unclamped) percentage, for detail columns.
inline double overhead_percent_raw(double without, double with) {
  return without > 0 ? (with - without) / without * 100.0 : 0;
}

/// Linear-interpolated percentile of `samples`, q in [0, 1]. Copies and
/// sorts; fine at bench sample counts.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0) return samples.front();
  if (q >= 1) return samples.back();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

/// Order statistics for one bench metric. Latency-style samples are judged
/// by their tails, not their means: JSON emitters should print p50/p99
/// alongside (or instead of) the mean.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  double max = 0;
};

/// One machine-readable result row, printed as a single JSON object on its
/// own line so CI can harvest it with `grep '^{'` (scripts/ci.sh) and diff
/// it against bench/baselines/ (scripts/perf_gate.py). Fields appear in
/// insertion order and every row leads with "bench":"<name>"; benches must
/// keep key names and decimal precision stable or the baselines churn.
class JsonRow {
 public:
  explicit JsonRow(const char* bench) { str("bench", bench); }

  JsonRow& str(const char* key, const char* value) {
    sep();
    body_ += '"';
    body_ += key;
    body_ += "\":\"";
    body_ += value;
    body_ += '"';
    return *this;
  }

  JsonRow& num(const char* key, long long value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", value);
    return raw(key, buf);
  }

  JsonRow& num(const char* key, unsigned long long value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", value);
    return raw(key, buf);
  }

  JsonRow& num(const char* key, unsigned long value) {
    return num(key, static_cast<unsigned long long>(value));
  }

  JsonRow& num(const char* key, long value) {
    return num(key, static_cast<long long>(value));
  }

  JsonRow& num(const char* key, int value) {
    return num(key, static_cast<long long>(value));
  }

  /// Fixed-point double; perf metrics use 2 decimals, rates/durations
  /// that need sub-percent resolution use 3.
  JsonRow& fixed(const char* key, double value, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return raw(key, buf);
  }

  /// The shared latency tail every latency bench reports: p50/p99 at two
  /// decimals, keyed "p50_<suffix>"/"p99_<suffix>".
  JsonRow& latency_tail(double p50, double p99, const char* suffix) {
    fixed((std::string("p50_") + suffix).c_str(), p50);
    fixed((std::string("p99_") + suffix).c_str(), p99);
    return *this;
  }

  JsonRow& latency_tail(const Summary& s, const char* suffix) {
    return latency_tail(s.p50, s.p99, suffix);
  }

  /// Emit the row to stdout and a trailing newline.
  void print() const { std::printf("%s}\n", body_.c_str()); }

 private:
  JsonRow& raw(const char* key, const char* value) {
    sep();
    body_ += '"';
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  void sep() {
    if (body_.size() > 1) body_ += ',';
  }

  std::string body_ = "{";
};

inline Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (const double v : sorted) total += v;
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = total / static_cast<double>(sorted.size());
  s.p50 = percentile(sorted, 0.5);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

}  // namespace orca::bench
