/// \file bench_util.hpp
/// Small shared helpers for the figure/table bench drivers: flag parsing
/// ("--key=value") and best-of-N timing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace orca::bench {

/// Parse "--name=value" from argv; falls back to `fallback`.
inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline int flag_int(int argc, char** argv, const char* name, int fallback) {
  return static_cast<int>(
      flag_double(argc, argv, name, static_cast<double>(fallback)));
}

/// True when a bare "--name" switch is present.
inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Percentage increase of `with` over `without`, clamped at 0 like the
/// paper ("outlier cases, where we observed overhead values of less than
/// 1%, are listed as zero overhead").
inline double overhead_percent(double without, double with) {
  if (without <= 0) return 0;
  const double pct = (with - without) / without * 100.0;
  return pct < 1.0 ? 0.0 : pct;
}

/// Raw (unclamped) percentage, for detail columns.
inline double overhead_percent_raw(double without, double with) {
  return without > 0 ? (with - without) / without * 100.0 : 0;
}

}  // namespace orca::bench
