/// \file bench_event_path.cpp
/// Event-delivery path cost: synchronous dispatch (the paper's model, the
/// callback runs on the application thread) vs. asynchronous delivery
/// (ORCA_EVENT_DELIVERY=async: ring push on the application thread, the
/// callback runs on the drainer) vs. async under deliberate backpressure
/// (tiny rings, drop_newest).
///
/// For each mode x thread count, a team of `threads` pool threads each
/// fires `--events=N` OMP_EVENT_FORK events with a registered callback that
/// simulates a tracing collector (timestamp + global lock + log append —
/// what TracingCollector did before per-slot staging). Reported app-thread
/// cost covers only what the firing thread pays; the drain/flush cost that
/// moved off the measured program is listed separately.
///
/// A "disarmed" row fires the same events with no registered callback:
/// that is the epoch fast path every uninstrumented program pays (one
/// relaxed mask load + branch through the thread's EmitterCache).
///
/// Usage: bench_event_path [--events=20000] [--smoke]
///   --smoke: 2-second sanity mode for CI (ctest -L perf-smoke) — fewer
///   events and thread counts, same code paths, no timing claims.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "collector/message.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "common/strutil.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::SpinLock;
using orca::SteadyClock;
using orca::collector::MessageBuilder;
using orca::rt::EventBackpressure;
using orca::rt::EventDelivery;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

/// Simulated tracing collector: the per-event work a real tool does, with
/// the single-global-log design the async path is meant to absorb. The
/// dependent-multiply chain stands in for the callstack capture the
/// paper's prototype performs per event (Sec. V; bench_callstack measures
/// the real unwinder at comparable cost).
SpinLock g_log_mu;
std::vector<std::uint64_t> g_log;

std::uint64_t simulated_unwind(std::uint64_t seed) {
  std::uint64_t h = seed | 1;
  for (int i = 0; i < 600; ++i) {
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(i);
  }
  return h;
}

void tracing_callback(OMP_COLLECTORAPI_EVENT) {
  const std::uint64_t t = SteadyClock::now();
  const std::uint64_t h = simulated_unwind(t);
  std::scoped_lock lk(g_log_mu);
  g_log.push_back(t ^ h);
}

struct ModeSpec {
  const char* name;
  EventDelivery delivery;
  EventBackpressure policy;
  std::size_t ring_capacity;
  bool armed = true;  ///< false: no callback registered (disarmed fast path)
};

struct Frame {
  Runtime* rt = nullptr;
  int events = 0;
  std::vector<std::uint64_t> per_thread_ns;  // indexed by gtid
};

void fire_microtask(int gtid, void* raw) {
  Frame& frame = *static_cast<Frame*>(raw);
  // Emit through this pool thread's descriptor, exactly like the runtime's
  // own event points: the disarmed case then costs one relaxed load on the
  // thread-private EmitterCache mask, not a shared-registry probe.
  orca::rt::ThreadDescriptor* td = frame.rt->self();
  const std::uint64_t begin = SteadyClock::now();
  for (int i = 0; i < frame.events; ++i) {
    if (td != nullptr) {
      frame.rt->event(*td, OMP_EVENT_FORK);
    } else {
      frame.rt->registry().fire(OMP_EVENT_FORK);  // ambient compat path
    }
  }
  frame.per_thread_ns[static_cast<std::size_t>(gtid)] =
      SteadyClock::now() - begin;
}

struct RowResult {
  double app_ns_per_event = 0;
  double p50_ns_per_event = 0;  // per-thread distribution: median thread
  double p99_ns_per_event = 0;  // ... and the straggler tail
  double throughput_mev = 0;  // events/s the app threads sustained, in M
  double flush_ms = 0;
  unsigned long long delivered = 0;
  unsigned long long dropped = 0;
  unsigned long long overwritten = 0;
};

RowResult run_row(const ModeSpec& mode, int threads, int events) {
  RuntimeConfig cfg;
  cfg.num_threads = threads;
  cfg.event_delivery = mode.delivery;
  cfg.event_backpressure = mode.policy;
  cfg.event_ring_capacity = mode.ring_capacity;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  {
    g_log.clear();
    g_log.reserve(static_cast<std::size_t>(threads) *
                  static_cast<std::size_t>(events));
  }

  if (mode.armed) {
    MessageBuilder start;
    start.add(OMP_REQ_START);
    rt.collector_api(start.buffer());
    MessageBuilder reg;
    reg.add_register(OMP_EVENT_FORK, &tracing_callback);
    rt.collector_api(reg.buffer());
  }

  Frame frame;
  frame.rt = &rt;
  frame.events = events;
  frame.per_thread_ns.assign(static_cast<std::size_t>(threads) + 1, 0);
  rt.fork(&fire_microtask, &frame, threads);
  rt.quiesce();

  // Flush whatever is still buffered (async modes); this is the cost that
  // left the application threads.
  const std::uint64_t flush_begin = SteadyClock::now();
  MessageBuilder pause;
  pause.add(OMP_REQ_PAUSE);
  rt.collector_api(pause.buffer());
  const std::uint64_t flush_ns = SteadyClock::now() - flush_begin;

  RowResult row;
  std::uint64_t total_ns = 0;
  int counted = 0;
  std::vector<double> thread_samples;  // each thread's ns/event
  for (const std::uint64_t ns : frame.per_thread_ns) {
    if (ns == 0) continue;
    total_ns += ns;
    ++counted;
    thread_samples.push_back(static_cast<double>(ns) /
                             static_cast<double>(events));
  }
  // Tails across the team, not just the mean: p99 exposes the straggler
  // thread (lock convoy on the shared log, ring backpressure) that the
  // pooled average hides.
  const orca::bench::Summary dist = orca::bench::summarize(thread_samples);
  row.p50_ns_per_event = dist.p50;
  row.p99_ns_per_event = dist.p99;
  const double total_events =
      static_cast<double>(events) * static_cast<double>(counted);
  row.app_ns_per_event =
      total_events > 0 ? static_cast<double>(total_ns) / total_events : 0;
  // Wall throughput proxy: events per second of summed app-thread time.
  row.throughput_mev = total_ns > 0 ? total_events * 1e3 /
                                          static_cast<double>(total_ns)
                                    : 0;
  row.flush_ms = static_cast<double>(flush_ns) / 1e6;

  MessageBuilder query;
  query.add_event_stats_query();
  rt.collector_api(query.buffer());
  orca_event_stats stats = {};
  if (query.errcode(0) == OMP_ERRCODE_OK) query.reply_value(0, &stats);
  row.delivered = stats.delivered;
  row.dropped = stats.dropped;
  row.overwritten = stats.overwritten;

  MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  rt.collector_api(stop.buffer());
  Runtime::make_current(nullptr);
  return row;
}

/// Signal-path query cost: one STATE + CURRENT_PRID buffer answered
/// entirely on the async-signal-safe fast path (what a SIGPROF handler
/// pays per tick). "disarmed" is the default runtime; "armed" runs with
/// the whole resilience layer on — crash-dump handlers installed, async
/// delivery plus callback watchdog — to show arming does not tax the
/// query path.
struct SignalRow {
  double ns_per_query = 0;
  double p50_ns = 0;  // across timing batches
  double p99_ns = 0;
};

SignalRow run_signal_row(bool armed, int queries) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  if (armed) {
    cfg.crash_dump = "bench_event_path_never_written.dump";
    cfg.event_delivery = EventDelivery::kAsync;
    cfg.callback_deadline_ms = 100;
  }
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  MessageBuilder msg;
  msg.add_state_query();
  msg.add_id_query(OMP_REQ_CURRENT_PRID);

  constexpr int kBatches = 50;
  const int per_batch = queries / kBatches > 0 ? queries / kBatches : 1;
  for (int i = 0; i < per_batch; ++i) rt.collector_api(msg.buffer());  // warm

  std::vector<double> batch_ns;
  batch_ns.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    const std::uint64_t begin = SteadyClock::now();
    for (int i = 0; i < per_batch; ++i) rt.collector_api(msg.buffer());
    batch_ns.push_back(static_cast<double>(SteadyClock::now() - begin) /
                       static_cast<double>(per_batch));
  }
  Runtime::make_current(nullptr);

  const orca::bench::Summary dist = orca::bench::summarize(batch_ns);
  SignalRow row;
  row.p50_ns = dist.p50;
  row.p99_ns = dist.p99;
  double total = 0;
  for (const double ns : batch_ns) total += ns;
  row.ns_per_query = total / static_cast<double>(batch_ns.size());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = orca::bench::has_flag(argc, argv, "smoke");
  const int events =
      orca::bench::flag_int(argc, argv, "events", smoke ? 2000 : 20000);
  const ModeSpec modes[] = {
      {"disarmed", EventDelivery::kSync, EventBackpressure::kBlock, 1024,
       false},
      {"sync", EventDelivery::kSync, EventBackpressure::kBlock, 1024},
      {"async", EventDelivery::kAsync, EventBackpressure::kBlock, 32768},
      {"async+bp", EventDelivery::kAsync, EventBackpressure::kDropNewest, 64},
  };
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  std::printf("Event-delivery path: app-thread cost per event, %d events "
              "per thread, tracing-style callback%s\n\n",
              events, smoke ? " [smoke mode]" : "");
  orca::TextTable table({"mode", "threads", "app ns/event", "Mev/s",
                         "flush ms", "delivered", "dropped", "overwritten"});
  double sync_ns_8 = 0;
  double async_ns_8 = 0;
  for (const ModeSpec& mode : modes) {
    for (const int threads : thread_counts) {
      const RowResult row = run_row(mode, threads, events);
      if (threads == 8) {
        if (std::string(mode.name) == "sync") sync_ns_8 = row.app_ns_per_event;
        if (std::string(mode.name) == "async") {
          async_ns_8 = row.app_ns_per_event;
        }
      }
      table.add_row({mode.name, orca::strfmt("%d", threads),
                     orca::strfmt("%.1f", row.app_ns_per_event),
                     orca::strfmt("%.2f", row.throughput_mev),
                     orca::strfmt("%.2f", row.flush_ms),
                     orca::strfmt("%llu", row.delivered),
                     orca::strfmt("%llu", row.dropped),
                     orca::strfmt("%llu", row.overwritten)});
      orca::bench::JsonRow("event_path")
          .str("mode", mode.name)
          .num("threads", threads)
          .num("events_per_thread", events)
          .fixed("app_ns_per_event", row.app_ns_per_event)
          .latency_tail(row.p50_ns_per_event, row.p99_ns_per_event,
                        "ns_per_event")
          .fixed("mev_per_s", row.throughput_mev, 3)
          .fixed("flush_ms", row.flush_ms, 3)
          .num("delivered", row.delivered)
          .num("dropped", row.dropped)
          .num("overwritten", row.overwritten)
          .print();
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  if (sync_ns_8 > 0 && async_ns_8 > 0) {
    std::printf("8-thread app-path speedup (sync / async): %.2fx\n",
                sync_ns_8 / async_ns_8);
  }

  // Signal-path query cost (the SIGPROF handler's per-tick budget):
  // disarmed baseline first so the armed row's process-wide crash-handler
  // installation cannot precede it.
  const int queries = smoke ? 20000 : 200000;
  std::printf("\nSignal-path query (STATE + CURRENT_PRID per call, %d "
              "calls)\n\n", queries);
  orca::TextTable sig_table(
      {"resilience", "ns/query", "p50 ns", "p99 ns"});
  for (const bool armed : {false, true}) {
    const SignalRow row = run_signal_row(armed, queries);
    const char* name = armed ? "armed" : "disarmed";
    sig_table.add_row({name, orca::strfmt("%.1f", row.ns_per_query),
                       orca::strfmt("%.1f", row.p50_ns),
                       orca::strfmt("%.1f", row.p99_ns)});
    orca::bench::JsonRow("signal_query_path")
        .str("resilience", name)
        .num("queries", queries)
        .fixed("ns_per_query", row.ns_per_query)
        .latency_tail(row.p50_ns, row.p99_ns, "ns")
        .print();
  }
  std::printf("\n%s\n", sig_table.render().c_str());
  return 0;
}
