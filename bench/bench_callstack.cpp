/// E9 — costs of the PerfSuite/libpsx extensions (paper Sec. IV-F):
/// callstack capture at a join event, instruction-pointer symbolization
/// (region hit vs. dynamic-symbol vs. unknown), and offline user-model
/// reconstruction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "perf/psx.h"
#include "translate/region_registry.hpp"
#include "unwind/backtrace.hpp"
#include "unwind/symbolize.hpp"
#include "unwind/user_model.hpp"

namespace {

/// Build some genuine stack depth before capturing.
__attribute__((noinline)) std::size_t capture_at_depth(int depth) {
  if (depth > 0) {
    benchmark::ClobberMemory();
    return capture_at_depth(depth - 1);
  }
  return orca::unwind::Callstack::capture().depth();
}

void BM_CallstackCapture(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture_at_depth(depth));
  }
}
BENCHMARK(BM_CallstackCapture)->Arg(4)->Arg(16)->Arg(48);

void BM_PsxCallstackGet(benchmark::State& state) {
  const void* frames[64];
  for (auto _ : state) {
    benchmark::DoNotOptimize(psx_callstack_get(frames, 64, 0));
  }
}
BENCHMARK(BM_PsxCallstackGet);

void BM_Symbolize_RegionHit(benchmark::State& state) {
  // A registered outlined-region address: the exact-match fast path.
  const int dummy = 0;
  orca::translate::RegionRegistry::instance().add(
      &dummy, {"bench_fn", "bench.cpp", 42, "parallel"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(orca::unwind::symbolize(&dummy));
  }
}
BENCHMARK(BM_Symbolize_RegionHit);

void BM_Symbolize_Dladdr(benchmark::State& state) {
  // A dynamic symbol (from libc): the BFD-equivalent lookup.
  const void* addr = reinterpret_cast<const void*>(&std::printf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orca::unwind::symbolize(addr));
  }
}
BENCHMARK(BM_Symbolize_Dladdr);

void BM_Symbolize_Unknown(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        orca::unwind::symbolize(reinterpret_cast<const void*>(0x10)));
  }
}
BENCHMARK(BM_Symbolize_Unknown);

void BM_UserModelReconstruct(benchmark::State& state) {
  // A realistic join-time stack snapshot, reconstructed offline per sample.
  const auto raw = orca::unwind::Callstack::capture().to_vector();
  for (auto _ : state) {
    benchmark::DoNotOptimize(orca::unwind::reconstruct(raw, nullptr));
  }
  state.SetLabel("frames=" + std::to_string(raw.size()));
}
BENCHMARK(BM_UserModelReconstruct);

void BM_PsxTimerRead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(psx_timer_read());
  }
}
BENCHMARK(BM_PsxTimerRead);

}  // namespace

BENCHMARK_MAIN();
