/// \file bench_pipeline.cpp
/// Throughput of the composable collector pipeline (src/pipeline/) as a
/// function of chain depth: one producer pushes decoded `pipeline::Event`s
/// through 1..5 chained stages ending in a counting sink, and we report
/// ns/event and Mev/s per depth. This prices the abstraction the tracer and
/// sampling collector now stand on — the acceptance bar is that a 3-stage
/// chain sustains >= 1 Mev/s, i.e. the stage hop costs stay in the tens of
/// nanoseconds and never approach the cost of the events being measured.
///
/// Chain composition per depth (built downstream-first, cheapest first so
/// each added row isolates one combinator's cost):
///
///   1  sink
///   2  map -> sink
///   3  filter -> map -> sink            (the acceptance-bar row)
///   4  quantize -> filter -> map -> sink
///   5  killswitch -> quantize -> filter -> map -> sink
///
/// Per depth, batch samples reduce to mean/p50/p99 (bench_util.hpp Summary)
/// and emit one JSON row; `scripts/ci.sh` harvests the rows into
/// build/artifacts/BENCH_pipeline.json, which `scripts/perf_gate.py` diffs
/// against bench/baselines/.
///
/// Usage: bench_pipeline [--reps=20] [--inner=200000] [--smoke]
///   --smoke: CI sanity mode (ctest -L perf-smoke) — fewer/shorter batches,
///   same code paths, no timing claims.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/strutil.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stage.hpp"

namespace {

using orca::SteadyClock;
using orca::bench::Summary;
using orca::pipeline::Event;
using orca::pipeline::KillSwitch;
using orca::pipeline::Pipeline;
using orca::pipeline::StagePtr;

/// Downstream-first chain of `stages` combinators ending in a sink that
/// counts into `*delivered`. The predicates keep every event and the
/// killswitch stays untripped: every stage does its bookkeeping and hop,
/// none sheds work, so depth N prices exactly N accept/emit traversals.
StagePtr<Event> build_chain(int stages, std::uint64_t* delivered,
                            KillSwitch* ks) {
  StagePtr<Event> chain = orca::pipeline::sink<Event>(
      "count", [delivered](const Event&) { ++*delivered; });
  if (stages >= 2) {
    chain = orca::pipeline::map<Event>(
        "stamp",
        [](const Event& e) {
          Event out = e;
          out.ns += 1;
          return out;
        },
        std::move(chain));
  }
  if (stages >= 3) {
    chain = orca::pipeline::filter<Event>(
        "keep", [](const Event& e) { return e.event != OMP_EVENT_LAST; },
        std::move(chain));
  }
  if (stages >= 4) {
    chain = orca::pipeline::quantize<Event>("q1", 1, std::move(chain));
  }
  if (stages >= 5) {
    chain = orca::pipeline::killswitch<Event>("ks", *ks, std::move(chain));
  }
  return chain;
}

Summary run_depth(int stages, int reps, int inner) {
  std::uint64_t delivered = 0;
  KillSwitch ks;
  Pipeline<Event> p(build_chain(stages, &delivered, &ks));

  Event e;
  e.event = OMP_EVENT_FORK;
  e.tid = 0;

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int b = 0; b < reps; ++b) {
    const std::uint64_t begin = SteadyClock::now();
    for (int i = 0; i < inner; ++i) {
      e.seq = static_cast<std::uint64_t>(i);
      e.ticks = begin + static_cast<std::uint64_t>(i);
      p.push(e);
    }
    samples.push_back(static_cast<double>(SteadyClock::now() - begin) /
                      static_cast<double>(inner));
  }
  p.flush();

  // Lossless by construction: a miscount here means a combinator is
  // shedding (or double-delivering) events, which would invalidate the
  // timing row entirely.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(reps) * static_cast<std::uint64_t>(inner);
  if (delivered != expected) {
    std::fprintf(stderr,
                 "bench_pipeline: depth %d delivered %llu of %llu events\n",
                 stages, static_cast<unsigned long long>(delivered),
                 static_cast<unsigned long long>(expected));
    std::exit(1);
  }
  return orca::bench::summarize(samples);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = orca::bench::has_flag(argc, argv, "smoke");
  const int reps =
      orca::bench::flag_int(argc, argv, "reps", smoke ? 5 : 20);
  const int inner =
      orca::bench::flag_int(argc, argv, "inner", smoke ? 20000 : 200000);

  std::printf("Pipeline chain throughput (%d batches x %d events)\n\n",
              reps, inner);
  orca::TextTable table(
      {"stages", "ns/event", "p50 ns", "p99 ns", "Mev/s"});
  for (int stages = 1; stages <= 5; ++stages) {
    const Summary dist = run_depth(stages, reps, inner);
    const double mev_per_s = dist.mean > 0 ? 1000.0 / dist.mean : 0.0;
    table.add_row({orca::strfmt("%d", stages),
                   orca::strfmt("%.1f", dist.mean),
                   orca::strfmt("%.1f", dist.p50),
                   orca::strfmt("%.1f", dist.p99),
                   orca::strfmt("%.2f", mev_per_s)});
    orca::bench::JsonRow("pipeline")
        .num("stages", stages)
        .num("reps", reps)
        .num("inner", inner)
        .fixed("ns_per_event", dist.mean)
        .latency_tail(dist, "ns")
        .fixed("mev_per_s", mev_per_s, 3)
        .print();
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
