/// Selective-collection ablation (paper Sec. VI): how much of the
/// collection overhead can a tool recover by reducing how often it stores
/// data? Runs LU-HP (the overhead-heaviest benchmark, ~300k region calls)
/// under progressively more selective tools:
///
///   full       : callstack at every join (the Sec. V prototype)
///   sample/16  : callstack at every 16th join
///   dedup      : one callstack per calling context
///   events-only: no callstacks at all
///   off        : no collector
///
/// Expected shape: overhead falls monotonically toward events-only —
/// measurement/storage dominates (Sec. V-B), so collecting less closes
/// most of the gap.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "npb/kernels.hpp"
#include "runtime/runtime.hpp"
#include "tool/collector_tool.hpp"

using orca::bench::flag_double;
using orca::bench::flag_int;
using orca::tool::PrototypeCollector;
using orca::tool::ToolOptions;

namespace {

struct Variant {
  const char* name;
  bool attach;
  ToolOptions opts;
};

double run_variant(const Variant& variant, int threads, double scale) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = threads;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  if (variant.attach) {
    tool.reset();
    tool.attach(variant.opts);
  }
  orca::npb::NpbOptions opts;
  opts.num_threads = threads;
  opts.scale = scale;
  const double seconds = orca::npb::run_lu_hp(opts).seconds;
  if (variant.attach) tool.detach();
  orca::rt::Runtime::make_current(nullptr);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = flag_double(argc, argv, "scale", 0.3);
  const int reps = flag_int(argc, argv, "reps", 3);
  const int threads = flag_int(argc, argv, "threads", 4);

  ToolOptions full;
  ToolOptions sampled;
  sampled.callstack_sampling_interval = 16;
  ToolOptions dedup;
  dedup.dedup_by_context = true;
  ToolOptions events_only;
  events_only.record_callstacks = false;

  const Variant variants[] = {
      {"off", false, {}},
      {"events-only", true, events_only},
      {"dedup", true, dedup},
      {"sample/16", true, sampled},
      {"full", true, full},
  };

  std::printf("Selective collection (paper Sec. VI): LU-HP, %d threads, "
              "scale=%.2f, best of %d\n\n", threads, scale, reps);

  double off_seconds = 0;
  orca::TextTable table({"tool variant", "seconds", "overhead %"});
  for (const Variant& variant : variants) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      best = std::min(best, run_variant(variant, threads, scale));
    }
    if (!variant.attach) off_seconds = best;
    table.add_row({variant.name, orca::strfmt("%.3f", best),
                   variant.attach
                       ? orca::strfmt("%.1f", orca::bench::overhead_percent_raw(
                                                  off_seconds, best))
                       : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nshape: overhead shrinks as the tool stores less — the "
              "measurement/storage share of Sec. V-B is recoverable through "
              "the selectivity the paper's conclusion recommends.\n");
  return 0;
}
