/// Figure 6 — "Overhead measurements for NPB3.2-MZ-MPI benchmarks."
///
/// Runs the hybrid MZ analogs at the paper's process x thread splits
/// (1x8, 2x4, 4x2, 8x1), collector detached vs. attached per rank, and
/// reports the percentage runtime increase. Paper shape: SP-MZ worst
/// (~16% at 1x8: >400k per-process region calls), halving as processes
/// replace threads because per-process region calls halve.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "npb/multizone.hpp"
#include "runtime/ompc_api.h"
#include "tool/client2.hpp"
#include "tool/collector_tool.hpp"

using orca::bench::flag_double;
using orca::bench::flag_int;
using orca::npb::MzOptions;
using orca::npb::MzResult;

namespace {

struct Config {
  int procs;
  int threads;
};

double run_once(const std::string& name, Config config, double scale,
                bool with_tool) {
  MzOptions opts;
  opts.procs = config.procs;
  opts.threads_per_proc = config.threads;
  opts.scale = scale;

  auto& tool = orca::tool::PrototypeCollector::instance();
  if (with_tool) {
    tool.reset();
    tool.configure(orca::tool::ToolOptions{});
    // Like an LD_PRELOAD'ed tool initializing inside each MPI process:
    // every rank STARTs its own runtime's collector and registers the
    // fork/join/ibar callbacks there.
    opts.rank_begin = [](int) {
      orca::collector::Client client(&__omp_collector_api);
      client.start();
      for (const auto event :
           {OMP_EVENT_FORK, OMP_EVENT_JOIN, OMP_EVENT_THR_BEGIN_IBAR,
            OMP_EVENT_THR_END_IBAR}) {
        client.register_event(
            event, orca::tool::PrototypeCollector::raw_callback());
      }
    };
    opts.rank_end = [](int) {
      orca::collector::Client client(&__omp_collector_api);
      client.stop();
    };
  }
  // Repeat until enough wall time accumulates for a stable percentage.
  constexpr double kMinSeconds = 0.25;
  double total = 0;
  int iters = 0;
  do {
    const MzResult result = orca::npb::run_mz_by_name(name, opts);
    total += result.seconds;
    ++iters;
    if (with_tool) tool.reset();
  } while (total < kMinSeconds);
  return total / iters;
}

double best_of(const std::string& name, Config config, double scale,
               bool with_tool, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, run_once(name, config, scale, with_tool));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = flag_double(argc, argv, "scale", 0.10);
  const int reps = flag_int(argc, argv, "reps", 2);
  const std::vector<Config> configs = {{1, 8}, {2, 4}, {4, 2}, {8, 1}};

  std::printf("Figure 6: NPB3.2-MZ analogs over MiniMPI — %% runtime "
              "overhead with a per-rank collector attached\n");
  std::printf("(scale=%.2f of the paper's region schedule, best of %d "
              "runs)\n\n",
              scale, reps);

  orca::TextTable table({"benchmark", "1x8 %", "2x4 %", "4x2 %", "8x1 %",
                         "us/call 1x8", "us/call 8x1", "calls/proc @1x8"});
  for (const auto& target : orca::npb::table2_targets()) {
    std::vector<std::string> row;
    row.emplace_back(target.name);
    std::vector<double> us_per_call;
    for (const Config& c : configs) {
      const double off = best_of(target.name, c, scale, false, reps);
      const double on = best_of(target.name, c, scale, true, reps);
      const double pct = orca::bench::overhead_percent(off, on);
      row.push_back(orca::strfmt("%.1f", pct));
      // Absolute collection cost per region call: the thread-count trend
      // the paper's percentages reflect (events per region ~ 2 + 2T), made
      // visible independently of the off-arm's oversubscription cost.
      const double total_calls =
          static_cast<double>(orca::npb::scaled_target(
              orca::npb::table2_target(target.name, c.procs), scale)) *
          c.procs;
      us_per_call.push_back((on - off) / total_calls * 1e6);
      orca::bench::JsonRow("fig6_npb_mz")
          .str("benchmark", target.name)
          .str("config", orca::strfmt("%dx%d", c.procs, c.threads).c_str())
          .num("threads", c.threads)
          .num("reps", reps)
          .fixed("scale", scale)
          .fixed("overhead_pct", pct)
          .fixed("us_per_call", us_per_call.back(), 3)
          .print();
    }
    row.push_back(orca::strfmt("%.2f", us_per_call.front()));
    row.push_back(orca::strfmt("%.2f", us_per_call.back()));
    row.push_back(orca::strfmt(
        "%llu", static_cast<unsigned long long>(orca::npb::scaled_target(
                    orca::npb::table2_target(target.name, 1), scale))));
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\npaper shape: SP-MZ worst, overhead tracking per-process region "
      "calls. NOTE: on a single-core host the %% columns invert across "
      "configurations because the *baseline* cost of thread-heavy configs "
      "(1x8) is dominated by oversubscribed fork/join, which the paper's "
      "8-core testbed did not pay; the per-region-call collection cost "
      "(us/call) falls from 1x8 to 8x1 — the same direction, for the "
      "paper's reason (events per region shrink with the thread count).\n");
  return 0;
}
