/// Figure 4 — "Overhead measurements for EPCC benchmarks."
///
/// Runs the EPCC syncbench directive set at 4/8/16/32 threads, once with
/// the ORA collector detached and once attached (fork/join/implicit-barrier
/// events, the paper's prototype-tool registration), and reports the
/// percentage increase in per-directive overhead. The paper's shape to
/// reproduce: region-heavy directives (PARALLEL, PARALLEL FOR, REDUCTION)
/// show a few percent; directives with few events stay near zero; the
/// tiny-execution-time outliers (LOCK, ATOMIC) can show inflated
/// percentages.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "epcc/syncbench.hpp"
#include "runtime/runtime.hpp"
#include "tool/collector_tool.hpp"

using orca::bench::flag_double;
using orca::bench::flag_int;
using orca::epcc::Directive;
using orca::epcc::SyncBench;

namespace {

/// Measure all directives at one thread count, collector off then on.
/// Returns directive -> (off_us, on_us).
std::map<Directive, std::pair<double, double>> measure_config(
    int threads, const orca::epcc::Options& base) {
  std::map<Directive, std::pair<double, double>> out;

  orca::epcc::Options opts = base;
  opts.num_threads = threads;

  // Fresh runtime per configuration so the pool matches the thread count.
  {
    orca::rt::RuntimeConfig cfg;
    cfg.num_threads = threads;
    cfg.max_threads = 64;
    orca::rt::Runtime rt(cfg);
    orca::rt::Runtime::make_current(&rt);
    SyncBench bench(opts);
    for (const auto r : orca::epcc::all_directives()) {
      // Best-of across outer reps: robust against scheduler noise on a
      // shared/oversubscribed host.
      out[r].first = bench.measure(r).min_overhead_us;
    }
    orca::rt::Runtime::make_current(nullptr);
  }
  {
    orca::rt::RuntimeConfig cfg;
    cfg.num_threads = threads;
    cfg.max_threads = 64;
    orca::rt::Runtime rt(cfg);
    orca::rt::Runtime::make_current(&rt);
    auto& tool = orca::tool::PrototypeCollector::instance();
    tool.reset();
    orca::tool::ToolOptions topts;
    tool.attach(topts);
    SyncBench bench(opts);
    for (const auto r : orca::epcc::all_directives()) {
      out[r].second = bench.measure(r).min_overhead_us;
    }
    tool.detach();
    orca::rt::Runtime::make_current(nullptr);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  orca::epcc::Options base;
  base.outer_reps = flag_int(argc, argv, "reps", 10);
  base.inner_reps = flag_int(argc, argv, "inner", 256);
  base.delay_length = flag_int(argc, argv, "delay", 200);
  const std::vector<int> thread_counts = {4, 8, 16, 32};

  std::printf("Figure 4: EPCC syncbench — %% increase in directive overhead "
              "with ORA collection enabled\n");
  std::printf("(outer=%d inner=%d delay=%d; events: fork/join/ibar; "
              "<1%% reported as 0, as in the paper)\n\n",
              base.outer_reps, base.inner_reps, base.delay_length);

  std::map<int, std::map<Directive, std::pair<double, double>>> results;
  for (const int t : thread_counts) results[t] = measure_config(t, base);

  orca::TextTable table({"directive", "4 thr %", "8 thr %", "16 thr %",
                         "32 thr %", "off@4 us", "on@4 us"});
  for (const auto d : orca::epcc::all_directives()) {
    std::vector<std::string> row;
    row.emplace_back(orca::epcc::name(d));
    for (const int t : thread_counts) {
      const auto [off, on] = results[t][d];
      row.push_back(orca::strfmt(
          "%.1f", orca::bench::overhead_percent(off, on)));
    }
    const auto [off4, on4] = results[4][d];
    row.push_back(orca::strfmt("%.2f", off4));
    row.push_back(orca::strfmt("%.2f", on4));
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\npaper shape: PARALLEL / PARALLEL FOR / REDUCTION ~5%%; "
              "most others <5%%; LOCK/ATOMIC may inflate (tiny base time).\n");
  return 0;
}
