/// E8 ablations — micro-costs behind the paper's design decisions
/// (DESIGN.md §5):
///
///  * always-on state tracking is "one assignment operation per state"
///    (IV-C) vs. the rejected branch-checked alternative;
///  * event dispatch with no registered callback costs one load+branch —
///    the check ordering the paper stresses;
///  * per-thread request queues vs. the rejected single global queue
///    (IV-B contention claim);
///  * try-lock-first wait detection keeps uncontended locks cheap (IV-C3);
///  * fork/join latency with the collector off vs. armed.
#include <benchmark/benchmark.h>

#include <atomic>

#include "collector/dispatch.hpp"
#include "collector/message.hpp"
#include "collector/queue.hpp"
#include "collector/registry.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::collector::PendingRequest;
using orca::collector::QueuePolicy;
using orca::collector::Registry;
using orca::collector::RequestQueues;

// --- state tracking ----------------------------------------------------------

void BM_StateSet_AlwaysTrack(benchmark::State& state) {
  // The paper's choice: unconditionally store (one relaxed assignment).
  std::atomic<int> slot{THR_SERIAL_STATE};
  int v = THR_WORK_STATE;
  for (auto _ : state) {
    slot.store(v, std::memory_order_relaxed);
    benchmark::DoNotOptimize(slot);
    v = v == THR_WORK_STATE ? THR_IBAR_STATE : THR_WORK_STATE;
  }
}
BENCHMARK(BM_StateSet_AlwaysTrack);

void BM_StateSet_BranchChecked(benchmark::State& state) {
  // The rejected alternative: check "is the collector initialized?" before
  // every assignment ("which is not efficient if a program executes
  // without using the OpenMP collector API", paper IV-C).
  std::atomic<int> slot{THR_SERIAL_STATE};
  std::atomic<bool> initialized{state.range(0) != 0};
  int v = THR_WORK_STATE;
  for (auto _ : state) {
    if (initialized.load(std::memory_order_acquire)) {
      slot.store(v, std::memory_order_relaxed);
    }
    benchmark::DoNotOptimize(slot);
    v = v == THR_WORK_STATE ? THR_IBAR_STATE : THR_WORK_STATE;
  }
}
BENCHMARK(BM_StateSet_BranchChecked)->Arg(0)->Arg(1);

// --- event dispatch -----------------------------------------------------------

std::atomic<std::uint64_t> g_event_sink{0};
void sink_callback(OMP_COLLECTORAPI_EVENT) {
  g_event_sink.fetch_add(1, std::memory_order_relaxed);
}

void BM_EventFire_Unregistered(benchmark::State& state) {
  Registry registry;  // not even started: first check (null callback) wins
  for (auto _ : state) {
    registry.fire(OMP_EVENT_FORK);
  }
}
BENCHMARK(BM_EventFire_Unregistered);

void BM_EventFire_Registered(benchmark::State& state) {
  Registry registry;
  registry.start();
  registry.register_callback(OMP_EVENT_FORK, &sink_callback);
  for (auto _ : state) {
    registry.fire(OMP_EVENT_FORK);
  }
}
BENCHMARK(BM_EventFire_Registered);

void BM_EventFire_Paused(benchmark::State& state) {
  Registry registry;
  registry.start();
  registry.register_callback(OMP_EVENT_FORK, &sink_callback);
  registry.pause();
  for (auto _ : state) {
    registry.fire(OMP_EVENT_FORK);
  }
}
BENCHMARK(BM_EventFire_Paused);

// --- locked registry vs epoch-published snapshot (tentpole ablation) ----------

/// Replica of the rejected lock-based dispatch design: one shared SpinLock
/// serializes every fire against registration so a callback can never be
/// torn down mid-invocation. That is the correctness bar the epoch design
/// meets without any lock — a lock-based table must hold the lock across
/// admission *and* callback (or take it twice), so every event point pays
/// a shared-cacheline RMW even when nothing is registered.
class LockedTableRegistry {
 public:
  void start() noexcept {
    std::scoped_lock lk(mu_);
    started_ = true;
  }
  void register_callback(OMP_COLLECTORAPI_EVENT event,
                         OMP_COLLECTORAPI_CALLBACK cb) noexcept {
    std::scoped_lock lk(mu_);
    table_[static_cast<std::size_t>(event)] = cb;
  }
  void fire(OMP_COLLECTORAPI_EVENT event) noexcept {
    std::scoped_lock lk(mu_);
    if (!started_) return;
    const OMP_COLLECTORAPI_CALLBACK cb =
        table_[static_cast<std::size_t>(event)];
    if (cb != nullptr) cb(event);
  }

 private:
  orca::SpinLock mu_;
  bool started_ = false;
  std::array<OMP_COLLECTORAPI_CALLBACK, ORCA_EVENT_EXT_LAST> table_{};
};

/// Shared fixtures for the ablation: built once (magic static), so every
/// benchmark thread fires at the same instance — the contention is the
/// point.
struct AblationRegistries {
  Registry epoch_disarmed;
  Registry epoch_armed;
  LockedTableRegistry locked_disarmed;
  LockedTableRegistry locked_armed;
  AblationRegistries() {
    epoch_armed.start();
    epoch_armed.register_callback(OMP_EVENT_FORK, &sink_callback);
    locked_armed.start();
    locked_armed.register_callback(OMP_EVENT_FORK, &sink_callback);
  }
};

AblationRegistries& ablation() {
  static AblationRegistries registries;
  return registries;
}

void BM_EventFire_LockedRegistry(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  LockedTableRegistry& reg =
      armed ? ablation().locked_armed : ablation().locked_disarmed;
  for (auto _ : state) {
    reg.fire(OMP_EVENT_FORK);
  }
  state.SetLabel(armed ? "registered" : "disarmed");
}
BENCHMARK(BM_EventFire_LockedRegistry)->Arg(0)->Arg(1)->ThreadRange(1, 64);

void BM_EventFire_EpochSnapshot(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  Registry& reg = armed ? ablation().epoch_armed : ablation().epoch_disarmed;
  // Each firing thread owns an EmitterCache, as runtime pool threads do.
  orca::collector::EmitterCache* cache = reg.acquire_emitter();
  for (auto _ : state) {
    reg.fire(OMP_EVENT_FORK, cache);
  }
  reg.release_emitter(cache);
  state.SetLabel(armed ? "registered" : "disarmed");
}
BENCHMARK(BM_EventFire_EpochSnapshot)->Arg(0)->Arg(1)->ThreadRange(1, 64);

// --- request queue policy (IV-B) ----------------------------------------------

void BM_QueuePolicy(benchmark::State& state) {
  const auto policy =
      state.range(0) == 0 ? QueuePolicy::kPerThread : QueuePolicy::kGlobal;
  static RequestQueues* queues = nullptr;
  if (state.thread_index() == 0) {
    queues = new RequestQueues(64, policy);
  }
  const auto slot = static_cast<std::size_t>(state.thread_index());
  const std::vector<PendingRequest> batch = {PendingRequest{0},
                                             PendingRequest{64}};
  std::uint64_t drained = 0;
  for (auto _ : state) {
    queues->push_and_drain(slot, batch,
                           [&](const PendingRequest&) { ++drained; });
  }
  benchmark::DoNotOptimize(drained);
  if (state.thread_index() == 0) {
    state.SetLabel(policy == QueuePolicy::kPerThread ? "per-thread queues"
                                                     : "single global queue");
  }
}
BENCHMARK(BM_QueuePolicy)->Arg(0)->Arg(1)->Threads(1)->Threads(4)->Threads(8);

// --- collector API round trips --------------------------------------------------

void BM_CollectorApi_StateQuery(benchmark::State& state) {
  orca::rt::Runtime rt;
  orca::rt::Runtime::make_current(&rt);
  for (auto _ : state) {
    MessageBuilder msg;
    msg.add_state_query();
    benchmark::DoNotOptimize(rt.collector_api(msg.buffer()));
  }
  orca::rt::Runtime::make_current(nullptr);
}
BENCHMARK(BM_CollectorApi_StateQuery);

// --- locks: try-lock-first wait detection (IV-C3) -------------------------------

void BM_UncontendedLock(benchmark::State& state) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 1;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);
  if (state.range(0) != 0) {
    // Arm the collector: events registered, but an uncontended lock never
    // fires them thanks to the try-lock fast path.
    MessageBuilder msg;
    msg.add(OMP_REQ_START);
    msg.add_register(OMP_EVENT_THR_BEGIN_LKWT, &sink_callback);
    msg.add_register(OMP_EVENT_THR_END_LKWT, &sink_callback);
    rt.collector_api(msg.buffer());
  }
  omp_lock_t lock;
  omp_init_lock(&lock);
  for (auto _ : state) {
    omp_set_lock(&lock);
    omp_unset_lock(&lock);
  }
  omp_destroy_lock(&lock);
  if (state.range(0) != 0) {
    MessageBuilder stop;
    stop.add(OMP_REQ_STOP);
    rt.collector_api(stop.buffer());
  }
  orca::rt::Runtime::make_current(nullptr);
}
BENCHMARK(BM_UncontendedLock)->Arg(0)->Arg(1);

// --- runtime self-telemetry ------------------------------------------------------
//
// The telemetry hooks ride the hottest runtime paths (every set_state, every
// fork), so disarmed they must cost what the event fast path costs: one
// relaxed load + branch. Armed rows price the full hook — a 16-byte ring
// store for the timeline, a cacheline-padded per-thread shard RMW for
// counters.

void BM_TelemetryStateRecord(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  if (armed) orca::telemetry::arm(orca::telemetry::kTimelineBit);
  int v = THR_WORK_STATE;
  for (auto _ : state) {
    orca::telemetry::record_state(v);
    v = v == THR_WORK_STATE ? THR_IBAR_STATE : THR_WORK_STATE;
  }
  if (armed) orca::telemetry::disarm(orca::telemetry::kTimelineBit);
  state.SetLabel(armed ? "armed" : "disarmed");
}
BENCHMARK(BM_TelemetryStateRecord)->Arg(0)->Arg(1)->ThreadRange(1, 8);

void BM_TelemetryCounter(benchmark::State& state) {
  const bool armed = state.range(0) != 0;
  if (armed) orca::telemetry::arm(orca::telemetry::kMetricsBit);
  for (auto _ : state) {
    orca::telemetry::count(orca::telemetry::Counter::kForks);
  }
  if (armed) orca::telemetry::disarm(orca::telemetry::kMetricsBit);
  state.SetLabel(armed ? "armed" : "disarmed");
}
BENCHMARK(BM_TelemetryCounter)->Arg(0)->Arg(1)->ThreadRange(1, 8);

// --- fork/join latency -----------------------------------------------------------

void empty_region(int, void*) {}

void BM_ForkJoin(benchmark::State& state) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = static_cast<int>(state.range(0));
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);
  if (state.range(1) != 0) {
    MessageBuilder msg;
    msg.add(OMP_REQ_START);
    msg.add_register(OMP_EVENT_FORK, &sink_callback);
    msg.add_register(OMP_EVENT_JOIN, &sink_callback);
    rt.collector_api(msg.buffer());
  }
  for (auto _ : state) {
    rt.fork(&empty_region, nullptr, 0);
  }
  state.SetLabel(state.range(1) != 0 ? "collector armed" : "collector off");
  orca::rt::Runtime::make_current(nullptr);
}
BENCHMARK(BM_ForkJoin)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1});

}  // namespace

BENCHMARK_MAIN();
