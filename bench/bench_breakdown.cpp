/// Section V-B overhead breakdown — "81.22% of the overheads can be
/// attributed to performance measurement/storage [LU-HP]; in the case of
/// SP-MZ, 99.35% of the overheads came from performance
/// measurement/storage."
///
/// Three arms per workload:
///   off  : no collector attached
///   comm : callbacks registered but empty (runtime<->collector
///          communication + callback dispatch only)
///   full : callbacks store time-counter samples, query region ids, and
///          record join callstacks (measurement/storage)
///
/// measurement/storage share = (T_full - T_comm) / (T_full - T_off).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "npb/kernels.hpp"
#include "npb/multizone.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "tool/collector_tool.hpp"

using orca::bench::flag_double;
using orca::bench::flag_int;
using orca::tool::PrototypeCollector;
using orca::tool::ToolOptions;

namespace {

enum class Arm { kOff, kCommOnly, kFull };

ToolOptions arm_options(Arm arm) {
  ToolOptions opts;
  if (arm == Arm::kCommOnly) {
    opts.measure = false;  // callbacks fire, bump a counter, return
    opts.record_callstacks = false;
    opts.query_region_ids = false;
  }
  return opts;
}

double run_lu_hp_arm(Arm arm, int threads, double scale) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = threads;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  if (arm != Arm::kOff) {
    tool.reset();
    tool.attach(arm_options(arm));
  }
  orca::npb::NpbOptions opts;
  opts.num_threads = threads;
  opts.scale = scale;
  const double seconds = orca::npb::run_lu_hp(opts).seconds;
  if (arm != Arm::kOff) tool.detach();
  orca::rt::Runtime::make_current(nullptr);
  return seconds;
}

double run_sp_mz_arm(Arm arm, double scale) {
  orca::npb::MzOptions opts;
  opts.procs = 1;  // the paper's "4 threads X 1 process" case
  opts.threads_per_proc = 4;
  opts.scale = scale;
  auto& tool = PrototypeCollector::instance();
  if (arm != Arm::kOff) {
    tool.reset();
    tool.configure(arm_options(arm));
    opts.rank_begin = [](int) {
      orca::collector::Client client(&__omp_collector_api);
      client.start();
      for (const auto event :
           {OMP_EVENT_FORK, OMP_EVENT_JOIN, OMP_EVENT_THR_BEGIN_IBAR,
            OMP_EVENT_THR_END_IBAR}) {
        client.register_event(event, PrototypeCollector::raw_callback());
      }
    };
    opts.rank_end = [](int) {
      orca::collector::Client client(&__omp_collector_api);
      client.stop();
    };
  }
  return orca::npb::run_mz_by_name("SP-MZ", opts).seconds;
}

template <typename RunFn>
void report(const char* name, double paper_share, int reps, RunFn&& run) {
  double t_off = 1e300;
  double t_comm = 1e300;
  double t_full = 1e300;
  for (int r = 0; r < reps; ++r) {
    t_off = std::min(t_off, run(Arm::kOff));
    t_comm = std::min(t_comm, run(Arm::kCommOnly));
    t_full = std::min(t_full, run(Arm::kFull));
  }
  const double total_ovh = t_full - t_off;
  const double comm_ovh = std::max(0.0, t_comm - t_off);
  const double measure_ovh = std::max(0.0, t_full - t_comm);
  const double share =
      total_ovh > 0 ? std::min(100.0, measure_ovh / total_ovh * 100.0) : 0.0;
  std::printf("%-8s off=%.3fs comm-only=%.3fs full=%.3fs | overhead: "
              "total=%.1fms comm=%.1fms measure/store=%.1fms | "
              "measurement/storage share = %.2f%% (paper: %.2f%%)\n",
              name, t_off, t_comm, t_full, total_ovh * 1e3, comm_ovh * 1e3,
              measure_ovh * 1e3, share, paper_share);
  orca::bench::JsonRow("breakdown")
      .str("benchmark", name)
      .num("reps", reps)
      .fixed("off_s", t_off, 4)
      .fixed("comm_s", t_comm, 4)
      .fixed("full_s", t_full, 4)
      .fixed("comm_overhead_ms", comm_ovh * 1e3)
      .fixed("measure_overhead_ms", measure_ovh * 1e3)
      .fixed("measure_share_pct", share)
      .fixed("paper_share_pct", paper_share)
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = flag_double(argc, argv, "scale", 0.35);
  const int reps = flag_int(argc, argv, "reps", 3);

  std::printf("Section V-B breakdown: where does the collection overhead "
              "come from? (scale=%.2f, best of %d)\n\n", scale, reps);

  report("LU-HP", 81.22, reps,
         [&](Arm arm) { return run_lu_hp_arm(arm, 4, scale); });
  report("SP-MZ", 99.35, reps, [&](Arm arm) { return run_sp_mz_arm(arm, scale); });

  std::printf("\npaper shape: for both workloads the overwhelming share of "
              "overhead is measurement/storage, not callbacks or "
              "runtime<->collector communication.\n");
  return 0;
}
