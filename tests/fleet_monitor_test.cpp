/// Fleet-session integration tests (ctest label: fleet). The acceptance
/// scenario from docs/FLEET.md: orcamon attaches to three instrumented
/// processes, one is SIGKILLed mid-run, and the daemon still produces a
/// merged Perfetto trace with all three process tracks, a fleet report
/// with honest per-producer loss books, and a salvaged crash section for
/// the killed producer — while the two survivors detach cleanly under
/// load.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "shm/exporter.hpp"
#include "tool/orcamon/fleet_monitor.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::orcamon::FleetMonitor;
using orca::tool::orcamon::MonitorOptions;
using orca::tool::orcamon::ProducerInfo;

void burn_region(int, void*) {
  volatile double x = 0;
  for (int i = 0; i < 2000; ++i) x = x + i;
}

/// Child body: export through shm and run parallel regions until the stop
/// file appears (or a failsafe cap runs out). Clean children delete the
/// runtime (finalized segment); the victim never gets that far.
[[noreturn]] void producer_child(const std::string& prefix,
                                 const std::string& stop_file) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.max_threads = 4;
  cfg.shm_export = true;
  cfg.shm_prefix = prefix;
  cfg.shm_ring_capacity = 1024;
  cfg.shm_heartbeat_ms = 10;
  auto* rt = new Runtime(cfg);
  Runtime::make_current(rt);
  if (!orca::shm::export_armed()) _exit(10);

  // 60s failsafe so a parent bug can never hang the suite.
  for (int i = 0; i < 60000; ++i) {
    rt->fork(&burn_region, nullptr, 2);
    if (::access(stop_file.c_str(), F_OK) == 0) break;
    ::usleep(1000);
  }
  delete rt;  // clean shutdown: finalize + unlink the segment
  _exit(0);
}

TEST(FleetMonitor, ThreeProducersOneKilledMidRun) {
  const std::string prefix =
      "orcafleet-" + std::to_string(::getpid());
  const std::string stop_file =
      "fleet_monitor_stop." + std::to_string(::getpid());
  const std::string trace_file =
      "fleet_monitor_trace." + std::to_string(::getpid()) + ".json";
  std::remove(stop_file.c_str());
  std::remove(trace_file.c_str());

  // Fork the fleet before this process grows any threads.
  std::vector<pid_t> kids;
  for (int i = 0; i < 3; ++i) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) producer_child(prefix, stop_file);
    kids.push_back(pid);
  }
  const pid_t victim = kids[2];

  MonitorOptions opts;
  opts.prefix = prefix;
  opts.shards = 3;
  opts.poll_ms = 1;
  opts.discover_ms = 20;
  opts.report_interval_s = 0;
  opts.trace_out = trace_file;
  opts.report_out = "fleet_monitor_report." + std::to_string(::getpid());
  opts.exit_when_idle = true;
  opts.liveness_grace = 4;
  FleetMonitor monitor(opts);
  std::thread runner([&] { monitor.run(); });

  // Wait until all three producers attached and real work flowed through
  // the merged pipeline, then kill one mid-run.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((monitor.attached_count() < 3 || monitor.events_seen() < 200) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(monitor.attached_count(), 3u);
  ASSERT_GE(monitor.events_seen(), 200u);

  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // Tell the survivors to finish cleanly (detach under load).
  { std::ofstream(stop_file) << "stop\n"; }

  int status = 0;
  ASSERT_EQ(::waitpid(kids[0], &status, 0), kids[0]);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(::waitpid(kids[1], &status, 0), kids[1]);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // exit_when_idle: the monitor winds down once every producer finalized
  // or died and their rings are drained.
  runner.join();

  const std::vector<ProducerInfo> fleet = monitor.producers();
  ASSERT_EQ(fleet.size(), 3u);
  int dead = 0, finalized = 0;
  for (const ProducerInfo& p : fleet) {
    EXPECT_TRUE(p.drained) << "pid " << p.pid;
    // Honest loss books: once drained, every produced record is either
    // read or accounted as lost — for the SIGKILLed producer too.
    EXPECT_EQ(p.produced, p.read + p.lost) << "pid " << p.pid;
    EXPECT_GT(p.read, 0u) << "pid " << p.pid;
    if (p.dead) {
      ++dead;
      EXPECT_EQ(p.pid, static_cast<std::int64_t>(victim));
      // Salvaged crash section: the heartbeat's rolling snapshot survives
      // SIGKILL, where no in-process handler can run.
      EXPECT_EQ(p.salvage.kind, orca::shm::kCrashSnapshot);
      EXPECT_NE(p.salvage.text.find("events_published"), std::string::npos);
      EXPECT_NE(p.salvage.text.find("beats"), std::string::npos);
    } else {
      EXPECT_TRUE(p.finalized) << "pid " << p.pid;
      ++finalized;
    }
  }
  EXPECT_EQ(dead, 1);
  EXPECT_EQ(finalized, 2);

  // The dead producer's segment was reaped; the fleet stayed clean.
  EXPECT_TRUE(orca::shm::discover_segments(prefix).empty());

  // Merged Perfetto trace: every process track present.
  std::ifstream in(trace_file);
  ASSERT_TRUE(in.good()) << "no trace at " << trace_file;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string trace = buf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("parallel region"), std::string::npos);
  for (const pid_t pid : kids) {
    EXPECT_NE(trace.find("\"pid\":" + std::to_string(pid)),
              std::string::npos)
        << "trace lost process " << pid;
  }

  // Fleet report: totals, states, and the crash section called out.
  const std::string report = monitor.render_report();
  EXPECT_NE(report.find("3 producer(s)"), std::string::npos);
  EXPECT_NE(report.find("1 dead"), std::string::npos);
  EXPECT_NE(report.find("crash section (snapshot"), std::string::npos);
  EXPECT_NE(report.find("parallel-region durations"), std::string::npos);

  std::remove(stop_file.c_str());
  std::remove(trace_file.c_str());
  std::remove(opts.report_out.c_str());
}

TEST(FleetMonitor, EmptyFleetHonoursDuration) {
  MonitorOptions opts;
  opts.prefix = "orcafleet-none-" + std::to_string(::getpid());
  opts.duration_s = 0.2;
  opts.report_interval_s = 0;
  opts.report_out = "/dev/null";
  FleetMonitor monitor(opts);
  EXPECT_EQ(monitor.run(), 0u);
  EXPECT_EQ(monitor.events_seen(), 0u);
}

}  // namespace
