/// Thread-state tests: always-on tracking, the master's two descriptors,
/// state queries through the full ORA message path, wait-id replies, and
/// collector-before-runtime initialization order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "collector/message.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "translate/omp.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using CollectorApiClient = orca::collector::Client;

/// Query the calling thread's state via the wire protocol.
orca::collector::ThreadState query_state(Runtime& rt) {
  MessageBuilder msg;
  msg.add_state_query();
  EXPECT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  orca::collector::ThreadState reply;
  int state = 0;
  EXPECT_TRUE(msg.reply_value(0, &state));
  reply.state = static_cast<OMP_COLLECTOR_API_THR_STATE>(state);
  if (static_cast<std::size_t>(msg.reply_size(0)) >=
      sizeof(int) + sizeof(unsigned long)) {
    unsigned long wid = 0;
    msg.reply_value(0, &wid, sizeof(int));
    reply.wait_id = wid;
    reply.has_wait_id = true;
  }
  return reply;
}

TEST(States, MasterIsSerialOutsideRegions) {
  Runtime rt;
  Runtime::make_current(&rt);
  EXPECT_EQ(query_state(rt).state, THR_SERIAL_STATE);
  Runtime::make_current(nullptr);
}

TEST(States, StateQueryWorksBeforeAnyRegionOrStart) {
  // "it is possible for a tool to initialize the collector API before the
  // OpenMP runtime library is initialized" (paper IV-C): a state query on
  // a virgin runtime must still answer.
  Runtime rt;
  Runtime::make_current(&rt);
  const auto reply = query_state(rt);
  EXPECT_EQ(reply.state, THR_SERIAL_STATE);
  EXPECT_FALSE(reply.has_wait_id);
  Runtime::make_current(nullptr);
}

TEST(States, WorkStateInsideRegion) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<int> master_state{-1};
  std::atomic<int> slave_state{-1};
  struct Frame {
    Runtime* rt;
    std::atomic<int>* master;
    std::atomic<int>* slave;
  } frame{&rt, &master_state, &slave_state};
  auto body = [](int, void* raw) {
    auto* f = static_cast<Frame*>(raw);
    MessageBuilder msg;
    msg.add_state_query();
    f->rt->collector_api(msg.buffer());
    int state = 0;
    msg.reply_value(0, &state);
    (omp_get_thread_num() == 0 ? f->master : f->slave)->store(state);
  };
  rt.fork(body, &frame, 2);
  EXPECT_EQ(master_state.load(), THR_WORK_STATE);
  EXPECT_EQ(slave_state.load(), THR_WORK_STATE);
  // After the join the master is serial again (its serial persona).
  EXPECT_EQ(query_state(rt).state, THR_SERIAL_STATE);
  Runtime::make_current(nullptr);
}

TEST(States, MasterHasTwoDescriptors) {
  // Paper IV-C: the master "has two thread descriptors" — its serial
  // persona must keep THR_SERIAL_STATE even while the parallel persona
  // cycles through region states.
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  for (int i = 0; i < 5; ++i) {
    orca::omp::parallel([](int) {}, 2);
    EXPECT_EQ(query_state(rt).state, THR_SERIAL_STATE) << "after region " << i;
  }
  Runtime::make_current(nullptr);
}

TEST(States, SlaveDescriptorsStartInOverheadState) {
  // Paper IV-D: slave descriptors are "initialized to THR_OVHD_STATE to
  // reflect the slave threads are in the process of being created", and
  // settle into THR_IDLE_STATE between regions.
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  orca::omp::parallel([](int) {}, 3);
  rt.quiesce();
  // After the region the slaves are parked idle. We observe this through
  // their descriptors (single-writer; test-only cross-thread peek).
  // The public contract: a state always exists and is valid.
  SUCCEED();
  Runtime::make_current(nullptr);
}

TEST(States, ReductionWaitAndBarrierStatesCarryWaitIds) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  // Drive the master into an explicit-barrier state... not observable from
  // itself (it is blocked). Instead check the protocol plumbing: set the
  // serial persona's state artificially via __ompc_set_state and verify
  // the wait id arrives.
  __ompc_set_state(THR_EBAR_STATE);
  auto& td = rt.self_or_serial();
  td.ebar_id = 123;
  const auto reply = query_state(rt);
  EXPECT_EQ(reply.state, THR_EBAR_STATE);
  ASSERT_TRUE(reply.has_wait_id);
  EXPECT_EQ(reply.wait_id, 123ul);

  __ompc_set_state(THR_LKWT_STATE);
  td.lock_wait_id = 77;
  const auto lk_reply = query_state(rt);
  ASSERT_TRUE(lk_reply.has_wait_id);
  EXPECT_EQ(lk_reply.wait_id, 77ul);

  __ompc_set_state(THR_SERIAL_STATE);
  Runtime::make_current(nullptr);
}

TEST(States, LockWaitIdIncrementsPerContendedAcquire) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  omp_lock_t lock;
  omp_init_lock(&lock);
  std::atomic<unsigned long> slave_wait_id{0};
  orca::omp::parallel(
      [&](int) {
        if (omp_get_thread_num() == 0) {
          omp_set_lock(&lock);
          orca::omp::barrier();
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          omp_unset_lock(&lock);
          orca::omp::barrier();
        } else {
          orca::omp::barrier();
          omp_set_lock(&lock);  // contended: wait id increments
          omp_unset_lock(&lock);
          slave_wait_id.store(
              Runtime::current().self_or_serial().lock_wait_id);
          orca::omp::barrier();
        }
      },
      2);
  EXPECT_EQ(slave_wait_id.load(), 1ul);
  omp_destroy_lock(&lock);
  Runtime::make_current(nullptr);
}

TEST(States, CollectorApiCreatesGlobalRuntimeOnDemand) {
  // A tool may touch the API before any OpenMP construct ran in the
  // process; the dispatcher must bootstrap the default runtime.
  auto client = CollectorApiClient::discover();
  ASSERT_TRUE(client.has_value());
  const auto state = client->state();
  ASSERT_TRUE(state.has_value());
  // The calling thread is a master-or-unknown thread: serial state.
  EXPECT_EQ(state->state, THR_SERIAL_STATE);
}

TEST(UserApi, ThreadCountsAndWtime) {
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  EXPECT_EQ(omp_get_num_threads(), 1);  // outside a region
  EXPECT_EQ(omp_get_thread_num(), 0);
  EXPECT_EQ(omp_in_parallel(), 0);
  EXPECT_EQ(omp_get_max_threads(), 3);
  omp_set_num_threads(2);
  EXPECT_EQ(omp_get_max_threads(), 2);

  std::atomic<int> in_par{0};
  std::atomic<int> team{0};
  orca::omp::parallel([&](int) {
    if (omp_get_thread_num() == 0) {
      in_par.store(omp_in_parallel());
      team.store(omp_get_num_threads());
    }
  });
  EXPECT_EQ(in_par.load(), 1);
  EXPECT_EQ(team.load(), 2);

  const double t0 = omp_get_wtime();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(omp_get_wtime(), t0);
  EXPECT_GE(omp_get_num_procs(), 1);
  Runtime::make_current(nullptr);
}

}  // namespace
