/// Synchronization tests: barriers (correctness + distinct IBAR/EBAR
/// events + per-thread barrier ids), user locks and nest locks (try-lock
/// wait detection, LKWT events only under contention), critical sections
/// (CTWT events, per-tag isolation), reductions (REDUC state), and the
/// atomic fallback (ATWT extension).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "collector/message.hpp"
#include "collector/names.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "translate/omp.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

std::atomic<int> g_begin{0};
std::atomic<int> g_end{0};
void pair_counter(OMP_COLLECTORAPI_EVENT e) {
  if (orca::collector::is_begin_event(e)) {
    g_begin.fetch_add(1);
  } else {
    g_end.fetch_add(1);
  }
}

/// Registers begin/end callbacks for `begin` and its matching end event on
/// the given runtime; returns false on failure.
bool arm(Runtime& rt, OMP_COLLECTORAPI_EVENT begin) {
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_register(begin, &pair_counter);
  msg.add_register(orca::collector::matching_end(begin), &pair_counter);
  if (rt.collector_api(msg.buffer()) != 0) return false;
  return msg.errcode(1) == OMP_ERRCODE_OK && msg.errcode(2) == OMP_ERRCODE_OK;
}

void disarm(Runtime& rt) {
  MessageBuilder msg;
  msg.add(OMP_REQ_STOP);
  rt.collector_api(msg.buffer());
}

// --- barriers -----------------------------------------------------------------

TEST(Barrier, NoThreadPassesEarly) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  constexpr int kPhases = 200;
  std::atomic<int> phase_arrivals[2] = {{0}, {0}};
  std::atomic<bool> violation{false};
  orca::omp::parallel(
      [&](int) {
        for (int p = 0; p < kPhases; ++p) {
          phase_arrivals[p % 2].fetch_add(1);
          orca::omp::barrier();
          // After the barrier every thread must see all 4 arrivals.
          if (phase_arrivals[p % 2].load() % 4 != 0) violation.store(true);
          orca::omp::barrier();
        }
      },
      4);
  EXPECT_FALSE(violation.load());
  Runtime::make_current(nullptr);
}

TEST(Barrier, ExplicitAndImplicitEventsAreDistinct) {
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_EBAR));
  g_begin = 0;
  g_end = 0;
  orca::omp::parallel([&](int) {
    orca::omp::barrier();           // explicit: fires EBAR
    orca::omp::barrier();
  }, 3);
  // Two explicit barriers x 3 threads; the region's closing *implicit*
  // barrier must not fire EBAR events. Quiesce first: slaves finish their
  // post-barrier events after the master has returned from the fork.
  rt.quiesce();
  EXPECT_EQ(g_begin.load(), 6);
  EXPECT_EQ(g_end.load(), 6);
  disarm(rt);

  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_IBAR));
  g_begin = 0;
  g_end = 0;
  orca::omp::parallel([&](int) {
    orca::omp::barrier();  // explicit: must NOT fire IBAR
  }, 3);
  rt.quiesce();
  // Only the region-end implicit barrier fires IBAR: 3 threads once.
  EXPECT_EQ(g_begin.load(), 3);
  EXPECT_EQ(g_end.load(), 3);
  disarm(rt);
  Runtime::make_current(nullptr);
}

TEST(Barrier, WaitIdsIncrementPerEntry) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  // Query the master's ebar wait id via the STATE request from inside an
  // explicit barrier is not possible (it is blocked), so check the
  // descriptor counters through repeated barriers + state query between.
  std::atomic<unsigned long> ibar_id{0};
  struct Frame {
    Runtime* rt;
    std::atomic<unsigned long>* out;
  } frame{&rt, &ibar_id};
  auto body = [](int, void* raw) {
    auto* f = static_cast<Frame*>(raw);
    if (omp_get_thread_num() == 0) {
      f->out->store(f->rt->self_or_serial().ibar_id);
    }
  };
  rt.fork(body, &frame, 2);
  const unsigned long after_first = ibar_id.load();
  rt.fork(body, &frame, 2);
  rt.fork(body, &frame, 2);
  const unsigned long after_third = ibar_id.load();
  // Each region adds at least one implicit barrier entry for the master.
  EXPECT_GE(after_third, after_first + 2);
  Runtime::make_current(nullptr);
}

// --- user locks ---------------------------------------------------------------

TEST(Locks, MutualExclusionUnderContention) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  omp_lock_t lock;
  omp_init_lock(&lock);
  long counter = 0;
  orca::omp::parallel(
      [&](int) {
        for (int i = 0; i < 2000; ++i) {
          omp_set_lock(&lock);
          ++counter;
          omp_unset_lock(&lock);
        }
      },
      4);
  EXPECT_EQ(counter, 8000);
  omp_destroy_lock(&lock);
  Runtime::make_current(nullptr);
}

TEST(Locks, UncontendedAcquireFiresNoWaitEvents) {
  RuntimeConfig cfg;
  cfg.num_threads = 1;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_LKWT));
  g_begin = 0;
  g_end = 0;

  omp_lock_t lock;
  omp_init_lock(&lock);
  for (int i = 0; i < 100; ++i) {
    omp_set_lock(&lock);
    omp_unset_lock(&lock);
  }
  // try-lock succeeded every time: no wait state, no events (paper IV-C3).
  EXPECT_EQ(g_begin.load(), 0);
  EXPECT_EQ(g_end.load(), 0);
  omp_destroy_lock(&lock);
  disarm(rt);
  Runtime::make_current(nullptr);
}

TEST(Locks, ContendedAcquireFiresPairedWaitEvents) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_LKWT));
  g_begin = 0;
  g_end = 0;

  // Deterministic contention: the master holds the lock across a barrier
  // and keeps it for a while; the slave's acquisition must take the
  // wait path (one BEGIN_LKWT / END_LKWT pair, with the wait id bumped).
  omp_lock_t lock;
  omp_init_lock(&lock);
  orca::omp::parallel(
      [&](int) {
        if (omp_get_thread_num() == 0) {
          omp_set_lock(&lock);  // uncontended: no events
          orca::omp::barrier();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          omp_unset_lock(&lock);
        } else {
          orca::omp::barrier();
          omp_set_lock(&lock);  // guaranteed contended
          omp_unset_lock(&lock);
        }
      },
      2);
  EXPECT_EQ(g_begin.load(), 1);
  EXPECT_EQ(g_end.load(), 1);
  omp_destroy_lock(&lock);
  disarm(rt);
  Runtime::make_current(nullptr);
}

TEST(Locks, TestLockNeverBlocks) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  omp_lock_t lock;
  omp_init_lock(&lock);
  EXPECT_EQ(omp_test_lock(&lock), 1);
  EXPECT_EQ(omp_test_lock(&lock), 0);  // already held
  omp_unset_lock(&lock);
  EXPECT_EQ(omp_test_lock(&lock), 1);
  omp_unset_lock(&lock);
  omp_destroy_lock(&lock);
  Runtime::make_current(nullptr);
}

TEST(NestLocks, ReentrantForOwner) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  omp_nest_lock_t lock;
  omp_init_nest_lock(&lock);
  long counter = 0;
  orca::omp::parallel(
      [&](int) {
        for (int i = 0; i < 500; ++i) {
          omp_set_nest_lock(&lock);
          omp_set_nest_lock(&lock);  // re-entrant
          ++counter;
          omp_unset_nest_lock(&lock);
          omp_unset_nest_lock(&lock);
        }
      },
      2);
  EXPECT_EQ(counter, 1000);
  omp_destroy_nest_lock(&lock);
  Runtime::make_current(nullptr);
}

// --- critical sections -----------------------------------------------------------

TEST(Critical, ProtectsSharedState) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  long counter = 0;
  orca::omp::parallel(
      [&](int) {
        for (int i = 0; i < 2000; ++i) {
          orca::omp::critical([&] { ++counter; });
        }
      },
      4);
  EXPECT_EQ(counter, 8000);
  Runtime::make_current(nullptr);
}

struct TagA {};
struct TagB {};

TEST(Critical, DistinctNamesUseDistinctLocks) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  // If TagA and TagB shared a lock, the nested acquisition below would
  // self-deadlock. Completing at all is the assertion.
  orca::omp::parallel(
      [&](int) {
        orca::omp::critical<TagA>([&] {
          orca::omp::critical<TagB>([] {});
        });
      },
      2);
  SUCCEED();
  Runtime::make_current(nullptr);
}

struct ContendedTag {};

TEST(Critical, ContendedEntryFiresCtwtEvents) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_CTWT));
  g_begin = 0;
  g_end = 0;

  // Master occupies the critical section for a while after the barrier;
  // the slave's entry must take the CTWT wait path exactly once.
  orca::omp::parallel(
      [&](int) {
        if (omp_get_thread_num() == 0) {
          orca::omp::critical<ContendedTag>([&] {
            orca::omp::barrier();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          });
        } else {
          orca::omp::barrier();
          orca::omp::critical<ContendedTag>([] {});
        }
      },
      2);
  EXPECT_EQ(g_begin.load(), 1);
  EXPECT_EQ(g_end.load(), 1);
  disarm(rt);
  Runtime::make_current(nullptr);
}

// --- reduction state -----------------------------------------------------------

TEST(Reduction, StateVisibleInsideBracket) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<int> observed{-1};
  struct Frame {
    Runtime* rt;
    std::atomic<int>* out;
  } frame{&rt, &observed};
  auto body = [](int gtid, void* raw) {
    auto* f = static_cast<Frame*>(raw);
    static void* lw = nullptr;
    __ompc_reduction(gtid, &lw);
    if (omp_get_thread_num() == 0) {
      // The calling thread's own state, as the collector would query it.
      f->out->store(static_cast<int>(f->rt->self_or_serial().get_state()));
    }
    __ompc_end_reduction(gtid, &lw);
    __ompc_ibarrier();
  };
  rt.fork(body, &frame, 2);
  EXPECT_EQ(observed.load(), THR_REDUC_STATE);
  Runtime::make_current(nullptr);
}

// --- atomic fallback --------------------------------------------------------------

TEST(Atomic, SerializesUpdates) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  long counter = 0;
  orca::omp::parallel(
      [&](int) {
        for (int i = 0; i < 1000; ++i) {
          orca::omp::atomic_update([&] { ++counter; });
        }
      },
      4);
  EXPECT_EQ(counter, 4000);
  Runtime::make_current(nullptr);
}

TEST(Atomic, EventsRequireOptIn) {
  // Default (OpenUH-like): registration is refused.
  {
    RuntimeConfig cfg;
    Runtime rt(cfg);
    Runtime::make_current(&rt);
    MessageBuilder msg;
    msg.add(OMP_REQ_START);
    msg.add_register(OMP_EVENT_THR_BEGIN_ATWT, &pair_counter);
    ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
    EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_UNSUPPORTED);
    disarm(rt);
    Runtime::make_current(nullptr);
  }
  // With atomic_events on, contended atomics report ATWT waits.
  {
    RuntimeConfig cfg;
    cfg.num_threads = 4;
    cfg.atomic_events = true;
    Runtime rt(cfg);
    Runtime::make_current(&rt);
    ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_ATWT));
    g_begin = 0;
    g_end = 0;
    orca::omp::parallel(
        [&](int) {
          if (omp_get_thread_num() == 0) {
            orca::omp::atomic_update([&] {
              orca::omp::barrier();
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
            });
          } else {
            orca::omp::barrier();
            orca::omp::atomic_update([] {});  // guaranteed contended
          }
        },
        2);
    EXPECT_EQ(g_begin.load(), 1);
    EXPECT_EQ(g_end.load(), 1);
    disarm(rt);
    Runtime::make_current(nullptr);
  }
}

// --- ordered wait events -----------------------------------------------------------

TEST(Ordered, WaitEventsPairUnderContention) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  ASSERT_TRUE(arm(rt, OMP_EVENT_THR_BEGIN_ODWT));
  g_begin = 0;
  g_end = 0;

  // Static schedule over two iterations with two threads: thread 0 owns
  // iteration 0, thread 1 owns iteration 1. Thread 1 signals it is about
  // to enter its ordered section, and iteration 0's body then dwells long
  // enough that iteration 1 is guaranteed to hit the ODWT wait path.
  std::atomic<bool> t1_arrived{false};
  orca::omp::parallel(
      [&](int) {
        orca::omp::for_static(0, 1, 1, [&](long long i) {
          if (i == 1) t1_arrived.store(true);
          orca::omp::ordered(i, [&] {
            if (i == 0) {
              while (!t1_arrived.load()) std::this_thread::yield();
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
            }
          });
        });
      },
      2);
  EXPECT_EQ(g_begin.load(), 1);
  EXPECT_EQ(g_end.load(), 1);
  disarm(rt);
  Runtime::make_current(nullptr);
}

}  // namespace
