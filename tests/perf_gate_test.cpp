/// The perf gate (scripts/perf_gate.py) tested like product code: synthetic
/// baseline/current fixture directories drive every verdict the gate can
/// reach — clean pass, metric regression, missing row, missing file, new
/// (ungated) row, malformed input — and the tests pin both the exit code
/// contract (0 pass / 1 regression / 2 malformed) and the report
/// vocabulary ci.sh readers grep for.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef ORCA_SOURCE_DIR
#error "perf_gate_test needs ORCA_SOURCE_DIR pointing at the repo root"
#endif

struct GateResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Fresh fixture sandbox per test, with baseline/ and current/ subdirs.
class PerfGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char templ[] = "/tmp/orca_perf_gate_XXXXXX";
    ASSERT_NE(::mkdtemp(templ), nullptr);
    root_ = templ;
    baseline_ = root_ + "/baseline";
    current_ = root_ + "/current";
    ASSERT_EQ(std::system(("mkdir -p " + baseline_ + " " + current_).c_str()),
              0);
  }

  void TearDown() override {
    if (!root_.empty()) {
      ASSERT_EQ(std::system(("rm -rf " + root_).c_str()), 0);
    }
  }

  void write_file(const std::string& dir, const std::string& name,
                  const std::string& content) {
    std::ofstream out(dir + "/" + name);
    ASSERT_TRUE(out.good());
    out << content;
  }

  GateResult run_gate() {
    const std::string cmd = std::string("python3 ") + ORCA_SOURCE_DIR +
                            "/scripts/perf_gate.py --baseline " + baseline_ +
                            " --current " + current_ + " 2>&1";
    GateResult result;
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) return result;
    char buf[512];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) result.output += buf;
    const int status = ::pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
  }

  std::string root_;
  std::string baseline_;
  std::string current_;
};

// One stable row and one whose p99 the regression test inflates. The
// metric suffixes matter: *_ns fields are gated lower-is-better,
// mev_per_s higher-is-better, delivered (int) is informational only.
const char kBaseline[] =
    "{\"bench\":\"primitives\",\"primitive\":\"barrier\",\"algo\":\"tree\","
    "\"threads\":2,\"ns_per_op\":100.0,\"p99_ns\":200.0,\"mev_per_s\":5.0,"
    "\"delivered\":42,\"tolerance\":0.5}\n"
    "{\"bench\":\"primitives\",\"primitive\":\"spinlock_acquire\","
    "\"algo\":\"none\",\"threads\":1,\"ns_per_op\":8.0,\"p99_ns\":9.0,"
    "\"tolerance\":0.5}\n";

TEST_F(PerfGateTest, CleanPassExitsZero) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  write_file(current_, "BENCH_fixture.json", kBaseline);
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("perf_gate: PASS"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("REGRESSION"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, P99RegressionFails) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  // p99 200 -> 1000 blows the row's 0.5 tolerance (limit 300); everything
  // else unchanged, so the report must name exactly this metric.
  write_file(
      current_, "BENCH_fixture.json",
      "{\"bench\":\"primitives\",\"primitive\":\"barrier\",\"algo\":\"tree\","
      "\"threads\":2,\"ns_per_op\":100.0,\"p99_ns\":1000.0,"
      "\"mev_per_s\":5.0,\"delivered\":42}\n"
      "{\"bench\":\"primitives\",\"primitive\":\"spinlock_acquire\","
      "\"algo\":\"none\",\"threads\":1,\"ns_per_op\":8.0,\"p99_ns\":9.0}\n");
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("p99_ns"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("perf_gate: FAIL"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, ThroughputDropFails) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  // Higher-is-better direction: mev_per_s 5.0 -> 1.0 is a regression even
  // though every latency metric "improved".
  write_file(
      current_, "BENCH_fixture.json",
      "{\"bench\":\"primitives\",\"primitive\":\"barrier\",\"algo\":\"tree\","
      "\"threads\":2,\"ns_per_op\":100.0,\"p99_ns\":200.0,"
      "\"mev_per_s\":1.0,\"delivered\":42}\n"
      "{\"bench\":\"primitives\",\"primitive\":\"spinlock_acquire\","
      "\"algo\":\"none\",\"threads\":1,\"ns_per_op\":8.0,\"p99_ns\":9.0}\n");
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("mev_per_s"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, MissingRowFails) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  // Current run produced only one of the two baseline rows (a bench cell
  // silently disappearing must not pass).
  write_file(
      current_, "BENCH_fixture.json",
      "{\"bench\":\"primitives\",\"primitive\":\"spinlock_acquire\","
      "\"algo\":\"none\",\"threads\":1,\"ns_per_op\":8.0,\"p99_ns\":9.0}\n");
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("MISSING"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, MissingFileFails) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("MISSING"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, NewRowIsReportedButPasses) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  write_file(current_, "BENCH_fixture.json",
             std::string(kBaseline) +
                 "{\"bench\":\"primitives\",\"primitive\":\"barrier\","
                 "\"algo\":\"hypercube\",\"threads\":4,\"ns_per_op\":1.0}\n");
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("NEW"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("perf_gate: PASS"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, MalformedLineExitsTwo) {
  write_file(baseline_, "BENCH_fixture.json", kBaseline);
  write_file(current_, "BENCH_fixture.json",
             std::string(kBaseline) + "this is not json\n");
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("MALFORMED"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, EmptyBaselineDirectoryExitsTwo) {
  // A gate with nothing to gate is a setup error, not a pass: silently
  // green CI with an empty baseline dir would defeat the whole stage.
  write_file(current_, "BENCH_fixture.json", kBaseline);
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("MALFORMED"), std::string::npos) << r.output;
}

TEST_F(PerfGateTest, GatesTheCheckedInBaselineShapes) {
  // The real checked-in baselines must parse and gate against themselves:
  // catches a baseline refresh committing malformed rows.
  const std::string repo_baselines =
      std::string(ORCA_SOURCE_DIR) + "/bench/baselines";
  const std::string cmd = "cp " + repo_baselines + "/BENCH_*.json " +
                          current_ + "/";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  baseline_ = repo_baselines;
  const GateResult r = run_gate();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("perf_gate: PASS"), std::string::npos) << r.output;
}

}  // namespace
