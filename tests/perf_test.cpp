/// Measurement-substrate tests: time counters, sample stores, the binary
/// trace format, and the libpsx-style C API.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "perf/counter.hpp"
#include "perf/psx.h"
#include "perf/samples.hpp"
#include "perf/trace.hpp"
#include "translate/region_registry.hpp"

namespace {

using namespace orca::perf;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(HwTimeCounter, MonotonicAndCalibrated) {
  for (const auto source : {CounterSource::kTsc, CounterSource::kSteady}) {
    HwTimeCounter counter(source);
    const std::uint64_t a = counter.read();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t b = counter.read();
    EXPECT_GT(b, a);
    const double seconds = counter.to_seconds(b - a);
    EXPECT_GT(seconds, 0.001);
    EXPECT_LT(seconds, 1.0);
  }
  // Calibrated TSC frequency should be in a plausible CPU range.
  EXPECT_GT(HwTimeCounter::tsc_hz(), 1e8);
  EXPECT_LT(HwTimeCounter::tsc_hz(), 1e11);
}

TEST(SampleBuffer, RecordsUntilCapThenDrops) {
  SampleBuffer buf;
  buf.reserve(10);
  for (int i = 0; i < 15; ++i) {
    buf.record({static_cast<std::uint64_t>(i), 0, 1, 0});
  }
  EXPECT_EQ(buf.samples().size(), 10u);
  EXPECT_EQ(buf.dropped(), 5u);
  buf.clear();
  EXPECT_TRUE(buf.samples().empty());
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(SampleStore, MergesAcrossThreadsSortedByTicks) {
  SampleStore store(4, 100);
  store.buffer(0).record({30, 0, 1, 0});
  store.buffer(2).record({10, 0, 1, 2});
  store.buffer(1).record({20, 0, 2, 1});
  const auto merged = store.merged_samples();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].ticks, 10u);
  EXPECT_EQ(merged[1].ticks, 20u);
  EXPECT_EQ(merged[2].ticks, 30u);
  EXPECT_EQ(store.total_samples(), 3u);
  EXPECT_EQ(store.total_dropped(), 0u);
}

TEST(SampleStore, TidClampingAndCallstacks) {
  SampleStore store(2, 10);
  store.buffer(99).record({1, 0, 1, 99});  // clamps to last slot
  store.buffer(-3).record({2, 0, 1, -3});  // clamps to slot 0
  EXPECT_EQ(store.total_samples(), 2u);

  CallstackRecord rec;
  rec.ticks = 5;
  rec.region_id = 7;
  rec.frames = {reinterpret_cast<const void*>(0x10),
                reinterpret_cast<const void*>(0x20)};
  store.record_callstack(1, rec);
  store.record_callstack(0, {3, 1, nullptr, {}});
  const auto stacks = store.merged_callstacks();
  ASSERT_EQ(stacks.size(), 2u);
  EXPECT_EQ(stacks[0].ticks, 3u);  // sorted by ticks
  EXPECT_EQ(stacks[1].region_id, 7u);
  EXPECT_EQ(stacks[1].frames.size(), 2u);

  store.clear();
  EXPECT_EQ(store.total_samples(), 0u);
  EXPECT_TRUE(store.merged_callstacks().empty());
}

TEST(Trace, BinaryRoundTrip) {
  TraceData data;
  for (int i = 0; i < 100; ++i) {
    data.samples.push_back({static_cast<std::uint64_t>(i * 10),
                            static_cast<std::uint64_t>(i % 7),
                            i % 5, i % 3});
  }
  data.callstacks.push_back(
      {42, 3, reinterpret_cast<const void*>(0xABC),
       {reinterpret_cast<const void*>(0x1), reinterpret_cast<const void*>(0x2)}});

  const std::string path = temp_path("roundtrip.orcatrc");
  ASSERT_TRUE(write_trace(path, data));

  TraceData loaded;
  ASSERT_TRUE(read_trace(path, &loaded));
  ASSERT_EQ(loaded.samples.size(), data.samples.size());
  EXPECT_EQ(loaded.samples[50].ticks, data.samples[50].ticks);
  EXPECT_EQ(loaded.samples[50].event, data.samples[50].event);
  ASSERT_EQ(loaded.callstacks.size(), 1u);
  EXPECT_EQ(loaded.callstacks[0].region_fn,
            reinterpret_cast<const void*>(0xABC));
  ASSERT_EQ(loaded.callstacks[0].frames.size(), 2u);
  EXPECT_EQ(loaded.callstacks[0].frames[1],
            reinterpret_cast<const void*>(0x2));
  std::remove(path.c_str());
}

TEST(Trace, RejectsMissingAndMalformedFiles) {
  TraceData out;
  EXPECT_FALSE(read_trace("/nonexistent/file.orcatrc", &out));
  EXPECT_FALSE(read_trace("/dev/null", &out));

  const std::string path = temp_path("badmagic.orcatrc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACE-GARBAGE", f);
  std::fclose(f);
  EXPECT_FALSE(read_trace(path, &out));
  EXPECT_FALSE(read_trace(path, nullptr));
  std::remove(path.c_str());
}

TEST(Trace, CsvExport) {
  const std::string path = temp_path("samples.csv");
  ASSERT_TRUE(write_csv(path, {{100, 5, 1, 2}, {200, 6, 2, 3}}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "ticks,event,tid,region_id\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "100,1,2,5\n");
  std::fclose(f);
  std::remove(path.c_str());
}

// --- libpsx-style C API ----------------------------------------------------------

TEST(Psx, CallstackGet) {
  const void* frames[16] = {};
  const int n = psx_callstack_get(frames, 16, 0);
  ASSERT_GT(n, 0);
  for (int i = 0; i < n; ++i) EXPECT_NE(frames[i], nullptr);
  EXPECT_EQ(psx_callstack_get(nullptr, 16, 0), 0);
  EXPECT_EQ(psx_callstack_get(frames, 0, 0), 0);
}

TEST(Psx, IpToSourceThroughRegionRegistry) {
  const int anchor = 0;
  orca::translate::RegionRegistry::instance().add(
      &anchor, {"kernel", "kernel.cpp", 17, "parallel"});
  psx_source_info info{};
  ASSERT_EQ(psx_ip_to_source(&anchor, &info), 0);
  EXPECT_EQ(info.exact, 1);
  EXPECT_STREQ(info.file, "kernel.cpp");
  EXPECT_EQ(info.line, 17u);

  EXPECT_EQ(psx_ip_to_source(nullptr, &info), -1);
  EXPECT_EQ(psx_ip_to_source(&anchor, nullptr), -1);
}

TEST(Psx, TimerReadsAndConverts) {
  const unsigned long long a = psx_timer_read();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const unsigned long long b = psx_timer_read();
  EXPECT_GT(b, a);
  EXPECT_GT(psx_timer_seconds(b - a), 0.001);
}

}  // namespace
