/// Unit tests for the composable stream-stage API (src/pipeline/): the
/// combinator vocabulary, the per-stage accounting invariant
/// (accepted == emitted + filtered + dropped + held), backpressure
/// policies, flush semantics, and the bounded online aggregate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stage.hpp"

namespace {

using orca::pipeline::AggregateRow;
using orca::pipeline::by_seq;
using orca::pipeline::Event;
using orca::pipeline::KillSwitch;
using orca::pipeline::Overflow;
using orca::pipeline::Pipeline;
using orca::pipeline::StagePtr;
using orca::pipeline::StageStats;

/// accepted == emitted + filtered + dropped + held, per stage.
void expect_honest(const StageStats& s) {
  EXPECT_EQ(s.accepted, s.emitted + s.filtered + s.dropped + s.held)
      << "stage " << s.name << " lies about its accounting";
}

TEST(Stage, MapFilterQuantizeCompose) {
  auto log = orca::pipeline::collect<std::uint64_t>("log");
  // keep even numbers, double them, then 1-in-2 decimation.
  StagePtr<std::uint64_t> head = orca::pipeline::quantize<std::uint64_t>(
      "q", 2,
      orca::pipeline::map<std::uint64_t>(
          "x2", [](const std::uint64_t& v) { return 2 * v; },
          StagePtr<std::uint64_t>(log)));
  head = orca::pipeline::filter<std::uint64_t>(
      "even", [](const std::uint64_t& v) { return v % 2 == 0; },
      std::move(head));

  Pipeline<std::uint64_t> p(head);
  for (std::uint64_t v = 0; v < 100; ++v) p.push(v);
  p.flush();

  // 50 evens -> decimated to 25 -> doubled.
  const auto kept = log->snapshot();
  ASSERT_EQ(kept.size(), 25u);
  for (const std::uint64_t v : kept) EXPECT_EQ(v % 4, 0u);

  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) expect_honest(s);
  EXPECT_EQ(stats[0].name, "even");
  EXPECT_EQ(stats[0].accepted, 100u);
  EXPECT_EQ(stats[0].filtered, 50u);
  EXPECT_EQ(stats[1].name, "q");
  EXPECT_EQ(stats[1].filtered, 25u);
}

TEST(Stage, FanoutDeliversToEveryBranchAndStatsWalkVisitsOnce) {
  auto a = orca::pipeline::collect<int>("a");
  auto b = orca::pipeline::collect<int>("b");
  Pipeline<int> p(orca::pipeline::fanout<int>(
      "split", {StagePtr<int>(a), StagePtr<int>(b)}));
  for (int i = 0; i < 10; ++i) p.push(i);
  EXPECT_EQ(a->size(), 10u);
  EXPECT_EQ(b->size(), 10u);
  EXPECT_EQ(p.stats().size(), 3u);

  // Diamond: tee into the same sink twice still reports each stage once.
  auto shared = orca::pipeline::collect<int>("shared");
  Pipeline<int> diamond(orca::pipeline::tee<int>(
      "tee", StagePtr<int>(shared), StagePtr<int>(shared)));
  diamond.push(1);
  EXPECT_EQ(shared->size(), 2u);  // both branches delivered
  EXPECT_EQ(diamond.stats().size(), 2u);  // tee + shared, deduped
}

TEST(Stage, KillswitchTripsManuallyAndAfterLimit) {
  auto log = orca::pipeline::collect<int>("log");
  KillSwitch ks;
  Pipeline<int> p(orca::pipeline::killswitch<int>("ks", ks,
                                                  StagePtr<int>(log)));
  p.push(1);
  ks.trip();
  p.push(2);
  p.push(3);
  EXPECT_EQ(log->size(), 1u);
  const auto s = p.stats()[0];
  expect_honest(s);
  EXPECT_EQ(s.dropped, 2u);

  // Self-tripping variant: exactly `limit` items pass.
  auto log2 = orca::pipeline::collect<int>("log2");
  KillSwitch ks2;
  Pipeline<int> p2(orca::pipeline::killswitch<int>(
      "ks2", ks2, StagePtr<int>(log2), /*trip_after=*/5));
  for (int i = 0; i < 20; ++i) p2.push(i);
  EXPECT_EQ(log2->size(), 5u);
  EXPECT_TRUE(ks2.tripped());
}

TEST(Stage, BufferDropNewestAndDropOldestCountLoss) {
  auto log = orca::pipeline::collect<int>("log");
  auto newest = orca::pipeline::buffer<int>("buf", 4, Overflow::kDropNewest,
                                            StagePtr<int>(log));
  for (int i = 0; i < 10; ++i) newest->push(i);
  EXPECT_EQ(newest->stats().held, 4u);
  EXPECT_EQ(newest->stats().dropped, 6u);
  expect_honest(newest->stats());
  newest->flush();
  EXPECT_EQ(newest->stats().held, 0u);
  // First four survive under drop-newest.
  EXPECT_EQ(log->sorted(std::less<int>()), (std::vector<int>{0, 1, 2, 3}));

  auto log2 = orca::pipeline::collect<int>("log2");
  auto oldest = orca::pipeline::buffer<int>("buf", 4, Overflow::kDropOldest,
                                            StagePtr<int>(log2));
  for (int i = 0; i < 10; ++i) oldest->push(i);
  oldest->flush();
  expect_honest(oldest->stats());
  // Last four survive under drop-oldest.
  EXPECT_EQ(log2->sorted(std::less<int>()), (std::vector<int>{6, 7, 8, 9}));
}

TEST(Stage, BufferBlockIsLosslessWithoutConsumerThread) {
  auto log = orca::pipeline::collect<int>("log");
  auto buf = orca::pipeline::buffer<int>("buf", 8, Overflow::kBlock,
                                         StagePtr<int>(log));
  Pipeline<int> p{StagePtr<int>(buf)};
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&p] {
      for (int i = 0; i < kPerThread; ++i) p.push(i);
    });
  }
  for (auto& th : threads) th.join();
  p.flush();
  EXPECT_EQ(log->size(), 4u * kPerThread);
  for (const auto& s : p.stats()) {
    expect_honest(s);
    EXPECT_EQ(s.dropped, 0u) << s.name;
  }
}

TEST(Stage, SinkAndNullCount) {
  std::atomic<int> seen{0};
  auto s = orca::pipeline::sink<int>("probe",
                                     [&seen](const int&) { ++seen; });
  for (int i = 0; i < 7; ++i) s->push(i);
  EXPECT_EQ(seen.load(), 7);
  EXPECT_EQ(s->stats().emitted, 7u);

  auto n = orca::pipeline::null<int>();
  n->push(1);
  EXPECT_EQ(n->stats().accepted, 1u);
  expect_honest(n->stats());
}

TEST(Stage, CollectBoundedDropsHonestly) {
  auto log = orca::pipeline::collect<int>("log", /*max_items=*/16);
  for (int i = 0; i < 100; ++i) log->push(i);
  EXPECT_EQ(log->size(), 16u);
  EXPECT_EQ(log->stats().dropped, 84u);
  expect_honest(log->stats());
  log->clear();
  EXPECT_EQ(log->size(), 0u);
}

TEST(Aggregate, BoundedKeysOverflowToCatchAllRow) {
  auto agg = orca::pipeline::aggregate<Event>(
      "by-tid", [](const Event& e) { return std::uint64_t(e.tid); },
      [](const Event& e) { return e.ns; }, /*max_keys=*/4);
  Event e;
  for (int tid = 0; tid < 50; ++tid) {
    e.tid = tid;
    e.ns = 100;
    for (int i = 0; i < 3; ++i) agg->push(e);
  }
  EXPECT_LE(agg->key_count(), 4u + 15u);  // cap + benign shard overshoot
  EXPECT_GT(agg->overflowed(), 0u);
  const std::vector<AggregateRow> rows = agg->snapshot();
  ASSERT_FALSE(rows.empty());
  EXPECT_TRUE(rows.back().overflow);
  // Nothing lost: every observation landed in some sketch.
  std::uint64_t total = 0;
  for (const auto& row : rows) total += row.sketch.count;
  EXPECT_EQ(total, 150u);
  expect_honest(agg->stats());
  EXPECT_EQ(agg->stats().dropped, 0u);
}

TEST(Aggregate, SketchQuantilesBracketObservations) {
  orca::pipeline::Log2Sketch sketch;
  for (std::uint64_t v = 1; v <= 1000; ++v) sketch.observe(v);
  EXPECT_EQ(sketch.count, 1000u);
  EXPECT_EQ(sketch.max, 1000u);
  EXPECT_NEAR(sketch.mean(), 500.5, 0.01);
  EXPECT_GE(sketch.quantile(0.99), 500.0);
  EXPECT_LE(sketch.quantile(0.5), 1023.0);
  EXPECT_LE(sketch.quantile(0.99), 1000.0);  // clamped to observed max
}

TEST(Pipeline, EventRoundTripAndRender) {
  auto log = orca::pipeline::collect<Event>("log");
  Pipeline<Event> p{StagePtr<Event>(log)};
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.seq = 4 - i;  // pushed out of order
    e.event = OMP_EVENT_FORK;
    p.push(e);
  }
  const auto ordered = log->sorted(by_seq);
  for (std::uint64_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i].seq, i);
  }
  const std::string table = p.render();
  EXPECT_NE(table.find("log"), std::string::npos);
  EXPECT_NE(table.find("accepted"), std::string::npos);
}

}  // namespace
