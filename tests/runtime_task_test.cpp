/// Explicit-tasking tests (the OpenMP 3.0 extension of paper Sec. VI):
/// deferral, taskwait, barrier scheduling points, nested spawning, event
/// reporting, and the disabled (OpenUH-2009) mode.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "translate/omp.hpp"

namespace {

using orca::collector::Client;
using orca::collector::Session;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

RuntimeConfig threads(int n) {
  RuntimeConfig cfg;
  cfg.num_threads = n;
  return cfg;
}

TEST(Tasks, AllTasksRunExactlyOnce) {
  Runtime rt(threads(4));
  Runtime::make_current(&rt);

  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> executed(kTasks);
  orca::omp::parallel([&](int) {
    orca::omp::single([&] {
      for (int t = 0; t < kTasks; ++t) {
        orca::omp::task([&executed, t] {
          executed[static_cast<std::size_t>(t)].fetch_add(1);
        });
      }
    });
    // Region-end barrier is a scheduling point: all tasks complete.
  }, 4);

  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(executed[static_cast<std::size_t>(t)].load(), 1) << "task " << t;
  }
  Runtime::make_current(nullptr);
}

TEST(Tasks, TaskwaitBlocksUntilAllComplete) {
  Runtime rt(threads(4));
  Runtime::make_current(&rt);

  std::atomic<int> done{0};
  std::atomic<bool> violation{false};
  orca::omp::parallel([&](int) {
    orca::omp::single([&] {
      for (int t = 0; t < 50; ++t) {
        orca::omp::task([&] { done.fetch_add(1); });
      }
      orca::omp::taskwait();
      if (done.load() != 50) violation.store(true);
    });
  }, 4);
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(done.load(), 50);
  Runtime::make_current(nullptr);
}

TEST(Tasks, TasksMaySpawnTasks) {
  Runtime rt(threads(4));
  Runtime::make_current(&rt);

  std::atomic<int> leaves{0};
  orca::omp::parallel([&](int) {
    orca::omp::single([&] {
      for (int t = 0; t < 8; ++t) {
        orca::omp::task([&] {
          for (int child = 0; child < 4; ++child) {
            orca::omp::task([&] { leaves.fetch_add(1); });
          }
        });
      }
    });
  }, 4);
  EXPECT_EQ(leaves.load(), 32);
  Runtime::make_current(nullptr);
}

TEST(Tasks, SerialContextRunsUndeferred) {
  Runtime rt(threads(4));
  Runtime::make_current(&rt);
  int value = 0;
  orca::omp::task([&] { value = 42; });
  // No barrier needed: outside a team the body ran synchronously.
  EXPECT_EQ(value, 42);
  Runtime::make_current(nullptr);
}

TEST(Tasks, DisabledTaskingRunsUndeferredInsideRegions) {
  RuntimeConfig cfg = threads(4);
  cfg.tasking = false;  // OpenUH-2009 mode
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<bool> violation{false};
  orca::omp::parallel([&](int) {
    orca::omp::single([&] {
      int local = 0;
      orca::omp::task([&local] { local = 7; });
      if (local != 7) violation.store(true);  // must have run synchronously
    });
  }, 4);
  EXPECT_FALSE(violation.load());
  Runtime::make_current(nullptr);
}

std::atomic<int> g_task_begin{0};
std::atomic<int> g_task_end{0};
void task_counter(OMP_COLLECTORAPI_EVENT e) {
  if (e == ORCA_EVENT_TASK_BEGIN) g_task_begin.fetch_add(1);
  if (e == ORCA_EVENT_TASK_END) g_task_end.fetch_add(1);
}

TEST(TaskEvents, ExtensionEventsFirePerTask) {
  Runtime rt(threads(4));
  Runtime::make_current(&rt);

  // Typed client façade (tool/client2.hpp) bound to this runtime instance;
  // the Session issues START here and STOP when it leaves scope.
  Client client([&rt](void* buffer) { return rt.collector_api(buffer); });
  {
    Session session(client);
    ASSERT_TRUE(session.active());
    ASSERT_EQ(client.register_event(ORCA_EVENT_TASK_BEGIN, &task_counter),
              OMP_ERRCODE_OK);
    ASSERT_EQ(client.register_event(ORCA_EVENT_TASK_END, &task_counter),
              OMP_ERRCODE_OK);
    g_task_begin = 0;
    g_task_end = 0;

    orca::omp::parallel([&](int) {
      orca::omp::single([&] {
        for (int t = 0; t < 25; ++t) {
          orca::omp::task([] {});
        }
        orca::omp::taskwait();
      });
    }, 4);
    rt.quiesce();
    EXPECT_EQ(g_task_begin.load(), 25);
    EXPECT_EQ(g_task_end.load(), 25);
  }
  Runtime::make_current(nullptr);
}

TEST(TaskEvents, UnsupportedWhenTaskingDisabled) {
  RuntimeConfig cfg = threads(2);
  cfg.tasking = false;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  Client client([&rt](void* buffer) { return rt.collector_api(buffer); });
  Session session(client);
  ASSERT_TRUE(session.active());
  EXPECT_EQ(client.register_event(ORCA_EVENT_TASK_BEGIN, &task_counter),
            OMP_ERRCODE_UNSUPPORTED);
  Runtime::make_current(nullptr);
}

TEST(Tasks, FibonacciViaTaskRecursion) {
  // The canonical tasking example (OpenMP 3.0 spec): naive fib with a
  // task per branch and taskwait joins.
  Runtime rt(threads(4));
  Runtime::make_current(&rt);

  // Depth-limited to keep the pool shallow; results land in a tree of
  // stack frames kept alive by taskwait.
  struct Fib {
    static void compute(int n, long* out) {
      if (n < 2) {
        *out = n;
        return;
      }
      long a = 0;
      long b = 0;
      orca::omp::task([n, &a] { compute(n - 1, &a); });
      orca::omp::task([n, &b] { compute(n - 2, &b); });
      orca::omp::taskwait();
      *out = a + b;
    }
  };

  long result = 0;
  orca::omp::parallel([&](int) {
    orca::omp::single([&] { Fib::compute(12, &result); });
  }, 4);
  EXPECT_EQ(result, 144);
  Runtime::make_current(nullptr);
}

TEST(Tasks, CApiTaskAndTaskwait) {
  Runtime rt(threads(2));
  Runtime::make_current(&rt);
  static std::atomic<int> hits{0};
  hits = 0;
  orca::omp::parallel([&](int) {
    orca::omp::single([&] {
      for (int i = 0; i < 10; ++i) {
        __ompc_task(
            0, [](void*) { hits.fetch_add(1); }, nullptr);
      }
      __ompc_taskwait(0);
      EXPECT_EQ(hits.load(), 10);
    });
  }, 2);
  Runtime::make_current(nullptr);
}

}  // namespace
