/// Collector-tool tests: dlsym discovery, the prototype tool's
/// attach/measure/finalize cycle, the communication-only arm, pause/
/// resume, trace spill, and the tracing collector's event-ordering
/// invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "collector/names.hpp"
#include "perf/trace.hpp"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "tool/collector_tool.hpp"
#include "tool/tracer.hpp"
#include "translate/omp.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using CollectorApiClient = orca::collector::Client;
using orca::tool::PrototypeCollector;
using orca::tool::Report;
using orca::tool::ToolOptions;
using orca::tool::TracingCollector;

TEST(Client, DiscoversSymbolThroughDynamicLinker) {
  const auto client = CollectorApiClient::discover();
  ASSERT_TRUE(client.has_value());
}

TEST(Client, LifecycleRoundTrip) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  auto client = CollectorApiClient::discover();
  ASSERT_TRUE(client.has_value());

  EXPECT_EQ(client->start(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->start(), OMP_ERRCODE_SEQUENCE_ERR);
  EXPECT_EQ(client->pause(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->resume(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->stop(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->stop(), OMP_ERRCODE_SEQUENCE_ERR);
  Runtime::make_current(nullptr);
}

TEST(PrototypeTool, FullMeasurementCycle) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.use_region_fn_extension = true;
  ASSERT_TRUE(tool.attach(opts));
  EXPECT_FALSE(tool.attach(opts));  // double attach refused
  EXPECT_TRUE(tool.attached());

  constexpr int kRegions = 20;
  for (int i = 0; i < kRegions; ++i) {
    orca::omp::parallel([](int) {
      volatile int spin = 0;
      for (int k = 0; k < 100; ++k) spin = spin + 1;
    }, 2);
  }
  rt.quiesce();
  tool.detach();
  EXPECT_FALSE(tool.attached());

  const Report report = tool.finalize();
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_FORK),
            static_cast<std::uint64_t>(kRegions));
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_JOIN),
            static_cast<std::uint64_t>(kRegions));
  // Implicit barrier begin/end: 2 threads per region.
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_THR_BEGIN_IBAR),
            static_cast<std::uint64_t>(2 * kRegions));
  EXPECT_EQ(report.dropped_samples, 0u);

  // Fork/join pairing: every region produced one interval with a valid id.
  std::uint64_t invocations = 0;
  for (const auto& region : report.regions) {
    invocations += region.invocations;
    EXPECT_GE(region.max_seconds, region.min_seconds);
    EXPECT_GT(region.region_id, 0u);
  }
  EXPECT_EQ(invocations, static_cast<std::uint64_t>(kRegions));

  // One call site: the user-model profile collapses to one entry with all
  // join samples.
  ASSERT_FALSE(report.callstack_profile.empty());
  EXPECT_EQ(report.callstack_profile[0].samples,
            static_cast<std::uint64_t>(kRegions));
  EXPECT_NE(report.callstack_profile[0].rendered.find("tool_test.cpp"),
            std::string::npos);

  // Interval metrics: per-thread implicit-barrier time was accumulated
  // (2 threads x kRegions implicit barriers, each a begin/end pair).
  std::uint64_t ibar_intervals = 0;
  for (const auto& iv : report.intervals) {
    if (iv.begin_event == OMP_EVENT_THR_BEGIN_IBAR) {
      ibar_intervals += iv.intervals;
      EXPECT_GE(iv.total_seconds, 0.0);
    }
  }
  EXPECT_EQ(ibar_intervals, static_cast<std::uint64_t>(2 * kRegions));

  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("OMP_EVENT_FORK"), std::string::npos);
  Runtime::make_current(nullptr);
}

TEST(PrototypeTool, CommunicationOnlyArmStoresNothing) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.measure = false;  // the E6 "comm-only" arm
  ASSERT_TRUE(tool.attach(opts));
  for (int i = 0; i < 10; ++i) orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  tool.detach();

  EXPECT_GT(tool.callback_invocations(), 0u);
  const Report report = tool.finalize();
  EXPECT_EQ(report.total_events, 0u);  // nothing stored
  Runtime::make_current(nullptr);
}

TEST(PrototypeTool, PauseSuppressesSamples) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ASSERT_TRUE(tool.attach(ToolOptions{}));
  orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  const std::uint64_t before = tool.callback_invocations();
  ASSERT_TRUE(tool.pause());
  orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  EXPECT_EQ(tool.callback_invocations(), before);
  ASSERT_TRUE(tool.resume());
  orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  EXPECT_GT(tool.callback_invocations(), before);
  tool.detach();
  Runtime::make_current(nullptr);
}

TEST(PrototypeTool, TraceSpillRoundTrip) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ASSERT_TRUE(tool.attach(ToolOptions{}));
  for (int i = 0; i < 5; ++i) orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  tool.detach();

  const orca::perf::TraceData data = tool.trace_data();
  EXPECT_GT(data.samples.size(), 0u);
  EXPECT_EQ(data.callstacks.size(), 5u);  // one per join

  const std::string path =
      std::string(::testing::TempDir()) + "tool_spill.orcatrc";
  ASSERT_TRUE(orca::perf::write_trace(path, data));
  orca::perf::TraceData loaded;
  ASSERT_TRUE(orca::perf::read_trace(path, &loaded));
  EXPECT_EQ(loaded.samples.size(), data.samples.size());
  EXPECT_EQ(loaded.callstacks.size(), data.callstacks.size());
  std::remove(path.c_str());
  Runtime::make_current(nullptr);
}

TEST(Tracer, EventOrderingInvariants) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tracer = TracingCollector::instance();
  tracer.clear();
  ASSERT_TRUE(tracer.attach());
  EXPECT_FALSE(tracer.attach());  // double attach refused

  for (int i = 0; i < 3; ++i) {
    orca::omp::parallel([](int) {
      orca::omp::barrier();
      orca::omp::single([] {});
    }, 2);
  }
  rt.quiesce();
  tracer.detach();

  EXPECT_EQ(tracer.count(OMP_EVENT_FORK), 3u);
  EXPECT_EQ(tracer.count(OMP_EVENT_JOIN), 3u);
  EXPECT_EQ(tracer.count(OMP_EVENT_THR_BEGIN_SINGLE), 3u);
  EXPECT_EQ(tracer.count(OMP_EVENT_THR_BEGIN_EBAR), 6u);

  // Per-thread invariant: every begin event nests with its matching end.
  // Idle events are excluded: parked workers are inside an open idle
  // interval when the tracer detaches, by design.
  std::map<std::pair<int, int>, int> open;  // (tid, begin event) -> depth
  for (const auto& entry : tracer.log()) {
    if (entry.event == OMP_EVENT_THR_BEGIN_IDLE ||
        entry.event == OMP_EVENT_THR_END_IDLE) {
      continue;
    }
    if (orca::collector::is_begin_event(entry.event) &&
        entry.event != OMP_EVENT_FORK) {
      ++open[{entry.tid, entry.event}];
    } else if (entry.event != OMP_EVENT_JOIN) {
      // find the begin this end matches
      for (int b = 1; b < OMP_EVENT_LAST; ++b) {
        const auto begin = static_cast<OMP_COLLECTORAPI_EVENT>(b);
        if (orca::collector::matching_end(begin) == entry.event) {
          const int depth = --open[std::make_pair(entry.tid, b)];
          EXPECT_GE(depth, 0)
              << orca::collector::to_string(entry.event) << " tid "
              << entry.tid;
        }
      }
    }
  }
  for (const auto& [key, depth] : open) {
    EXPECT_EQ(depth, 0) << "unbalanced begin/end for tid " << key.first;
  }

  // FORK precedes JOIN pairwise on the master.
  int forks_seen = 0;
  for (const auto& entry : tracer.log()) {
    if (entry.event == OMP_EVENT_FORK) ++forks_seen;
    if (entry.event == OMP_EVENT_JOIN) {
      EXPECT_GT(forks_seen, 0);
      --forks_seen;
    }
  }

  const std::string rendered = tracer.render();
  EXPECT_NE(rendered.find("OMP_EVENT_FORK"), std::string::npos);
  Runtime::make_current(nullptr);
}

}  // namespace
