/// Callstack capture, symbolization, and user-model reconstruction tests
/// (the libunwind/BFD substitute of paper Sec. IV-F).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "runtime/runtime.hpp"
#include "translate/region_registry.hpp"
#include "unwind/backtrace.hpp"
#include "unwind/symbolize.hpp"
#include "unwind/user_model.hpp"

namespace {

using namespace orca::unwind;

__attribute__((noinline)) Callstack capture_here() {
  return Callstack::capture();
}

__attribute__((noinline)) Callstack deeper(int depth) {
  if (depth > 0) {
    Callstack cs = deeper(depth - 1);
    // Prevent tail-call folding of the recursion.
    EXPECT_LE(cs.depth(), kMaxFrames);
    return cs;
  }
  return capture_here();
}

TEST(Backtrace, CaptureSeesCallers) {
  const Callstack cs = capture_here();
  ASSERT_GT(cs.depth(), 1u);
  // Frame 0 should be inside this test binary, not the capture machinery.
  const SymbolInfo top = symbolize(cs.frame(0));
  EXPECT_NE(top.resolution, Resolution::kUnknown);
}

TEST(Backtrace, DepthGrowsWithRecursion) {
  const Callstack shallow = deeper(0);
  const Callstack deep = deeper(10);
  EXPECT_GT(deep.depth(), shallow.depth());
}

TEST(Backtrace, SkipDropsInnermostFrames) {
  const Callstack full = Callstack::capture(0);
  const Callstack skipped = Callstack::capture(1);
  ASSERT_GT(full.depth(), 2u);
  // Skipping one frame shifts the stack by one. The innermost retained
  // frame may differ between the two captures (it is the return address
  // of *this* function's two distinct call sites when the sanitizer
  // runtime intercepts backtrace(3)), so compare from the second frame up
  // where both stacks walk the same callers.
  EXPECT_EQ(skipped.depth() + 1, full.depth());
  for (std::size_t i = 1; i < skipped.depth(); ++i) {
    EXPECT_EQ(skipped.frame(i), full.frame(i + 1)) << "frame " << i;
  }
}

TEST(Backtrace, ToVectorCopiesFramesNotIterators) {
  // Regression: braced-init once turned this into a 2-element vector of
  // iterator addresses (stack pointers).
  const Callstack cs = capture_here();
  const auto vec = cs.to_vector();
  ASSERT_EQ(vec.size(), cs.depth());
  for (std::size_t i = 0; i < vec.size(); ++i) {
    EXPECT_EQ(vec[i], cs.frame(i));
  }
  const Callstack round = Callstack::from_frames(vec);
  EXPECT_EQ(round.depth(), cs.depth());
  EXPECT_EQ(round.frame(0), cs.frame(0));
}

TEST(Backtrace, OutOfRangeFrameIsNull) {
  const Callstack cs = capture_here();
  EXPECT_EQ(cs.frame(cs.depth()), nullptr);
  EXPECT_EQ(cs.frame(9999), nullptr);
}

TEST(Symbolize, RegionRegistryHitIsExact) {
  const int anchor = 0;
  orca::translate::RegionRegistry::instance().add(
      &anchor, {"my_func", "my_file.cpp", 42, "parallel for"});
  const SymbolInfo info = symbolize(&anchor);
  EXPECT_EQ(info.resolution, Resolution::kRegion);
  EXPECT_EQ(info.file, "my_file.cpp");
  EXPECT_EQ(info.line, 42u);
  EXPECT_NE(info.symbol.find("parallel for"), std::string::npos);
  EXPECT_NE(info.pretty().find("my_file.cpp:42"), std::string::npos);
}

TEST(Symbolize, DynamicSymbolResolvesWithName) {
  // A libc function always has a dynamic symbol.
  const SymbolInfo info =
      symbolize(reinterpret_cast<const void*>(&std::strtol));
  EXPECT_EQ(info.resolution, Resolution::kSymbol);
  EXPECT_FALSE(info.symbol.empty());
  EXPECT_FALSE(info.module.empty());
}

TEST(Symbolize, NullAndGarbageAreSafe) {
  EXPECT_EQ(symbolize(nullptr).resolution, Resolution::kUnknown);
  const SymbolInfo garbage =
      symbolize(reinterpret_cast<const void*>(0x1000));
  // Must not crash; resolution may be module or unknown.
  EXPECT_TRUE(garbage.resolution == Resolution::kUnknown ||
              garbage.resolution == Resolution::kModule);
}

TEST(Symbolize, Demangle) {
  EXPECT_EQ(demangle("_Z3foov"), "foo()");
  EXPECT_EQ(demangle("not_mangled"), "not_mangled");
  EXPECT_EQ(demangle(""), "");
}

TEST(Symbolize, RuntimeFrameClassification) {
  SymbolInfo runtime_frame;
  runtime_frame.resolution = Resolution::kSymbol;
  runtime_frame.symbol = "orca::rt::Runtime::fork(void (*)(int, void*), void*, int)";
  EXPECT_TRUE(is_runtime_frame(runtime_frame));

  runtime_frame.symbol = "__ompc_fork";
  EXPECT_TRUE(is_runtime_frame(runtime_frame));

  SymbolInfo user_frame;
  user_frame.resolution = Resolution::kSymbol;
  user_frame.symbol = "app::solver()";
  EXPECT_FALSE(is_runtime_frame(user_frame));

  SymbolInfo region_frame;
  region_frame.resolution = Resolution::kRegion;
  region_frame.symbol = "parallel in orca::rt::something";  // region hits
  EXPECT_FALSE(is_runtime_frame(region_frame));             // never stripped
}

TEST(UserModel, StripsRuntimeFramesAndPlantsRegion) {
  // Fabricate an implementation-model stack: [runtime, user, runtime,
  // user] plus a region function known to the registry.
  const int region_anchor = 0;
  orca::translate::RegionRegistry::instance().add(
      &region_anchor, {"solver", "app.cpp", 7, "parallel"});

  // Use real resolvable addresses for the "user" frames.
  const void* user1 = reinterpret_cast<const void*>(&std::strtol);
  const void* user2 = reinterpret_cast<const void*>(&std::strtod);
  // Runtime frame: a function from orca::rt (resolves via dynamic symbols
  // thanks to -rdynamic).
  const void* rt_frame =
      reinterpret_cast<const void*>(&orca::rt::Runtime::global);

  const UserCallstack user =
      reconstruct({rt_frame, user1, rt_frame, user2}, &region_anchor);
  ASSERT_GE(user.frames.size(), 3u);
  EXPECT_EQ(user.frames[0].resolution, Resolution::kRegion);
  EXPECT_EQ(user.frames[0].file, "app.cpp");
  for (const SymbolInfo& f : user.frames) {
    EXPECT_FALSE(is_runtime_frame(f)) << f.pretty();
  }
  const std::string rendered = user.render();
  EXPECT_NE(rendered.find("app.cpp:7"), std::string::npos);
  EXPECT_EQ(user.key().size(), user.frames.size());
}

TEST(UserModel, WithoutRegionFnKeepsUserFramesOnly) {
  const void* user1 = reinterpret_cast<const void*>(&std::strtol);
  const UserCallstack user = reconstruct({user1}, nullptr);
  ASSERT_EQ(user.frames.size(), 1u);
  EXPECT_EQ(user.frames[0].address, user1);
}

TEST(UserModel, EmptyInput) {
  const UserCallstack user = reconstruct({}, nullptr);
  EXPECT_TRUE(user.frames.empty());
  EXPECT_TRUE(user.render().empty());
}

}  // namespace
