/// EventRing unit tests: capacity rounding, wraparound, full/empty edges,
/// every backpressure policy, counter accuracy, and a two-thread
/// producer/consumer hammer with sequence verification.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "collector/async.hpp"

namespace {

using orca::collector::Backpressure;
using orca::collector::EventRecord;
using orca::collector::EventRing;
using orca::collector::EventRingStats;

EventRecord make_record(std::uint64_t seq) {
  EventRecord rec;
  rec.seq = seq;
  rec.ticks = seq * 10;
  rec.event = OMP_EVENT_FORK;
  rec.origin_slot = 0;
  return rec;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(0).capacity(), 4u);
  EXPECT_EQ(EventRing(1).capacity(), 4u);
  EXPECT_EQ(EventRing(4).capacity(), 4u);
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, PopOnEmptyFails) {
  EventRing ring(4);
  EventRecord out;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop(&out));
}

TEST(EventRing, FifoAcrossManyWraparounds) {
  EventRing ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Push 3 / pop 3 repeatedly: the cursors lap the 4-cell ring many times
  // and every record must come back in FIFO order.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.push(make_record(next_push++), Backpressure::kBlock));
    }
    EventRecord out;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.pop(&out));
      EXPECT_EQ(out.seq, next_pop);
      EXPECT_EQ(out.ticks, next_pop * 10);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.stats().submitted, 300u);
}

TEST(EventRing, DropNewestCountsExactly) {
  EventRing ring(4);
  int accepted = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (ring.push(make_record(i), Backpressure::kDropNewest)) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.dropped, 6u);
  EXPECT_EQ(s.overwritten, 0u);
  // The survivors are the *first* four records.
  EventRecord out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(ring.pop(&out));
}

TEST(EventRing, OverwriteOldestKeepsFreshestWindow) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.push(make_record(i), Backpressure::kOverwriteOldest));
  }
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, 10u);
  EXPECT_EQ(s.overwritten, 6u);
  EXPECT_EQ(s.dropped, 0u);
  // The survivors are the *last* four records.
  EventRecord out;
  for (std::uint64_t i = 6; i < 10; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(ring.pop(&out));
}

TEST(EventRing, BlockWaitsForConsumerWithoutLoss) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.push(make_record(i), Backpressure::kBlock));
  }
  // The ring is full; a kBlock push must wait until the consumer frees a
  // cell, then succeed with nothing dropped.
  std::thread consumer([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EventRecord out;
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.seq, 0u);
  });
  EXPECT_TRUE(ring.push(make_record(4), Backpressure::kBlock));
  consumer.join();
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.overwritten, 0u);
}

TEST(EventRing, CloseUnblocksBlockedProducer) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.push(make_record(i), Backpressure::kBlock));
  }
  std::thread producer([&ring] {
    // Full ring, no consumer: this push parks until close(), then must
    // fail fast and be counted as dropped.
    EXPECT_FALSE(ring.push(make_record(4), Backpressure::kBlock));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.close();
  producer.join();
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.dropped, 1u);
}

TEST(EventRing, CountersReconcileAfterDeliveries) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.push(make_record(i), Backpressure::kBlock));
  }
  EXPECT_FALSE(ring.settled());
  EventRecord out;
  while (ring.pop(&out)) ring.count_delivered();
  EXPECT_TRUE(ring.settled());
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.delivered, 5u);
  EXPECT_EQ(s.submitted, s.delivered + s.overwritten);
}

TEST(EventRing, TwoThreadHammerPreservesSequence) {
  constexpr std::uint64_t kRecords = 100000;
  EventRing ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(ring.push(make_record(i), Backpressure::kBlock));
    }
  });
  // Consume on this thread: every record must arrive exactly once, in
  // submission order, across thousands of wraparounds of the 64-cell ring.
  std::uint64_t expected = 0;
  EventRecord out;
  while (expected < kRecords) {
    if (ring.pop(&out)) {
      ASSERT_EQ(out.seq, expected);
      ++expected;
      ring.count_delivered();
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  const EventRingStats s = ring.stats();
  EXPECT_EQ(s.submitted, kRecords);
  EXPECT_EQ(s.delivered, kRecords);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.overwritten, 0u);
}

}  // namespace
