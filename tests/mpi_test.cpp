/// MiniMPI tests: point-to-point semantics, collectives, and — the part
/// that matters for the paper — per-rank runtime isolation (each "process"
/// owns its own OpenMP pool, collector registry, and region-id space).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "collector/message.hpp"
#include "mpi/minimpi.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

namespace {

using orca::mpi::Op;
using orca::mpi::Rank;
using orca::mpi::World;
using orca::rt::RuntimeConfig;

RuntimeConfig two_threads() {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  return cfg;
}

TEST(MiniMpi, SendRecvValue) {
  World world(2, two_threads());
  world.run([](Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value(1, 7, 3.25);
      EXPECT_EQ(rank.recv_value<int>(1, 8), 99);
    } else {
      EXPECT_DOUBLE_EQ(rank.recv_value<double>(0, 7), 3.25);
      rank.send_value(0, 8, 99);
    }
  });
}

TEST(MiniMpi, MessagesArePerSourceAndTagFifo) {
  World world(2, two_threads());
  world.run([](Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value(1, 1, 10);
      rank.send_value(1, 2, 20);  // different tag
      rank.send_value(1, 1, 11);
    } else {
      // Tag-selective receive: tag 2 first even though sent second.
      EXPECT_EQ(rank.recv_value<int>(0, 2), 20);
      // FIFO within (source, tag).
      EXPECT_EQ(rank.recv_value<int>(0, 1), 10);
      EXPECT_EQ(rank.recv_value<int>(0, 1), 11);
    }
  });
}

TEST(MiniMpi, VectorPayloadsDeepCopy) {
  World world(2, two_threads());
  world.run([](Rank& rank) {
    if (rank.rank() == 0) {
      std::vector<double> data(100);
      std::iota(data.begin(), data.end(), 0.0);
      rank.send_vector(1, 5, data);
      data.assign(100, -1.0);  // mutation after send must not leak
    } else {
      const auto got = rank.recv_vector<double>(0, 5);
      ASSERT_EQ(got.size(), 100u);
      EXPECT_DOUBLE_EQ(got[42], 42.0);
    }
  });
}

TEST(MiniMpi, BarrierSynchronizesAllRanks) {
  World world(4, two_threads());
  std::atomic<int> phase_count{0};
  std::atomic<bool> violation{false};
  world.run([&](Rank& rank) {
    for (int p = 0; p < 20; ++p) {
      phase_count.fetch_add(1);
      rank.barrier();
      if (phase_count.load() < 4 * (p + 1)) violation.store(true);
      rank.barrier();
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_count.load(), 80);
}

TEST(MiniMpi, Collectives) {
  World world(4, two_threads());
  world.run([](Rank& rank) {
    const double mine = static_cast<double>(rank.rank() + 1);  // 1..4

    EXPECT_DOUBLE_EQ(rank.allreduce(mine, Op::kSum), 10.0);
    EXPECT_DOUBLE_EQ(rank.allreduce(mine, Op::kMin), 1.0);
    EXPECT_DOUBLE_EQ(rank.allreduce(mine, Op::kMax), 4.0);

    const double reduced = rank.reduce(mine, Op::kSum, 2);
    if (rank.rank() == 2) {
      EXPECT_DOUBLE_EQ(reduced, 10.0);
    } else {
      EXPECT_DOUBLE_EQ(reduced, 0.0);
    }

    const double bc = rank.bcast(rank.rank() == 1 ? 123.5 : 0.0, 1);
    EXPECT_DOUBLE_EQ(bc, 123.5);

    const auto gathered = rank.gather(mine, 0);
    if (rank.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], r + 1.0);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(MiniMpi, RanksOwnIsolatedRuntimes) {
  World world(3, two_threads());
  world.run([](Rank& rank) {
    // Each rank runs OpenMP regions on its private runtime.
    std::atomic<int> hits{0};
    for (int i = 0; i < 5; ++i) {
      orca::omp::parallel([&](int) { hits.fetch_add(1); }, 2);
    }
    EXPECT_EQ(hits.load(), 10);
    // Region ids are rank-local: after 5 regions every rank sees id 5.
    EXPECT_EQ(rank.runtime().regions_executed(), 5u);
  });
  // Totals add up across isolated runtimes.
  EXPECT_EQ(world.total_regions_executed(), 15u);
  const auto per_rank = world.regions_per_rank();
  ASSERT_EQ(per_rank.size(), 3u);
  for (const auto calls : per_rank) EXPECT_EQ(calls, 5u);
}

TEST(MiniMpi, CollectorStatePerRank) {
  // STARTing the collector on rank 0 must not affect rank 1 — the paper's
  // model is one collector instance per MPI process.
  World world(2, two_threads());
  world.run([](Rank& rank) {
    orca::collector::MessageBuilder msg;
    msg.add(OMP_REQ_START);
    ASSERT_EQ(rank.runtime().collector_api(msg.buffer()), 0);
    // Every rank can START independently: no cross-rank SEQUENCE_ERR.
    EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
    rank.barrier();
    EXPECT_TRUE(rank.runtime().registry().initialized());
  });
}

TEST(MiniMpi, WorldIsReusableAcrossRuns) {
  World world(2, two_threads());
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> sum{0};
    world.run([&](Rank& rank) {
      sum.fetch_add(rank.rank() + 1);
      rank.barrier();
    });
    EXPECT_EQ(sum.load(), 3);
  }
  EXPECT_EQ(world.size(), 2);
}

}  // namespace
