/// Seeded chaos campaign against a live shm fleet (ctest labels: fleet,
/// chaos). Each schedule derives entirely from (ORCA_TEST_SEED, index)
/// and throws SIGSTOP/SIGKILL/truncate/header-scribble/attach-flap
/// weather at three producer children while orcamon drains them. The
/// invariants under test are the monitor's hostile-world claims:
///
///   * the daemon never crashes, whatever the fleet does;
///   * every attached producer ends the session either drained or
///     quarantined-with-a-reason — no silent limbo;
///   * a drained producer's books are honest: produced == read + lost.
///
/// A failing schedule is greedily minimized (testing/chaos.hpp) and the
/// failure message carries the campaign seed + index to replay it.
///
/// Alongside the randomized campaign, three deterministic scenarios pin
/// the individual defenses: the shard watchdog replacing a wedged drain
/// thread, the hard heartbeat deadline draining a SIGSTOPped producer,
/// and the attach retry budget turning a never-ready segment into an
/// attach-phase quarantine.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "shm/exporter.hpp"
#include "shm/layout.hpp"
#include "shm/reader.hpp"
#include "testing/chaos.hpp"
#include "testing/conformance.hpp"
#include "testing/fault_injection.hpp"
#include "tool/orcamon/fleet_monitor.hpp"

namespace {

namespace chaos = orca::testing::chaos;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::orcamon::FleetMonitor;
using orca::tool::orcamon::MonitorOptions;
using orca::tool::orcamon::ProducerInfo;
using orca::tool::orcamon::QuarantineRecord;

void burn_region(int, void*) {
  volatile double x = 0;
  for (int i = 0; i < 2000; ++i) x = x + i;
}

/// Child body: export through shm and run parallel regions until the stop
/// file appears (or a failsafe cap runs out). Chaos may SIGKILL us, or
/// truncate the segment under our own mapping and let SIGBUS do it — any
/// exit is a legitimate exit for a chaos victim.
[[noreturn]] void producer_child(const std::string& prefix,
                                 const std::string& stop_file) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.max_threads = 4;
  cfg.shm_export = true;
  cfg.shm_prefix = prefix;
  cfg.shm_ring_capacity = 1024;
  cfg.shm_heartbeat_ms = 10;
  auto* rt = new Runtime(cfg);
  Runtime::make_current(rt);
  if (!orca::shm::export_armed()) _exit(10);
  for (int i = 0; i < 60000; ++i) {
    rt->fork(&burn_region, nullptr, 2);
    if (::access(stop_file.c_str(), F_OK) == 0) break;
    ::usleep(1000);
  }
  delete rt;
  _exit(0);
}

struct ScenarioResult {
  bool ok = true;
  std::string detail;
};

/// One full fleet session under one schedule: fork three producers, run
/// the schedule against them while orcamon drains, close the session,
/// check the invariants. Fresh prefix per call so minimization replays
/// never see a previous run's segments.
ScenarioResult run_scenario(const chaos::ChaosSchedule& schedule) {
  static std::atomic<int> scenario_counter{0};
  const int id = scenario_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tag =
      std::to_string(::getpid()) + "-" + std::to_string(id);
  const std::string prefix = "orcachaos-" + tag;
  const std::string stop_file = "chaos_stop." + tag;
  std::remove(stop_file.c_str());

  ScenarioResult result;
  std::vector<pid_t> kids;
  for (int i = 0; i < 3; ++i) {
    const pid_t pid = fork();
    if (pid < 0) {
      result.ok = false;
      result.detail = "fork failed";
      return result;
    }
    if (pid == 0) producer_child(prefix, stop_file);
    kids.push_back(pid);
  }

  // Victims come from discovery, same as the monitor's own view.
  std::vector<orca::shm::SegmentName> segs;
  const auto arm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < arm_deadline) {
    segs = orca::shm::discover_segments(prefix);
    if (segs.size() >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<chaos::ChaosVictim> victims;
  for (const orca::shm::SegmentName& s : segs) {
    victims.push_back({static_cast<pid_t>(s.pid), s.name});
  }

  if (victims.size() == 3) {
    MonitorOptions opts;
    opts.prefix = prefix;
    opts.shards = 2;
    opts.poll_ms = 1;
    opts.discover_ms = 10;
    opts.report_interval_s = 0;
    opts.report_out = "/dev/null";
    opts.exit_when_idle = true;
    opts.duration_s = 15;  // failsafe: idle-exit is the expected path
    opts.liveness_grace = 3;
    opts.attach_retry_ms = 5;
    opts.attach_retry_max = 4;
    // SIGSTOP weather + a hard staleness deadline would force-close the
    // books of a producer that later resumes and publishes more; random
    // schedules therefore run without the deadline (it has its own
    // deterministic test below, where the victim never resumes).
    opts.heartbeat_deadline_ms = 0;
    FleetMonitor monitor(opts);
    std::thread runner([&] { monitor.run(); });

    chaos::run_schedule(schedule, victims);  // ends with a SIGCONT sweep
    { std::ofstream(stop_file) << "stop\n"; }
    for (const pid_t kid : kids) {
      int status = 0;
      (void)::waitpid(kid, &status, 0);  // any exit is fine for a victim
    }
    runner.join();

    std::ostringstream why;
    for (const ProducerInfo& p : monitor.producers()) {
      if (p.quarantined) {
        if (p.quarantine_reason.empty()) {
          result.ok = false;
          why << "pid " << p.pid << " quarantined without a reason; ";
        }
        continue;  // settled: books were snapshotted on the way in
      }
      if (!p.drained) {
        result.ok = false;
        why << "pid " << p.pid << " neither drained nor quarantined; ";
        continue;
      }
      if (p.produced != p.read + p.lost) {
        result.ok = false;
        why << "books off for pid " << p.pid << ": produced=" << p.produced
            << " read=" << p.read << " lost=" << p.lost << "; ";
      }
    }
    for (const QuarantineRecord& q : monitor.quarantines()) {
      if (q.reason.empty()) {
        result.ok = false;
        why << "quarantine record for " << q.name << " without a reason; ";
      }
    }
    result.detail = why.str();
  } else {
    result.ok = false;
    result.detail = "fleet never armed (" + std::to_string(victims.size()) +
                    "/3 segments)";
    for (const pid_t kid : kids) {
      (void)::kill(kid, SIGKILL);
      int status = 0;
      (void)::waitpid(kid, &status, 0);
    }
  }

  // Leftovers (quarantined segments are deliberately not unlinked by the
  // monitor; killed producers may leak theirs too).
  for (const orca::shm::SegmentName& s :
       orca::shm::discover_segments(prefix)) {
    ::shm_unlink(("/" + s.name).c_str());
  }
  std::remove(stop_file.c_str());
  return result;
}

TEST(ChaosFleet, SeededScheduleCampaign) {
  const std::uint64_t seed = orca::testing::conformance_seed(0x5EEDF00Dull);
  int schedules = 25;
  if (const char* env = std::getenv("ORCA_CHAOS_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) schedules = n;
  }
  for (int i = 0; i < schedules; ++i) {
    const chaos::ChaosSchedule schedule = chaos::ChaosSchedule::generate(
        seed, static_cast<std::uint64_t>(i), /*step_count=*/28, /*fleet=*/3);
    const ScenarioResult outcome = run_scenario(schedule);
    if (outcome.ok) continue;
    // Shrink the schedule before reporting: a dozen replays for a repro a
    // human can read beats a 30-step haystack.
    const chaos::ChaosSchedule minimal = chaos::minimize(
        schedule,
        [](const chaos::ChaosSchedule& cand) {
          return !run_scenario(cand).ok;
        },
        /*max_replays=*/16);
    ADD_FAILURE() << "chaos schedule " << i << " broke fleet invariants: "
                  << outcome.detail << "\nreproduce: ORCA_TEST_SEED=0x"
                  << std::hex << seed << std::dec << " (schedule index " << i
                  << ")\nminimized to " << minimal.steps.size()
                  << " step(s):\n"
                  << minimal.describe();
    break;  // one minimized repro is worth more than N raw failures
  }
}

TEST(ChaosFleet, WatchdogReplacesWedgedShard) {
  const std::string tag = std::to_string(::getpid());
  const std::string prefix = "orcachaos-wd-" + tag;
  const std::string stop_file = "chaos_wd_stop." + tag;
  std::remove(stop_file.c_str());

  // Fork before arming: the child must not inherit an armed injector.
  const pid_t kid = fork();
  ASSERT_GE(kid, 0);
  if (kid == 0) producer_child(prefix, stop_file);

  std::atomic<bool> wedged{false};
  std::atomic<bool> release{false};
  auto& inj = orca::testing::FaultInjector::instance();
  // Wedge exactly one shard thread at the top of its pass; replacements
  // (and the other shard) sail through.
  inj.set_hook(orca::testing::FaultPoint::kShardDrain, [&] {
    bool claim = false;
    if (wedged.compare_exchange_strong(claim, true)) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  inj.arm();

  {
    MonitorOptions opts;
    opts.prefix = prefix;
    opts.shards = 2;
    opts.poll_ms = 1;
    opts.discover_ms = 10;
    opts.report_interval_s = 0;
    opts.report_out = "/dev/null";
    opts.exit_when_idle = true;
    opts.duration_s = 20;  // failsafe
    opts.liveness_grace = 4;
    opts.shard_stall_ms = 100;
    FleetMonitor monitor(opts);
    std::thread runner([&] { monitor.run(); });

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (monitor.watchdog_restarts() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(monitor.watchdog_restarts(), 1u)
        << "watchdog never replaced the wedged shard";

    release.store(true, std::memory_order_release);
    { std::ofstream(stop_file) << "stop\n"; }
    int status = 0;
    ASSERT_EQ(::waitpid(kid, &status, 0), kid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    runner.join();

    // The replacement drained what the wedged thread abandoned: books
    // close honestly despite the mid-session thread swap.
    const std::vector<ProducerInfo> fleet = monitor.producers();
    ASSERT_EQ(fleet.size(), 1u);
    EXPECT_TRUE(fleet[0].drained);
    EXPECT_FALSE(fleet[0].quarantined);
    EXPECT_EQ(fleet[0].produced, fleet[0].read + fleet[0].lost);
    EXPECT_GT(fleet[0].read, 0u);
  }  // monitor dtor joins the retired thread (release is set)
  inj.disarm();
  std::remove(stop_file.c_str());
}

TEST(ChaosFleet, HeartbeatDeadlineDrainsStalledProducer) {
  const std::string tag = std::to_string(::getpid());
  const std::string prefix = "orcachaos-stall-" + tag;
  const std::string stop_file = "chaos_stall_stop." + tag;
  std::remove(stop_file.c_str());

  const pid_t kid = fork();
  ASSERT_GE(kid, 0);
  if (kid == 0) producer_child(prefix, stop_file);

  MonitorOptions opts;
  opts.prefix = prefix;
  opts.shards = 2;
  opts.poll_ms = 1;
  opts.discover_ms = 10;
  opts.report_interval_s = 0;
  opts.report_out = "/dev/null";
  opts.exit_when_idle = true;
  opts.duration_s = 20;  // failsafe
  // The ordinary missed-heartbeat path is disabled (absurd grace); only
  // the hard staleness deadline can declare this producer gone.
  opts.liveness_grace = 1000000;
  opts.heartbeat_deadline_ms = 250;
  FleetMonitor monitor(opts);
  std::thread runner([&] { monitor.run(); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while ((monitor.attached_count() < 1 || monitor.events_seen() < 100) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(monitor.attached_count(), 1u);
  ASSERT_GE(monitor.events_seen(), 100u);

  // Freeze the producer. Its pid stays alive, so without the deadline the
  // monitor would wait forever; with it the books get force-closed. The
  // victim is never resumed before the monitor exits — resuming after a
  // force-close is exactly the case the deadline knob documents away.
  ASSERT_EQ(::kill(kid, SIGSTOP), 0);
  runner.join();

  const std::vector<ProducerInfo> fleet = monitor.producers();
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_TRUE(fleet[0].stalled) << "deadline should report stalled, not dead";
  EXPECT_TRUE(fleet[0].drained);
  EXPECT_FALSE(fleet[0].quarantined);
  EXPECT_EQ(fleet[0].produced, fleet[0].read + fleet[0].lost);
  EXPECT_GT(fleet[0].read, 0u);

  ASSERT_EQ(::kill(kid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(kid, &status, 0), kid);
  for (const orca::shm::SegmentName& s :
       orca::shm::discover_segments(prefix)) {
    ::shm_unlink(("/" + s.name).c_str());
  }
  std::remove(stop_file.c_str());
}

TEST(ChaosFleet, AttachRetriesExhaustedBecomeQuarantine) {
  const std::string prefix = "orcachaos-stub-" + std::to_string(::getpid());
  // A segment that will never finish initializing: valid magic/version,
  // ready forever 0. The pid in the name is foreign so the monitor does
  // not skip it as self.
  const std::string name = prefix + ".999999.0";
  const int fd = ::shm_open(("/" + name).c_str(), O_CREAT | O_EXCL | O_RDWR,
                            0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, sizeof(orca::shm::SegmentHeader)), 0);
  void* base = ::mmap(nullptr, sizeof(orca::shm::SegmentHeader),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  auto* header = new (base) orca::shm::SegmentHeader{};
  header->magic = orca::shm::kMagic;
  header->version = orca::shm::kVersion;
  header->segment_bytes = sizeof(orca::shm::SegmentHeader);

  MonitorOptions opts;
  opts.prefix = prefix;
  opts.shards = 1;
  opts.discover_ms = 10;
  opts.report_interval_s = 0;
  opts.report_out = "/dev/null";
  opts.duration_s = 2;  // no producer will ever attach; duration bounds it
  opts.attach_retry_ms = 2;
  opts.attach_retry_max = 3;
  FleetMonitor monitor(opts);
  EXPECT_EQ(monitor.run(), 0u) << "a never-ready segment must not attach";

  const std::vector<QuarantineRecord> q = monitor.quarantines();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].name, name);
  EXPECT_EQ(q[0].pid, 999999);
  EXPECT_TRUE(q[0].attach_phase);
  EXPECT_NE(q[0].reason.find("retries exhausted"), std::string::npos)
      << q[0].reason;
  EXPECT_NE(q[0].reason.find("3x"), std::string::npos) << q[0].reason;

  const std::string report = monitor.render_report();
  EXPECT_NE(report.find("quarantined at attach"), std::string::npos)
      << report;

  ::munmap(base, sizeof(orca::shm::SegmentHeader));
  ::close(fd);
  ::shm_unlink(("/" + name).c_str());
}

}  // namespace
