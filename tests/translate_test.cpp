/// Translation-layer tests: the templates must emit the same runtime-call
/// shapes the OpenUH compiler emits (Fig. 2), register their outlined
/// regions with source coordinates, and behave correctly when composed.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "runtime/runtime.hpp"
#include "translate/omp.hpp"
#include "translate/region_registry.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::translate::RegionRegistry;

TEST(RegionRegistry, ParallelRegistersPragmaCoordinates) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  const std::size_t before = RegionRegistry::instance().size();
  orca::omp::parallel([](int) {});  // <- the "pragma" under test
  const unsigned pragma_line = __LINE__ - 1;
  EXPECT_EQ(RegionRegistry::instance().size(), before + 1);

  // Find the new entry and verify its coordinates.
  bool found = false;
  for (const auto& [fn, src] : RegionRegistry::instance().snapshot()) {
    if (src.line == pragma_line &&
        std::string(src.file).find("translate_test.cpp") !=
            std::string::npos) {
      EXPECT_EQ(src.label, "parallel");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  Runtime::make_current(nullptr);
}

TEST(RegionRegistry, LookupAndClearSemantics) {
  RegionRegistry& reg = RegionRegistry::instance();
  const int key = 0;
  reg.add(&key, {"fn", "file.cpp", 10, "parallel"});
  reg.add(&key, {"other", "other.cpp", 99, "parallel for"});  // first wins
  const auto found = reg.find(&key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->function, "fn");  // first registration wins
  EXPECT_EQ(found->line, 10u);
  const int other_key = 0;
  EXPECT_FALSE(reg.find(&other_key).has_value());
}

TEST(Translate, ParallelReceivesThreadIds) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<int> mask{0};
  orca::omp::parallel([&](int gtid) {
    // gtid is the *global* id; the team-local id comes from the user API.
    (void)gtid;
    mask.fetch_or(1 << omp_get_thread_num());
  }, 4);
  EXPECT_EQ(mask.load(), 0b1111);

  // Bodies that take no argument work too.
  std::atomic<int> count{0};
  orca::omp::parallel([&] { count.fetch_add(1); }, 3);
  EXPECT_EQ(count.load(), 3);
  Runtime::make_current(nullptr);
}

TEST(Translate, ParallelForSweepsEntireRange) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  std::vector<std::atomic<int>> hits(1000);
  orca::omp::parallel_for(0, 999, [&](long long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
  Runtime::make_current(nullptr);
}

TEST(Translate, ParallelForSchedVariants) {
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  for (const auto sched :
       {orca::omp::Sched::kDynamic, orca::omp::Sched::kGuided}) {
    std::atomic<long> sum{0};
    orca::omp::parallel_for_sched(1, 100, sched, 5,
                                  [&](long long i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 5050);
  }
  Runtime::make_current(nullptr);
}

TEST(Translate, ReduceMirrorsFig2CallSequence) {
  // The Fig. 1 example: sum += 1 over N iterations with reduction(+).
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  const long long n = 100000;
  const long long sum = orca::omp::parallel_reduce(
      0, n - 1, 0LL, [](long long a, long long b) { return a + b; },
      [](long long) { return 1LL; }, 4);
  EXPECT_EQ(sum, n);
  Runtime::make_current(nullptr);
}

TEST(Translate, NestedConstructsCompose) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<int> singles{0};
  std::atomic<int> masters{0};
  long criticals = 0;
  orca::omp::parallel([&](int) {
    orca::omp::for_static(0, 19, 1, [&](long long) {
      orca::omp::critical([&] { ++criticals; });
    });
    orca::omp::single([&] { singles.fetch_add(1); });
    orca::omp::master([&] { masters.fetch_add(1); });
    orca::omp::barrier();
  }, 4);
  EXPECT_EQ(criticals, 20);
  EXPECT_EQ(singles.load(), 1);
  EXPECT_EQ(masters.load(), 1);
  Runtime::make_current(nullptr);
}

TEST(Translate, DistinctCallSitesAreDistinctRegions) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  const std::size_t before = rt.distinct_region_count();
  for (int i = 0; i < 5; ++i) {
    orca::omp::parallel([](int) {});  // one call site, five invocations
  }
  EXPECT_EQ(rt.distinct_region_count(), before + 1);
  orca::omp::parallel([](int) {});  // a second call site
  EXPECT_EQ(rt.distinct_region_count(), before + 2);
  EXPECT_EQ(rt.regions_executed(), 6u);
  Runtime::make_current(nullptr);
}

}  // namespace
