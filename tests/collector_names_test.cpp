/// Exhaustive name round-trips for every ORA enum: to_string() must give
/// each live code a unique real name, and *_from_name() must invert it.
/// This is the test that keeps a newly added code (request, errcode,
/// event, state) from shipping nameless or colliding — the inverse scans
/// walk the full numeric range, so a missing switch case shows up here.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "collector/names.hpp"

namespace {

using namespace orca::collector;

/// Every request code the protocol can answer by name: the sanctioned
/// white-paper set plus the ORCA extensions.
std::vector<OMP_COLLECTORAPI_REQUEST> all_requests() {
  std::vector<OMP_COLLECTORAPI_REQUEST> out;
  for (int code = OMP_REQ_START; code < OMP_REQ_LAST; ++code) {
    out.push_back(static_cast<OMP_COLLECTORAPI_REQUEST>(code));
  }
  out.push_back(ORCA_REQ_EVENT_STATS);
  out.push_back(ORCA_REQ_TELEMETRY_SNAPSHOT);
  return out;
}

std::vector<OMP_COLLECTORAPI_EVENT> all_events() {
  std::vector<OMP_COLLECTORAPI_EVENT> out;
  for (int code = OMP_EVENT_FORK; code < OMP_EVENT_LAST; ++code) {
    out.push_back(static_cast<OMP_COLLECTORAPI_EVENT>(code));
  }
  for (int code = ORCA_EVENT_TASK_BEGIN; code < ORCA_EVENT_EXT_LAST; ++code) {
    out.push_back(static_cast<OMP_COLLECTORAPI_EVENT>(code));
  }
  return out;
}

TEST(CollectorNames, RequestRoundTripExhaustive) {
  std::set<std::string> seen;
  for (const OMP_COLLECTORAPI_REQUEST req : all_requests()) {
    const std::string name(to_string(req));
    EXPECT_NE(name, "?") << "request " << req << " has no name";
    EXPECT_TRUE(seen.insert(name).second) << name << " is duplicated";
    const auto back = request_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, req) << name;
  }
  EXPECT_EQ(seen.size(), all_requests().size());
}

TEST(CollectorNames, TelemetrySnapshotIsNamed) {
  EXPECT_EQ(to_string(ORCA_REQ_TELEMETRY_SNAPSHOT),
            "ORCA_REQ_TELEMETRY_SNAPSHOT");
  const auto back = request_from_name("ORCA_REQ_TELEMETRY_SNAPSHOT");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ORCA_REQ_TELEMETRY_SNAPSHOT);
}

TEST(CollectorNames, ErrcodeRoundTripExhaustive) {
  std::set<std::string> seen;
  for (int code = OMP_ERRCODE_OK; code <= OMP_ERRCODE_MEM_TOO_SMALL; ++code) {
    const auto ec = static_cast<OMP_COLLECTORAPI_EC>(code);
    const std::string name(to_string(ec));
    EXPECT_NE(name, "?") << "errcode " << code << " has no name";
    EXPECT_TRUE(seen.insert(name).second) << name << " is duplicated";
    const auto back = errcode_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, ec) << name;
  }
}

TEST(CollectorNames, EventRoundTripExhaustive) {
  std::set<std::string> seen;
  for (const OMP_COLLECTORAPI_EVENT event : all_events()) {
    const std::string name(to_string(event));
    EXPECT_NE(name, "?") << "event " << event << " has no name";
    EXPECT_TRUE(seen.insert(name).second) << name << " is duplicated";
    const auto back = event_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, event) << name;
  }
  EXPECT_EQ(seen.size(), all_events().size());
}

TEST(CollectorNames, StateRoundTripExhaustive) {
  std::set<std::string> seen;
  for (int code = THR_OVHD_STATE; code < THR_LAST_STATE; ++code) {
    const auto state = static_cast<OMP_COLLECTOR_API_THR_STATE>(code);
    const std::string name(to_string(state));
    EXPECT_NE(name, "?") << "state " << code << " has no name";
    EXPECT_TRUE(seen.insert(name).second) << name << " is duplicated";
    const auto back = state_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, state) << name;
  }
}

TEST(CollectorNames, SentinelsAndGarbageStayNameless) {
  EXPECT_EQ(to_string(OMP_REQ_LAST), "?");
  EXPECT_EQ(to_string(OMP_EVENT_LAST), "?");
  EXPECT_EQ(to_string(ORCA_EVENT_EXT_LAST), "?");
  EXPECT_EQ(to_string(THR_LAST_STATE), "?");

  EXPECT_FALSE(request_from_name("?").has_value());
  EXPECT_FALSE(request_from_name("").has_value());
  EXPECT_FALSE(request_from_name("OMP_REQ_LAST").has_value());
  EXPECT_FALSE(errcode_from_name("OMP_ERRCODE_BOGUS").has_value());
  EXPECT_FALSE(event_from_name("omp_event_fork").has_value());
  EXPECT_FALSE(state_from_name("THR_LAST_STATE").has_value());
}

}  // namespace
