/// Worksharing tests: schedule partition properties (every iteration
/// executed exactly once, for every schedule/thread-count/chunk/stride
/// combination), single/master semantics, and ordered sequencing.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

struct LoopCase {
  int threads;
  long long lower;
  long long upper;
  long long incr;
  long long chunk;
};

std::string loop_case_str(const LoopCase& c) {
  auto part = [](long long v) {
    return v < 0 ? "m" + std::to_string(-v) : std::to_string(v);
  };
  return "t" + std::to_string(c.threads) + "_lo" + part(c.lower) + "_hi" +
         part(c.upper) + "_inc" + part(c.incr) + "_ch" + part(c.chunk);
}

std::string loop_case_name(const ::testing::TestParamInfo<LoopCase>& info) {
  return loop_case_str(info.param);
}

const std::vector<LoopCase> kLoopCases = {
    {1, 0, 99, 1, 0},    {2, 0, 99, 1, 0},    {4, 0, 99, 1, 0},
    {4, 0, 0, 1, 0},     {4, 5, 4, 1, 0},     // empty loop
    {3, 0, 100, 3, 0},   {4, -50, 49, 1, 0},  {2, 100, 1, -1, 0},
    {4, 99, 0, -3, 0},   {4, 0, 99, 1, 7},    {2, 0, 9, 1, 100},
    {8, 0, 6, 1, 1},     {4, 0, 9999, 1, 13},
};

class StaticScheduleProperty : public ::testing::TestWithParam<LoopCase> {};

TEST_P(StaticScheduleProperty, EveryIterationExactlyOnce) {
  const LoopCase& c = GetParam();
  RuntimeConfig cfg;
  cfg.num_threads = c.threads;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  const long long trip =
      c.incr > 0 ? (c.upper >= c.lower ? (c.upper - c.lower) / c.incr + 1 : 0)
                 : (c.lower >= c.upper ? (c.lower - c.upper) / -c.incr + 1 : 0);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(
      trip > 0 ? trip : 1));

  orca::omp::parallel(
      [&](int) {
        orca::omp::for_static(c.lower, c.upper, c.incr, [&](long long i) {
          const long long idx = (i - c.lower) / c.incr;
          hits[static_cast<std::size_t>(idx)].fetch_add(1);
        }, c.chunk);
      },
      c.threads);

  for (long long i = 0; i < trip; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
  if (trip <= 0) {
    EXPECT_EQ(hits[0].load(), 0);
  }
  Runtime::make_current(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Partitions, StaticScheduleProperty,
                         ::testing::ValuesIn(kLoopCases), loop_case_name);

using DynParam = std::tuple<LoopCase, orca::omp::Sched>;

class DynamicScheduleProperty : public ::testing::TestWithParam<DynParam> {};

TEST_P(DynamicScheduleProperty, EveryIterationExactlyOnce) {
  const LoopCase& c = std::get<0>(GetParam());
  const orca::omp::Sched sched = std::get<1>(GetParam());
  RuntimeConfig cfg;
  cfg.num_threads = c.threads;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  const long long trip =
      c.incr > 0 ? (c.upper >= c.lower ? (c.upper - c.lower) / c.incr + 1 : 0)
                 : (c.lower >= c.upper ? (c.lower - c.upper) / -c.incr + 1 : 0);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(
      trip > 0 ? trip : 1));

  orca::omp::parallel(
      [&](int) {
        orca::omp::for_dynamic(
            c.lower, c.upper, c.incr,
            [&](long long i) {
              const long long idx = (i - c.lower) / c.incr;
              hits[static_cast<std::size_t>(idx)].fetch_add(1);
            },
            sched, c.chunk > 0 ? c.chunk : 1);
      },
      c.threads);

  for (long long i = 0; i < trip; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
  Runtime::make_current(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, DynamicScheduleProperty,
    ::testing::Combine(::testing::ValuesIn(kLoopCases),
                       ::testing::Values(orca::omp::Sched::kDynamic,
                                         orca::omp::Sched::kGuided)),
    [](const ::testing::TestParamInfo<DynParam>& param_info) {
      const bool dynamic =
          std::get<1>(param_info.param) == orca::omp::Sched::kDynamic;
      return std::string(dynamic ? "dyn_" : "guided_") +
             loop_case_str(std::get<0>(param_info.param));
    });

TEST(RuntimeSchedule, TakesKindAndChunkFromConfig) {
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  cfg.runtime_schedule = RuntimeConfig::parse_schedule("dynamic,4");
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::vector<std::atomic<int>> hits(100);
  orca::omp::parallel(
      [&](int) {
        orca::omp::for_dynamic(
            0, 99, 1,
            [&](long long i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
            orca::omp::Sched::kRuntime, 0);
      },
      3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  Runtime::make_current(nullptr);
}

TEST(Worksharing, ConsecutiveLoopsInOneRegion) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<long> sum{0};
  orca::omp::parallel(
      [&](int) {
        for (int loop = 0; loop < 10; ++loop) {
          orca::omp::for_static(0, 49, 1, [&](long long) { sum.fetch_add(1); });
          orca::omp::for_dynamic(0, 49, 1,
                                 [&](long long) { sum.fetch_add(1); });
        }
      },
      4);
  EXPECT_EQ(sum.load(), 10 * (50 + 50));
  Runtime::make_current(nullptr);
}

TEST(Worksharing, OrphanedLoopOutsideParallel) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  long sum = 0;
  orca::omp::for_static(0, 9, 1, [&](long long i) { sum += i; });
  EXPECT_EQ(sum, 45);
  long dsum = 0;
  orca::omp::for_dynamic(0, 9, 1, [&](long long i) { dsum += i; });
  EXPECT_EQ(dsum, 45);
  Runtime::make_current(nullptr);
}

TEST(Single, ExactlyOneExecutorPerEncounter) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  constexpr int kSingles = 50;
  std::vector<std::atomic<int>> executed(kSingles);
  orca::omp::parallel(
      [&](int) {
        for (int s = 0; s < kSingles; ++s) {
          orca::omp::single([&] {
            executed[static_cast<std::size_t>(s)].fetch_add(1);
          });
        }
      },
      4);
  for (int s = 0; s < kSingles; ++s) {
    EXPECT_EQ(executed[static_cast<std::size_t>(s)].load(), 1) << "single " << s;
  }
  Runtime::make_current(nullptr);
}

TEST(Single, NowaitSinglesStillExecuteExactlyOnce) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  constexpr int kSingles = 30;
  std::vector<std::atomic<int>> executed(kSingles);
  orca::omp::parallel(
      [&](int) {
        for (int s = 0; s < kSingles; ++s) {
          orca::omp::single(
              [&] { executed[static_cast<std::size_t>(s)].fetch_add(1); },
              /*nowait=*/true);
        }
      },
      4);
  for (int s = 0; s < kSingles; ++s) {
    EXPECT_EQ(executed[static_cast<std::size_t>(s)].load(), 1) << "single " << s;
  }
  Runtime::make_current(nullptr);
}

TEST(Master, OnlyThreadZeroExecutes) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<int> count{0};
  std::atomic<int> executor_tid{-1};
  orca::omp::parallel([&](int) {
    orca::omp::master([&] {
      count.fetch_add(1);
      executor_tid.store(omp_get_thread_num());
    });
  }, 4);
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(executor_tid.load(), 0);
  Runtime::make_current(nullptr);
}

TEST(Ordered, IterationsEnterInOrder) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::vector<long long> order;
  orca::omp::parallel(
      [&](int) {
        orca::omp::for_dynamic(
            0, 49, 1,
            [&](long long i) {
              orca::omp::ordered(i, [&] { order.push_back(i); });
            },
            orca::omp::Sched::kDynamic, 1);
      },
      4);
  ASSERT_EQ(order.size(), 50u);
  for (long long i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  Runtime::make_current(nullptr);
}

TEST(Reduce, ParallelReduceMatchesSerial) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  const long long n = 10000;
  const long long sum = orca::omp::parallel_reduce(
      1, n, 0LL, [](long long a, long long b) { return a + b; },
      [](long long i) { return i; }, 4);
  EXPECT_EQ(sum, n * (n + 1) / 2);

  const double prod = orca::omp::parallel_reduce(
      1, 20, 1.0, [](double a, double b) { return a * b; },
      [](long long) { return 1.0 + 1e-9; }, 3);
  EXPECT_NEAR(prod, 1.0 + 20e-9, 1e-12);
  Runtime::make_current(nullptr);
}

}  // namespace
