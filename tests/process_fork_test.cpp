/// Process-fork() survival tests (docs/RESILIENCE.md): the pthread_atfork
/// protocol quiesces delivery and the registry around the fork, the child
/// observes a consistent runtime in both ORCA_FORK_MODE settings —
/// `disable` keeps state/region queries answering but stops event
/// delivery, `rearm` restarts the drainer — and the parent's collection
/// continues unperturbed.
///
/// Child-side checks communicate through exit codes (no gtest in the
/// child, no Runtime destruction — the child leaves via _exit, the only
/// sanctioned way out of a forked multithreaded process).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

#include "collector/message.hpp"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"

namespace {

using orca::collector::Client;
using orca::collector::MessageBuilder;
using orca::rt::EventDelivery;
using orca::rt::ForkMode;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

std::atomic<std::uint64_t> g_count{0};
void counting_callback(OMP_COLLECTORAPI_EVENT) {
  g_count.fetch_add(1, std::memory_order_relaxed);
}

RuntimeConfig fork_cfg(ForkMode mode) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.event_delivery = EventDelivery::kAsync;
  cfg.fork_mode = mode;
  return cfg;
}

/// Child-side probe, shared by both modes. Returns the exit code: 0 = all
/// checks passed, otherwise the number of the first failing check.
int child_probe(Runtime& rt, bool expect_running) {
  // 1: the atfork child hook ran (fork episode counted).
  const Client client([&rt](void* b) { return rt.collector_api(b); });
  const auto stats = client.resilience_stats();
  if (!stats || stats->fork_events < 1) return 1;

  // 2: state queries still answer on the fast path.
  const auto state = client.state();
  if (!state || state->state != THR_SERIAL_STATE) return 2;

  // 3: drainer state matches the mode.
  if (rt.async_dispatcher() == nullptr) return 3;
  if (rt.async_dispatcher()->running() != expect_running) return 4;

  // 5: firing an event in the child must be benign in both modes.
  const std::uint64_t before = g_count.load(std::memory_order_relaxed);
  rt.registry().fire(OMP_EVENT_FORK);
  if (expect_running) {
    // rearm: the child's own drainer delivers it (PAUSE is the flush
    // barrier, exactly like the parent's lifecycle).
    if (client.pause() != OMP_ERRCODE_OK) return 5;
    if (g_count.load(std::memory_order_relaxed) != before + 1) return 6;
  } else {
    // disable: collection stopped, the callback must NOT run.
    if (g_count.load(std::memory_order_relaxed) != before) return 7;
  }
  return 0;
}

void run_fork_mode_test(ForkMode mode, bool expect_running) {
  g_count = 0;
  Runtime rt(fork_cfg(mode));
  Runtime::make_current(&rt);
  const Client client([&rt](void* b) { return rt.collector_api(b); });

  ASSERT_EQ(client.start(), OMP_ERRCODE_OK);
  ASSERT_EQ(client.register_event(OMP_EVENT_FORK, &counting_callback),
            OMP_ERRCODE_OK);
  rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(client.pause(), OMP_ERRCODE_OK);  // flush barrier
  ASSERT_EQ(g_count.load(), 1u);
  ASSERT_EQ(client.resume(), OMP_ERRCODE_OK);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    _exit(child_probe(rt, expect_running));
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child check #" << WEXITSTATUS(status)
                                    << " failed (see child_probe)";

  // Parent-side collection is unperturbed: events keep flowing to the
  // callback, and the parent counted the fork episode too.
  const std::uint64_t before = g_count.load();
  rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(client.pause(), OMP_ERRCODE_OK);
  EXPECT_EQ(g_count.load(), before + 1);
  const auto stats = client.resilience_stats();
  ASSERT_TRUE(stats);
  EXPECT_GE(stats->fork_events, 1u);

  ASSERT_EQ(client.resume(), OMP_ERRCODE_OK);
  ASSERT_EQ(client.stop(), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(ProcessFork, DisableModeChildKeepsQueriesStopsDelivery) {
  run_fork_mode_test(ForkMode::kDisable, /*expect_running=*/false);
}

TEST(ProcessFork, RearmModeChildRestartsDrainer) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "TSan forbids creating threads after a multi-threaded "
                  "fork (die_after_fork); rearm mode does exactly that";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "TSan forbids creating threads after a multi-threaded "
                  "fork (die_after_fork); rearm mode does exactly that";
#endif
#endif
  run_fork_mode_test(ForkMode::kRearm, /*expect_running=*/true);
}

TEST(ProcessFork, ForkWithNoCollectionIsTransparent) {
  // A runtime that never STARTed: the atfork protocol must still be safe,
  // and the child must still be able to query.
  Runtime rt(fork_cfg(ForkMode::kRearm));
  Runtime::make_current(&rt);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const Client client([&rt](void* b) { return rt.collector_api(b); });
    const auto state = client.state();
    _exit(state && state->state == THR_SERIAL_STATE ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  Runtime::make_current(nullptr);
}

}  // namespace
