/// Barrier-algorithm torture tests, parameterized over every ORCA_BARRIER
/// value: randomized team sizes, repeated team-descriptor reuse (the
/// runtime recycles one top-level TeamDescriptor, so `init()` runs per
/// region on warm state — where stale sense bits or episode counters
/// would bite), oversubscription (threads ≫ cores), true nested regions,
/// and process-fork survival. The invariant checked everywhere is the
/// barrier contract itself: after crossing, every team member observes
/// all n phase arrivals.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <random>
#include <vector>

#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

namespace {

using orca::rt::BarrierKind;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

/// Run one parallel region of `n` threads × `phases` lockstep phases.
/// Each phase: count in, cross the barrier, verify all n arrivals are
/// visible, cross again so no thread races into the next phase's counter.
/// Returns true when no thread ever passed a barrier early. gtest-free on
/// purpose — the fork-survival test calls it from the child.
bool lockstep_ok(int n, int phases) {
  std::vector<std::atomic<int>> arrivals(static_cast<std::size_t>(phases));
  std::atomic<bool> ok{true};
  orca::omp::parallel(
      [&](int) {
        for (int p = 0; p < phases; ++p) {
          arrivals[static_cast<std::size_t>(p)].fetch_add(
              1, std::memory_order_relaxed);
          orca::omp::barrier();
          if (arrivals[static_cast<std::size_t>(p)].load(
                  std::memory_order_relaxed) != n) {
            ok.store(false, std::memory_order_relaxed);
          }
          orca::omp::barrier();
        }
      },
      n);
  return ok.load();
}

class BarrierTorture : public ::testing::TestWithParam<BarrierKind> {
 protected:
  RuntimeConfig config(int num_threads) const {
    RuntimeConfig cfg;
    cfg.barrier = GetParam();
    cfg.num_threads = num_threads;
    return cfg;
  }
};

TEST_P(BarrierTorture, RandomizedTeamSizes) {
  Runtime rt(config(4));
  Runtime::make_current(&rt);
  // Seeded: a failure reproduces. Sizes span serial (1) to heavily
  // oversubscribed (32 on however few cores CI has).
  std::mt19937 rng(20260809u);
  std::uniform_int_distribution<int> size_dist(1, 32);
  for (int region = 0; region < 30; ++region) {
    const int n = size_dist(rng);
    EXPECT_TRUE(lockstep_ok(n, 3)) << "region " << region << " size " << n;
  }
  Runtime::make_current(nullptr);
}

TEST_P(BarrierTorture, InitReuseAcrossShrinkAndGrow) {
  Runtime rt(config(4));
  Runtime::make_current(&rt);
  // Deterministic worst-case reuse pattern for generation/flag state:
  // serial regions interleaved with the extremes, on one recycled
  // TeamDescriptor whose barrier keeps its allocation across same-kind
  // init() calls.
  for (const int n : {1, 32, 2, 17, 1, 8, 32, 3, 1, 16}) {
    EXPECT_TRUE(lockstep_ok(n, 4)) << "size " << n;
  }
  Runtime::make_current(nullptr);
}

TEST_P(BarrierTorture, OversubscribedLockstep) {
  Runtime rt(config(32));
  Runtime::make_current(&rt);
  // threads ≫ cores: every wait path (spin, yield, sleep escalation, CV)
  // is exercised because the team cannot run simultaneously.
  for (int region = 0; region < 3; ++region) {
    EXPECT_TRUE(lockstep_ok(32, 3)) << "region " << region;
  }
  Runtime::make_current(nullptr);
}

TEST_P(BarrierTorture, NestedRegionsKeepLockstep) {
  RuntimeConfig cfg = config(3);
  cfg.nested = true;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  std::atomic<bool> ok{true};
  std::atomic<int> inner_teams{0};
  orca::omp::parallel(
      [&](int) {
        // Each outer member runs its own inner team; the inner lockstep
        // state lives on this outer thread's stack, so inner barriers are
        // verified independently per nested team.
        std::vector<std::atomic<int>> arrivals(4);
        constexpr int kInner = 2;
        orca::omp::parallel(
            [&](int) {
              for (int p = 0; p < 4; ++p) {
                arrivals[static_cast<std::size_t>(p)].fetch_add(
                    1, std::memory_order_relaxed);
                orca::omp::barrier();
                if (arrivals[static_cast<std::size_t>(p)].load(
                        std::memory_order_relaxed) != kInner) {
                  ok.store(false, std::memory_order_relaxed);
                }
                orca::omp::barrier();
              }
            },
            kInner);
        inner_teams.fetch_add(1, std::memory_order_relaxed);
      },
      3);
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(inner_teams.load(), 3);
  Runtime::make_current(nullptr);
}

TEST_P(BarrierTorture, SurvivesProcessFork) {
  // Same skip as process_fork_test's rearm case: the child rebuilds the
  // worker pool, and TSan forbids creating threads after a
  // multi-threaded fork (die_after_fork).
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "TSan forbids creating threads after a multi-threaded "
                  "fork (die_after_fork); the child's pool rebuild does that";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "TSan forbids creating threads after a multi-threaded "
                  "fork (die_after_fork); the child's pool rebuild does that";
#endif
#endif
  Runtime rt(config(2));
  Runtime::make_current(&rt);
  ASSERT_TRUE(lockstep_ok(2, 2));  // pool warm before the fork

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: only the forking thread crossed; the pool rebuilds lazily on
    // the next region. The barrier (same algorithm, warm generation
    // state) must still uphold lockstep. _exit is the only sanctioned
    // way out of a forked multithreaded process.
    ::_exit(lockstep_ok(2, 2) ? 0 : 1);
  }
  // Parent: collection and synchronization continue unperturbed.
  EXPECT_TRUE(lockstep_ok(2, 2));
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  Runtime::make_current(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, BarrierTorture,
    ::testing::Values(BarrierKind::kCentralized, BarrierKind::kDissemination,
                      BarrierKind::kTree),
    [](const ::testing::TestParamInfo<BarrierKind>& info) {
      return std::string(orca::rt::barrier_kind_name(info.param));
    });

}  // namespace
