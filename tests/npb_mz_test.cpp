/// Table II parity tests for the MZ analogs over MiniMPI, plus hybrid
/// decomposition invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "npb/multizone.hpp"

namespace {

using orca::npb::MzOptions;
using orca::npb::MzResult;
using orca::npb::table2_target;

TEST(Table2Targets, MatchPaperPerProcessValues) {
  // Paper Table II, per process x thread configuration.
  EXPECT_EQ(table2_target("BT-MZ", 1), 167616u);
  EXPECT_EQ(table2_target("BT-MZ", 2), 83808u);
  EXPECT_EQ(table2_target("BT-MZ", 4), 41904u);
  EXPECT_EQ(table2_target("BT-MZ", 8), 20952u);

  EXPECT_EQ(table2_target("LU-MZ", 1), 40353u);
  EXPECT_EQ(table2_target("LU-MZ", 2), 20177u);
  EXPECT_EQ(table2_target("LU-MZ", 4), 10089u);
  EXPECT_EQ(table2_target("LU-MZ", 8), 5045u);

  EXPECT_EQ(table2_target("SP-MZ", 1), 436672u);
  EXPECT_EQ(table2_target("SP-MZ", 2), 218336u);
  EXPECT_EQ(table2_target("SP-MZ", 4), 109168u);
  EXPECT_EQ(table2_target("SP-MZ", 8), 54584u);

  EXPECT_EQ(table2_target("NOPE", 4), 0u);
}

struct MzCase {
  const char* name;
  int procs;
  int threads;
};

class MzParity : public ::testing::TestWithParam<MzCase> {};

TEST_P(MzParity, ScaledRunHitsPerRankTarget) {
  const MzCase& c = GetParam();
  MzOptions opts;
  opts.procs = c.procs;
  opts.threads_per_proc = c.threads;
  opts.scale = 0.02;  // 2% of the paper's schedule keeps tests quick

  const MzResult result = orca::npb::run_mz_by_name(c.name, opts);
  const std::uint64_t target = static_cast<std::uint64_t>(
      static_cast<double>(table2_target(c.name, c.procs)) * opts.scale);

  EXPECT_EQ(result.name, c.name);
  EXPECT_EQ(result.procs, c.procs);
  // Calibration pins the busiest rank to the per-process target.
  EXPECT_EQ(result.max_rank_calls, target);
  // Every rank is topped up to the same per-process count.
  EXPECT_EQ(result.total_calls,
            static_cast<std::uint64_t>(c.procs) * target);
  EXPECT_TRUE(std::isfinite(result.checksum));
}

INSTANTIATE_TEST_SUITE_P(
    ProcessThreadGrid, MzParity,
    ::testing::Values(MzCase{"BT-MZ", 1, 4}, MzCase{"BT-MZ", 2, 2},
                      MzCase{"BT-MZ", 4, 1}, MzCase{"LU-MZ", 1, 2},
                      MzCase{"LU-MZ", 2, 1}, MzCase{"SP-MZ", 2, 2},
                      MzCase{"SP-MZ", 4, 1}),
    [](const ::testing::TestParamInfo<MzCase>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(param_info.param.procs) + "x" +
             std::to_string(param_info.param.threads);
    });

TEST(MzFullScale, LuMzAtTwoProcsMatchesTable2Exactly) {
  MzOptions opts;
  opts.procs = 2;
  opts.threads_per_proc = 1;
  opts.scale = 1.0;
  const MzResult result = orca::npb::run_lu_mz(opts);
  EXPECT_EQ(result.max_rank_calls, 20177u);  // paper Table II, 2 x 4 column
}

TEST(MzDecomposition, ChecksumStableAcrossProcessCounts) {
  // The zone computation must be invariant to how zones map onto ranks.
  double reference = 0;
  for (int procs : {1, 2, 4}) {
    MzOptions opts;
    opts.procs = procs;
    opts.threads_per_proc = 1;
    opts.scale = 0.01;
    const MzResult result = orca::npb::run_bt_mz(opts);
    if (procs == 1) {
      reference = result.checksum;
    } else {
      EXPECT_NEAR(result.checksum, reference,
                  1e-6 * (1.0 + std::abs(reference)))
          << procs << " procs";
    }
  }
}

}  // namespace
