/// End-to-end integration: the full paper pipeline on real workloads.
/// NPB kernels run under the prototype collector; the collector's event
/// stream must agree exactly with the kernel's calibrated region schedule
/// (Table I), and the spill → offline-reconstruction path must produce a
/// profile whose sample count matches.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "npb/kernels.hpp"
#include "npb/multizone.hpp"
#include "perf/trace.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "tool/collector_tool.hpp"
#include "unwind/user_model.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::PrototypeCollector;
using orca::tool::ToolOptions;

TEST(Pipeline, CollectorSeesExactlyTable1ForkEvents) {
  // BT at full scale makes exactly 1014 region calls (Table I); the
  // collector must observe exactly 1014 FORK and 1014 JOIN events.
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.record_callstacks = true;
  opts.use_region_fn_extension = true;
  ASSERT_TRUE(tool.attach(opts));

  orca::npb::NpbOptions bench;
  bench.num_threads = 2;
  bench.scale = 1.0;
  const auto result = orca::npb::run_bt(bench);
  rt.quiesce();
  tool.detach();

  EXPECT_EQ(result.region_calls, 1014u);
  const auto report = tool.finalize();
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_FORK), 1014u);
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_JOIN), 1014u);
  // Each BT region contains two implicit barriers (the worksharing loop's
  // and the region-end barrier), both observed by 2 threads.
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_THR_BEGIN_IBAR),
            2u * 2u * 1014u);
  EXPECT_EQ(report.dropped_samples, 0u);

  // Every join produced a callstack. The profile groups by *calling
  // context*: BT has 11 distinct regions, and the calibration region
  // (error_norm) is reached through two call paths (direct + top-up), so
  // 12 contexts is the exact expected answer.
  std::uint64_t profiled = 0;
  for (const auto& entry : report.callstack_profile) {
    profiled += entry.samples;
  }
  EXPECT_EQ(profiled, 1014u);
  EXPECT_EQ(report.callstack_profile.size(), 12u);
  Runtime::make_current(nullptr);
}

TEST(Pipeline, SpillAndOfflineReconstructionRoundTrip) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.use_region_fn_extension = true;
  ASSERT_TRUE(tool.attach(opts));
  orca::npb::NpbOptions bench;
  bench.num_threads = 2;
  bench.scale = 1.0;
  (void)orca::npb::run_ft(bench);  // 112 region calls
  rt.quiesce();
  tool.detach();

  const std::string path =
      std::string(::testing::TempDir()) + "pipeline_ft.orcatrc";
  ASSERT_TRUE(orca::perf::write_trace(path, tool.trace_data()));

  orca::perf::TraceData loaded;
  ASSERT_TRUE(orca::perf::read_trace(path, &loaded));
  EXPECT_EQ(loaded.callstacks.size(), 112u);

  // Offline pass: every reconstructed stack resolves its region frame
  // (the extension tagged each record with the outlined procedure).
  std::size_t with_region_frame = 0;
  for (const auto& rec : loaded.callstacks) {
    const auto user = orca::unwind::reconstruct(rec.frames, rec.region_fn);
    ASSERT_FALSE(user.frames.empty());
    if (user.frames[0].resolution == orca::unwind::Resolution::kRegion) {
      ++with_region_frame;
      EXPECT_NE(user.frames[0].file.find("ft.cpp"), std::string::npos);
    }
  }
  EXPECT_EQ(with_region_frame, 112u);
  std::remove(path.c_str());
  Runtime::make_current(nullptr);
}

TEST(Pipeline, MzPerRankCollectorsObserveAllRegions) {
  auto& tool = PrototypeCollector::instance();
  tool.reset();
  tool.configure(ToolOptions{});

  orca::npb::MzOptions opts;
  opts.procs = 2;
  opts.threads_per_proc = 1;
  opts.scale = 0.05;
  opts.rank_begin = [](int) {
    orca::collector::Client client(&__omp_collector_api);
    client.start();
    client.register_event(OMP_EVENT_FORK, PrototypeCollector::raw_callback());
    client.register_event(OMP_EVENT_JOIN, PrototypeCollector::raw_callback());
  };
  opts.rank_end = [](int) {
    orca::collector::Client client(&__omp_collector_api);
    client.stop();
  };
  const auto result = orca::npb::run_lu_mz(opts);

  // Every region on every rank fired one FORK + one JOIN into the shared
  // tool store.
  const auto data = tool.trace_data();
  std::map<int, std::uint64_t> counts;
  for (const auto& s : data.samples) ++counts[s.event];
  EXPECT_EQ(counts[OMP_EVENT_FORK], result.total_calls);
  EXPECT_EQ(counts[OMP_EVENT_JOIN], result.total_calls);
}

}  // namespace
