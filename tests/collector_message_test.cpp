/// Wire-format tests: the white-paper byte-array request layout, builder
/// composition, bounds-checked parsing, and malformed-buffer rejection.
#include <gtest/gtest.h>

#include <cstring>

#include "collector/message.hpp"

namespace {

using namespace orca::collector;

void dummy_callback(OMP_COLLECTORAPI_EVENT) {}

TEST(MessageBuilder, SingleRequestLayout) {
  MessageBuilder builder;
  const std::size_t idx = builder.add(OMP_REQ_START);
  EXPECT_EQ(idx, 0u);
  void* buf = builder.buffer();
  ASSERT_NE(buf, nullptr);

  omp_collector_message header{};
  std::memcpy(&header, buf, kRecordHeaderSize);
  EXPECT_EQ(header.r_req, OMP_REQ_START);
  EXPECT_GE(header.sz, static_cast<int>(kRecordHeaderSize));
  EXPECT_EQ(header.r_errcode, OMP_ERRCODE_OK);
  EXPECT_EQ(header.r_sz, 0);

  // Terminator (sz == 0) follows the record.
  int term_sz = 123;
  std::memcpy(&term_sz, static_cast<char*>(buf) + header.sz, sizeof(int));
  EXPECT_EQ(term_sz, 0);
}

TEST(MessageBuilder, RegisterCarriesEventAndCallback) {
  MessageBuilder builder;
  builder.add_register(OMP_EVENT_FORK, &dummy_callback);
  MessageCursor cursor(builder.buffer());
  ASSERT_TRUE(cursor.valid());

  int event = 0;
  OMP_COLLECTORAPI_CALLBACK cb = nullptr;
  ASSERT_TRUE(cursor.read_payload(&event, sizeof(event)));
  ASSERT_TRUE(cursor.read_payload(&cb, sizeof(cb), sizeof(event)));
  EXPECT_EQ(event, OMP_EVENT_FORK);
  EXPECT_EQ(cb, &dummy_callback);
}

TEST(MessageBuilder, MultipleRecordsWalkInOrder) {
  MessageBuilder builder;
  builder.add(OMP_REQ_START);
  builder.add_register(OMP_EVENT_JOIN, &dummy_callback);
  builder.add_state_query();
  builder.add(OMP_REQ_STOP);

  MessageCursor cursor(builder.buffer());
  std::vector<OMP_COLLECTORAPI_REQUEST> seen;
  while (!cursor.at_terminator()) {
    ASSERT_TRUE(cursor.valid());
    seen.push_back(cursor.record()->r_req);
    cursor.advance();
  }
  EXPECT_EQ(seen, (std::vector<OMP_COLLECTORAPI_REQUEST>{
                      OMP_REQ_START, OMP_REQ_REGISTER, OMP_REQ_STATE,
                      OMP_REQ_STOP}));
}

TEST(MessageBuilder, BufferReusableAfterAppending) {
  MessageBuilder builder;
  builder.add(OMP_REQ_START);
  (void)builder.buffer();          // terminates
  builder.add(OMP_REQ_STOP);       // must strip the old terminator
  MessageCursor cursor(builder.buffer());
  int count = 0;
  while (!cursor.at_terminator()) {
    ++count;
    cursor.advance();
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(builder.count(), 2u);
}

TEST(MessageCursor, WriteReplySetsSizeHighWaterMark) {
  MessageBuilder builder;
  builder.add_state_query();
  MessageCursor cursor(builder.buffer());

  const int state = THR_WORK_STATE;
  const unsigned long wait_id = 17;
  ASSERT_TRUE(cursor.write_reply(&state, sizeof(state)));
  ASSERT_TRUE(cursor.write_reply(&wait_id, sizeof(wait_id), sizeof(state)));
  EXPECT_EQ(cursor.record()->r_sz,
            static_cast<int>(sizeof(state) + sizeof(wait_id)));

  int got_state = 0;
  unsigned long got_wait = 0;
  EXPECT_TRUE(builder.reply_value(0, &got_state));
  EXPECT_TRUE(builder.reply_value(0, &got_wait, sizeof(int)));
  EXPECT_EQ(got_state, THR_WORK_STATE);
  EXPECT_EQ(got_wait, 17ul);
}

TEST(MessageCursor, ReplyOverflowSetsMemTooSmall) {
  MessageBuilder builder;
  builder.add(OMP_REQ_CURRENT_PRID);  // zero-capacity record
  MessageCursor cursor(builder.buffer());
  unsigned long id = 1;
  EXPECT_FALSE(cursor.write_reply(&id, sizeof(id)));
  EXPECT_EQ(cursor.record()->r_errcode, OMP_ERRCODE_MEM_TOO_SMALL);
}

TEST(MessageCursor, PayloadReadIsBoundsChecked) {
  MessageBuilder builder;
  builder.add_unregister(OMP_EVENT_FORK);  // payload: one int
  MessageCursor cursor(builder.buffer());
  long long too_big = 0;
  // Reading past the record's declared capacity must fail, not overrun.
  EXPECT_FALSE(cursor.read_payload(&too_big, sizeof(too_big),
                                   cursor.payload_capacity()));
}

TEST(MessageCursor, MalformedSizeRejected) {
  // A record claiming a size smaller than the header is invalid.
  alignas(omp_collector_message) char buf[64] = {};
  omp_collector_message header{};
  header.sz = 4;  // < header size, nonzero
  header.r_req = OMP_REQ_START;
  std::memcpy(buf, &header, kRecordHeaderSize);
  MessageCursor cursor(buf);
  EXPECT_FALSE(cursor.valid());
  EXPECT_FALSE(cursor.at_terminator());
  EXPECT_FALSE(cursor.advance());
}

TEST(MessageBuilder, ReplyValueFailsWithoutReply) {
  MessageBuilder builder;
  builder.add_id_query(OMP_REQ_CURRENT_PRID);
  unsigned long id = 0;
  // No reply written yet: r_sz is 0.
  EXPECT_FALSE(builder.reply_value(0, &id));
}

TEST(MessageBuilder, RecordsAreAligned) {
  MessageBuilder builder;
  builder.add_unregister(OMP_EVENT_FORK);  // 4-byte payload
  builder.add_register(OMP_EVENT_JOIN, &dummy_callback);
  MessageCursor cursor(builder.buffer());
  // After the first (odd-payload) record, the next must still be aligned
  // for pointer-bearing payloads.
  EXPECT_EQ(static_cast<std::size_t>(cursor.record()->sz) % alignof(void*),
            0u);
}

}  // namespace
