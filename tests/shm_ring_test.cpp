/// Broadcast-ring protocol tests (src/shm/layout.hpp): the wait-free
/// single-producer push against private-cursor readers, loss accounting
/// under wraparound, and the seqlock torn-read validation — all in plain
/// memory, since the protocol is position-independent by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "shm/layout.hpp"

namespace {

using orca::shm::Cursor;
using orca::shm::Geometry;
using orca::shm::Poll;
using orca::shm::Record;
using orca::shm::RingCell;
using orca::shm::RingHeader;
using orca::shm::ring_poll;
using orca::shm::ring_push;

struct TestRing {
  RingHeader header{};
  std::vector<RingCell> cells;
  std::uint64_t capacity;
  std::uint64_t mask;

  explicit TestRing(std::uint64_t cap)
      : cells(cap), capacity(cap), mask(cap - 1) {}

  void push(std::uint64_t ns, std::int32_t event, std::int32_t tid,
            std::uint64_t arg = 0) {
    Record r;
    r.ns = ns;
    r.event = event;
    r.tid = tid;
    r.arg = arg;
    ring_push(header, cells.data(), mask, r);
  }

  Poll poll(Cursor& cur, Record* out) {
    return ring_poll(header, cells.data(), mask, capacity, cur, out);
  }
};

TEST(ShmGeometry, OffsetsAreOrderedAndAligned) {
  const Geometry g = Geometry::compute(5, 100, 30, 4096);
  EXPECT_EQ(g.event_capacity, 128u);   // rounded to pow2
  EXPECT_EQ(g.sample_capacity, 32u);
  EXPECT_LT(g.event_headers_off, g.sample_headers_off);
  EXPECT_LT(g.sample_headers_off, g.event_cells_off);
  EXPECT_LT(g.event_cells_off, g.sample_cells_off);
  EXPECT_LT(g.sample_cells_off, g.telemetry_off);
  EXPECT_LT(g.telemetry_off, g.crash_off);
  EXPECT_GE(g.total_bytes, g.crash_off + 4096);
  for (const std::uint64_t off :
       {g.event_headers_off, g.sample_headers_off, g.event_cells_off,
        g.sample_cells_off, g.telemetry_off, g.crash_off}) {
    EXPECT_EQ(off % 64, 0u) << "unaligned section at " << off;
  }
}

TEST(ShmRing, PushPollRoundtrip) {
  TestRing ring(16);
  ring.push(100, 7, 3, 42);
  ring.push(200, 8, 3, 0);

  Cursor cur;
  Record rec;
  ASSERT_EQ(ring.poll(cur, &rec), Poll::kRecord);
  EXPECT_EQ(rec.ns, 100u);
  EXPECT_EQ(rec.event, 7);
  EXPECT_EQ(rec.tid, 3);
  EXPECT_EQ(rec.arg, 42u);
  ASSERT_EQ(ring.poll(cur, &rec), Poll::kRecord);
  EXPECT_EQ(rec.ns, 200u);
  EXPECT_EQ(ring.poll(cur, &rec), Poll::kEmpty);
  EXPECT_EQ(cur.read, 2u);
  EXPECT_EQ(cur.lost, 0u);
}

TEST(ShmRing, NegativeTidSurvivesPacking) {
  TestRing ring(8);
  ring.push(1, -5, -1);
  Cursor cur;
  Record rec;
  ASSERT_EQ(ring.poll(cur, &rec), Poll::kRecord);
  EXPECT_EQ(rec.event, -5);
  EXPECT_EQ(rec.tid, -1);
}

TEST(ShmRing, WraparoundChargesLossHonestly) {
  constexpr std::uint64_t kCap = 8;
  constexpr std::uint64_t kPushes = 100;
  TestRing ring(kCap);
  for (std::uint64_t i = 0; i < kPushes; ++i) {
    ring.push(i, 1, 0);
  }
  Cursor cur;
  Record rec;
  std::uint64_t last_ns = 0;
  bool first = true;
  for (;;) {
    const Poll p = ring.poll(cur, &rec);
    if (p == Poll::kEmpty) break;
    if (p == Poll::kRecord) {
      if (!first) EXPECT_GT(rec.ns, last_ns) << "reads out of order";
      last_ns = rec.ns;
      first = false;
    }
  }
  // Every pushed record is either read or counted lost — never silent.
  EXPECT_EQ(cur.read + cur.lost, kPushes);
  EXPECT_EQ(cur.read, kCap);  // only the last lap is still resident
}

TEST(ShmRing, CursorFinalizeClosesTheBooks) {
  TestRing ring(16);
  for (int i = 0; i < 5; ++i) ring.push(i, 1, 0);
  Cursor cur;
  Record rec;
  ASSERT_EQ(ring.poll(cur, &rec), Poll::kRecord);
  ASSERT_EQ(ring.poll(cur, &rec), Poll::kRecord);
  orca::shm::cursor_finalize(ring.header, cur);
  EXPECT_EQ(cur.read, 2u);
  EXPECT_EQ(cur.lost, 3u);
  EXPECT_EQ(cur.read + cur.lost, 5u);
}

TEST(ShmRing, MidWriteCellPollsEmpty) {
  TestRing ring(8);
  // Simulate a producer that claimed position 0 and died mid-publish: the
  // tail moved but the cell's seq is still the invalidation marker.
  ring.header.tail.store(1, std::memory_order_release);
  ring.cells[0].seq.store(0, std::memory_order_release);
  Cursor cur;
  Record rec;
  EXPECT_EQ(ring.poll(cur, &rec), Poll::kEmpty);
  // Finalize charges the torn cell to the loss book.
  orca::shm::cursor_finalize(ring.header, cur);
  EXPECT_EQ(cur.lost, 1u);
}

TEST(ShmRing, ConcurrentReaderAccountsEveryRecord) {
  constexpr std::uint64_t kCap = 1024;
  constexpr std::uint64_t kPushes = 200000;
  TestRing ring(kCap);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i) {
      ring.push(i + 1, 1, 0, i);
    }
    done.store(true, std::memory_order_release);
  });

  Cursor cur;
  Record rec;
  std::uint64_t last_ns = 0;
  for (;;) {
    const Poll p = ring.poll(cur, &rec);
    if (p == Poll::kRecord) {
      // Torn payloads must never surface: ns values are strictly
      // increasing in push order, so any mix-up shows as disorder.
      EXPECT_GT(rec.ns, last_ns);
      EXPECT_EQ(rec.arg, rec.ns - 1);
      last_ns = rec.ns;
    } else if (p == Poll::kEmpty &&
               done.load(std::memory_order_acquire)) {
      if (ring.poll(cur, &rec) == Poll::kEmpty) break;  // drained
    }
  }
  producer.join();
  EXPECT_EQ(cur.read + cur.lost, kPushes);
  EXPECT_GT(cur.read, 0u);
}

}  // namespace
