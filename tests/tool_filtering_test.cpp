/// Selective-collection tests (paper Sec. VI: tools should "reduce the
/// number of times data is collected by distinguishing between either the
/// same parallel region or the calling context for a parallel region").
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/runtime.hpp"
#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::PrototypeCollector;
using orca::tool::ToolOptions;

RuntimeConfig two_threads() {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  return cfg;
}

TEST(Filtering, SamplingIntervalKeepsEveryNth) {
  Runtime rt(two_threads());
  Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.callstack_sampling_interval = 4;
  ASSERT_TRUE(tool.attach(opts));

  constexpr int kRegions = 40;
  for (int i = 0; i < kRegions; ++i) orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  tool.detach();

  const auto data = tool.trace_data();
  EXPECT_EQ(data.callstacks.size(), static_cast<std::size_t>(kRegions / 4));
  EXPECT_EQ(tool.callstacks_filtered(),
            static_cast<std::uint64_t>(kRegions - kRegions / 4));
  // Event samples are unaffected by callstack filtering.
  const auto report = tool.finalize();
  EXPECT_EQ(report.event_counts.at(OMP_EVENT_JOIN),
            static_cast<std::uint64_t>(kRegions));
  Runtime::make_current(nullptr);
}

TEST(Filtering, DedupByContextStoresEachCallSiteOnce) {
  Runtime rt(two_threads());
  Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.dedup_by_context = true;
  ASSERT_TRUE(tool.attach(opts));

  // Two distinct call sites, invoked many times each.
  for (int i = 0; i < 25; ++i) orca::omp::parallel([](int) {}, 2);
  for (int i = 0; i < 25; ++i) orca::omp::parallel([](int) { (void)0; }, 2);
  rt.quiesce();
  tool.detach();

  const auto data = tool.trace_data();
  // One stored context per call site (stacks through the same call chain
  // hash identically).
  EXPECT_EQ(data.callstacks.size(), 2u);
  EXPECT_EQ(tool.callstacks_filtered(), 48u);
  Runtime::make_current(nullptr);
}

TEST(Filtering, MinRegionDurationSkipsSmallRegions) {
  Runtime rt(two_threads());
  Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  // Wide margin between "tiny" (empty body) and "long" (50 ms sleep)
  // regions: sanitized builds on a loaded single-core machine can stretch
  // an empty fork/join by whole scheduler quanta.
  opts.min_region_seconds = 20e-3;
  ASSERT_TRUE(tool.attach(opts));

  // 10 tiny regions (well under the threshold) and 2 long ones.
  for (int i = 0; i < 10; ++i) orca::omp::parallel([](int) {}, 2);
  for (int i = 0; i < 2; ++i) {
    orca::omp::parallel([](int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }, 2);
  }
  rt.quiesce();
  tool.detach();

  const auto data = tool.trace_data();
  EXPECT_EQ(data.callstacks.size(), 2u);
  EXPECT_EQ(tool.callstacks_filtered(), 10u);
  Runtime::make_current(nullptr);
}

TEST(Filtering, FiltersCompose) {
  Runtime rt(two_threads());
  Runtime::make_current(&rt);
  auto& tool = PrototypeCollector::instance();
  tool.reset();
  ToolOptions opts;
  opts.callstack_sampling_interval = 2;
  opts.dedup_by_context = true;
  ASSERT_TRUE(tool.attach(opts));

  for (int i = 0; i < 20; ++i) orca::omp::parallel([](int) {}, 2);
  rt.quiesce();
  tool.detach();

  // Sampling admits 10, dedup keeps the first: exactly one stored stack.
  const auto data = tool.trace_data();
  EXPECT_EQ(data.callstacks.size(), 1u);
  EXPECT_EQ(tool.callstacks_filtered(), 19u);
  Runtime::make_current(nullptr);
}

}  // namespace
