/// Malformed-message suite: a handwritten corpus of adversarial buffers
/// (truncated/negative sz, unknown and negative request codes, undersized
/// mem[], zero-length and giant batches, misaligned record boundaries)
/// plus the seeded randomized fuzzer from orca_testing, run against both
/// sync- and async-delivery runtimes. Everything asserts the spec'd
/// errcodes; "no crash / no UB" is asserted by surviving the asan/ubsan
/// and tsan presets.
#include <gtest/gtest.h>

#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "collector/message.hpp"
#include "runtime/runtime.hpp"
#include "testing/conformance.hpp"
#include "testing/malformed.hpp"

namespace {

using orca::collector::kRecordHeaderSize;
using orca::collector::MessageBuilder;
using orca::rt::EventDelivery;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::testing::conformance_seed;
using orca::testing::MalformedOptions;
using orca::testing::MalformedReport;
using orca::testing::run_malformed;

RuntimeConfig sync_cfg() {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  return cfg;
}

/// Hand-rolled raw record writer: places a header with arbitrary (possibly
/// lying) sz/r_req at an arbitrary offset. The buffer always physically
/// holds at least a full header per record so reads stay in-bounds.
void put_header(std::vector<char>& bytes, std::size_t off, int sz, int req) {
  if (bytes.size() < off + kRecordHeaderSize) {
    bytes.resize(off + kRecordHeaderSize, 0);
  }
  std::memcpy(bytes.data() + off + offsetof(omp_collector_message, sz), &sz,
              sizeof(sz));
  std::memcpy(bytes.data() + off + offsetof(omp_collector_message, r_req),
              &req, sizeof(req));
}

OMP_COLLECTORAPI_EC errcode_at(const std::vector<char>& bytes,
                               std::size_t off) {
  int ec = 0;
  std::memcpy(&ec,
              bytes.data() + off + offsetof(omp_collector_message, r_errcode),
              sizeof(ec));
  return static_cast<OMP_COLLECTORAPI_EC>(ec);
}

TEST(MalformedCorpus, NullBufferRejected) {
  Runtime rt(sync_cfg());
  EXPECT_EQ(rt.collector_api(nullptr), -1);
}

TEST(MalformedCorpus, ZeroLengthBatchIsANoOpSuccess) {
  Runtime rt(sync_cfg());
  std::vector<char> bytes;
  put_header(bytes, 0, 0, 0);  // just the terminator
  EXPECT_EQ(rt.collector_api(bytes.data()), 0);
}

TEST(MalformedCorpus, TruncatedSzRejectsBuffer) {
  Runtime rt(sync_cfg());
  for (const int bad_sz : {1, 4, 8, static_cast<int>(kRecordHeaderSize) - 1}) {
    std::vector<char> bytes;
    put_header(bytes, 0, bad_sz, OMP_REQ_STATE);
    EXPECT_EQ(rt.collector_api(bytes.data()), -1) << "sz=" << bad_sz;
  }
}

TEST(MalformedCorpus, NegativeSzRejectsBuffer) {
  Runtime rt(sync_cfg());
  for (const int bad_sz : {-1, -16, -100000}) {
    std::vector<char> bytes;
    put_header(bytes, 0, bad_sz, OMP_REQ_STATE);
    EXPECT_EQ(rt.collector_api(bytes.data()), -1) << "sz=" << bad_sz;
  }
}

TEST(MalformedCorpus, UnknownAndNegativeRequestCodesAnswerUnknown) {
  Runtime rt(sync_cfg());
  MessageBuilder msg;
  for (const int kind :
       {static_cast<int>(OMP_REQ_LAST), 10, 15, 19, -1, -100, 9999}) {
    msg.add(kind, 8);
  }
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  for (std::size_t i = 0; i < msg.count(); ++i) {
    EXPECT_EQ(msg.errcode(i), OMP_ERRCODE_UNKNOWN) << "record " << i;
  }
}

TEST(MalformedCorpus, UndersizedMemAnswersMemTooSmall) {
  Runtime rt(sync_cfg());
  MessageBuilder msg;
  // REGISTER and UNREGISTER read their payload before any state check, so
  // capacity failures surface even while the machine is stopped.
  msg.add(OMP_REQ_REGISTER, 0);
  msg.add(OMP_REQ_REGISTER, 8);   // event fits, callback does not
  msg.add(OMP_REQ_UNREGISTER, 0);
  msg.add(OMP_REQ_STATE, 0);
  msg.add(OMP_REQ_CURRENT_PRID, 0);
  msg.add(ORCA_REQ_EVENT_STATS, 8);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  for (std::size_t i = 0; i < msg.count(); ++i) {
    EXPECT_EQ(msg.errcode(i), OMP_ERRCODE_MEM_TOO_SMALL) << "record " << i;
  }
}

TEST(MalformedCorpus, BrokenRecordMidBatchKeepsEarlierLifecycle) {
  // START walks (pass 1, inline), then the broken record aborts the batch:
  // rc == -1, but the machine has started — observable by the next call.
  Runtime rt(sync_cfg());
  std::vector<char> bytes;
  put_header(bytes, 0, static_cast<int>(kRecordHeaderSize), OMP_REQ_START);
  put_header(bytes, kRecordHeaderSize, 7, OMP_REQ_STATE);  // broken
  put_header(bytes, 2 * kRecordHeaderSize, 0, 0);          // unreachable term
  EXPECT_EQ(rt.collector_api(bytes.data()), -1);
  EXPECT_EQ(errcode_at(bytes, 0), OMP_ERRCODE_OK);  // START was answered

  MessageBuilder probe;
  probe.add(OMP_REQ_START);  // second START must now be out of sequence
  ASSERT_EQ(rt.collector_api(probe.buffer()), 0);
  EXPECT_EQ(probe.errcode(0), OMP_ERRCODE_SEQUENCE_ERR);
}

TEST(MalformedCorpus, MisalignedRecordBoundariesStillAnswered) {
  // First record declares sz = header + 1: legal (capacity 1), but it
  // leaves every following record 1-byte-misaligned. The dispatcher must
  // answer all of them without alignment faults (ubsan enforces this).
  Runtime rt(sync_cfg());
  std::vector<char> bytes;
  const std::size_t first = 0;
  const std::size_t second = kRecordHeaderSize + 1;
  const std::size_t third = second + kRecordHeaderSize + 4;
  put_header(bytes, first, static_cast<int>(kRecordHeaderSize + 1),
             OMP_REQ_STATE);  // capacity 1: too small for the state int
  put_header(bytes, second, static_cast<int>(kRecordHeaderSize + 4),
             OMP_REQ_STATE);  // capacity 4: exactly fits
  put_header(bytes, third, 0, 0);
  ASSERT_EQ(rt.collector_api(bytes.data()), 0);
  EXPECT_EQ(errcode_at(bytes, first), OMP_ERRCODE_MEM_TOO_SMALL);
  EXPECT_EQ(errcode_at(bytes, second), OMP_ERRCODE_OK);
}

TEST(MalformedCorpus, GiantBatchAnswersEveryRecord) {
  Runtime rt(sync_cfg());
  MessageBuilder msg;
  constexpr int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) msg.add_state_query();
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_EQ(msg.errcode(static_cast<std::size_t>(i)), OMP_ERRCODE_OK)
        << "record " << i;
  }
}

TEST(MalformedCorpus, GiantRecordRoundTrips) {
  Runtime rt(sync_cfg());
  MessageBuilder msg;
  ASSERT_NE(msg.add(OMP_REQ_STATE, 64 * 1024), MessageBuilder::npos);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
}

TEST(MalformedCorpus, OversizedRecordIsRejectedAtBuildTime) {
  // Regression: append_record used to truncate header.sz through a
  // static_cast<int> for multi-GiB payloads; it must refuse instead.
  MessageBuilder msg;
  const std::size_t huge = static_cast<std::size_t>(INT_MAX);
  EXPECT_EQ(msg.add(OMP_REQ_STATE, huge), MessageBuilder::npos);
  EXPECT_EQ(msg.add(OMP_REQ_STATE, SIZE_MAX - 2), MessageBuilder::npos);
  EXPECT_EQ(msg.count(), 0u);
  // The builder survives the rejection and still produces a valid buffer.
  EXPECT_EQ(msg.add(OMP_REQ_STATE, 16), 0u);
  Runtime rt(sync_cfg());
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
}

TEST(MalformedFuzz, SyncRuntimeMatchesModel) {
  MalformedOptions opt;
  opt.seed = conformance_seed(opt.seed);
  const MalformedReport report = run_malformed(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.buffers_run, static_cast<std::uint64_t>(opt.buffers));
  EXPECT_GT(report.records_checked, 1000u);
}

TEST(MalformedFuzz, AsyncRuntimeMatchesModel) {
  MalformedOptions opt;
  opt.seed = conformance_seed(opt.seed);
  opt.async_delivery = true;
  const MalformedReport report = run_malformed(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.buffers_run, static_cast<std::uint64_t>(opt.buffers));
  EXPECT_GT(report.records_checked, 1000u);
}

}  // namespace
