/// Runtime self-telemetry: arming semantics, timeline rings, the sharded
/// metrics registry, the Chrome-trace/text exporters, and the
/// ORCA_REQ_TELEMETRY_SNAPSHOT protocol surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "collector/message.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
namespace tel = orca::telemetry;

void noop_microtask(int, void*) {}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { tel::reset_for_testing(); }
  void TearDown() override { tel::reset_for_testing(); }
};

TEST_F(TelemetryTest, ArmingIsReferenceCounted) {
  ASSERT_EQ(tel::armed_mask(), 0u) << "another holder leaked an arm()";
  tel::arm(tel::kTimelineBit);
  tel::arm(tel::kTimelineBit);
  EXPECT_TRUE(tel::timeline_armed());
  tel::disarm(tel::kTimelineBit);
  EXPECT_TRUE(tel::timeline_armed()) << "one holder remains";
  tel::disarm(tel::kTimelineBit);
  EXPECT_FALSE(tel::timeline_armed());

  tel::arm(tel::kMetricsBit);
  EXPECT_FALSE(tel::timeline_armed());
  EXPECT_TRUE(tel::metrics_armed());
  tel::disarm(tel::kMetricsBit);
  EXPECT_EQ(tel::armed_mask(), 0u);
}

TEST_F(TelemetryTest, DisarmedHooksRecordNothing) {
  ASSERT_EQ(tel::armed_mask(), 0u);
  tel::record_state(THR_WORK_STATE);
  tel::record_span(tel::SpanKind::kDrainPass, tel::Phase::kBegin);
  tel::count(tel::Counter::kForks, 100);
  tel::gauge_max(tel::Gauge::kTaskQueueDepth, 7);
  tel::observe(tel::Histogram::kBarrierWaitNs, 1234);

  const tel::MetricsView view = tel::metrics();
  EXPECT_EQ(view.counters[static_cast<std::size_t>(tel::Counter::kForks)], 0u);
  EXPECT_EQ(view.gauges[0], 0u);
  EXPECT_EQ(view.histograms[0].count, 0u);
  EXPECT_EQ(view.timeline_records, 0u);
}

TEST_F(TelemetryTest, TimelineRecordsStatesAndSpans) {
  tel::arm(tel::kTimelineBit);
  tel::name_thread("tester");
  tel::record_state(THR_WORK_STATE);
  tel::record_span(tel::SpanKind::kDrainPass, tel::Phase::kBegin, 5);
  tel::record_span(tel::SpanKind::kDrainPass, tel::Phase::kEnd, 5);
  tel::record_state(THR_IBAR_STATE);
  tel::disarm(tel::kTimelineBit);

  const std::vector<tel::ThreadTimeline> threads = tel::timelines();
  const tel::ThreadTimeline* mine = nullptr;
  for (const tel::ThreadTimeline& t : threads) {
    if (t.name == "tester") mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->records.size(), 4u);
  EXPECT_EQ(mine->records[0].kind, tel::SpanKind::kState);
  EXPECT_EQ(mine->records[0].arg,
            static_cast<std::uint32_t>(THR_WORK_STATE));
  EXPECT_EQ(mine->records[1].kind, tel::SpanKind::kDrainPass);
  EXPECT_EQ(mine->records[1].phase, tel::Phase::kBegin);
  EXPECT_EQ(mine->records[2].phase, tel::Phase::kEnd);
  EXPECT_EQ(mine->records[2].arg, 5u);
  // Timestamps are monotone within one thread's ring.
  EXPECT_LE(mine->records[0].ns, mine->records[3].ns);
}

TEST_F(TelemetryTest, RingWrapsOverwritingOldest) {
  const std::size_t prev_capacity = tel::ring_capacity();
  tel::set_ring_capacity(64);
  tel::arm(tel::kTimelineBit);
  // Fresh thread => fresh ring at the reduced capacity (existing rings
  // keep their size, so the main thread's would not wrap).
  std::thread writer([] {
    tel::name_thread("wrapper");
    for (int i = 0; i < 500; ++i) tel::record_state(THR_WORK_STATE);
  });
  writer.join();
  tel::disarm(tel::kTimelineBit);
  tel::set_ring_capacity(prev_capacity);

  const std::vector<tel::ThreadTimeline> threads = tel::timelines();
  const tel::ThreadTimeline* mine = nullptr;
  for (const tel::ThreadTimeline& t : threads) {
    if (t.name == "wrapper") mine = &t;
  }
  ASSERT_NE(mine, nullptr) << "exited thread's timeline must survive";
  EXPECT_LE(mine->records.size(), 64u);
  EXPECT_GT(mine->records.size(), 0u);
  EXPECT_EQ(mine->overwritten, 500u - mine->records.size());
}

TEST_F(TelemetryTest, MetricsAggregateAcrossThreadShards) {
  tel::arm(tel::kMetricsBit);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      tel::count(tel::Counter::kForks, 10);
      tel::gauge_max(tel::Gauge::kTaskQueueDepth,
                     static_cast<std::uint64_t>(10 + t));
      tel::observe(tel::Histogram::kBarrierWaitNs, 1000);
    });
  }
  for (std::thread& th : threads) th.join();
  tel::disarm(tel::kMetricsBit);

  const tel::MetricsView view = tel::metrics();
  EXPECT_EQ(view.counters[static_cast<std::size_t>(tel::Counter::kForks)],
            40u);
  EXPECT_EQ(
      view.gauges[static_cast<std::size_t>(tel::Gauge::kTaskQueueDepth)],
      13u)
      << "gauge aggregates as max across shards";
  const tel::HistogramView& h =
      view.histograms[static_cast<std::size_t>(tel::Histogram::kBarrierWaitNs)];
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum_ns, 4000u);
  EXPECT_EQ(h.max_ns, 1000u);
  // Log2 buckets: the median estimate lands in the 1000ns bucket's range.
  EXPECT_GE(h.quantile(0.5), 256.0);
  EXPECT_LE(h.quantile(0.5), 4096.0);
}

TEST_F(TelemetryTest, ChromeTraceExportsSpansAndExternalEvents) {
  tel::arm(tel::kTimelineBit);
  tel::name_thread("exporter");
  tel::record_state(THR_WORK_STATE);
  tel::record_span(tel::SpanKind::kDrainPass, tel::Phase::kBegin, 3);
  tel::record_span(tel::SpanKind::kDrainPass, tel::Phase::kEnd, 3);
  tel::record_state(THR_SERIAL_STATE);
  tel::disarm(tel::kTimelineBit);

  tel::ExternalEvent ev;
  ev.ns = orca::SteadyClock::now();
  ev.name = "OMP_EVENT_FORK";
  ev.category = "collector";
  const std::string json = tel::render_chrome_trace({ev});

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("exporter"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "B/E pair and state sequence must produce complete spans";
  EXPECT_NE(json.find("OMP_EVENT_FORK"), std::string::npos);
  EXPECT_NE(json.find("collector"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');

  const std::string path = ::testing::TempDir() + "orca_telemetry_trace.json";
  ASSERT_TRUE(tel::write_chrome_trace(path, {ev}));
  EXPECT_EQ(slurp(path), json);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, TextReportListsMetricCatalog) {
  tel::arm(tel::kMetricsBit);
  tel::count(tel::Counter::kForks, 3);
  tel::disarm(tel::kMetricsBit);

  const std::string report = tel::render_text_report();
  EXPECT_NE(report.find("ORCA telemetry report"), std::string::npos);
  for (std::size_t i = 0; i < tel::kCounterCount; ++i) {
    EXPECT_NE(
        report.find(tel::counter_name(static_cast<tel::Counter>(i))),
        std::string::npos);
  }
  for (std::size_t i = 0; i < tel::kHistogramCount; ++i) {
    EXPECT_NE(
        report.find(tel::histogram_name(static_cast<tel::Histogram>(i))),
        std::string::npos);
  }
}

TEST_F(TelemetryTest, ShutdownReportWritesFileDestination) {
  const std::string path = ::testing::TempDir() + "orca_telemetry_report.txt";
  tel::shutdown_report(path);
  EXPECT_TRUE(file_exists(path));
  EXPECT_NE(slurp(path).find("ORCA telemetry report"), std::string::npos);
  std::remove(path.c_str());
  tel::shutdown_report("");  // no-op, must not crash
}

TEST_F(TelemetryTest, SnapshotRequestAnswersWithRuntimeCounters) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.telemetry_timeline = true;
  cfg.telemetry_metrics = true;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  rt.fork(&noop_microtask, nullptr, 2);
  rt.quiesce();

  MessageBuilder msg;
  msg.add_telemetry_query();
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  ASSERT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  orca_telemetry_snapshot snap = {};
  ASSERT_TRUE(msg.reply_value(0, &snap));
  EXPECT_EQ(snap.armed_mask, tel::kTimelineBit | tel::kMetricsBit);
  EXPECT_GE(snap.forks, 1u);
  EXPECT_GE(snap.joins, 1u);
  EXPECT_GE(snap.threads_tracked, 1u);
  EXPECT_GT(snap.timeline_records, 0u);
  Runtime::make_current(nullptr);
}

TEST_F(TelemetryTest, SnapshotRequestUnsupportedWhenConfigOff) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  MessageBuilder msg;
  msg.add_telemetry_query();
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_UNSUPPORTED);
}

TEST_F(TelemetryTest, SnapshotRequestRejectsSmallCapacity) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.telemetry_metrics = true;
  Runtime rt(cfg);
  MessageBuilder msg;
  msg.add(ORCA_REQ_TELEMETRY_SNAPSHOT, 8);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_MEM_TOO_SMALL);
}

TEST_F(TelemetryTest, RuntimeShutdownEmitsTraceAndReport) {
  const std::string trace = ::testing::TempDir() + "orca_shutdown_trace.json";
  const std::string report = ::testing::TempDir() + "orca_shutdown_report.txt";
  {
    RuntimeConfig cfg;
    cfg.num_threads = 2;
    cfg.telemetry_timeline = true;
    cfg.telemetry_metrics = true;
    cfg.telemetry_trace = trace;
    cfg.telemetry_report = report;
    Runtime rt(cfg);
    Runtime::make_current(&rt);
    rt.fork(&noop_microtask, nullptr, 2);
    rt.quiesce();
    Runtime::make_current(nullptr);
  }
  EXPECT_FALSE(tel::timeline_armed()) << "runtime dtor must disarm";
  ASSERT_TRUE(file_exists(trace));
  ASSERT_TRUE(file_exists(report));
  const std::string json = slurp(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("master"), std::string::npos);
  EXPECT_NE(slurp(report).find("ORCA telemetry report"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(report.c_str());
}

}  // namespace
