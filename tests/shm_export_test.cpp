/// Shm export layer tests (docs/FLEET.md): arm/attach handshake through a
/// real /dev/shm segment, runtime-config arming, event mirroring into the
/// rings, heartbeat + telemetry mirror + crash-snapshot freshness, clean
/// finalize-and-unlink, stale-segment hygiene — and the hostile-world
/// surface: an adversarial header-mutation corpus that attach must reject
/// without faulting, SIGBUS survival when the file shrinks under the
/// mapping, and graceful arm degradation when segment creation fails.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "collector/api.h"
#include "runtime/runtime.hpp"
#include "shm/exporter.hpp"
#include "shm/layout.hpp"
#include "shm/reader.hpp"
#include "shm/sigbus_guard.hpp"
#include "testing/fault_injection.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
namespace shm = orca::shm;

std::string unique_prefix(const char* tag) {
  return std::string("orcatest-") + tag + "-" + std::to_string(::getpid());
}

void wait_until(const std::function<bool()>& pred, int limit_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(limit_ms);
  while (!pred() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void noop_region(int, void*) {}

TEST(ShmExport, ArmExportsReadableSegment) {
  const std::string prefix = unique_prefix("arm");
  shm::ExporterOptions opts;
  opts.name = shm::default_segment_name(prefix);
  opts.label = "unit-test";
  opts.ring_count = 4;
  opts.event_capacity = 64;
  opts.sample_capacity = 16;
  opts.crash_capacity = 1024;
  opts.heartbeat_ms = 5;
  ASSERT_TRUE(shm::arm(opts));
  EXPECT_TRUE(shm::export_armed());
  EXPECT_EQ(shm::armed_segment_name(), opts.name);

  shm::mirror_event(1, 7);
  shm::mirror_event(1, 8);
  shm::mirror_sample(2, 3, 99);

  const auto segs = shm::discover_segments(prefix);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].pid, static_cast<std::int64_t>(::getpid()));

  std::string err;
  auto reader = shm::SegmentReader::attach(opts.name, &err);
  ASSERT_NE(reader, nullptr) << err;
  EXPECT_EQ(reader->owner_pid(), static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(reader->label(), "unit-test");
  EXPECT_EQ(reader->ring_count(), 4u);

  shm::Record rec;
  ASSERT_EQ(reader->poll_event(1, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 7);
  EXPECT_EQ(rec.tid, 1);
  ASSERT_EQ(reader->poll_event(1, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 8);
  ASSERT_EQ(reader->poll_sample(2, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 3);
  EXPECT_EQ(rec.arg, 99u);

  // Heartbeat: the sense keeps flipping, so the producer reads alive, and
  // the rolling crash snapshot + telemetry mirror stay fresh.
  wait_until([&] {
    return reader->salvage_crash().kind == shm::kCrashSnapshot;
  });
  EXPECT_EQ(reader->check_liveness(orca::SteadyClock::now()),
            shm::Liveness::kAlive);
  const shm::CrashSalvage salvage = reader->salvage_crash();
  EXPECT_EQ(salvage.kind, shm::kCrashSnapshot);
  EXPECT_FALSE(salvage.torn);
  EXPECT_NE(salvage.text.find("events_published"), std::string::npos);

  const shm::MirrorSnapshot mirror = reader->telemetry_snapshot();
  EXPECT_FALSE(mirror.torn);
  EXPECT_FALSE(mirror.counters.empty());

  shm::disarm();
  EXPECT_FALSE(shm::export_armed());
  EXPECT_EQ(reader->producer_state(), shm::ProducerState::kFinalized);
  EXPECT_EQ(reader->check_liveness(orca::SteadyClock::now()),
            shm::Liveness::kFinalized);
  // Finalized totals are exact; drain the rest and balance the books.
  while (reader->poll_event(1, &rec) == shm::Poll::kRecord) {}
  for (std::uint32_t r = 0; r < reader->ring_count(); ++r) {
    reader->finalize_ring(r);
  }
  EXPECT_EQ(reader->total_read() + reader->total_lost(),
            reader->total_produced());
  // The name is gone (unlinked); the mapping we hold stays valid.
  EXPECT_EQ(shm::SegmentReader::attach(opts.name), nullptr);
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, RefcountedArmSharesOneSegment) {
  const std::string prefix = unique_prefix("refcount");
  shm::ExporterOptions opts;
  opts.name = shm::default_segment_name(prefix);
  opts.ring_count = 2;
  opts.event_capacity = 16;
  ASSERT_TRUE(shm::arm(opts));
  const std::string first = shm::armed_segment_name();
  ASSERT_TRUE(shm::arm(opts));  // second arm: refcount only
  EXPECT_EQ(shm::armed_segment_name(), first);
  shm::disarm();
  EXPECT_TRUE(shm::export_armed()) << "first disarm must not finalize";
  shm::disarm();
  EXPECT_FALSE(shm::export_armed());
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, RuntimeArmsFromConfigAndMirrorsForkJoin) {
  const std::string prefix = unique_prefix("runtime");
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.max_threads = 4;
  cfg.shm_export = true;
  cfg.shm_prefix = prefix;
  cfg.shm_ring_capacity = 256;
  cfg.shm_heartbeat_ms = 10;
  {
    Runtime rt(cfg);
    EXPECT_TRUE(shm::export_armed());
    rt.fork(&noop_region, nullptr, 2);
    rt.fork(&noop_region, nullptr, 2);

    const auto segs = shm::discover_segments(prefix);
    ASSERT_EQ(segs.size(), 1u);
    auto reader = shm::SegmentReader::attach(segs[0].name);
    ASSERT_NE(reader, nullptr);
    // Ring 0 is the master slot: both regions' FORK and JOIN live there.
    int forks = 0, joins = 0;
    shm::Record rec;
    while (reader->poll_event(0, &rec) == shm::Poll::kRecord) {
      if (rec.event == OMP_EVENT_FORK) ++forks;
      if (rec.event == OMP_EVENT_JOIN) ++joins;
    }
    EXPECT_EQ(forks, 2);
    EXPECT_EQ(joins, 2);
  }
  // Runtime destruction disarms and unlinks.
  EXPECT_FALSE(shm::export_armed());
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, DisarmedByDefault) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  ASSERT_FALSE(cfg.shm_export);
  Runtime rt(cfg);
  EXPECT_FALSE(shm::export_armed());
}

TEST(ShmExport, StaleSegmentsReaped) {
  const std::string prefix = unique_prefix("stale");
  // A leftover from a "crashed" run: owner pid far above pid_max.
  const std::string stale = prefix + ".999999999.0";
  const std::string live =
      prefix + "." + std::to_string(::getpid()) + ".0";
  for (const std::string& name : {stale, live}) {
    const int fd = ::shm_open(("/" + name).c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 4096), 0);
    ::close(fd);
  }
  ASSERT_EQ(shm::discover_segments(prefix).size(), 2u);

  EXPECT_EQ(shm::cleanup_stale_segments(prefix), 1u);
  const auto left = shm::discover_segments(prefix);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].name, live) << "live-owner segment must survive";
  ::shm_unlink(("/" + live).c_str());
}

// --- hostile-world surface --------------------------------------------------

/// A hand-built segment with no exporter behind it: the heartbeat thread
/// of a live ShmExporter would SIGBUS (and kill the test) the moment we
/// truncate or scribble, so adversarial tests construct the bytes
/// directly and play producer by hand.
struct RawSegment {
  std::string name;
  int fd = -1;
  char* base = nullptr;
  shm::Geometry geo;
  shm::SegmentHeader* header = nullptr;
  shm::RingHeader* event_headers = nullptr;
  shm::RingCell* event_cells = nullptr;

  RawSegment(const RawSegment&) = delete;
  RawSegment& operator=(const RawSegment&) = delete;

  explicit RawSegment(const std::string& seg_name, std::uint32_t rings = 2,
                      std::uint32_t event_cap = 64,
                      std::uint32_t sample_cap = 16,
                      std::uint32_t crash_cap = 256)
      : name(seg_name) {
    geo = shm::Geometry::compute(rings, event_cap, sample_cap, crash_cap);
    fd = ::shm_open(("/" + name).c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) return;
    if (::ftruncate(fd, static_cast<off_t>(geo.total_bytes)) != 0) return;
    void* b = ::mmap(nullptr, geo.total_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    if (b == MAP_FAILED) return;
    base = static_cast<char*>(b);
    header = new (base) shm::SegmentHeader{};
    header->magic = shm::kMagic;
    header->version = shm::kVersion;
    header->header_bytes = sizeof(shm::SegmentHeader);
    header->segment_bytes = geo.total_bytes;
    header->owner_pid = static_cast<std::int64_t>(::getpid());
    header->ring_count = geo.ring_count;
    header->event_capacity = geo.event_capacity;
    header->sample_capacity = geo.sample_capacity;
    header->crash_capacity = geo.crash_capacity;
    header->event_headers_off = geo.event_headers_off;
    header->sample_headers_off = geo.sample_headers_off;
    header->event_cells_off = geo.event_cells_off;
    header->sample_cells_off = geo.sample_cells_off;
    header->telemetry_off = geo.telemetry_off;
    header->crash_off = geo.crash_off;
    std::snprintf(header->label, sizeof(header->label), "raw-segment");
    header->heartbeat_interval_ms = 5;
    event_headers = new (base + geo.event_headers_off)
        shm::RingHeader[geo.ring_count]{};
    new (base + geo.sample_headers_off) shm::RingHeader[geo.ring_count]{};
    event_cells = new (base + geo.event_cells_off)
        shm::RingCell[static_cast<std::size_t>(geo.ring_count) *
                      geo.event_capacity]{};
    new (base + geo.sample_cells_off)
        shm::RingCell[static_cast<std::size_t>(geo.ring_count) *
                      geo.sample_capacity]{};
    new (base + geo.telemetry_off) shm::TelemetryMirror{};
    new (base + geo.crash_off) shm::CrashRegion{};
    header->producer_state.store(
        static_cast<std::uint32_t>(shm::ProducerState::kActive),
        std::memory_order_release);
    header->ready.store(1, std::memory_order_release);
  }

  void push_event(std::uint32_t ring, std::int32_t event, std::int32_t tid) {
    shm::Record rec;
    rec.ns = 1000;
    rec.event = event;
    rec.tid = tid;
    shm::ring_push(event_headers[ring],
                   event_cells +
                       static_cast<std::size_t>(ring) * geo.event_capacity,
                   geo.event_capacity - 1, rec);
  }

  bool ok() const { return base != nullptr; }

  ~RawSegment() {
    if (base != nullptr) ::munmap(base, geo.total_bytes);
    if (fd >= 0) ::close(fd);
    ::shm_unlink(("/" + name).c_str());
  }
};

TEST(ShmAttackSurface, AdversarialHeaderCorpusRejectedAtAttach) {
  struct Entry {
    const char* tag;
    std::function<void(shm::SegmentHeader&)> corrupt;
    const char* expect;  // substring of the attach error
  };
  const std::vector<Entry> corpus = {
      {"ring-count-ceiling",
       [](shm::SegmentHeader& h) { h.ring_count = 1u << 20; },
       "ring_count"},
      {"ring-count-overflowing",
       [](shm::SegmentHeader& h) { h.ring_count = 0xFFFFu; },
       "exceed"},
      {"ring-count-zero", [](shm::SegmentHeader& h) { h.ring_count = 0; },
       "ring_count"},
      {"capacity-not-pow2",
       [](shm::SegmentHeader& h) { h.event_capacity = 3; },
       "power of two"},
      {"capacity-overflow-bait",
       [](shm::SegmentHeader& h) { h.sample_capacity = 1u << 30; },
       "sample"},
      {"cells-off-past-end",
       [](shm::SegmentHeader& h) {
         h.event_cells_off = h.segment_bytes + 64;
       },
       "exceed"},
      {"offset-aliases-header",
       [](shm::SegmentHeader& h) { h.telemetry_off = 8; },
       "aliases"},
      {"offset-misaligned",
       [](shm::SegmentHeader& h) { h.event_headers_off += 4; },
       "aligned"},
      {"segment-bytes-overflow",
       [](shm::SegmentHeader& h) { h.segment_bytes = ~0ull >> 1; },
       "mapped"},
      {"crash-region-overflow-bait",
       [](shm::SegmentHeader& h) {
         h.crash_off = h.segment_bytes - 4 * 16;  // aligned, region hangs off
       },
       "crash"},
      {"label-unterminated",
       [](shm::SegmentHeader& h) {
         std::memset(h.label, 'X', sizeof(h.label));
       },
       "label"},
      {"bad-magic", [](shm::SegmentHeader& h) { h.magic ^= 0xFF; }, "magic"},
      {"bad-version", [](shm::SegmentHeader& h) { h.version = 99; },
       "version"},
  };
  int index = 0;
  for (const Entry& entry : corpus) {
    RawSegment seg(unique_prefix("corpus") + "." +
                   std::to_string(::getpid()) + "." + std::to_string(index++));
    ASSERT_TRUE(seg.ok()) << entry.tag;
    entry.corrupt(*seg.header);
    shm::AttachError err;
    auto reader = shm::SegmentReader::attach(seg.name, &err);
    EXPECT_EQ(reader, nullptr) << entry.tag;
    EXPECT_EQ(err.kind, shm::AttachError::Kind::kCorrupt) << entry.tag;
    EXPECT_FALSE(err.retryable()) << entry.tag;
    EXPECT_NE(err.message.find(entry.expect), std::string::npos)
        << entry.tag << ": got \"" << err.message << "\"";
  }
}

TEST(ShmAttackSurface, TransientStatesClassifiedRetryable) {
  // Mid-initialization: valid geometry, ready still 0.
  RawSegment seg(unique_prefix("transient") + "." +
                 std::to_string(::getpid()) + ".1");
  ASSERT_TRUE(seg.ok());
  seg.header->ready.store(0, std::memory_order_release);
  shm::AttachError err;
  EXPECT_EQ(shm::SegmentReader::attach(seg.name, &err), nullptr);
  EXPECT_EQ(err.kind, shm::AttachError::Kind::kTransient);
  EXPECT_TRUE(err.retryable());

  // Mid-create: the file exists but is shorter than the header.
  const std::string shorty =
      unique_prefix("transient") + "." + std::to_string(::getpid()) + ".2";
  const int fd = ::shm_open(("/" + shorty).c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 16), 0);
  ::close(fd);
  EXPECT_EQ(shm::SegmentReader::attach(shorty, &err), nullptr);
  EXPECT_EQ(err.kind, shm::AttachError::Kind::kTransient);
  ::shm_unlink(("/" + shorty).c_str());

  // Vanished: classified kNotFound, not retryable.
  EXPECT_EQ(shm::SegmentReader::attach(shorty + ".gone", &err), nullptr);
  EXPECT_EQ(err.kind, shm::AttachError::Kind::kNotFound);
  EXPECT_FALSE(err.retryable());
}

TEST(ShmAttackSurface, TruncationSurvivedViaSigbusGuard) {
  RawSegment seg(unique_prefix("truncate") + "." +
                 std::to_string(::getpid()) + ".1");
  ASSERT_TRUE(seg.ok());
  for (int i = 0; i < 10; ++i) seg.push_event(0, 7, 0);

  shm::AttachError err;
  auto reader = shm::SegmentReader::attach(seg.name, &err);
  ASSERT_NE(reader, nullptr) << err.message;
  EXPECT_TRUE(reader->revalidate());
  shm::Record rec;
  ASSERT_EQ(reader->poll_event(0, &rec), shm::Poll::kRecord);

  // The producer turns hostile: the file shrinks to nothing under both
  // mappings. Every page is now a SIGBUS in waiting.
  ASSERT_EQ(::ftruncate(seg.fd, 0), 0);
  std::string why;
  EXPECT_FALSE(reader->revalidate(&why));
  EXPECT_NE(why.find("truncated"), std::string::npos);

  // A guarded drain is aborted, not fatal; the guard reports the trip.
  const bool survived = shm::with_sigbus_guard([&] {
    while (reader->poll_event(0, &rec) == shm::Poll::kRecord) {}
  });
  EXPECT_FALSE(survived) << "poll should have faulted on the empty file";

  // Guards nest and the thread stays usable afterwards.
  EXPECT_TRUE(shm::with_sigbus_guard([] {}));
}

TEST(ShmAttackSurface, ArmDegradesToWarningOnInjectedFailure) {
  auto& inj = orca::testing::FaultInjector::instance();
  inj.fail_allocs(orca::testing::FaultPoint::kShmArm, 1);
  inj.arm();
  shm::ExporterOptions opts;
  opts.name = shm::default_segment_name(unique_prefix("degrade"));
  EXPECT_FALSE(shm::arm(opts));
  EXPECT_FALSE(shm::export_armed());
  inj.disarm();

  // The hosting runtime shrugs it off: construction succeeds, regions
  // run, nothing was exported.
  inj.fail_allocs(orca::testing::FaultPoint::kShmArm, 1);
  inj.arm();
  const std::string prefix = unique_prefix("degrade-rt");
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.shm_export = true;
  cfg.shm_prefix = prefix;
  {
    Runtime rt(cfg);
    EXPECT_FALSE(shm::export_armed());
    rt.fork(&noop_region, nullptr, 2);
  }
  inj.disarm();
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmAttackSurface, AttachSeamInjectsRetryableFailure) {
  RawSegment seg(unique_prefix("attachseam") + "." +
                 std::to_string(::getpid()) + ".1");
  ASSERT_TRUE(seg.ok());
  auto& inj = orca::testing::FaultInjector::instance();
  inj.fail_allocs(orca::testing::FaultPoint::kShmAttach, 1);
  inj.arm();
  shm::AttachError err;
  EXPECT_EQ(shm::SegmentReader::attach(seg.name, &err), nullptr);
  EXPECT_EQ(err.kind, shm::AttachError::Kind::kIo);
  EXPECT_TRUE(err.retryable());
  // Budget spent: the same attach now succeeds (what the monitor's
  // backoff loop relies on).
  EXPECT_NE(shm::SegmentReader::attach(seg.name, &err), nullptr)
      << err.message;
  inj.disarm();
}

TEST(ShmAttackSurface, ReadOnlySegmentsAttachWithoutTheBump) {
  RawSegment seg(unique_prefix("readonly") + "." +
                 std::to_string(::getpid()) + ".1");
  ASSERT_TRUE(seg.ok());
  seg.push_event(0, 7, 0);
  ASSERT_EQ(::chmod(("/dev/shm/" + seg.name).c_str(), 0400), 0);

  shm::AttachError err;
  auto reader = shm::SegmentReader::attach(seg.name, &err);
  ASSERT_NE(reader, nullptr) << err.message;
  // Root bypasses the permission bits, so the read-only fallback only
  // engages for unprivileged runs; either way the attach counter must
  // agree with writable().
  const std::uint32_t attached =
      seg.header->readers_attached.load(std::memory_order_acquire);
  if (reader->writable()) {
    EXPECT_EQ(attached, 1u);
  } else {
    EXPECT_EQ(attached, 0u) << "read-only reader must not write the bump";
  }
  // Draining needs no write access at all.
  shm::Record rec;
  EXPECT_EQ(reader->poll_event(0, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 7);
}

}  // namespace
