/// Shm export layer tests (docs/FLEET.md): arm/attach handshake through a
/// real /dev/shm segment, runtime-config arming, event mirroring into the
/// rings, heartbeat + telemetry mirror + crash-snapshot freshness, clean
/// finalize-and-unlink, and stale-segment hygiene.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "collector/api.h"
#include "runtime/runtime.hpp"
#include "shm/exporter.hpp"
#include "shm/reader.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
namespace shm = orca::shm;

std::string unique_prefix(const char* tag) {
  return std::string("orcatest-") + tag + "-" + std::to_string(::getpid());
}

void wait_until(const std::function<bool()>& pred, int limit_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(limit_ms);
  while (!pred() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void noop_region(int, void*) {}

TEST(ShmExport, ArmExportsReadableSegment) {
  const std::string prefix = unique_prefix("arm");
  shm::ExporterOptions opts;
  opts.name = shm::default_segment_name(prefix);
  opts.label = "unit-test";
  opts.ring_count = 4;
  opts.event_capacity = 64;
  opts.sample_capacity = 16;
  opts.crash_capacity = 1024;
  opts.heartbeat_ms = 5;
  ASSERT_TRUE(shm::arm(opts));
  EXPECT_TRUE(shm::export_armed());
  EXPECT_EQ(shm::armed_segment_name(), opts.name);

  shm::mirror_event(1, 7);
  shm::mirror_event(1, 8);
  shm::mirror_sample(2, 3, 99);

  const auto segs = shm::discover_segments(prefix);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].pid, static_cast<std::int64_t>(::getpid()));

  std::string err;
  auto reader = shm::SegmentReader::attach(opts.name, &err);
  ASSERT_NE(reader, nullptr) << err;
  EXPECT_EQ(reader->owner_pid(), static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(reader->label(), "unit-test");
  EXPECT_EQ(reader->ring_count(), 4u);

  shm::Record rec;
  ASSERT_EQ(reader->poll_event(1, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 7);
  EXPECT_EQ(rec.tid, 1);
  ASSERT_EQ(reader->poll_event(1, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 8);
  ASSERT_EQ(reader->poll_sample(2, &rec), shm::Poll::kRecord);
  EXPECT_EQ(rec.event, 3);
  EXPECT_EQ(rec.arg, 99u);

  // Heartbeat: the sense keeps flipping, so the producer reads alive, and
  // the rolling crash snapshot + telemetry mirror stay fresh.
  wait_until([&] {
    return reader->salvage_crash().kind == shm::kCrashSnapshot;
  });
  EXPECT_EQ(reader->check_liveness(orca::SteadyClock::now()),
            shm::Liveness::kAlive);
  const shm::CrashSalvage salvage = reader->salvage_crash();
  EXPECT_EQ(salvage.kind, shm::kCrashSnapshot);
  EXPECT_FALSE(salvage.torn);
  EXPECT_NE(salvage.text.find("events_published"), std::string::npos);

  const shm::MirrorSnapshot mirror = reader->telemetry_snapshot();
  EXPECT_FALSE(mirror.torn);
  EXPECT_FALSE(mirror.counters.empty());

  shm::disarm();
  EXPECT_FALSE(shm::export_armed());
  EXPECT_EQ(reader->producer_state(), shm::ProducerState::kFinalized);
  EXPECT_EQ(reader->check_liveness(orca::SteadyClock::now()),
            shm::Liveness::kFinalized);
  // Finalized totals are exact; drain the rest and balance the books.
  while (reader->poll_event(1, &rec) == shm::Poll::kRecord) {}
  for (std::uint32_t r = 0; r < reader->ring_count(); ++r) {
    reader->finalize_ring(r);
  }
  EXPECT_EQ(reader->total_read() + reader->total_lost(),
            reader->total_produced());
  // The name is gone (unlinked); the mapping we hold stays valid.
  EXPECT_EQ(shm::SegmentReader::attach(opts.name), nullptr);
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, RefcountedArmSharesOneSegment) {
  const std::string prefix = unique_prefix("refcount");
  shm::ExporterOptions opts;
  opts.name = shm::default_segment_name(prefix);
  opts.ring_count = 2;
  opts.event_capacity = 16;
  ASSERT_TRUE(shm::arm(opts));
  const std::string first = shm::armed_segment_name();
  ASSERT_TRUE(shm::arm(opts));  // second arm: refcount only
  EXPECT_EQ(shm::armed_segment_name(), first);
  shm::disarm();
  EXPECT_TRUE(shm::export_armed()) << "first disarm must not finalize";
  shm::disarm();
  EXPECT_FALSE(shm::export_armed());
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, RuntimeArmsFromConfigAndMirrorsForkJoin) {
  const std::string prefix = unique_prefix("runtime");
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.max_threads = 4;
  cfg.shm_export = true;
  cfg.shm_prefix = prefix;
  cfg.shm_ring_capacity = 256;
  cfg.shm_heartbeat_ms = 10;
  {
    Runtime rt(cfg);
    EXPECT_TRUE(shm::export_armed());
    rt.fork(&noop_region, nullptr, 2);
    rt.fork(&noop_region, nullptr, 2);

    const auto segs = shm::discover_segments(prefix);
    ASSERT_EQ(segs.size(), 1u);
    auto reader = shm::SegmentReader::attach(segs[0].name);
    ASSERT_NE(reader, nullptr);
    // Ring 0 is the master slot: both regions' FORK and JOIN live there.
    int forks = 0, joins = 0;
    shm::Record rec;
    while (reader->poll_event(0, &rec) == shm::Poll::kRecord) {
      if (rec.event == OMP_EVENT_FORK) ++forks;
      if (rec.event == OMP_EVENT_JOIN) ++joins;
    }
    EXPECT_EQ(forks, 2);
    EXPECT_EQ(joins, 2);
  }
  // Runtime destruction disarms and unlinks.
  EXPECT_FALSE(shm::export_armed());
  EXPECT_TRUE(shm::discover_segments(prefix).empty());
}

TEST(ShmExport, DisarmedByDefault) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  ASSERT_FALSE(cfg.shm_export);
  Runtime rt(cfg);
  EXPECT_FALSE(shm::export_armed());
}

TEST(ShmExport, StaleSegmentsReaped) {
  const std::string prefix = unique_prefix("stale");
  // A leftover from a "crashed" run: owner pid far above pid_max.
  const std::string stale = prefix + ".999999999.0";
  const std::string live =
      prefix + "." + std::to_string(::getpid()) + ".0";
  for (const std::string& name : {stale, live}) {
    const int fd = ::shm_open(("/" + name).c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 4096), 0);
    ::close(fd);
  }
  ASSERT_EQ(shm::discover_segments(prefix).size(), 2u);

  EXPECT_EQ(shm::cleanup_stale_segments(prefix), 1u);
  const auto left = shm::discover_segments(prefix);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].name, live) << "live-owner segment must survive";
  ::shm_unlink(("/" + live).c_str());
}

}  // namespace
