/// Protocol-conformance suite: seeded random request interleavings fired at
/// the real `omp_collector_api` and diffed against the white-paper reference
/// model, plus unit coverage for the fault-injection seams the conformance
/// driver (and the async lifecycle tests) rely on.
///
/// Reproducing a failure: every EXPECT below prints the driver's divergence
/// report, which includes the seed and a minimized transcript. Re-run the
/// binary with ORCA_TEST_SEED=<seed> to replay deterministically.
#include <gtest/gtest.h>

#include <cstdlib>

#include "collector/message.hpp"
#include "perf/samples.hpp"
#include "runtime/runtime.hpp"
#include "testing/conformance.hpp"
#include "testing/fault_injection.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::EventBackpressure;
using orca::testing::ConformanceOptions;
using orca::testing::ConformanceReport;
using orca::testing::conformance_seed;
using orca::testing::FaultInjector;
using orca::testing::FaultPoint;
using orca::testing::run_conformance;

// The acceptance bar: across the suite the differ must run at least 10k
// randomized sequences spanning sync and async delivery. Keep the budget
// arithmetic in one place so it cannot silently drift below the bar.
constexpr int kSyncSequences = 5000;
constexpr int kAsyncSequences = 4000;
constexpr int kPerPolicySequences = 400;  // x3 backpressure policies
static_assert(kSyncSequences + kAsyncSequences + 3 * kPerPolicySequences >=
                  10000,
              "conformance suite must cover >= 10k randomized sequences");

ConformanceOptions base_options() {
  ConformanceOptions opt;
  opt.seed = conformance_seed(opt.seed);
  return opt;
}

TEST(Conformance, SyncSingleThreadedExactDiff) {
  ConformanceOptions opt = base_options();
  opt.sequences = kSyncSequences;
  const ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.sequences_run, static_cast<std::uint64_t>(kSyncSequences));
  EXPECT_GT(report.requests_checked, 10000u);
}

TEST(Conformance, AsyncSingleThreadedExactDiff) {
  ConformanceOptions opt = base_options();
  opt.sequences = kAsyncSequences;
  opt.async_delivery = true;
  const ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.sequences_run, static_cast<std::uint64_t>(kAsyncSequences));
  EXPECT_GT(report.requests_checked, 10000u);
}

TEST(Conformance, AsyncEveryBackpressurePolicy) {
  // A tiny ring forces the policies to actually engage while the protocol
  // replies stay policy-independent.
  constexpr EventBackpressure kPolicies[] = {EventBackpressure::kBlock,
                                             EventBackpressure::kDropNewest,
                                             EventBackpressure::kOverwriteOldest};
  for (const EventBackpressure policy : kPolicies) {
    ConformanceOptions opt = base_options();
    opt.sequences = kPerPolicySequences;
    opt.async_delivery = true;
    opt.backpressure = policy;
    opt.ring_capacity = 8;
    const ConformanceReport report = run_conformance(opt);
    EXPECT_TRUE(report.ok) << "policy=" << static_cast<int>(policy) << "\n"
                           << report.failure;
    EXPECT_EQ(report.sequences_run,
              static_cast<std::uint64_t>(kPerPolicySequences));
  }
}

TEST(Conformance, MultiThreadedSyncPlausibilityAndReconciliation) {
  ConformanceOptions opt = base_options();
  opt.threads = 4;
  opt.sequences = 50;  // rounds; each round = 4 concurrent streams
  const ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  // 50 rounds * 4 threads * 60 steps, of which ~1/6 are event firings.
  EXPECT_GT(report.requests_checked, 9000u);
}

TEST(Conformance, MultiThreadedAsyncPlausibilityAndReconciliation) {
  ConformanceOptions opt = base_options();
  opt.threads = 4;
  opt.sequences = 50;
  opt.async_delivery = true;
  opt.ring_capacity = 16;
  const ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.requests_checked, 9000u);
}

TEST(Conformance, SameSeedReplaysIdentically) {
  ConformanceOptions opt;  // fixed seed on purpose: no env override here
  opt.seed = 0xD5EEDULL;
  opt.sequences = 200;
  const ConformanceReport a = run_conformance(opt);
  const ConformanceReport b = run_conformance(opt);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  // Deterministic replay: the same seed must drive the exact same request
  // stream, hence the exact same number of checked replies.
  EXPECT_EQ(a.requests_checked, b.requests_checked);
  EXPECT_EQ(a.sequences_run, b.sequences_run);
}

TEST(Conformance, SeedOverrideComesFromEnvironment) {
  ASSERT_EQ(setenv("ORCA_TEST_SEED", "12345", 1), 0);
  EXPECT_EQ(conformance_seed(7), 12345u);
  ASSERT_EQ(setenv("ORCA_TEST_SEED", "0xBEEF", 1), 0);
  EXPECT_EQ(conformance_seed(7), 0xBEEFu);
  ASSERT_EQ(unsetenv("ORCA_TEST_SEED"), 0);
  EXPECT_EQ(conformance_seed(7), 7u);
}

// ---------------------------------------------------------------------------
// Fault-injection harness.
// ---------------------------------------------------------------------------

/// Every test leaves the global injector disarmed and clean, even on
/// assertion failure.
struct ScopedFaultInjection {
  ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  FaultInjector& operator*() const { return FaultInjector::instance(); }
  FaultInjector* operator->() const { return &FaultInjector::instance(); }
};

TEST(FaultInjection, DisarmedSeamsObserveNothing) {
  ScopedFaultInjection fi;
  ASSERT_FALSE(FaultInjector::armed());

  // Drive product code through several seams while disarmed: no hit is
  // recorded anywhere, and behavior is the production behavior.
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 2;
  orca::rt::Runtime rt(cfg);
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_state_query();
  msg.add(OMP_REQ_STOP);
  EXPECT_EQ(rt.collector_api(msg.buffer()), 0);
  for (int p = 0; p < orca::testing::kFaultPointCount; ++p) {
    EXPECT_EQ(fi->hits(static_cast<FaultPoint>(p)), 0u)
        << orca::testing::fault_point_name(static_cast<FaultPoint>(p));
  }
}

TEST(FaultInjection, ArmedHooksFireAtTheApiBoundary) {
  ScopedFaultInjection fi;
  int entered = 0;
  fi->set_hook(FaultPoint::kApiEnter, [&entered] { ++entered; });
  fi->arm();

  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 2;
  orca::rt::Runtime rt(cfg);
  // A STATE-only buffer is answered on the async-signal-safe fast path:
  // it crosses the signal seam at collector_api() entry but never reaches
  // the full dispatcher or the per-thread queues.
  MessageBuilder msg;
  msg.add_state_query();
  EXPECT_EQ(rt.collector_api(msg.buffer()), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(entered, 0);
  EXPECT_EQ(fi->hits(FaultPoint::kSignalDuringQuery), 1u);
  EXPECT_EQ(fi->hits(FaultPoint::kQueueDrain), 0u);

  // Mixing in a lifecycle record forces the full dispatcher, which enters
  // process_messages and drains the queued STATE query.
  MessageBuilder slow;
  slow.add(OMP_REQ_START);
  slow.add_state_query();
  slow.add(OMP_REQ_STOP);
  EXPECT_EQ(rt.collector_api(slow.buffer()), 0);
  EXPECT_EQ(entered, 1);
  EXPECT_EQ(fi->hits(FaultPoint::kApiEnter), 1u);
  EXPECT_GE(fi->hits(FaultPoint::kQueueDrain), 1u);
}

TEST(FaultInjection, InjectedAllocFailureMakesBuilderReturnNpos) {
  ScopedFaultInjection fi;
  fi->fail_allocs(FaultPoint::kMessageAppend, 1);
  fi->arm();

  MessageBuilder msg;
  EXPECT_EQ(msg.add(OMP_REQ_STATE, 16), MessageBuilder::npos);
  EXPECT_EQ(msg.count(), 0u);  // builder untouched by the failed append
  // Budget spent: the next append succeeds and the buffer stays coherent.
  EXPECT_EQ(msg.add(OMP_REQ_STATE, 16), 0u);
  EXPECT_EQ(msg.count(), 1u);
  EXPECT_NE(msg.buffer(), nullptr);
  EXPECT_EQ(fi->hits(FaultPoint::kMessageAppend), 1u);
}

TEST(FaultInjection, InjectedAllocFailureDropsSampleNotProcess) {
  ScopedFaultInjection fi;
  orca::perf::SampleBuffer buf;
  buf.reserve(16);
  fi->fail_allocs(FaultPoint::kSampleRecord, 2);
  fi->arm();

  orca::perf::EventSample s;
  for (int i = 0; i < 5; ++i) buf.record(s);
  // The two injected failures behave exactly like hitting the hard cap.
  EXPECT_EQ(buf.dropped(), 2u);
  EXPECT_EQ(buf.samples().size(), 3u);
}

TEST(FaultInjection, SchedulePerturbationKeepsProtocolIntact) {
  ScopedFaultInjection fi;
  fi->perturb(/*seed=*/0xFEEDULL, /*one_in=*/2);
  fi->arm();

  // With every seam yielding half the time, a conformance slice must still
  // diff clean: perturbation shakes schedules, never semantics.
  ConformanceOptions opt;
  opt.seed = 0xFEEDULL;
  opt.sequences = 100;
  opt.async_delivery = true;
  const ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_GT(fi->hits(FaultPoint::kApiEnter), 0u);
  EXPECT_GT(fi->hits(FaultPoint::kEventFire), 0u);
}

}  // namespace
