/// Unit tests for the common substrate: locks, parking, stats, RNGs,
/// string utilities, env parsing, cache padding.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/parking.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/stats.hpp"
#include "common/strutil.hpp"

namespace {

using namespace orca;

// --- locks -------------------------------------------------------------------

template <typename Lock>
void exercise_mutual_exclusion(int threads, int iterations) {
  Lock lock;
  long counter = 0;  // intentionally non-atomic: the lock must protect it
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iterations; ++i) {
        std::scoped_lock lk(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(threads) * iterations);
}

TEST(SpinLockTest, MutualExclusion) {
  exercise_mutual_exclusion<SpinLock>(4, 5000);
}

TEST(TicketLockTest, MutualExclusion) {
  exercise_mutual_exclusion<TicketLock>(4, 5000);
}

TEST(SpinLockTest, TryLockSemantics) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());  // held
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLockTest, TryLockFailsWhenHeld) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLockTest, IsFifoFair) {
  // Serialized handoff check: with the lock held, queued lockers acquire
  // in ticket order.
  TicketLock lock;
  lock.lock();
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<int> started{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      // Stagger the queueing so ticket order is deterministic.
      while (started.load() != t) std::this_thread::yield();
      started.store(t + 1);
      lock.lock();
      {
        std::scoped_lock lk(order_mu);
        order.push_back(t);
      }
      lock.unlock();
    });
  }
  while (started.load() != 3) std::this_thread::yield();
  // Give all three a moment to enqueue their tickets.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();
  for (auto& w : workers) w.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- parking -------------------------------------------------------------------

TEST(ParkerTest, SignalBeforeWaitIsNotLost) {
  Parker parker;
  parker.signal();  // producer runs first
  parker.wait(0);   // must return immediately
  SUCCEED();
}

TEST(ParkerTest, WakesBlockedWaiter) {
  Parker parker;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    parker.wait(0);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke.load());
  parker.signal();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(ParkerTest, EpochAdvancesPerSignal) {
  Parker parker;
  EXPECT_EQ(parker.epoch(), 0u);
  parker.signal();
  parker.signal();
  EXPECT_EQ(parker.epoch(), 2u);
}

TEST(CountdownEventTest, WaitsForAllArrivals) {
  CountdownEvent event;
  event.reset(3);
  std::atomic<int> arrived{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      arrived.fetch_add(1);
      event.arrive();
    });
  }
  event.wait();
  EXPECT_EQ(arrived.load(), 3);
  for (auto& w : workers) w.join();
}

// --- stats --------------------------------------------------------------------

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(SampleSetTest, PercentilesAndTrimming) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  EXPECT_NEAR(set.median(), 50.5, 1e-9);
  EXPECT_NEAR(set.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(set.percentile(1.0), 100.0, 1e-9);

  // One extreme outlier gets trimmed by the mean±3σ rule.
  SampleSet with_outlier;
  for (int i = 0; i < 50; ++i) with_outlier.add(10.0 + 0.01 * i);
  with_outlier.add(1e9);
  const RunningStats trimmed = with_outlier.trimmed_stats();
  EXPECT_EQ(trimmed.count(), 50u);
  EXPECT_LT(trimmed.max(), 11.0);
}

// --- RNGs ----------------------------------------------------------------------

TEST(SplitMix64Test, StatefulMatchesStateless) {
  SplitMix64 rng(12345);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next(), SplitMix64::at(12345, i)) << i;
  }
}

TEST(SplitMix64Test, DoublesInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(NpbRandlcTest, JumpMatchesSequentialStepping) {
  NpbRandlc sequential;
  for (int i = 0; i < 1000; ++i) sequential.next();

  NpbRandlc jumper;
  jumper.jump(1000);
  EXPECT_EQ(jumper.state(), sequential.state());
  EXPECT_DOUBLE_EQ(jumper.next(), sequential.next());
}

TEST(NpbRandlcTest, ValuesInOpenUnitInterval) {
  NpbRandlc rng;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// --- strings / env ----------------------------------------------------------------

TEST(StrfmtTest, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
  // Long output beyond any small-buffer assumption.
  const std::string long_str(500, 'a');
  EXPECT_EQ(strfmt("%s", long_str.c_str()).size(), 500u);
}

TEST(TextTableTest, AlignsColumnsAndPadsRaggedRows) {
  TextTable table({"a", "long-header"});
  table.add_row({"x"});
  table.add_row({"wide-cell", "y"});
  const std::string out = table.render();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
  // Every rendered line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    if (width == 0) width = end - start;
    EXPECT_EQ(end - start, width);
    start = end + 1;
  }
}

TEST(EnvTest, ParsesIntsBoolsAndLists) {
  ::setenv("ORCA_TEST_INT", "42", 1);
  ::setenv("ORCA_TEST_BAD", "xyz", 1);
  ::setenv("ORCA_TEST_BOOL", "TRUE", 1);
  ::setenv("ORCA_TEST_OFF", "off", 1);
  EXPECT_EQ(env::get_int("ORCA_TEST_INT", 7), 42);
  EXPECT_EQ(env::get_int("ORCA_TEST_BAD", 7), 7);
  EXPECT_EQ(env::get_int("ORCA_TEST_MISSING", 7), 7);
  EXPECT_TRUE(env::get_bool("ORCA_TEST_BOOL", false));
  EXPECT_FALSE(env::get_bool("ORCA_TEST_OFF", true));
  EXPECT_TRUE(env::get_bool("ORCA_TEST_MISSING", true));

  const auto parts = env::split(" dynamic , 4 ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "dynamic");
  EXPECT_EQ(parts[1], "4");
  EXPECT_EQ(env::split("", ',').size(), 1u);
}

// --- cache padding ------------------------------------------------------------------

TEST(CachePaddedTest, EachElementOwnsItsLine) {
  CachePadded<int> padded[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&padded[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&padded[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(ClockTest, StopwatchAndMonotonicity) {
  const std::uint64_t t0 = SteadyClock::now();
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.elapsed(), 0.004);
  EXPECT_GT(SteadyClock::now(), t0);
  const std::uint64_t c0 = TscClock::now();
  const std::uint64_t c1 = TscClock::now();
  EXPECT_GE(c1, c0);
}

}  // namespace
