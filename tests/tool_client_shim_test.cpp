/// The v1 `CollectorClient` is deprecated (tool/client.hpp) but must keep
/// working until out-of-tree collectors finish migrating: this is the one
/// test that exercises the compat shim end to end — discovery, lifecycle,
/// typed queries in and out of a region, and delegation to the v2 client.
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

// The whole point of this file is to use the deprecated surface.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "tool/client.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::CollectorClient;

TEST(ClientShim, DiscoveryAndLifecycleStillWork) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto client = CollectorClient::discover();
  ASSERT_TRUE(client.has_value());

  EXPECT_EQ(client->start(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->start(), OMP_ERRCODE_SEQUENCE_ERR);
  EXPECT_EQ(client->pause(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->resume(), OMP_ERRCODE_OK);
  EXPECT_EQ(client->stop(), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(ClientShim, TypedQueriesKeepV1ReplyShapes) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  auto client = CollectorClient::discover();
  ASSERT_TRUE(client.has_value());
  ASSERT_EQ(client->start(), OMP_ERRCODE_OK);

  // v1 contract outside a region: id 0 rides next to SEQUENCE_ERR instead
  // of surfacing as a failure.
  const auto outside = client->current_region_id();
  EXPECT_EQ(outside.id, 0u);
  EXPECT_EQ(outside.errcode, OMP_ERRCODE_SEQUENCE_ERR);

  const auto state = client->query_state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->state, THR_SERIAL_STATE);

  unsigned long inside_id = 0;
  OMP_COLLECTORAPI_EC inside_ec = OMP_ERRCODE_ERROR;
  orca::omp::parallel(
      [&](int tid) {
        if (tid == 0) {
          auto in_region = CollectorClient(&__omp_collector_api);
          const auto id = in_region.current_region_id();
          inside_id = id.id;
          inside_ec = id.errcode;
        }
      },
      2);
  EXPECT_EQ(inside_ec, OMP_ERRCODE_OK);
  EXPECT_GT(inside_id, 0u);

  // The shim hands out its v2 delegate; both speak to the same runtime.
  EXPECT_EQ(client->typed().stop(), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

}  // namespace
