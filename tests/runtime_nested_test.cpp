/// Nested-parallelism tests for the "future releases" behaviour the paper
/// sketches (Sec. IV-C1 / IV-E): with nesting enabled, nested regions get
/// real teams, their own fork/join events, and parent-region-id tracking;
/// with nesting disabled (the OpenUH default) they serialize silently.
/// Also covers `sections` and the extended user API.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "collector/message.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

std::atomic<int> g_forks{0};
void fork_counter(OMP_COLLECTORAPI_EVENT e) {
  if (e == OMP_EVENT_FORK) g_forks.fetch_add(1);
}

TEST(Nested, SerializedModeFiresNoNestedForkEvents) {
  // Paper IV-C1: "Our compiler currently serializes nested parallel
  // regions and because of this, we do not trigger a fork event for
  // nested parallel regions."
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_register(OMP_EVENT_FORK, &fork_counter);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  g_forks = 0;

  orca::omp::parallel([&](int) {
    orca::omp::parallel([](int) {});  // serialized: no fork event
  }, 2);
  rt.quiesce();
  EXPECT_EQ(g_forks.load(), 1);  // only the outer region forked
  MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  rt.collector_api(stop.buffer());
  Runtime::make_current(nullptr);
}

TEST(Nested, NestedModeFiresForkPerNestedRegion) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.nested = true;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_register(OMP_EVENT_FORK, &fork_counter);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  g_forks = 0;

  orca::omp::parallel([&](int) {
    orca::omp::parallel([](int) {});
  }, 2);
  rt.quiesce();
  // Outer fork + one nested fork per outer thread.
  EXPECT_EQ(g_forks.load(), 3);
  MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  rt.collector_api(stop.buffer());
  Runtime::make_current(nullptr);
}

TEST(Nested, ParentRegionIdTracksEnclosingRegion) {
  // Paper IV-E: "In the case of a nested parallel region, it will return
  // the current parallel region ID of the parent team."
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.nested = true;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<unsigned long> outer_id{0};
  std::atomic<unsigned long> inner_parent{999};
  std::atomic<unsigned long> inner_id{0};

  orca::omp::parallel([&](int) {
    if (omp_get_thread_num() != 0) return;
    MessageBuilder outer_q;
    outer_q.add_id_query(OMP_REQ_CURRENT_PRID);
    rt.collector_api(outer_q.buffer());
    unsigned long oid = 0;
    outer_q.reply_value(0, &oid);
    outer_id.store(oid);

    orca::omp::parallel([&](int) {
      if (omp_get_thread_num() != 0) return;
      MessageBuilder inner_q;
      inner_q.add_id_query(OMP_REQ_CURRENT_PRID);
      inner_q.add_id_query(OMP_REQ_PARENT_PRID);
      rt.collector_api(inner_q.buffer());
      unsigned long iid = 0;
      unsigned long pid = 0;
      inner_q.reply_value(0, &iid);
      inner_q.reply_value(1, &pid);
      inner_id.store(iid);
      inner_parent.store(pid);
    }, 2);
  }, 2);

  EXPECT_NE(inner_id.load(), outer_id.load());
  EXPECT_EQ(inner_parent.load(), outer_id.load());
  Runtime::make_current(nullptr);
}

TEST(Nested, SerializedInnerKeepsOuterRegionId) {
  // Serialized nesting (the OpenUH default) does not track nested ids:
  // queries inside the serialized inner region still report the outer
  // region (paper IV-E: "we don't keep track of these IDs because our
  // compiler currently serializes them").
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::atomic<unsigned long> outer_id{0};
  std::atomic<unsigned long> inner_seen{0};
  orca::omp::parallel([&](int) {
    if (omp_get_thread_num() != 0) return;
    MessageBuilder q;
    q.add_id_query(OMP_REQ_CURRENT_PRID);
    rt.collector_api(q.buffer());
    unsigned long id = 0;
    q.reply_value(0, &id);
    outer_id.store(id);

    orca::omp::parallel([&](int) {
      MessageBuilder iq;
      iq.add_id_query(OMP_REQ_CURRENT_PRID);
      rt.collector_api(iq.buffer());
      unsigned long iid = 0;
      iq.reply_value(0, &iid);
      inner_seen.store(iid);
    });
  }, 2);
  EXPECT_EQ(inner_seen.load(), outer_id.load());
  Runtime::make_current(nullptr);
}

TEST(Sections, EachBlockRunsExactlyOnce) {
  RuntimeConfig cfg;
  cfg.num_threads = 3;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::vector<std::atomic<int>> hits(5);
  orca::omp::parallel([&](int) {
    orca::omp::sections({
        [&] { hits[0].fetch_add(1); },
        [&] { hits[1].fetch_add(1); },
        [&] { hits[2].fetch_add(1); },
        [&] { hits[3].fetch_add(1); },
        [&] { hits[4].fetch_add(1); },
    });
  }, 3);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), 1) << "section " << s;
  }
  Runtime::make_current(nullptr);
}

TEST(Sections, MoreSectionsThanThreadsAndViceVersa) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  std::atomic<int> count{0};
  orca::omp::parallel([&](int) {
    orca::omp::sections({[&] { count.fetch_add(1); }});  // 1 section, 4 thr
  }, 4);
  EXPECT_EQ(count.load(), 1);
  orca::omp::parallel([&](int) {
    std::vector<std::function<void()>> blocks;
    for (int s = 0; s < 10; ++s) {
      blocks.push_back([&] { count.fetch_add(1); });
    }
    orca::omp::sections(blocks);  // 10 sections, 2 threads
  }, 2);
  EXPECT_EQ(count.load(), 11);
  Runtime::make_current(nullptr);
}

TEST(UserApi, NestedAndTimingExtensions) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  EXPECT_EQ(omp_get_nested(), 0);
  omp_set_nested(1);
  EXPECT_EQ(omp_get_nested(), 1);
  omp_set_nested(0);
  EXPECT_GT(omp_get_wtick(), 0.0);
  EXPECT_LT(omp_get_wtick(), 1.0);
  EXPECT_EQ(omp_get_dynamic(), 0);
  omp_set_dynamic(1);           // accepted, ignored
  EXPECT_EQ(omp_get_dynamic(), 0);
  Runtime::make_current(nullptr);
}

TEST(Guided, ChunksShrinkMonotonically) {
  // Property of the guided schedule: successive grabs never grow (until
  // the floor), and they cover the range exactly.
  RuntimeConfig cfg;
  cfg.num_threads = 1;  // single thread: the grab sequence is deterministic
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  std::vector<long long> chunk_sizes;
  orca::omp::parallel([&](int) {
    const int gtid = __ompc_get_global_thread_num();
    __ompc_scheduler_init_8(gtid, ORCA_SCHED_GUIDED, 0, 9999, 1, 1);
    long long lo = 0;
    long long hi = 0;
    while (__ompc_schedule_next_8(gtid, &lo, &hi) != 0) {
      chunk_sizes.push_back(hi - lo + 1);
    }
  }, 1);

  ASSERT_GT(chunk_sizes.size(), 3u);
  long long covered = 0;
  for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
    covered += chunk_sizes[i];
    if (i > 0) EXPECT_LE(chunk_sizes[i], chunk_sizes[i - 1]) << i;
  }
  EXPECT_EQ(covered, 10000);
  EXPECT_GT(chunk_sizes.front(), chunk_sizes.back());
  Runtime::make_current(nullptr);
}

}  // namespace
