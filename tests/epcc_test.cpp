/// EPCC harness tests: the directive inventory, the measurement
/// methodology (reference vs. construct timing), and sanity bounds on the
/// produced overheads.
#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hpp"
#include "epcc/syncbench.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::epcc::Directive;
using orca::epcc::Options;
using orca::epcc::Result;
using orca::epcc::SyncBench;

TEST(EpccInventory, AllElevenDirectivesWithNames) {
  const auto& directives = orca::epcc::all_directives();
  EXPECT_EQ(directives.size(), 11u);
  for (const Directive d : directives) {
    EXPECT_STRNE(orca::epcc::name(d), "?");
  }
  EXPECT_STREQ(orca::epcc::name(Directive::kParallel), "PARALLEL");
  EXPECT_STREQ(orca::epcc::name(Directive::kLock), "LOCK/UNLOCK");
  EXPECT_STREQ(orca::epcc::name(Directive::kReduction), "REDUCTION");
}

TEST(EpccDelay, ScalesWithLength) {
  // The payload must actually burn time proportional to its length, or
  // every overhead measurement is meaningless.
  orca::Stopwatch sw;
  for (int i = 0; i < 2000; ++i) SyncBench::delay(10);
  const double short_time = sw.elapsed();
  sw.reset();
  for (int i = 0; i < 2000; ++i) SyncBench::delay(1000);
  const double long_time = sw.elapsed();
  EXPECT_GT(long_time, short_time * 5);
}

class EpccDirective : public ::testing::TestWithParam<Directive> {};

TEST_P(EpccDirective, ProducesFiniteMeasurement) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 2;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  Options opts;
  opts.num_threads = 2;
  opts.outer_reps = 3;
  opts.inner_reps = 8;
  opts.delay_length = 50;
  SyncBench bench(opts);
  const Result result = bench.measure(GetParam());

  EXPECT_EQ(result.directive, GetParam());
  EXPECT_TRUE(std::isfinite(result.overhead_us));
  EXPECT_TRUE(std::isfinite(result.stddev_us));
  EXPECT_GT(result.reference_us, 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  // Synchronization constructs cannot be *faster* than a wide margin below
  // the bare payload (allows timer noise but catches sign errors).
  EXPECT_GT(result.overhead_us, -10.0 * result.reference_us - 100.0);
  orca::rt::Runtime::make_current(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllDirectives, EpccDirective,
    ::testing::ValuesIn(orca::epcc::all_directives()),
    [](const ::testing::TestParamInfo<Directive>& param_info) {
      std::string name = orca::epcc::name(param_info.param);
      for (char& c : name) {
        if (c == '/' || c == ' ') c = '_';
      }
      return name;
    });

TEST(EpccHarness, MeasureAllCoversEveryDirective) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 2;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  Options opts;
  opts.num_threads = 2;
  opts.outer_reps = 2;
  opts.inner_reps = 4;
  opts.delay_length = 20;
  SyncBench bench(opts);
  const auto results = bench.measure_all();
  EXPECT_EQ(results.size(), orca::epcc::all_directives().size());
  orca::rt::Runtime::make_current(nullptr);
}

TEST(EpccHarness, ParallelOverheadExceedsBarrierFreeMaster) {
  // Coarse ordering property: forking a team per iteration costs more
  // than a master construct executed inside one long-lived team.
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = 4;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  Options opts;
  opts.num_threads = 4;
  opts.outer_reps = 5;
  opts.inner_reps = 32;
  opts.delay_length = 100;
  SyncBench bench(opts);
  const Result parallel = bench.measure(Directive::kParallel);
  const Result master = bench.measure(Directive::kMaster);
  EXPECT_GT(parallel.overhead_us, master.overhead_us);
  orca::rt::Runtime::make_current(nullptr);
}

}  // namespace
