/// Table I parity tests: every NPB analog reproduces the paper's distinct
/// region count and (at scale=1.0) its exact region invocation count.
#include <gtest/gtest.h>

#include <cmath>

#include "npb/kernels.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::npb::BenchResult;
using orca::npb::NpbOptions;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

BenchResult run_fresh(const std::string& name, const NpbOptions& opts) {
  RuntimeConfig cfg;
  cfg.num_threads = opts.num_threads;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  BenchResult result = orca::npb::run_by_name(name, opts);
  Runtime::make_current(nullptr);
  return result;
}

class Table1Parity : public ::testing::TestWithParam<orca::npb::TableITarget> {};

TEST_P(Table1Parity, FullScaleMatchesPaperCounts) {
  const auto& target = GetParam();
  NpbOptions opts;
  opts.num_threads = 2;
  opts.scale = 1.0;
  const BenchResult result = run_fresh(target.name, opts);

  EXPECT_EQ(result.name, target.name);
  EXPECT_EQ(result.region_calls, target.calls)
      << target.name << " region calls";
  EXPECT_EQ(result.distinct_regions, target.regions)
      << target.name << " distinct regions";
  EXPECT_TRUE(std::isfinite(result.checksum));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Parity,
    ::testing::ValuesIn([] {
      // LU-HP runs at full scale in its own test below (300k regions).
      std::vector<orca::npb::TableITarget> rows;
      for (const auto& row : orca::npb::table1_targets()) {
        if (std::string(row.name) != "LU-HP") rows.push_back(row);
      }
      return rows;
    }()),
    [](const ::testing::TestParamInfo<orca::npb::TableITarget>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Table1ParityLuHp, FullScaleMatchesPaperCounts) {
  NpbOptions opts;
  opts.num_threads = 1;  // counts are thread-independent; 1 thread is fast
  opts.scale = 1.0;
  const BenchResult result = run_fresh("LU-HP", opts);
  EXPECT_EQ(result.region_calls, 298959u);
  EXPECT_EQ(result.distinct_regions, 16u);
}

TEST(NpbScaling, ScaleReducesRegionCalls) {
  NpbOptions full;
  full.num_threads = 1;
  full.scale = 1.0;
  NpbOptions tenth;
  tenth.num_threads = 1;
  tenth.scale = 0.1;

  const BenchResult big = run_fresh("SP", full);
  const BenchResult small = run_fresh("SP", tenth);
  EXPECT_EQ(big.region_calls, 3618u);
  // Scaled runs land near scale*target (structured schedule + top-up).
  EXPECT_NEAR(static_cast<double>(small.region_calls), 361.8, 20.0);
  // Distinct region inventory is scale-independent.
  EXPECT_EQ(small.distinct_regions, big.distinct_regions);
}

TEST(NpbDeterminism, ChecksumsStableAcrossThreadCounts) {
  // The kernels' numerics must not depend on the team size (reductions are
  // associative-tolerant: allow tiny float reordering differences).
  for (const char* name : {"BT", "MG", "LU"}) {
    NpbOptions a;
    a.num_threads = 1;
    a.scale = 0.2;
    NpbOptions b;
    b.num_threads = 4;
    b.scale = 0.2;
    const BenchResult ra = run_fresh(name, a);
    const BenchResult rb = run_fresh(name, b);
    EXPECT_NEAR(ra.checksum, rb.checksum,
                1e-6 * (1.0 + std::abs(ra.checksum)))
        << name;
  }
}

}  // namespace
