/// ICV/configuration tests: OMP_SCHEDULE parsing, environment intake, and
/// clamping rules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "collector/message.hpp"
#include "runtime/config.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using orca::rt::BarrierKind;
using orca::rt::RuntimeConfig;
using orca::rt::Schedule;
using orca::rt::ScheduleSpec;

TEST(ScheduleParse, KindsAndChunks) {
  ScheduleSpec spec = RuntimeConfig::parse_schedule("dynamic,4");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 4);

  spec = RuntimeConfig::parse_schedule("guided");
  EXPECT_EQ(spec.kind, Schedule::kGuided);
  EXPECT_EQ(spec.chunk, 0);

  spec = RuntimeConfig::parse_schedule("static");
  EXPECT_EQ(spec.kind, Schedule::kStaticEven);

  spec = RuntimeConfig::parse_schedule("static,16");
  EXPECT_EQ(spec.kind, Schedule::kStaticChunked);
  EXPECT_EQ(spec.chunk, 16);

  spec = RuntimeConfig::parse_schedule("DYNAMIC , 8");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 8);
}

TEST(ScheduleParse, GarbageFallsBackToStatic) {
  EXPECT_EQ(RuntimeConfig::parse_schedule("").kind, Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("bogus,4").kind,
            Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,notanumber").chunk, 0);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,-5").chunk, 0);
}

TEST(ConfigFromEnv, ReadsIcvs) {
  ::setenv("OMP_NUM_THREADS", "6", 1);
  ::setenv("OMP_NESTED", "true", 1);
  ::setenv("OMP_SCHEDULE", "guided,2", 1);
  ::setenv("ORCA_ATOMIC_EVENTS", "1", 1);
  ::setenv("ORCA_PER_THREAD_QUEUES", "0", 1);

  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.num_threads, 6);
  EXPECT_TRUE(cfg.nested);
  EXPECT_TRUE(cfg.atomic_events);
  EXPECT_FALSE(cfg.per_thread_queues);
  EXPECT_EQ(cfg.runtime_schedule.kind, Schedule::kGuided);
  EXPECT_EQ(cfg.runtime_schedule.chunk, 2);

  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_NESTED");
  ::unsetenv("OMP_SCHEDULE");
  ::unsetenv("ORCA_ATOMIC_EVENTS");
  ::unsetenv("ORCA_PER_THREAD_QUEUES");
}

TEST(ConfigFromEnv, ClampsInsaneValues) {
  ::setenv("OMP_NUM_THREADS", "-3", 1);
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_GE(cfg.num_threads, 1);
  ::unsetenv("OMP_NUM_THREADS");

  ::setenv("OMP_NUM_THREADS", "100", 1);
  ::setenv("OMP_THREAD_LIMIT", "8", 1);
  const RuntimeConfig capped = RuntimeConfig::from_env();
  EXPECT_GE(capped.max_threads, capped.num_threads);
  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_THREAD_LIMIT");
}

TEST(TelemetryMode, ParsesEveryKeyword) {
  bool timeline = true;
  bool metrics = true;
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("off", &timeline, &metrics));
  EXPECT_FALSE(timeline);
  EXPECT_FALSE(metrics);
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("none", &timeline, &metrics));
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("0", &timeline, &metrics));

  EXPECT_TRUE(
      RuntimeConfig::parse_telemetry_mode("metrics", &timeline, &metrics));
  EXPECT_FALSE(timeline);
  EXPECT_TRUE(metrics);

  EXPECT_TRUE(
      RuntimeConfig::parse_telemetry_mode("timeline", &timeline, &metrics));
  EXPECT_TRUE(timeline);
  EXPECT_FALSE(metrics);

  for (const char* full : {"full", "on", "1"}) {
    timeline = metrics = false;
    EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode(full, &timeline, &metrics))
        << full;
    EXPECT_TRUE(timeline) << full;
    EXPECT_TRUE(metrics) << full;
  }
}

TEST(TelemetryMode, RejectsGarbageLeavingFlagsUntouched) {
  bool timeline = true;
  bool metrics = false;
  EXPECT_FALSE(
      RuntimeConfig::parse_telemetry_mode("bogus", &timeline, &metrics));
  EXPECT_TRUE(timeline);   // untouched on failure
  EXPECT_FALSE(metrics);
  EXPECT_FALSE(RuntimeConfig::parse_telemetry_mode("", &timeline, &metrics));
  EXPECT_FALSE(
      RuntimeConfig::parse_telemetry_mode("FULL ", &timeline, &metrics));
}

TEST(ConfigFromEnv, ReadsTelemetryKnobs) {
  ::setenv("ORCA_TELEMETRY", "full", 1);
  ::setenv("ORCA_TELEMETRY_RING", "8192", 1);
  ::setenv("ORCA_TELEMETRY_REPORT", "stderr", 1);
  ::setenv("ORCA_TELEMETRY_TRACE", "/tmp/trace.json", 1);

  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_TRUE(cfg.telemetry_timeline);
  EXPECT_TRUE(cfg.telemetry_metrics);
  EXPECT_EQ(cfg.telemetry_ring_capacity, 8192u);
  EXPECT_EQ(cfg.telemetry_report, "stderr");
  EXPECT_EQ(cfg.telemetry_trace, "/tmp/trace.json");

  ::setenv("ORCA_TELEMETRY", "metrics", 1);
  const RuntimeConfig metrics_only = RuntimeConfig::from_env();
  EXPECT_FALSE(metrics_only.telemetry_timeline);
  EXPECT_TRUE(metrics_only.telemetry_metrics);

  ::unsetenv("ORCA_TELEMETRY");
  ::unsetenv("ORCA_TELEMETRY_RING");
  ::unsetenv("ORCA_TELEMETRY_REPORT");
  ::unsetenv("ORCA_TELEMETRY_TRACE");
}

TEST(ConfigFromEnv, WarnsAndDefaultsOnBadTelemetryValues) {
  // Invalid mode: telemetry stays off (the default), run continues.
  ::setenv("ORCA_TELEMETRY", "everything", 1);
  const RuntimeConfig bad_mode = RuntimeConfig::from_env();
  EXPECT_FALSE(bad_mode.telemetry_timeline);
  EXPECT_FALSE(bad_mode.telemetry_metrics);
  ::unsetenv("ORCA_TELEMETRY");

  // Invalid ring sizes: keep the compiled-in default capacity.
  const std::size_t fallback = RuntimeConfig().telemetry_ring_capacity;
  for (const char* bad : {"0", "-64", "huge", "4k", ""}) {
    ::setenv("ORCA_TELEMETRY_RING", bad, 1);
    const RuntimeConfig cfg = RuntimeConfig::from_env();
    EXPECT_EQ(cfg.telemetry_ring_capacity, fallback) << bad;
  }
  ::unsetenv("ORCA_TELEMETRY_RING");
}

TEST(ConfigDefaults, TelemetryOff) {
  const RuntimeConfig cfg;
  EXPECT_FALSE(cfg.telemetry_timeline);
  EXPECT_FALSE(cfg.telemetry_metrics);
  EXPECT_TRUE(cfg.telemetry_report.empty());
  EXPECT_TRUE(cfg.telemetry_trace.empty());
  EXPECT_GT(cfg.telemetry_ring_capacity, 0u);
}

TEST(BarrierKindParse, ParsesEveryKeyword) {
  BarrierKind kind = BarrierKind::kTree;
  EXPECT_TRUE(RuntimeConfig::parse_barrier_kind("centralized", &kind));
  EXPECT_EQ(kind, BarrierKind::kCentralized);
  EXPECT_TRUE(RuntimeConfig::parse_barrier_kind("DISSEMINATION", &kind));
  EXPECT_EQ(kind, BarrierKind::kDissemination);
  EXPECT_TRUE(RuntimeConfig::parse_barrier_kind("Tree", &kind));
  EXPECT_EQ(kind, BarrierKind::kTree);
  EXPECT_TRUE(RuntimeConfig::parse_barrier_kind("hierarchical", &kind));
  EXPECT_EQ(kind, BarrierKind::kTree);
}

TEST(BarrierKindParse, RejectsGarbageLeavingKindUntouched) {
  BarrierKind kind = BarrierKind::kDissemination;
  EXPECT_FALSE(RuntimeConfig::parse_barrier_kind("bogus", &kind));
  EXPECT_EQ(kind, BarrierKind::kDissemination);  // untouched on failure
  EXPECT_FALSE(RuntimeConfig::parse_barrier_kind("", &kind));
  EXPECT_FALSE(RuntimeConfig::parse_barrier_kind("tree ", &kind));
}

TEST(ConfigFromEnv, ReadsBarrierKind) {
  const struct {
    const char* text;
    BarrierKind kind;
  } cases[] = {
      {"centralized", BarrierKind::kCentralized},
      {"dissemination", BarrierKind::kDissemination},
      {"tree", BarrierKind::kTree},
  };
  for (const auto& c : cases) {
    ::setenv("ORCA_BARRIER", c.text, 1);
    EXPECT_EQ(RuntimeConfig::from_env().barrier, c.kind) << c.text;
    // The knob must also reach *default-constructed* configs — the ctest
    // per-algorithm instances env-inject ORCA_BARRIER into tests and
    // benches that never call from_env().
    const RuntimeConfig defaulted;
    EXPECT_EQ(defaulted.barrier, c.kind) << c.text;
  }
  ::unsetenv("ORCA_BARRIER");
}

TEST(ConfigFromEnv, WarnsAndDefaultsOnBadBarrierValue) {
  ::setenv("ORCA_BARRIER", "hypercube", 1);
  ::testing::internal::CaptureStderr();
  const RuntimeConfig cfg;
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(cfg.barrier, BarrierKind::kCentralized);
  EXPECT_NE(warning.find("ORCA_BARRIER"), std::string::npos) << warning;
  EXPECT_NE(warning.find("hypercube"), std::string::npos) << warning;
  ::unsetenv("ORCA_BARRIER");
}

TEST(ConfigDefaults, BarrierCentralized) {
  ::unsetenv("ORCA_BARRIER");
  const RuntimeConfig cfg;
  EXPECT_EQ(cfg.barrier, BarrierKind::kCentralized);
  EXPECT_STREQ(orca::rt::barrier_kind_name(cfg.barrier), "centralized");
}

TEST(BarrierTelemetry, SelectedAlgorithmSurfaces) {
  using orca::collector::MessageBuilder;
  using orca::rt::Runtime;
  EXPECT_STREQ(
      orca::telemetry::gauge_name(orca::telemetry::Gauge::kBarrierAlgorithm),
      "barrier_algorithm");

  // The snapshot answers 1 + BarrierKind deterministically from this
  // runtime's config; the metrics gauge records the same value (monotone
  // max across runtimes, so assert >= under parallel test storms).
  RuntimeConfig cfg;
  cfg.telemetry_metrics = true;
  cfg.barrier = BarrierKind::kDissemination;
  Runtime rt(cfg);
  MessageBuilder msg;
  msg.add_telemetry_query();
  rt.collector_api(msg.buffer());
  ASSERT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  orca_telemetry_snapshot snap = {};
  msg.reply_value(0, &snap);
  EXPECT_EQ(snap.barrier_algorithm,
            static_cast<unsigned long long>(BarrierKind::kDissemination) + 1);
  const orca::telemetry::MetricsView m = orca::telemetry::metrics();
  EXPECT_GE(m.gauges[static_cast<std::size_t>(
                orca::telemetry::Gauge::kBarrierAlgorithm)],
            static_cast<std::uint64_t>(BarrierKind::kDissemination) + 1);
}

TEST(ConfigFromEnv, ShmKnobsReachDefaultConstructedConfigs) {
  // A fleet operator arms export by environment on whole process trees;
  // tools and benches that build `RuntimeConfig cfg;` by hand (never
  // calling from_env) must honour it, exactly like ORCA_BARRIER.
  ::setenv("ORCA_SHM_EXPORT", "1", 1);
  ::setenv("ORCA_SHM_PREFIX", "orcaknob", 1);
  ::setenv("ORCA_SHM_RING_CAPACITY", "512", 1);
  ::setenv("ORCA_SHM_HEARTBEAT_MS", "25", 1);
  const RuntimeConfig cfg;
  EXPECT_TRUE(cfg.shm_export);
  EXPECT_EQ(cfg.shm_prefix, "orcaknob");
  EXPECT_EQ(cfg.shm_ring_capacity, 512u);
  EXPECT_EQ(cfg.shm_heartbeat_ms, 25);

  ::setenv("ORCA_SHM_PREFIX", "bad/prefix", 1);
  ::testing::internal::CaptureStderr();
  const RuntimeConfig bad;
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(bad.shm_prefix, "orca") << "slashes would escape /dev/shm";
  EXPECT_NE(warning.find("ORCA_SHM_PREFIX"), std::string::npos) << warning;

  ::unsetenv("ORCA_SHM_EXPORT");
  ::unsetenv("ORCA_SHM_PREFIX");
  ::unsetenv("ORCA_SHM_RING_CAPACITY");
  ::unsetenv("ORCA_SHM_HEARTBEAT_MS");
  const RuntimeConfig off;
  EXPECT_FALSE(off.shm_export);
  EXPECT_EQ(off.shm_prefix, "orca");
}

TEST(EnvHelpers, EnvLongEdgeCases) {
  const char* kKnob = "ORCA_TEST_ENV_LONG";
  ::unsetenv(kKnob);
  EXPECT_EQ(RuntimeConfig::env_long(kKnob, 42, 0, "an int"), 42)
      << "unset keeps the fallback";

  struct Case {
    const char* text;
    const char* why;
  };
  // Every reject must warn (one voice) and keep the fallback.
  const Case rejected[] = {
      {"", "empty string"},
      {"   ", "whitespace only"},
      {"123abc", "trailing junk"},
      {"abc", "not a number"},
      {"12.5", "trailing fraction"},
      {"99999999999999999999", "overflow: strtol clamps to LONG_MAX "
                               "with errno=ERANGE"},
      {"-99999999999999999999", "underflow"},
      {"-7", "below min_value"},
  };
  for (const Case& c : rejected) {
    ::setenv(kKnob, c.text, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(RuntimeConfig::env_long(kKnob, 42, 0, "an int"), 42)
        << c.why << ": \"" << c.text << '"';
    const std::string warning = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(warning.find(kKnob), std::string::npos)
        << c.why << " must warn; got: " << warning;
  }

  // Accepted shapes: full parse at or above min_value, sign included.
  ::setenv(kKnob, "0", 1);
  EXPECT_EQ(RuntimeConfig::env_long(kKnob, 42, 0, "an int"), 0);
  ::setenv(kKnob, "-7", 1);
  EXPECT_EQ(RuntimeConfig::env_long(kKnob, 42, -100, "an int"), -7)
      << "negative is fine when min_value allows it";
  ::setenv(kKnob, "  15", 1);
  EXPECT_EQ(RuntimeConfig::env_long(kKnob, 42, 0, "an int"), 15)
      << "strtol skips leading whitespace";
  ::unsetenv(kKnob);
}

TEST(EnvHelpers, EnvSizeRejectsZeroAndNegative) {
  const char* kKnob = "ORCA_TEST_ENV_SIZE";
  ::unsetenv(kKnob);
  EXPECT_EQ(RuntimeConfig::env_size(kKnob, 1024, "a count"), 1024u);
  // Sizes have an implicit min of 1: a zero or negative capacity would
  // wedge every ring that allocates from it.
  for (const char* bad : {"0", "-1", "-4096", ""}) {
    ::setenv(kKnob, bad, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(RuntimeConfig::env_size(kKnob, 1024, "a count"), 1024u)
        << '"' << bad << '"';
    ::testing::internal::GetCapturedStderr();
  }
  ::setenv(kKnob, "1", 1);
  EXPECT_EQ(RuntimeConfig::env_size(kKnob, 1024, "a count"), 1u);
  ::unsetenv(kKnob);
}

TEST(EnvHelpers, EnvParsedLeavesTargetUntouchedOnGarbage) {
  const char* kKnob = "ORCA_TEST_ENV_PARSED";
  int calls = 0;
  int value = 5;

  ::unsetenv(kKnob);
  RuntimeConfig::env_parsed(
      kKnob,
      [&](const std::string&) {
        ++calls;
        return true;
      },
      "anything", "5");
  EXPECT_EQ(calls, 0) << "unset must not even invoke the parser";

  ::setenv(kKnob, "bogus", 1);
  ::testing::internal::CaptureStderr();
  RuntimeConfig::env_parsed(
      kKnob,
      [&](const std::string& text) {
        ++calls;
        if (text != "seven") return false;
        value = 7;
        return true;
      },
      "the word seven", "5");
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(value, 5) << "rejected parse must leave the target untouched";
  EXPECT_NE(warning.find(kKnob), std::string::npos) << warning;
  EXPECT_NE(warning.find("bogus"), std::string::npos) << warning;
  EXPECT_NE(warning.find("keeping 5"), std::string::npos) << warning;

  ::setenv(kKnob, "seven", 1);
  RuntimeConfig::env_parsed(
      kKnob,
      [&](const std::string& text) {
        ++calls;
        if (text != "seven") return false;
        value = 7;
        return true;
      },
      "the word seven", "5");
  EXPECT_EQ(value, 7);
  ::unsetenv(kKnob);
}

TEST(ConfigDefaults, MatchOpenUh) {
  const RuntimeConfig cfg;
  EXPECT_FALSE(cfg.nested);          // nested regions serialized
  EXPECT_FALSE(cfg.atomic_events);   // atomic waits not implemented
  EXPECT_TRUE(cfg.ordered_events);
  EXPECT_TRUE(cfg.per_thread_queues);
}

}  // namespace
