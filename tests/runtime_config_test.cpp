/// ICV/configuration tests: OMP_SCHEDULE parsing, environment intake, and
/// clamping rules.
#include <gtest/gtest.h>

#include <cstdlib>

#include "runtime/config.hpp"

namespace {

using orca::rt::RuntimeConfig;
using orca::rt::Schedule;
using orca::rt::ScheduleSpec;

TEST(ScheduleParse, KindsAndChunks) {
  ScheduleSpec spec = RuntimeConfig::parse_schedule("dynamic,4");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 4);

  spec = RuntimeConfig::parse_schedule("guided");
  EXPECT_EQ(spec.kind, Schedule::kGuided);
  EXPECT_EQ(spec.chunk, 0);

  spec = RuntimeConfig::parse_schedule("static");
  EXPECT_EQ(spec.kind, Schedule::kStaticEven);

  spec = RuntimeConfig::parse_schedule("static,16");
  EXPECT_EQ(spec.kind, Schedule::kStaticChunked);
  EXPECT_EQ(spec.chunk, 16);

  spec = RuntimeConfig::parse_schedule("DYNAMIC , 8");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 8);
}

TEST(ScheduleParse, GarbageFallsBackToStatic) {
  EXPECT_EQ(RuntimeConfig::parse_schedule("").kind, Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("bogus,4").kind,
            Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,notanumber").chunk, 0);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,-5").chunk, 0);
}

TEST(ConfigFromEnv, ReadsIcvs) {
  ::setenv("OMP_NUM_THREADS", "6", 1);
  ::setenv("OMP_NESTED", "true", 1);
  ::setenv("OMP_SCHEDULE", "guided,2", 1);
  ::setenv("ORCA_ATOMIC_EVENTS", "1", 1);
  ::setenv("ORCA_PER_THREAD_QUEUES", "0", 1);

  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.num_threads, 6);
  EXPECT_TRUE(cfg.nested);
  EXPECT_TRUE(cfg.atomic_events);
  EXPECT_FALSE(cfg.per_thread_queues);
  EXPECT_EQ(cfg.runtime_schedule.kind, Schedule::kGuided);
  EXPECT_EQ(cfg.runtime_schedule.chunk, 2);

  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_NESTED");
  ::unsetenv("OMP_SCHEDULE");
  ::unsetenv("ORCA_ATOMIC_EVENTS");
  ::unsetenv("ORCA_PER_THREAD_QUEUES");
}

TEST(ConfigFromEnv, ClampsInsaneValues) {
  ::setenv("OMP_NUM_THREADS", "-3", 1);
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_GE(cfg.num_threads, 1);
  ::unsetenv("OMP_NUM_THREADS");

  ::setenv("OMP_NUM_THREADS", "100", 1);
  ::setenv("OMP_THREAD_LIMIT", "8", 1);
  const RuntimeConfig capped = RuntimeConfig::from_env();
  EXPECT_GE(capped.max_threads, capped.num_threads);
  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_THREAD_LIMIT");
}

TEST(ConfigDefaults, MatchOpenUh) {
  const RuntimeConfig cfg;
  EXPECT_FALSE(cfg.nested);          // nested regions serialized
  EXPECT_FALSE(cfg.atomic_events);   // atomic waits not implemented
  EXPECT_TRUE(cfg.ordered_events);
  EXPECT_TRUE(cfg.per_thread_queues);
}

}  // namespace
