/// ICV/configuration tests: OMP_SCHEDULE parsing, environment intake, and
/// clamping rules.
#include <gtest/gtest.h>

#include <cstdlib>

#include "runtime/config.hpp"

namespace {

using orca::rt::RuntimeConfig;
using orca::rt::Schedule;
using orca::rt::ScheduleSpec;

TEST(ScheduleParse, KindsAndChunks) {
  ScheduleSpec spec = RuntimeConfig::parse_schedule("dynamic,4");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 4);

  spec = RuntimeConfig::parse_schedule("guided");
  EXPECT_EQ(spec.kind, Schedule::kGuided);
  EXPECT_EQ(spec.chunk, 0);

  spec = RuntimeConfig::parse_schedule("static");
  EXPECT_EQ(spec.kind, Schedule::kStaticEven);

  spec = RuntimeConfig::parse_schedule("static,16");
  EXPECT_EQ(spec.kind, Schedule::kStaticChunked);
  EXPECT_EQ(spec.chunk, 16);

  spec = RuntimeConfig::parse_schedule("DYNAMIC , 8");
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 8);
}

TEST(ScheduleParse, GarbageFallsBackToStatic) {
  EXPECT_EQ(RuntimeConfig::parse_schedule("").kind, Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("bogus,4").kind,
            Schedule::kStaticEven);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,notanumber").chunk, 0);
  EXPECT_EQ(RuntimeConfig::parse_schedule("dynamic,-5").chunk, 0);
}

TEST(ConfigFromEnv, ReadsIcvs) {
  ::setenv("OMP_NUM_THREADS", "6", 1);
  ::setenv("OMP_NESTED", "true", 1);
  ::setenv("OMP_SCHEDULE", "guided,2", 1);
  ::setenv("ORCA_ATOMIC_EVENTS", "1", 1);
  ::setenv("ORCA_PER_THREAD_QUEUES", "0", 1);

  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.num_threads, 6);
  EXPECT_TRUE(cfg.nested);
  EXPECT_TRUE(cfg.atomic_events);
  EXPECT_FALSE(cfg.per_thread_queues);
  EXPECT_EQ(cfg.runtime_schedule.kind, Schedule::kGuided);
  EXPECT_EQ(cfg.runtime_schedule.chunk, 2);

  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_NESTED");
  ::unsetenv("OMP_SCHEDULE");
  ::unsetenv("ORCA_ATOMIC_EVENTS");
  ::unsetenv("ORCA_PER_THREAD_QUEUES");
}

TEST(ConfigFromEnv, ClampsInsaneValues) {
  ::setenv("OMP_NUM_THREADS", "-3", 1);
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_GE(cfg.num_threads, 1);
  ::unsetenv("OMP_NUM_THREADS");

  ::setenv("OMP_NUM_THREADS", "100", 1);
  ::setenv("OMP_THREAD_LIMIT", "8", 1);
  const RuntimeConfig capped = RuntimeConfig::from_env();
  EXPECT_GE(capped.max_threads, capped.num_threads);
  ::unsetenv("OMP_NUM_THREADS");
  ::unsetenv("OMP_THREAD_LIMIT");
}

TEST(TelemetryMode, ParsesEveryKeyword) {
  bool timeline = true;
  bool metrics = true;
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("off", &timeline, &metrics));
  EXPECT_FALSE(timeline);
  EXPECT_FALSE(metrics);
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("none", &timeline, &metrics));
  EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode("0", &timeline, &metrics));

  EXPECT_TRUE(
      RuntimeConfig::parse_telemetry_mode("metrics", &timeline, &metrics));
  EXPECT_FALSE(timeline);
  EXPECT_TRUE(metrics);

  EXPECT_TRUE(
      RuntimeConfig::parse_telemetry_mode("timeline", &timeline, &metrics));
  EXPECT_TRUE(timeline);
  EXPECT_FALSE(metrics);

  for (const char* full : {"full", "on", "1"}) {
    timeline = metrics = false;
    EXPECT_TRUE(RuntimeConfig::parse_telemetry_mode(full, &timeline, &metrics))
        << full;
    EXPECT_TRUE(timeline) << full;
    EXPECT_TRUE(metrics) << full;
  }
}

TEST(TelemetryMode, RejectsGarbageLeavingFlagsUntouched) {
  bool timeline = true;
  bool metrics = false;
  EXPECT_FALSE(
      RuntimeConfig::parse_telemetry_mode("bogus", &timeline, &metrics));
  EXPECT_TRUE(timeline);   // untouched on failure
  EXPECT_FALSE(metrics);
  EXPECT_FALSE(RuntimeConfig::parse_telemetry_mode("", &timeline, &metrics));
  EXPECT_FALSE(
      RuntimeConfig::parse_telemetry_mode("FULL ", &timeline, &metrics));
}

TEST(ConfigFromEnv, ReadsTelemetryKnobs) {
  ::setenv("ORCA_TELEMETRY", "full", 1);
  ::setenv("ORCA_TELEMETRY_RING", "8192", 1);
  ::setenv("ORCA_TELEMETRY_REPORT", "stderr", 1);
  ::setenv("ORCA_TELEMETRY_TRACE", "/tmp/trace.json", 1);

  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_TRUE(cfg.telemetry_timeline);
  EXPECT_TRUE(cfg.telemetry_metrics);
  EXPECT_EQ(cfg.telemetry_ring_capacity, 8192u);
  EXPECT_EQ(cfg.telemetry_report, "stderr");
  EXPECT_EQ(cfg.telemetry_trace, "/tmp/trace.json");

  ::setenv("ORCA_TELEMETRY", "metrics", 1);
  const RuntimeConfig metrics_only = RuntimeConfig::from_env();
  EXPECT_FALSE(metrics_only.telemetry_timeline);
  EXPECT_TRUE(metrics_only.telemetry_metrics);

  ::unsetenv("ORCA_TELEMETRY");
  ::unsetenv("ORCA_TELEMETRY_RING");
  ::unsetenv("ORCA_TELEMETRY_REPORT");
  ::unsetenv("ORCA_TELEMETRY_TRACE");
}

TEST(ConfigFromEnv, WarnsAndDefaultsOnBadTelemetryValues) {
  // Invalid mode: telemetry stays off (the default), run continues.
  ::setenv("ORCA_TELEMETRY", "everything", 1);
  const RuntimeConfig bad_mode = RuntimeConfig::from_env();
  EXPECT_FALSE(bad_mode.telemetry_timeline);
  EXPECT_FALSE(bad_mode.telemetry_metrics);
  ::unsetenv("ORCA_TELEMETRY");

  // Invalid ring sizes: keep the compiled-in default capacity.
  const std::size_t fallback = RuntimeConfig().telemetry_ring_capacity;
  for (const char* bad : {"0", "-64", "huge", "4k", ""}) {
    ::setenv("ORCA_TELEMETRY_RING", bad, 1);
    const RuntimeConfig cfg = RuntimeConfig::from_env();
    EXPECT_EQ(cfg.telemetry_ring_capacity, fallback) << bad;
  }
  ::unsetenv("ORCA_TELEMETRY_RING");
}

TEST(ConfigDefaults, TelemetryOff) {
  const RuntimeConfig cfg;
  EXPECT_FALSE(cfg.telemetry_timeline);
  EXPECT_FALSE(cfg.telemetry_metrics);
  EXPECT_TRUE(cfg.telemetry_report.empty());
  EXPECT_TRUE(cfg.telemetry_trace.empty());
  EXPECT_GT(cfg.telemetry_ring_capacity, 0u);
}

TEST(ConfigDefaults, MatchOpenUh) {
  const RuntimeConfig cfg;
  EXPECT_FALSE(cfg.nested);          // nested regions serialized
  EXPECT_FALSE(cfg.atomic_events);   // atomic waits not implemented
  EXPECT_TRUE(cfg.ordered_events);
  EXPECT_TRUE(cfg.per_thread_queues);
}

}  // namespace
