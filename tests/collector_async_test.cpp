/// Lifecycle-edge tests for asynchronous event delivery: events admitted
/// before PAUSE are delivered by the time PAUSE returns, STOP flushes and
/// joins the drainer (no callback after OMP_REQ_STOP returns), RESUME
/// restarts delivery, and the backpressure counters are exact. The second
/// half drives the nastier interleavings through the fault-injection
/// harness: a slow callback inside the PAUSE flush barrier, a callback
/// re-entering `omp_collector_api`, a throwing callback, and STOP racing a
/// saturated ring under every backpressure policy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "collector/async.hpp"
#include "collector/message.hpp"
#include "runtime/runtime.hpp"
#include "testing/fault_injection.hpp"

namespace {

using orca::collector::AsyncDispatcher;
using orca::collector::EventRingStats;
using orca::collector::MessageBuilder;
using orca::rt::EventBackpressure;
using orca::rt::EventDelivery;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_with_context{0};

void counting_callback(OMP_COLLECTORAPI_EVENT) {
  if (AsyncDispatcher::delivery_context() != nullptr) {
    g_with_context.fetch_add(1, std::memory_order_relaxed);
  }
  g_count.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<std::uint64_t> g_fork_count{0};
std::atomic<std::uint64_t> g_join_count{0};
void fork_callback(OMP_COLLECTORAPI_EVENT) {
  g_fork_count.fetch_add(1, std::memory_order_relaxed);
}
void join_callback(OMP_COLLECTORAPI_EVENT) {
  g_join_count.fetch_add(1, std::memory_order_relaxed);
}

/// Callback that parks the drainer until the test opens the gate; lets a
/// test stall delivery deterministically to provoke backpressure.
std::atomic<int> g_gate{1};
std::atomic<std::uint64_t> g_entered{0};
void gated_callback(OMP_COLLECTORAPI_EVENT) {
  g_entered.fetch_add(1, std::memory_order_release);
  while (g_gate.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  g_count.fetch_add(1, std::memory_order_relaxed);
}

void reset_globals() {
  g_count = 0;
  g_with_context = 0;
  g_fork_count = 0;
  g_join_count = 0;
  g_gate = 1;
  g_entered = 0;
}

RuntimeConfig async_cfg(EventBackpressure policy, std::size_t ring_capacity) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.event_delivery = EventDelivery::kAsync;
  cfg.event_backpressure = policy;
  cfg.event_ring_capacity = ring_capacity;
  return cfg;
}

OMP_COLLECTORAPI_EC lifecycle(Runtime& rt, OMP_COLLECTORAPI_REQUEST req) {
  MessageBuilder msg;
  msg.add(req);
  EXPECT_EQ(rt.collector_api(msg.buffer()), 0);
  return msg.errcode(0);
}

void register_cb(Runtime& rt, OMP_COLLECTORAPI_EVENT event,
                 OMP_COLLECTORAPI_CALLBACK cb) {
  MessageBuilder msg;
  msg.add_register(event, cb);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
  ASSERT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
}

TEST(AsyncDelivery, StartSpawnsDrainerAndPauseIsFlushBarrier) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 1024));
  Runtime::make_current(&rt);
  ASSERT_NE(rt.async_dispatcher(), nullptr);
  EXPECT_FALSE(rt.async_dispatcher()->running());

  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  EXPECT_TRUE(rt.async_dispatcher()->running());
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);

  for (int i = 0; i < 100; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  // PAUSE returned: every pre-PAUSE event has been delivered, all of them
  // on the drainer (delivery context set), none lost under kBlock.
  EXPECT_EQ(g_count.load(), 100u);
  EXPECT_EQ(g_with_context.load(), 100u);
  const EventRingStats s = rt.async_dispatcher()->stats();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(s.delivered, 100u);
  EXPECT_EQ(s.dropped, 0u);

  // Paused: new events are not admitted at all.
  for (int i = 0; i < 50; ++i) rt.registry().fire(OMP_EVENT_FORK);
  EXPECT_EQ(rt.async_dispatcher()->stats().submitted, 100u);
  EXPECT_EQ(g_count.load(), 100u);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, ResumeRestartsDelivery) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 256));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_RESUME), OMP_ERRCODE_OK);
  EXPECT_TRUE(rt.async_dispatcher()->running());

  for (int i = 0; i < 7; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  EXPECT_EQ(g_count.load(), 7u);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, StopFlushesJoinsAndSilences) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 512));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);

  for (int i = 0; i < 200; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  // STOP returned: everything admitted before the edge was delivered, the
  // drainer has joined, and no callback fires afterwards.
  EXPECT_EQ(g_count.load(), 200u);
  EXPECT_FALSE(rt.async_dispatcher()->running());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(g_count.load(), 200u);

  // A second session restarts the drainer (registrations were cleared by
  // STOP, so re-register).
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  EXPECT_TRUE(rt.async_dispatcher()->running());
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);
  for (int i = 0; i < 5; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  EXPECT_EQ(g_count.load(), 205u);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, DropNewestCountsExactlyUnderStall) {
  reset_globals();
  g_gate = 0;  // stall the drainer inside the first delivery
  Runtime rt(async_cfg(EventBackpressure::kDropNewest, 4));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &gated_callback);

  // First event: wait until the drainer is provably stuck inside its
  // callback, so nothing further can leave the ring.
  rt.registry().fire(OMP_EVENT_FORK);
  while (g_entered.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  // Fill the 4-cell ring, then overflow it: exactly 6 drops.
  for (int i = 0; i < 4; ++i) rt.registry().fire(OMP_EVENT_FORK);
  for (int i = 0; i < 6; ++i) rt.registry().fire(OMP_EVENT_FORK);
  EventRingStats s = rt.async_dispatcher()->stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.dropped, 6u);

  g_gate = 1;  // release the drainer
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  EXPECT_EQ(g_count.load(), 5u);
  s = rt.async_dispatcher()->stats();
  EXPECT_EQ(s.delivered, 5u);
  EXPECT_EQ(s.submitted, s.delivered + s.overwritten);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, ForkRegionEventsArriveThroughAsyncPath) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 1024));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &fork_callback);
  register_cb(rt, OMP_EVENT_JOIN, &join_callback);

  rt.fork([](int, void*) {}, nullptr, 2);
  rt.quiesce();
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  EXPECT_EQ(g_fork_count.load(), 1u);
  EXPECT_EQ(g_join_count.load(), 1u);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, EventStatsQueryReportsCountersAndActivity) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 100));  // ring rounds to 128
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);
  for (int i = 0; i < 10; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);

  MessageBuilder query;
  query.add_event_stats_query();
  ASSERT_EQ(rt.collector_api(query.buffer()), 0);
  ASSERT_EQ(query.errcode(0), OMP_ERRCODE_OK);
  orca_event_stats stats = {};
  ASSERT_TRUE(query.reply_value(0, &stats));
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.delivered, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.ring_capacity, 128u);
  EXPECT_EQ(stats.active, 1);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  MessageBuilder after;
  after.add_event_stats_query();
  ASSERT_EQ(rt.collector_api(after.buffer()), 0);
  ASSERT_TRUE(after.reply_value(0, &stats));
  EXPECT_EQ(stats.active, 0);
  Runtime::make_current(nullptr);
}

TEST(AsyncDelivery, SyncModeStaysInlineAndReportsInactive) {
  reset_globals();
  RuntimeConfig cfg;  // default: ORCA_EVENT_DELIVERY=sync
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  EXPECT_EQ(rt.async_dispatcher(), nullptr);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &counting_callback);

  rt.registry().fire(OMP_EVENT_FORK);
  // Synchronous dispatch: delivered inline on the firing thread, with no
  // delivery context.
  EXPECT_EQ(g_count.load(), 1u);
  EXPECT_EQ(g_with_context.load(), 0u);

  // With no delivery engine the stats query is recognized but not
  // supported: UNSUPPORTED, no fabricated zero counters.
  MessageBuilder query;
  query.add_event_stats_query();
  ASSERT_EQ(rt.collector_api(query.buffer()), 0);
  EXPECT_EQ(query.errcode(0), OMP_ERRCODE_UNSUPPORTED);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

// ---------------------------------------------------------------------------
// Adversarial interleavings (fault-injection harness).
// ---------------------------------------------------------------------------

TEST(AsyncDelivery, SlowCallbackMakesPauseFlushWait) {
  reset_globals();
  g_gate = 0;  // the first delivery parks the drainer
  Runtime rt(async_cfg(EventBackpressure::kBlock, 64));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &gated_callback);

  for (int i = 0; i < 8; ++i) rt.registry().fire(OMP_EVENT_FORK);
  while (g_entered.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }

  // PAUSE from a second thread: its flush barrier cannot complete while
  // the drainer is provably stuck inside the first delivery.
  std::atomic<bool> pause_done{false};
  std::thread pauser([&rt, &pause_done] {
    EXPECT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
    pause_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pause_done.load(std::memory_order_acquire));

  g_gate = 1;
  pauser.join();
  // PAUSE returned only after every admitted event was fully delivered.
  EXPECT_EQ(g_count.load(), 8u);
  EXPECT_EQ(rt.async_dispatcher()->stats().delivered, 8u);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

Runtime* g_reentry_rt = nullptr;
std::atomic<std::uint64_t> g_reentry_ok{0};

/// Collector callback that issues new requests from inside a delivery —
/// legal per the white paper (the API is callable from any collector
/// thread), and the drainer must answer without self-deadlocking.
void reentrant_callback(OMP_COLLECTORAPI_EVENT) {
  MessageBuilder msg;
  msg.add_state_query();
  msg.add_event_stats_query();
  if (g_reentry_rt->collector_api(msg.buffer()) == 0 &&
      msg.errcode(0) == OMP_ERRCODE_OK && msg.errcode(1) == OMP_ERRCODE_OK) {
    g_reentry_ok.fetch_add(1, std::memory_order_relaxed);
  }
}

TEST(AsyncDelivery, CallbackReentersCollectorApi) {
  reset_globals();
  g_reentry_ok = 0;
  Runtime rt(async_cfg(EventBackpressure::kBlock, 64));
  g_reentry_rt = &rt;
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &reentrant_callback);

  for (int i = 0; i < 5; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  EXPECT_EQ(g_reentry_ok.load(), 5u);

  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  g_reentry_rt = nullptr;
  Runtime::make_current(nullptr);
}

void throwing_callback(OMP_COLLECTORAPI_EVENT) {
  throw std::runtime_error("collector bug");
}

TEST(AsyncDelivery, ThrowingCallbackIsContainedAndCounted) {
  reset_globals();
  Runtime rt(async_cfg(EventBackpressure::kBlock, 64));
  Runtime::make_current(&rt);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
  register_cb(rt, OMP_EVENT_FORK, &throwing_callback);

  for (int i = 0; i < 3; ++i) rt.registry().fire(OMP_EVENT_FORK);
  // The drainer survives every throw: PAUSE's flush barrier completes, the
  // records count as delivered, and the failures are tallied.
  ASSERT_EQ(lifecycle(rt, OMP_REQ_PAUSE), OMP_ERRCODE_OK);
  EXPECT_EQ(rt.async_dispatcher()->stats().delivered, 3u);
  EXPECT_EQ(rt.async_dispatcher()->callback_failures(), 3u);
  ASSERT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

/// STOP races a producer storm into a 4-cell ring whose drainer is parked
/// inside a delivery, with seeded schedule perturbation armed at every
/// seam. Whatever the interleaving: STOP returns OK, the drainer joins, the
/// ring accounting reconciles, and nothing is admitted afterwards.
void stop_races_saturated_ring(EventBackpressure policy) {
  reset_globals();
  g_gate = 0;
  auto& fi = orca::testing::FaultInjector::instance();
  fi.disarm();
  fi.perturb(/*seed=*/0xACE5ULL, /*one_in=*/4);
  fi.arm();
  {
    Runtime rt(async_cfg(policy, 4));
    Runtime::make_current(&rt);
    ASSERT_EQ(lifecycle(rt, OMP_REQ_START), OMP_ERRCODE_OK);
    register_cb(rt, OMP_EVENT_FORK, &gated_callback);

    std::thread producer([&rt] {
      for (int i = 0; i < 32; ++i) rt.registry().fire(OMP_EVENT_FORK);
    });
    while (g_entered.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    std::atomic<bool> stop_done{false};
    std::thread stopper([&rt, &stop_done] {
      EXPECT_EQ(lifecycle(rt, OMP_REQ_STOP), OMP_ERRCODE_OK);
      stop_done.store(true, std::memory_order_release);
    });
    g_gate = 1;  // release the drainer; the flush barrier can now complete
    producer.join();
    stopper.join();
    ASSERT_TRUE(stop_done.load());
    EXPECT_FALSE(rt.async_dispatcher()->running());

    // A producer preempted mid-push can land its record after STOP's final
    // sweep (the publish hot path carries no handshake a stopper could wait
    // on). Now that every producer has joined, one inline flush retires any
    // such straggler; then the accounting must reconcile exactly: every
    // admitted record was delivered or (kOverwriteOldest) overwritten,
    // with kDropNewest shedding into `dropped`.
    rt.async_dispatcher()->flush();
    const EventRingStats s = rt.async_dispatcher()->stats();
    EXPECT_EQ(s.submitted, s.delivered + s.overwritten);

    // Stopped machine: no further admission.
    rt.registry().fire(OMP_EVENT_FORK);
    EXPECT_EQ(rt.async_dispatcher()->stats().submitted, s.submitted);
    Runtime::make_current(nullptr);
  }
  fi.disarm();
}

TEST(AsyncDelivery, StopRacesSaturatedRingBlockPolicy) {
  stop_races_saturated_ring(EventBackpressure::kBlock);
}

TEST(AsyncDelivery, StopRacesSaturatedRingDropNewestPolicy) {
  stop_races_saturated_ring(EventBackpressure::kDropNewest);
}

TEST(AsyncDelivery, StopRacesSaturatedRingOverwriteOldestPolicy) {
  stop_races_saturated_ring(EventBackpressure::kOverwriteOldest);
}

}  // namespace
