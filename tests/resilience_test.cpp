/// Resilience-layer tests (docs/RESILIENCE.md): the async-signal-safe
/// query fast path (served counters, reentrancy refusal, region-id answers
/// from inside a team), the ORCA_REQ_RESILIENCE_STATS wire query on both
/// the fast and dispatcher paths, the callback watchdog quarantining a
/// stalled collector while the application proceeds, and the conformance
/// differ running clean with the resilience fault seams armed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "collector/message.hpp"
#include "runtime/runtime.hpp"
#include "testing/conformance.hpp"
#include "testing/fault_injection.hpp"
#include "tool/client2.hpp"

namespace {

using orca::collector::Client;
using orca::collector::MessageBuilder;
using orca::rt::EventDelivery;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::testing::ConformanceOptions;
using orca::testing::ConformanceReport;
using orca::testing::conformance_seed;
using orca::testing::FaultInjector;
using orca::testing::FaultPoint;
using orca::testing::run_conformance;

/// Every test leaves the global injector disarmed and clean, even on
/// assertion failure (same helper as the conformance suite).
struct ScopedFaultInjection {
  ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }
  FaultInjector& operator*() const { return FaultInjector::instance(); }
  FaultInjector* operator->() const { return &FaultInjector::instance(); }
};

RuntimeConfig sync_cfg() {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  return cfg;
}

Client client_for(Runtime& rt) {
  return Client([&rt](void* buffer) { return rt.collector_api(buffer); });
}

// ---------------------------------------------------------------------------
// Signal-safe fast path
// ---------------------------------------------------------------------------

TEST(SignalFastPath, StateAndPridBuffersServedWithoutDispatcher) {
  Runtime rt(sync_cfg());
  const std::uint64_t before = rt.signal_queries_served();

  MessageBuilder msg;
  msg.add_state_query();
  msg.add_id_query(OMP_REQ_CURRENT_PRID);
  msg.add_id_query(OMP_REQ_PARENT_PRID);
  ASSERT_EQ(rt.collector_api(msg.buffer()), 0);

  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  int state = 0;
  ASSERT_TRUE(msg.reply_value(0, &state));
  EXPECT_EQ(state, THR_SERIAL_STATE);
  // Outside any parallel region the id queries answer SEQUENCE_ERR —
  // identical to the dispatcher path (paper IV-E).
  EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_SEQUENCE_ERR);
  EXPECT_EQ(msg.errcode(2), OMP_ERRCODE_SEQUENCE_ERR);

  EXPECT_EQ(rt.signal_queries_served(), before + 3);
}

std::atomic<std::uint64_t> g_region_ok{0};
std::atomic<std::uint64_t> g_region_calls{0};

void prid_probe(int, void* frame) {
  auto* rt = static_cast<Runtime*>(frame);
  g_region_calls.fetch_add(1, std::memory_order_relaxed);
  MessageBuilder msg;
  msg.add_id_query(OMP_REQ_CURRENT_PRID);
  if (rt->collector_api(msg.buffer()) != 0) return;
  unsigned long id = 0;
  if (msg.errcode(0) == OMP_ERRCODE_OK && msg.reply_value(0, &id) && id != 0) {
    g_region_ok.fetch_add(1, std::memory_order_relaxed);
  }
}

TEST(SignalFastPath, CurrentPridInsideTeamAnswersRegionId) {
  g_region_ok = 0;
  g_region_calls = 0;
  Runtime rt(sync_cfg());
  Runtime::make_current(&rt);
  const std::uint64_t before = rt.signal_queries_served();
  rt.fork(&prid_probe, &rt, 2);
  Runtime::make_current(nullptr);
  EXPECT_EQ(g_region_calls.load(), 2u);
  EXPECT_EQ(g_region_ok.load(), 2u);
  // Every in-team query went through the fast path's snapshot slots.
  EXPECT_EQ(rt.signal_queries_served(), before + 2);
}

TEST(SignalFastPath, ReentrantNonFastBufferIsRefusedLockFree) {
  ScopedFaultInjection fi;
  Runtime rt(sync_cfg());

  // The kApiEnter seam fires inside the full dispatcher — exactly where a
  // SIGPROF handler could interrupt the thread. The hook re-enters
  // collector_api: fast-eligible buffers are still answered, anything that
  // needs the dispatcher is refused with ERROR on every record instead of
  // self-deadlocking on the queues.
  std::atomic<int> reentered{0};
  MessageBuilder inner_fast;
  inner_fast.add_state_query();
  MessageBuilder inner_slow;
  inner_slow.add(OMP_REQ_PAUSE);
  fi->set_hook(FaultPoint::kApiEnter, [&] {
    if (reentered.exchange(1) != 0) return;
    EXPECT_EQ(rt.collector_api(inner_fast.buffer()), 0);
    EXPECT_EQ(inner_fast.errcode(0), OMP_ERRCODE_OK);
    EXPECT_EQ(rt.collector_api(inner_slow.buffer()), 0);
    EXPECT_EQ(inner_slow.errcode(0), OMP_ERRCODE_ERROR);
  });
  fi->arm();

  MessageBuilder outer;
  outer.add(OMP_REQ_START);  // non-fast: takes the full dispatcher
  EXPECT_EQ(rt.collector_api(outer.buffer()), 0);
  EXPECT_EQ(outer.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(reentered.load(), 1);
}

// ---------------------------------------------------------------------------
// ORCA_REQ_RESILIENCE_STATS
// ---------------------------------------------------------------------------

TEST(ResilienceStats, TypedClientQueryAndServedCounter) {
  Runtime rt(sync_cfg());
  const Client client = client_for(rt);

  const auto first = client.resilience_stats();
  ASSERT_TRUE(first) << static_cast<int>(first.error());
  EXPECT_EQ(first->quarantined_collectors, 0u);
  EXPECT_EQ(first->crash_dump_armed, 0u);
  EXPECT_EQ(first->fork_events, 0u);

  // The single-record query itself rides the fast path, so the counter the
  // second reply reports includes the first query.
  const auto second = client.resilience_stats();
  ASSERT_TRUE(second);
  EXPECT_GT(second->signal_queries_served, first->signal_queries_served);
}

TEST(ResilienceStats, CapacityGatesBeforeAnswerOnBothPaths) {
  Runtime rt(sync_cfg());

  // Fast path: the undersized record is fast-eligible, so the capacity
  // verdict comes from the signal-safe lane.
  MessageBuilder small;
  small.add(ORCA_REQ_RESILIENCE_STATS, 8);
  ASSERT_EQ(rt.collector_api(small.buffer()), 0);
  EXPECT_EQ(small.errcode(0), OMP_ERRCODE_MEM_TOO_SMALL);

  // Dispatcher path: a lifecycle record in the same buffer forces the full
  // dispatcher, which must answer the stats record identically.
  MessageBuilder mixed;
  mixed.add(OMP_REQ_START);
  mixed.add_resilience_stats_query();
  mixed.add(ORCA_REQ_RESILIENCE_STATS, 8);
  mixed.add(OMP_REQ_STOP);
  ASSERT_EQ(rt.collector_api(mixed.buffer()), 0);
  EXPECT_EQ(mixed.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(mixed.errcode(1), OMP_ERRCODE_OK);
  EXPECT_EQ(mixed.errcode(2), OMP_ERRCODE_MEM_TOO_SMALL);
  EXPECT_EQ(mixed.errcode(3), OMP_ERRCODE_OK);

  orca_resilience_stats stats = {};
  ASSERT_TRUE(mixed.reply_value(1, &stats));
  EXPECT_EQ(stats.quarantined_collectors, 0u);
}

// ---------------------------------------------------------------------------
// Callback watchdog
// ---------------------------------------------------------------------------

std::atomic<int> g_release{0};
std::atomic<int> g_stuck_calls{0};

void stuck_callback(OMP_COLLECTORAPI_EVENT) {
  g_stuck_calls.fetch_add(1, std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (g_release.load(std::memory_order_acquire) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(CallbackWatchdog, QuarantinesStalledCollectorWhileAppProceeds) {
  g_release = 0;
  g_stuck_calls = 0;

  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.event_delivery = EventDelivery::kAsync;
  cfg.callback_deadline_ms = 25;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  const Client client = client_for(rt);

  ASSERT_EQ(client.start(), OMP_ERRCODE_OK);
  ASSERT_EQ(client.register_event(OMP_EVENT_FORK, &stuck_callback),
            OMP_ERRCODE_OK);
  rt.registry().fire(OMP_EVENT_FORK);

  // The watchdog must retire the collector while its callback is *still
  // stuck* — the app-side observer sees the quarantine strictly before the
  // callback is released.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (rt.registry().quarantined() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.registry().quarantined(), 1u);
  EXPECT_EQ(g_stuck_calls.load(), 1);
  g_release.store(1, std::memory_order_release);

  // Post-quarantine events are delivered into a table without the entry:
  // the stalled collector is never called again.
  for (int i = 0; i < 10; ++i) rt.registry().fire(OMP_EVENT_FORK);
  ASSERT_EQ(client.pause(), OMP_ERRCODE_OK);  // flush barrier
  EXPECT_EQ(g_stuck_calls.load(), 1);

  const auto stats = client.resilience_stats();
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->quarantined_collectors, 1u);

  ASSERT_EQ(client.resume(), OMP_ERRCODE_OK);
  ASSERT_EQ(client.stop(), OMP_ERRCODE_OK);
  Runtime::make_current(nullptr);
}

// ---------------------------------------------------------------------------
// Conformance under armed resilience seams
// ---------------------------------------------------------------------------

TEST(Resilience, ConformanceDifferCleanWithResilienceSeamsArmed) {
  ScopedFaultInjection fi;
  fi->set_hook(FaultPoint::kSignalDuringQuery, [] {});
  fi->set_hook(FaultPoint::kCallbackStall, [] { std::this_thread::yield(); });
  fi->set_hook(FaultPoint::kForkRace, [] {});
  fi->arm();

  ConformanceOptions opt;
  opt.seed = conformance_seed(opt.seed);
  opt.sequences = 300;
  ConformanceReport report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;

  opt.async_delivery = true;
  report = run_conformance(opt);
  EXPECT_TRUE(report.ok) << report.failure;

  // Every collector_api call crosses the signal seam, so an armed hook
  // must have observed the whole differ run.
  EXPECT_GE(fi->hits(FaultPoint::kSignalDuringQuery), 1u);
}

}  // namespace
