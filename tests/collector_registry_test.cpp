/// Registry tests: the START/PAUSE/RESUME/STOP state machine (with the
/// paper's out-of-sync error codes), callback-table semantics, capability
/// masks, and the dispatch fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "collector/names.hpp"
#include "collector/registry.hpp"

namespace {

using namespace orca::collector;

std::atomic<int> g_calls{0};
void counting_callback(OMP_COLLECTORAPI_EVENT) { g_calls.fetch_add(1); }
void other_callback(OMP_COLLECTORAPI_EVENT) {}

TEST(RegistryLifecycle, StartStopSequencing) {
  Registry reg;
  EXPECT_FALSE(reg.initialized());
  EXPECT_EQ(reg.start(), OMP_ERRCODE_OK);
  EXPECT_TRUE(reg.initialized());
  // "If two requests for initialization are made without a stop request
  // in-between, an out of sync error code is returned" (paper IV-B).
  EXPECT_EQ(reg.start(), OMP_ERRCODE_SEQUENCE_ERR);
  EXPECT_EQ(reg.stop(), OMP_ERRCODE_OK);
  EXPECT_FALSE(reg.initialized());
  EXPECT_EQ(reg.stop(), OMP_ERRCODE_SEQUENCE_ERR);
  // START works again after a STOP.
  EXPECT_EQ(reg.start(), OMP_ERRCODE_OK);
}

TEST(RegistryLifecycle, PauseResumeSequencing) {
  Registry reg;
  EXPECT_EQ(reg.pause(), OMP_ERRCODE_SEQUENCE_ERR);   // before START
  EXPECT_EQ(reg.resume(), OMP_ERRCODE_SEQUENCE_ERR);  // before START
  reg.start();
  EXPECT_EQ(reg.resume(), OMP_ERRCODE_SEQUENCE_ERR);  // not paused
  EXPECT_EQ(reg.pause(), OMP_ERRCODE_OK);
  EXPECT_TRUE(reg.paused());
  EXPECT_EQ(reg.pause(), OMP_ERRCODE_SEQUENCE_ERR);   // already paused
  EXPECT_EQ(reg.resume(), OMP_ERRCODE_OK);
  EXPECT_FALSE(reg.paused());
}

TEST(RegistryLifecycle, StopClearsPauseAndCallbacks) {
  Registry reg;
  reg.start();
  reg.register_callback(OMP_EVENT_FORK, &counting_callback);
  reg.pause();
  reg.stop();
  EXPECT_FALSE(reg.paused());
  EXPECT_EQ(reg.callback(OMP_EVENT_FORK), nullptr);
  // Fresh START begins from a clean table.
  reg.start();
  g_calls = 0;
  reg.fire(OMP_EVENT_FORK);
  EXPECT_EQ(g_calls.load(), 0);
}

TEST(RegistryCallbacks, RegisterRequiresStart) {
  Registry reg;
  EXPECT_EQ(reg.register_callback(OMP_EVENT_FORK, &counting_callback),
            OMP_ERRCODE_SEQUENCE_ERR);
  reg.start();
  EXPECT_EQ(reg.register_callback(OMP_EVENT_FORK, &counting_callback),
            OMP_ERRCODE_OK);
  EXPECT_EQ(reg.callback(OMP_EVENT_FORK), &counting_callback);
}

TEST(RegistryCallbacks, InvalidArguments) {
  Registry reg;
  reg.start();
  EXPECT_EQ(reg.register_callback(OMP_EVENT_FORK, nullptr),
            OMP_ERRCODE_ERROR);
  EXPECT_EQ(reg.register_callback(static_cast<OMP_COLLECTORAPI_EVENT>(0),
                                  &counting_callback),
            OMP_ERRCODE_ERROR);
  EXPECT_EQ(reg.register_callback(OMP_EVENT_LAST, &counting_callback),
            OMP_ERRCODE_ERROR);
  EXPECT_EQ(reg.unregister_callback(static_cast<OMP_COLLECTORAPI_EVENT>(-1)),
            OMP_ERRCODE_ERROR);
}

TEST(RegistryCallbacks, UnregisterIsIdempotent) {
  Registry reg;
  reg.start();
  EXPECT_EQ(reg.unregister_callback(OMP_EVENT_JOIN), OMP_ERRCODE_OK);
  reg.register_callback(OMP_EVENT_JOIN, &counting_callback);
  EXPECT_EQ(reg.unregister_callback(OMP_EVENT_JOIN), OMP_ERRCODE_OK);
  EXPECT_EQ(reg.callback(OMP_EVENT_JOIN), nullptr);
}

TEST(RegistryCapabilities, AtomicEventsUnsupportedByDefault) {
  // OpenUH did not implement atomic wait events (paper IV-C7).
  Registry reg;  // openuh_default capabilities
  reg.start();
  EXPECT_EQ(reg.register_callback(OMP_EVENT_THR_BEGIN_ATWT,
                                  &counting_callback),
            OMP_ERRCODE_UNSUPPORTED);
  EXPECT_EQ(reg.register_callback(OMP_EVENT_THR_END_ATWT, &counting_callback),
            OMP_ERRCODE_UNSUPPORTED);
  // Everything else is available.
  for (int e = 1; e < OMP_EVENT_LAST; ++e) {
    if (e == OMP_EVENT_THR_BEGIN_ATWT || e == OMP_EVENT_THR_END_ATWT) continue;
    EXPECT_EQ(reg.register_callback(static_cast<OMP_COLLECTORAPI_EVENT>(e),
                                    &counting_callback),
              OMP_ERRCODE_OK)
        << to_string(static_cast<OMP_COLLECTORAPI_EVENT>(e));
  }
}

TEST(RegistryCapabilities, AllCapsEnableAtomicEvents) {
  Registry reg(EventCapabilities::all());
  reg.start();
  EXPECT_EQ(reg.register_callback(OMP_EVENT_THR_BEGIN_ATWT,
                                  &counting_callback),
            OMP_ERRCODE_OK);
}

TEST(RegistryDispatch, FiresOnlyWhenArmed) {
  Registry reg;
  g_calls = 0;

  reg.fire(OMP_EVENT_FORK);  // not started, no callback
  EXPECT_EQ(g_calls.load(), 0);

  reg.start();
  reg.fire(OMP_EVENT_FORK);  // no callback registered
  EXPECT_EQ(g_calls.load(), 0);

  reg.register_callback(OMP_EVENT_FORK, &counting_callback);
  EXPECT_TRUE(reg.armed(OMP_EVENT_FORK));
  reg.fire(OMP_EVENT_FORK);
  EXPECT_EQ(g_calls.load(), 1);

  reg.pause();
  EXPECT_FALSE(reg.armed(OMP_EVENT_FORK));
  reg.fire(OMP_EVENT_FORK);  // paused: suppressed
  EXPECT_EQ(g_calls.load(), 1);

  reg.resume();
  reg.fire(OMP_EVENT_FORK);
  EXPECT_EQ(g_calls.load(), 2);

  reg.fire(OMP_EVENT_JOIN);  // different, unregistered event
  EXPECT_EQ(g_calls.load(), 2);
}

TEST(RegistryDispatch, InvalidEventValuesAreSafe) {
  Registry reg;
  reg.start();
  reg.register_callback(OMP_EVENT_FORK, &counting_callback);
  g_calls = 0;
  reg.fire(static_cast<OMP_COLLECTORAPI_EVENT>(0));
  reg.fire(static_cast<OMP_COLLECTORAPI_EVENT>(-5));
  reg.fire(OMP_EVENT_LAST);
  EXPECT_EQ(g_calls.load(), 0);
}

TEST(RegistryConcurrency, RacingRegistrationsNeverTear) {
  // Paper IV-C: per-entry locks guard "multiple threads try[ing] to
  // register the same event with different callbacks". The table must
  // always hold one of the two callbacks, never garbage.
  Registry reg;
  reg.start();
  std::atomic<bool> stop{false};
  std::thread a([&] {
    while (!stop.load()) {
      reg.register_callback(OMP_EVENT_FORK, &counting_callback);
    }
  });
  std::thread b([&] {
    while (!stop.load()) {
      reg.register_callback(OMP_EVENT_FORK, &other_callback);
    }
  });
  for (int i = 0; i < 100000; ++i) {
    const OMP_COLLECTORAPI_CALLBACK cb = reg.callback(OMP_EVENT_FORK);
    ASSERT_TRUE(cb == &counting_callback || cb == &other_callback ||
                cb == nullptr);
  }
  stop = true;
  a.join();
  b.join();
}

TEST(Names, RoundTripStringsAndPairs) {
  EXPECT_EQ(to_string(OMP_REQ_START), "OMP_REQ_START");
  EXPECT_EQ(to_string(OMP_ERRCODE_SEQUENCE_ERR), "OMP_ERRCODE_SEQUENCE_ERR");
  EXPECT_EQ(to_string(OMP_EVENT_THR_BEGIN_LKWT), "OMP_EVENT_THR_BEGIN_LKWT");
  EXPECT_EQ(to_string(THR_REDUC_STATE), "THR_REDUC_STATE");
  EXPECT_EQ(to_string(static_cast<OMP_COLLECTORAPI_EVENT>(999)), "?");

  EXPECT_TRUE(state_has_wait_id(THR_IBAR_STATE));
  EXPECT_TRUE(state_has_wait_id(THR_LKWT_STATE));
  EXPECT_FALSE(state_has_wait_id(THR_WORK_STATE));

  EXPECT_TRUE(is_begin_event(OMP_EVENT_FORK));
  EXPECT_FALSE(is_begin_event(OMP_EVENT_JOIN));
  EXPECT_EQ(matching_end(OMP_EVENT_FORK), OMP_EVENT_JOIN);
  EXPECT_EQ(matching_end(OMP_EVENT_THR_BEGIN_SINGLE),
            OMP_EVENT_THR_END_SINGLE);
  EXPECT_EQ(matching_end(OMP_EVENT_JOIN), OMP_EVENT_LAST);

  // Every begin event has a distinct matching end.
  for (int e = 1; e < OMP_EVENT_LAST; ++e) {
    const auto event = static_cast<OMP_COLLECTORAPI_EVENT>(e);
    if (is_begin_event(event)) {
      EXPECT_NE(matching_end(event), OMP_EVENT_LAST) << to_string(event);
    }
  }
}

}  // namespace
