/// Dispatcher tests: request buffers processed against fake runtime
/// providers, queue routing, and error paths — all without a live thread
/// team (the inversion that makes the sanctioned-interface logic testable
/// in isolation).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "collector/dispatch.hpp"
#include "collector/message.hpp"

namespace {

using namespace orca::collector;

void noop_callback(OMP_COLLECTORAPI_EVENT) {}

/// Scriptable provider state.
struct FakeRuntime {
  OMP_COLLECTOR_API_THR_STATE state = THR_SERIAL_STATE;
  unsigned long wait_id = 0;
  unsigned long current_id = 0;
  unsigned long parent_id = 0;
  bool in_region = false;
  std::size_t slot = 0;
};

Providers providers_for(FakeRuntime& rt) {
  Providers p;
  p.state = [](void* ctx, unsigned long* wait_id) {
    auto& fake = *static_cast<FakeRuntime*>(ctx);
    *wait_id = fake.wait_id;
    return fake.state;
  };
  p.current_prid = [](void* ctx, unsigned long* id) {
    auto& fake = *static_cast<FakeRuntime*>(ctx);
    if (!fake.in_region) {
      *id = 0;
      return OMP_ERRCODE_SEQUENCE_ERR;
    }
    *id = fake.current_id;
    return OMP_ERRCODE_OK;
  };
  p.parent_prid = [](void* ctx, unsigned long* id) {
    auto& fake = *static_cast<FakeRuntime*>(ctx);
    if (!fake.in_region) {
      *id = 0;
      return OMP_ERRCODE_SEQUENCE_ERR;
    }
    *id = fake.parent_id;
    return OMP_ERRCODE_OK;
  };
  p.queue_slot = [](void* ctx) {
    return static_cast<FakeRuntime*>(ctx)->slot;
  };
  p.ctx = &rt;
  return p;
}

struct DispatchFixture : ::testing::Test {
  Registry registry;
  RequestQueues queues{8};
  FakeRuntime fake;

  int process(MessageBuilder& builder) {
    const Providers p = providers_for(fake);
    return process_messages(registry, queues, p, builder.buffer());
  }
};

TEST_F(DispatchFixture, NullBufferRejected) {
  const Providers p = providers_for(fake);
  EXPECT_EQ(process_messages(registry, queues, p, nullptr), -1);
}

TEST_F(DispatchFixture, LifecycleRequestsHandledInline) {
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add(OMP_REQ_PAUSE);
  msg.add(OMP_REQ_RESUME);
  msg.add(OMP_REQ_STOP);
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(2), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(3), OMP_ERRCODE_OK);
  EXPECT_FALSE(registry.initialized());
}

TEST_F(DispatchFixture, StateQueryAnyTimeWithWaitId) {
  // State queries work even before START (paper IV-D).
  fake.state = THR_LKWT_STATE;
  fake.wait_id = 42;
  MessageBuilder msg;
  msg.add_state_query();
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);

  int state = 0;
  unsigned long wait_id = 0;
  ASSERT_TRUE(msg.reply_value(0, &state));
  ASSERT_TRUE(msg.reply_value(0, &wait_id, sizeof(int)));
  EXPECT_EQ(state, THR_LKWT_STATE);
  EXPECT_EQ(wait_id, 42ul);
  EXPECT_EQ(msg.reply_size(0),
            static_cast<int>(sizeof(int) + sizeof(unsigned long)));
}

TEST_F(DispatchFixture, NonWaitStateOmitsWaitId) {
  fake.state = THR_WORK_STATE;
  MessageBuilder msg;
  msg.add_state_query();
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.reply_size(0), static_cast<int>(sizeof(int)));
}

TEST_F(DispatchFixture, RegionIdQueries) {
  fake.in_region = true;
  fake.current_id = 7;
  fake.parent_id = 3;
  MessageBuilder msg;
  msg.add_id_query(OMP_REQ_CURRENT_PRID);
  msg.add_id_query(OMP_REQ_PARENT_PRID);
  ASSERT_EQ(process(msg), 0);
  unsigned long current = 0;
  unsigned long parent = 0;
  ASSERT_TRUE(msg.reply_value(0, &current));
  ASSERT_TRUE(msg.reply_value(1, &parent));
  EXPECT_EQ(current, 7ul);
  EXPECT_EQ(parent, 3ul);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_OK);
}

TEST_F(DispatchFixture, OutOfRegionIdQueryIsSequenceError) {
  fake.in_region = false;
  MessageBuilder msg;
  msg.add_id_query(OMP_REQ_CURRENT_PRID);
  ASSERT_EQ(process(msg), 0);
  unsigned long id = 99;
  ASSERT_TRUE(msg.reply_value(0, &id));
  EXPECT_EQ(id, 0ul);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_SEQUENCE_ERR);
}

TEST_F(DispatchFixture, RegisterRoutedThroughQueueAndApplied) {
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_register(OMP_EVENT_FORK, &noop_callback);
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_OK);
  EXPECT_EQ(registry.callback(OMP_EVENT_FORK), &noop_callback);
  // Queue fully drained.
  EXPECT_EQ(queues.depth(fake.slot), 0u);
}

TEST_F(DispatchFixture, UnknownRequestCode) {
  MessageBuilder msg;
  msg.add(static_cast<OMP_COLLECTORAPI_REQUEST>(77));
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_UNKNOWN);
}

TEST_F(DispatchFixture, TruncatedRegisterPayload) {
  MessageBuilder msg;
  msg.add(OMP_REQ_REGISTER);  // no payload at all
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_MEM_TOO_SMALL);
}

TEST_F(DispatchFixture, MixedBufferProcessesEveryRecord) {
  fake.in_region = true;
  fake.current_id = 11;
  MessageBuilder msg;
  msg.add(OMP_REQ_START);
  msg.add_register(OMP_EVENT_FORK, &noop_callback);
  msg.add_state_query();
  msg.add_id_query(OMP_REQ_CURRENT_PRID);
  msg.add(static_cast<OMP_COLLECTORAPI_REQUEST>(123));
  ASSERT_EQ(process(msg), 0);
  EXPECT_EQ(msg.errcode(0), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(1), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(2), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(3), OMP_ERRCODE_OK);
  EXPECT_EQ(msg.errcode(4), OMP_ERRCODE_UNKNOWN);
}

class QueuePolicyTest : public ::testing::TestWithParam<QueuePolicy> {};

TEST_P(QueuePolicyTest, PushAndDrainFifo) {
  RequestQueues queues(4, GetParam());
  std::vector<std::size_t> drained;
  const std::vector<PendingRequest> batch = {PendingRequest{10},
                                             PendingRequest{20},
                                             PendingRequest{30}};
  queues.push_and_drain(1, batch, [&](const PendingRequest& req) {
    drained.push_back(req.record_offset);
  });
  EXPECT_EQ(drained, (std::vector<std::size_t>{10, 20, 30}));
  EXPECT_EQ(queues.depth(1), 0u);
}

TEST_P(QueuePolicyTest, SlotClampAndConcurrentDrains) {
  RequestQueues queues(2, GetParam());
  std::atomic<int> total{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<PendingRequest> batch = {PendingRequest{0}};
      for (int i = 0; i < 2000; ++i) {
        queues.push_and_drain(static_cast<std::size_t>(t),  // may exceed slots
                              batch,
                              [&](const PendingRequest&) { total.fetch_add(1); });
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(total.load(), 8000);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, QueuePolicyTest,
                         ::testing::Values(QueuePolicy::kPerThread,
                                           QueuePolicy::kGlobal),
                         [](const ::testing::TestParamInfo<QueuePolicy>&
                                param_info) {
                           return param_info.param == QueuePolicy::kPerThread
                                      ? "PerThread"
                                      : "Global";
                         });

TEST(QueuePolicySizes, GlobalPolicyHasOneQueue) {
  RequestQueues per_thread(8, QueuePolicy::kPerThread);
  RequestQueues global(8, QueuePolicy::kGlobal);
  EXPECT_EQ(per_thread.slot_count(), 8u);
  EXPECT_EQ(global.slot_count(), 1u);
}

}  // namespace
