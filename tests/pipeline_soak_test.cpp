/// Pipeline soak under the signal-storm harness: a 1 kHz SIGPROF sampling
/// collector hammers the async-signal-safe query fast path while producer
/// threads stream events through a 4-stage chain
/// (buffer -> quantize -> map -> aggregate) and a drainer empties the
/// buffer concurrently. The suite asserts what a soak is for:
///
///   * no loss-counter lies — every stage's books balance
///     (accepted == emitted + filtered + dropped + held) and the items
///     reaching the bounded aggregate are all accounted for in its
///     sketches;
///   * constant memory — RSS measured after warmup does not grow over the
///     soak window (bounded buffer, bounded aggregate keys);
///   * the sampler's per-region histogram assembly (region_report) works
///     over the samples the storm produced.
///
/// Runs ~3s by default so the tier-1 suite stays fast; set
/// ORCA_SOAK_SECONDS=60 for the full constant-memory soak. Must stay
/// clean under TSan (the sanitizer presets run this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "collector/api.h"
#include "epcc/syncbench.hpp"
#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stage.hpp"
#include "runtime/config.hpp"
#include "runtime/runtime.hpp"
#include "tool/sampling_collector.hpp"

namespace {

using orca::pipeline::AggregateRow;
using orca::pipeline::Event;
using orca::pipeline::Overflow;
using orca::pipeline::Pipeline;
using orca::pipeline::StagePtr;
using orca::pipeline::StageStats;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::SamplingCollector;
using orca::tool::SamplingOptions;

/// Resident set in bytes from /proc/self/statm (0 if unreadable —
/// the memory assertion is skipped then).
std::size_t resident_bytes() {
  std::FILE* fh = std::fopen("/proc/self/statm", "r");
  if (fh == nullptr) return 0;
  unsigned long size = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(fh, "%lu %lu", &size, &resident);
  std::fclose(fh);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) * 4096u;
}

void expect_honest(const StageStats& s) {
  EXPECT_EQ(s.accepted, s.emitted + s.filtered + s.dropped + s.held)
      << "stage " << s.name << " lies about its accounting";
}

TEST(PipelineSoak, FourStageChainUnderKilohertzSignalStorm) {
  const long seconds = RuntimeConfig::env_long(
      "ORCA_SOAK_SECONDS", 3, 1, "soak duration in seconds >= 1");

  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  SamplingCollector& sc = SamplingCollector::instance();
  sc.stop();  // in case an earlier suite in this binary left it armed
  sc.clear();
  SamplingOptions opts;
  opts.hz = 1000;
  ASSERT_TRUE(sc.start(&__omp_collector_api, opts));

  // The 4-stage chain, downstream-first. The aggregate is bounded (64
  // region keys + overflow) and the buffer is bounded (4096 slots,
  // drop-oldest) — between them the whole assembly is constant-memory no
  // matter how long the soak runs.
  auto agg = orca::pipeline::aggregate<Event>(
      "by-tid", [](const Event& e) { return std::uint64_t(e.tid); },
      [](const Event& e) { return e.ns % 1024; }, /*max_keys=*/64);
  StagePtr<Event> chain = orca::pipeline::map<Event>(
      "stamp",
      [](const Event& e) {
        Event out = e;
        out.ns += 1;
        return out;
      },
      StagePtr<Event>(agg));
  chain = orca::pipeline::quantize<Event>("q4", 4, std::move(chain));
  auto buf = orca::pipeline::buffer<Event>("buf", 4096, Overflow::kDropOldest,
                                           std::move(chain));
  Pipeline<Event> pipe{StagePtr<Event>(buf)};

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  const auto warmup =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(1000 * seconds / 4);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::size_t> rss_after_warmup{0};

  // Producers: stream synthetic decoded events through the chain flat out.
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&rt, &pipe, &done, &pushed, t] {
      // Bind this thread to the test runtime: SIGPROF lands on whichever
      // thread is running, and an unbound thread would make the handler's
      // Runtime::current() lazily construct the global runtime — from
      // signal context.
      Runtime::make_current(&rt);
      Event e;
      e.tid = t;
      e.event = OMP_EVENT_FORK;
      std::uint64_t n = 0;
      while (!done.load(std::memory_order_acquire)) {
        e.seq = n;
        e.ns = n++;
        pipe.push(e);
      }
      pushed.fetch_add(n, std::memory_order_relaxed);
    });
  }

  // Drainer: empties the buffer concurrently with the pushers, so the
  // downstream stages run on a different thread than the producers (the
  // TSan-interesting schedule).
  std::thread drainer([&rt, &buf, &done, &warmup, &rss_after_warmup] {
    Runtime::make_current(&rt);
    bool warmed = false;
    while (!done.load(std::memory_order_acquire)) {
      if (!warmed && std::chrono::steady_clock::now() >= warmup) {
        warmed = true;
        rss_after_warmup.store(resident_bytes(), std::memory_order_relaxed);
      }
      if (buf->drain(512) == 0) std::this_thread::yield();
    }
  });

  // Meanwhile the runtime does real parallel work on the main thread, so
  // SIGPROF ticks land while teams fork/join and the handler's fast-path
  // queries race the pipeline's stage traffic.
  orca::epcc::Options bopts;
  bopts.num_threads = 4;
  bopts.outer_reps = 2;
  bopts.inner_reps = 64;
  bopts.delay_length = 200;
  orca::epcc::SyncBench bench(bopts);
  const orca::epcc::Directive cycle[] = {orca::epcc::Directive::kParallel,
                                         orca::epcc::Directive::kBarrier,
                                         orca::epcc::Directive::kCritical};
  std::size_t round = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto r = bench.measure(cycle[round++ % 3]);
    EXPECT_GE(r.total_seconds, 0.0);
  }

  done.store(true, std::memory_order_release);
  for (auto& th : producers) th.join();
  drainer.join();

  const std::size_t rss_end = resident_bytes();
  sc.stop();
  pipe.flush();

  // --- No loss-counter lies. -------------------------------------------
  const std::vector<StageStats> stats = pipe.stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t dropped = 0;
  for (const StageStats& s : stats) {
    expect_honest(s);
    dropped += s.dropped;
  }
  // Everything the producers pushed entered the head stage, and after the
  // final flush nothing is silently parked.
  EXPECT_EQ(stats[0].accepted, pushed.load());
  for (const StageStats& s : stats) EXPECT_EQ(s.held, 0u) << s.name;
  // Only the bounded buffer sheds; the aggregate absorbs (overflow is
  // aggregation into the catch-all row, not loss).
  EXPECT_EQ(dropped, stats[0].dropped);
  // Items reaching the aggregate are all accounted for in its sketches.
  std::uint64_t sketched = 0;
  for (const AggregateRow& row : agg->snapshot()) sketched += row.sketch.count;
  EXPECT_EQ(sketched, agg->stats().accepted);
  EXPECT_GT(sketched, 0u);

  // --- Constant memory. -------------------------------------------------
  const std::size_t rss_mid = rss_after_warmup.load();
  if (rss_mid != 0 && rss_end != 0) {
    // Bounded stages: RSS after warmup must not creep. Allow generous
    // allocator/sampler slack (lanes are preallocated at start()).
    EXPECT_LE(rss_end, rss_mid + 16u * 1024 * 1024)
        << "RSS grew from " << rss_mid << " to " << rss_end
        << " over the soak window";
  }

  // --- Per-region histograms from the storm's samples. ------------------
  const auto sstats = sc.stats();
  EXPECT_EQ(sstats.api_failures, 0u);
  const std::vector<AggregateRow> regions = sc.region_report(64);
  if (sstats.samples > 0) {
    ASSERT_FALSE(regions.empty());
    std::uint64_t counted = 0;
    for (const AggregateRow& row : regions) counted += row.sketch.count;
    EXPECT_EQ(counted, sstats.samples);
    const std::string rendered = sc.render_region_report(64);
    EXPECT_NE(rendered.find("region"), std::string::npos);
  }

  sc.clear();
  Runtime::make_current(nullptr);
}

}  // namespace
