/// Randomized stress tests: long sequences of mixed constructs with
/// varying team sizes, checked against deterministic serial replays.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"

namespace {

using orca::SplitMix64;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

/// One randomized "program": regions of random size running random
/// construct mixes, accumulating into a shared checksum whose value is
/// independent of scheduling.
long run_program(Runtime& rt, std::uint64_t seed, int rounds) {
  SplitMix64 rng(seed);
  std::atomic<long> checksum{0};
  for (int round = 0; round < rounds; ++round) {
    const int team = 1 + static_cast<int>(rng.next() % 4);
    const int flavour = static_cast<int>(rng.next() % 5);
    const long token = static_cast<long>(rng.next() % 1000);
    orca::omp::parallel(
        [&](int) {
          switch (flavour) {
            case 0:  // static loop
              orca::omp::for_static(0, 49, 1, [&](long long i) {
                checksum.fetch_add(token + i);
              });
              break;
            case 1:  // dynamic loop
              orca::omp::for_dynamic(0, 49, 1, [&](long long i) {
                checksum.fetch_add(token + 2 * i);
              });
              break;
            case 2:  // single + barrier
              orca::omp::single([&] { checksum.fetch_add(token * 3); });
              orca::omp::barrier();
              break;
            case 3:  // critical per thread
              orca::omp::critical([&] { checksum.fetch_add(token); });
              break;
            default:  // tasks from a single block
              orca::omp::single([&] {
                for (int t = 0; t < 5; ++t) {
                  orca::omp::task([&checksum, token, t] {
                    checksum.fetch_add(token + t);
                  });
                }
                orca::omp::taskwait();
              });
              break;
          }
        },
        team);
  }
  (void)rt;
  return checksum.load();
}

TEST(Stress, MixedConstructsDeterministicAcrossReplays) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  const long first = run_program(rt, 0xDEAD, 150);
  const long second = run_program(rt, 0xDEAD, 150);
  EXPECT_EQ(first, second);
  Runtime::make_current(nullptr);

  // Same program on a fresh runtime with a different pool: same value.
  RuntimeConfig other;
  other.num_threads = 2;
  Runtime rt2(other);
  Runtime::make_current(&rt2);
  EXPECT_EQ(run_program(rt2, 0xDEAD, 150), first);
  Runtime::make_current(nullptr);
}

TEST(Stress, SurvivesUnderAttachedCollector) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  const long bare = run_program(rt, 0xBEEF, 100);

  auto& tool = orca::tool::PrototypeCollector::instance();
  tool.reset();
  ASSERT_TRUE(tool.attach({}));
  const long observed = run_program(rt, 0xBEEF, 100);
  rt.quiesce();
  tool.detach();

  EXPECT_EQ(observed, bare);  // observation must not perturb results
  EXPECT_GT(tool.callback_invocations(), 0u);
  Runtime::make_current(nullptr);
}

TEST(Stress, RepeatedAttachDetachCycles) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  auto& tool = orca::tool::PrototypeCollector::instance();
  for (int cycle = 0; cycle < 25; ++cycle) {
    tool.reset();
    ASSERT_TRUE(tool.attach({})) << "cycle " << cycle;
    orca::omp::parallel([](int) {}, 2);
    rt.quiesce();
    tool.detach();
  }
  Runtime::make_current(nullptr);
}

TEST(Stress, ManyShortLivedRuntimes) {
  // Creating and destroying runtimes (each with its worker pool) must not
  // leak threads or deadlock — MiniMPI churns runtimes like this.
  for (int i = 0; i < 30; ++i) {
    RuntimeConfig cfg;
    cfg.num_threads = 1 + (i % 4);
    Runtime rt(cfg);
    Runtime::make_current(&rt);
    std::atomic<int> hits{0};
    orca::omp::parallel([&](int) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), cfg.num_threads);
    Runtime::make_current(nullptr);
  }
}

}  // namespace
