/// Registration-churn stress for the epoch-published callback table
/// (registry.hpp): emitters fire through leased EmitterCache nodes and the
/// ambient compat path while other threads storm
/// REGISTER/UNREGISTER/PAUSE/RESUME, with FaultInjector schedule
/// perturbation armed at the generation publish/retire seams. Run under
/// the tsan preset this suite must be clean: the emission fast path takes
/// no lock, so every ordering claim in the hazard-pin protocol is
/// exercised here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "collector/registry.hpp"
#include "testing/fault_injection.hpp"

namespace {

using orca::collector::EmitterCache;
using orca::collector::EventCapabilities;
using orca::collector::Registry;
using orca::testing::FaultInjector;
using orca::testing::FaultPoint;

std::atomic<std::uint64_t> g_hits{0};
void counting_callback(OMP_COLLECTORAPI_EVENT) {
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

/// Spin flag pair for the pinned-generation test.
std::atomic<bool> g_in_callback{false};
std::atomic<bool> g_release_callback{false};
void blocking_callback(OMP_COLLECTORAPI_EVENT) {
  g_in_callback.store(true, std::memory_order_release);
  while (!g_release_callback.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

/// Phase 1: emitters (cached + ambient) race a registration/lifecycle
/// storm. The test asserts termination, full reclamation afterwards, and —
/// under tsan — the absence of any data race on the lock-free fast path.
TEST(CollectorChurn, EmittersSurviveRegistrationStorm) {
  Registry registry(EventCapabilities::all());
  ASSERT_EQ(registry.start(), OMP_ERRCODE_OK);
  g_hits.store(0);

  // Perturb every armed seam (1-in-4 yield) so publishes/retires interleave
  // adversarially with pins instead of winning every race by timing.
  FaultInjector& inj = FaultInjector::instance();
  inj.perturb(0xC0FFEE, 4);
  inj.arm();

  constexpr int kCachedEmitters = 4;
  constexpr int kAmbientEmitters = 2;
  constexpr int kChurners = 3;
  constexpr int kFires = 20000;
  constexpr int kChurnRounds = 2000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kCachedEmitters + kAmbientEmitters + kChurners);

  for (int i = 0; i < kCachedEmitters; ++i) {
    threads.emplace_back([&registry] {
      EmitterCache* cache = registry.acquire_emitter();
      for (int n = 0; n < kFires; ++n) {
        registry.fire(OMP_EVENT_FORK, cache);
        registry.fire(ORCA_EVENT_TASK_BEGIN, cache);
        // Natural quiescent point every few fires, as the runtime's
        // barriers/dispatch entries provide: re-pin so old generations
        // never stay captive for the storm's whole lifetime.
        if (n % 64 == 0) registry.refresh(cache);
      }
      registry.release_emitter(cache);
    });
  }
  for (int i = 0; i < kAmbientEmitters; ++i) {
    threads.emplace_back([&registry] {
      for (int n = 0; n < kFires; ++n) {
        registry.fire(OMP_EVENT_JOIN);  // compat path: ambient hazard slot
      }
    });
  }
  for (int i = 0; i < kChurners; ++i) {
    threads.emplace_back([&registry, &stop, i] {
      const OMP_COLLECTORAPI_EVENT mine =
          i % 2 == 0 ? OMP_EVENT_FORK : OMP_EVENT_JOIN;
      for (int n = 0; n < kChurnRounds && !stop.load(); ++n) {
        (void)registry.register_callback(mine, &counting_callback);
        (void)registry.register_callback(ORCA_EVENT_TASK_BEGIN,
                                         &counting_callback);
        if (n % 8 == 3) (void)registry.pause();
        if (n % 8 == 5) (void)registry.resume();
        (void)registry.unregister_callback(mine);
        (void)registry.unregister_callback(ORCA_EVENT_TASK_BEGIN);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);

  EXPECT_GT(inj.hits(FaultPoint::kGenerationPublish), 0u);
  EXPECT_GT(inj.hits(FaultPoint::kGenerationRetire), 0u);
  inj.disarm();

  // Lifecycle may be left paused by the storm; resume is then legal.
  (void)registry.resume();
  EXPECT_EQ(registry.stop(), OMP_ERRCODE_OK);

  // Every emitter released its lease, so the grace period must complete
  // and reclaim every superseded generation.
  registry.synchronize();
  EXPECT_EQ(registry.retired_count(), 0u);
}

/// Phase 2: deterministic grace-period contract — after UNREGISTER and a
/// completed synchronize(), no further fire may invoke the callback, on
/// either the cached or the ambient path.
TEST(CollectorChurn, NoCallbackAfterUnregisterGracePeriod) {
  Registry registry(EventCapabilities::all());
  ASSERT_EQ(registry.start(), OMP_ERRCODE_OK);
  ASSERT_EQ(registry.register_callback(OMP_EVENT_FORK, &counting_callback),
            OMP_ERRCODE_OK);
  g_hits.store(0);

  EmitterCache* cache = registry.acquire_emitter();
  registry.fire(OMP_EVENT_FORK, cache);
  EXPECT_EQ(g_hits.load(), 1u);

  ASSERT_EQ(registry.unregister_callback(OMP_EVENT_FORK), OMP_ERRCODE_OK);
  // The fire above left this emitter pinning the pre-unregister
  // generation; a quiescent-point refresh moves the pin forward so the
  // grace period can complete (exactly what barriers/fork entry do in the
  // runtime).
  registry.refresh(cache);
  registry.synchronize();
  EXPECT_EQ(registry.retired_count(), 0u);

  const std::uint64_t before = g_hits.load();
  registry.fire(OMP_EVENT_FORK, cache);  // cached fast path
  registry.fire(OMP_EVENT_FORK);         // ambient compat path
  EXPECT_EQ(g_hits.load(), before) << "callback fired after grace period";

  registry.release_emitter(cache);
  EXPECT_EQ(registry.stop(), OMP_ERRCODE_OK);
}

/// Phase 3: a generation stays alive while a callback resolved from it is
/// still running, no matter how many newer generations churn past it.
/// Under the asan preset a premature free is a hard failure here.
TEST(CollectorChurn, PinnedGenerationOutlivesChurn) {
  Registry registry(EventCapabilities::all());
  ASSERT_EQ(registry.start(), OMP_ERRCODE_OK);
  ASSERT_EQ(registry.register_callback(OMP_EVENT_FORK, &blocking_callback),
            OMP_ERRCODE_OK);
  g_in_callback.store(false);
  g_release_callback.store(false);

  std::thread emitter([&registry] {
    EmitterCache* cache = registry.acquire_emitter();
    registry.fire(OMP_EVENT_FORK, cache);  // blocks inside the callback
    registry.release_emitter(cache);
  });

  while (!g_in_callback.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The emitter is parked inside the callback, pinning its generation.
  // Churn a stream of newer generations past it: none of the superseded
  // ones the pin covers may be freed.
  for (int n = 0; n < 100; ++n) {
    ASSERT_EQ(registry.register_callback(OMP_EVENT_JOIN, &counting_callback),
              OMP_ERRCODE_OK);
    ASSERT_EQ(registry.unregister_callback(OMP_EVENT_JOIN), OMP_ERRCODE_OK);
  }
  EXPECT_GE(registry.retired_count(), 1u)
      << "pinned generation was reclaimed while its callback ran";

  g_release_callback.store(true, std::memory_order_release);
  emitter.join();

  registry.synchronize();
  EXPECT_EQ(registry.retired_count(), 0u);
  EXPECT_EQ(registry.stop(), OMP_ERRCODE_OK);
}

}  // namespace
