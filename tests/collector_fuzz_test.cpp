/// Protocol-robustness fuzzing: structurally valid but semantically random
/// request buffers must never crash the dispatcher, and every record must
/// come back with a sane error code. (The wire format is length-prefixed
/// records with a zero terminator; a buffer with a corrupt size chain is
/// the runtime's to *reject*, which is also exercised here.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "collector/message.hpp"
#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::SplitMix64;
using orca::collector::kRecordHeaderSize;
using orca::rt::Runtime;

void fuzz_callback(OMP_COLLECTORAPI_EVENT) {}

std::atomic<std::uint64_t> g_fuzz_delivered{0};
void fuzz_counting_callback(OMP_COLLECTORAPI_EVENT) {
  g_fuzz_delivered.fetch_add(1, std::memory_order_relaxed);
}

/// Build a random-but-well-formed request buffer: N records with valid
/// sizes, random request kinds (often invalid), random payload bytes.
std::vector<char> random_buffer(SplitMix64& rng) {
  std::vector<char> bytes;
  const int records = static_cast<int>(rng.next() % 8);
  for (int r = 0; r < records; ++r) {
    const std::size_t payload = (rng.next() % 5) * 8;  // 0..32 bytes
    const std::size_t total = kRecordHeaderSize + payload;
    omp_collector_message header{};
    header.sz = static_cast<int>(total);
    // Random request kind: valid kinds, invalid kinds, and garbage.
    header.r_req = static_cast<OMP_COLLECTORAPI_REQUEST>(rng.next() % 16);
    header.r_errcode = OMP_ERRCODE_OK;
    header.r_sz = 0;
    const std::size_t offset = bytes.size();
    bytes.resize(offset + total);
    std::memcpy(bytes.data() + offset, &header, kRecordHeaderSize);
    for (std::size_t i = 0; i < payload; ++i) {
      bytes[offset + kRecordHeaderSize + i] =
          static_cast<char>(rng.next() & 0xFF);
    }
  }
  bytes.resize(bytes.size() + kRecordHeaderSize, 0);  // terminator
  return bytes;
}

TEST(CollectorFuzz, RandomRequestBuffersNeverCrash) {
  Runtime rt;
  Runtime::make_current(&rt);
  SplitMix64 rng(0xF00DF00D);
  for (int round = 0; round < 2000; ++round) {
    std::vector<char> buffer = random_buffer(rng);
    const int rc = rt.collector_api(buffer.data());
    EXPECT_TRUE(rc == 0 || rc == -1) << "round " << round;
    // Every processed record must carry a defined error code.
    orca::collector::MessageCursor cursor(buffer.data());
    while (cursor.valid() && !cursor.at_terminator()) {
      const int ec = cursor.record()->r_errcode;
      EXPECT_GE(ec, OMP_ERRCODE_OK);
      EXPECT_LE(ec, OMP_ERRCODE_MEM_TOO_SMALL);
      cursor.advance();
    }
  }
  // Leave the registry stopped regardless of what the fuzz rounds did.
  orca::collector::MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  rt.collector_api(stop.buffer());
  Runtime::make_current(nullptr);
}

TEST(CollectorFuzz, RandomRegisterPayloadsAreContained) {
  // REGISTER records with random event values and random (non-null,
  // never-invoked-unless-valid) callback pointers: the registry must
  // accept only in-range events.
  Runtime rt;
  Runtime::make_current(&rt);
  orca::collector::MessageBuilder start;
  start.add(OMP_REQ_START);
  ASSERT_EQ(rt.collector_api(start.buffer()), 0);

  SplitMix64 rng(42);
  for (int round = 0; round < 500; ++round) {
    orca::collector::MessageBuilder msg;
    const int event = static_cast<int>(rng.next() % 64) - 8;
    msg.add_register(static_cast<OMP_COLLECTORAPI_EVENT>(event),
                     &fuzz_callback);
    ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
    const auto ec = msg.errcode(0);
    const bool valid_event =
        event > 0 && event != OMP_EVENT_LAST && event < ORCA_EVENT_EXT_LAST;
    if (valid_event) {
      EXPECT_TRUE(ec == OMP_ERRCODE_OK || ec == OMP_ERRCODE_UNSUPPORTED);
    } else {
      EXPECT_EQ(ec, OMP_ERRCODE_ERROR);
    }
  }
  orca::collector::MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  rt.collector_api(stop.buffer());
  Runtime::make_current(nullptr);
}

TEST(CollectorFuzz, CorruptSizeChainIsRejected) {
  Runtime rt;
  Runtime::make_current(&rt);
  // A record whose declared size is positive but smaller than the header:
  // the dispatcher must reject the whole buffer with -1.
  std::vector<char> bytes(kRecordHeaderSize * 2, 0);
  omp_collector_message header{};
  header.sz = 3;
  header.r_req = OMP_REQ_STATE;
  std::memcpy(bytes.data(), &header, kRecordHeaderSize);
  EXPECT_EQ(rt.collector_api(bytes.data()), -1);
  EXPECT_EQ(rt.collector_api(nullptr), -1);
  Runtime::make_current(nullptr);
}

TEST(CollectorFuzz, AsyncBurstsAndLifecycleInterleavingReconcile) {
  // Random event bursts from several threads racing random lifecycle
  // requests against the async delivery path: nothing may crash, deadlock,
  // or leave the counters irreconcilable. Run one round per backpressure
  // policy — each has a distinct full-ring code path.
  const orca::rt::EventBackpressure policies[] = {
      orca::rt::EventBackpressure::kDropNewest,
      orca::rt::EventBackpressure::kOverwriteOldest,
      orca::rt::EventBackpressure::kBlock,
  };
  for (const auto policy : policies) {
    g_fuzz_delivered = 0;
    orca::rt::RuntimeConfig cfg;
    cfg.num_threads = 2;
    cfg.event_delivery = orca::rt::EventDelivery::kAsync;
    cfg.event_backpressure = policy;
    cfg.event_ring_capacity = 16;  // small ring: backpressure fires often
    Runtime rt(cfg);
    Runtime::make_current(&rt);

    orca::collector::MessageBuilder start;
    start.add(OMP_REQ_START);
    ASSERT_EQ(rt.collector_api(start.buffer()), 0);
    orca::collector::MessageBuilder reg;
    reg.add_register(OMP_EVENT_FORK, &fuzz_counting_callback);
    ASSERT_EQ(rt.collector_api(reg.buffer()), 0);

    constexpr int kThreads = 4;
    constexpr int kIterations = 400;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&rt, t, policy] {
        SplitMix64 rng(0xA5A5'0000u + static_cast<std::uint64_t>(t) * 977 +
                       static_cast<std::uint64_t>(policy));
        for (int i = 0; i < kIterations; ++i) {
          const std::uint64_t roll = rng.next() % 16;
          if (roll < 12) {
            rt.registry().fire(OMP_EVENT_FORK);
          } else {
            orca::collector::MessageBuilder msg;
            switch (roll % 4) {
              case 0: msg.add(OMP_REQ_PAUSE); break;
              case 1: msg.add(OMP_REQ_RESUME); break;
              case 2: msg.add(OMP_REQ_STOP); break;
              default: msg.add(OMP_REQ_START); break;
            }
            ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    orca::collector::MessageBuilder stop;
    stop.add(OMP_REQ_STOP);
    ASSERT_EQ(rt.collector_api(stop.buffer()), 0);

    // The final STOP (whether it transitioned or hit SEQUENCE_ERR on an
    // already-stopped registry) leaves the drainer joined; everything that
    // entered a ring was either delivered or evicted — observable loss only.
    auto* dispatcher = rt.async_dispatcher();
    ASSERT_NE(dispatcher, nullptr);
    dispatcher->stop_and_join();
    const auto s = dispatcher->stats();
    EXPECT_EQ(s.submitted, s.delivered + s.overwritten);
    if (policy == orca::rt::EventBackpressure::kBlock) {
      // kBlock only sheds when a ring is closed mid-push (STOP racing a
      // producer); overwrites must never happen.
      EXPECT_EQ(s.overwritten, 0u);
    }
    Runtime::make_current(nullptr);
  }
}

TEST(CollectorFuzz, LifecycleSequencesStayConsistent) {
  // Random lifecycle request sequences: afterwards the registry must be in
  // a consistent state (pause implies initialized).
  Runtime rt;
  Runtime::make_current(&rt);
  SplitMix64 rng(7);
  for (int round = 0; round < 2000; ++round) {
    orca::collector::MessageBuilder msg;
    switch (rng.next() % 4) {
      case 0: msg.add(OMP_REQ_START); break;
      case 1: msg.add(OMP_REQ_STOP); break;
      case 2: msg.add(OMP_REQ_PAUSE); break;
      default: msg.add(OMP_REQ_RESUME); break;
    }
    ASSERT_EQ(rt.collector_api(msg.buffer()), 0);
    if (rt.registry().paused()) {
      EXPECT_TRUE(rt.registry().initialized());
    }
  }
  Runtime::make_current(nullptr);
}

}  // namespace
