/// Signal-storm stress: a 1 kHz SIGPROF sampling collector runs over the
/// EPCC syncbench workload while the handler queries the runtime through
/// the async-signal-safe fast path on every tick. The suite asserts the
/// storm never produces a malformed-buffer verdict, that samples landed,
/// and that the fast-path served counter accounts for the handler's
/// queries — and it must stay clean under TSan and ASan (the presets run
/// the whole suite), which is the real point of the exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "collector/api.h"
#include "epcc/syncbench.hpp"
#include "runtime/runtime.hpp"
#include "tool/sampling_collector.hpp"

namespace {

using orca::epcc::Directive;
using orca::epcc::SyncBench;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::SamplingCollector;
using orca::tool::SamplingOptions;

TEST(SignalStorm, KilohertzSamplingOverSyncbench) {
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  SamplingCollector& sc = SamplingCollector::instance();
  sc.stop();  // in case an earlier suite in this binary left it armed
  sc.clear();
  SamplingOptions opts;
  opts.hz = 1000;
  ASSERT_TRUE(sc.start(&__omp_collector_api, opts));

  orca::epcc::Options bopts;
  bopts.num_threads = 4;
  bopts.outer_reps = 6;
  bopts.inner_reps = 128;
  bopts.delay_length = 500;
  SyncBench bench(bopts);
  // ITIMER_PROF resolution is kernel-tick bound, so a fixed workload can
  // land under one tick on a fast machine: keep cycling the directive set
  // until the storm demonstrably happened (wall-clock capped; sanitizer
  // builds burn more CPU per round and converge faster, not slower).
  const auto limit =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const Directive cycle[] = {Directive::kParallel, Directive::kBarrier,
                             Directive::kCritical};
  std::size_t round = 0;
  while (sc.stats().samples < 20 &&
         std::chrono::steady_clock::now() < limit) {
    const auto r = bench.measure(cycle[round++ % 3]);
    EXPECT_GE(r.total_seconds, 0.0);
  }

  sc.stop();
  const auto stats = sc.stats();
  Runtime::make_current(nullptr);

  // The handler ran, its hand-built buffers were always well-formed, and
  // every stored sample maps to fast-path queries the runtime counted.
  EXPECT_GE(stats.handler_invocations, 20u);
  EXPECT_EQ(stats.api_failures, 0u);
  EXPECT_GE(stats.samples, 20u);
  // Two records (STATE + CURRENT_PRID) per handler invocation that got
  // through; drops only come from lane exhaustion, not from the query path.
  EXPECT_GE(rt.signal_queries_served(), 2 * stats.samples);
}

TEST(SignalStorm, StopIsIdempotentAndRestartable) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  Runtime rt(cfg);
  Runtime::make_current(&rt);

  SamplingCollector& sc = SamplingCollector::instance();
  sc.clear();
  ASSERT_TRUE(sc.start(&__omp_collector_api, {}));
  EXPECT_FALSE(sc.start(&__omp_collector_api, {}));  // already running
  sc.stop();
  sc.stop();  // idempotent
  ASSERT_TRUE(sc.start(&__omp_collector_api, {}));
  sc.stop();
  Runtime::make_current(nullptr);
}

}  // namespace
