/// Crash postmortem tests (docs/RESILIENCE.md): a subprocess arms
/// ORCA_CRASH_DUMP, samples via the SIGPROF collector, and dies on a real
/// SIGSEGV; the parent asserts the process terminated by that signal AND
/// left a parseable "ORCA_CRASH_DUMP v1" dump with a nonzero sample count.
/// A second case checks SIGABRT takes the same path, and a third that an
/// unarmed runtime leaves signal dispositions (and the filesystem) alone.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "collector/api.h"
#include "runtime/runtime.hpp"
#include "tool/sampling_collector.hpp"

namespace {

using orca::rt::Runtime;
using orca::rt::RuntimeConfig;
using orca::tool::SamplingCollector;
using orca::tool::SamplingOptions;

/// Child body: arm the dump, sample until at least `min_samples` landed
/// (bounded by a wall-clock cap), then die by `sig`. Never returns.
[[noreturn]] void crash_child(const std::string& dump_path, int sig,
                              std::size_t min_samples) {
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.crash_dump = dump_path;
  // Leaked on purpose: the child exits by signal; destroying a Runtime
  // forked out of a multithreaded parent is exactly what the crash path
  // must never rely on.
  auto* rt = new Runtime(cfg);
  Runtime::make_current(rt);

  SamplingOptions opts;
  opts.hz = 1000;
  if (!SamplingCollector::instance().start(&__omp_collector_api, opts)) {
    _exit(10);
  }
  volatile double burn = 0;
  const auto limit =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (SamplingCollector::instance().stats().samples < min_samples &&
         std::chrono::steady_clock::now() < limit) {
    for (int i = 0; i < 200000; ++i) burn = burn + i;
  }
  if (SamplingCollector::instance().stats().samples < min_samples) _exit(11);
  raise(sig);
  _exit(12);  // unreachable: the dump handler re-raises with SIG_DFL
}

/// Parse "key value" lines of the dump; returns value or -1 if absent.
long long dump_value(const std::string& text, const std::string& key) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + " ", 0) == 0) {
      return std::stoll(line.substr(key.size() + 1));
    }
  }
  return -1;
}

void run_crash_case(int sig) {
  const std::string dump_path =
      "crash_dump_test_sig" + std::to_string(sig) + ".dump";
  std::remove(dump_path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) crash_child(dump_path, sig, /*min_samples=*/3);

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of dying by signal";
  EXPECT_EQ(WTERMSIG(status), sig);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no dump at " << dump_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Format contract (docs/RESILIENCE.md): versioned header, the fatal
  // signal, named sections, and the end marker proving the flush was not
  // torn mid-write.
  EXPECT_EQ(text.rfind("ORCA_CRASH_DUMP v1\n", 0), 0u) << text;
  EXPECT_EQ(dump_value(text, "signal"), sig);
  EXPECT_NE(text.find("section runtime\n"), std::string::npos);
  EXPECT_NE(text.find("section sampler\n"), std::string::npos);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);

  // The headline acceptance: the postmortem preserved real samples.
  EXPECT_GE(dump_value(text, "samples"), 3);
  EXPECT_GE(dump_value(text, "handler_invocations"), 3);
  EXPECT_GE(dump_value(text, "signal_queries_served"), 1);

  std::remove(dump_path.c_str());
}

TEST(CrashDump, SigsegvFlushesParseableDumpWithSamples) {
  run_crash_case(SIGSEGV);
}

TEST(CrashDump, SigabrtTakesTheSamePostmortemPath) {
  run_crash_case(SIGABRT);
}

TEST(CrashDump, UnarmedRuntimeLeavesDispositionsAlone) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // The disposition may not be SIG_DFL to begin with (sanitizer runtimes
    // install their own SIGSEGV handler), so the contract is "unchanged",
    // not "default": snapshot before constructing the runtime and compare.
    struct sigaction before;
    if (sigaction(SIGSEGV, nullptr, &before) != 0) _exit(2);
    RuntimeConfig cfg;
    cfg.num_threads = 2;  // crash_dump empty: nothing installed
    auto* rt = new Runtime(cfg);
    Runtime::make_current(rt);
    struct sigaction after;
    if (sigaction(SIGSEGV, nullptr, &after) != 0) _exit(3);
    const bool same = before.sa_flags == after.sa_flags &&
                      ((before.sa_flags & SA_SIGINFO)
                           ? before.sa_sigaction == after.sa_sigaction
                           : before.sa_handler == after.sa_handler);
    _exit(same ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
