/// Fork/join, team shape, and collector event tests for the core runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "collector/api.h"
#include "collector/message.hpp"
#include "runtime/ompc_api.h"
#include "runtime/runtime.hpp"
#include "translate/omp.hpp"

namespace {

using orca::collector::MessageBuilder;
using orca::rt::Runtime;
using orca::rt::RuntimeConfig;

RuntimeConfig test_config(int threads) {
  RuntimeConfig cfg;
  cfg.num_threads = threads;
  return cfg;
}

TEST(Fork, RunsBodyOnAllThreads) {
  Runtime rt(test_config(4));
  Runtime::make_current(&rt);
  std::atomic<int> hits{0};
  std::vector<std::atomic<int>> per_tid(4);

  auto body = [](int, void* frame) {
    auto* state = static_cast<std::pair<std::atomic<int>*,
                                        std::vector<std::atomic<int>>*>*>(frame);
    state->first->fetch_add(1);
    const int tid = omp_get_thread_num();
    (*state->second)[static_cast<std::size_t>(tid)].fetch_add(1);
  };
  std::pair<std::atomic<int>*, std::vector<std::atomic<int>>*> frame{&hits,
                                                                     &per_tid};
  rt.fork(body, &frame, 0);

  EXPECT_EQ(hits.load(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(per_tid[static_cast<std::size_t>(t)].load(), 1) << "tid " << t;
  }
  EXPECT_EQ(rt.regions_executed(), 1u);
  Runtime::make_current(nullptr);
}

TEST(Fork, ReusesSleepingPoolAcrossRegions) {
  Runtime rt(test_config(3));
  Runtime::make_current(&rt);
  std::atomic<int> hits{0};
  auto body = [](int, void* frame) {
    static_cast<std::atomic<int>*>(frame)->fetch_add(1);
  };
  for (int i = 0; i < 100; ++i) rt.fork(body, &hits, 0);
  EXPECT_EQ(hits.load(), 300);
  EXPECT_EQ(rt.pool_size(), 2);  // slaves created once, then reused
  EXPECT_EQ(rt.regions_executed(), 100u);
  Runtime::make_current(nullptr);
}

TEST(Fork, NumThreadsOverridePerRegion) {
  Runtime rt(test_config(4));
  Runtime::make_current(&rt);
  std::atomic<int> team_size{0};
  auto body = [](int, void* frame) {
    if (omp_get_thread_num() == 0) {
      static_cast<std::atomic<int>*>(frame)->store(omp_get_num_threads());
    }
  };
  rt.fork(body, &team_size, 2);
  EXPECT_EQ(team_size.load(), 2);
  rt.fork(body, &team_size, 4);
  EXPECT_EQ(team_size.load(), 4);
  rt.fork(body, &team_size, 1);
  EXPECT_EQ(team_size.load(), 1);
  Runtime::make_current(nullptr);
}

TEST(Fork, SerializesNestedRegionsByDefault) {
  Runtime rt(test_config(4));
  Runtime::make_current(&rt);
  std::atomic<int> inner_hits{0};
  std::atomic<int> inner_team{-1};

  orca::omp::parallel([&](int) {
    orca::omp::parallel([&](int) {
      inner_hits.fetch_add(1);
      inner_team.store(omp_get_num_threads());
    });
  });

  // Each of the 4 outer threads runs the inner region serially.
  EXPECT_EQ(inner_hits.load(), 4);
  EXPECT_EQ(inner_team.load(), 1);
  EXPECT_EQ(rt.regions_executed(), 1u);  // serialized inners don't count
  Runtime::make_current(nullptr);
}

TEST(Fork, NestedModeCreatesRealTeams) {
  RuntimeConfig cfg = test_config(2);
  cfg.nested = true;
  Runtime rt(cfg);
  Runtime::make_current(&rt);
  std::atomic<int> inner_hits{0};

  orca::omp::parallel([&](int) {
    orca::omp::parallel([&](int) { inner_hits.fetch_add(1); });
  });

  EXPECT_EQ(inner_hits.load(), 4);  // 2 outer x 2 inner
  EXPECT_EQ(rt.regions_executed(), 3u);  // 1 outer + 2 nested
  Runtime::make_current(nullptr);
}

// --- collector interaction ----------------------------------------------------

std::atomic<int> g_forks{0};
std::atomic<int> g_joins{0};
void count_fork_join(OMP_COLLECTORAPI_EVENT e) {
  if (e == OMP_EVENT_FORK) g_forks.fetch_add(1);
  if (e == OMP_EVENT_JOIN) g_joins.fetch_add(1);
}

TEST(ForkEvents, FiredOncePerRegionOnMaster) {
  Runtime rt(test_config(4));
  Runtime::make_current(&rt);
  g_forks = 0;
  g_joins = 0;

  MessageBuilder req;
  req.add(OMP_REQ_START);
  req.add_register(OMP_EVENT_FORK, &count_fork_join);
  req.add_register(OMP_EVENT_JOIN, &count_fork_join);
  ASSERT_EQ(rt.collector_api(req.buffer()), 0);
  ASSERT_EQ(req.errcode(0), OMP_ERRCODE_OK);
  ASSERT_EQ(req.errcode(1), OMP_ERRCODE_OK);
  ASSERT_EQ(req.errcode(2), OMP_ERRCODE_OK);

  for (int i = 0; i < 10; ++i) {
    orca::omp::parallel([](int) {});
  }
  EXPECT_EQ(g_forks.load(), 10);
  EXPECT_EQ(g_joins.load(), 10);

  // PAUSE suppresses events; RESUME restores them.
  MessageBuilder pause;
  pause.add(OMP_REQ_PAUSE);
  ASSERT_EQ(rt.collector_api(pause.buffer()), 0);
  orca::omp::parallel([](int) {});
  EXPECT_EQ(g_forks.load(), 10);

  MessageBuilder resume;
  resume.add(OMP_REQ_RESUME);
  ASSERT_EQ(rt.collector_api(resume.buffer()), 0);
  orca::omp::parallel([](int) {});
  EXPECT_EQ(g_forks.load(), 11);

  MessageBuilder stop;
  stop.add(OMP_REQ_STOP);
  ASSERT_EQ(rt.collector_api(stop.buffer()), 0);
  orca::omp::parallel([](int) {});
  EXPECT_EQ(g_forks.load(), 11);
  Runtime::make_current(nullptr);
}

std::atomic<int> g_idle_begin{0};
std::atomic<int> g_idle_end{0};
void count_idle(OMP_COLLECTORAPI_EVENT e) {
  if (e == OMP_EVENT_THR_BEGIN_IDLE) g_idle_begin.fetch_add(1);
  if (e == OMP_EVENT_THR_END_IDLE) g_idle_end.fetch_add(1);
}

TEST(IdleEvents, SlavesIdleBetweenRegions) {
  Runtime rt(test_config(3));
  Runtime::make_current(&rt);
  g_idle_begin = 0;
  g_idle_end = 0;

  MessageBuilder req;
  req.add(OMP_REQ_START);
  req.add_register(OMP_EVENT_THR_BEGIN_IDLE, &count_idle);
  req.add_register(OMP_EVENT_THR_END_IDLE, &count_idle);
  ASSERT_EQ(rt.collector_api(req.buffer()), 0);

  const int regions = 5;
  for (int i = 0; i < regions; ++i) {
    orca::omp::parallel([](int) {});
  }
  // 2 slaves leave idle at each region start and re-enter it at each end
  // (plus the initial BEGIN_IDLE at creation, already counted).
  EXPECT_EQ(g_idle_end.load(), 2 * regions);
  EXPECT_GE(g_idle_begin.load(), 2 * regions);
  Runtime::make_current(nullptr);
}

TEST(RegionIds, CurrentAndParentQueries) {
  Runtime rt(test_config(2));
  Runtime::make_current(&rt);

  // Outside any region: id 0 + sequence error (paper IV-E).
  MessageBuilder outside;
  outside.add_id_query(OMP_REQ_CURRENT_PRID);
  ASSERT_EQ(rt.collector_api(outside.buffer()), 0);
  EXPECT_EQ(outside.errcode(0), OMP_ERRCODE_SEQUENCE_ERR);
  unsigned long id = 123;
  ASSERT_TRUE(outside.reply_value(0, &id));
  EXPECT_EQ(id, 0ul);

  struct Capture {
    Runtime* rt;
    std::atomic<unsigned long> current{0};
    std::atomic<unsigned long> parent{999};
    std::atomic<int> err{-1};
  } capture{&rt, {}, {}, {}};

  auto body = [](int, void* frame) {
    auto* c = static_cast<Capture*>(frame);
    if (omp_get_thread_num() != 0) return;
    MessageBuilder inside;
    inside.add_id_query(OMP_REQ_CURRENT_PRID);
    inside.add_id_query(OMP_REQ_PARENT_PRID);
    c->rt->collector_api(inside.buffer());
    unsigned long cur = 0;
    unsigned long par = 0;
    inside.reply_value(0, &cur);
    inside.reply_value(1, &par);
    c->current.store(cur);
    c->parent.store(par);
    c->err.store(inside.errcode(0));
  };

  rt.fork(body, &capture, 0);
  EXPECT_EQ(capture.err.load(), OMP_ERRCODE_OK);
  EXPECT_EQ(capture.current.load(), 1ul);  // first region id
  EXPECT_EQ(capture.parent.load(), 0ul);   // non-nested: parent is 0

  rt.fork(body, &capture, 0);
  EXPECT_EQ(capture.current.load(), 2ul);  // ids advance per region
  Runtime::make_current(nullptr);
}

}  // namespace
