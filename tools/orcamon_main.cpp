/// orcamon — out-of-process fleet profiler (docs/FLEET.md).
///
/// Attaches to every ORCA shm export segment matching --prefix, drains
/// the per-thread rings with sharded reader threads, and emits a merged
/// multi-process Perfetto trace plus a periodic fleet text report.
/// Producers may come, go, finalize, or be SIGKILLed at any point; the
/// session keeps running and their books stay honest.
///
///   orcamon [--prefix P] [--shards N] [--duration S] [--trace out.json]
///           [--report out.txt] [--report-interval S] [--idle-exit]
///           [--keep-dead] [--version]
///
/// Exit codes: 0 clean session; 2 usage error; 3 at least one segment was
/// quarantined at attach (validation failure or retries exhausted); 4 at
/// least one attached producer had to be quarantined mid-session (SIGBUS,
/// truncation) or closed with unbalanced books.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/buildinfo.hpp"
#include "tool/orcamon/fleet_monitor.hpp"

namespace {

orca::tool::orcamon::FleetMonitor* g_monitor = nullptr;

void on_signal(int) {
  if (g_monitor != nullptr) g_monitor->stop();
}

void usage() {
  std::puts(
      "usage: orcamon [options]\n"
      "  --prefix P           segment prefix to watch (default: orca)\n"
      "  --shards N           reader threads (default: 2)\n"
      "  --duration S         stop after S seconds (default: until ^C)\n"
      "  --trace FILE         write merged Perfetto JSON on exit\n"
      "  --report FILE        write fleet report here (default: stdout)\n"
      "  --report-interval S  periodic report cadence (default: 5, 0=off)\n"
      "  --idle-exit          exit once every producer finalized/died\n"
      "  --keep-dead          do not unlink dead producers' segments\n"
      "  --version            print build stamp and exit\n"
      "environment: ORCA_MON_ATTACH_RETRY_MS, ORCA_MON_ATTACH_RETRY_MAX,\n"
      "  ORCA_MON_SHARD_STALL_MS, ORCA_MON_HEARTBEAT_DEADLINE_MS\n"
      "exit codes: 0 ok, 2 usage, 3 attach quarantine, 4 drain quarantine");
}

}  // namespace

int main(int argc, char** argv) {
  if (orca::common::handle_version_flag(argc, argv, "orcamon")) return 0;

  orca::tool::orcamon::MonitorOptions opts;
  opts.apply_env();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Both spellings work: "--prefix orca" and "--prefix=orca" (the =
    // form is what every other tool in the tree takes).
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    const auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "orcamon: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--prefix") {
      opts.prefix = next();
    } else if (arg == "--shards") {
      opts.shards = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--duration") {
      opts.duration_s = std::atof(next());
    } else if (arg == "--trace") {
      opts.trace_out = next();
    } else if (arg == "--report") {
      opts.report_out = next();
    } else if (arg == "--report-interval") {
      opts.report_interval_s = std::atof(next());
    } else if (arg == "--idle-exit") {
      opts.exit_when_idle = true;
    } else if (arg == "--keep-dead") {
      opts.unlink_dead = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "orcamon: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  std::fprintf(stderr, "%s watching /dev/shm/%s.* (%u shards)\n",
               orca::common::version_line("orcamon").c_str(),
               opts.prefix.c_str(), opts.shards);

  orca::tool::orcamon::FleetMonitor monitor(opts);
  g_monitor = &monitor;
  std::signal(SIGINT, &on_signal);
  std::signal(SIGTERM, &on_signal);
  const std::size_t seen = monitor.run();
  g_monitor = nullptr;
  std::fprintf(stderr, "orcamon: %zu producer(s), %llu records merged\n",
               seen,
               static_cast<unsigned long long>(monitor.events_seen()));

  // Quarantines decide the exit code: attach-phase rejections (a segment
  // never admitted) rank as 3, mid-session evictions and open books as 4.
  bool attach_quarantine = false;
  bool drain_quarantine = false;
  for (const auto& q : monitor.quarantines()) {
    std::fprintf(stderr, "orcamon: quarantine: %s (pid %lld, %s): %s\n",
                 q.name.c_str(), static_cast<long long>(q.pid),
                 q.attach_phase ? "at attach" : "mid-session",
                 q.reason.c_str());
    (q.attach_phase ? attach_quarantine : drain_quarantine) = true;
  }
  for (const auto& p : monitor.producers()) {
    if (p.drained && !p.quarantined && p.produced != p.read + p.lost) {
      std::fprintf(stderr,
                   "orcamon: books open for pid %lld: produced=%llu "
                   "read=%llu lost=%llu\n",
                   static_cast<long long>(p.pid),
                   static_cast<unsigned long long>(p.produced),
                   static_cast<unsigned long long>(p.read),
                   static_cast<unsigned long long>(p.lost));
      drain_quarantine = true;
    }
  }
  if (attach_quarantine) return 3;
  if (drain_quarantine) return 4;
  return 0;
}
