/// User-model callstack profiling (paper Sec. IV-F).
///
/// A small "application" with three parallel regions buried in a call
/// hierarchy runs under the prototype collector with join-time callstack
/// recording. The offline pass reconstructs the *user model*: runtime and
/// collector frames are stripped, and each sample is labelled with the
/// pragma's own source coordinates (via the region registry, ORCA's
/// stand-in for compiler debug info + BFD).
#include <cstdio>

#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"

namespace app {

double grid[1024];

void smooth_step() {
  // Region A: a stencil smoothing pass.
  orca::omp::parallel_for(1, 1022, [](long long i) {
    grid[i] = 0.25 * grid[i - 1] + 0.5 * grid[i] + 0.25 * grid[i + 1];
  });
}

double residual_norm() {
  // Region B: a reduction.
  return orca::omp::parallel_reduce(
      0, 1023, 0.0, [](double a, double b) { return a + b; },
      [](long long i) { return grid[i] * grid[i]; });
}

void boundary_fix() {
  // Region C: a tiny fix-up region.
  orca::omp::parallel([](int) {
    orca::omp::single([] {
      grid[0] = grid[1];
      grid[1023] = grid[1022];
    });
  });
}

void solver() {
  for (int step = 0; step < 20; ++step) {
    smooth_step();
    boundary_fix();
  }
}

}  // namespace app

int main() {
  orca::tool::ToolOptions opts;
  opts.record_callstacks = true;
  // The ORCA extension tags each join sample with the region's outlined
  // procedure, giving the offline pass exact pragma coordinates.
  opts.use_region_fn_extension = true;

  auto& tool = orca::tool::PrototypeCollector::instance();
  if (!tool.attach(opts)) {
    std::fprintf(stderr, "no ORA-capable runtime found\n");
    return 1;
  }

  for (double& v : app::grid) v = 1.0;
  app::solver();
  const double norm = app::residual_norm();

  tool.detach();
  const orca::tool::Report report = tool.finalize();
  std::printf("residual norm: %.6f\n\n%s\n", norm, report.render().c_str());

  std::printf("note: each profile entry's innermost frame is the pragma "
              "location (file:line of the parallel construct), not the "
              "compiler's outlined __ompdo_* procedure — the user model.\n");
  return 0;
}
