/// Figure 3 — "Example of a sequence of requests made by collector to
/// OpenMP runtime."
///
/// Plays out the collector<->runtime conversation the paper's Figure 3
/// sketches — dlsym probe, OMP_REQ_START (twice, to show the out-of-sync
/// error), event registration, state and region-id queries from inside a
/// region, PAUSE/RESUME, OMP_REQ_STOP — and finally prints the ordered
/// event trace the runtime generated in between.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "collector/names.hpp"
#include "common/buildinfo.hpp"
#include "runtime/ompc_api.h"
#include "tool/client2.hpp"
#include "tool/tracer.hpp"
#include "translate/omp.hpp"

namespace {

void show(const char* request, OMP_COLLECTORAPI_EC ec) {
  std::printf("  collector -> runtime : %-22s | reply: %s\n", request,
              std::string(orca::collector::to_string(ec)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (orca::common::handle_version_flag(argc, argv, "sequence_trace")) {
    return 0;
  }
  // --telemetry-out=<path>: also write the merged Chrome/Perfetto trace —
  // runtime self-telemetry timelines + the collector event log — to <path>.
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry-out=", 16) == 0) {
      telemetry_out = argv[i] + 16;
    } else {
      std::fprintf(stderr, "usage: %s [--telemetry-out=<path>] [--version]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!telemetry_out.empty()) {
    // Arm the runtime's timeline recorder before it is constructed (first
    // parallel region); an explicit ORCA_TELEMETRY in the environment wins.
    ::setenv("ORCA_TELEMETRY", "timeline", /*overwrite=*/0);
  }

  std::printf("Figure 3: collector / OpenMP runtime interaction sequence\n\n");

  auto probe = orca::collector::Client::discover();
  if (!probe) {
    std::fprintf(stderr, "dlsym(\"__omp_collector_api\") failed\n");
    return 1;
  }
  std::printf("  collector: found __omp_collector_api via the dynamic "
              "linker\n");

  // The tracer performs START and registers every event the runtime
  // supports (the optional atomic-wait events come back UNSUPPORTED with
  // the default OpenUH-like configuration).
  auto& tracer = orca::tool::TracingCollector::instance();
  if (!tracer.attach()) {
    std::fprintf(stderr, "tracer attach failed\n");
    return 1;
  }
  show("OMP_REQ_START", OMP_ERRCODE_OK);
  std::printf("  collector -> runtime : REGISTER fork/join/idle/barrier/"
              "lock/critical/ordered/master/single events\n");
  show("OMP_REQ_START (again)", probe->start());  // out of sync (IV-B)

  // Workload: a parallel region with a barrier, a critical section, and a
  // single block, plus ORA queries from the master thread mid-region.
  orca::omp::parallel([&](int) {
    if (omp_get_thread_num() == 0) {
      const auto state = probe->state();
      const auto current = probe->current_prid();
      const auto parent = probe->parent_prid();
      std::printf(
          "  [inside region] state=%s current_prid=%lu parent_prid=%lu\n",
          state ? std::string(orca::collector::to_string(state->state)).c_str()
                : "?",
          current.value_or(0), parent.value_or(0));
    }
    orca::omp::barrier();
    orca::omp::critical([] {});
    orca::omp::single([] {});
  }, 2);

  show("OMP_REQ_PAUSE", probe->pause());
  const std::size_t before = tracer.log().size();
  orca::omp::parallel([](int) {}, 2);  // generates no events while paused
  const std::size_t after = tracer.log().size();
  std::printf("  [paused] events during paused region: %zu\n",
              after - before);
  show("OMP_REQ_RESUME", probe->resume());

  orca::omp::parallel([](int) {}, 2);

  // Out-of-region queries: id 0 + sequence error (paper IV-E).
  const auto outside = probe->current_prid();
  std::printf("  [outside region] current_prid=%lu reply=%s\n",
              outside.value_or(0),
              std::string(orca::collector::to_string(outside.error())).c_str());

  tracer.detach();
  show("OMP_REQ_STOP", OMP_ERRCODE_OK);

  std::printf("\nevent trace (runtime -> collector callbacks):\n%s",
              tracer.render().c_str());

  if (!telemetry_out.empty()) {
    if (tracer.write_chrome_trace(telemetry_out)) {
      std::printf("\nwrote merged telemetry trace to %s "
                  "(load in https://ui.perfetto.dev)\n",
                  telemetry_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", telemetry_out.c_str());
      return 1;
    }
  }
  return 0;
}
