/// Hybrid MPI+OpenMP execution (paper Sec. V-B): an SP-MZ-style multi-zone
/// run on MiniMPI, two "processes" with two OpenMP threads each, with a
/// per-rank collector — the same wiring the paper's experiments use, where
/// every MPI process carries its own OpenMP runtime and its own collector
/// instance.
#include <cstdio>

#include "npb/multizone.hpp"
#include "runtime/ompc_api.h"
#include "tool/client2.hpp"
#include "tool/collector_tool.hpp"

int main() {
  auto& tool = orca::tool::PrototypeCollector::instance();
  tool.configure(orca::tool::ToolOptions{});

  orca::npb::MzOptions opts;
  opts.procs = 2;
  opts.threads_per_proc = 2;
  opts.scale = 0.05;

  // Per-rank collector lifecycle, as an LD_PRELOAD'ed tool would do inside
  // each MPI process.
  opts.rank_begin = [](int rank) {
    orca::collector::Client client(&__omp_collector_api);
    client.start();
    for (const auto event :
         {OMP_EVENT_FORK, OMP_EVENT_JOIN, OMP_EVENT_THR_BEGIN_IBAR,
          OMP_EVENT_THR_END_IBAR}) {
      client.register_event(event,
                            orca::tool::PrototypeCollector::raw_callback());
    }
    std::printf("rank %d: collector started on the rank-private runtime\n",
                rank);
  };
  opts.rank_end = [](int rank) {
    orca::collector::Client client(&__omp_collector_api);
    client.stop();
    std::printf("rank %d: collector stopped\n", rank);
  };

  const orca::npb::MzResult result = orca::npb::run_sp_mz(opts);

  std::printf("\nSP-MZ  procs=%d threads/proc=%d\n", result.procs,
              result.threads_per_proc);
  std::printf("  per-process region calls (max rank): %llu\n",
              static_cast<unsigned long long>(result.max_rank_calls));
  std::printf("  total region calls across ranks    : %llu\n",
              static_cast<unsigned long long>(result.total_calls));
  std::printf("  checksum: %.6f   wall: %.3fs\n", result.checksum,
              result.seconds);

  const orca::tool::Report report = tool.finalize();
  std::printf("  events observed by the collector   : %llu\n",
              static_cast<unsigned long long>(report.total_events));
  return 0;
}
