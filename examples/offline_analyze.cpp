/// The offline phase as a standalone program (paper Sec. IV:
/// "Reconstructing the callstack to provide a user view of the program is
/// done offline after the application finishes").
///
///   offline_analyze <trace.orcatrc>   analyze an existing trace
///   offline_analyze                   record a demo trace, then analyze it
///
/// The online phase spills raw samples + join callstacks into the ORCA
/// binary trace; this program reloads the trace, aggregates event counts
/// and fork→join intervals, reconstructs user-model callstacks, and prints
/// the profile — no live runtime required for the analysis itself.
#include <cstdio>
#include <map>
#include <string>

#include "collector/names.hpp"
#include "common/strutil.hpp"
#include "perf/counter.hpp"
#include "perf/trace.hpp"
#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"
#include "unwind/user_model.hpp"

namespace {

/// Record a small demo run so the example is self-contained.
bool record_demo_trace(const std::string& path) {
  orca::tool::ToolOptions opts;
  opts.use_region_fn_extension = true;
  auto& tool = orca::tool::PrototypeCollector::instance();
  if (!tool.attach(opts)) return false;

  static double field[4096];
  for (int step = 0; step < 30; ++step) {
    orca::omp::parallel_for(1, 4094, [](long long i) {
      field[i] = 0.5 * field[i] + 0.25 * (field[i - 1] + field[i + 1]) + 1.0;
    });
    (void)orca::omp::parallel_reduce(
        0, 4095, 0.0, [](double a, double b) { return a + b; },
        [](long long i) { return field[i]; });
  }
  tool.detach();
  return orca::perf::write_trace(path, tool.trace_data());
}

void analyze(const std::string& path) {
  orca::perf::TraceData data;
  if (!orca::perf::read_trace(path, &data)) {
    std::fprintf(stderr, "cannot read trace: %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("trace: %s\n  %zu event samples, %zu join callstacks\n\n",
              path.c_str(), data.samples.size(), data.callstacks.size());

  // Event counts.
  std::map<int, std::uint64_t> counts;
  for (const auto& s : data.samples) ++counts[s.event];
  orca::TextTable events({"event", "count"});
  for (const auto& [event, count] : counts) {
    events.add_row({std::string(orca::collector::to_string(
                        static_cast<OMP_COLLECTORAPI_EVENT>(event))),
                    orca::strfmt("%llu", static_cast<unsigned long long>(count))});
  }
  std::printf("event counts:\n%s\n", events.render().c_str());

  // Fork->join intervals on the master thread.
  const orca::perf::HwTimeCounter counter;
  std::uint64_t open_fork = 0;
  bool fork_open = false;
  double total = 0;
  std::uint64_t regions = 0;
  for (const auto& s : data.samples) {
    if (s.tid != 0) continue;
    if (s.event == OMP_EVENT_FORK) {
      open_fork = s.ticks;
      fork_open = true;
    } else if (s.event == OMP_EVENT_JOIN && fork_open) {
      total += counter.to_seconds(s.ticks - open_fork);
      ++regions;
      fork_open = false;
    }
  }
  std::printf("parallel regions: %llu, total fork->join time: %.6fs\n\n",
              static_cast<unsigned long long>(regions), total);

  // User-model callstack profile.
  std::map<std::string, std::uint64_t> profile;
  for (const auto& rec : data.callstacks) {
    ++profile[orca::unwind::reconstruct(rec.frames, rec.region_fn).render()];
  }
  std::printf("user-model callstack profile:\n");
  for (const auto& [stack, count] : profile) {
    std::printf("%llu samples at:\n%s",
                static_cast<unsigned long long>(count), stack.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/orca_demo.orcatrc";
    std::printf("no trace given; recording a demo run first...\n\n");
    if (!record_demo_trace(path)) {
      std::fprintf(stderr, "failed to record the demo trace\n");
      return 1;
    }
  }
  analyze(path);
  return 0;
}
