/// Quickstart: the paper's Fig. 1 program (a parallel reduction) run on
/// the ORCA runtime with the prototype ORA collector attached.
///
///   1. write OpenMP-shaped code with the translation layer
///      (#pragma omp parallel for reduction(+:sum) -> parallel_reduce);
///   2. attach the collector tool (dlsym discovery + OMP_REQ_START +
///      fork/join/barrier event registration);
///   3. run, detach, and print the measurement report.
#include <cstdio>

#include "runtime/ompc_api.h"
#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"

int main() {
  auto& tool = orca::tool::PrototypeCollector::instance();
  if (!tool.attach()) {
    std::fprintf(stderr, "no ORA-capable OpenMP runtime found\n");
    return 1;
  }
  std::printf("collector attached via __omp_collector_api\n");

  // The paper's Fig. 1:  sum over i of 1, with a reduction clause.
  constexpr long long kN = 1'000'000;
  constexpr int kThreads = 4;
  long long sum = 0;
  for (int repeat = 0; repeat < 50; ++repeat) {
    sum = orca::omp::parallel_reduce(
        0, kN - 1, 0LL, [](long long a, long long b) { return a + b; },
        [](long long) { return 1LL; }, kThreads);
  }
  std::printf("sum = %lld (expected %lld), threads = %d\n", sum, kN,
              omp_get_max_threads());

  tool.detach();
  const orca::tool::Report report = tool.finalize();
  std::printf("\n%s\n", report.render().c_str());
  return sum == kN ? 0 : 1;
}
