/// Quickstart: the paper's Fig. 1 program (a parallel reduction) run on
/// the ORCA runtime with the prototype ORA collector attached.
///
///   1. write OpenMP-shaped code with the translation layer
///      (#pragma omp parallel for reduction(+:sum) -> parallel_reduce);
///   2. attach the collector tool (dlsym discovery + OMP_REQ_START +
///      fork/join/barrier event registration);
///   3. run, detach, and print the measurement report — plus a Perfetto
///      trace of the runtime's own telemetry (quickstart_trace.json, or
///      argv[1]; load it in https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>

#include "runtime/ompc_api.h"
#include "telemetry/export.hpp"
#include "tool/collector_tool.hpp"
#include "translate/omp.hpp"

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "quickstart_trace.json";
  // Arm runtime self-telemetry before the runtime exists (first parallel
  // region constructs it); an ORCA_TELEMETRY already in the env wins.
  ::setenv("ORCA_TELEMETRY", "full", /*overwrite=*/0);

  auto& tool = orca::tool::PrototypeCollector::instance();
  if (!tool.attach()) {
    std::fprintf(stderr, "no ORA-capable OpenMP runtime found\n");
    return 1;
  }
  std::printf("collector attached via __omp_collector_api\n");

  // The paper's Fig. 1:  sum over i of 1, with a reduction clause.
  constexpr long long kN = 1'000'000;
  constexpr int kThreads = 4;
  long long sum = 0;
  for (int repeat = 0; repeat < 50; ++repeat) {
    sum = orca::omp::parallel_reduce(
        0, kN - 1, 0LL, [](long long a, long long b) { return a + b; },
        [](long long) { return 1LL; }, kThreads);
  }
  std::printf("sum = %lld (expected %lld), threads = %d\n", sum, kN,
              omp_get_max_threads());

  tool.detach();
  const orca::tool::Report report = tool.finalize();
  std::printf("\n%s\n", report.render().c_str());

  if (orca::telemetry::write_chrome_trace(trace_path)) {
    std::printf("telemetry trace written to %s (open in ui.perfetto.dev)\n",
                trace_path);
  } else {
    std::fprintf(stderr, "failed to write telemetry trace %s\n", trace_path);
    return 1;
  }
  return sum == kN ? 0 : 1;
}
