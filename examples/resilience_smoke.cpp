/// Resilience smoke driver: the crash-safe profiling layer exercised over
/// the EPCC syncbench workload (docs/RESILIENCE.md).
///
/// Modes:
///   --smoke (default)  SIGPROF sampling collector over syncbench; prints
///                      sample/drop counters and the typed
///                      ORCA_REQ_RESILIENCE_STATS readout. Exit 1 when the
///                      run produced no samples.
///   --crash            arms ORCA_CRASH_DUMP, samples briefly, then dies
///                      on a real SIGSEGV — the postmortem handler flushes
///                      the dump before the default disposition re-raises.
///                      (The process exits by signal; inspect the dump.)
///   --stall            async delivery + callback watchdog: a registered
///                      FORK callback stalls past ORCA_CALLBACK_DEADLINE_MS,
///                      the watchdog quarantines it, and the benchmark
///                      still completes. Exit 1 when nothing was
///                      quarantined.
///
/// Usage: resilience_smoke [--smoke|--crash|--stall] [--hz=1000]
///          [--threads=4] [--reps=3] [--inner=64] [--delay=200]
///          [--dump=resilience_crash.dump] [--deadline-ms=50]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "collector/api.h"
#include "common/buildinfo.hpp"
#include "epcc/syncbench.hpp"
#include "runtime/runtime.hpp"
#include "tool/client2.hpp"
#include "tool/sampling_collector.hpp"

namespace {

using orca::bench::flag_int;
using orca::bench::has_flag;
using orca::epcc::Directive;
using orca::epcc::SyncBench;
using orca::tool::SamplingCollector;
using orca::tool::SamplingOptions;

std::string flag_string(int argc, char** argv, const char* name,
                        const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

void print_resilience(const orca::collector::Client& client) {
  const auto stats = client.resilience_stats();
  if (!stats) {
    std::printf("resilience stats: errcode %d\n",
                static_cast<int>(stats.error()));
    return;
  }
  std::printf(
      "resilience stats (over ORCA_REQ_RESILIENCE_STATS):\n"
      "  quarantined_collectors=%llu crash_dump_armed=%llu\n"
      "  signal_queries_served=%llu fork_events=%llu\n",
      stats->quarantined_collectors, stats->crash_dump_armed,
      stats->signal_queries_served, stats->fork_events);
}

/// Run the syncbench directive subset while SIGPROF sampling is armed.
void run_workload(const orca::epcc::Options& opts) {
  SyncBench bench(opts);
  for (const Directive d : {Directive::kParallel, Directive::kBarrier,
                            Directive::kCritical}) {
    const auto r = bench.measure(d);
    std::printf("  %-14s %8.2f us/call\n", orca::epcc::name(d),
                r.min_overhead_us);
  }
}

/// The stalling collector callback for --stall: the first FORK delivery
/// sleeps far past the watchdog deadline (the ORA callback ABI carries no
/// context, so the knob is a file-scope atomic).
std::atomic<int> g_stall_ms{0};
std::atomic<std::uint64_t> g_callbacks_seen{0};

void stalling_callback(OMP_COLLECTORAPI_EVENT) {
  g_callbacks_seen.fetch_add(1, std::memory_order_relaxed);
  const int ms = g_stall_ms.exchange(0, std::memory_order_relaxed);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int run_smoke(const orca::epcc::Options& opts, int hz, bool crash,
              const std::string& dump) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = opts.num_threads;
  if (crash) cfg.crash_dump = dump;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  SamplingOptions sopts;
  sopts.hz = hz;
  if (!SamplingCollector::instance().start(&__omp_collector_api, sopts)) {
    std::fprintf(stderr, "failed to arm SIGPROF sampling\n");
    return 1;
  }
  std::printf("SIGPROF sampling at %d Hz over syncbench (%d threads)\n", hz,
              opts.num_threads);
  run_workload(opts);

  if (crash) {
    std::printf("crashing now; postmortem dump goes to %s\n", dump.c_str());
    std::fflush(stdout);
    volatile int* null_page = nullptr;
    *null_page = 42;  // real SIGSEGV: the dump path, not a simulation
  }

  SamplingCollector::instance().stop();
  const auto stats = SamplingCollector::instance().stats();
  std::printf(
      "\nsampling: handler_invocations=%llu samples=%llu dropped=%llu "
      "api_failures=%llu\n",
      static_cast<unsigned long long>(stats.handler_invocations),
      static_cast<unsigned long long>(stats.samples),
      static_cast<unsigned long long>(stats.dropped),
      static_cast<unsigned long long>(stats.api_failures));
  std::printf(
      "{\"bench\":\"resilience_smoke\",\"hz\":%d,\"samples\":%llu,"
      "\"dropped\":%llu,\"api_failures\":%llu}\n",
      hz, static_cast<unsigned long long>(stats.samples),
      static_cast<unsigned long long>(stats.dropped),
      static_cast<unsigned long long>(stats.api_failures));

  orca::collector::Client client(
      [&rt](void* buffer) { return rt.collector_api(buffer); });
  print_resilience(client);
  orca::rt::Runtime::make_current(nullptr);
  return stats.samples > 0 ? 0 : 1;
}

int run_stall(const orca::epcc::Options& opts, int deadline_ms) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = opts.num_threads;
  cfg.event_delivery = orca::rt::EventDelivery::kAsync;
  cfg.callback_deadline_ms = deadline_ms;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);

  orca::collector::Client client(
      [&rt](void* buffer) { return rt.collector_api(buffer); });
  client.start();
  g_stall_ms.store(deadline_ms * 4, std::memory_order_relaxed);
  client.register_event(OMP_EVENT_FORK, &stalling_callback);

  std::printf(
      "callback watchdog: FORK callback stalls %d ms against a %d ms "
      "deadline\n",
      deadline_ms * 4, deadline_ms);
  run_workload(opts);

  print_resilience(client);
  const auto stats = client.resilience_stats();
  const bool quarantined = stats && stats->quarantined_collectors > 0;
  std::printf("benchmark completed; collector %s\n",
              quarantined ? "quarantined" : "NOT quarantined");
  client.stop();
  orca::rt::Runtime::make_current(nullptr);
  return quarantined ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (orca::common::handle_version_flag(argc, argv, "resilience_smoke")) {
    return 0;
  }
  orca::epcc::Options opts;
  opts.num_threads = flag_int(argc, argv, "threads", 4);
  opts.outer_reps = flag_int(argc, argv, "reps", 10);
  opts.inner_reps = flag_int(argc, argv, "inner", 256);
  opts.delay_length = flag_int(argc, argv, "delay", 500);
  const int hz = flag_int(argc, argv, "hz", 1000);

  if (has_flag(argc, argv, "stall")) {
    return run_stall(opts, flag_int(argc, argv, "deadline-ms", 50));
  }
  const bool crash = has_flag(argc, argv, "crash");
  return run_smoke(opts, hz, crash,
                   flag_string(argc, argv, "dump", "resilience_crash.dump"));
}
