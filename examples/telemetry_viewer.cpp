/// Telemetry viewer: the EPCC syncbench workload run under the runtime's
/// own self-telemetry, producing
///
///   1. a ready-to-load Chrome/Perfetto trace (per-thread state timelines,
///      barrier/ring/drainer internal spans) — open the emitted JSON in
///      https://ui.perfetto.dev;
///   2. a typed ORCA_REQ_TELEMETRY_SNAPSHOT readout over the collector
///      protocol (client API v2);
///   3. JSON lines comparing per-directive overhead with telemetry off vs
///      fully armed — the E9 ablation's measurement harness.
///
/// Usage: telemetry_viewer [--out=telemetry_viewer_trace.json]
///          [--threads=4] [--reps=5] [--inner=64] [--delay=200]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "epcc/syncbench.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/export.hpp"
#include "tool/client2.hpp"

namespace {

using orca::bench::flag_int;
using orca::epcc::Directive;
using orca::epcc::SyncBench;

std::string flag_string(int argc, char** argv, const char* name,
                        const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

/// Measure the directive set on a fresh runtime; `telemetry` arms both
/// the timeline recorder and the metrics registry via the runtime config.
std::vector<orca::epcc::Result> measure(const orca::epcc::Options& opts,
                                        bool telemetry) {
  orca::rt::RuntimeConfig cfg;
  cfg.num_threads = opts.num_threads;
  cfg.telemetry_timeline = telemetry;
  cfg.telemetry_metrics = telemetry;
  orca::rt::Runtime rt(cfg);
  orca::rt::Runtime::make_current(&rt);
  SyncBench bench(opts);
  std::vector<orca::epcc::Result> out;
  for (const Directive d : orca::epcc::all_directives()) {
    out.push_back(bench.measure(d));
  }

  if (telemetry) {
    // Typed snapshot over the wire protocol, exactly what an attached
    // tool would issue (ORCA_REQ_TELEMETRY_SNAPSHOT via client API v2).
    orca::collector::Client client(
        [&rt](void* buffer) { return rt.collector_api(buffer); });
    const auto snap = client.telemetry_snapshot();
    if (snap) {
      std::printf(
          "\ntelemetry snapshot (over ORCA_REQ_TELEMETRY_SNAPSHOT):\n"
          "  forks=%llu joins=%llu barrier_waits=%llu barrier_wait_ns=%llu\n"
          "  threads_tracked=%llu timeline_records=%llu dropped=%llu\n",
          snap->forks, snap->joins, snap->barrier_waits,
          snap->barrier_wait_ns, snap->threads_tracked,
          snap->timeline_records, snap->timeline_dropped);
    }
  }
  orca::rt::Runtime::make_current(nullptr);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      flag_string(argc, argv, "out", "telemetry_viewer_trace.json");
  orca::epcc::Options opts;
  opts.num_threads = flag_int(argc, argv, "threads", 4);
  opts.outer_reps = flag_int(argc, argv, "reps", 5);
  opts.inner_reps = flag_int(argc, argv, "inner", 64);
  opts.delay_length = flag_int(argc, argv, "delay", 200);

  std::printf("EPCC syncbench under runtime self-telemetry "
              "(%d threads, outer=%d inner=%d delay=%d)\n\n",
              opts.num_threads, opts.outer_reps, opts.inner_reps,
              opts.delay_length);

  // Baseline first: its runtime never arms, so the armed run's rings and
  // metric shards describe only the telemetry-on workload.
  const std::vector<orca::epcc::Result> off = measure(opts, false);
  orca::telemetry::reset_for_testing();
  const std::vector<orca::epcc::Result> on = measure(opts, true);

  orca::TextTable table(
      {"directive", "off us", "telemetry us", "overhead %"});
  for (std::size_t i = 0; i < off.size(); ++i) {
    const double pct = orca::bench::overhead_percent_raw(
        off[i].min_overhead_us, on[i].min_overhead_us);
    table.add_row({orca::epcc::name(off[i].directive),
                   orca::strfmt("%.2f", off[i].min_overhead_us),
                   orca::strfmt("%.2f", on[i].min_overhead_us),
                   orca::strfmt("%.1f", pct)});
    std::printf(
        "{\"bench\":\"telemetry_overhead\",\"directive\":\"%s\","
        "\"threads\":%d,\"off_us\":%.3f,\"telemetry_us\":%.3f,"
        "\"overhead_pct\":%.2f}\n",
        orca::epcc::name(off[i].directive), opts.num_threads,
        off[i].min_overhead_us, on[i].min_overhead_us, pct);
  }
  std::printf("\n%s\n", table.render().c_str());

  // The armed runtime has been destroyed (its shutdown hooks already ran),
  // but the telemetry globals still hold its timelines; export them now.
  if (!orca::telemetry::write_chrome_trace(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("trace written to %s — load it in https://ui.perfetto.dev\n",
              out_path.c_str());
  return 0;
}
