#!/usr/bin/env python3
"""Performance regression gate over BENCH_*.json artifacts.

Diffs a directory of freshly produced bench JSON files (one JSON object per
line, as emitted by the bench binaries and harvested by scripts/ci.sh into
build/artifacts/) against the checked-in snapshot in bench/baselines/, and
exits nonzero when a metric regressed beyond its tolerance.

Row identity and metric classification are structural, so new benches join
the gate without code changes here:

  * string fields and the well-known integer parameters (threads, reps,
    inner, events_per_thread, iters_per_thread, queries, stages, events)
    form the row key;
  * float fields are gated metrics — names containing "ns" or "ms" are
    lower-is-better, names containing "mev_per_s" or "throughput" are
    higher-is-better, anything else is ignored;
  * other integer fields (delivered, dropped, ...) are informational.

A baseline row may carry a "tolerance" field (fractional allowed
regression for that row, e.g. 4.0 = 5x) overriding --tolerance. Regressions
smaller than --min-delta in absolute metric units never fail, which keeps
sub-nanosecond noise on near-zero metrics from tripping the gate.

Exit codes: 0 = pass (new rows/files are reported but never fail),
1 = regression or missing row/file, 2 = malformed input or I/O error.

Usage:
  perf_gate.py --baseline bench/baselines --current build/artifacts \
               [--tolerance 0.75] [--min-delta 1.0]
"""

import argparse
import json
import os
import sys

KEY_INT_FIELDS = frozenset(
    ["threads", "events_per_thread", "iters_per_thread", "queries", "reps",
     "inner", "stages", "events"])
LOWER_BETTER_HINTS = ("ns", "ms")
HIGHER_BETTER_HINTS = ("mev_per_s", "throughput")

EXIT_PASS = 0
EXIT_FAIL = 1
EXIT_ERROR = 2


def metric_direction(name):
    """'lower', 'higher', or None (not a gated metric)."""
    if name == "tolerance":
        return None
    parts = name.split("_")
    if any(hint in name for hint in HIGHER_BETTER_HINTS):
        return "higher"
    if any(part in LOWER_BETTER_HINTS for part in parts):
        return "lower"
    return None


def row_key(row):
    """Stable identity of one bench row: string fields + known int params."""
    parts = []
    for name in sorted(row):
        value = row[name]
        if isinstance(value, str):
            parts.append("%s=%s" % (name, value))
        elif isinstance(value, bool):
            parts.append("%s=%s" % (name, value))
        elif isinstance(value, int) and name in KEY_INT_FIELDS:
            parts.append("%s=%d" % (name, value))
    return " ".join(parts)


def load_rows(path):
    """Parse one bench JSON file: one object per line -> {key: row}.

    Raises ValueError on malformed lines or duplicate keys.
    """
    rows = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    "%s:%d: malformed JSON line: %s" % (path, lineno, exc))
            if not isinstance(row, dict):
                raise ValueError(
                    "%s:%d: expected a JSON object, got %s"
                    % (path, lineno, type(row).__name__))
            key = row_key(row)
            if not key:
                raise ValueError(
                    "%s:%d: row has no identifying fields" % (path, lineno))
            if key in rows:
                raise ValueError(
                    "%s:%d: duplicate row key: %s" % (path, lineno, key))
            rows[key] = row
    return rows


def gate_metric(name, base, cur, tolerance, min_delta):
    """Return (regressed, detail) for one metric value pair."""
    direction = metric_direction(name)
    if direction is None:
        return False, None
    if direction == "lower":
        limit = base * (1.0 + tolerance)
        regressed = cur > limit and (cur - base) > min_delta
    else:
        limit = base / (1.0 + tolerance)
        regressed = cur < limit and (base - cur) > min_delta
    detail = "%s %.3f -> %.3f (limit %.3f)" % (name, base, cur, limit)
    return regressed, detail


def gate_file(name, base_rows, cur_rows, tolerance, min_delta, report):
    failures = 0
    for key in sorted(base_rows):
        base = base_rows[key]
        cur = cur_rows.get(key)
        if cur is None:
            report.append("MISSING  %s: row not produced: %s" % (name, key))
            failures += 1
            continue
        row_tol = base.get("tolerance", tolerance)
        if not isinstance(row_tol, (int, float)) or row_tol < 0:
            raise ValueError(
                "%s: baseline row %s: invalid tolerance %r"
                % (name, key, row_tol))
        row_failed = False
        for field in sorted(base):
            base_val = base[field]
            if not isinstance(base_val, float):
                continue
            cur_val = cur.get(field)
            if not isinstance(cur_val, (int, float)):
                continue
            regressed, detail = gate_metric(
                field, base_val, float(cur_val), row_tol, min_delta)
            if detail is None:
                continue
            if regressed:
                report.append("REGRESSION  %s: %s: %s" % (name, key, detail))
                failures += 1
                row_failed = True
        if not row_failed:
            report.append("PASS  %s: %s" % (name, key))
    for key in sorted(set(cur_rows) - set(base_rows)):
        report.append(
            "NEW  %s: ungated row (refresh baselines to gate it): %s"
            % (name, key))
    return failures


def main(argv):
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json artifacts against a baseline.")
    parser.add_argument("--baseline", required=True,
                        help="directory of checked-in baseline BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="default fractional allowed regression "
                             "(default: 0.75, i.e. 1.75x)")
    parser.add_argument("--min-delta", type=float, default=1.0,
                        help="absolute regression floor in metric units "
                             "(default: 1.0)")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.baseline):
        print("perf_gate: MALFORMED input: baseline directory not found: %s"
              % args.baseline, file=sys.stderr)
        return EXIT_ERROR

    baseline_files = sorted(
        f for f in os.listdir(args.baseline)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print("perf_gate: MALFORMED input: no BENCH_*.json under %s"
              % args.baseline, file=sys.stderr)
        return EXIT_ERROR

    report = []
    failures = 0
    try:
        for name in baseline_files:
            base_rows = load_rows(os.path.join(args.baseline, name))
            cur_path = os.path.join(args.current, name)
            if not os.path.isfile(cur_path):
                report.append(
                    "MISSING  %s: file not produced under %s"
                    % (name, args.current))
                failures += 1
                continue
            failures += gate_file(name, base_rows, load_rows(cur_path),
                                  args.tolerance, args.min_delta, report)
        if os.path.isdir(args.current):
            for name in sorted(os.listdir(args.current)):
                if (name.startswith("BENCH_") and name.endswith(".json")
                        and name not in baseline_files):
                    report.append("NEW  %s: ungated file (refresh baselines "
                                  "to gate it)" % name)
    except (ValueError, OSError) as exc:
        print("\n".join(report))
        print("perf_gate: MALFORMED input: %s" % exc, file=sys.stderr)
        return EXIT_ERROR

    print("\n".join(report))
    if failures:
        print("perf_gate: FAIL (%d regression%s/missing row%s; see above)"
              % (failures, "s" if failures != 1 else "", "s" if failures != 1
                 else ""))
        return EXIT_FAIL
    print("perf_gate: PASS (%d file%s gated)"
          % (len(baseline_files), "s" if len(baseline_files) != 1 else ""))
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
