#!/usr/bin/env bash
# CI driver: the full verification matrix in one command.
#
#   scripts/ci.sh            # default + tsan + asan + ubsan presets
#   scripts/ci.sh default    # just the default preset
#   scripts/ci.sh tsan asan  # just the sanitizer presets
#
# Each preset (CMakePresets.json) configures its own build tree
# (build/, build-tsan/, build-asan/, build-ubsan/), builds everything,
# and runs:
#   * the full ctest suite (unit + fuzz + stress + resilience labels) —
#     which includes the conformance differ re-run with the resilience
#     fault seams (signal_during_query / callback_stall / fork_race)
#     armed, inside resilience_test (the seams have no env interface,
#     so the armed run lives in-process there);
#   * the perf-smoke lane (bench_event_path --smoke): every event-delivery
#     mode end to end in ~2s, a sanity check that the benches still run —
#     not a performance gate.
# The tsan preset is the one that validates the lock-free event fast path
# (collector_churn_test and friends must be race-free, see DESIGN.md §5.1)
# and the SIGPROF signal-storm lane (signal_storm_test).
#
# The default preset additionally archives machine-readable bench output
# into build/artifacts/ (BENCH_*.json, one JSON object per line) so a CI
# run leaves a perf paper trail to diff across commits:
#   BENCH_event_path.json          — bench_event_path --smoke rows
#   BENCH_primitives.json          — bench_primitives --smoke rows
#                                    (barrier algos × threads, spinlock,
#                                    disarmed emit)
#   BENCH_pipeline.json            — bench_pipeline --smoke rows
#                                    (events/s vs stage chain depth)
#   BENCH_shm.json                 — bench_shm_drain --smoke rows
#                                    (drained Mev/s vs reader shard count)
#   BENCH_telemetry_overhead.json  — telemetry_viewer armed-vs-off rows
#
# PERF_GATE=1 scripts/ci.sh additionally diffs the archived artifacts
# against the checked-in bench/baselines/ snapshot with
# scripts/perf_gate.py and fails the run on a regression beyond the
# per-row tolerances (docs/PERFORMANCE.md covers refreshing baselines).
set -euo pipefail

cd "$(dirname "$0")/.."

# Stale-shm hygiene: crashed or SIGKILLed runs leave /dev/shm/orca.* (and
# orcatest-*/orcafleet-*/orcabench-* from the suites) behind. Segment names
# are "<prefix>.<pid>.<seq>"; unlink any whose owner pid is gone. The
# runtime does the same (shm::cleanup_stale_segments) before arming.
for seg in /dev/shm/orca.* /dev/shm/orcatest-* /dev/shm/orcafleet-* \
           /dev/shm/orcabench-* /dev/shm/orcachaos-*; do
  [ -e "$seg" ] || continue
  pid=$(basename "$seg" | awk -F. '{print $(NF-1)}')
  case "$pid" in
    ''|*[!0-9]*) continue ;;  # unparseable name: leave it alone
  esac
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "ci.sh: reaping stale shm segment $seg (owner $pid is gone)"
    rm -f "$seg"
  fi
done

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan ubsan)
fi

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"

  echo "=== [$preset] ctest (all labels) ==="
  ctest --preset "$preset" -j "$(nproc)"

  echo "=== [$preset] perf-smoke lane ==="
  ctest --preset "$preset" -L perf-smoke --output-on-failure

  echo "=== [$preset] fleet lane ==="
  # Out-of-process aggregation: orcamon against a three-producer fleet
  # with one producer SIGKILLed mid-run (docs/FLEET.md acceptance).
  ctest --preset "$preset" -L fleet --output-on-failure

  if [ "$preset" = default ] || [ "$preset" = asan ]; then
    echo "=== [$preset] chaos lane ==="
    # Seeded hostile-fleet schedules (SIGSTOP/SIGKILL/truncate/header
    # scribbles/attach flapping) against a live monitor, plus the
    # deterministic watchdog / stall-deadline / attach-backoff scenarios
    # (docs/FLEET.md threat model). A failing schedule prints a
    # replayable ORCA_TEST_SEED; archive every seed so a flake caught
    # here is never lost with the log.
    mkdir -p build/artifacts
    chaos_log="build/artifacts/chaos_${preset}.log"
    if ! ctest --preset "$preset" -L chaos --output-on-failure \
        | tee "$chaos_log"; then
      grep -o 'ORCA_TEST_SEED=0x[0-9a-fA-F]*' "$chaos_log" \
        >> build/artifacts/chaos_seeds.txt || true
      echo "ci.sh: chaos lane failed; replay seeds archived in" \
           "build/artifacts/chaos_seeds.txt"
      exit 1
    fi
  fi

  if [ "$preset" = default ]; then
    echo "=== [$preset] archive bench artifacts ==="
    artifacts=build/artifacts
    mkdir -p "$artifacts"
    ./build/bench/bench_event_path --smoke \
      | grep '^{' > "$artifacts/BENCH_event_path.json"
    ./build/bench/bench_primitives --smoke \
      | grep '^{' > "$artifacts/BENCH_primitives.json"
    ./build/bench/bench_pipeline --smoke \
      | grep '^{' > "$artifacts/BENCH_pipeline.json"
    ./build/bench/bench_shm_drain --smoke \
      | grep '^{' > "$artifacts/BENCH_shm.json"
    ./build/examples/telemetry_viewer --reps=200 --inner=8 \
      "--out=$artifacts/telemetry_viewer_trace.json" \
      | grep '^{' > "$artifacts/BENCH_telemetry_overhead.json"
    # SIGPROF sampling over syncbench; exits nonzero when no samples
    # landed, so a broken signal path fails CI here.
    ./build/examples/resilience_smoke --smoke \
      | grep '^{' > "$artifacts/BENCH_resilience_smoke.json"
    wc -l "$artifacts"/BENCH_*.json

    if [ "${PERF_GATE:-0}" = 1 ]; then
      echo "=== [$preset] perf gate (bench/baselines vs $artifacts) ==="
      python3 scripts/perf_gate.py \
        --baseline bench/baselines --current "$artifacts"
    fi
  fi
done

echo "ci.sh: all presets green (${presets[*]})"
