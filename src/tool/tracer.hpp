/// \file tracer.hpp
/// A tracing collector: registers for *every* event the runtime supports
/// and keeps an ordered in-memory log. Used by the Figure-3 sequence
/// example, by tests that assert event ordering, and as the "tracing"
/// usage mode the ORA spec's optional events exist for.
///
/// Storage is striped: arriving events land in per-slot staging buffers
/// (cache-line padded, one spinlock each) instead of one global lock, so
/// concurrent application threads -- or the async drainer delivering on
/// behalf of many origin threads -- never contend on a single line.
/// `log()` merges the stages by a global arrival sequence, preserving the
/// old single-log arrival order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collector/api.h"
#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "telemetry/export.hpp"
#include "tool/client2.hpp"

namespace orca::tool {

/// One trace entry.
struct TraceEvent {
  std::uint64_t seq = 0;  ///< global arrival order across all stages
  std::uint64_t ticks = 0;
  std::uint64_t ns = 0;   ///< SteadyClock stamp at record time (for export)
  OMP_COLLECTORAPI_EVENT event = OMP_EVENT_LAST;
  int tid = -1;
};

/// Event-trace collector (singleton, same reason as PrototypeCollector).
class TracingCollector {
 public:
  static TracingCollector& instance();

  TracingCollector(const TracingCollector&) = delete;
  TracingCollector& operator=(const TracingCollector&) = delete;

  /// Discover + START (via an RAII collector::Session) + register every
  /// event the runtime accepts. `events` empty means "all known events";
  /// unsupported ones are skipped (their registration returns
  /// OMP_ERRCODE_UNSUPPORTED).
  bool attach(std::vector<OMP_COLLECTORAPI_EVENT> events = {});

  void detach();
  bool attached() const noexcept {
    return session_.has_value() && session_->active();
  }

  /// Snapshot of the log in arrival order (merged across stages).
  std::vector<TraceEvent> log() const;

  /// Events of one kind in the log.
  std::size_t count(OMP_COLLECTORAPI_EVENT event) const;

  void clear();

  /// Multi-line rendering: "tick  tid  EVENT_NAME" per entry.
  std::string render() const;

  /// The log converted to telemetry ExternalEvents (instant markers,
  /// category "collector", keyed by origin thread id) so collector events
  /// merge onto the runtime's self-telemetry tracks in an exported trace.
  std::vector<telemetry::ExternalEvent> external_events() const;

  /// Write the merged Chrome/Perfetto trace — runtime telemetry timelines
  /// plus this collector event log — to `path`. False on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  /// Stripe count for the staging buffers. Thread ids map onto stripes
  /// modulo this, so collisions only cost occasional lock sharing.
  static constexpr std::size_t kStages = 16;

  struct Stage {
    mutable SpinLock mu;
    std::vector<TraceEvent> events;
  };

  TracingCollector() = default;
  static void event_callback(OMP_COLLECTORAPI_EVENT event);
  void record(int tid, std::uint64_t ticks, OMP_COLLECTORAPI_EVENT event);

  std::array<CachePadded<Stage>, kStages> stages_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::optional<collector::Client> client_;
  std::optional<collector::Session> session_;
};

}  // namespace orca::tool
