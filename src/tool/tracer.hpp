/// \file tracer.hpp
/// A tracing collector: registers for *every* event the runtime supports
/// and keeps an ordered in-memory log. Used by the Figure-3 sequence
/// example, by tests that assert event ordering, and as the "tracing"
/// usage mode the ORA spec's optional events exist for.
///
/// Since PR 8 the tracer owns no consume loop: it assembles the shared
/// stage vocabulary (docs/PIPELINE.md) behind a `Session::pipeline` feed —
///
///   decode -> [filter] -> killswitch -> fanout( log-collect,
///                                               interval -> aggregate )
///
/// The collect branch is the striped, ordered event log (`log()`,
/// `render()`, `write_chrome_trace()`); the aggregate branch folds
/// per-event-kind inter-arrival gaps into bounded log2 sketches
/// (`event_intervals()`), so a days-long trace session can keep the log
/// branch off and still report — the ROADMAP's constant-memory mode.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collector/api.h"
#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"
#include "telemetry/export.hpp"
#include "tool/client2.hpp"

namespace orca::tool {

/// One trace entry: the pipeline's decoded collector event, verbatim.
using TraceEvent = pipeline::Event;

/// Intermediate record of the tracer's aggregation branch: one event's
/// arrival gap to the previous event of the same kind (0 for the first).
struct EventGap {
  std::uint64_t kind = 0;
  std::uint64_t gap_ns = 0;
};

/// Event-trace collector (singleton, same reason as PrototypeCollector).
class TracingCollector {
 public:
  /// Optional selection applied before anything else in the assembly;
  /// events it rejects are counted as `filtered` in pipeline_stats().
  using Filter = std::function<bool(const TraceEvent&)>;

  static TracingCollector& instance();

  TracingCollector(const TracingCollector&) = delete;
  TracingCollector& operator=(const TracingCollector&) = delete;

  /// Discover + START (via an RAII collector::Session) + subscribe the
  /// stage assembly through `Session::pipeline`. `events` empty means
  /// "all known events"; unsupported ones are skipped. `keep` (optional)
  /// filters events before they reach the log; `max_events` > 0 arms the
  /// assembly's killswitch to self-trip after that many events pass.
  bool attach(std::vector<OMP_COLLECTORAPI_EVENT> events = {},
              Filter keep = nullptr, std::uint64_t max_events = 0);

  void detach();
  bool attached() const noexcept {
    return session_.has_value() && session_->active();
  }

  /// Snapshot of the log in arrival order (merged across the collect
  /// stage's stripes by the feed's global sequence).
  std::vector<TraceEvent> log() const;

  /// Events of one kind in the log.
  std::size_t count(OMP_COLLECTORAPI_EVENT event) const;

  void clear();

  /// Multi-line rendering: "tick  tid  EVENT_NAME" per entry.
  std::string render() const;

  /// The log converted to telemetry ExternalEvents (instant markers,
  /// category "collector", keyed by origin thread id) so collector events
  /// merge onto the runtime's self-telemetry tracks in an exported trace.
  std::vector<telemetry::ExternalEvent> external_events() const;

  /// Write the merged Chrome/Perfetto trace — runtime telemetry timelines
  /// plus this collector event log — to `path`. False on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Per-event-kind inter-arrival sketches from the aggregation branch
  /// (key = OMP_COLLECTORAPI_EVENT value), sorted by key.
  std::vector<pipeline::AggregateRow> event_intervals() const;

  /// Trip the assembly's killswitch: further events are dropped (and
  /// honestly counted) until the next attach().
  void halt() noexcept { kill_.trip(); }
  bool halted() const noexcept { return kill_.tripped(); }

  /// Accounting of every stage in the current assembly.
  std::vector<pipeline::StageStats> pipeline_stats() const {
    return pipeline_.stats();
  }
  std::string render_pipeline() const { return pipeline_.render(); }

 private:
  TracingCollector() = default;

  std::optional<collector::Client> client_;
  std::optional<collector::Session> session_;
  collector::EventFeed feed_;
  pipeline::Pipeline<TraceEvent> pipeline_;
  std::shared_ptr<pipeline::CollectStage<TraceEvent>> log_;
  std::shared_ptr<pipeline::AggregateStage<EventGap>> intervals_;
  pipeline::KillSwitch kill_;
};

}  // namespace orca::tool
