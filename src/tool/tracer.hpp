/// \file tracer.hpp
/// A tracing collector: registers for *every* event the runtime supports
/// and keeps an ordered in-memory log. Used by the Figure-3 sequence
/// example, by tests that assert event ordering, and as the "tracing"
/// usage mode the ORA spec's optional events exist for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collector/api.h"
#include "common/spinlock.hpp"
#include "tool/client.hpp"

namespace orca::tool {

/// One trace entry.
struct TraceEvent {
  std::uint64_t ticks = 0;
  OMP_COLLECTORAPI_EVENT event = OMP_EVENT_LAST;
  int tid = -1;
};

/// Event-trace collector (singleton, same reason as PrototypeCollector).
class TracingCollector {
 public:
  static TracingCollector& instance();

  TracingCollector(const TracingCollector&) = delete;
  TracingCollector& operator=(const TracingCollector&) = delete;

  /// Discover + START + register every event the runtime accepts.
  /// `events` empty means "all known events"; unsupported ones are
  /// skipped (their registration returns OMP_ERRCODE_UNSUPPORTED).
  bool attach(std::vector<OMP_COLLECTORAPI_EVENT> events = {});

  void detach();
  bool attached() const noexcept { return attached_; }

  /// Snapshot of the log in arrival order.
  std::vector<TraceEvent> log() const;

  /// Events of one kind in the log.
  std::size_t count(OMP_COLLECTORAPI_EVENT event) const;

  void clear();

  /// Multi-line rendering: "tick  tid  EVENT_NAME" per entry.
  std::string render() const;

 private:
  TracingCollector() = default;
  static void event_callback(OMP_COLLECTORAPI_EVENT event);

  mutable SpinLock mu_;
  std::vector<TraceEvent> events_;
  std::optional<CollectorClient> client_;
  bool attached_ = false;
};

}  // namespace orca::tool
