#include "tool/sampling_collector.hpp"

#include <sys/time.h>

#include <algorithm>
#include <csignal>
#include <cstring>

#include "collector/api.h"
#include "collector/message.hpp"
#include "common/clock.hpp"
#include "runtime/config.hpp"
#include "runtime/resilience.hpp"
#include "shm/exporter.hpp"

namespace orca::tool {
namespace {

/// Lane slot of the calling thread: -1 = not yet assigned, -2 = no slot
/// left (samples from this thread are counted as drops).
thread_local int tls_lane = -1;

/// Previous SIGPROF disposition, restored by stop().
struct sigaction g_old_sa;  // NOLINT: signal-handler state must be global

constexpr std::size_t kStatePayload = sizeof(int) + sizeof(unsigned long);
constexpr std::size_t kPridPayload = sizeof(unsigned long);

/// Append one query record at `off` in `buf` (zeroed mem, sz/r_req set).
/// Returns the record's offset and advances `off`. All stores go through
/// memcpy: the buffer is a raw char array on the signal handler's stack.
std::size_t put_record(char* buf, std::size_t& off, int req,
                       std::size_t capacity) noexcept {
  const std::size_t rec = off;
  const int sz = static_cast<int>(collector::kRecordHeaderSize + capacity);
  std::memset(buf + rec, 0, static_cast<std::size_t>(sz));
  std::memcpy(buf + rec + offsetof(omp_collector_message, sz), &sz,
              sizeof(sz));
  std::memcpy(buf + rec + offsetof(omp_collector_message, r_req), &req,
              sizeof(req));
  off += static_cast<std::size_t>(sz);
  return rec;
}

OMP_COLLECTORAPI_EC record_errcode(const char* buf, std::size_t rec) noexcept {
  int ec = 0;
  std::memcpy(&ec, buf + rec + offsetof(omp_collector_message, r_errcode),
              sizeof(ec));
  return static_cast<OMP_COLLECTORAPI_EC>(ec);
}

}  // namespace

SamplingCollector& SamplingCollector::instance() {
  static SamplingCollector c;
  return c;
}

void SamplingCollector::handle_sigprof(int) { instance().on_sigprof(); }

void SamplingCollector::on_sigprof() noexcept {
  handler_invocations_.fetch_add(1, std::memory_order_relaxed);
  // Acquire on running_ orders the lanes_/api_ reads below against the
  // start() that built them (and ignores stragglers after stop()).
  if (!running_.load(std::memory_order_acquire) || api_ == nullptr) return;

  if (tls_lane == -1) {
    // fetch_add is async-signal-safe; lanes_ itself is immutable while
    // running (start() builds it before arming the timer).
    const int n = next_lane_.fetch_add(1, std::memory_order_relaxed);
    tls_lane = n < static_cast<int>(lanes_.size()) ? n : -2;
  }

  // Hand-built request buffer on this stack frame — MessageBuilder
  // allocates, so it is off-limits here. Two fast-path-eligible records
  // (STATE, CURRENT_PRID) plus the sz == 0 terminator.
  char buf[2 * (collector::kRecordHeaderSize + kStatePayload) + sizeof(int)];
  std::size_t off = 0;
  const std::size_t state_rec =
      put_record(buf, off, OMP_REQ_STATE, kStatePayload);
  const std::size_t prid_rec =
      put_record(buf, off, OMP_REQ_CURRENT_PRID, kPridPayload);
  const int terminator = 0;
  std::memcpy(buf + off, &terminator, sizeof(terminator));

  if (api_(buf) != 0) {
    api_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  int state = 0;
  if (record_errcode(buf, state_rec) == OMP_ERRCODE_OK) {
    std::memcpy(&state, buf + state_rec + collector::kRecordHeaderSize,
                sizeof(state));
  }
  // Outside any parallel region the runtime answers SEQUENCE_ERR; the
  // sample then carries region 0, which the merge step reads as "serial".
  unsigned long region = 0;
  if (record_errcode(buf, prid_rec) == OMP_ERRCODE_OK) {
    std::memcpy(&region, buf + prid_rec + collector::kRecordHeaderSize,
                sizeof(region));
  }

  if (tls_lane < 0) {
    unassigned_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Mirror into the shm export segment (fleet profiling) before the local
  // lane: mirror_sample is wait-free and async-signal-safe, and disarmed it
  // is one load + branch.
  shm::mirror_sample(tls_lane, state, region);
  perf::EventSample s;
  s.ticks = TscClock::now();
  s.region_id = region;
  s.event = state;  // thread-state value rides in the event field
  s.tid = tls_lane;
  lanes_[static_cast<std::size_t>(tls_lane)]->record(s);
}

bool SamplingCollector::start(ApiFn api, const SamplingOptions& opts) {
  if (api == nullptr || opts.hz <= 0 || running_.load()) return false;

  lanes_.clear();
  const int slots = std::max(opts.max_threads, 1);
  lanes_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    lanes_.push_back(
        std::make_unique<perf::SignalSampleLane>(opts.lane_capacity));
  }
  next_lane_.store(0, std::memory_order_relaxed);
  api_ = api;

  if (opts.crash_section && crash_slot_ < 0) {
    crash_slot_ = rt::resilience::register_crash_section(
        "sampler", &SamplingCollector::crash_section, this);
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &SamplingCollector::handle_sigprof;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &sa, &g_old_sa) != 0) return false;
  handler_installed_ = true;

  // running_ published before the timer fires: the handler may run on any
  // thread the instant setitimer succeeds.
  running_.store(true, std::memory_order_release);

  itimerval itv;
  itv.it_interval.tv_sec = 0;
  itv.it_interval.tv_usec = std::max(1L, 1000000L / opts.hz);
  itv.it_value = itv.it_interval;
  if (setitimer(ITIMER_PROF, &itv, nullptr) != 0) {
    running_.store(false, std::memory_order_release);
    stop();
    return false;
  }
  timer_armed_ = true;
  return true;
}

void SamplingCollector::stop() {
  if (timer_armed_) {
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    timer_armed_ = false;
  }
  if (handler_installed_) {
    sigaction(SIGPROF, &g_old_sa, nullptr);
    handler_installed_ = false;
  }
  running_.store(false, std::memory_order_release);
  if (crash_slot_ >= 0) {
    rt::resilience::unregister_crash_section(crash_slot_);
    crash_slot_ = -1;
  }
}

SamplingStats SamplingCollector::stats() const noexcept {
  SamplingStats s;
  s.handler_invocations =
      handler_invocations_.load(std::memory_order_relaxed);
  s.api_failures = api_failures_.load(std::memory_order_relaxed);
  s.dropped = unassigned_drops_.load(std::memory_order_relaxed);
  for (const auto& lane : lanes_) {
    s.samples += lane->count();
    s.dropped += lane->dropped();
  }
  return s;
}

SamplingOptions SamplingOptions::from_env() {
  SamplingOptions opts;
  opts.hz = static_cast<int>(rt::RuntimeConfig::env_long(
      "ORCA_SAMPLING_HZ", opts.hz, 1, "a positive frequency in Hz"));
  opts.lane_capacity = static_cast<std::size_t>(rt::RuntimeConfig::env_long(
      "ORCA_SAMPLING_LANE_CAPACITY", static_cast<long>(opts.lane_capacity),
      1, "a positive sample count"));
  opts.max_threads = static_cast<int>(rt::RuntimeConfig::env_long(
      "ORCA_SAMPLING_MAX_THREADS", opts.max_threads, 1,
      "a positive thread count"));
  return opts;
}

std::size_t SamplingCollector::pump(
    const pipeline::StagePtr<perf::EventSample>& head) const {
  if (head == nullptr) return 0;
  std::size_t pumped = 0;
  for (const auto& lane : lanes_) {
    // count() is release-published per slot, so every sample it admits is
    // fully written even while the handler is still firing elsewhere.
    const std::size_t n = lane->count();
    const perf::EventSample* data = lane->data();
    for (std::size_t i = 0; i < n; ++i) head->push(data[i]);
    pumped += n;
  }
  return pumped;
}

std::vector<perf::EventSample> SamplingCollector::merged_samples() const {
  auto merged = pipeline::collect<perf::EventSample>("samples");
  pump(merged);
  return merged->sorted(
      [](const perf::EventSample& a, const perf::EventSample& b) {
        return a.ticks < b.ticks;
      });
}

std::vector<pipeline::AggregateRow> SamplingCollector::region_report(
    std::size_t max_regions) const {
  // Assembly: delta (tick gap to the lane's previous sample; lanes are
  // pumped sequentially, so one shared slot keyed by lane suffices) ->
  // bounded per-region aggregate.
  auto agg = pipeline::aggregate<RegionSlice>(
      "by-region", [](const RegionSlice& s) { return s.region; },
      [](const RegionSlice& s) { return s.ticks; }, max_regions);
  auto prev = std::make_shared<std::vector<std::uint64_t>>(lanes_.size(), 0);
  pipeline::StagePtr<perf::EventSample> delta = pipeline::map<
      perf::EventSample>(
      "delta",
      [prev](const perf::EventSample& s) {
        RegionSlice slice;
        slice.region = s.region_id;
        const auto lane = static_cast<std::size_t>(s.tid);
        if (lane < prev->size()) {
          const std::uint64_t last = (*prev)[lane];
          (*prev)[lane] = s.ticks;
          slice.ticks = (last == 0 || s.ticks < last) ? 0 : s.ticks - last;
        }
        return slice;
      },
      pipeline::StagePtr<RegionSlice>(agg));
  pump(delta);
  return agg->snapshot();
}

std::string SamplingCollector::render_region_report(
    std::size_t max_regions) const {
  return pipeline::render_aggregate(region_report(max_regions), "region",
                                    "ticks");
}

void SamplingCollector::clear() {
  for (auto& lane : lanes_) lane->clear();
  handler_invocations_.store(0, std::memory_order_relaxed);
  unassigned_drops_.store(0, std::memory_order_relaxed);
  api_failures_.store(0, std::memory_order_relaxed);
}

void SamplingCollector::crash_section(void* ctx, int fd) {
  auto* self = static_cast<SamplingCollector*>(ctx);
  using rt::resilience::write_kv;
  write_kv(fd, "handler_invocations",
           self->handler_invocations_.load(std::memory_order_relaxed));
  std::uint64_t samples = 0;
  std::uint64_t dropped =
      self->unassigned_drops_.load(std::memory_order_relaxed);
  // count() is release-published per slot, so every sample the sum admits
  // is fully written even when this runs on the crashing thread.
  for (const auto& lane : self->lanes_) {
    samples += lane->count();
    dropped += lane->dropped();
  }
  write_kv(fd, "samples", samples);
  write_kv(fd, "dropped", dropped);
  write_kv(fd, "api_failures",
           self->api_failures_.load(std::memory_order_relaxed));
}

}  // namespace orca::tool
