/// \file client2.hpp
/// Typed collector client API v2: `orca::collector::Client`.
///
/// Two-layer story (docs/PROTOCOL.md): the *wire format* stays the ORA
/// white-paper byte protocol — `omp_collector_message` records handed to
/// `__omp_collector_api` — unchanged and ABI-stable. This header is the
/// sanctioned *typed* layer on top: RAII lifecycle (`Session`),
/// `Expected<T>`-style queries that cannot be read without checking the
/// errcode, and `register_event` overloads that own the callback's
/// lifetime. Tools should speak this layer; only protocol tests and
/// foreign-language collectors need `MessageBuilder` directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "collector/api.h"
#include "pipeline/pipeline.hpp"

namespace orca::collector {

/// Minimal `std::expected`-alike (the repo targets C++20; std::expected is
/// C++23): either a value or the per-record errcode the runtime answered.
template <typename T>
class Expected {
 public:
  Expected(T value) noexcept(std::is_nothrow_move_constructible_v<T>)
      : value_(std::move(value)), ec_(OMP_ERRCODE_OK) {}
  Expected(OMP_COLLECTORAPI_EC ec) noexcept : ec_(ec) {}

  bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Precondition: has_value().
  T& value() noexcept { return *value_; }
  const T& value() const noexcept { return *value_; }
  T& operator*() noexcept { return *value_; }
  const T& operator*() const noexcept { return *value_; }
  const T* operator->() const noexcept { return &*value_; }

  /// The errcode that denied the value (OMP_ERRCODE_OK iff has_value()).
  OMP_COLLECTORAPI_EC error() const noexcept { return ec_; }

  T value_or(T alt) const { return has_value() ? *value_ : std::move(alt); }

 private:
  std::optional<T> value_;
  OMP_COLLECTORAPI_EC ec_ = OMP_ERRCODE_OK;
};

/// Reply of Client::state(): the thread state plus, for wait states, the
/// wait id the runtime appended (paper IV-D).
struct ThreadState {
  OMP_COLLECTOR_API_THR_STATE state = THR_SERIAL_STATE;
  unsigned long wait_id = 0;
  bool has_wait_id = false;
};

/// RAII handle for an owning event registration (Client::register_event
/// with a std::function). Destroying (or reset()ing) the handle sends
/// OMP_REQ_UNREGISTER and releases the owned callable. Move-only.
///
/// Owned handlers are routed through one process-wide trampoline table
/// keyed by event kind (the ORA callback ABI carries no context pointer),
/// so at most one owning registration per event kind exists per process;
/// a newer one displaces the older handler, exactly like the runtime's
/// last-registration-wins table.
class Registration {
 public:
  Registration() = default;
  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept {
    if (this != &other) {
      reset();
      api_ = std::move(other.api_);
      event_ = other.event_;
      other.event_ = 0;
    }
    return *this;
  }
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;
  ~Registration() { reset(); }

  explicit operator bool() const noexcept { return event_ != 0; }
  OMP_COLLECTORAPI_EVENT event() const noexcept {
    return static_cast<OMP_COLLECTORAPI_EVENT>(event_);
  }

  /// Unregister on the wire and drop the owned handler. Idempotent.
  void reset() noexcept;

 private:
  friend class Client;
  Registration(std::function<int(void*)> api, int event)
      : api_(std::move(api)), event_(event) {}

  std::function<int(void*)> api_;
  int event_ = 0;  ///< 0 = empty handle
};

/// Typed wrapper around one `__omp_collector_api` entry point. Copyable;
/// every request builds a fresh single-record message, so a Client has no
/// mutable state of its own.
class Client {
 public:
  /// Transport to the runtime: usually the dlsym'd function pointer, or a
  /// lambda binding a Runtime instance in tests/multi-runtime setups.
  using ApiFn = std::function<int(void*)>;

  /// Probe the dynamic linker for the ORA symbol (paper Sec. IV); empty
  /// when no ORA-capable runtime is loaded.
  static std::optional<Client> discover();

  explicit Client(ApiFn api) : api_(std::move(api)) {}

  // --- lifecycle (prefer Session for paired START/STOP) -------------------
  OMP_COLLECTORAPI_EC start() const;
  OMP_COLLECTORAPI_EC stop() const;
  OMP_COLLECTORAPI_EC pause() const;
  OMP_COLLECTORAPI_EC resume() const;

  // --- typed queries -------------------------------------------------------

  /// OMP_REQ_STATE for the calling thread.
  Expected<ThreadState> state() const;

  /// OMP_REQ_CURRENT_PRID / OMP_REQ_PARENT_PRID. Outside any parallel
  /// region the runtime answers SEQUENCE_ERR (paper IV-E), which surfaces
  /// here as the error, not as a fake id 0.
  Expected<unsigned long> current_prid() const;
  Expected<unsigned long> parent_prid() const;

  /// ORCA_REQ_EVENT_STATS. UNSUPPORTED on sync-delivery runtimes.
  Expected<orca_event_stats> event_stats() const;

  /// ORCA_REQ_TELEMETRY_SNAPSHOT. UNSUPPORTED on runtimes whose config
  /// never armed self-telemetry (ORCA_TELEMETRY=off, the default).
  Expected<orca_telemetry_snapshot> telemetry_snapshot() const;

  /// ORCA_REQ_RESILIENCE_STATS. Always supported; the runtime answers it
  /// on the async-signal-safe fast path, so it is also the query of choice
  /// from a sampling signal handler.
  Expected<orca_resilience_stats> resilience_stats() const;

  // --- event registration --------------------------------------------------

  /// Raw-ABI registration: the caller guarantees `cb` outlives it.
  OMP_COLLECTORAPI_EC register_event(OMP_COLLECTORAPI_EVENT event,
                                     OMP_COLLECTORAPI_CALLBACK cb) const;

  /// Owning registration: the returned handle keeps `fn` alive and
  /// unregisters on destruction. See Registration for the one-per-event
  /// trampoline contract.
  Expected<Registration> register_event(
      OMP_COLLECTORAPI_EVENT event,
      std::function<void(OMP_COLLECTORAPI_EVENT)> fn) const;

  OMP_COLLECTORAPI_EC unregister_event(OMP_COLLECTORAPI_EVENT event) const;

  // --- escape hatch ---------------------------------------------------------

  /// Hand a raw composite buffer to the runtime (wire-format layer).
  int raw(void* buffer) const { return api_(buffer); }

  const ApiFn& api() const noexcept { return api_; }

 private:
  OMP_COLLECTORAPI_EC simple_request(int req) const;
  Expected<unsigned long> id_request(int req) const;

  ApiFn api_;
};

/// Live event subscription created by Session::pipeline(): a bundle of
/// owning Registrations whose shared decode callback turns raw ORA
/// callbacks into `pipeline::Event`s and pushes them into the consumer's
/// stage graph. Destroying (or reset()ing) the feed unregisters every
/// event and releases the decode closure. Move-only.
class EventFeed {
 public:
  EventFeed() = default;
  EventFeed(EventFeed&&) = default;
  EventFeed& operator=(EventFeed&&) = default;
  EventFeed(const EventFeed&) = delete;
  EventFeed& operator=(const EventFeed&) = delete;

  /// True when at least one event registration is live.
  explicit operator bool() const noexcept { return !regs_.empty(); }
  std::size_t subscribed() const noexcept { return regs_.size(); }

  /// Unregister everything and drop the decode closure. Idempotent.
  void reset() noexcept { regs_.clear(); }

 private:
  friend class Session;
  std::vector<Registration> regs_;
  /// Global arrival order across all events of the feed.
  std::shared_ptr<std::atomic<std::uint64_t>> seq_;
};

/// RAII collector session: OMP_REQ_START on construction, OMP_REQ_STOP on
/// destruction (when START succeeded). Move-only.
class Session {
 public:
  explicit Session(const Client& client)
      : api_(client.api()), start_ec_(client.start()) {}

  Session(Session&& other) noexcept { *this = std::move(other); }
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      stop();
      api_ = std::move(other.api_);
      start_ec_ = other.start_ec_;
      other.start_ec_ = OMP_ERRCODE_SEQUENCE_ERR;
    }
    return *this;
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session() { stop(); }

  /// True when this session owns a running collector lifecycle.
  bool active() const noexcept { return start_ec_ == OMP_ERRCODE_OK; }
  OMP_COLLECTORAPI_EC start_errcode() const noexcept { return start_ec_; }

  /// Early STOP; the destructor then does nothing. Returns the STOP
  /// errcode (SEQUENCE_ERR when the session never started).
  OMP_COLLECTORAPI_EC stop() noexcept;

  /// The blessed way to consume events (docs/PIPELINE.md): subscribe the
  /// head of a stage assembly to `events` (empty = every standard event)
  /// and decode each callback into a `pipeline::Event` — origin slot +
  /// enqueue ticks recovered from the async drainer's delivery context
  /// when present, the calling thread + SteadyClock otherwise — before
  /// pushing it into the graph.
  ///
  /// Events the runtime declines (OMP_ERRCODE_UNSUPPORTED optional events)
  /// are skipped, mirroring what a tracer wants. The returned feed owns
  /// the registrations; keep it alive as long as the pipeline should
  /// receive events, and destroy it *before* tearing down the stages it
  /// feeds. Returns an empty feed when the session is not active.
  EventFeed pipeline(pipeline::StagePtr<pipeline::Event> head,
                     std::vector<OMP_COLLECTORAPI_EVENT> events = {});

 private:
  Client::ApiFn api_;
  OMP_COLLECTORAPI_EC start_ec_ = OMP_ERRCODE_SEQUENCE_ERR;
};

}  // namespace orca::collector
