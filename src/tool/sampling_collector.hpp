/// \file sampling_collector.hpp
/// SIGPROF-driven sampling collector exercising the runtime's
/// async-signal-safe ORA query fast path.
///
/// The paper's collector model is event-driven: the tool registers
/// callbacks and the runtime calls out at fork/join/wait boundaries. This
/// collector is the complementary *interrupt-driven* profiler: a process
/// CPU-time interval timer (ITIMER_PROF) delivers SIGPROF to whichever
/// thread is running, and the handler queries the runtime *from signal
/// context* — legal only because the runtime answers STATE /
/// CURRENT_PRID / RESILIENCE_STATS buffers on a lock-free, allocation-free
/// path (docs/RESILIENCE.md). Samples land in preallocated
/// `perf::SignalSampleLane`s; the handler performs no allocation, locking,
/// or syscalls beyond what `sigaction(2)` sanctions.
///
/// One instance per process (signal handlers carry no context pointer);
/// access it through `SamplingCollector::instance()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "perf/samples.hpp"

namespace orca::tool {

/// Tuning for one sampling session.
struct SamplingOptions {
  int hz = 100;                  ///< SIGPROF frequency (process CPU time)
  std::size_t lane_capacity = 65536;  ///< preallocated samples per thread
  int max_threads = 64;          ///< per-thread lane slots
  bool crash_section = true;     ///< register a postmortem dump section
};

/// Aggregate counters of one sampling session.
struct SamplingStats {
  std::uint64_t handler_invocations = 0;  ///< SIGPROF deliveries observed
  std::uint64_t samples = 0;              ///< samples stored across lanes
  std::uint64_t dropped = 0;              ///< samples shed (lane full / no slot)
  std::uint64_t api_failures = 0;         ///< fast-path calls answering != 0
};

/// Process-wide SIGPROF sampling collector. start() installs the handler
/// and arms the timer; stop() disarms and restores the previous handler.
/// All query traffic goes through a raw function pointer (no std::function
/// — the handler must not touch anything that may allocate).
class SamplingCollector {
 public:
  /// Transport to the runtime. Must answer STATE/CURRENT_PRID buffers on
  /// the signal-safe fast path — `__omp_collector_api` of an ORCA runtime,
  /// or a capture-free trampoline in tests.
  using ApiFn = int (*)(void*);

  static SamplingCollector& instance();

  /// Install the SIGPROF handler and arm ITIMER_PROF at opts.hz. Returns
  /// false when already running or when the timer cannot be armed.
  bool start(ApiFn api, const SamplingOptions& opts = {});

  /// Disarm the timer, restore the previous SIGPROF disposition, and
  /// quiesce (samples become safe to merge). Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  SamplingStats stats() const noexcept;

  /// All samples across lanes, ordered by tick. Quiescent-side: call after
  /// stop().
  std::vector<perf::EventSample> merged_samples() const;

  /// Drop all recorded samples and counters (quiescent-side).
  void clear();

  SamplingCollector(const SamplingCollector&) = delete;
  SamplingCollector& operator=(const SamplingCollector&) = delete;

 private:
  SamplingCollector() = default;

  static void handle_sigprof(int);
  static void crash_section(void* ctx, int fd);
  void on_sigprof() noexcept;

  ApiFn api_ = nullptr;
  std::vector<std::unique_ptr<perf::SignalSampleLane>> lanes_;
  std::atomic<int> next_lane_{0};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> handler_invocations_{0};
  std::atomic<std::uint64_t> unassigned_drops_{0};
  std::atomic<std::uint64_t> api_failures_{0};
  int crash_slot_ = -1;
  bool timer_armed_ = false;
  bool handler_installed_ = false;
};

}  // namespace orca::tool
