/// \file sampling_collector.hpp
/// SIGPROF-driven sampling collector exercising the runtime's
/// async-signal-safe ORA query fast path.
///
/// The paper's collector model is event-driven: the tool registers
/// callbacks and the runtime calls out at fork/join/wait boundaries. This
/// collector is the complementary *interrupt-driven* profiler: a process
/// CPU-time interval timer (ITIMER_PROF) delivers SIGPROF to whichever
/// thread is running, and the handler queries the runtime *from signal
/// context* — legal only because the runtime answers STATE /
/// CURRENT_PRID / RESILIENCE_STATS buffers on a lock-free, allocation-free
/// path (docs/RESILIENCE.md). Samples land in preallocated
/// `perf::SignalSampleLane`s; the handler performs no allocation, locking,
/// or syscalls beyond what `sigaction(2)` sanctions.
///
/// One instance per process (signal handlers carry no context pointer);
/// access it through `SamplingCollector::instance()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perf/samples.hpp"
#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"

namespace orca::tool {

/// Tuning for one sampling session.
struct SamplingOptions {
  int hz = 100;                  ///< SIGPROF frequency (process CPU time)
  std::size_t lane_capacity = 65536;  ///< preallocated samples per thread
  int max_threads = 64;          ///< per-thread lane slots
  bool crash_section = true;     ///< register a postmortem dump section

  /// Read ORCA_SAMPLING_HZ / ORCA_SAMPLING_LANE_CAPACITY /
  /// ORCA_SAMPLING_MAX_THREADS over these defaults, warning (and keeping
  /// the default) on misparse like every other ORCA_* knob.
  static SamplingOptions from_env();
};

/// Intermediate record of the region-report assembly: one sample's CPU
/// slice (in TSC ticks) attributed to a parallel region (0 = serial).
struct RegionSlice {
  std::uint64_t region = 0;
  std::uint64_t ticks = 0;
};

/// Aggregate counters of one sampling session.
struct SamplingStats {
  std::uint64_t handler_invocations = 0;  ///< SIGPROF deliveries observed
  std::uint64_t samples = 0;              ///< samples stored across lanes
  std::uint64_t dropped = 0;              ///< samples shed (lane full / no slot)
  std::uint64_t api_failures = 0;         ///< fast-path calls answering != 0
};

/// Process-wide SIGPROF sampling collector. start() installs the handler
/// and arms the timer; stop() disarms and restores the previous handler.
/// All query traffic goes through a raw function pointer (no std::function
/// — the handler must not touch anything that may allocate).
class SamplingCollector {
 public:
  /// Transport to the runtime. Must answer STATE/CURRENT_PRID buffers on
  /// the signal-safe fast path — `__omp_collector_api` of an ORCA runtime,
  /// or a capture-free trampoline in tests.
  using ApiFn = int (*)(void*);

  static SamplingCollector& instance();

  /// Install the SIGPROF handler and arm ITIMER_PROF at opts.hz. Returns
  /// false when already running or when the timer cannot be armed.
  bool start(ApiFn api, const SamplingOptions& opts = {});

  /// Disarm the timer, restore the previous SIGPROF disposition, and
  /// quiesce (samples become safe to merge). Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  SamplingStats stats() const noexcept;

  /// Pump every retained sample, lane by lane, into a stage assembly —
  /// the sampler's source adapter onto the shared pipeline vocabulary
  /// (docs/PIPELINE.md). Returns the number pushed. Quiescent-side: call
  /// after stop(); the lanes are not consumed (pump again as needed).
  std::size_t pump(const pipeline::StagePtr<perf::EventSample>& head) const;

  /// All samples across lanes, ordered by tick — a collect-stage assembly
  /// over pump(). Quiescent-side: call after stop().
  std::vector<perf::EventSample> merged_samples() const;

  /// Per-region CPU-time sketches: samples flow through a delta stage
  /// (tick gap to the lane's previous sample ≈ CPU time charged at the
  /// sampling rate) into a bounded online aggregate keyed by region id —
  /// region 0 is serial execution. Constant-memory: at most `max_regions`
  /// keys plus one overflow row. Quiescent-side: call after stop().
  std::vector<pipeline::AggregateRow> region_report(
      std::size_t max_regions = 256) const;

  /// region_report() rendered as an aligned text table.
  std::string render_region_report(std::size_t max_regions = 256) const;

  /// Drop all recorded samples and counters (quiescent-side).
  void clear();

  SamplingCollector(const SamplingCollector&) = delete;
  SamplingCollector& operator=(const SamplingCollector&) = delete;

 private:
  SamplingCollector() = default;

  static void handle_sigprof(int);
  static void crash_section(void* ctx, int fd);
  void on_sigprof() noexcept;

  ApiFn api_ = nullptr;
  std::vector<std::unique_ptr<perf::SignalSampleLane>> lanes_;
  std::atomic<int> next_lane_{0};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> handler_invocations_{0};
  std::atomic<std::uint64_t> unassigned_drops_{0};
  std::atomic<std::uint64_t> api_failures_{0};
  int crash_slot_ = -1;
  bool timer_armed_ = false;
  bool handler_installed_ = false;
};

}  // namespace orca::tool
