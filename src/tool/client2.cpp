#include "tool/client2.hpp"

#include <dlfcn.h>

#include <array>
#include <mutex>

#include "collector/async.hpp"
#include "collector/message.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "runtime/ompc_api.h"

namespace orca::collector {
namespace {

/// Process-wide table of owned handlers, one slot per event kind. The ORA
/// callback ABI (`void(*)(OMP_COLLECTORAPI_EVENT)`) carries no context
/// pointer, so owned std::function handlers are reached through a single
/// static trampoline that looks the handler up by the event it was invoked
/// with. A SpinLock (not std::mutex) keeps the trampoline usable from the
/// runtime's emission path, which must never block on a sleeping lock.
struct OwnedHandlers {
  orca::SpinLock mu;
  std::array<std::function<void(OMP_COLLECTORAPI_EVENT)>, ORCA_EVENT_EXT_LAST>
      fns;
};

OwnedHandlers& handlers() {
  static OwnedHandlers table;
  return table;
}

bool handler_index_ok(int event) noexcept {
  return event > 0 && event < ORCA_EVENT_EXT_LAST;
}

/// The one callback pointer ever registered for owned handlers. Copies the
/// handler out under the lock and invokes it unlocked, so a handler may
/// re-enter the client (e.g. query state) without deadlocking the table.
void trampoline(OMP_COLLECTORAPI_EVENT event) {
  if (!handler_index_ok(static_cast<int>(event))) return;
  std::function<void(OMP_COLLECTORAPI_EVENT)> fn;
  {
    std::scoped_lock lock(handlers().mu);
    fn = handlers().fns[static_cast<std::size_t>(event)];
  }
  if (fn) fn(event);
}

void install_handler(int event,
                     std::function<void(OMP_COLLECTORAPI_EVENT)> fn) {
  std::scoped_lock lock(handlers().mu);
  handlers().fns[static_cast<std::size_t>(event)] = std::move(fn);
}

void drop_handler(int event) {
  if (!handler_index_ok(event)) return;
  std::scoped_lock lock(handlers().mu);
  handlers().fns[static_cast<std::size_t>(event)] = nullptr;
}

}  // namespace

void Registration::reset() noexcept {
  if (event_ == 0) return;
  const int event = event_;
  event_ = 0;
  // Unregister on the wire first, then release the owned callable: between
  // the two a racing emission still finds a live handler; after the drop
  // the trampoline degrades to a no-op even if the wire request failed
  // (e.g. the collector already sent STOP).
  MessageBuilder msg;
  msg.add_unregister(event);
  if (api_) (void)api_(msg.buffer());
  drop_handler(event);
  api_ = nullptr;
}

std::optional<Client> Client::discover() {
  // RTLD_DEFAULT scans every loaded object, exactly like a preloaded tool
  // probing for an ORA-capable OpenMP runtime (paper Sec. IV).
  void* sym = ::dlsym(RTLD_DEFAULT, "__omp_collector_api");
  if (sym == nullptr) sym = ::dlsym(RTLD_DEFAULT, "omp_collector_api");
  if (sym == nullptr) return std::nullopt;
  return Client(ApiFn(reinterpret_cast<int (*)(void*)>(sym)));
}

OMP_COLLECTORAPI_EC Client::simple_request(int req) const {
  MessageBuilder msg;
  msg.add(req);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

OMP_COLLECTORAPI_EC Client::start() const {
  return simple_request(OMP_REQ_START);
}
OMP_COLLECTORAPI_EC Client::stop() const {
  return simple_request(OMP_REQ_STOP);
}
OMP_COLLECTORAPI_EC Client::pause() const {
  return simple_request(OMP_REQ_PAUSE);
}
OMP_COLLECTORAPI_EC Client::resume() const {
  return simple_request(OMP_REQ_RESUME);
}

Expected<ThreadState> Client::state() const {
  MessageBuilder msg;
  msg.add_state_query();
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return msg.errcode(0);

  int state_value = 0;
  if (!msg.reply_value(0, &state_value)) return OMP_ERRCODE_ERROR;
  ThreadState reply;
  reply.state = static_cast<OMP_COLLECTOR_API_THR_STATE>(state_value);
  // The wait id follows the state value for wait states (paper IV-D);
  // r_sz tells us whether the runtime appended one.
  if (static_cast<std::size_t>(msg.reply_size(0)) >=
      sizeof(int) + sizeof(unsigned long)) {
    unsigned long wait_id = 0;
    if (msg.reply_value(0, &wait_id, sizeof(int))) {
      reply.wait_id = wait_id;
      reply.has_wait_id = true;
    }
  }
  return reply;
}

Expected<unsigned long> Client::id_request(int req) const {
  MessageBuilder msg;
  msg.add_id_query(static_cast<OMP_COLLECTORAPI_REQUEST>(req));
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return msg.errcode(0);
  unsigned long id = 0;
  if (!msg.reply_value(0, &id)) return OMP_ERRCODE_ERROR;
  return id;
}

Expected<unsigned long> Client::current_prid() const {
  return id_request(OMP_REQ_CURRENT_PRID);
}

Expected<unsigned long> Client::parent_prid() const {
  return id_request(OMP_REQ_PARENT_PRID);
}

Expected<orca_event_stats> Client::event_stats() const {
  MessageBuilder msg;
  msg.add_event_stats_query();
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return msg.errcode(0);
  orca_event_stats stats = {};
  if (!msg.reply_value(0, &stats)) return OMP_ERRCODE_ERROR;
  return stats;
}

Expected<orca_telemetry_snapshot> Client::telemetry_snapshot() const {
  MessageBuilder msg;
  msg.add_telemetry_query();
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return msg.errcode(0);
  orca_telemetry_snapshot snap = {};
  if (!msg.reply_value(0, &snap)) return OMP_ERRCODE_ERROR;
  return snap;
}

Expected<orca_resilience_stats> Client::resilience_stats() const {
  MessageBuilder msg;
  msg.add_resilience_stats_query();
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return msg.errcode(0);
  orca_resilience_stats stats = {};
  if (!msg.reply_value(0, &stats)) return OMP_ERRCODE_ERROR;
  return stats;
}

OMP_COLLECTORAPI_EC Client::register_event(OMP_COLLECTORAPI_EVENT event,
                                           OMP_COLLECTORAPI_CALLBACK cb)
    const {
  MessageBuilder msg;
  msg.add_register(event, cb);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

Expected<Registration> Client::register_event(
    OMP_COLLECTORAPI_EVENT event,
    std::function<void(OMP_COLLECTORAPI_EVENT)> fn) const {
  if (!handler_index_ok(static_cast<int>(event)) || !fn) {
    return OMP_ERRCODE_ERROR;
  }
  // Install the handler before wiring the trampoline so the first emission
  // after a successful REGISTER always finds it. On wire failure the slot
  // is restored to empty (displacing a previous owner of the same event is
  // documented last-registration-wins behaviour, so no rollback to it).
  install_handler(static_cast<int>(event), std::move(fn));
  const OMP_COLLECTORAPI_EC ec = register_event(event, &trampoline);
  if (ec != OMP_ERRCODE_OK) {
    drop_handler(static_cast<int>(event));
    return ec;
  }
  return Registration(api_, static_cast<int>(event));
}

OMP_COLLECTORAPI_EC Client::unregister_event(
    OMP_COLLECTORAPI_EVENT event) const {
  MessageBuilder msg;
  msg.add_unregister(event);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

EventFeed Session::pipeline(pipeline::StagePtr<pipeline::Event> head,
                            std::vector<OMP_COLLECTORAPI_EVENT> events) {
  EventFeed feed;
  if (!active() || head == nullptr) return feed;
  if (events.empty()) {
    for (int e = 1; e < OMP_EVENT_LAST; ++e) {
      events.push_back(static_cast<OMP_COLLECTORAPI_EVENT>(e));
    }
  }
  feed.seq_ = std::make_shared<std::atomic<std::uint64_t>>(0);
  const Client client(api_);
  for (const OMP_COLLECTORAPI_EVENT event : events) {
    // One decode closure per event (the trampoline table is keyed by event
    // kind), all sharing the feed's sequence counter and the graph head.
    Expected<Registration> reg = client.register_event(
        event, [head, seq = feed.seq_](OMP_COLLECTORAPI_EVENT ev) {
          pipeline::Event out;
          out.seq = seq->fetch_add(1, std::memory_order_relaxed);
          // Under asynchronous delivery the callback runs on the drainer
          // thread; the delivery context recovers the origin thread's slot
          // and enqueue timestamp, which is what a consumer should see.
          if (const EventRecord* rec = AsyncDispatcher::delivery_context()) {
            out.ticks = rec->ticks;
            out.tid = rec->origin_slot;
          } else {
            out.ticks = SteadyClock::now();
            out.tid = __ompc_get_global_thread_num();
          }
          out.ns = SteadyClock::now();
          out.event = ev;
          head->push(out);
        });
    // Optional events may come back OMP_ERRCODE_UNSUPPORTED; a consumer
    // simply receives whatever the runtime can provide.
    if (reg) feed.regs_.push_back(std::move(*reg));
  }
  return feed;
}

OMP_COLLECTORAPI_EC Session::stop() noexcept {
  if (!active()) return OMP_ERRCODE_SEQUENCE_ERR;
  start_ec_ = OMP_ERRCODE_SEQUENCE_ERR;  // one STOP per successful START
  MessageBuilder msg;
  msg.add(OMP_REQ_STOP);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

}  // namespace orca::collector
