#include "tool/client.hpp"

#include <dlfcn.h>

#include "collector/message.hpp"

namespace orca::tool {

using collector::MessageBuilder;

std::optional<CollectorClient> CollectorClient::discover() {
  // RTLD_DEFAULT scans every loaded object, exactly like a preloaded tool
  // probing for an ORA-capable OpenMP runtime.
  void* sym = ::dlsym(RTLD_DEFAULT, "__omp_collector_api");
  if (sym == nullptr) sym = ::dlsym(RTLD_DEFAULT, "omp_collector_api");
  if (sym == nullptr) return std::nullopt;
  return CollectorClient(reinterpret_cast<ApiFn>(sym));
}

OMP_COLLECTORAPI_EC CollectorClient::simple_request(
    OMP_COLLECTORAPI_REQUEST req) {
  MessageBuilder msg;
  msg.add(req);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

OMP_COLLECTORAPI_EC CollectorClient::start() {
  return simple_request(OMP_REQ_START);
}
OMP_COLLECTORAPI_EC CollectorClient::stop() {
  return simple_request(OMP_REQ_STOP);
}
OMP_COLLECTORAPI_EC CollectorClient::pause() {
  return simple_request(OMP_REQ_PAUSE);
}
OMP_COLLECTORAPI_EC CollectorClient::resume() {
  return simple_request(OMP_REQ_RESUME);
}

OMP_COLLECTORAPI_EC CollectorClient::register_event(
    OMP_COLLECTORAPI_EVENT event, OMP_COLLECTORAPI_CALLBACK cb) {
  MessageBuilder msg;
  msg.add_register(event, cb);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

OMP_COLLECTORAPI_EC CollectorClient::unregister_event(
    OMP_COLLECTORAPI_EVENT event) {
  MessageBuilder msg;
  msg.add_unregister(event);
  if (api_(msg.buffer()) != 0) return OMP_ERRCODE_ERROR;
  return msg.errcode(0);
}

std::optional<StateReply> CollectorClient::query_state() {
  MessageBuilder msg;
  msg.add_state_query();
  if (api_(msg.buffer()) != 0) return std::nullopt;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return std::nullopt;

  int state_value = 0;
  if (!msg.reply_value(0, &state_value)) return std::nullopt;
  StateReply reply;
  reply.state = static_cast<OMP_COLLECTOR_API_THR_STATE>(state_value);
  // The wait id follows the state value for wait states (paper IV-D);
  // r_sz tells us whether the runtime appended one.
  if (static_cast<std::size_t>(msg.reply_size(0)) >=
      sizeof(int) + sizeof(unsigned long)) {
    unsigned long wait_id = 0;
    if (msg.reply_value(0, &wait_id, sizeof(int))) {
      reply.wait_id = wait_id;
      reply.has_wait_id = true;
    }
  }
  return reply;
}

RegionIdReply CollectorClient::id_request(OMP_COLLECTORAPI_REQUEST req) {
  MessageBuilder msg;
  msg.add_id_query(req);
  RegionIdReply reply;
  if (api_(msg.buffer()) != 0) {
    reply.errcode = OMP_ERRCODE_ERROR;
    return reply;
  }
  reply.errcode = msg.errcode(0);
  unsigned long id = 0;
  if (msg.reply_value(0, &id)) reply.id = id;
  return reply;
}

std::optional<orca_event_stats> CollectorClient::query_event_stats() {
  MessageBuilder msg;
  msg.add_event_stats_query();
  if (api_(msg.buffer()) != 0) return std::nullopt;
  if (msg.errcode(0) != OMP_ERRCODE_OK) return std::nullopt;
  orca_event_stats stats = {};
  if (!msg.reply_value(0, &stats)) return std::nullopt;
  return stats;
}

RegionIdReply CollectorClient::current_region_id() {
  return id_request(OMP_REQ_CURRENT_PRID);
}

RegionIdReply CollectorClient::parent_region_id() {
  return id_request(OMP_REQ_PARENT_PRID);
}

}  // namespace orca::tool
