#include "tool/client.hpp"

// This translation unit *implements* the deprecated v1 shim; referencing
// the class here is the point, not an oversight.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace orca::tool {

std::optional<CollectorClient> CollectorClient::discover() {
  std::optional<collector::Client> client = collector::Client::discover();
  if (!client.has_value()) return std::nullopt;
  return CollectorClient(std::move(*client));
}

std::optional<StateReply> CollectorClient::query_state() {
  const collector::Expected<collector::ThreadState> state = client_.state();
  if (!state) return std::nullopt;
  StateReply reply;
  reply.state = state->state;
  reply.wait_id = state->wait_id;
  reply.has_wait_id = state->has_wait_id;
  return reply;
}

RegionIdReply CollectorClient::current_region_id() {
  const collector::Expected<unsigned long> id = client_.current_prid();
  // v1 contract: the id rides next to the errcode (0 when denied).
  return RegionIdReply{id.value_or(0), id ? OMP_ERRCODE_OK : id.error()};
}

RegionIdReply CollectorClient::parent_region_id() {
  const collector::Expected<unsigned long> id = client_.parent_prid();
  return RegionIdReply{id.value_or(0), id ? OMP_ERRCODE_OK : id.error()};
}

std::optional<orca_event_stats> CollectorClient::query_event_stats() {
  const collector::Expected<orca_event_stats> stats = client_.event_stats();
  if (!stats) return std::nullopt;
  return *stats;
}

}  // namespace orca::tool
