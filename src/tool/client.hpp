/// \file client.hpp
/// Legacy v1 collector client — thin shim over tool/client2.hpp.
///
/// Paper Sec. IV: "The collector may then query the dynamic linker to
/// determine whether the symbol is present. If it is, then it may initiate
/// communications with the runtime." `CollectorClient::discover()` performs
/// exactly that `dlsym` probe.
///
/// New code should use `orca::collector::Client` (tool/client2.hpp)
/// directly: typed `Expected<T>` queries, RAII `Session`, and owning event
/// registrations. This header keeps the original optional/struct-reply
/// surface for existing callers by delegating every request to the v2
/// client; the wire format underneath is identical.
#pragma once

#include <optional>

#include "collector/api.h"
#include "tool/client2.hpp"

namespace orca::tool {

/// Reply to a state query.
struct StateReply {
  OMP_COLLECTOR_API_THR_STATE state = THR_SERIAL_STATE;
  unsigned long wait_id = 0;
  bool has_wait_id = false;
};

/// Reply to a region-id query.
struct RegionIdReply {
  unsigned long id = 0;
  OMP_COLLECTORAPI_EC errcode = OMP_ERRCODE_OK;
};

/// Typed wrapper around `__omp_collector_api` (v1 surface).
///
/// Deprecated since PR 8: every in-tree user now speaks the v2 client;
/// this shim remains (with one compat test) for out-of-tree collectors
/// mid-migration.
class [[deprecated(
    "use orca::collector::Client / Session (tool/client2.hpp); this v1 shim "
    "only delegates to them")]] CollectorClient {
 public:
  using ApiFn = int (*)(void*);

  /// Probe the dynamic linker for the `__omp_collector_api` symbol; empty
  /// when no ORA-capable runtime is loaded.
  static std::optional<CollectorClient> discover();

  /// Bind to a known entry point (testing / multi-runtime setups).
  explicit CollectorClient(ApiFn fn) : client_(collector::Client::ApiFn(fn)) {}

  /// Lifecycle requests. Each returns the per-request error code.
  OMP_COLLECTORAPI_EC start() { return client_.start(); }
  OMP_COLLECTORAPI_EC stop() { return client_.stop(); }
  OMP_COLLECTORAPI_EC pause() { return client_.pause(); }
  OMP_COLLECTORAPI_EC resume() { return client_.resume(); }

  /// Event (un)registration.
  OMP_COLLECTORAPI_EC register_event(OMP_COLLECTORAPI_EVENT event,
                                     OMP_COLLECTORAPI_CALLBACK cb) {
    return client_.register_event(event, cb);
  }
  OMP_COLLECTORAPI_EC unregister_event(OMP_COLLECTORAPI_EVENT event) {
    return client_.unregister_event(event);
  }

  /// Query the calling thread's state (+ wait id for wait states).
  std::optional<StateReply> query_state();

  /// Query current / parent parallel region id. The reply carries the
  /// errcode because "outside a region" is signalled via
  /// OMP_ERRCODE_SEQUENCE_ERR with id 0, not via failure.
  RegionIdReply current_region_id();
  RegionIdReply parent_region_id();

  /// Query asynchronous event-delivery statistics (ORCA extension). Empty
  /// on runtimes that do not recognize ORCA_REQ_EVENT_STATS.
  std::optional<orca_event_stats> query_event_stats();

  /// Raw access for composite request buffers.
  int raw(void* buffer) { return client_.raw(buffer); }

  /// The v2 client this shim delegates to.
  collector::Client& typed() noexcept { return client_; }

 private:
  explicit CollectorClient(collector::Client client)
      : client_(std::move(client)) {}

  collector::Client client_;
};

}  // namespace orca::tool
