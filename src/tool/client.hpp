/// \file client.hpp
/// Collector-side access to the ORA entry point.
///
/// Paper Sec. IV: "The collector may then query the dynamic linker to
/// determine whether the symbol is present. If it is, then it may initiate
/// communications with the runtime." `CollectorClient::discover()` performs
/// exactly that `dlsym` probe; the instance methods wrap each request kind
/// in the white-paper message format (collector/message.hpp).
#pragma once

#include <optional>

#include "collector/api.h"

namespace orca::tool {

/// Reply to a state query.
struct StateReply {
  OMP_COLLECTOR_API_THR_STATE state = THR_SERIAL_STATE;
  unsigned long wait_id = 0;
  bool has_wait_id = false;
};

/// Reply to a region-id query.
struct RegionIdReply {
  unsigned long id = 0;
  OMP_COLLECTORAPI_EC errcode = OMP_ERRCODE_OK;
};

/// Typed wrapper around `__omp_collector_api`.
class CollectorClient {
 public:
  using ApiFn = int (*)(void*);

  /// Probe the dynamic linker for the `__omp_collector_api` symbol; empty
  /// when no ORA-capable runtime is loaded.
  static std::optional<CollectorClient> discover();

  /// Bind to a known entry point (testing / multi-runtime setups).
  explicit CollectorClient(ApiFn fn) noexcept : api_(fn) {}

  /// Lifecycle requests. Each returns the per-request error code.
  OMP_COLLECTORAPI_EC start();
  OMP_COLLECTORAPI_EC stop();
  OMP_COLLECTORAPI_EC pause();
  OMP_COLLECTORAPI_EC resume();

  /// Event (un)registration.
  OMP_COLLECTORAPI_EC register_event(OMP_COLLECTORAPI_EVENT event,
                                     OMP_COLLECTORAPI_CALLBACK cb);
  OMP_COLLECTORAPI_EC unregister_event(OMP_COLLECTORAPI_EVENT event);

  /// Query the calling thread's state (+ wait id for wait states).
  std::optional<StateReply> query_state();

  /// Query current / parent parallel region id. The reply carries the
  /// errcode because "outside a region" is signalled via
  /// OMP_ERRCODE_SEQUENCE_ERR with id 0, not via failure.
  RegionIdReply current_region_id();
  RegionIdReply parent_region_id();

  /// Query asynchronous event-delivery statistics (ORCA extension). Empty
  /// on runtimes that do not recognize ORCA_REQ_EVENT_STATS.
  std::optional<orca_event_stats> query_event_stats();

  /// Raw access for composite request buffers.
  int raw(void* buffer) { return api_(buffer); }

 private:
  OMP_COLLECTORAPI_EC simple_request(OMP_COLLECTORAPI_REQUEST req);
  RegionIdReply id_request(OMP_COLLECTORAPI_REQUEST req);

  ApiFn api_;
};

}  // namespace orca::tool
