#include "tool/tracer.hpp"

#include <utility>

#include "collector/names.hpp"
#include "common/strutil.hpp"

namespace orca::tool {

TracingCollector& TracingCollector::instance() {
  static TracingCollector tracer;
  return tracer;
}

bool TracingCollector::attach(std::vector<OMP_COLLECTORAPI_EVENT> events,
                              Filter keep, std::uint64_t max_events) {
  if (attached()) return false;
  feed_.reset();  // drop any stale registrations before rebuilding stages
  client_ = collector::Client::discover();
  if (!client_) return false;
  // Session issues OMP_REQ_START on construction; a failed START leaves it
  // inactive and the destructor then sends nothing.
  session_.emplace(*client_);
  if (!session_->active()) {
    session_.reset();
    return false;
  }

  // Assemble downstream-first. Branch 1: the striped ordered log. Branch 2:
  // per-event-kind inter-arrival gaps folded into bounded sketches.
  log_ = pipeline::collect<TraceEvent>("log");
  intervals_ = pipeline::aggregate<EventGap>(
      "by-event", [](const EventGap& g) { return g.kind; },
      [](const EventGap& g) { return g.gap_ns; });
  // Last-arrival timestamp per event kind, shared by the map closure across
  // every pushing thread (exchange keeps it race-honest).
  auto last = std::make_shared<
      std::array<std::atomic<std::uint64_t>, ORCA_EVENT_EXT_LAST>>();
  pipeline::StagePtr<TraceEvent> interval = pipeline::map<TraceEvent>(
      "interval",
      [last](const TraceEvent& e) {
        const auto kind = static_cast<std::size_t>(e.event);
        const std::size_t slot = kind < ORCA_EVENT_EXT_LAST ? kind : 0;
        const std::uint64_t prev =
            (*last)[slot].exchange(e.ns, std::memory_order_relaxed);
        EventGap gap;
        gap.kind = static_cast<std::uint64_t>(e.event);
        gap.gap_ns = (prev == 0 || e.ns < prev) ? 0 : e.ns - prev;
        return gap;
      },
      pipeline::StagePtr<EventGap>(intervals_));

  kill_ = pipeline::KillSwitch();
  pipeline::StagePtr<TraceEvent> head =
      pipeline::fanout<TraceEvent>("fanout", {log_, std::move(interval)});
  head = pipeline::killswitch<TraceEvent>("killswitch", kill_,
                                          std::move(head), max_events);
  if (keep) {
    head = pipeline::filter<TraceEvent>("filter", std::move(keep),
                                        std::move(head));
  }
  pipeline_ = pipeline::Pipeline<TraceEvent>(head);

  feed_ = session_->pipeline(std::move(head), std::move(events));
  return true;
}

void TracingCollector::detach() {
  // Unregister while the stages are still alive, then let Session's stop()
  // send OMP_REQ_STOP exactly once per successful START.
  feed_.reset();
  session_.reset();
}

std::vector<TraceEvent> TracingCollector::log() const {
  if (!log_) return {};
  return log_->sorted(pipeline::by_seq);
}

std::size_t TracingCollector::count(OMP_COLLECTORAPI_EVENT event) const {
  if (!log_) return 0;
  std::size_t n = 0;
  for (const TraceEvent& e : log_->snapshot()) {
    if (e.event == event) ++n;
  }
  return n;
}

void TracingCollector::clear() {
  if (log_) log_->clear();
  if (intervals_) intervals_->clear();
}

std::vector<telemetry::ExternalEvent> TracingCollector::external_events()
    const {
  const std::vector<TraceEvent> snapshot = log();
  std::vector<telemetry::ExternalEvent> out;
  out.reserve(snapshot.size());
  for (const TraceEvent& e : snapshot) {
    telemetry::ExternalEvent ext;
    ext.ns = e.ns;
    ext.tid = e.tid;
    ext.name = std::string(collector::to_string(e.event));
    ext.category = "collector";
    out.push_back(std::move(ext));
  }
  return out;
}

bool TracingCollector::write_chrome_trace(const std::string& path) const {
  return telemetry::write_chrome_trace(path, external_events());
}

std::string TracingCollector::render() const {
  const std::vector<TraceEvent> snapshot = log();
  std::string out;
  const std::uint64_t base = snapshot.empty() ? 0 : snapshot.front().ticks;
  for (const TraceEvent& e : snapshot) {
    out += strfmt("%10llu ns  tid %-3d %s\n",
                  static_cast<unsigned long long>(e.ticks - base), e.tid,
                  std::string(collector::to_string(e.event)).c_str());
  }
  return out;
}

std::vector<pipeline::AggregateRow> TracingCollector::event_intervals()
    const {
  if (!intervals_) return {};
  return intervals_->snapshot();
}

}  // namespace orca::tool
