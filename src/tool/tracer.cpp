#include "tool/tracer.hpp"

#include <mutex>

#include "collector/names.hpp"
#include "common/clock.hpp"
#include "common/strutil.hpp"
#include "runtime/ompc_api.h"

namespace orca::tool {

TracingCollector& TracingCollector::instance() {
  static TracingCollector tracer;
  return tracer;
}

void TracingCollector::event_callback(OMP_COLLECTORAPI_EVENT event) {
  TracingCollector& self = instance();
  TraceEvent entry;
  entry.ticks = SteadyClock::now();
  entry.event = event;
  entry.tid = __ompc_get_global_thread_num();
  std::scoped_lock lk(self.mu_);
  self.events_.push_back(entry);
}

bool TracingCollector::attach(std::vector<OMP_COLLECTORAPI_EVENT> events) {
  if (attached_) return false;
  client_ = CollectorClient::discover();
  if (!client_) return false;
  if (client_->start() != OMP_ERRCODE_OK) return false;

  if (events.empty()) {
    for (int e = 1; e < OMP_EVENT_LAST; ++e) {
      events.push_back(static_cast<OMP_COLLECTORAPI_EVENT>(e));
    }
  }
  for (const OMP_COLLECTORAPI_EVENT event : events) {
    // Optional events may come back OMP_ERRCODE_UNSUPPORTED; a tracer
    // simply records whatever the runtime can provide.
    (void)client_->register_event(event, &TracingCollector::event_callback);
  }
  attached_ = true;
  return true;
}

void TracingCollector::detach() {
  if (!attached_) return;
  client_->stop();
  attached_ = false;
}

std::vector<TraceEvent> TracingCollector::log() const {
  std::scoped_lock lk(mu_);
  return events_;
}

std::size_t TracingCollector::count(OMP_COLLECTORAPI_EVENT event) const {
  std::scoped_lock lk(mu_);
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.event == event) ++n;
  }
  return n;
}

void TracingCollector::clear() {
  std::scoped_lock lk(mu_);
  events_.clear();
}

std::string TracingCollector::render() const {
  const std::vector<TraceEvent> snapshot = log();
  std::string out;
  const std::uint64_t base = snapshot.empty() ? 0 : snapshot.front().ticks;
  for (const TraceEvent& e : snapshot) {
    out += strfmt("%10llu ns  tid %-3d %s\n",
                  static_cast<unsigned long long>(e.ticks - base), e.tid,
                  std::string(collector::to_string(e.event)).c_str());
  }
  return out;
}

}  // namespace orca::tool
