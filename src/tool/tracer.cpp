#include "tool/tracer.hpp"

#include <algorithm>
#include <mutex>

#include "collector/async.hpp"
#include "collector/names.hpp"
#include "common/clock.hpp"
#include "common/strutil.hpp"
#include "runtime/ompc_api.h"

namespace orca::tool {

TracingCollector& TracingCollector::instance() {
  static TracingCollector tracer;
  return tracer;
}

void TracingCollector::record(int tid, std::uint64_t ticks,
                              OMP_COLLECTORAPI_EVENT event) {
  TraceEvent entry;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.ticks = ticks;
  // Export timestamp in the telemetry clock domain (ticks may be TSC under
  // async delivery). Under async this is delivery time, not origin time —
  // honest for a merged trace, where the drainer IS when the tool saw it.
  entry.ns = SteadyClock::now();
  entry.event = event;
  entry.tid = tid;
  Stage& stage = *stages_[tid >= 0 ? static_cast<std::size_t>(tid) % kStages
                                   : kStages - 1];
  std::scoped_lock lk(stage.mu);
  stage.events.push_back(entry);
}

void TracingCollector::event_callback(OMP_COLLECTORAPI_EVENT event) {
  TracingCollector& self = instance();
  // Under asynchronous delivery the callback runs on the drainer thread;
  // the delivery context recovers the origin thread's slot and enqueue
  // timestamp, which is what a trace should show.
  if (const collector::EventRecord* rec =
          collector::AsyncDispatcher::delivery_context()) {
    self.record(rec->origin_slot, rec->ticks, event);
    return;
  }
  self.record(__ompc_get_global_thread_num(), SteadyClock::now(), event);
}

bool TracingCollector::attach(std::vector<OMP_COLLECTORAPI_EVENT> events) {
  if (attached()) return false;
  client_ = collector::Client::discover();
  if (!client_) return false;
  // Session issues OMP_REQ_START on construction; a failed START leaves it
  // inactive and the destructor then sends nothing.
  session_.emplace(*client_);
  if (!session_->active()) {
    session_.reset();
    return false;
  }

  if (events.empty()) {
    for (int e = 1; e < OMP_EVENT_LAST; ++e) {
      events.push_back(static_cast<OMP_COLLECTORAPI_EVENT>(e));
    }
  }
  for (const OMP_COLLECTORAPI_EVENT event : events) {
    // Optional events may come back OMP_ERRCODE_UNSUPPORTED; a tracer
    // simply records whatever the runtime can provide. The raw-callback
    // overload is deliberate: the callback is a static function, so the
    // owning Registration machinery would buy nothing here.
    (void)client_->register_event(event, &TracingCollector::event_callback);
  }
  return true;
}

void TracingCollector::detach() {
  // Session's stop() sends OMP_REQ_STOP exactly once per successful START.
  session_.reset();
}

std::vector<TraceEvent> TracingCollector::log() const {
  std::vector<TraceEvent> merged;
  for (const CachePadded<Stage>& padded : stages_) {
    const Stage& stage = *padded;
    std::scoped_lock lk(stage.mu);
    merged.insert(merged.end(), stage.events.begin(), stage.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

std::size_t TracingCollector::count(OMP_COLLECTORAPI_EVENT event) const {
  std::size_t n = 0;
  for (const CachePadded<Stage>& padded : stages_) {
    const Stage& stage = *padded;
    std::scoped_lock lk(stage.mu);
    for (const TraceEvent& e : stage.events) {
      if (e.event == event) ++n;
    }
  }
  return n;
}

void TracingCollector::clear() {
  for (CachePadded<Stage>& padded : stages_) {
    Stage& stage = *padded;
    std::scoped_lock lk(stage.mu);
    stage.events.clear();
  }
}

std::vector<telemetry::ExternalEvent> TracingCollector::external_events()
    const {
  const std::vector<TraceEvent> snapshot = log();
  std::vector<telemetry::ExternalEvent> out;
  out.reserve(snapshot.size());
  for (const TraceEvent& e : snapshot) {
    telemetry::ExternalEvent ext;
    ext.ns = e.ns;
    ext.tid = e.tid;
    ext.name = std::string(collector::to_string(e.event));
    ext.category = "collector";
    out.push_back(std::move(ext));
  }
  return out;
}

bool TracingCollector::write_chrome_trace(const std::string& path) const {
  return telemetry::write_chrome_trace(path, external_events());
}

std::string TracingCollector::render() const {
  const std::vector<TraceEvent> snapshot = log();
  std::string out;
  const std::uint64_t base = snapshot.empty() ? 0 : snapshot.front().ticks;
  for (const TraceEvent& e : snapshot) {
    out += strfmt("%10llu ns  tid %-3d %s\n",
                  static_cast<unsigned long long>(e.ticks - base), e.tid,
                  std::string(collector::to_string(e.event)).c_str());
  }
  return out;
}

}  // namespace orca::tool
