/// \file fleet_monitor.hpp
/// orcamon's engine: attach to every ORCA shm export segment matching a
/// prefix, drain the per-thread broadcast rings with sharded reader
/// threads, and merge the per-process streams through one src/pipeline
/// stage graph into
///
///   * a correlated multi-process Perfetto trace (producer clocks share
///     the CLOCK_MONOTONIC epoch, so spans line up across processes), and
///   * a periodic fleet text report: per-region log2 duration sketches,
///     honest per-producer loss books (produced == read + lost), the
///     telemetry mirror, and crash salvage for producers that died.
///
/// Producer lifecycle handling is the point of the tool: a producer whose
/// heartbeat stops (SIGKILL, crash) or that finalizes cleanly moves to a
/// draining phase — its rings are drained to the last published record,
/// the remainder is charged to the loss book, its crash region is
/// salvaged — while the fleet session keeps running for everyone else.
///
/// ## Hostile-world posture
///
/// The fleet is untrusted. Four defenses keep one bad producer from
/// taking the session down:
///
///   * attach runs the deep validation in shm/validate.hpp; a segment
///     that fails it is *quarantined* — recorded with a reason, never
///     retried, never dereferenced;
///   * transient attach failures (mid-init, mid-resize, EMFILE weather)
///     are retried with jittered exponential backoff and quarantined
///     once the retry budget is spent;
///   * a producer that truncates its segment after we mapped it is caught
///     either by the cheap fstat in the liveness pass or by the SIGBUS
///     guard around the drain paths — either way it is detached into
///     quarantine and everyone else keeps draining;
///   * a per-shard watchdog notices a drain thread that stopped beating
///     (a seam hook, a scheduler pathology), retires it, and starts a
///     replacement on the same ring assignment; per-ring busy latches
///     keep a late-resuming retiree off the replacement's cursors.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"
#include "shm/reader.hpp"

namespace orca::tool::orcamon {

struct MonitorOptions {
  std::string prefix = "orca";   ///< segment prefix (ORCA_SHM_PREFIX)
  unsigned shards = 2;           ///< reader threads draining rings
  unsigned poll_ms = 2;          ///< shard sleep when every ring was empty
  unsigned discover_ms = 100;    ///< /dev/shm rescan + liveness cadence
  double duration_s = 0;         ///< 0 = run until stop()/idle
  double report_interval_s = 5;  ///< 0 = final report only
  std::string trace_out;         ///< Perfetto JSON path ("" = no trace)
  std::string report_out;        ///< report path ("" = stdout)
  std::size_t max_trace_events = 1 << 20;  ///< collect cap (counted drop)
  bool unlink_dead = true;       ///< reap dead producers' segment names
  /// Exit once at least one producer attached and every attached producer
  /// has finalized/died and been fully drained (or was quarantined). The
  /// integration tests and one-shot CLI runs use this; a long-lived
  /// daemon leaves it off.
  bool exit_when_idle = false;
  unsigned liveness_grace = 8;   ///< missed heartbeats before suspecting

  // --- hostile-world knobs -------------------------------------------------
  /// Base backoff for retryable attach failures; doubles per attempt with
  /// jitter, capped at 32x. ORCA_MON_ATTACH_RETRY_MS.
  unsigned attach_retry_ms = 50;
  /// Attempts before a retryable attach failure becomes a quarantine.
  /// ORCA_MON_ATTACH_RETRY_MAX.
  unsigned attach_retry_max = 8;
  /// Declare a shard thread wedged after this long without a loop beat
  /// and replace it (0 = watchdog off). ORCA_MON_SHARD_STALL_MS.
  unsigned shard_stall_ms = 2000;
  /// Hard heartbeat staleness deadline: a producer whose pulse has been
  /// quiet this long is drained even if its pid still exists (SIGSTOP,
  /// swap death). 0 = only ever declare death on pid exit.
  /// ORCA_MON_HEARTBEAT_DEADLINE_MS.
  unsigned heartbeat_deadline_ms = 0;

  /// Overlay the ORCA_MON_* environment knobs onto the current values
  /// (invalid text warns and keeps the field, same policy as the runtime
  /// config). The CLI calls this; tests set fields directly.
  void apply_env();
};

/// One decoded, producer-tagged record — the type the shared pipeline
/// tail speaks.
struct FleetEvent {
  std::int64_t pid = 0;
  std::uint64_t ns = 0;    ///< producer CLOCK_MONOTONIC stamp
  std::int32_t tid = -1;   ///< producer thread slot
  std::int32_t code = 0;   ///< OMP_COLLECTORAPI_EVENT, or sampler state
  std::uint64_t arg = 0;   ///< samples: region id; JOIN: region duration ns
  bool sample = false;     ///< true = SIGPROF-sample bank
};

/// Raw ring record + bank tag, as the shard threads push it into a
/// producer's decode stage.
struct RawRecord {
  shm::Record rec;
  bool sample = false;
};

/// Per-producer summary, copied out by producers().
struct ProducerInfo {
  std::string name;    ///< segment name
  std::string label;   ///< producer-chosen display label
  std::int64_t pid = 0;
  bool finalized = false;  ///< clean shutdown observed
  bool dead = false;       ///< heartbeat stopped + pid gone
  bool stalled = false;    ///< pulse past the hard deadline, pid alive
  bool drained = false;    ///< all rings finalized, books closed
  bool quarantined = false;
  std::string quarantine_reason;
  std::uint64_t produced = 0;
  std::uint64_t read = 0;
  std::uint64_t lost = 0;
  shm::CrashSalvage salvage;  ///< kind == kCrashEmpty when nothing there
};

/// One quarantine decision, kept for the report and the CLI exit code.
/// attach_phase records whether the segment was rejected before a reader
/// ever existed (validation / retries exhausted) or evicted mid-session.
struct QuarantineRecord {
  std::string name;
  std::int64_t pid = 0;
  std::string reason;
  bool attach_phase = false;
};

class FleetMonitor {
 public:
  explicit FleetMonitor(MonitorOptions opts);
  ~FleetMonitor();
  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Blocking session: spawns the shard threads, runs discovery +
  /// liveness + reporting on the calling thread until a stop condition
  /// (stop(), duration, exit_when_idle), then drains, writes the trace
  /// and the final report. Returns the number of producers seen.
  std::size_t run();

  /// Ask a concurrent run() to wind down (signal handlers use this).
  void stop() noexcept { stop_.store(true, std::memory_order_release); }

  std::size_t attached_count() const;
  std::uint64_t events_seen() const noexcept {
    return events_seen_.load(std::memory_order_acquire);
  }
  std::vector<ProducerInfo> producers() const;

  /// Every quarantine decision so far (attach rejections included).
  std::vector<QuarantineRecord> quarantines() const;

  /// Times the shard watchdog replaced a wedged drain thread.
  std::uint64_t watchdog_restarts() const noexcept {
    return watchdog_restarts_.load(std::memory_order_acquire);
  }

  /// The fleet report (also what run() writes periodically).
  std::string render_report() const;

  /// Write the merged Perfetto trace-event JSON. False on I/O failure.
  bool write_trace(const std::string& path) const;

 private:
  enum Phase : int { kActive = 0, kDraining = 1, kDone = 2, kQuarantined = 3 };

  struct RingState {
    /// Drain mutual exclusion: normally only the owning shard touches a
    /// ring, but a watchdog replacement overlaps the (possibly still
    /// runnable) thread it replaced, so cursor access takes this latch.
    std::atomic<bool> busy{false};
    bool done = false;  ///< both banks finalized (read/written under busy)
  };

  struct Producer {
    std::size_t index = 0;
    std::unique_ptr<shm::SegmentReader> reader;
    pipeline::StagePtr<RawRecord> head;  ///< decode -> tag -> shared tail
    std::atomic<int> phase{kActive};
    std::atomic<bool> dead{false};
    std::atomic<bool> stalled{false};
    std::atomic<bool> finalized{false};
    /// Ring r drained by shard (index + r) % shards. Array, not vector:
    /// RingState holds an atomic, and the element count is fixed at
    /// attach anyway.
    std::unique_ptr<RingState[]> rings;
    std::uint32_t ring_count = 0;
    std::atomic<std::uint32_t> rings_done{0};
    /// FORK -> JOIN pairing, keyed by producer tid. FORK and JOIN for one
    /// region can surface on different rings (hence different shards), so
    /// the map takes a lock — held only for the two region-edge events.
    std::mutex fork_mu;
    std::unordered_map<std::int32_t, std::uint64_t> open_forks;
    /// Guarded by FleetMonitor::mu_; read only when phase is kQuarantined.
    std::string quarantine_reason;
    /// Produced-count snapshot taken (SIGBUS-guarded) at quarantine time,
    /// since the mapping must not be dereferenced afterwards.
    std::uint64_t produced_at_quarantine = 0;
    // Written by the run() thread once kDone:
    shm::CrashSalvage salvage;
    bool salvaged = false;
  };

  /// Retry state for a segment that failed attach retryably.
  struct PendingAttach {
    unsigned attempts = 0;
    std::uint64_t next_ns = 0;
    std::int64_t pid = 0;
  };

  struct Shard {
    std::atomic<std::uint64_t> beat{0};        ///< bumped once per pass
    std::atomic<std::uint64_t> generation{0};  ///< bump retires the thread
    std::thread thread;
    // Watchdog bookkeeping (run() thread only):
    std::uint64_t last_beat = 0;
    std::uint64_t last_change_ns = 0;
  };

  void attach_new_segments(std::uint64_t now_ns);
  void update_liveness(std::uint64_t now_ns);
  void check_shard_watchdog(std::uint64_t now_ns);
  void shard_loop(unsigned shard, std::uint64_t generation);
  /// Drain one producer ring (both banks). Returns true on any progress.
  bool drain_ring(Producer& p, std::uint32_t ring);
  /// Move a live producer to quarantine: record the reason, snapshot what
  /// the books can still say, and stop every future mapping dereference.
  void quarantine_producer(Producer& p, const std::string& reason);
  void record_attach_quarantine(const std::string& name, std::int64_t pid,
                                const std::string& reason);
  void emit_report(bool final_report);
  pipeline::StagePtr<RawRecord> build_head(std::int64_t pid, Producer* p);

  MonitorOptions opts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shards_stop_{false};

  mutable std::mutex mu_;  ///< guards producers_ growth, names, quarantines
  std::vector<std::unique_ptr<Producer>> producers_;
  std::unordered_map<std::string, bool> seen_names_;
  std::unordered_map<std::string, PendingAttach> pending_;
  std::vector<QuarantineRecord> quarantines_;

  // Shared pipeline tail (fanout -> {region aggregate, trace collect,
  // counting sink}), built once in the constructor.
  pipeline::StagePtr<FleetEvent> tail_;
  std::shared_ptr<pipeline::AggregateStage<FleetEvent>> region_agg_;
  std::shared_ptr<pipeline::CollectStage<FleetEvent>> trace_;
  std::atomic<std::uint64_t> events_seen_{0};
  std::atomic<std::uint64_t> watchdog_restarts_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> retired_threads_;  ///< wedged, joined in dtor
};

}  // namespace orca::tool::orcamon
