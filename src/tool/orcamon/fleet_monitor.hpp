/// \file fleet_monitor.hpp
/// orcamon's engine: attach to every ORCA shm export segment matching a
/// prefix, drain the per-thread broadcast rings with sharded reader
/// threads, and merge the per-process streams through one src/pipeline
/// stage graph into
///
///   * a correlated multi-process Perfetto trace (producer clocks share
///     the CLOCK_MONOTONIC epoch, so spans line up across processes), and
///   * a periodic fleet text report: per-region log2 duration sketches,
///     honest per-producer loss books (produced == read + lost), the
///     telemetry mirror, and crash salvage for producers that died.
///
/// Producer lifecycle handling is the point of the tool: a producer whose
/// heartbeat stops (SIGKILL, crash) or that finalizes cleanly moves to a
/// draining phase — its rings are drained to the last published record,
/// the remainder is charged to the loss book, its crash region is
/// salvaged — while the fleet session keeps running for everyone else.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pipeline/aggregate.hpp"
#include "pipeline/pipeline.hpp"
#include "shm/reader.hpp"

namespace orca::tool::orcamon {

struct MonitorOptions {
  std::string prefix = "orca";   ///< segment prefix (ORCA_SHM_PREFIX)
  unsigned shards = 2;           ///< reader threads draining rings
  unsigned poll_ms = 2;          ///< shard sleep when every ring was empty
  unsigned discover_ms = 100;    ///< /dev/shm rescan + liveness cadence
  double duration_s = 0;         ///< 0 = run until stop()/idle
  double report_interval_s = 5;  ///< 0 = final report only
  std::string trace_out;         ///< Perfetto JSON path ("" = no trace)
  std::string report_out;        ///< report path ("" = stdout)
  std::size_t max_trace_events = 1 << 20;  ///< collect cap (counted drop)
  bool unlink_dead = true;       ///< reap dead producers' segment names
  /// Exit once at least one producer attached and every attached producer
  /// has finalized/died and been fully drained. The integration tests and
  /// one-shot CLI runs use this; a long-lived daemon leaves it off.
  bool exit_when_idle = false;
  unsigned liveness_grace = 8;   ///< missed heartbeats before suspecting
};

/// One decoded, producer-tagged record — the type the shared pipeline
/// tail speaks.
struct FleetEvent {
  std::int64_t pid = 0;
  std::uint64_t ns = 0;    ///< producer CLOCK_MONOTONIC stamp
  std::int32_t tid = -1;   ///< producer thread slot
  std::int32_t code = 0;   ///< OMP_COLLECTORAPI_EVENT, or sampler state
  std::uint64_t arg = 0;   ///< samples: region id; JOIN: region duration ns
  bool sample = false;     ///< true = SIGPROF-sample bank
};

/// Raw ring record + bank tag, as the shard threads push it into a
/// producer's decode stage.
struct RawRecord {
  shm::Record rec;
  bool sample = false;
};

/// Per-producer summary, copied out by producers().
struct ProducerInfo {
  std::string name;    ///< segment name
  std::string label;   ///< producer-chosen display label
  std::int64_t pid = 0;
  bool finalized = false;  ///< clean shutdown observed
  bool dead = false;       ///< heartbeat stopped + pid gone
  bool drained = false;    ///< all rings finalized, books closed
  std::uint64_t produced = 0;
  std::uint64_t read = 0;
  std::uint64_t lost = 0;
  shm::CrashSalvage salvage;  ///< kind == kCrashEmpty when nothing there
};

class FleetMonitor {
 public:
  explicit FleetMonitor(MonitorOptions opts);
  ~FleetMonitor();
  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// Blocking session: spawns the shard threads, runs discovery +
  /// liveness + reporting on the calling thread until a stop condition
  /// (stop(), duration, exit_when_idle), then drains, writes the trace
  /// and the final report. Returns the number of producers seen.
  std::size_t run();

  /// Ask a concurrent run() to wind down (signal handlers use this).
  void stop() noexcept { stop_.store(true, std::memory_order_release); }

  std::size_t attached_count() const;
  std::uint64_t events_seen() const noexcept {
    return events_seen_.load(std::memory_order_acquire);
  }
  std::vector<ProducerInfo> producers() const;

  /// The fleet report (also what run() writes periodically).
  std::string render_report() const;

  /// Write the merged Perfetto trace-event JSON. False on I/O failure.
  bool write_trace(const std::string& path) const;

 private:
  enum Phase : int { kActive = 0, kDraining = 1, kDone = 2 };

  struct RingState {
    bool done = false;  ///< both banks finalized (owned by one shard)
  };

  struct Producer {
    std::size_t index = 0;
    std::unique_ptr<shm::SegmentReader> reader;
    pipeline::StagePtr<RawRecord> head;  ///< decode -> tag -> shared tail
    std::atomic<int> phase{kActive};
    std::atomic<bool> dead{false};
    std::atomic<bool> finalized{false};
    std::vector<RingState> rings;        ///< ring r owned by one shard
    std::atomic<std::uint32_t> rings_done{0};
    /// FORK -> JOIN pairing, keyed by producer tid. FORK and JOIN for one
    /// region can surface on different rings (hence different shards), so
    /// the map takes a lock — held only for the two region-edge events.
    std::mutex fork_mu;
    std::unordered_map<std::int32_t, std::uint64_t> open_forks;
    // Written by the run() thread once kDone:
    shm::CrashSalvage salvage;
    bool salvaged = false;
  };

  void attach_new_segments();
  void update_liveness(std::uint64_t now_ns);
  void shard_loop(unsigned shard);
  /// Drain one producer ring (both banks). Returns true on any progress.
  bool drain_ring(Producer& p, std::uint32_t ring);
  void emit_report(bool final_report);
  pipeline::StagePtr<RawRecord> build_head(std::int64_t pid, Producer* p);

  MonitorOptions opts_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shards_stop_{false};

  mutable std::mutex mu_;  ///< guards producers_ growth + attached names
  std::vector<std::unique_ptr<Producer>> producers_;
  std::unordered_map<std::string, bool> seen_names_;

  // Shared pipeline tail (fanout -> {region aggregate, trace collect,
  // counting sink}), built once in the constructor.
  pipeline::StagePtr<FleetEvent> tail_;
  std::shared_ptr<pipeline::AggregateStage<FleetEvent>> region_agg_;
  std::shared_ptr<pipeline::CollectStage<FleetEvent>> trace_;
  std::atomic<std::uint64_t> events_seen_{0};

  std::vector<std::thread> shard_threads_;
};

}  // namespace orca::tool::orcamon
