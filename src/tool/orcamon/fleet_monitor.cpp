#include "tool/orcamon/fleet_monitor.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "collector/api.h"
#include "collector/names.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "pipeline/stage.hpp"
#include "shm/sigbus_guard.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/fault_injection.hpp"

namespace orca::tool::orcamon {
namespace {

/// Drain batch per ring bank per pass for a live producer: bounded so one
/// chatty ring cannot starve the shard's other assignments.
constexpr int kLiveBatch = 1024;

/// Fleet-size cap. producers_ is reserved to this in the constructor so
/// push_back never reallocates: shard threads index the vector with only
/// a size snapshot taken under the lock, which is sound exactly because
/// the element storage never moves.
constexpr std::size_t kMaxProducers = 256;

/// Backoff doubling stops here: 50ms << 5 = 1.6s is already longer than
/// any mid-init window worth waiting through.
constexpr unsigned kMaxBackoffShift = 5;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Short display name for an event code: "FORK", "THR_BEGIN_IDLE", ...
std::string event_display(std::int32_t code) {
  std::string_view full =
      collector::to_string(static_cast<OMP_COLLECTORAPI_EVENT>(code));
  if (full == "?") return "event-" + std::to_string(code);
  constexpr std::string_view kOmp = "OMP_EVENT_";
  constexpr std::string_view kOrca = "ORCA_EVENT_";
  if (full.substr(0, kOmp.size()) == kOmp) full.remove_prefix(kOmp.size());
  else if (full.substr(0, kOrca.size()) == kOrca)
    full.remove_prefix(kOrca.size());
  return std::string(full);
}

std::string state_display(std::int32_t code) {
  std::string_view full =
      collector::to_string(static_cast<OMP_COLLECTOR_API_THR_STATE>(code));
  if (full == "?") return "state-" + std::to_string(code);
  return std::string(full);
}

/// RAII release of a ring's busy latch.
struct BusyRelease {
  std::atomic<bool>& latch;
  ~BusyRelease() { latch.store(false, std::memory_order_release); }
};

}  // namespace

void MonitorOptions::apply_env() {
  attach_retry_ms = static_cast<unsigned>(
      env::long_or("ORCA_MON_ATTACH_RETRY_MS", attach_retry_ms, 1,
                   "milliseconds >= 1"));
  attach_retry_max = static_cast<unsigned>(
      env::long_or("ORCA_MON_ATTACH_RETRY_MAX", attach_retry_max, 1,
                   "attempts >= 1"));
  shard_stall_ms = static_cast<unsigned>(
      env::long_or("ORCA_MON_SHARD_STALL_MS", shard_stall_ms, 0,
                   "milliseconds (0 disables the watchdog)"));
  heartbeat_deadline_ms = static_cast<unsigned>(
      env::long_or("ORCA_MON_HEARTBEAT_DEADLINE_MS", heartbeat_deadline_ms, 0,
                   "milliseconds (0 = pid-exit only)"));
}

FleetMonitor::FleetMonitor(MonitorOptions opts) : opts_(std::move(opts)) {
  if (opts_.shards == 0) opts_.shards = 1;
  producers_.reserve(kMaxProducers);
  // Shared tail, downstream-first: the terminal branches, then the fanout
  // every producer's tag stage feeds.
  region_agg_ = pipeline::aggregate<FleetEvent>(
      "region-durations",
      [](const FleetEvent& e) { return static_cast<std::uint64_t>(e.pid); },
      [](const FleetEvent& e) { return e.arg; });
  auto spans = pipeline::filter<FleetEvent>(
      "join-spans",
      [](const FleetEvent& e) {
        return !e.sample && e.code == OMP_EVENT_JOIN && e.arg > 0;
      },
      region_agg_);
  trace_ = pipeline::collect<FleetEvent>("trace", opts_.max_trace_events);
  auto counter = pipeline::sink<FleetEvent>(
      "fleet-count", [this](const FleetEvent&) {
        events_seen_.fetch_add(1, std::memory_order_relaxed);
      });
  tail_ = pipeline::fanout<FleetEvent>("fleet", {spans, trace_, counter});
}

FleetMonitor::~FleetMonitor() {
  shards_stop_.store(true, std::memory_order_release);
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) sh->thread.join();
  }
  // Threads the watchdog retired unwedge (if ever) by observing either
  // their bumped generation or shards_stop_; test hooks must release by
  // teardown or this join would hang — same contract as every other
  // blocking-hook seam in the suite.
  for (std::thread& t : retired_threads_) {
    if (t.joinable()) t.join();
  }
}

pipeline::StagePtr<RawRecord> FleetMonitor::build_head(std::int64_t pid,
                                                       Producer* /*p*/) {
  const std::string tag = std::to_string(pid);
  auto stamp = pipeline::map<FleetEvent>(
      "tag:" + tag,
      [pid](const FleetEvent& e) {
        FleetEvent out = e;
        out.pid = pid;
        return out;
      },
      tail_);
  return pipeline::map<RawRecord>(
      "decode:" + tag,
      [](const RawRecord& r) {
        FleetEvent ev;
        ev.ns = r.rec.ns;
        ev.tid = r.rec.tid;
        ev.code = r.rec.event;
        ev.arg = r.rec.arg;
        ev.sample = r.sample;
        return ev;
      },
      stamp);
}

void FleetMonitor::record_attach_quarantine(const std::string& name,
                                            std::int64_t pid,
                                            const std::string& reason) {
  {
    std::scoped_lock lk(mu_);
    seen_names_[name] = true;  // never retried, never dereferenced
    pending_.erase(name);
    quarantines_.push_back({name, pid, reason, /*attach_phase=*/true});
  }
  std::fprintf(stderr, "orcamon: quarantined %s (pid %lld) at attach: %s\n",
               name.c_str(), static_cast<long long>(pid), reason.c_str());
}

void FleetMonitor::attach_new_segments(std::uint64_t now_ns) {
  const std::vector<shm::SegmentName> found =
      shm::discover_segments(opts_.prefix);
  for (const shm::SegmentName& seg : found) {
    {
      std::scoped_lock lk(mu_);
      if (seen_names_.count(seg.name) != 0) continue;
      const auto it = pending_.find(seg.name);
      if (it != pending_.end() && now_ns < it->second.next_ns) continue;
    }
    if (seg.pid == static_cast<std::int64_t>(::getpid())) continue;
    shm::AttachError err;
    auto reader = shm::SegmentReader::attach(seg.name, &err);
    if (reader) {
      auto p = std::make_unique<Producer>();
      p->ring_count = reader->ring_count();
      p->rings = std::make_unique<RingState[]>(p->ring_count);
      p->head = build_head(reader->owner_pid(), p.get());
      p->reader = std::move(reader);
      std::scoped_lock lk(mu_);
      pending_.erase(seg.name);
      if (producers_.size() >= kMaxProducers) break;  // fleet full
      p->index = producers_.size();
      seen_names_[seg.name] = true;
      producers_.push_back(std::move(p));
      continue;
    }
    switch (err.kind) {
      case shm::AttachError::Kind::kNotFound: {
        // Unlinked between discovery and open; nothing to wait for.
        std::scoped_lock lk(mu_);
        pending_.erase(seg.name);
        break;
      }
      case shm::AttachError::Kind::kCorrupt:
        // Structural validation failed: retrying cannot help and the
        // mapping was already dropped. One quarantine row, done forever.
        record_attach_quarantine(seg.name, seg.pid, err.message);
        break;
      default: {  // kTransient / kIo: jittered exponential backoff
        unsigned attempts = 0;
        {
          std::scoped_lock lk(mu_);
          PendingAttach& pa = pending_[seg.name];
          pa.pid = seg.pid;
          attempts = ++pa.attempts;
          if (attempts < opts_.attach_retry_max) {
            const unsigned shift =
                std::min(attempts - 1, kMaxBackoffShift);
            const std::uint64_t base_ms =
                static_cast<std::uint64_t>(
                    std::max(1u, opts_.attach_retry_ms))
                << shift;
            // Deterministic jitter in [base/2, 3*base/2): splittable
            // stream keyed on the name so a fleet of stragglers does not
            // retry in lockstep.
            const std::uint64_t jitter =
                SplitMix64::at(std::hash<std::string>{}(seg.name),
                               attempts) %
                (base_ms + 1);
            pa.next_ns = now_ns + (base_ms / 2 + jitter) * 1000000ull;
          }
        }
        if (attempts >= opts_.attach_retry_max) {
          record_attach_quarantine(
              seg.name, seg.pid,
              "attach retries exhausted (" + std::to_string(attempts) +
                  "x, last " +
                  std::string(shm::attach_error_kind_name(err.kind)) +
                  "): " + err.message);
        }
        break;
      }
    }
  }
  // Names that vanished from /dev/shm take their retry state with them.
  std::scoped_lock lk(mu_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool present =
        std::any_of(found.begin(), found.end(),
                    [&](const shm::SegmentName& s) {
                      return s.name == it->first;
                    });
    it = present ? std::next(it) : pending_.erase(it);
  }
}

void FleetMonitor::quarantine_producer(Producer& p,
                                       const std::string& reason) {
  int expected = p.phase.load(std::memory_order_acquire);
  for (;;) {  // first reporter wins; later trips are the same event
    if (expected == kQuarantined) return;
    if (p.phase.compare_exchange_weak(expected, kQuarantined,
                                      std::memory_order_acq_rel)) {
      break;
    }
  }
  // Snapshot what the books can still say. The fallback keeps them
  // trivially honest: if the produced count itself is unreadable, what we
  // read + what we lost is the only total we can vouch for.
  std::uint64_t produced = p.reader->total_read() + p.reader->total_lost();
  shm::with_sigbus_guard([&] {
    const std::uint64_t v = p.reader->total_produced();
    produced = v;
  });
  shm::CrashSalvage salvage;
  const bool salvage_ok =
      shm::with_sigbus_guard([&] { salvage = p.reader->salvage_crash(); });
  {
    std::scoped_lock lk(mu_);
    p.quarantine_reason = reason;
    p.produced_at_quarantine = produced;
    if (salvage_ok) p.salvage = salvage;
    p.salvaged = true;  // never touch the mapping for this producer again
    quarantines_.push_back({p.reader->name(), p.reader->owner_pid(), reason,
                            /*attach_phase=*/false});
  }
  std::fprintf(stderr, "orcamon: quarantined %s (pid %lld): %s\n",
               p.reader->name().c_str(),
               static_cast<long long>(p.reader->owner_pid()),
               reason.c_str());
}

void FleetMonitor::update_liveness(std::uint64_t now_ns) {
  std::size_t n;
  {
    std::scoped_lock lk(mu_);
    n = producers_.size();
  }
  const std::uint64_t stall_deadline_ns =
      static_cast<std::uint64_t>(opts_.heartbeat_deadline_ms) * 1000000ull;
  for (std::size_t i = 0; i < n; ++i) {
    Producer& p = *producers_[i];
    const int phase = p.phase.load(std::memory_order_acquire);
    if (phase == kDone || phase == kQuarantined) continue;
    // Cheap structural re-check first: an fstat never faults, and a
    // shrunken file means every mapped load past the new EOF is a SIGBUS
    // waiting for a shard thread.
    std::string why;
    if (!p.reader->revalidate(&why)) {
      quarantine_producer(p, why);
      continue;
    }
    if (phase != kActive) continue;
    shm::Liveness lv = shm::Liveness::kAlive;
    const bool ok = shm::with_sigbus_guard([&] {
      lv = p.reader->check_liveness(now_ns, opts_.liveness_grace,
                                    stall_deadline_ns);
    });
    if (!ok) {
      quarantine_producer(p, "SIGBUS during liveness check (truncated)");
      continue;
    }
    switch (lv) {
      case shm::Liveness::kAlive:
        break;
      case shm::Liveness::kFinalized:
        p.finalized.store(true, std::memory_order_release);
        p.phase.store(kDraining, std::memory_order_release);
        break;
      case shm::Liveness::kStalled:
        // Past the hard deadline with a live pid: drain it like a death —
        // the books close on whatever was published — but report it as
        // stalled so a SIGCONT'd survivor reads as what it was.
        p.stalled.store(true, std::memory_order_release);
        [[fallthrough]];
      case shm::Liveness::kDead:
        p.dead.store(true, std::memory_order_release);
        p.phase.store(kDraining, std::memory_order_release);
        break;
    }
  }
}

bool FleetMonitor::drain_ring(Producer& p, std::uint32_t ring) {
  RingState& state = p.rings[ring];
  bool expected = false;
  if (!state.busy.compare_exchange_strong(expected, true,
                                          std::memory_order_acquire)) {
    return false;  // the watchdog's replacement (or a late ghost) owns it
  }
  BusyRelease release{state.busy};
  if (state.done) return false;
  const int phase = p.phase.load(std::memory_order_acquire);
  if (phase == kQuarantined) return false;
  const bool draining = phase != kActive;
  bool progress = false;
  shm::Record rec;
  for (int bank = 0; bank < 2; ++bank) {
    const bool sample = bank == 1;
    int budget = draining ? -1 : kLiveBatch;
    while (budget != 0) {
      if (budget > 0) --budget;
      // Only the poll dereferences the mapping, so only the poll sits
      // inside the guard: fork bookkeeping and the pipeline push below
      // take locks, which guarded code must not.
      shm::Poll poll = shm::Poll::kEmpty;
      const bool ok = shm::with_sigbus_guard([&] {
        poll = sample ? p.reader->poll_sample(ring, &rec)
                      : p.reader->poll_event(ring, &rec);
      });
      if (!ok) {
        quarantine_producer(p, "SIGBUS while draining ring " +
                                   std::to_string(ring) +
                                   " (segment truncated)");
        return progress;
      }
      if (poll == shm::Poll::kEmpty) break;
      progress = true;
      if (poll == shm::Poll::kLost) continue;  // loss already booked
      RawRecord raw{rec, sample};
      if (!sample) {
        // Region edges: FORK opens, JOIN closes and carries the duration
        // downstream in arg (the ring's arg field is unused for events).
        // FORK and JOIN may surface on different rings, hence the lock.
        if (rec.event == OMP_EVENT_FORK) {
          std::scoped_lock lk(p.fork_mu);
          p.open_forks[rec.tid] = rec.ns;
        } else if (rec.event == OMP_EVENT_JOIN) {
          std::scoped_lock lk(p.fork_mu);
          auto it = p.open_forks.find(rec.tid);
          if (it != p.open_forks.end()) {
            if (rec.ns >= it->second) raw.rec.arg = rec.ns - it->second;
            p.open_forks.erase(it);
          }
        }
      }
      p.head->push(raw);
    }
  }
  if (draining && !progress) {
    // Two empty banks on a dead/finalized producer: close this ring's
    // books (whatever the tail claims beyond the cursor becomes loss).
    const bool ok = shm::with_sigbus_guard([&] {
      p.reader->finalize_ring(ring);
    });
    if (!ok) {
      quarantine_producer(p, "SIGBUS while closing ring " +
                                 std::to_string(ring) +
                                 " (segment truncated)");
      return progress;
    }
    state.done = true;
    const std::uint32_t done =
        p.rings_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == p.ring_count) {
      p.phase.store(kDone, std::memory_order_release);
    }
    return true;
  }
  return progress;
}

void FleetMonitor::shard_loop(unsigned shard, std::uint64_t generation) {
  Shard& self = *shards_[shard];
  while (!shards_stop_.load(std::memory_order_acquire) &&
         self.generation.load(std::memory_order_acquire) == generation) {
    // The beat is the watchdog's only signal: it advances even on idle
    // passes, so "beat frozen" means this thread is wedged, not bored.
    self.beat.fetch_add(1, std::memory_order_relaxed);
    ORCA_FAULT_POINT(kShardDrain);
    bool progress = false;
    std::size_t n;
    {
      std::scoped_lock lk(mu_);
      n = producers_.size();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Producer& p = *producers_[i];
      const int phase = p.phase.load(std::memory_order_acquire);
      if (phase == kDone || phase == kQuarantined) continue;
      for (std::uint32_t r = 0; r < p.ring_count; ++r) {
        if ((i + r) % opts_.shards != shard) continue;
        progress |= drain_ring(p, r);
      }
    }
    if (!progress) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_ms == 0 ? 1 : opts_.poll_ms));
    }
  }
}

void FleetMonitor::check_shard_watchdog(std::uint64_t now_ns) {
  if (opts_.shard_stall_ms == 0) return;
  const std::uint64_t stall_ns =
      static_cast<std::uint64_t>(opts_.shard_stall_ms) * 1000000ull;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    const std::uint64_t beat = sh.beat.load(std::memory_order_acquire);
    if (sh.last_change_ns == 0 || beat != sh.last_beat) {
      sh.last_beat = beat;
      sh.last_change_ns = now_ns;
      continue;
    }
    if (now_ns - sh.last_change_ns < stall_ns) continue;
    // Wedged. Retire the thread (it exits when it next runs and sees the
    // bumped generation; until then the per-ring busy latches fence it
    // off the cursors) and restart the same ring assignment.
    const std::uint64_t next_gen =
        sh.generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    {
      std::scoped_lock lk(mu_);
      retired_threads_.push_back(std::move(sh.thread));
    }
    sh.thread = std::thread([this, s, next_gen] {
      shard_loop(static_cast<unsigned>(s), next_gen);
    });
    watchdog_restarts_.fetch_add(1, std::memory_order_release);
    sh.last_beat = sh.beat.load(std::memory_order_acquire);
    sh.last_change_ns = now_ns;  // fresh grace period for the replacement
    std::fprintf(stderr,
                 "orcamon: shard %zu drain thread wedged for %u ms; "
                 "replaced it (same ring assignment)\n",
                 s, opts_.shard_stall_ms);
  }
}

std::size_t FleetMonitor::run() {
  const std::uint64_t start_ns = SteadyClock::now();
  shards_stop_.store(false, std::memory_order_release);
  shards_.clear();
  shards_.reserve(opts_.shards);
  for (unsigned s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (unsigned s = 0; s < opts_.shards; ++s) {
    shards_[s]->thread = std::thread([this, s] { shard_loop(s, 0); });
  }

  std::uint64_t last_report_ns = start_ns;
  const auto report_every =
      static_cast<std::uint64_t>(opts_.report_interval_s * 1e9);
  for (;;) {
    const std::uint64_t now = SteadyClock::now();
    attach_new_segments(now);
    update_liveness(now);
    check_shard_watchdog(now);

    // Salvage + reap producers whose shards closed the books. Done from
    // this thread so unlink/salvage happen exactly once. Quarantined
    // producers were snapshotted on the way in and count as settled.
    std::size_t n, done = 0;
    {
      std::scoped_lock lk(mu_);
      n = producers_.size();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Producer& p = *producers_[i];
      const int phase = p.phase.load(std::memory_order_acquire);
      if (phase == kQuarantined) {
        ++done;
        continue;
      }
      if (phase != kDone) continue;
      ++done;
      if (!p.salvaged) {
        shm::with_sigbus_guard([&] { p.salvage = p.reader->salvage_crash(); });
        if (p.dead.load(std::memory_order_acquire) && opts_.unlink_dead) {
          p.reader->unlink_segment();
        }
        p.salvaged = true;
      }
    }

    if (report_every > 0 && now - last_report_ns >= report_every) {
      last_report_ns = now;
      emit_report(false);
    }

    if (stop_.load(std::memory_order_acquire)) break;
    if (opts_.duration_s > 0 &&
        static_cast<double>(now - start_ns) > opts_.duration_s * 1e9) {
      break;
    }
    if (opts_.exit_when_idle && n > 0 && done == n) break;

    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.discover_ms == 0 ? 10
                                                         : opts_.discover_ms));
  }

  shards_stop_.store(true, std::memory_order_release);
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) sh->thread.join();
  }
  tail_->flush();

  // Close the books on anything still open (stopped mid-flight).
  std::size_t n;
  {
    std::scoped_lock lk(mu_);
    n = producers_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Producer& p = *producers_[i];
    if (!p.salvaged) {
      shm::with_sigbus_guard([&] { p.salvage = p.reader->salvage_crash(); });
      p.salvaged = true;
    }
  }

  if (!opts_.trace_out.empty()) write_trace(opts_.trace_out);
  emit_report(true);
  return n;
}

std::size_t FleetMonitor::attached_count() const {
  std::scoped_lock lk(mu_);
  return producers_.size();
}

std::vector<QuarantineRecord> FleetMonitor::quarantines() const {
  std::scoped_lock lk(mu_);
  return quarantines_;
}

std::vector<ProducerInfo> FleetMonitor::producers() const {
  std::scoped_lock lk(mu_);
  std::vector<ProducerInfo> out;
  out.reserve(producers_.size());
  for (const auto& pp : producers_) {
    const Producer& p = *pp;
    const int phase = p.phase.load(std::memory_order_acquire);
    ProducerInfo info;
    info.name = p.reader->name();
    info.label = p.reader->label();
    info.pid = p.reader->owner_pid();
    info.finalized = p.finalized.load(std::memory_order_acquire);
    info.dead = p.dead.load(std::memory_order_acquire);
    info.stalled = p.stalled.load(std::memory_order_acquire);
    info.drained = phase == kDone;
    info.quarantined = phase == kQuarantined;
    info.quarantine_reason = p.quarantine_reason;
    // Cursors live in the reader object, not the mapping: always safe.
    info.read = p.reader->total_read();
    info.lost = p.reader->total_lost();
    if (info.quarantined) {
      info.produced = p.produced_at_quarantine;
      info.salvage = p.salvage;
      out.push_back(std::move(info));
      continue;
    }
    // Live mapping reads, guarded: a truncate racing this report must not
    // kill the reporter. The fallback books balance by construction.
    info.produced = info.read + info.lost;
    shm::with_sigbus_guard([&] {
      const std::uint64_t v = p.reader->total_produced();
      info.produced = v;
    });
    if (p.salvaged) {
      info.salvage = p.salvage;
    } else {
      shm::with_sigbus_guard([&] { info.salvage = p.reader->salvage_crash(); });
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::string FleetMonitor::render_report() const {
  std::ostringstream os;
  const std::vector<ProducerInfo> fleet = producers();
  const std::vector<QuarantineRecord> quarantined = quarantines();
  std::size_t alive = 0, finalized = 0, dead = 0, inmates = 0;
  for (const ProducerInfo& p : fleet) {
    if (p.quarantined) ++inmates;
    else if (p.dead) ++dead;
    else if (p.finalized) ++finalized;
    else ++alive;
  }
  os << "orcamon fleet report: " << fleet.size() << " producer(s) (" << alive
     << " alive, " << finalized << " finalized, " << dead << " dead, "
     << inmates << " quarantined), " << events_seen() << " records merged, "
     << trace_->size() << " retained for trace\n";
  for (const ProducerInfo& p : fleet) {
    os << "  pid " << p.pid << " [" << p.label << "] "
       << (p.quarantined ? "quarantined"
           : p.dead      ? (p.stalled ? "stalled" : "dead")
           : p.finalized ? "finalized"
                         : "alive")
       << (p.drained ? ", drained" : "") << ": produced=" << p.produced
       << " read=" << p.read << " lost=" << p.lost;
    if (p.drained && p.produced != p.read + p.lost) {
      os << " (books OPEN)";  // should never print once drained
    }
    if (p.quarantined) os << " — " << p.quarantine_reason;
    os << "\n";
    if (p.salvage.kind != shm::kCrashEmpty) {
      os << "    crash section ("
         << (p.salvage.kind == shm::kCrashPostmortem ? "postmortem" : "snapshot")
         << (p.salvage.torn ? ", torn" : "") << "): "
         << p.salvage.text.size() << " bytes\n";
    }
  }
  // Attach-phase quarantines have no producer row of their own.
  for (const QuarantineRecord& q : quarantined) {
    if (!q.attach_phase) continue;
    os << "  segment " << q.name << " (pid " << q.pid
       << ") quarantined at attach — " << q.reason << "\n";
  }
  const std::vector<pipeline::AggregateRow> rows = region_agg_->snapshot();
  if (!rows.empty()) {
    os << "parallel-region durations by pid (ns):\n"
       << pipeline::render_aggregate(rows, "pid", "ns");
  }
  os << pipeline::render_stats(pipeline::Pipeline<FleetEvent>(tail_).stats());
  return os.str();
}

void FleetMonitor::emit_report(bool final_report) {
  const std::string text = render_report();
  if (opts_.report_out.empty()) {
    std::fputs(text.c_str(), stdout);
    std::fflush(stdout);
    return;
  }
  // Periodic reports overwrite in place; readers always see a whole file.
  const std::string tmp = opts_.report_out + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  std::fputs(text.c_str(), f);
  std::fclose(f);
  std::rename(tmp.c_str(), opts_.report_out.c_str());
  (void)final_report;
}

bool FleetMonitor::write_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::vector<FleetEvent> events =
      trace_->sorted([](const FleetEvent& a, const FleetEvent& b) {
        return a.ns < b.ns;
      });
  std::uint64_t base = 0;
  for (const FleetEvent& e : events) {
    const std::uint64_t start = e.ns - std::min(e.ns, e.arg);
    if (base == 0 || start < base) base = start;
  }

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  const auto comma = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  // Process/thread name metadata: one process row per producer, one
  // thread row per (pid, tid) that shows up in the merged stream.
  for (const ProducerInfo& p : producers()) {
    comma();
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRId64
                 ",\"tid\":0,\"args\":{\"name\":\"%s (pid %" PRId64 "%s)\"}}",
                 p.pid, json_escape(p.label).c_str(), p.pid,
                 p.quarantined ? ", quarantined"
                 : p.dead      ? ", died"
                               : "");
  }
  std::set<std::pair<std::int64_t, std::int32_t>> threads;
  for (const FleetEvent& e : events) threads.insert({e.pid, e.tid});
  for (const auto& [pid, tid] : threads) {
    comma();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRId64
                 ",\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 pid, tid, tid == 0 ? "master" : "worker");
  }

  for (const FleetEvent& e : events) {
    comma();
    if (!e.sample && e.code == OMP_EVENT_JOIN && e.arg > 0) {
      // FORK..JOIN region as a complete span on the master track.
      std::fprintf(f,
                   "{\"name\":\"parallel region\",\"cat\":\"region\","
                   "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRId64
                   ",\"tid\":%d}",
                   static_cast<double>(e.ns - e.arg - base) / 1e3,
                   static_cast<double>(e.arg) / 1e3, e.pid, e.tid);
      continue;
    }
    const std::string name =
        e.sample ? state_display(e.code) : event_display(e.code);
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                 "\"pid\":%" PRId64 ",\"tid\":%d,\"s\":\"t\"}",
                 json_escape(name).c_str(), e.sample ? "sample" : "event",
                 static_cast<double>(e.ns - base) / 1e3, e.pid, e.tid);
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace orca::tool::orcamon
