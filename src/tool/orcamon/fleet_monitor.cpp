#include "tool/orcamon/fleet_monitor.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "collector/api.h"
#include "collector/names.hpp"
#include "common/clock.hpp"
#include "pipeline/stage.hpp"
#include "telemetry/telemetry.hpp"

namespace orca::tool::orcamon {
namespace {

/// Drain batch per ring bank per pass for a live producer: bounded so one
/// chatty ring cannot starve the shard's other assignments.
constexpr int kLiveBatch = 1024;

/// Fleet-size cap. producers_ is reserved to this in the constructor so
/// push_back never reallocates: shard threads index the vector with only
/// a size snapshot taken under the lock, which is sound exactly because
/// the element storage never moves.
constexpr std::size_t kMaxProducers = 256;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Short display name for an event code: "FORK", "THR_BEGIN_IDLE", ...
std::string event_display(std::int32_t code) {
  std::string_view full =
      collector::to_string(static_cast<OMP_COLLECTORAPI_EVENT>(code));
  if (full == "?") return "event-" + std::to_string(code);
  constexpr std::string_view kOmp = "OMP_EVENT_";
  constexpr std::string_view kOrca = "ORCA_EVENT_";
  if (full.substr(0, kOmp.size()) == kOmp) full.remove_prefix(kOmp.size());
  else if (full.substr(0, kOrca.size()) == kOrca)
    full.remove_prefix(kOrca.size());
  return std::string(full);
}

std::string state_display(std::int32_t code) {
  std::string_view full =
      collector::to_string(static_cast<OMP_COLLECTOR_API_THR_STATE>(code));
  if (full == "?") return "state-" + std::to_string(code);
  return std::string(full);
}

}  // namespace

FleetMonitor::FleetMonitor(MonitorOptions opts) : opts_(std::move(opts)) {
  if (opts_.shards == 0) opts_.shards = 1;
  producers_.reserve(kMaxProducers);
  // Shared tail, downstream-first: the terminal branches, then the fanout
  // every producer's tag stage feeds.
  region_agg_ = pipeline::aggregate<FleetEvent>(
      "region-durations",
      [](const FleetEvent& e) { return static_cast<std::uint64_t>(e.pid); },
      [](const FleetEvent& e) { return e.arg; });
  auto spans = pipeline::filter<FleetEvent>(
      "join-spans",
      [](const FleetEvent& e) {
        return !e.sample && e.code == OMP_EVENT_JOIN && e.arg > 0;
      },
      region_agg_);
  trace_ = pipeline::collect<FleetEvent>("trace", opts_.max_trace_events);
  auto counter = pipeline::sink<FleetEvent>(
      "fleet-count", [this](const FleetEvent&) {
        events_seen_.fetch_add(1, std::memory_order_relaxed);
      });
  tail_ = pipeline::fanout<FleetEvent>("fleet", {spans, trace_, counter});
}

FleetMonitor::~FleetMonitor() {
  shards_stop_.store(true, std::memory_order_release);
  for (std::thread& t : shard_threads_) {
    if (t.joinable()) t.join();
  }
}

pipeline::StagePtr<RawRecord> FleetMonitor::build_head(std::int64_t pid,
                                                       Producer* /*p*/) {
  const std::string tag = std::to_string(pid);
  auto stamp = pipeline::map<FleetEvent>(
      "tag:" + tag,
      [pid](const FleetEvent& e) {
        FleetEvent out = e;
        out.pid = pid;
        return out;
      },
      tail_);
  return pipeline::map<RawRecord>(
      "decode:" + tag,
      [](const RawRecord& r) {
        FleetEvent ev;
        ev.ns = r.rec.ns;
        ev.tid = r.rec.tid;
        ev.code = r.rec.event;
        ev.arg = r.rec.arg;
        ev.sample = r.sample;
        return ev;
      },
      stamp);
}

void FleetMonitor::attach_new_segments() {
  const std::vector<shm::SegmentName> found =
      shm::discover_segments(opts_.prefix);
  for (const shm::SegmentName& seg : found) {
    {
      std::scoped_lock lk(mu_);
      if (seen_names_.count(seg.name) != 0) continue;
    }
    if (seg.pid == static_cast<std::int64_t>(::getpid())) continue;
    std::string err;
    auto reader = shm::SegmentReader::attach(seg.name, &err);
    if (!reader) continue;  // mid-init or vanished: retry next pass
    auto p = std::make_unique<Producer>();
    p->reader = std::move(reader);
    p->rings.resize(p->reader->ring_count());
    p->head = build_head(p->reader->owner_pid(), p.get());
    std::scoped_lock lk(mu_);
    if (producers_.size() >= kMaxProducers) break;  // fleet full; retry never
    p->index = producers_.size();
    seen_names_[seg.name] = true;
    producers_.push_back(std::move(p));
  }
}

void FleetMonitor::update_liveness(std::uint64_t now_ns) {
  std::size_t n;
  {
    std::scoped_lock lk(mu_);
    n = producers_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Producer& p = *producers_[i];
    if (p.phase.load(std::memory_order_acquire) != kActive) continue;
    switch (p.reader->check_liveness(now_ns, opts_.liveness_grace)) {
      case shm::Liveness::kAlive:
        break;
      case shm::Liveness::kFinalized:
        p.finalized.store(true, std::memory_order_release);
        p.phase.store(kDraining, std::memory_order_release);
        break;
      case shm::Liveness::kDead:
        p.dead.store(true, std::memory_order_release);
        p.phase.store(kDraining, std::memory_order_release);
        break;
    }
  }
}

bool FleetMonitor::drain_ring(Producer& p, std::uint32_t ring) {
  RingState& state = p.rings[ring];
  if (state.done) return false;
  const bool draining = p.phase.load(std::memory_order_acquire) != kActive;
  bool progress = false;
  shm::Record rec;
  for (int bank = 0; bank < 2; ++bank) {
    const bool sample = bank == 1;
    int budget = draining ? -1 : kLiveBatch;
    while (budget != 0) {
      if (budget > 0) --budget;
      const shm::Poll poll = sample ? p.reader->poll_sample(ring, &rec)
                                    : p.reader->poll_event(ring, &rec);
      if (poll == shm::Poll::kEmpty) break;
      progress = true;
      if (poll == shm::Poll::kLost) continue;  // loss already booked
      RawRecord raw{rec, sample};
      if (!sample) {
        // Region edges: FORK opens, JOIN closes and carries the duration
        // downstream in arg (the ring's arg field is unused for events).
        // FORK and JOIN may surface on different rings, hence the lock.
        if (rec.event == OMP_EVENT_FORK) {
          std::scoped_lock lk(p.fork_mu);
          p.open_forks[rec.tid] = rec.ns;
        } else if (rec.event == OMP_EVENT_JOIN) {
          std::scoped_lock lk(p.fork_mu);
          auto it = p.open_forks.find(rec.tid);
          if (it != p.open_forks.end()) {
            if (rec.ns >= it->second) raw.rec.arg = rec.ns - it->second;
            p.open_forks.erase(it);
          }
        }
      }
      p.head->push(raw);
    }
  }
  if (draining && !progress) {
    // Two empty banks on a dead/finalized producer: close this ring's
    // books (whatever the tail claims beyond the cursor becomes loss).
    p.reader->finalize_ring(ring);
    state.done = true;
    const std::uint32_t done =
        p.rings_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == p.reader->ring_count()) {
      p.phase.store(kDone, std::memory_order_release);
    }
    return true;
  }
  return progress;
}

void FleetMonitor::shard_loop(unsigned shard) {
  while (!shards_stop_.load(std::memory_order_acquire)) {
    bool progress = false;
    std::size_t n;
    {
      std::scoped_lock lk(mu_);
      n = producers_.size();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Producer& p = *producers_[i];
      if (p.phase.load(std::memory_order_acquire) == kDone) continue;
      const std::uint32_t rings = p.reader->ring_count();
      for (std::uint32_t r = 0; r < rings; ++r) {
        if ((i + r) % opts_.shards != shard) continue;
        progress |= drain_ring(p, r);
      }
    }
    if (!progress) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_ms == 0 ? 1 : opts_.poll_ms));
    }
  }
}

std::size_t FleetMonitor::run() {
  const std::uint64_t start_ns = SteadyClock::now();
  shards_stop_.store(false, std::memory_order_release);
  shard_threads_.reserve(opts_.shards);
  for (unsigned s = 0; s < opts_.shards; ++s) {
    shard_threads_.emplace_back([this, s] { shard_loop(s); });
  }

  std::uint64_t last_report_ns = start_ns;
  const auto report_every =
      static_cast<std::uint64_t>(opts_.report_interval_s * 1e9);
  for (;;) {
    attach_new_segments();
    const std::uint64_t now = SteadyClock::now();
    update_liveness(now);

    // Salvage + reap producers whose shards closed the books. Done from
    // this thread so unlink/salvage happen exactly once.
    std::size_t n, done = 0;
    {
      std::scoped_lock lk(mu_);
      n = producers_.size();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Producer& p = *producers_[i];
      if (p.phase.load(std::memory_order_acquire) != kDone) continue;
      ++done;
      if (!p.salvaged) {
        p.salvage = p.reader->salvage_crash();
        if (p.dead.load(std::memory_order_acquire) && opts_.unlink_dead) {
          p.reader->unlink_segment();
        }
        p.salvaged = true;
      }
    }

    if (report_every > 0 && now - last_report_ns >= report_every) {
      last_report_ns = now;
      emit_report(false);
    }

    if (stop_.load(std::memory_order_acquire)) break;
    if (opts_.duration_s > 0 &&
        static_cast<double>(now - start_ns) > opts_.duration_s * 1e9) {
      break;
    }
    if (opts_.exit_when_idle && n > 0 && done == n) break;

    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.discover_ms == 0 ? 10
                                                         : opts_.discover_ms));
  }

  shards_stop_.store(true, std::memory_order_release);
  for (std::thread& t : shard_threads_) t.join();
  shard_threads_.clear();
  tail_->flush();

  // Close the books on anything still open (stopped mid-flight).
  std::size_t n;
  {
    std::scoped_lock lk(mu_);
    n = producers_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Producer& p = *producers_[i];
    if (!p.salvaged) {
      p.salvage = p.reader->salvage_crash();
      p.salvaged = true;
    }
  }

  if (!opts_.trace_out.empty()) write_trace(opts_.trace_out);
  emit_report(true);
  return n;
}

std::size_t FleetMonitor::attached_count() const {
  std::scoped_lock lk(mu_);
  return producers_.size();
}

std::vector<ProducerInfo> FleetMonitor::producers() const {
  std::size_t n;
  {
    std::scoped_lock lk(mu_);
    n = producers_.size();
  }
  std::vector<ProducerInfo> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Producer& p = *producers_[i];
    ProducerInfo info;
    info.name = p.reader->name();
    info.label = p.reader->label();
    info.pid = p.reader->owner_pid();
    info.finalized = p.finalized.load(std::memory_order_acquire);
    info.dead = p.dead.load(std::memory_order_acquire);
    info.drained = p.phase.load(std::memory_order_acquire) == kDone;
    info.produced = p.reader->total_produced();
    info.read = p.reader->total_read();
    info.lost = p.reader->total_lost();
    info.salvage = p.salvaged ? p.salvage : p.reader->salvage_crash();
    out.push_back(std::move(info));
  }
  return out;
}

std::string FleetMonitor::render_report() const {
  std::ostringstream os;
  const std::vector<ProducerInfo> fleet = producers();
  std::size_t alive = 0, finalized = 0, dead = 0;
  for (const ProducerInfo& p : fleet) {
    if (p.dead) ++dead;
    else if (p.finalized) ++finalized;
    else ++alive;
  }
  os << "orcamon fleet report: " << fleet.size() << " producer(s) (" << alive
     << " alive, " << finalized << " finalized, " << dead << " dead), "
     << events_seen() << " records merged, " << trace_->size()
     << " retained for trace\n";
  for (const ProducerInfo& p : fleet) {
    os << "  pid " << p.pid << " [" << p.label << "] "
       << (p.dead ? "dead" : p.finalized ? "finalized" : "alive")
       << (p.drained ? ", drained" : "") << ": produced=" << p.produced
       << " read=" << p.read << " lost=" << p.lost;
    if (p.drained && p.produced != p.read + p.lost) {
      os << " (books OPEN)";  // should never print once drained
    }
    os << "\n";
    if (p.salvage.kind != shm::kCrashEmpty) {
      os << "    crash section ("
         << (p.salvage.kind == shm::kCrashPostmortem ? "postmortem" : "snapshot")
         << (p.salvage.torn ? ", torn" : "") << "): "
         << p.salvage.text.size() << " bytes\n";
    }
  }
  const std::vector<pipeline::AggregateRow> rows = region_agg_->snapshot();
  if (!rows.empty()) {
    os << "parallel-region durations by pid (ns):\n"
       << pipeline::render_aggregate(rows, "pid", "ns");
  }
  os << pipeline::render_stats(pipeline::Pipeline<FleetEvent>(tail_).stats());
  return os.str();
}

void FleetMonitor::emit_report(bool final_report) {
  const std::string text = render_report();
  if (opts_.report_out.empty()) {
    std::fputs(text.c_str(), stdout);
    std::fflush(stdout);
    return;
  }
  // Periodic reports overwrite in place; readers always see a whole file.
  const std::string tmp = opts_.report_out + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  std::fputs(text.c_str(), f);
  std::fclose(f);
  std::rename(tmp.c_str(), opts_.report_out.c_str());
  (void)final_report;
}

bool FleetMonitor::write_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::vector<FleetEvent> events =
      trace_->sorted([](const FleetEvent& a, const FleetEvent& b) {
        return a.ns < b.ns;
      });
  std::uint64_t base = 0;
  for (const FleetEvent& e : events) {
    const std::uint64_t start = e.ns - std::min(e.ns, e.arg);
    if (base == 0 || start < base) base = start;
  }

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  const auto comma = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  // Process/thread name metadata: one process row per producer, one
  // thread row per (pid, tid) that shows up in the merged stream.
  for (const ProducerInfo& p : producers()) {
    comma();
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRId64
                 ",\"tid\":0,\"args\":{\"name\":\"%s (pid %" PRId64 "%s)\"}}",
                 p.pid, json_escape(p.label).c_str(), p.pid,
                 p.dead ? ", died" : "");
  }
  std::set<std::pair<std::int64_t, std::int32_t>> threads;
  for (const FleetEvent& e : events) threads.insert({e.pid, e.tid});
  for (const auto& [pid, tid] : threads) {
    comma();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRId64
                 ",\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 pid, tid, tid == 0 ? "master" : "worker");
  }

  for (const FleetEvent& e : events) {
    comma();
    if (!e.sample && e.code == OMP_EVENT_JOIN && e.arg > 0) {
      // FORK..JOIN region as a complete span on the master track.
      std::fprintf(f,
                   "{\"name\":\"parallel region\",\"cat\":\"region\","
                   "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRId64
                   ",\"tid\":%d}",
                   static_cast<double>(e.ns - e.arg - base) / 1e3,
                   static_cast<double>(e.arg) / 1e3, e.pid, e.tid);
      continue;
    }
    const std::string name =
        e.sample ? state_display(e.code) : event_display(e.code);
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                 "\"pid\":%" PRId64 ",\"tid\":%d,\"s\":\"t\"}",
                 json_escape(name).c_str(), e.sample ? "sample" : "event",
                 static_cast<double>(e.ns - base) / 1e3, e.pid, e.tid);
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace orca::tool::orcamon
