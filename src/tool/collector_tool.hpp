/// \file collector_tool.hpp
/// The prototype performance measurement tool of paper Sec. V.
///
/// "The tool is a shared object that is LD_PRELOAD'ed to the target's
/// address space. It includes an init section that queries the runtime
/// linker for the presence of the OpenMP API symbol. If the symbol is
/// present, the tool initiates a start request and registers for the fork,
/// join, and implicit barrier events. The callback routine that is invoked
/// each time a registered event occurs at runtime stores a sample of a
/// hardware-based time counter. Furthermore, to estimate the potential
/// overheads from callstack retrieval, the tool also records the current
/// implementation-model callstack for each join event."
///
/// `PrototypeCollector` is that tool as an in-process singleton (the
/// LD_PRELOAD packaging is an artifact of deployment, not behaviour): same
/// discovery, same default event set, same per-event actions, plus the
/// offline finalize step that reconstructs the user-model profile.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "collector/api.h"
#include "common/spinlock.hpp"
#include "perf/counter.hpp"
#include "perf/samples.hpp"
#include "perf/trace.hpp"
#include "tool/client2.hpp"

namespace orca::tool {

/// What the tool registers for and how much it measures. The `measure` /
/// `record_callstacks` switches carve the overhead into the paper's two
/// components (Sec. V-B): callback/communication vs. measurement/storage.
struct ToolOptions {
  /// Events to register. Default = the paper's set: fork, join, implicit
  /// barrier begin/end.
  std::vector<OMP_COLLECTORAPI_EVENT> events = {
      OMP_EVENT_FORK, OMP_EVENT_JOIN, OMP_EVENT_THR_BEGIN_IBAR,
      OMP_EVENT_THR_END_IBAR};

  /// Store time-counter samples (false = callbacks return immediately
  /// after bumping a counter: the "communication only" arm of E6).
  bool measure = true;

  /// Record the implementation-model callstack at each join event.
  bool record_callstacks = true;

  /// Query the current region id at join (one extra runtime↔collector
  /// round trip per region — "communication" cost).
  bool query_region_ids = true;

  /// Tag join callstack records with the region's outlined procedure via
  /// the `__ompc_get_current_region_fn` ORCA extension, giving the offline
  /// pass exact pragma coordinates. Off by default: a portable ORA tool
  /// only has the callstack.
  bool use_region_fn_extension = false;

  // --- selective collection (paper Sec. VI) -------------------------------
  // "To control the runtime overheads, tools can reduce the number of
  // times data is collected by distinguishing between either the same
  // parallel region or the calling context for a parallel region."

  /// Record the join callstack only every Nth join (1 = every join).
  std::uint64_t callstack_sampling_interval = 1;

  /// Skip callstack recording for regions shorter than this ("we want to
  /// avoid doing so for insignificant events and small parallel regions",
  /// paper Sec. IV). 0 disables the filter.
  double min_region_seconds = 0.0;

  /// Record each distinct calling context only once: later joins with an
  /// already-seen callstack are counted but not stored.
  bool dedup_by_context = false;

  /// Per-thread event-sample capacity (preallocated; overflow drops).
  std::size_t sample_capacity = 1u << 20;

  /// Thread slots in the sample store (>= max gtid + 1).
  std::size_t thread_slots = 65;

  perf::CounterSource counter = perf::CounterSource::kTsc;
};

/// Aggregated per-region statistics (master-thread fork→join intervals).
struct RegionStats {
  unsigned long region_id = 0;
  std::uint64_t invocations = 0;
  double total_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

/// One line of the user-model callstack profile.
struct CallstackProfileEntry {
  std::string rendered;       ///< reconstructed user-model stack
  std::uint64_t samples = 0;  ///< join events observed with this stack
};

/// Aggregated time spent between one begin/end event pair ("OpenMP
/// specific performance metrics", paper Sec. VI): e.g. total implicit-
/// barrier time per thread from BEGIN_IBAR/END_IBAR samples.
struct IntervalStats {
  int begin_event = 0;  ///< OMP_COLLECTORAPI_EVENT value of the begin
  int tid = 0;
  std::uint64_t intervals = 0;
  double total_seconds = 0;
};

/// Finalized measurement report (the offline phase's output).
struct Report {
  std::uint64_t total_events = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t callback_invocations = 0;
  std::map<int, std::uint64_t> event_counts;        ///< event -> count
  std::vector<RegionStats> regions;                 ///< by region id
  std::vector<CallstackProfileEntry> callstack_profile;
  std::vector<IntervalStats> intervals;             ///< per (event, tid)

  /// Human-readable rendering (tables for events, regions, callstacks).
  std::string render() const;
};

/// The prototype collector. Singleton because ORA callbacks are plain
/// function pointers (one tool per process, like an LD_PRELOAD object).
class PrototypeCollector {
 public:
  static PrototypeCollector& instance();

  PrototypeCollector(const PrototypeCollector&) = delete;
  PrototypeCollector& operator=(const PrototypeCollector&) = delete;

  /// Discover the API, send START, and register the configured events.
  /// Returns false when the symbol is absent or START fails.
  bool attach(ToolOptions opts = {});

  /// Prepare options/store without touching any runtime. Use together with
  /// `raw_callback()` when the tool must be wired to several runtimes
  /// (MiniMPI: one collector registration per rank, performed on each rank
  /// thread, all feeding this tool's shared sample store).
  void configure(ToolOptions opts);

  /// The tool's event callback, for manual registration from rank threads.
  static OMP_COLLECTORAPI_CALLBACK raw_callback() noexcept {
    return &PrototypeCollector::event_callback;
  }

  /// Send STOP and unhook. Data collected so far remains available to
  /// finalize().
  void detach();

  /// Suppress / re-enable event generation without losing registration.
  bool pause();
  bool resume();

  bool attached() const noexcept { return attached_; }

  /// Offline phase: aggregate samples, pair fork/join intervals, and
  /// reconstruct the user-model callstack profile.
  Report finalize() const;

  /// Raw collected data (for the trace-spill workflow and tests).
  perf::TraceData trace_data() const;

  /// Drop all collected data (between experiment arms).
  void reset();

  std::uint64_t callback_invocations() const noexcept {
    return callback_count_.load(std::memory_order_relaxed);
  }

  /// Join callstacks skipped by the selective-collection filters.
  std::uint64_t callstacks_filtered() const noexcept {
    return filtered_count_.load(std::memory_order_relaxed);
  }

 private:
  PrototypeCollector() = default;

  static void event_callback(OMP_COLLECTORAPI_EVENT event);
  void on_event(OMP_COLLECTORAPI_EVENT event);

  /// Pre-capture filters (small-region, sampling): false = skip even the
  /// callstack capture. Updates the sampling counter.
  bool passes_cheap_filters(std::uint64_t join_ticks);

  /// Post-capture filter: calling-context dedup over the frame hash.
  bool passes_dedup(const std::vector<const void*>& frames);

  ToolOptions opts_;
  std::optional<collector::Client> client_;
  std::unique_ptr<perf::SampleStore> store_;
  perf::HwTimeCounter counter_;
  std::atomic<std::uint64_t> callback_count_{0};
  std::atomic<std::uint64_t> filtered_count_{0};
  std::atomic<std::uint64_t> join_count_{0};
  std::atomic<std::uint64_t> last_fork_ticks_{0};
  SpinLock contexts_mu_;
  std::unordered_set<std::size_t> seen_contexts_;
  bool attached_ = false;
};

}  // namespace orca::tool
