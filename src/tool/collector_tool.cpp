#include "tool/collector_tool.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/strutil.hpp"
#include "collector/names.hpp"
#include "runtime/ompc_api.h"
#include "unwind/backtrace.hpp"
#include "unwind/user_model.hpp"

namespace orca::tool {

PrototypeCollector& PrototypeCollector::instance() {
  static PrototypeCollector tool;
  return tool;
}

void PrototypeCollector::event_callback(OMP_COLLECTORAPI_EVENT event) {
  instance().on_event(event);
}

void PrototypeCollector::configure(ToolOptions opts) {
  opts_ = std::move(opts);
  counter_ = perf::HwTimeCounter(opts_.counter);
  if (store_ == nullptr) {
    store_ = std::make_unique<perf::SampleStore>(opts_.thread_slots,
                                                 opts_.sample_capacity);
  }
  client_ = collector::Client::discover();
}

bool PrototypeCollector::attach(ToolOptions opts) {
  if (attached_) return false;
  configure(std::move(opts));
  if (!client_) return false;

  if (client_->start() != OMP_ERRCODE_OK) return false;
  for (const OMP_COLLECTORAPI_EVENT event : opts_.events) {
    // Optional events may be unsupported by the runtime; FORK/JOIN are
    // mandatory, so treat their failure (only) as fatal.
    const OMP_COLLECTORAPI_EC ec =
        client_->register_event(event, &PrototypeCollector::event_callback);
    if (ec != OMP_ERRCODE_OK &&
        (event == OMP_EVENT_FORK || event == OMP_EVENT_JOIN)) {
      client_->stop();
      return false;
    }
  }
  attached_ = true;
  return true;
}

void PrototypeCollector::detach() {
  if (!attached_) return;
  client_->stop();
  attached_ = false;
}

bool PrototypeCollector::pause() {
  return attached_ && client_->pause() == OMP_ERRCODE_OK;
}

bool PrototypeCollector::resume() {
  return attached_ && client_->resume() == OMP_ERRCODE_OK;
}

bool PrototypeCollector::passes_cheap_filters(std::uint64_t join_ticks) {
  // These run *before* the callstack capture: for filtered joins the tool
  // skips the capture entirely, which is where the cost lives.
  //
  // Small-region filter: compare this join against the matching fork.
  if (opts_.min_region_seconds > 0) {
    const std::uint64_t fork_ticks =
        last_fork_ticks_.load(std::memory_order_relaxed);
    if (fork_ticks != 0 &&
        counter_.to_seconds(join_ticks - fork_ticks) <
            opts_.min_region_seconds) {
      return false;
    }
  }
  // Sampling: keep one join in every `interval`.
  if (opts_.callstack_sampling_interval > 1) {
    const std::uint64_t n = join_count_.fetch_add(1, std::memory_order_relaxed);
    if (n % opts_.callstack_sampling_interval != 0) return false;
  }
  return true;
}

bool PrototypeCollector::passes_dedup(const std::vector<const void*>& frames) {
  // Calling-context dedup needs the captured stack: store each distinct
  // context once (FNV-1a over the frame addresses).
  if (!opts_.dedup_by_context) return true;
  std::size_t hash = 0xcbf29ce484222325ULL;
  for (const void* ip : frames) {
    hash ^= reinterpret_cast<std::size_t>(ip);
    hash *= 0x100000001b3ULL;
  }
  std::scoped_lock lk(contexts_mu_);
  return seen_contexts_.insert(hash).second;
}

void PrototypeCollector::on_event(OMP_COLLECTORAPI_EVENT event) {
  callback_count_.fetch_add(1, std::memory_order_relaxed);
  if (!opts_.measure || store_ == nullptr) return;  // communication-only arm

  perf::EventSample sample;
  sample.ticks = counter_.read();
  sample.event = static_cast<std::int32_t>(event);
  sample.tid = __ompc_get_global_thread_num();

  if (event == OMP_EVENT_FORK) {
    // Remembered for the small-region filter (fork/join both fire on the
    // master, so a relaxed store pairs correctly with the next join).
    last_fork_ticks_.store(sample.ticks, std::memory_order_relaxed);
  } else if (event == OMP_EVENT_JOIN) {
    // Region ids are retrieved "at the join event" (paper Sec. IV); the
    // master's team is still current when JOIN fires.
    if (opts_.query_region_ids) {
      const collector::Expected<unsigned long> id = client_->current_prid();
      if (id) sample.region_id = *id;
    }
    if (opts_.record_callstacks) {
      // Implementation-model callstack for the offline user-model pass
      // (paper Sec. V: "records the current implementation-model callstack
      // for each join event"). Selective collection (Sec. VI): the cheap
      // filters veto the capture itself; dedup vetoes the storage.
      if (!passes_cheap_filters(sample.ticks)) {
        filtered_count_.fetch_add(1, std::memory_order_relaxed);
      } else {
        perf::CallstackRecord record;
        record.ticks = sample.ticks;
        record.region_id = sample.region_id;
        if (opts_.use_region_fn_extension) {
          record.region_fn = __ompc_get_current_region_fn();
        }
        record.frames = unwind::Callstack::capture(/*skip=*/2).to_vector();
        if (passes_dedup(record.frames)) {
          store_->record_callstack(sample.tid, std::move(record));
        } else {
          filtered_count_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  store_->buffer(sample.tid).record(sample);
}

perf::TraceData PrototypeCollector::trace_data() const {
  perf::TraceData data;
  if (store_ != nullptr) {
    data.samples = store_->merged_samples();
    data.callstacks = store_->merged_callstacks();
  }
  return data;
}

void PrototypeCollector::reset() {
  if (store_ != nullptr) store_->clear();
  callback_count_.store(0, std::memory_order_relaxed);
  filtered_count_.store(0, std::memory_order_relaxed);
  join_count_.store(0, std::memory_order_relaxed);
  last_fork_ticks_.store(0, std::memory_order_relaxed);
  std::scoped_lock lk(contexts_mu_);
  seen_contexts_.clear();
}

Report PrototypeCollector::finalize() const {
  Report report;
  report.callback_invocations =
      callback_count_.load(std::memory_order_relaxed);
  if (store_ == nullptr) return report;

  const std::vector<perf::EventSample> samples = store_->merged_samples();
  report.total_events = samples.size();
  report.dropped_samples = store_->total_dropped();

  for (const perf::EventSample& s : samples) {
    ++report.event_counts[s.event];
  }

  // Pair fork/join on the master thread (both events fire only there) to
  // produce per-region intervals. Joins carry the region id.
  std::unordered_map<unsigned long, RegionStats> regions;
  std::uint64_t open_fork_ticks = 0;
  bool fork_open = false;
  for (const perf::EventSample& s : samples) {
    if (s.tid != 0) continue;
    if (s.event == OMP_EVENT_FORK) {
      open_fork_ticks = s.ticks;
      fork_open = true;
    } else if (s.event == OMP_EVENT_JOIN && fork_open) {
      fork_open = false;
      const double seconds = counter_.to_seconds(s.ticks - open_fork_ticks);
      RegionStats& r = regions[s.region_id];
      if (r.invocations == 0) {
        r.region_id = s.region_id;
        r.min_seconds = seconds;
        r.max_seconds = seconds;
      }
      ++r.invocations;
      r.total_seconds += seconds;
      r.min_seconds = std::min(r.min_seconds, seconds);
      r.max_seconds = std::max(r.max_seconds, seconds);
    }
  }
  report.regions.reserve(regions.size());
  for (const auto& [id, stats] : regions) report.regions.push_back(stats);
  std::sort(report.regions.begin(), report.regions.end(),
            [](const RegionStats& a, const RegionStats& b) {
              return a.region_id < b.region_id;
            });

  // Interval metrics: pair each thread's begin/end events and aggregate
  // time-in-construct (the "OpenMP specific performance metrics" of
  // Sec. VI — implicit/explicit barrier time, lock wait time, ...).
  std::map<std::pair<int, int>, std::uint64_t> open_begin;  // (tid,ev)->tick
  std::map<std::pair<int, int>, IntervalStats> interval_acc;
  for (const perf::EventSample& s : samples) {
    const auto event = static_cast<OMP_COLLECTORAPI_EVENT>(s.event);
    if (event == OMP_EVENT_FORK || event == OMP_EVENT_JOIN) continue;
    if (collector::is_begin_event(event)) {
      open_begin[{s.tid, s.event}] = s.ticks;
      continue;
    }
    // Find the begin kind this end closes.
    for (int b = 1; b < ORCA_EVENT_EXT_LAST; ++b) {
      const auto begin = static_cast<OMP_COLLECTORAPI_EVENT>(b);
      if (collector::matching_end(begin) != event) continue;
      const auto it = open_begin.find({s.tid, b});
      if (it == open_begin.end()) break;  // unpaired end (attached mid-run)
      IntervalStats& acc = interval_acc[{b, s.tid}];
      acc.begin_event = b;
      acc.tid = s.tid;
      ++acc.intervals;
      acc.total_seconds += counter_.to_seconds(s.ticks - it->second);
      open_begin.erase(it);
      break;
    }
  }
  report.intervals.reserve(interval_acc.size());
  for (const auto& [key, acc] : interval_acc) report.intervals.push_back(acc);

  // User-model callstack profile: reconstruct each join-time stack and
  // aggregate identical user views (the PerfSuite-extension workflow of
  // Sec. IV-F).
  std::map<std::string, std::uint64_t> profile;
  for (const perf::CallstackRecord& rec : store_->merged_callstacks()) {
    const unwind::UserCallstack user =
        unwind::reconstruct(rec.frames, rec.region_fn);
    ++profile[user.render()];
  }
  report.callstack_profile.reserve(profile.size());
  for (const auto& [rendered, count] : profile) {
    report.callstack_profile.push_back({rendered, count});
  }
  std::sort(report.callstack_profile.begin(), report.callstack_profile.end(),
            [](const CallstackProfileEntry& a, const CallstackProfileEntry& b) {
              return a.samples > b.samples;
            });
  return report;
}

std::string Report::render() const {
  std::string out;
  out += strfmt("events observed : %llu (dropped %llu)\n",
                static_cast<unsigned long long>(total_events),
                static_cast<unsigned long long>(dropped_samples));
  out += strfmt("callback calls  : %llu\n",
                static_cast<unsigned long long>(callback_invocations));

  TextTable events({"event", "count"});
  for (const auto& [event, count] : event_counts) {
    events.add_row({std::string(collector::to_string(
                        static_cast<OMP_COLLECTORAPI_EVENT>(event))),
                    strfmt("%llu", static_cast<unsigned long long>(count))});
  }
  out += "\nevent counts:\n" + events.render();

  // Region ids are per dynamic instance (paper IV-E: updated "each time a
  // team of threads executes a parallel region"), so long runs produce one
  // row per invocation; show the most expensive ones.
  constexpr std::size_t kMaxRegionRows = 25;
  std::vector<RegionStats> by_cost = regions;
  std::sort(by_cost.begin(), by_cost.end(),
            [](const RegionStats& a, const RegionStats& b) {
              return a.total_seconds > b.total_seconds;
            });
  if (by_cost.size() > kMaxRegionRows) by_cost.resize(kMaxRegionRows);
  TextTable regions_table(
      {"region id", "invocations", "total s", "min s", "max s"});
  for (const RegionStats& r : by_cost) {
    regions_table.add_row({strfmt("%lu", r.region_id),
                           strfmt("%llu", static_cast<unsigned long long>(
                                              r.invocations)),
                           strfmt("%.6f", r.total_seconds),
                           strfmt("%.6f", r.min_seconds),
                           strfmt("%.6f", r.max_seconds)});
  }
  out += strfmt("\nparallel regions (master fork->join), %zu of %zu shown:\n",
                by_cost.size(), regions.size()) +
         regions_table.render();

  if (!intervals.empty()) {
    TextTable interval_table({"construct", "tid", "intervals", "total s"});
    for (const IntervalStats& iv : intervals) {
      interval_table.add_row(
          {std::string(collector::to_string(
               static_cast<OMP_COLLECTORAPI_EVENT>(iv.begin_event))),
           strfmt("%d", iv.tid),
           strfmt("%llu", static_cast<unsigned long long>(iv.intervals)),
           strfmt("%.6f", iv.total_seconds)});
    }
    out += "\ntime in constructs (per thread):\n" + interval_table.render();
  }

  if (!callstack_profile.empty()) {
    out += "\nuser-model callstack profile (by join samples):\n";
    for (const CallstackProfileEntry& entry : callstack_profile) {
      out += strfmt("%llu samples at:\n%s",
                    static_cast<unsigned long long>(entry.samples),
                    entry.rendered.c_str());
    }
  }
  return out;
}

}  // namespace orca::tool
