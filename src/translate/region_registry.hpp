/// \file region_registry.hpp
/// Source mapping for outlined parallel regions.
///
/// A real compiler emits debug info that lets BFD map an outlined
/// procedure's address back to the pragma's file/line (paper Sec. IV-F).
/// ORCA's "compiler" is the translate layer, so it records that mapping
/// directly at the instant it outlines a region: outlined-entry address ->
/// {file, line, function}. The collector tool uses this registry (together
/// with unwind/symbolize) to reconstruct the *user model* callstack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace orca::translate {

/// Source coordinates of one parallel construct.
struct RegionSource {
  std::string function;  ///< enclosing user function ("main")
  std::string file;      ///< source file of the pragma
  unsigned line = 0;     ///< line of the pragma
  std::string label;     ///< construct kind ("parallel", "parallel for", ...)
};

/// Process-wide map from outlined-procedure address to its source info.
/// Thread-safe; registration is idempotent per address.
class RegionRegistry {
 public:
  static RegionRegistry& instance();

  /// Record `src` for outlined entry `fn` (first registration wins).
  void add(const void* fn, RegionSource src);

  /// Look up the source info for outlined entry `fn`.
  std::optional<RegionSource> find(const void* fn) const;

  /// All registered regions, for report generation (Table I's static
  /// region inventory).
  std::vector<std::pair<const void*, RegionSource>> snapshot() const;

  std::size_t size() const;

  /// Drop all registrations (test isolation).
  void clear();

 private:
  RegionRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace orca::translate
