#include "translate/region_registry.hpp"

#include <mutex>
#include <unordered_map>

#include "common/spinlock.hpp"

namespace orca::translate {

struct RegionRegistry::Impl {
  mutable SpinLock mu;
  std::unordered_map<const void*, RegionSource> map;
};

RegionRegistry& RegionRegistry::instance() {
  static RegionRegistry reg;
  return reg;
}

RegionRegistry::Impl& RegionRegistry::impl() const {
  static Impl storage;
  return storage;
}

void RegionRegistry::add(const void* fn, RegionSource src) {
  Impl& s = impl();
  std::scoped_lock lk(s.mu);
  s.map.try_emplace(fn, std::move(src));
}

std::optional<RegionSource> RegionRegistry::find(const void* fn) const {
  const Impl& s = impl();
  std::scoped_lock lk(s.mu);
  const auto it = s.map.find(fn);
  if (it == s.map.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<const void*, RegionSource>> RegionRegistry::snapshot()
    const {
  const Impl& s = impl();
  std::scoped_lock lk(s.mu);
  std::vector<std::pair<const void*, RegionSource>> out;
  out.reserve(s.map.size());
  for (const auto& [fn, src] : s.map) out.emplace_back(fn, src);
  return out;
}

std::size_t RegionRegistry::size() const {
  const Impl& s = impl();
  std::scoped_lock lk(s.mu);
  return s.map.size();
}

void RegionRegistry::clear() {
  Impl& s = impl();
  std::scoped_lock lk(s.mu);
  s.map.clear();
}

}  // namespace orca::translate
