/// \file omp.hpp
/// The "compiler translation" layer — ORCA's stand-in for the OpenUH
/// OpenMP lowering.
///
/// The paper's Fig. 1→Fig. 2 transformation (outline the region body, pass
/// it to `__ompc_fork`, plant `__ompc_static_init_4` / `__ompc_reduction` /
/// `__ompc_ibarrier` calls) is reproduced here with templates: each
/// `orca::omp::parallel(...)` instantiation materializes a unique outlined
/// trampoline — the `__ompdo_*` procedure — and emits exactly the runtime
/// call sequence the OpenUH compiler emits. Because ORA lives entirely in
/// the runtime, the collector observes the same states and events it would
/// under the real compiler.
///
/// Directive mapping:
///   #pragma omp parallel            -> omp::parallel([](){...})
///   #pragma omp parallel for        -> omp::parallel_for(lo, hi, body)
///   #pragma omp for                 -> omp::for_static / for_dynamic / ...
///   #pragma omp parallel for reduction(+:x)
///                                   -> omp::parallel_reduce(...)
///   #pragma omp barrier             -> omp::barrier()
///   #pragma omp critical [(name)]   -> omp::critical<Tag>(fn)
///   #pragma omp single              -> omp::single(fn)
///   #pragma omp master              -> omp::master(fn)
///   #pragma omp ordered             -> omp::ordered(iter, fn)
///   #pragma omp atomic              -> omp::atomic_update(fn)
#pragma once

#include <functional>
#include <source_location>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/ompc_api.h"
#include "translate/region_registry.hpp"

namespace orca::omp {

/// Loop schedule selector for the `for_*` templates.
enum class Sched {
  kStatic = ORCA_SCHED_STATIC_EVEN,
  kStaticChunked = ORCA_SCHED_STATIC_CHUNKED,
  kDynamic = ORCA_SCHED_DYNAMIC,
  kGuided = ORCA_SCHED_GUIDED,
  kRuntime = ORCA_SCHED_RUNTIME,
};

namespace detail {

/// Invoke the region body with or without the thread id, whichever the
/// lambda accepts (the outlined procedure always receives the gtid; user
/// bodies often ignore it).
template <typename Fn>
void invoke_body(Fn& fn, int gtid) {
  if constexpr (std::is_invocable_v<Fn&, int>) {
    fn(gtid);
  } else {
    fn();
  }
}

/// Register the outlined trampoline's source coordinates the first time
/// this instantiation runs (the compiler "knows" the pragma location; our
/// stand-in captures it via std::source_location).
inline void register_region(const void* fn, const char* label,
                            const std::source_location& loc) {
  translate::RegionRegistry::instance().add(
      fn, translate::RegionSource{loc.function_name(), loc.file_name(),
                                  loc.line(), label});
}

}  // namespace detail

/// `#pragma omp parallel`: outline `body` and fork a team. Blocks until the
/// join (the region's closing implicit barrier) completes.
template <typename Fn>
void parallel(Fn&& body, int num_threads = 0,
              const std::source_location loc = std::source_location::current()) {
  using Body = std::remove_reference_t<Fn>;
  // The outlined procedure (`__ompdo_*` in paper Fig. 2): unique per
  // lambda type, so its address identifies the source region.
  orca_microtask_t trampoline = [](int gtid, void* frame) {
    detail::invoke_body(*static_cast<Body*>(frame), gtid);
  };
  detail::register_region(reinterpret_cast<const void*>(trampoline),
                          "parallel", loc);
  __ompc_fork(num_threads, trampoline, const_cast<void*>(
                                           static_cast<const void*>(&body)));
}

/// `#pragma omp for schedule(static[,chunk])` body (call *inside* a
/// parallel region). `nowait` skips the closing implicit barrier.
template <typename Body>
void for_static(long long lower, long long upper, long long incr, Body&& body,
                long long chunk = 0, bool nowait = false) {
  const int gtid = __ompc_get_global_thread_num();
  long long lo = lower;
  long long up = upper;
  long long stride = 0;
  const int sched =
      chunk > 0 ? ORCA_SCHED_STATIC_CHUNKED : ORCA_SCHED_STATIC_EVEN;
  if (__ompc_static_init_8(gtid, sched, &lo, &up, &stride, incr, chunk) != 0) {
    if (chunk > 0) {
      // Block-cyclic: `lo` starts this thread's first chunk; `up` is the
      // loop's global last iteration; `stride` jumps between chunks.
      for (long long block = lo; (incr > 0 ? block <= up : block >= up);
           block += stride) {
        for (long long i = block, k = 0;
             k < chunk && (incr > 0 ? i <= up : i >= up); i += incr, ++k) {
          body(i);
        }
      }
    } else {
      for (long long i = lo; (incr > 0 ? i <= up : i >= up); i += incr) {
        body(i);
      }
    }
  }
  if (!nowait) __ompc_ibarrier();
}

/// `#pragma omp for schedule(dynamic|guided|runtime[,chunk])`.
template <typename Body>
void for_dynamic(long long lower, long long upper, long long incr, Body&& body,
                 Sched sched = Sched::kDynamic, long long chunk = 1,
                 bool nowait = false) {
  const int gtid = __ompc_get_global_thread_num();
  __ompc_scheduler_init_8(gtid, static_cast<int>(sched), lower, upper, incr,
                          chunk);
  long long lo = 0;
  long long up = 0;
  while (__ompc_schedule_next_8(gtid, &lo, &up) != 0) {
    for (long long i = lo; (incr > 0 ? i <= up : i >= up); i += incr) {
      body(i);
    }
  }
  if (!nowait) __ompc_ibarrier();
}

/// `#pragma omp parallel for` (static schedule).
template <typename Body>
void parallel_for(long long lower, long long upper, Body&& body,
                  int num_threads = 0, long long chunk = 0,
                  const std::source_location loc =
                      std::source_location::current()) {
  parallel(
      [&](int) { for_static(lower, upper, 1, body, chunk); }, num_threads,
      loc);
}

/// `#pragma omp parallel for schedule(dynamic|guided|runtime)`.
template <typename Body>
void parallel_for_sched(long long lower, long long upper, Sched sched,
                        long long chunk, Body&& body, int num_threads = 0,
                        const std::source_location loc =
                            std::source_location::current()) {
  parallel([&](int) { for_dynamic(lower, upper, 1, body, sched, chunk); },
           num_threads, loc);
}

/// `#pragma omp parallel for reduction(op:acc)` — the paper's Fig. 1/2
/// example. Each thread accumulates a private copy over its static block,
/// then merges under the `__ompc_reduction` bracket (THR_REDUC_STATE),
/// and the region closes with the implicit barrier, exactly as the
/// compiler-translated listing shows.
template <typename T, typename BinaryOp, typename Body>
T parallel_reduce(long long lower, long long upper, T identity, BinaryOp op,
                  Body&& body, int num_threads = 0,
                  const std::source_location loc =
                      std::source_location::current()) {
  T result = identity;
  parallel(
      [&](int gtid) {
        T local = identity;
        for_static(
            lower, upper, 1, [&](long long i) { local = op(local, body(i)); },
            /*chunk=*/0, /*nowait=*/true);
        static void* reduction_lock = nullptr;
        __ompc_reduction(gtid, &reduction_lock);
        result = op(result, local);
        __ompc_end_reduction(gtid, &reduction_lock);
        __ompc_ibarrier();
      },
      num_threads, loc);
  return result;
}

/// `#pragma omp barrier`.
inline void barrier() { __ompc_barrier(); }

/// Default tag for unnamed critical sections.
struct DefaultCriticalTag {};

namespace detail {

/// The compiler-generated lock static for one critical *name*: keyed by
/// the tag type alone, so every call site naming the same critical shares
/// one lock word (just as the OpenUH compiler emits one static per name).
template <typename Tag>
void** critical_lock_word() noexcept {
  static void* word = nullptr;
  return &word;
}

}  // namespace detail

/// `#pragma omp critical (Tag)`.
template <typename Tag = DefaultCriticalTag, typename Fn>
void critical(Fn&& fn) {
  void** lock_word = detail::critical_lock_word<Tag>();
  const int gtid = __ompc_get_global_thread_num();
  __ompc_critical(gtid, lock_word);
  fn();
  __ompc_end_critical(gtid, lock_word);
}

/// `#pragma omp single` (+ implicit barrier unless `nowait`).
template <typename Fn>
void single(Fn&& fn, bool nowait = false) {
  const int gtid = __ompc_get_global_thread_num();
  const int executed = __ompc_single(gtid);
  if (executed != 0) fn();
  __ompc_end_single(gtid, executed);
  if (!nowait) __ompc_ibarrier();
}

/// `#pragma omp master` (no implied barrier).
template <typename Fn>
void master(Fn&& fn) {
  const int gtid = __ompc_get_global_thread_num();
  if (__ompc_master(gtid) != 0) {
    fn();
    __ompc_end_master(gtid);
  }
}

/// `#pragma omp ordered` for logical iteration `iteration` of the
/// enclosing ordered loop.
template <typename Fn>
void ordered(long long iteration, Fn&& fn) {
  const int gtid = __ompc_get_global_thread_num();
  __ompc_ordered(gtid, iteration);
  fn();
  __ompc_end_ordered(gtid);
}

/// `#pragma omp atomic` via the runtime fallback bracket (observable by
/// the collector when atomic events are enabled).
template <typename Fn>
void atomic_update(Fn&& fn) {
  const int gtid = __ompc_get_global_thread_num();
  __ompc_atomic(gtid);
  fn();
  __ompc_end_atomic(gtid);
}

/// `#pragma omp task` (OpenMP 3.0 / ORCA extension). The body is copied
/// into a heap "task frame" — exactly how the compiler packages a task's
/// firstprivate environment — and runs at some scheduling point on some
/// team thread. `taskwait()` or any barrier guarantees completion.
template <typename Fn>
void task(Fn&& body) {
  using Body = std::remove_reference_t<Fn>;
  auto* frame = new Body(std::forward<Fn>(body));
  __ompc_task(
      __ompc_get_global_thread_num(),
      [](void* raw) {
        auto* task_frame = static_cast<Body*>(raw);
        (*task_frame)();
        delete task_frame;
      },
      frame);
}

/// `#pragma omp taskwait`.
inline void taskwait() { __ompc_taskwait(__ompc_get_global_thread_num()); }

/// `#pragma omp sections` (+ implicit barrier unless `nowait`): each
/// section runs exactly once on some team thread. Lowered the way OpenUH
/// lowers sections — as a dynamically scheduled loop over the section
/// indices with chunk 1.
inline void sections(const std::vector<std::function<void()>>& blocks,
                     bool nowait = false) {
  if (blocks.empty()) return;
  for_dynamic(
      0, static_cast<long long>(blocks.size()) - 1, 1,
      [&](long long i) { blocks[static_cast<std::size_t>(i)](); },
      Sched::kDynamic, 1, nowait);
}

}  // namespace orca::omp
