#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/strutil.hpp"

namespace orca::telemetry {
namespace {

/// Escape a string for a JSON string literal (control chars, quote, slash).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char ch : in) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += strfmt("\\u%04x", ch);
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

/// Microsecond timestamp for trace_event, relative to `base` ns.
double to_us(std::uint64_t ns, std::uint64_t base) {
  return static_cast<double>(ns - base) / 1000.0;
}

struct TraceWriter {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;

  void add(const std::string& event_json) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n";
    out += event_json;
  }

  std::string finish() {
    out += "\n]}\n";
    return std::move(out);
  }
};

void add_metadata(TraceWriter& w, int tid, const std::string& thread_name) {
  w.add(strfmt("{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
               "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
               tid, json_escape(thread_name).c_str()));
}

void add_complete(TraceWriter& w, int tid, const std::string& name,
                  const char* cat, std::uint64_t begin_ns,
                  std::uint64_t end_ns, std::uint64_t base) {
  const std::uint64_t dur = end_ns > begin_ns ? end_ns - begin_ns : 0;
  w.add(strfmt("{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
               "\"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
               tid, json_escape(name).c_str(), cat, to_us(begin_ns, base),
               static_cast<double>(dur) / 1000.0));
}

void add_instant(TraceWriter& w, int tid, const std::string& name,
                 const char* cat, std::uint64_t ns, std::uint64_t base) {
  w.add(strfmt("{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
               "\"cat\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
               tid, json_escape(name).c_str(), cat, to_us(ns, base)));
}

/// A span kind in flight (open B waiting for its E).
struct OpenSpan {
  std::uint64_t begin_ns = 0;
  std::uint32_t arg = 0;
};

bool plausible_record(const TimelineRecord& rec) {
  // Torn or zeroed cells decode to out-of-range kinds/phases; drop them.
  return static_cast<std::uint16_t>(rec.kind) <=
             static_cast<std::uint16_t>(SpanKind::kParallelRegion) &&
         static_cast<std::uint8_t>(rec.phase) <= 2 && rec.ns != 0;
}

}  // namespace

std::string render_chrome_trace(const std::vector<ExternalEvent>& extra) {
  const std::vector<ThreadTimeline> threads = timelines();

  // Base timestamp: the earliest nanosecond anywhere, so the trace starts
  // near t=0 and double microseconds keep full precision.
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const ThreadTimeline& t : threads) {
    for (const TimelineRecord& rec : t.records) {
      if (plausible_record(rec)) base = std::min(base, rec.ns);
    }
  }
  for (const ExternalEvent& e : extra) {
    if (e.ns != 0) base = std::min(base, e.ns);
  }
  if (base == std::numeric_limits<std::uint64_t>::max()) base = 0;

  TraceWriter w;
  w.add("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"orca-runtime\"}}");

  constexpr int kExternalTid = 999;
  bool external_track = false;
  for (const ExternalEvent& e : extra) {
    if (e.tid < 0) external_track = true;
  }
  if (external_track) add_metadata(w, kExternalTid, "external");

  for (const ThreadTimeline& t : threads) {
    add_metadata(w, t.tid, t.name.empty() ? strfmt("thread-%d", t.tid)
                                          : t.name);

    std::uint64_t last_ns = 0;
    for (const TimelineRecord& rec : t.records) {
      if (plausible_record(rec)) last_ns = std::max(last_ns, rec.ns);
    }

    // Pass 1: state instants become wall-to-wall X spans: each state runs
    // until the next state record on the same thread (the final state is
    // closed at the thread's last timestamp).
    const TimelineRecord* prev_state = nullptr;
    for (const TimelineRecord& rec : t.records) {
      if (!plausible_record(rec) || rec.kind != SpanKind::kState) continue;
      if (prev_state != nullptr) {
        add_complete(w, t.tid, state_name(static_cast<int>(prev_state->arg)),
                     "thread-state", prev_state->ns, rec.ns, base);
      }
      prev_state = &rec;
    }
    if (prev_state != nullptr) {
      add_complete(w, t.tid, state_name(static_cast<int>(prev_state->arg)),
                   "thread-state", prev_state->ns,
                   std::max(last_ns, prev_state->ns), base);
    }

    // Pass 2: explicit B/E pairs become X spans; a lone E (its B was
    // overwritten) is dropped, a lone B (span still open, or its E lost to
    // wraparound) becomes an instant marker.
    OpenSpan open[6];
    bool is_open[6] = {};
    for (const TimelineRecord& rec : t.records) {
      if (!plausible_record(rec) || rec.kind == SpanKind::kState) continue;
      const auto k = static_cast<std::size_t>(rec.kind);
      if (rec.phase == Phase::kBegin) {
        if (is_open[k]) {
          add_instant(w, t.tid, span_name(rec.kind), "runtime-internal",
                      open[k].begin_ns, base);
        }
        open[k] = OpenSpan{rec.ns, rec.arg};
        is_open[k] = true;
      } else if (rec.phase == Phase::kEnd) {
        if (!is_open[k]) continue;
        add_complete(w, t.tid, span_name(rec.kind), "runtime-internal",
                     open[k].begin_ns, rec.ns, base);
        is_open[k] = false;
      } else {
        add_instant(w, t.tid, span_name(rec.kind), "runtime-internal",
                    rec.ns, base);
      }
    }
    for (std::size_t k = 0; k < 6; ++k) {
      if (is_open[k]) {
        add_instant(w, t.tid, span_name(static_cast<SpanKind>(k)),
                    "runtime-internal", open[k].begin_ns, base);
      }
    }
  }

  for (const ExternalEvent& e : extra) {
    const int tid = e.tid < 0 ? kExternalTid : e.tid;
    const char* cat = e.category.empty() ? "external" : e.category.c_str();
    if (e.dur_ns > 0) {
      add_complete(w, tid, e.name, cat, e.ns, e.ns + e.dur_ns, base);
    } else {
      add_instant(w, tid, e.name, cat, e.ns, base);
    }
  }

  return w.finish();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<ExternalEvent>& extra) {
  const std::string json = render_chrome_trace(extra);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

std::string render_text_report() {
  const MetricsView view = metrics();
  std::string out = "== ORCA telemetry report ==\n";
  out += strfmt("armed: timeline=%d metrics=%d  threads tracked: %llu  "
                "timeline records held: %llu\n\n",
                (view.armed & kTimelineBit) != 0 ? 1 : 0,
                (view.armed & kMetricsBit) != 0 ? 1 : 0,
                static_cast<unsigned long long>(view.threads_tracked),
                static_cast<unsigned long long>(view.timeline_records));

  TextTable counters({"counter", "value"});
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters.add_row({counter_name(static_cast<Counter>(i)),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         view.counters[i]))});
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    counters.add_row({gauge_name(static_cast<Gauge>(i)),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         view.gauges[i]))});
  }
  out += counters.render();

  TextTable hists({"histogram", "count", "mean ns", "p50 ns", "p99 ns",
                   "max ns"});
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const HistogramView& h = view.histograms[i];
    const double mean =
        h.count > 0 ? static_cast<double>(h.sum_ns) /
                          static_cast<double>(h.count)
                    : 0.0;
    hists.add_row({histogram_name(static_cast<Histogram>(i)),
                   strfmt("%llu", static_cast<unsigned long long>(h.count)),
                   strfmt("%.0f", mean), strfmt("%.0f", h.quantile(0.5)),
                   strfmt("%.0f", h.quantile(0.99)),
                   strfmt("%llu", static_cast<unsigned long long>(h.max_ns))});
  }
  out += "\n";
  out += hists.render();

  const std::vector<ThreadTimeline> threads = timelines();
  if (!threads.empty()) {
    TextTable tl({"tid", "thread", "records", "overwritten"});
    for (const ThreadTimeline& t : threads) {
      tl.add_row({strfmt("%d", t.tid), t.name,
                  strfmt("%zu", t.records.size()),
                  strfmt("%llu",
                         static_cast<unsigned long long>(t.overwritten))});
    }
    out += "\n";
    out += tl.render();
  }
  return out;
}

void shutdown_report(const std::string& destination) {
  if (destination.empty()) return;
  const std::string report = render_text_report();
  if (destination == "stderr") {
    std::fputs(report.c_str(), stderr);
    return;
  }
  std::FILE* f = std::fopen(destination.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "ORCA: cannot open ORCA_TELEMETRY_REPORT path \"%s\"; "
                 "writing report to stderr instead\n",
                 destination.c_str());
    std::fputs(report.c_str(), stderr);
    return;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fclose(f);
}

}  // namespace orca::telemetry
