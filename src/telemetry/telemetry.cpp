#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <deque>
#include <mutex>

#include "collector/api.h"
#include "common/cacheline.hpp"
#include "common/clock.hpp"
#include "common/strutil.hpp"

namespace orca::telemetry {

namespace detail {
// Constant-initialized: the disarmed hook load needs no guard.
std::atomic<std::uint64_t> g_armed{0};
}  // namespace detail

namespace {

std::atomic<std::size_t> g_ring_capacity{4096};

constexpr std::uint64_t encode_meta(std::uint32_t arg, SpanKind kind,
                                    Phase phase) noexcept {
  return static_cast<std::uint64_t>(arg) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(kind)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(phase)) << 48);
}

/// One timeline ring cell. Fields are relaxed atomics so concurrent
/// best-effort readers are data-race-free; a record overwritten mid-read
/// may decode torn (two halves from different records), which the exporter
/// tolerates. Single writer, so no per-cell sequence is needed for the
/// quiescent (exact) read path.
struct Cell {
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> meta{0};
};

/// Per-thread telemetry slot: the timeline ring plus one metrics shard.
/// Cacheline-aligned so neighbouring slots' hot counters never share a line.
/// Slots are created on first armed use, parked on a free list when their
/// thread exits (data retained for export), and reused — reset — by the
/// next new thread, so runtime churn does not grow memory without bound.
struct alignas(kCacheLineSize) ThreadSlot {
  explicit ThreadSlot(int tid_, std::size_t ring_records)
      : tid(tid_), mask(ring_records - 1), cells(ring_records) {}

  // -- timeline (single writer: the owning thread) --
  void push(std::uint64_t ns, SpanKind kind, Phase phase,
            std::uint32_t arg) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Cell& c = cells[static_cast<std::size_t>(h) & mask];
    c.ns.store(ns, std::memory_order_relaxed);
    c.meta.store(encode_meta(arg, kind, phase), std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  std::uint64_t overwritten() const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h > cells.size() ? h - cells.size() : 0;
  }

  // -- metrics shard (relaxed atomics; aggregated on read) --
  void add(Counter c, std::uint64_t delta) noexcept {
    counters[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }
  void maximize(Gauge g, std::uint64_t v) noexcept {
    std::atomic<std::uint64_t>& a = gauges[static_cast<std::size_t>(g)];
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void observe(Histogram h, std::uint64_t ns) noexcept {
    const auto i = static_cast<std::size_t>(h);
    const auto bucket = static_cast<std::size_t>(
        std::min<unsigned>(std::bit_width(ns), kHistogramBuckets - 1));
    hist_buckets[i][bucket].fetch_add(1, std::memory_order_relaxed);
    hist_sum[i].fetch_add(ns, std::memory_order_relaxed);
    hist_count[i].fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>& mx = hist_max[i];
    std::uint64_t cur = mx.load(std::memory_order_relaxed);
    while (cur < ns &&
           !mx.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  int tid;
  std::string name;            ///< guarded by Global::mu
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  std::vector<Cell> cells;

  std::atomic<std::uint64_t> counters[kCounterCount] = {};
  std::atomic<std::uint64_t> gauges[kGaugeCount] = {};
  std::atomic<std::uint64_t> hist_buckets[kHistogramCount][kHistogramBuckets] =
      {};
  std::atomic<std::uint64_t> hist_sum[kHistogramCount] = {};
  std::atomic<std::uint64_t> hist_count[kHistogramCount] = {};
  std::atomic<std::uint64_t> hist_max[kHistogramCount] = {};
};

constexpr std::size_t kMaxSlots = 1024;

struct Global {
  std::mutex mu;
  std::deque<ThreadSlot*> slots;               ///< every slot ever created
  std::vector<ThreadSlot*> free_list;          ///< parked, reusable
  std::uint64_t threads_tracked = 0;
  int arm_counts[2] = {0, 0};  ///< refcounts for kTimelineBit, kMetricsBit
  /// Metrics folded out of slots that were reset for reuse.
  std::uint64_t retired_counters[kCounterCount] = {};
  std::uint64_t retired_gauges[kGaugeCount] = {};
  std::uint64_t retired_hist_buckets[kHistogramCount][kHistogramBuckets] = {};
  std::uint64_t retired_hist_sum[kHistogramCount] = {};
  std::uint64_t retired_hist_count[kHistogramCount] = {};
  std::uint64_t retired_hist_max[kHistogramCount] = {};
  std::uint64_t retired_overwrites = 0;
};

/// Leaked on purpose: thread_local slot leases run during thread (and
/// process) teardown, after namespace-scope destructors would have fired.
Global& global() {
  static Global* g = new Global;
  return *g;
}

/// Fold a slot's shard into the retired accumulators and zero it for the
/// next owner. Caller holds Global::mu; the previous owner is gone and the
/// next one has not started, so plain stores are race-free in practice
/// (kept atomic for TSan's benefit).
void reset_slot_locked(Global& g, ThreadSlot& slot) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    g.retired_counters[i] +=
        slot.counters[i].exchange(0, std::memory_order_relaxed);
  }
  g.retired_overwrites += slot.overwritten();
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    g.retired_gauges[i] = std::max(
        g.retired_gauges[i], slot.gauges[i].exchange(0,
                                                     std::memory_order_relaxed));
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      g.retired_hist_buckets[i][b] +=
          slot.hist_buckets[i][b].exchange(0, std::memory_order_relaxed);
    }
    g.retired_hist_sum[i] +=
        slot.hist_sum[i].exchange(0, std::memory_order_relaxed);
    g.retired_hist_count[i] +=
        slot.hist_count[i].exchange(0, std::memory_order_relaxed);
    g.retired_hist_max[i] = std::max(
        g.retired_hist_max[i],
        slot.hist_max[i].exchange(0, std::memory_order_relaxed));
  }
  slot.head.store(0, std::memory_order_release);
  slot.name.clear();
}

ThreadSlot* acquire_slot() {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  ++g.threads_tracked;
  if (!g.free_list.empty()) {
    ThreadSlot* slot = g.free_list.back();
    g.free_list.pop_back();
    reset_slot_locked(g, *slot);
    slot->name = strfmt("thread-%d", slot->tid);
    return slot;
  }
  if (g.slots.size() >= kMaxSlots) return nullptr;
  const int tid = static_cast<int>(g.slots.size());
  const std::size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
  auto* slot = new ThreadSlot(tid, cap);
  slot->name = strfmt("thread-%d", tid);
  g.slots.emplace_back(slot);
  return slot;
}

void release_slot(ThreadSlot* slot) {
  if (slot == nullptr) return;
  Global& g = global();
  std::scoped_lock lk(g.mu);
  // Data stays readable for export; the slot is reset only on reuse.
  g.free_list.push_back(slot);
}

/// RAII lease: parks the slot when the owning thread exits.
struct SlotLease {
  ThreadSlot* slot = nullptr;
  bool exhausted = false;  ///< hit kMaxSlots; stop retrying
  ~SlotLease() { release_slot(slot); }
};

thread_local SlotLease t_lease;

ThreadSlot* slot() noexcept {
  if (t_lease.slot != nullptr) return t_lease.slot;
  if (t_lease.exhausted) return nullptr;
  t_lease.slot = acquire_slot();
  t_lease.exhausted = t_lease.slot == nullptr;
  return t_lease.slot;
}

}  // namespace

namespace detail {

void record_slow(SpanKind kind, Phase phase, std::uint32_t arg) noexcept {
  record_at_slow(SteadyClock::now(), kind, phase, arg);
}

void record_at_slow(std::uint64_t ns, SpanKind kind, Phase phase,
                    std::uint32_t arg) noexcept {
  ThreadSlot* s = slot();
  if (s != nullptr) s->push(ns, kind, phase, arg);
}

void count_slow(Counter c, std::uint64_t delta) noexcept {
  ThreadSlot* s = slot();
  if (s != nullptr) s->add(c, delta);
}

void gauge_max_slow(Gauge g, std::uint64_t value) noexcept {
  ThreadSlot* s = slot();
  if (s != nullptr) s->maximize(g, value);
}

void observe_slow(Histogram h, std::uint64_t ns) noexcept {
  ThreadSlot* s = slot();
  if (s != nullptr) s->observe(h, ns);
}

}  // namespace detail

void arm(std::uint64_t bits) {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  if ((bits & kTimelineBit) != 0) ++g.arm_counts[0];
  if ((bits & kMetricsBit) != 0) ++g.arm_counts[1];
  const std::uint64_t mask = (g.arm_counts[0] > 0 ? kTimelineBit : 0) |
                             (g.arm_counts[1] > 0 ? kMetricsBit : 0);
  detail::g_armed.store(mask, std::memory_order_relaxed);
}

void disarm(std::uint64_t bits) {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  if ((bits & kTimelineBit) != 0 && g.arm_counts[0] > 0) --g.arm_counts[0];
  if ((bits & kMetricsBit) != 0 && g.arm_counts[1] > 0) --g.arm_counts[1];
  const std::uint64_t mask = (g.arm_counts[0] > 0 ? kTimelineBit : 0) |
                             (g.arm_counts[1] > 0 ? kMetricsBit : 0);
  detail::g_armed.store(mask, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t records) {
  records = std::clamp<std::size_t>(records, 64, std::size_t{1} << 20);
  g_ring_capacity.store(std::bit_ceil(records), std::memory_order_relaxed);
}

std::size_t ring_capacity() noexcept {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

const char* span_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kState: return "state";
    case SpanKind::kRingEnqueueStall: return "ring-enqueue-stall";
    case SpanKind::kDrainPass: return "drain-pass";
    case SpanKind::kGenerationPublish: return "generation-publish";
    case SpanKind::kGenerationRetire: return "generation-retire";
    case SpanKind::kParallelRegion: return "parallel-region";
  }
  return "?";
}

std::string state_name(int state) {
  switch (state) {
    case THR_OVHD_STATE: return "overhead";
    case THR_WORK_STATE: return "work";
    case THR_IBAR_STATE: return "ibar-wait";
    case THR_EBAR_STATE: return "ebar-wait";
    case THR_IDLE_STATE: return "idle";
    case THR_SERIAL_STATE: return "serial";
    case THR_REDUC_STATE: return "reduction";
    case THR_LKWT_STATE: return "lock-wait";
    case THR_CTWT_STATE: return "critical-wait";
    case THR_ODWT_STATE: return "ordered-wait";
    case THR_ATWT_STATE: return "atomic-wait";
    default: return strfmt("state-%d", state);
  }
}

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kForks: return "forks";
    case Counter::kJoins: return "joins";
    case Counter::kBarrierWaits: return "barrier_waits";
    case Counter::kTasksSpawned: return "tasks_spawned";
    case Counter::kTasksExecuted: return "tasks_executed";
    case Counter::kCallbackFailures: return "callback_failures";
    case Counter::kRingEnqueueStalls: return "ring_enqueue_stalls";
    case Counter::kDrainPasses: return "drain_passes";
    case Counter::kGenerationsPublished: return "generations_published";
    case Counter::kGenerationsRetired: return "generations_retired";
    case Counter::kTimelineOverwrites: return "timeline_overwrites";
    case Counter::kPipelineDrops: return "pipeline_drops";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::kTaskQueueDepth: return "task_queue_depth_hwm";
    case Gauge::kRingOccupancy: return "ring_occupancy_hwm";
    case Gauge::kBarrierAlgorithm: return "barrier_algorithm";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) noexcept {
  switch (h) {
    case Histogram::kBarrierWaitNs: return "barrier_wait_ns";
    case Histogram::kEnqueueStallNs: return "enqueue_stall_ns";
    case Histogram::kDrainPassNs: return "drain_pass_ns";
    case Histogram::kRetireLatencyNs: return "retire_latency_ns";
    case Histogram::kCount: break;
  }
  return "?";
}

double HistogramView::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[b]);
    if (next >= target) {
      // Linear interpolation inside the bucket [2^(b-1), 2^b).
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi = static_cast<double>(1ull << b);
      const double frac =
          (target - cumulative) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
    cumulative = next;
  }
  return static_cast<double>(max_ns);
}

void name_thread(const std::string& name) {
  if (armed_mask() == 0) return;
  ThreadSlot* s = slot();
  if (s == nullptr) return;
  Global& g = global();
  std::scoped_lock lk(g.mu);
  s->name = name;
}

MetricsView metrics() {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  MetricsView view;
  view.armed = armed_mask();
  view.threads_tracked = g.threads_tracked;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    view.counters[i] = g.retired_counters[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    view.gauges[i] = g.retired_gauges[i];
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    HistogramView& h = view.histograms[i];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] = g.retired_hist_buckets[i][b];
    }
    h.sum_ns = g.retired_hist_sum[i];
    h.count = g.retired_hist_count[i];
    h.max_ns = g.retired_hist_max[i];
  }
  std::uint64_t overwrites = g.retired_overwrites;
  for (const ThreadSlot* sp : g.slots) {
    const ThreadSlot& s = *sp;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      view.counters[i] += s.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      view.gauges[i] = std::max(
          view.gauges[i], s.gauges[i].load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < kHistogramCount; ++i) {
      HistogramView& h = view.histograms[i];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += s.hist_buckets[i][b].load(std::memory_order_relaxed);
      }
      h.sum_ns += s.hist_sum[i].load(std::memory_order_relaxed);
      h.count += s.hist_count[i].load(std::memory_order_relaxed);
      h.max_ns = std::max(h.max_ns,
                          s.hist_max[i].load(std::memory_order_relaxed));
    }
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    view.timeline_records += std::min<std::uint64_t>(head, s.cells.size());
    overwrites += s.overwritten();
  }
  view.counters[static_cast<std::size_t>(Counter::kTimelineOverwrites)] +=
      overwrites;
  return view;
}

std::vector<ThreadTimeline> timelines() {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  std::vector<ThreadTimeline> out;
  out.reserve(g.slots.size());
  for (const ThreadSlot* sp : g.slots) {
    const ThreadSlot& s = *sp;
    ThreadTimeline t;
    t.tid = s.tid;
    t.name = s.name;
    t.overwritten = s.overwritten();
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, s.cells.size());
    t.records.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Cell& c = s.cells[static_cast<std::size_t>(i) & s.mask];
      TimelineRecord rec;
      rec.ns = c.ns.load(std::memory_order_relaxed);
      const std::uint64_t meta = c.meta.load(std::memory_order_relaxed);
      rec.arg = static_cast<std::uint32_t>(meta);
      rec.kind = static_cast<SpanKind>((meta >> 32) & 0xFFFF);
      rec.phase = static_cast<Phase>((meta >> 48) & 0xFF);
      t.records.push_back(rec);
    }
    if (!t.records.empty() || t.overwritten != 0) out.push_back(std::move(t));
  }
  return out;
}

void reset_for_testing() {
  Global& g = global();
  std::scoped_lock lk(g.mu);
  for (ThreadSlot* sp : g.slots) {
    reset_slot_locked(g, *sp);
    sp->name = strfmt("thread-%d", sp->tid);
  }
  for (std::uint64_t& c : g.retired_counters) c = 0;
  for (std::uint64_t& v : g.retired_gauges) v = 0;
  for (auto& buckets : g.retired_hist_buckets) {
    for (std::uint64_t& b : buckets) b = 0;
  }
  for (std::uint64_t& v : g.retired_hist_sum) v = 0;
  for (std::uint64_t& v : g.retired_hist_count) v = 0;
  for (std::uint64_t& v : g.retired_hist_max) v = 0;
  g.retired_overwrites = 0;
  g.threads_tracked = g.slots.size();
}

}  // namespace orca::telemetry
