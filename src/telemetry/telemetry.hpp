/// \file telemetry.hpp
/// Runtime self-telemetry: per-thread state timelines + a sharded metrics
/// registry for the runtime's *own* internals (barriers, rings, drainer,
/// callback-table generations) — the observability spine the profiled
/// application never sees.
///
/// Design constraints (mirroring the event fast path of DESIGN.md §5.1):
///
///  * **Disarmed cost is one relaxed load + branch.** Every hook below
///    compiles to `if ((g_armed & bit) == 0) return;` against a process-wide
///    atomic mask. No magic-static guard, no thread-local probe, no shared
///    RMW. A runtime built with telemetry compiled in but not armed pays
///    the same as one built without it (asserted by the E9 ablation).
///  * **Armed recording is wait-free on the hot thread.** Timeline records
///    go to a per-thread single-writer overwrite-oldest ring; metric
///    updates hit relaxed atomics on a cacheline-padded per-thread shard.
///    Aggregation (snapshot, export) walks the shards — readers pay, not
///    writers.
///  * **Layering:** this module depends only on `src/common` and the
///    C-only `collector/api.h` enums, so both `orca_collector` and
///    `orca_runtime` can hook into it without a dependency cycle.
///
/// Arming is process-global and reference-counted per bit: every
/// `rt::Runtime` whose config enables telemetry arms on construction and
/// disarms on destruction, so short-lived runtimes (tests, conformance
/// storms) compose.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace orca::telemetry {

// ---------------------------------------------------------------------------
// Arming.

/// Bit in the armed mask enabling timeline recording (state transitions +
/// internal spans into the per-thread rings).
inline constexpr std::uint64_t kTimelineBit = 1u << 0;
/// Bit enabling metric recording (counters / gauges / histograms).
inline constexpr std::uint64_t kMetricsBit = 1u << 1;

namespace detail {
/// The process-wide armed mask. Plain namespace-scope atomic (constant
/// initialization) so the disarmed fast path is a single relaxed load with
/// no guard variable.
extern std::atomic<std::uint64_t> g_armed;
}  // namespace detail

inline bool timeline_armed() noexcept {
  return (detail::g_armed.load(std::memory_order_relaxed) & kTimelineBit) != 0;
}

inline bool metrics_armed() noexcept {
  return (detail::g_armed.load(std::memory_order_relaxed) & kMetricsBit) != 0;
}

inline std::uint64_t armed_mask() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Reference-counted arming: each arm(bits) must be paired with one
/// disarm(bits). A bit stays set in the mask while any holder remains.
void arm(std::uint64_t bits);
void disarm(std::uint64_t bits);

/// Per-thread timeline ring capacity (records) used for rings created
/// *after* the call. Rounded up to a power of two, clamped to
/// [64, 1 << 20]. Existing rings keep their size.
void set_ring_capacity(std::size_t records);
std::size_t ring_capacity() noexcept;

// ---------------------------------------------------------------------------
// Timeline model.

/// What a timeline record describes. kState records are instants whose
/// `arg` is the OMP_COLLECTOR_API_THR_STATE value; the exporter turns the
/// per-thread instant sequence into wall-to-wall state spans. The rest are
/// explicit begin/end span pairs around runtime-internal work.
enum class SpanKind : std::uint16_t {
  kState = 0,              ///< arg = thread state (instant)
  kRingEnqueueStall = 1,   ///< event ring full under kBlock backpressure
  kDrainPass = 2,          ///< drainer batch; arg = records delivered
  kGenerationPublish = 3,  ///< callback-table generation publish; arg = id
  kGenerationRetire = 4,   ///< grace-period sweep; arg = generations freed
  kParallelRegion = 5,     ///< master-side fork..join; arg = region id
};

enum class Phase : std::uint8_t { kInstant = 0, kBegin = 1, kEnd = 2 };

/// One 16-byte timeline record.
struct TimelineRecord {
  std::uint64_t ns = 0;  ///< SteadyClock timestamp
  std::uint32_t arg = 0;
  SpanKind kind = SpanKind::kState;
  Phase phase = Phase::kInstant;
  std::uint8_t pad = 0;
};
static_assert(sizeof(TimelineRecord) == 16);

/// Short display name for a span kind ("state" records are named by their
/// state instead; see state_name()).
const char* span_name(SpanKind kind) noexcept;

/// Short display name for an OMP_COLLECTOR_API_THR_STATE value, styled for
/// trace viewers ("work", "ibar-wait", ...). Unknown values format as
/// "state-N".
std::string state_name(int state);

// ---------------------------------------------------------------------------
// Metric catalog. Fixed enums — adding a metric is a recompile, which keeps
// the hot-path update a plain array index.

enum class Counter : std::uint8_t {
  kForks = 0,              ///< parallel regions forked
  kJoins,                  ///< parallel regions joined
  kBarrierWaits,           ///< barrier episodes (implicit + explicit)
  kTasksSpawned,           ///< explicit tasks submitted (deferred)
  kTasksExecuted,          ///< deferred tasks run to completion
  kCallbackFailures,       ///< async callbacks that threw
  kRingEnqueueStalls,      ///< pushes that blocked on a full ring
  kDrainPasses,            ///< non-empty drainer batches
  kGenerationsPublished,   ///< callback-table generations published
  kGenerationsRetired,     ///< generations freed after their grace period
  kTimelineOverwrites,     ///< timeline records lost to ring wraparound
  kPipelineDrops,          ///< items shed by collector pipeline stages
  kCount
};

/// High-water-mark gauges (monotone max aggregated across shards).
enum class Gauge : std::uint8_t {
  kTaskQueueDepth = 0,  ///< deepest deferred-task queue observed
  kRingOccupancy,       ///< fullest event ring observed (records)
  kBarrierAlgorithm,    ///< 1 + BarrierKind of the last runtime armed
                        ///< (0 = never recorded; see ORCA_BARRIER)
  kCount
};

/// Log2-bucketed latency histograms (ns).
enum class Histogram : std::uint8_t {
  kBarrierWaitNs = 0,   ///< arrive..release, per thread per barrier
  kEnqueueStallNs,      ///< block time of a full-ring push
  kDrainPassNs,         ///< duration of a non-empty drain batch
  kRetireLatencyNs,     ///< generation retire..free grace-period latency
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);
inline constexpr std::size_t kHistogramBuckets = 40;  ///< 2^0 .. >2^38 ns

const char* counter_name(Counter c) noexcept;
const char* gauge_name(Gauge g) noexcept;
const char* histogram_name(Histogram h) noexcept;

/// Aggregated view of one histogram.
struct HistogramView {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};
  /// Bucket-interpolated quantile in ns (upper-bound estimate).
  double quantile(double q) const noexcept;
};

/// Aggregated metrics + timeline bookkeeping, summed over every shard that
/// ever existed (live threads and retired ones).
struct MetricsView {
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t gauges[kGaugeCount] = {};
  HistogramView histograms[kHistogramCount];
  std::uint64_t threads_tracked = 0;    ///< thread slots ever created
  std::uint64_t timeline_records = 0;   ///< records currently held in rings
  std::uint64_t armed = 0;              ///< armed mask at snapshot time
};

/// One thread's timeline, copied out for export.
struct ThreadTimeline {
  int tid = 0;                ///< slot index (stable per thread lifetime)
  std::string name;           ///< "worker-3", "main", ...
  std::uint64_t overwritten = 0;
  std::vector<TimelineRecord> records;  ///< oldest..newest
};

// ---------------------------------------------------------------------------
// Slow paths (telemetry.cpp). Never call these directly — use the inline
// gated hooks below.

namespace detail {
void record_slow(SpanKind kind, Phase phase, std::uint32_t arg) noexcept;
void record_at_slow(std::uint64_t ns, SpanKind kind, Phase phase,
                    std::uint32_t arg) noexcept;
void count_slow(Counter c, std::uint64_t delta) noexcept;
void gauge_max_slow(Gauge g, std::uint64_t value) noexcept;
void observe_slow(Histogram h, std::uint64_t ns) noexcept;
}  // namespace detail

// ---------------------------------------------------------------------------
// Hot-path hooks. Disarmed: one relaxed load + branch, nothing else.

/// Record a thread-state transition (instant; exporter builds the spans).
inline void record_state(int state) noexcept {
  if (!timeline_armed()) return;
  detail::record_slow(SpanKind::kState, Phase::kInstant,
                      static_cast<std::uint32_t>(state));
}

/// Record an explicit span edge with a timestamp taken now.
inline void record_span(SpanKind kind, Phase phase,
                        std::uint32_t arg = 0) noexcept {
  if (!timeline_armed()) return;
  detail::record_slow(kind, phase, arg);
}

/// Record a span edge at a caller-supplied SteadyClock timestamp (for
/// sites that already read the clock, e.g. a stall begin captured before
/// knowing whether the stall lasts).
inline void record_span_at(std::uint64_t ns, SpanKind kind, Phase phase,
                           std::uint32_t arg = 0) noexcept {
  if (!timeline_armed()) return;
  detail::record_at_slow(ns, kind, phase, arg);
}

inline void count(Counter c, std::uint64_t delta = 1) noexcept {
  if (!metrics_armed()) return;
  detail::count_slow(c, delta);
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
  if (!metrics_armed()) return;
  detail::gauge_max_slow(g, value);
}

inline void observe(Histogram h, std::uint64_t ns) noexcept {
  if (!metrics_armed()) return;
  detail::observe_slow(h, ns);
}

/// Name the calling thread's timeline slot (display only; allocates the
/// slot if armed). No-op while fully disarmed.
void name_thread(const std::string& name);

// ---------------------------------------------------------------------------
// Read side.

/// Aggregate every metric shard. Safe to call concurrently with writers
/// (relaxed reads; counters may trail in-flight updates).
MetricsView metrics();

/// Copy out every thread timeline. Best-effort when writers are active:
/// records being overwritten concurrently may read torn, and the exporter
/// drops inconsistent span pairs. Exact once threads are quiescent (the
/// shutdown/report path).
std::vector<ThreadTimeline> timelines();

/// Reset all metric shards and timeline rings to empty (testing and
/// between-run isolation; arming state is untouched).
void reset_for_testing();

}  // namespace orca::telemetry
