/// \file export.hpp
/// Telemetry exporters: Chrome/Perfetto `trace_event` JSON (load the file
/// in https://ui.perfetto.dev or chrome://tracing) and a human-readable
/// text report for `ORCA_TELEMETRY_REPORT=stderr|<path>` at shutdown.
///
/// Higher layers (the collector tool, examples) merge their own streams —
/// ORA collector events, perf callstack samples — into the trace by
/// converting them to `ExternalEvent`s; this module stays dependent on
/// `src/common` only, so both the collector and the runtime can link it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace orca::telemetry {

/// An event contributed by another subsystem (collector event trace, perf
/// callstack sample, ...) to merge into the exported timeline.
struct ExternalEvent {
  std::uint64_t ns = 0;      ///< SteadyClock timestamp
  std::uint64_t dur_ns = 0;  ///< 0 => instant marker, else a complete span
  int tid = -1;              ///< telemetry slot id; -1 => "external" track
  std::string name;
  std::string category;      ///< trace_event "cat", e.g. "collector"
};

/// Render the current telemetry state (all thread timelines + any extra
/// streams) as Chrome `trace_event` JSON: one process, one track per
/// thread with `thread_name` metadata, complete (`X`) spans for states and
/// internal spans, instant (`i`) markers for unpaired points.
std::string render_chrome_trace(const std::vector<ExternalEvent>& extra = {});

/// Write render_chrome_trace() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ExternalEvent>& extra = {});

/// Human-readable metric catalog + per-thread timeline summary.
std::string render_text_report();

/// Emit render_text_report() to `destination`: "stderr", or a file path.
/// Empty destination is a no-op.
void shutdown_report(const std::string& destination);

}  // namespace orca::telemetry
