/// \file validate.hpp
/// Deep, overflow-safe structural validation of a mapped ORCA export
/// segment (docs/FLEET.md "Threat model & failure matrix").
///
/// `SegmentReader::attach` used to trust most of the header: it checked
/// magic/version/ready and that `segment_bytes` fit the mapping, then
/// dereferenced every producer-supplied offset on the poll path. A
/// producer that crashes mid-initialization, lies in its header, or is
/// actively hostile could therefore walk a reader off the end of the
/// mapping (oversized `ring_count`, an offset past `segment_bytes`, a
/// capacity that is not a power of two so `cap - 1` is not a mask, a
/// `segment_bytes` chosen so `off + count * size` wraps 64 bits).
///
/// `validate_segment` bounds-checks every derived extent against the
/// *mapped* size before any cursor is created. All arithmetic is division
/// based (`count <= (limit - off) / elem`), never `off + count * elem`,
/// so no intermediate can overflow. On rejection it reports a one-line
/// reason suitable for a quarantine record.
#pragma once

#include <cstdint>
#include <string>

namespace orca::shm {

struct SegmentHeader;

/// Hard sanity ceilings. Real producers sit far below these; anything
/// above is a corrupt or hostile header, not a big fleet.
inline constexpr std::uint32_t kMaxRingCount = 1u << 16;
inline constexpr std::uint32_t kMaxRingCapacity = 1u << 30;
inline constexpr std::uint32_t kMaxCrashCapacity = 1u << 28;

/// Validate `header` (the first bytes of a mapping of `mapped_bytes`)
/// structurally: magic, version, geometry ceilings, power-of-two ring
/// capacities, every section extent inside `segment_bytes`, and
/// `segment_bytes` itself inside the mapping. The label must be
/// NUL-terminated inside its array (readers render it into reports).
/// Returns true when every derived offset is safe to dereference; on
/// false, `*why` (when non-null) holds the first failed check.
bool validate_segment(const SegmentHeader& header, std::uint64_t mapped_bytes,
                      std::string* why);

}  // namespace orca::shm
