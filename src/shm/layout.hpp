/// \file layout.hpp
/// On-disk (well, on-/dev/shm) layout of one ORCA export segment, shared
/// verbatim by the in-process exporter (src/shm/exporter.cpp), the
/// out-of-process reader (src/shm/reader.cpp, orcamon), and the drain
/// bench. Everything here is position-independent POD + lock-free
/// std::atomics, because the two sides of the segment are different
/// processes with different address spaces and independent lifetimes.
///
/// Segment anatomy (offsets carried in the header, never recomputed by
/// readers, so the two builds need not agree on padding):
///
///   [SegmentHeader]                       magic/version/geometry, the
///                                         attach + heartbeat handshake
///   [RingHeader x ring_count]             event rings (one per thread slot)
///   [RingHeader x ring_count]             sample rings (SIGPROF mirror)
///   [RingCell x ring_count x event_cap]   event cells
///   [RingCell x ring_count x sample_cap]  sample cells
///   [TelemetryMirror]                     seqlock'd metrics snapshot
///   [CrashRegion + text bytes]            shm-resident crash-dump section
///
/// ## Ring protocol: single-producer broadcast, non-destructive reads
///
/// The in-process EventRing (collector/async.hpp) is a Vyukov MPMC queue:
/// consumers *claim* cells with CAS. That protocol is wrong across a
/// process boundary — a reader that dies between claiming a cell and
/// stamping it consumed would wedge the producer's overwrite path forever.
/// Here the producer is the only writer and readers are invisible to it:
///
///   push(rec):  pos = tail.fetch_add(1)            (claim, wait-free)
///               cell.seq = 0                        (invalidate)
///               cell.{ns,a,b} = rec                 (relaxed payload)
///               cell.seq = pos + 1                  (release publish)
///
///   poll(cur):  accept cell only when seq == cur+1 before *and* after
///               copying the payload (seqlock validation); a reader that
///               fell behind computes its loss from the published tail
///               (lost = (tail - capacity) - cur) and jumps forward.
///
/// A crashed reader costs nothing; a crashed producer leaves at most one
/// mid-write cell per ring, which readers skip and count as lost. Every
/// store on the push path is a plain release store (free on x86/TSO), so
/// the hook stays signal-safe — the SIGPROF sampler publishes through the
/// same path.
///
/// ## Attach / heartbeat handshake
///
/// `ready` flips 0 -> 1 once the creator finished initializing (release;
/// readers acquire). Liveness is a sense-reversing pulse: every beat the
/// producer flips `heartbeat_sense` and stamps `heartbeat_ns`; a reader
/// watches for the *flip* with its own clock, so no cross-process clock
/// comparison is needed — a sense that stops flipping for a few intervals
/// marks the producer suspect, and kill(pid, 0) == ESRCH confirms death.
/// `producer_state` moves kInitializing -> kActive -> kFinalized on clean
/// shutdown; a crash simply stops the pulse.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace orca::shm {

/// "ORCASHM1" little-endian; bump the trailing digit on layout breaks.
inline constexpr std::uint64_t kMagic = 0x314D48534143524FULL;
inline constexpr std::uint32_t kVersion = 1;

/// Producer lifecycle advertised in the header.
enum class ProducerState : std::uint32_t {
  kInitializing = 0,  ///< segment mapped, geometry not yet published
  kActive = 1,        ///< heartbeat running, rings live
  kFinalized = 2,     ///< clean shutdown: rings quiescent, totals final
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm layout needs address-free 64-bit atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm layout needs address-free 32-bit atomics");

/// One decoded ring record, as the reader hands it out.
struct Record {
  std::uint64_t ns = 0;   ///< producer SteadyClock (CLOCK_MONOTONIC) stamp
  std::int32_t event = 0; ///< OMP_COLLECTORAPI_EVENT, or sampler state
  std::int32_t tid = 0;   ///< producer thread slot (gtid)
  std::uint64_t arg = 0;  ///< sampler: current region id; events: unused
};

/// One 32-byte broadcast cell. Payload fields are atomics with relaxed
/// ordering (not a seqlock over plain memory) so the cross-process torn
/// read is defined behaviour and TSan-clean in the in-process tests.
struct RingCell {
  std::atomic<std::uint64_t> seq;  ///< 0 = mid-write, pos+1 = holds pos
  std::atomic<std::uint64_t> ns;
  std::atomic<std::uint64_t> a;    ///< packed (event << 32) | u32(tid)
  std::atomic<std::uint64_t> b;    ///< arg
};
static_assert(sizeof(RingCell) == 32, "cell layout is part of the ABI");

/// Per-ring producer bookkeeping, one cacheline so producers on different
/// thread slots never false-share.
struct alignas(64) RingHeader {
  std::atomic<std::uint64_t> tail;  ///< next position to claim == produced
  std::uint64_t pad_[7];
};
static_assert(sizeof(RingHeader) == 64);

inline std::uint64_t pack_event(std::int32_t event, std::int32_t tid) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(event)) << 32) |
         static_cast<std::uint32_t>(tid);
}

inline std::int32_t packed_event(std::uint64_t a) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a >> 32));
}

inline std::int32_t packed_tid(std::uint64_t a) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a));
}

// ---------------------------------------------------------------------------
// Telemetry mirror: a seqlock'd copy of the producer's metrics counters,
// refreshed by the heartbeat thread. Capacities are fixed so the layout
// does not move when the telemetry catalog grows; `counter_count` says how
// many slots are meaningful in this producer's build.

inline constexpr std::size_t kMirrorCounterCap = 32;
inline constexpr std::size_t kMirrorGaugeCap = 16;

struct TelemetryMirror {
  /// Seqlock version: odd while the heartbeat is writing. Readers retry;
  /// a dead producer frozen on an odd version is reported as torn.
  std::atomic<std::uint64_t> version;
  std::atomic<std::uint64_t> counter_count;
  std::atomic<std::uint64_t> gauge_count;
  std::atomic<std::uint64_t> counters[kMirrorCounterCap];
  std::atomic<std::uint64_t> gauges[kMirrorGaugeCap];
};

// ---------------------------------------------------------------------------
// Crash region: PR 5's crash-dump sections made shm-resident. Two writers:
//
//  * the heartbeat thread keeps a rolling *live snapshot* (kind 1) so even
//    a SIGKILL — where no handler can run — leaves salvageable state;
//  * the crash handler (SIGSEGV/SIGBUS/SIGABRT) writes a *postmortem*
//    (kind 2) through async-signal-safe stores; a postmortem is never
//    overwritten by later snapshots.
//
/// `version` is the same odd/even seqlock as the mirror; a producer killed
/// mid-snapshot leaves it odd and the salvager labels the text torn.

enum : std::uint32_t {
  kCrashEmpty = 0,
  kCrashSnapshot = 1,
  kCrashPostmortem = 2,
};

struct CrashRegion {
  std::atomic<std::uint32_t> kind;
  std::atomic<std::uint32_t> length;   ///< valid bytes in the text area
  std::atomic<std::uint64_t> ns;       ///< producer clock at last write
  std::atomic<std::uint64_t> version;  ///< odd while being written
  // `capacity` bytes of text follow this struct in the segment.
};

// ---------------------------------------------------------------------------
// Segment header.

struct SegmentHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t header_bytes;    ///< sizeof(SegmentHeader) in the producer
  std::uint64_t segment_bytes;   ///< total mapping size
  std::int64_t owner_pid;
  std::uint64_t created_ns;      ///< producer SteadyClock at creation

  std::uint32_t ring_count;          ///< rings per bank (thread slots)
  std::uint32_t event_capacity;      ///< cells per event ring (pow2)
  std::uint32_t sample_capacity;     ///< cells per sample ring (pow2)
  std::uint32_t crash_capacity;      ///< text bytes in the crash region

  std::uint64_t event_headers_off;
  std::uint64_t sample_headers_off;
  std::uint64_t event_cells_off;
  std::uint64_t sample_cells_off;
  std::uint64_t telemetry_off;
  std::uint64_t crash_off;

  char label[64];  ///< producer-chosen display name (NUL-terminated)

  // --- handshake (all atomics; everything above is written pre-ready) ---
  std::atomic<std::uint32_t> ready;            ///< 1 once geometry is final
  std::atomic<std::uint32_t> producer_state;   ///< ProducerState
  std::atomic<std::uint32_t> heartbeat_sense;  ///< flips every beat
  std::uint32_t heartbeat_interval_ms;
  std::atomic<std::uint64_t> heartbeat_ns;     ///< producer clock, last beat
  std::atomic<std::uint64_t> heartbeat_beats;
  std::atomic<std::uint32_t> readers_attached; ///< diagnostics only
  std::uint32_t pad0;
  std::atomic<std::uint64_t> events_published; ///< heartbeat-summed tails
  std::atomic<std::uint64_t> samples_published;
};

// ---------------------------------------------------------------------------
// Geometry: one place computes every offset; the header carries the result.

struct Geometry {
  std::uint32_t ring_count = 0;
  std::uint32_t event_capacity = 0;   ///< already rounded to a power of two
  std::uint32_t sample_capacity = 0;  ///< already rounded to a power of two
  std::uint32_t crash_capacity = 0;

  std::uint64_t event_headers_off = 0;
  std::uint64_t sample_headers_off = 0;
  std::uint64_t event_cells_off = 0;
  std::uint64_t sample_cells_off = 0;
  std::uint64_t telemetry_off = 0;
  std::uint64_t crash_off = 0;
  std::uint64_t total_bytes = 0;

  static std::uint32_t round_pow2(std::uint32_t v) noexcept {
    std::uint32_t p = 1;
    while (p < v && p < (1u << 30)) p <<= 1;
    return p;
  }

  static Geometry compute(std::uint32_t rings, std::uint32_t event_cap,
                          std::uint32_t sample_cap,
                          std::uint32_t crash_cap) noexcept {
    Geometry g;
    g.ring_count = rings == 0 ? 1 : rings;
    g.event_capacity = round_pow2(event_cap == 0 ? 1 : event_cap);
    g.sample_capacity = round_pow2(sample_cap == 0 ? 1 : sample_cap);
    g.crash_capacity = crash_cap;
    const std::uint64_t headers_bytes =
        align(static_cast<std::uint64_t>(g.ring_count) * sizeof(RingHeader));
    std::uint64_t off = align(sizeof(SegmentHeader));
    g.event_headers_off = off;
    off += headers_bytes;
    g.sample_headers_off = off;
    off += headers_bytes;
    g.event_cells_off = off;
    off += align(static_cast<std::uint64_t>(g.ring_count) * g.event_capacity *
                 sizeof(RingCell));
    g.sample_cells_off = off;
    off += align(static_cast<std::uint64_t>(g.ring_count) * g.sample_capacity *
                 sizeof(RingCell));
    g.telemetry_off = off;
    off += align(sizeof(TelemetryMirror));
    g.crash_off = off;
    off += align(sizeof(CrashRegion) + g.crash_capacity);
    g.total_bytes = off;
    return g;
  }

 private:
  static std::uint64_t align(std::uint64_t n) noexcept {
    return (n + 63) & ~std::uint64_t{63};
  }
};

// ---------------------------------------------------------------------------
// Producer side: wait-free broadcast push. `mask = capacity - 1`.

inline void ring_push(RingHeader& h, RingCell* cells, std::uint64_t mask,
                      const Record& rec) noexcept {
  const std::uint64_t pos = h.tail.fetch_add(1, std::memory_order_relaxed);
  RingCell& c = cells[pos & mask];
  // Release stores throughout: the invalidation (seq = 0) must become
  // visible no later than the payload, or a reader could revalidate a
  // stale seq against a half-new payload. On x86 these are plain stores.
  c.seq.store(0, std::memory_order_release);
  c.ns.store(rec.ns, std::memory_order_release);
  c.a.store(pack_event(rec.event, rec.tid), std::memory_order_release);
  c.b.store(rec.arg, std::memory_order_release);
  c.seq.store(pos + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Reader side: private cursor + honest loss book.

/// One reader's position in one ring. Readers never write to the segment,
/// so any number of cursors can watch the same ring — but one cursor must
/// only ever be advanced by one thread at a time.
struct Cursor {
  std::uint64_t next = 0;  ///< position of the next record to read
  std::uint64_t read = 0;  ///< records successfully copied out
  std::uint64_t lost = 0;  ///< records overwritten before we got to them
};

enum class Poll {
  kEmpty,   ///< nothing new (or the next cell is mid-write; retry later)
  kRecord,  ///< *out holds the record at the old cursor position
  kLost,    ///< fell behind; loss was counted and the cursor resynced
};

inline Poll ring_poll(const RingHeader& h, const RingCell* cells,
                      std::uint64_t mask, std::uint64_t capacity, Cursor& cur,
                      Record* out) noexcept {
  const std::uint64_t tail = h.tail.load(std::memory_order_acquire);
  if (cur.next >= tail) return Poll::kEmpty;
  if (tail > capacity && cur.next < tail - capacity) {
    // The producer lapped us: everything up to tail - capacity is gone.
    const std::uint64_t oldest = tail - capacity;
    cur.lost += oldest - cur.next;
    cur.next = oldest;
  }
  const RingCell& c = cells[cur.next & mask];
  const std::uint64_t s1 = c.seq.load(std::memory_order_acquire);
  if (s1 != cur.next + 1) {
    if (s1 > cur.next + 1) {
      // Overwritten between the tail check and here; resync forward.
      const std::uint64_t now_holds = s1 - 1;       // position in the cell
      const std::uint64_t oldest = now_holds >= capacity
                                       ? now_holds - capacity + 1
                                       : 0;
      const std::uint64_t jump = oldest > cur.next ? oldest : cur.next + 1;
      cur.lost += jump - cur.next;
      cur.next = jump;
      return Poll::kLost;
    }
    // seq is 0 (mid-write) or a previous lap's stamp: the producer claimed
    // this position but has not finished publishing it. Retry later.
    return Poll::kEmpty;
  }
  out->ns = c.ns.load(std::memory_order_relaxed);
  const std::uint64_t a = c.a.load(std::memory_order_relaxed);
  out->arg = c.b.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (c.seq.load(std::memory_order_relaxed) != s1) {
    // Torn: the producer lapped us mid-copy. Count it and move on.
    cur.lost += 1;
    cur.next += 1;
    return Poll::kLost;
  }
  out->event = packed_event(a);
  out->tid = packed_tid(a);
  cur.next += 1;
  cur.read += 1;
  return Poll::kRecord;
}

/// After the producer is known dead/finalized and a drain pass made no
/// progress, charge whatever is still unread (at most one mid-write cell
/// per ring, plus anything the tail claims) to the loss book so
/// produced == read + lost holds exactly.
inline void cursor_finalize(const RingHeader& h, Cursor& cur) noexcept {
  const std::uint64_t tail = h.tail.load(std::memory_order_acquire);
  if (cur.next < tail) {
    cur.lost += tail - cur.next;
    cur.next = tail;
  }
}

}  // namespace orca::shm
