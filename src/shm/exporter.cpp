#include "shm/exporter.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>

#include "common/clock.hpp"
#include "shm/layout.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/fault_injection.hpp"

namespace orca::shm {
namespace {

/// Async-signal-safe append of a "key value\n" line into a bounded char
/// region; the crash postmortem cannot use stdio or allocation.
struct TextCursor {
  char* base;
  std::uint32_t cap;
  std::uint32_t len = 0;

  void put(char c) noexcept {
    if (len < cap) base[len++] = c;
  }
  void str(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }
  void u64(unsigned long long v) noexcept {
    char buf[24];
    char* p = buf + sizeof(buf);
    *--p = '\0';
    do {
      *--p = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    str(p);
  }
  void kv(const char* key, unsigned long long v) noexcept {
    str(key);
    put(' ');
    u64(v);
    put('\n');
  }
};

}  // namespace

/// The mapped producer side of one segment. Construction maps + publishes;
/// destruction finalizes + unlinks. All hot-path members are raw pointers
/// into the mapping so the publish paths stay signal-safe.
class ShmExporter {
 public:
  static ShmExporter* create(const ExporterOptions& opts) {
    ORCA_FAULT_POINT(kShmArm);
    if (testing::FaultInjector::alloc_fails(testing::FaultPoint::kShmArm)) {
      // Stand-in for ENOSPC/EPERM at sizing time: the export arm must
      // degrade to a warning, never fail the hosting runtime.
      std::fprintf(stderr,
                   "ORCA: shm export disabled: injected arm fault "
                   "(simulated ENOSPC)\n");
      return nullptr;
    }
    const std::string path = "/" + opts.name;
    // O_EXCL: a leftover live segment with our name means a pid collision
    // or a bug — never silently scribble over someone else's rings.
    const int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      std::fprintf(stderr,
                   "ORCA: shm export disabled: shm_open(%s) failed: %s\n",
                   path.c_str(), std::strerror(errno));
      return nullptr;
    }
    const Geometry geo =
        Geometry::compute(opts.ring_count, opts.event_capacity,
                          opts.sample_capacity, opts.crash_capacity);
    if (::ftruncate(fd, static_cast<off_t>(geo.total_bytes)) != 0) {
      std::fprintf(stderr,
                   "ORCA: shm export disabled: ftruncate(%s, %llu) failed: "
                   "%s\n",
                   path.c_str(),
                   static_cast<unsigned long long>(geo.total_bytes),
                   std::strerror(errno));
      ::close(fd);
      ::shm_unlink(path.c_str());
      return nullptr;
    }
    void* base = ::mmap(nullptr, geo.total_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      std::fprintf(stderr, "ORCA: shm export disabled: mmap(%s) failed: %s\n",
                   path.c_str(), std::strerror(errno));
      ::shm_unlink(path.c_str());
      return nullptr;
    }
    return new ShmExporter(opts, geo, base);
  }

  ~ShmExporter() {
    {
      std::unique_lock lk(hb_mu_);
      hb_stop_ = true;
      hb_cv_.notify_all();
    }
    if (heartbeat_.joinable()) heartbeat_.join();
    // Final beat by hand: totals, telemetry mirror, snapshot, then the
    // finalized state — readers that see kFinalized may trust the books.
    refresh_totals();
    mirror_telemetry();
    write_snapshot();
    header_->heartbeat_ns.store(SteadyClock::now(), std::memory_order_release);
    header_->producer_state.store(
        static_cast<std::uint32_t>(ProducerState::kFinalized),
        std::memory_order_release);
    // readers_attached is deliberately not consulted anywhere on this
    // path: a reader that was SIGKILLed (or never decremented) must not
    // be able to hold the producer's exit hostage. Their mappings survive
    // the unlink; only the name goes away.
    ::shm_unlink(("/" + name_).c_str());
    ::munmap(base_, geo_.total_bytes);
  }

  const std::string& name() const noexcept { return name_; }
  SegmentHeader* header() noexcept { return header_; }

  /// Wait-free, async-signal-safe.
  void publish_event(int tid, int event) noexcept {
    const std::uint32_t ring = ring_for(tid);
    Record rec;
    rec.ns = SteadyClock::now();
    rec.event = event;
    rec.tid = tid;
    ring_push(event_headers_[ring], event_cells(ring), event_mask_, rec);
  }

  /// Wait-free, async-signal-safe (the SIGPROF path).
  void publish_sample(int tid, int state, std::uint64_t region) noexcept {
    const std::uint32_t ring = ring_for(tid);
    Record rec;
    rec.ns = SteadyClock::now();
    rec.event = state;
    rec.tid = tid;
    rec.arg = region;
    ring_push(sample_headers_[ring], sample_cells(ring), sample_mask_, rec);
  }

  /// Async-signal-safe postmortem into the crash region (+ optional dump
  /// fd mirror via the caller). One-shot across snapshot writers: once
  /// kind is kCrashPostmortem the heartbeat never touches the region.
  void write_postmortem() noexcept {
    CrashRegion* cr = crash_;
    cr->version.fetch_add(1, std::memory_order_acq_rel);  // odd: writing
    cr->kind.store(kCrashPostmortem, std::memory_order_release);
    TextCursor t{crash_text_, geo_.crash_capacity};
    t.str("ORCA_SHM_CRASH v1\n");
    t.kv("postmortem", 1);
    fill_crash_body(t);
    cr->length.store(t.len, std::memory_order_release);
    cr->ns.store(SteadyClock::now(), std::memory_order_release);
    cr->version.fetch_add(1, std::memory_order_release);  // even: done
  }

 private:
  ShmExporter(const ExporterOptions& opts, const Geometry& geo, void* base)
      : name_(opts.name), geo_(geo), base_(static_cast<char*>(base)) {
    header_ = new (base_) SegmentHeader{};
    header_->magic = kMagic;
    header_->version = kVersion;
    header_->header_bytes = sizeof(SegmentHeader);
    header_->segment_bytes = geo.total_bytes;
    header_->owner_pid = static_cast<std::int64_t>(::getpid());
    header_->created_ns = SteadyClock::now();
    header_->ring_count = geo.ring_count;
    header_->event_capacity = geo.event_capacity;
    header_->sample_capacity = geo.sample_capacity;
    header_->crash_capacity = geo.crash_capacity;
    header_->event_headers_off = geo.event_headers_off;
    header_->sample_headers_off = geo.sample_headers_off;
    header_->event_cells_off = geo.event_cells_off;
    header_->sample_cells_off = geo.sample_cells_off;
    header_->telemetry_off = geo.telemetry_off;
    header_->crash_off = geo.crash_off;
    std::snprintf(header_->label, sizeof(header_->label), "%s",
                  opts.label.c_str());
    header_->heartbeat_interval_ms = opts.heartbeat_ms == 0
                                         ? 1
                                         : opts.heartbeat_ms;
    // The mapping is fresh zero pages, so placement-new of the atomics in
    // the ring headers / mirror / crash region is value-preserving; doing
    // it anyway keeps the object model honest.
    event_headers_ = new (base_ + geo.event_headers_off)
        RingHeader[geo.ring_count]{};
    sample_headers_ = new (base_ + geo.sample_headers_off)
        RingHeader[geo.ring_count]{};
    new (base_ + geo.event_cells_off)
        RingCell[static_cast<std::size_t>(geo.ring_count) *
                 geo.event_capacity]{};
    new (base_ + geo.sample_cells_off)
        RingCell[static_cast<std::size_t>(geo.ring_count) *
                 geo.sample_capacity]{};
    mirror_ = new (base_ + geo.telemetry_off) TelemetryMirror{};
    crash_ = new (base_ + geo.crash_off) CrashRegion{};
    crash_text_ = base_ + geo.crash_off + sizeof(CrashRegion);
    event_mask_ = geo.event_capacity - 1;
    sample_mask_ = geo.sample_capacity - 1;

    // Publish: everything a reader needs is in place before ready flips.
    header_->producer_state.store(
        static_cast<std::uint32_t>(ProducerState::kActive),
        std::memory_order_release);
    header_->heartbeat_ns.store(SteadyClock::now(), std::memory_order_release);
    header_->ready.store(1, std::memory_order_release);
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
  }

  std::uint32_t ring_for(int tid) const noexcept {
    if (tid < 0) return 0;
    const auto t = static_cast<std::uint32_t>(tid);
    return t < geo_.ring_count ? t : geo_.ring_count - 1;
  }

  RingCell* event_cells(std::uint32_t ring) noexcept {
    return reinterpret_cast<RingCell*>(base_ + geo_.event_cells_off) +
           static_cast<std::size_t>(ring) * geo_.event_capacity;
  }

  RingCell* sample_cells(std::uint32_t ring) noexcept {
    return reinterpret_cast<RingCell*>(base_ + geo_.sample_cells_off) +
           static_cast<std::size_t>(ring) * geo_.sample_capacity;
  }

  void refresh_totals() noexcept {
    std::uint64_t events = 0;
    std::uint64_t samples = 0;
    for (std::uint32_t r = 0; r < geo_.ring_count; ++r) {
      events += event_headers_[r].tail.load(std::memory_order_relaxed);
      samples += sample_headers_[r].tail.load(std::memory_order_relaxed);
    }
    header_->events_published.store(events, std::memory_order_release);
    header_->samples_published.store(samples, std::memory_order_release);
  }

  void mirror_telemetry() noexcept {
    const telemetry::MetricsView view = telemetry::metrics();
    mirror_->version.fetch_add(1, std::memory_order_acq_rel);  // odd
    // Seam sits inside the odd window on purpose: a hook that parks here
    // models a producer frozen mid-write, which readers must report torn.
    ORCA_FAULT_POINT(kShmMirror);
    const std::size_t nc =
        std::min(telemetry::kCounterCount, kMirrorCounterCap);
    const std::size_t ng = std::min(telemetry::kGaugeCount, kMirrorGaugeCap);
    mirror_->counter_count.store(nc, std::memory_order_relaxed);
    mirror_->gauge_count.store(ng, std::memory_order_relaxed);
    for (std::size_t i = 0; i < nc; ++i) {
      mirror_->counters[i].store(view.counters[i], std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < ng; ++i) {
      mirror_->gauges[i].store(view.gauges[i], std::memory_order_relaxed);
    }
    mirror_->version.fetch_add(1, std::memory_order_release);  // even
  }

  /// Rolling live snapshot: what a SIGKILLed producer leaves behind.
  void write_snapshot() noexcept {
    CrashRegion* cr = crash_;
    if (cr->kind.load(std::memory_order_acquire) == kCrashPostmortem) return;
    cr->version.fetch_add(1, std::memory_order_acq_rel);  // odd
    cr->kind.store(kCrashSnapshot, std::memory_order_release);
    TextCursor t{crash_text_, geo_.crash_capacity};
    t.str("ORCA_SHM_CRASH v1\n");
    t.kv("postmortem", 0);
    fill_crash_body(t);
    cr->length.store(t.len, std::memory_order_release);
    cr->ns.store(SteadyClock::now(), std::memory_order_release);
    cr->version.fetch_add(1, std::memory_order_release);  // even
  }

  void fill_crash_body(TextCursor& t) noexcept {
    t.kv("pid", static_cast<unsigned long long>(header_->owner_pid));
    t.kv("beats", header_->heartbeat_beats.load(std::memory_order_relaxed));
    t.kv("events_published",
         header_->events_published.load(std::memory_order_relaxed));
    t.kv("samples_published",
         header_->samples_published.load(std::memory_order_relaxed));
    t.kv("uptime_ns", SteadyClock::now() - header_->created_ns);
  }

  void heartbeat_loop() {
    std::unique_lock lk(hb_mu_);
    const auto interval =
        std::chrono::milliseconds(header_->heartbeat_interval_ms);
    while (!hb_stop_) {
      hb_cv_.wait_for(lk, interval, [this] { return hb_stop_; });
      if (hb_stop_) break;
      ORCA_FAULT_POINT(kHeartbeat);
      refresh_totals();
      mirror_telemetry();
      write_snapshot();
      header_->heartbeat_beats.fetch_add(1, std::memory_order_relaxed);
      header_->heartbeat_ns.store(SteadyClock::now(),
                                  std::memory_order_release);
      // The sense flip is the liveness signal proper: readers watch for
      // the *change*, so producer and reader clocks never meet.
      header_->heartbeat_sense.fetch_xor(1, std::memory_order_release);
    }
  }

  std::string name_;
  Geometry geo_;
  char* base_ = nullptr;
  SegmentHeader* header_ = nullptr;
  RingHeader* event_headers_ = nullptr;
  RingHeader* sample_headers_ = nullptr;
  TelemetryMirror* mirror_ = nullptr;
  CrashRegion* crash_ = nullptr;
  char* crash_text_ = nullptr;
  std::uint64_t event_mask_ = 0;
  std::uint64_t sample_mask_ = 0;

  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
};

namespace detail {

std::atomic<ShmExporter*> g_exporter{nullptr};

void publish_event(ShmExporter* e, int tid, int event) noexcept {
  e->publish_event(tid, event);
}

void publish_sample(ShmExporter* e, int tid, int state,
                    std::uint64_t region) noexcept {
  e->publish_sample(tid, state, region);
}

}  // namespace detail

namespace {

std::mutex g_arm_mu;
int g_arm_count = 0;
/// One-shot gate for the crash postmortem: the handler may race a second
/// crashing thread, and a postmortem must never be written twice.
std::atomic<bool> g_postmortem_done{false};

}  // namespace

bool arm(const ExporterOptions& opts) {
  std::scoped_lock lk(g_arm_mu);
  if (g_arm_count > 0) {
    ++g_arm_count;
    return true;
  }
  ShmExporter* e = ShmExporter::create(opts);
  if (e == nullptr) return false;
  g_arm_count = 1;
  g_postmortem_done.store(false, std::memory_order_release);
  detail::g_exporter.store(e, std::memory_order_release);
  return true;
}

void disarm() {
  ShmExporter* dying = nullptr;
  {
    std::scoped_lock lk(g_arm_mu);
    if (g_arm_count == 0) return;
    if (--g_arm_count > 0) return;
    dying = detail::g_exporter.exchange(nullptr, std::memory_order_acq_rel);
  }
  // Hooks in flight may still hold the old pointer for a few instructions;
  // they complete against a mapping we only drop below. The window between
  // the exchange and the last concurrent publish is covered by the same
  // quiescence argument as telemetry disarm: the runtime destructor joins
  // its workers before calling this, so no instrumented thread survives.
  delete dying;
}

std::string armed_segment_name() {
  ShmExporter* e = detail::g_exporter.load(std::memory_order_acquire);
  return e == nullptr ? std::string() : e->name();
}

std::string default_segment_name(const std::string& prefix) {
  static std::atomic<unsigned> seq{0};
  return prefix + "." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed) + 1);
}

void crash_postmortem(int fd) noexcept {
  ShmExporter* e = detail::g_exporter.load(std::memory_order_acquire);
  if (e == nullptr) return;
  bool expected = false;
  if (!g_postmortem_done.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
    return;
  }
  e->write_postmortem();
  if (fd >= 0) {
    // Mirror a breadcrumb into the regular crash dump so a reader of the
    // file knows a richer shm postmortem exists.
    const char* line = "shm_postmortem 1\n";
    (void)!::write(fd, line, std::strlen(line));
  }
}

std::size_t cleanup_stale_segments(const std::string& prefix) {
  if (prefix.empty()) return 0;
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return 0;
  const std::string want = prefix + ".";
  std::size_t removed = 0;
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name(ent->d_name);
    if (name.rfind(want, 0) != 0) continue;
    // Name shape: <prefix>.<pid>.<seq> — the owner pid is the first field
    // after the prefix. Anything unparseable is left alone.
    const std::string rest = name.substr(want.size());
    const std::size_t dot = rest.find('.');
    const std::string pid_text = dot == std::string::npos
                                     ? rest
                                     : rest.substr(0, dot);
    if (pid_text.empty() ||
        pid_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const long pid = std::strtol(pid_text.c_str(), nullptr, 10);
    if (pid <= 0) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
      continue;  // owner alive (or undeterminable): not ours to reap
    }
    if (::shm_unlink(("/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(dir);
  return removed;
}

}  // namespace orca::shm
