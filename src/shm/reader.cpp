#include "shm/reader.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "shm/validate.hpp"
#include "testing/fault_injection.hpp"

namespace orca::shm {

std::vector<SegmentName> discover_segments(const std::string& prefix) {
  std::vector<SegmentName> out;
  if (prefix.empty()) return out;
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return out;
  const std::string want = prefix + ".";
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name(ent->d_name);
    if (name.rfind(want, 0) != 0) continue;
    const std::string rest = name.substr(want.size());
    const std::size_t dot = rest.find('.');
    const std::string pid_text =
        dot == std::string::npos ? rest : rest.substr(0, dot);
    if (pid_text.empty() ||
        pid_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentName seg;
    seg.name = name;
    seg.pid = std::strtoll(pid_text.c_str(), nullptr, 10);
    out.push_back(std::move(seg));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const SegmentName& a, const SegmentName& b) {
              return a.name < b.name;
            });
  return out;
}

const char* attach_error_kind_name(AttachError::Kind kind) noexcept {
  switch (kind) {
    case AttachError::Kind::kNone: return "none";
    case AttachError::Kind::kNotFound: return "not-found";
    case AttachError::Kind::kTransient: return "transient";
    case AttachError::Kind::kCorrupt: return "corrupt";
    case AttachError::Kind::kIo: return "io";
  }
  return "?";
}

namespace {

std::unique_ptr<SegmentReader> set_error(AttachError* err,
                                         AttachError::Kind kind,
                                         const std::string& text) {
  if (err != nullptr) {
    err->kind = kind;
    err->message = text;
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<SegmentReader> SegmentReader::attach(const std::string& name,
                                                     AttachError* err) {
  ORCA_FAULT_POINT(kShmAttach);
  if (testing::FaultInjector::alloc_fails(testing::FaultPoint::kShmAttach)) {
    return set_error(err, AttachError::Kind::kIo, "injected attach fault");
  }
  const std::string path = "/" + name;
  // Read-only where possible: readers never need to store into the
  // segment except for the diagnostic readers_attached bump, so a
  // producer that published its segment unwritable still gets drained —
  // we just skip the bump. Try RW first (for the counter), fall back.
  bool writable = true;
  int fd = ::shm_open(path.c_str(), O_RDWR, 0);
  if (fd < 0 && (errno == EACCES || errno == EPERM || errno == EROFS)) {
    writable = false;
    fd = ::shm_open(path.c_str(), O_RDONLY, 0);
  }
  if (fd < 0) {
    const int e = errno;
    return set_error(err,
                     e == ENOENT ? AttachError::Kind::kNotFound
                                 : AttachError::Kind::kIo,
                     "shm_open failed: " + std::string(std::strerror(e)));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string text =
        "fstat failed: " + std::string(std::strerror(errno));
    ::close(fd);
    return set_error(err, AttachError::Kind::kIo, text);
  }
  if (st.st_size < static_cast<off_t>(sizeof(SegmentHeader))) {
    ::close(fd);
    // The creator sizes the file right after shm_open(O_CREAT); a reader
    // racing that window sees a short (often zero-byte) file.
    return set_error(err, AttachError::Kind::kTransient,
                     "segment smaller than its header (mid-create?)");
  }
  const auto mapped = static_cast<std::uint64_t>(st.st_size);
  void* base = ::mmap(nullptr, mapped,
                      writable ? PROT_READ | PROT_WRITE : PROT_READ,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const std::string text =
        "mmap failed: " + std::string(std::strerror(errno));
    ::close(fd);
    return set_error(err, AttachError::Kind::kIo, text);
  }
  auto* header = static_cast<SegmentHeader*>(base);
  if (header->magic != kMagic || header->version != kVersion) {
    // Distinguish the two for the quarantine record, but both are final.
    const std::string text = header->magic != kMagic
                                 ? "bad magic (not an ORCA segment)"
                                 : "segment version mismatch";
    ::munmap(base, mapped);
    ::close(fd);
    return set_error(err, AttachError::Kind::kCorrupt, text);
  }
  if (header->ready.load(std::memory_order_acquire) == 0) {
    ::munmap(base, mapped);
    ::close(fd);
    return set_error(err, AttachError::Kind::kTransient,
                     "segment still initializing");
  }
  // Deep validation: every derived offset bounds-checked against the
  // mapping before any cursor is created (validate.hpp).
  std::string why;
  if (!validate_segment(*header, mapped, &why)) {
    ::munmap(base, mapped);
    ::close(fd);
    return set_error(err, AttachError::Kind::kCorrupt, why);
  }
  // Close the attach/truncate race: everything above read pages that a
  // concurrent ftruncate could have pulled out from under us. Re-check
  // the file size now that the geometry is captured; shrunk means a
  // producer dying loudly — let the retry policy sort it out.
  struct stat st2 {};
  if (::fstat(fd, &st2) != 0 ||
      static_cast<std::uint64_t>(st2.st_size) < mapped) {
    ::munmap(base, mapped);
    ::close(fd);
    return set_error(err, AttachError::Kind::kTransient,
                     "segment resized during attach");
  }

  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->name_ = name;
  reader->base_ = static_cast<const char*>(base);
  reader->mapped_bytes_ = mapped;
  reader->fd_ = fd;  // kept for revalidate(): detects later truncation
  reader->writable_ = writable;
  reader->geom_.ring_count = header->ring_count;
  reader->geom_.event_capacity = header->event_capacity;
  reader->geom_.sample_capacity = header->sample_capacity;
  reader->geom_.crash_capacity = header->crash_capacity;
  reader->geom_.event_headers_off = header->event_headers_off;
  reader->geom_.sample_headers_off = header->sample_headers_off;
  reader->geom_.event_cells_off = header->event_cells_off;
  reader->geom_.sample_cells_off = header->sample_cells_off;
  reader->geom_.telemetry_off = header->telemetry_off;
  reader->geom_.crash_off = header->crash_off;
  // Clamp the advertised heartbeat so a hostile interval cannot push the
  // liveness budget out to "never suspect me".
  reader->geom_.heartbeat_interval_ms =
      std::clamp<std::uint32_t>(header->heartbeat_interval_ms, 1, 60000);
  reader->label_.assign(header->label,
                        ::strnlen(header->label, sizeof(header->label)));
  reader->owner_pid_ = header->owner_pid;
  reader->created_ns_ = header->created_ns;
  reader->event_cursors_.resize(header->ring_count);
  reader->sample_cursors_.resize(header->ring_count);
  if (writable) {
    // Diagnostics only; nothing on the producer side ever waits on it, so
    // a reader that dies without decrementing costs nothing.
    header->readers_attached.fetch_add(1, std::memory_order_relaxed);
  }
  return reader;
}

std::unique_ptr<SegmentReader> SegmentReader::attach(const std::string& name,
                                                     std::string* error) {
  AttachError err;
  auto reader = attach(name, &err);
  if (!reader && error != nullptr) *error = err.message;
  return reader;
}

SegmentReader::~SegmentReader() {
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), mapped_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

bool SegmentReader::revalidate(std::string* why) const noexcept {
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    if (why != nullptr) *why = "fstat on kept fd failed";
    return false;
  }
  if (static_cast<std::uint64_t>(st.st_size) < mapped_bytes_) {
    if (why != nullptr) {
      *why = "segment truncated to " + std::to_string(st.st_size) +
             " bytes (mapped " + std::to_string(mapped_bytes_) + ")";
    }
    return false;
  }
  return true;
}

std::uint64_t SegmentReader::events_published() const noexcept {
  return header()->events_published.load(std::memory_order_acquire);
}

std::uint64_t SegmentReader::samples_published() const noexcept {
  return header()->samples_published.load(std::memory_order_acquire);
}

ProducerState SegmentReader::producer_state() const noexcept {
  return static_cast<ProducerState>(
      header()->producer_state.load(std::memory_order_acquire));
}

Poll SegmentReader::poll_event(std::uint32_t ring, Record* out) noexcept {
  return ring_poll(*ring_header(geom_.event_headers_off, ring),
                   ring_cells(geom_.event_cells_off, ring,
                              geom_.event_capacity),
                   geom_.event_capacity - 1, geom_.event_capacity,
                   event_cursors_[ring], out);
}

Poll SegmentReader::poll_sample(std::uint32_t ring, Record* out) noexcept {
  return ring_poll(*ring_header(geom_.sample_headers_off, ring),
                   ring_cells(geom_.sample_cells_off, ring,
                              geom_.sample_capacity),
                   geom_.sample_capacity - 1, geom_.sample_capacity,
                   sample_cursors_[ring], out);
}

void SegmentReader::finalize_ring(std::uint32_t ring) noexcept {
  cursor_finalize(*ring_header(geom_.event_headers_off, ring),
                  event_cursors_[ring]);
  cursor_finalize(*ring_header(geom_.sample_headers_off, ring),
                  sample_cursors_[ring]);
}

std::uint64_t SegmentReader::total_read() const noexcept {
  std::uint64_t n = 0;
  for (const Cursor& c : event_cursors_) n += c.read;
  for (const Cursor& c : sample_cursors_) n += c.read;
  return n;
}

std::uint64_t SegmentReader::total_lost() const noexcept {
  std::uint64_t n = 0;
  for (const Cursor& c : event_cursors_) n += c.lost;
  for (const Cursor& c : sample_cursors_) n += c.lost;
  return n;
}

std::uint64_t SegmentReader::total_produced() const noexcept {
  std::uint64_t n = 0;
  for (std::uint32_t r = 0; r < geom_.ring_count; ++r) {
    n += ring_header(geom_.event_headers_off, r)
             ->tail.load(std::memory_order_acquire);
    n += ring_header(geom_.sample_headers_off, r)
             ->tail.load(std::memory_order_acquire);
  }
  return n;
}

Liveness SegmentReader::check_liveness(std::uint64_t now_ns, unsigned grace,
                                       std::uint64_t stall_deadline_ns)
    noexcept {
  const SegmentHeader* h = header();
  if (producer_state() == ProducerState::kFinalized) {
    return Liveness::kFinalized;
  }
  const std::uint32_t sense =
      h->heartbeat_sense.load(std::memory_order_acquire);
  if (last_flip_local_ns_ == 0 || sense != last_sense_) {
    last_sense_ = sense;
    last_flip_local_ns_ = now_ns;
    return Liveness::kAlive;
  }
  const std::uint64_t quiet = now_ns - last_flip_local_ns_;
  const std::uint64_t interval_ns =
      static_cast<std::uint64_t>(geom_.heartbeat_interval_ms) * 1000000ull;
  const std::uint64_t budget =
      std::max<std::uint64_t>(interval_ns * grace, 200000000ull);  // >=200ms
  const bool pid_gone =
      ::kill(static_cast<pid_t>(owner_pid_), 0) != 0 && errno == ESRCH;
  // Hard staleness deadline: a producer whose heart stopped this long ago
  // is not coming back on its own (SIGSTOP, swap thrash, wedged), even if
  // the kernel still lists the pid. The caller opts in (0 = off).
  if (stall_deadline_ns > 0 && quiet >= stall_deadline_ns) {
    return pid_gone ? Liveness::kDead : Liveness::kStalled;
  }
  if (quiet < budget) return Liveness::kAlive;
  // Pulse stopped. Only the kernel can confirm death: a SIGSTOPped or
  // swap-thrashed producer is late, not dead.
  if (pid_gone) return Liveness::kDead;
  return Liveness::kAlive;
}

MirrorSnapshot SegmentReader::telemetry_snapshot() const {
  const auto* m =
      reinterpret_cast<const TelemetryMirror*>(base_ + geom_.telemetry_off);
  MirrorSnapshot snap;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t v1 = m->version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // writer active
    const std::uint64_t nc = std::min<std::uint64_t>(
        m->counter_count.load(std::memory_order_relaxed), kMirrorCounterCap);
    const std::uint64_t ng = std::min<std::uint64_t>(
        m->gauge_count.load(std::memory_order_relaxed), kMirrorGaugeCap);
    snap.counters.assign(nc, 0);
    snap.gauges.assign(ng, 0);
    for (std::uint64_t i = 0; i < nc; ++i) {
      snap.counters[i] = m->counters[i].load(std::memory_order_relaxed);
    }
    for (std::uint64_t i = 0; i < ng; ++i) {
      snap.gauges[i] = m->gauges[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (m->version.load(std::memory_order_relaxed) == v1) {
      snap.torn = false;
      return snap;
    }
  }
  // A producer frozen mid-write (crashed under the seqlock) never closes
  // the version; report what we copied, marked torn.
  snap.torn = true;
  return snap;
}

CrashSalvage SegmentReader::salvage_crash() const {
  const auto* cr =
      reinterpret_cast<const CrashRegion*>(base_ + geom_.crash_off);
  const char* text = base_ + geom_.crash_off + sizeof(CrashRegion);
  CrashSalvage out;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t v1 = cr->version.load(std::memory_order_acquire);
    out.kind = cr->kind.load(std::memory_order_acquire);
    if (out.kind == kCrashEmpty) return out;
    const std::uint32_t len = std::min(
        cr->length.load(std::memory_order_acquire), geom_.crash_capacity);
    out.ns = cr->ns.load(std::memory_order_acquire);
    out.text.assign(text, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if ((v1 & 1) == 0 &&
        cr->version.load(std::memory_order_relaxed) == v1) {
      out.torn = false;
      return out;
    }
  }
  out.torn = true;  // producer died mid-snapshot: salvage is best-effort
  return out;
}

bool SegmentReader::unlink_segment() noexcept {
  return ::shm_unlink(("/" + name_).c_str()) == 0;
}

}  // namespace orca::shm
