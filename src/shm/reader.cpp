#include "shm/reader.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace orca::shm {

std::vector<SegmentName> discover_segments(const std::string& prefix) {
  std::vector<SegmentName> out;
  if (prefix.empty()) return out;
  DIR* dir = ::opendir("/dev/shm");
  if (dir == nullptr) return out;
  const std::string want = prefix + ".";
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name(ent->d_name);
    if (name.rfind(want, 0) != 0) continue;
    const std::string rest = name.substr(want.size());
    const std::size_t dot = rest.find('.');
    const std::string pid_text =
        dot == std::string::npos ? rest : rest.substr(0, dot);
    if (pid_text.empty() ||
        pid_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentName seg;
    seg.name = name;
    seg.pid = std::strtoll(pid_text.c_str(), nullptr, 10);
    out.push_back(std::move(seg));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const SegmentName& a, const SegmentName& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

void set_error(std::string* error, const std::string& text) {
  if (error != nullptr) *error = text;
}

}  // namespace

std::unique_ptr<SegmentReader> SegmentReader::attach(const std::string& name,
                                                     std::string* error) {
  const std::string path = "/" + name;
  // O_RDWR even though we never store: PROT_READ-only mappings of a
  // segment full of std::atomic loads are fine, but keeping the option to
  // bump readers_attached (a write) costs nothing and documents intent.
  const int fd = ::shm_open(path.c_str(), O_RDWR, 0);
  if (fd < 0) {
    set_error(error, "shm_open failed: " + std::string(std::strerror(errno)));
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(SegmentHeader))) {
    set_error(error, "segment smaller than its header");
    ::close(fd);
    return nullptr;
  }
  const auto mapped = static_cast<std::uint64_t>(st.st_size);
  void* base = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    set_error(error, "mmap failed: " + std::string(std::strerror(errno)));
    return nullptr;
  }
  auto* header = static_cast<SegmentHeader*>(base);
  if (header->magic != kMagic) {
    set_error(error, "bad magic (not an ORCA segment)");
    ::munmap(base, mapped);
    return nullptr;
  }
  if (header->version != kVersion) {
    set_error(error, "segment version mismatch");
    ::munmap(base, mapped);
    return nullptr;
  }
  if (header->ready.load(std::memory_order_acquire) == 0) {
    set_error(error, "segment still initializing");
    ::munmap(base, mapped);
    return nullptr;
  }
  if (header->segment_bytes > mapped || header->ring_count == 0) {
    set_error(error, "segment geometry out of bounds");
    ::munmap(base, mapped);
    return nullptr;
  }
  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->name_ = name;
  reader->base_ = static_cast<const char*>(base);
  reader->mapped_bytes_ = mapped;
  reader->event_cursors_.resize(header->ring_count);
  reader->sample_cursors_.resize(header->ring_count);
  header->readers_attached.fetch_add(1, std::memory_order_relaxed);
  return reader;
}

SegmentReader::~SegmentReader() {
  if (base_ != nullptr) {
    ::munmap(const_cast<char*>(base_), mapped_bytes_);
  }
}

std::int64_t SegmentReader::owner_pid() const noexcept {
  return header()->owner_pid;
}

std::string SegmentReader::label() const {
  const SegmentHeader* h = header();
  return std::string(h->label,
                     ::strnlen(h->label, sizeof(h->label)));
}

std::uint32_t SegmentReader::ring_count() const noexcept {
  return header()->ring_count;
}

std::uint64_t SegmentReader::created_ns() const noexcept {
  return header()->created_ns;
}

std::uint64_t SegmentReader::events_published() const noexcept {
  return header()->events_published.load(std::memory_order_acquire);
}

std::uint64_t SegmentReader::samples_published() const noexcept {
  return header()->samples_published.load(std::memory_order_acquire);
}

ProducerState SegmentReader::producer_state() const noexcept {
  return static_cast<ProducerState>(
      header()->producer_state.load(std::memory_order_acquire));
}

Poll SegmentReader::poll_event(std::uint32_t ring, Record* out) noexcept {
  const SegmentHeader* h = header();
  return ring_poll(*ring_header(h->event_headers_off, ring),
                   ring_cells(h->event_cells_off, ring, h->event_capacity),
                   h->event_capacity - 1, h->event_capacity,
                   event_cursors_[ring], out);
}

Poll SegmentReader::poll_sample(std::uint32_t ring, Record* out) noexcept {
  const SegmentHeader* h = header();
  return ring_poll(*ring_header(h->sample_headers_off, ring),
                   ring_cells(h->sample_cells_off, ring, h->sample_capacity),
                   h->sample_capacity - 1, h->sample_capacity,
                   sample_cursors_[ring], out);
}

void SegmentReader::finalize_ring(std::uint32_t ring) noexcept {
  const SegmentHeader* h = header();
  cursor_finalize(*ring_header(h->event_headers_off, ring),
                  event_cursors_[ring]);
  cursor_finalize(*ring_header(h->sample_headers_off, ring),
                  sample_cursors_[ring]);
}

std::uint64_t SegmentReader::total_read() const noexcept {
  std::uint64_t n = 0;
  for (const Cursor& c : event_cursors_) n += c.read;
  for (const Cursor& c : sample_cursors_) n += c.read;
  return n;
}

std::uint64_t SegmentReader::total_lost() const noexcept {
  std::uint64_t n = 0;
  for (const Cursor& c : event_cursors_) n += c.lost;
  for (const Cursor& c : sample_cursors_) n += c.lost;
  return n;
}

std::uint64_t SegmentReader::total_produced() const noexcept {
  const SegmentHeader* h = header();
  std::uint64_t n = 0;
  for (std::uint32_t r = 0; r < h->ring_count; ++r) {
    n += ring_header(h->event_headers_off, r)
             ->tail.load(std::memory_order_acquire);
    n += ring_header(h->sample_headers_off, r)
             ->tail.load(std::memory_order_acquire);
  }
  return n;
}

Liveness SegmentReader::check_liveness(std::uint64_t now_ns,
                                       unsigned grace) noexcept {
  const SegmentHeader* h = header();
  if (producer_state() == ProducerState::kFinalized) {
    return Liveness::kFinalized;
  }
  const std::uint32_t sense =
      h->heartbeat_sense.load(std::memory_order_acquire);
  if (last_flip_local_ns_ == 0 || sense != last_sense_) {
    last_sense_ = sense;
    last_flip_local_ns_ = now_ns;
    return Liveness::kAlive;
  }
  const std::uint64_t interval_ns =
      static_cast<std::uint64_t>(h->heartbeat_interval_ms) * 1000000ull;
  const std::uint64_t budget =
      std::max<std::uint64_t>(interval_ns * grace, 200000000ull);  // >=200ms
  if (now_ns - last_flip_local_ns_ < budget) return Liveness::kAlive;
  // Pulse stopped. Only the kernel can confirm death: a SIGSTOPped or
  // swap-thrashed producer is late, not dead.
  if (::kill(static_cast<pid_t>(h->owner_pid), 0) != 0 && errno == ESRCH) {
    return Liveness::kDead;
  }
  return Liveness::kAlive;
}

MirrorSnapshot SegmentReader::telemetry_snapshot() const {
  const auto* m = reinterpret_cast<const TelemetryMirror*>(
      base_ + header()->telemetry_off);
  MirrorSnapshot snap;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t v1 = m->version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // writer active
    const std::uint64_t nc = std::min<std::uint64_t>(
        m->counter_count.load(std::memory_order_relaxed), kMirrorCounterCap);
    const std::uint64_t ng = std::min<std::uint64_t>(
        m->gauge_count.load(std::memory_order_relaxed), kMirrorGaugeCap);
    snap.counters.assign(nc, 0);
    snap.gauges.assign(ng, 0);
    for (std::uint64_t i = 0; i < nc; ++i) {
      snap.counters[i] = m->counters[i].load(std::memory_order_relaxed);
    }
    for (std::uint64_t i = 0; i < ng; ++i) {
      snap.gauges[i] = m->gauges[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (m->version.load(std::memory_order_relaxed) == v1) {
      snap.torn = false;
      return snap;
    }
  }
  // A producer frozen mid-write (crashed under the seqlock) never closes
  // the version; report what we copied, marked torn.
  snap.torn = true;
  return snap;
}

CrashSalvage SegmentReader::salvage_crash() const {
  const SegmentHeader* h = header();
  const auto* cr =
      reinterpret_cast<const CrashRegion*>(base_ + h->crash_off);
  const char* text = base_ + h->crash_off + sizeof(CrashRegion);
  CrashSalvage out;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t v1 = cr->version.load(std::memory_order_acquire);
    out.kind = cr->kind.load(std::memory_order_acquire);
    if (out.kind == kCrashEmpty) return out;
    const std::uint32_t len = std::min(
        cr->length.load(std::memory_order_acquire), h->crash_capacity);
    out.ns = cr->ns.load(std::memory_order_acquire);
    out.text.assign(text, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if ((v1 & 1) == 0 &&
        cr->version.load(std::memory_order_relaxed) == v1) {
      out.torn = false;
      return out;
    }
  }
  out.torn = true;  // producer died mid-snapshot: salvage is best-effort
  return out;
}

bool SegmentReader::unlink_segment() noexcept {
  return ::shm_unlink(("/" + name_).c_str()) == 0;
}

}  // namespace orca::shm
