#include "shm/validate.hpp"

#include <cstring>

#include "shm/layout.hpp"

namespace orca::shm {
namespace {

bool fail(std::string* why, const std::string& text) {
  if (why != nullptr) *why = text;
  return false;
}

bool is_pow2(std::uint32_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// True when `count` elements of `elem` bytes starting at `off` fit inside
/// `limit`. Division form: no `off + count * elem` intermediate, so a
/// hostile header cannot wrap the check past 2^64.
bool section_fits(std::uint64_t off, std::uint64_t count, std::uint64_t elem,
                  std::uint64_t limit) noexcept {
  if (off > limit) return false;
  if (elem == 0 || count == 0) return true;
  return count <= (limit - off) / elem;
}

}  // namespace

bool validate_segment(const SegmentHeader& h, std::uint64_t mapped_bytes,
                      std::string* why) {
  if (mapped_bytes < sizeof(SegmentHeader)) {
    return fail(why, "mapping smaller than the segment header");
  }
  if (h.magic != kMagic) return fail(why, "bad magic (not an ORCA segment)");
  if (h.version != kVersion) return fail(why, "segment version mismatch");
  if (h.header_bytes < sizeof(SegmentHeader)) {
    return fail(why, "header_bytes smaller than SegmentHeader");
  }
  if (h.segment_bytes > mapped_bytes) {
    return fail(why, "segment_bytes exceeds the mapped size");
  }
  if (h.segment_bytes < sizeof(SegmentHeader)) {
    return fail(why, "segment_bytes smaller than the header");
  }
  const std::uint64_t limit = h.segment_bytes;

  if (h.ring_count == 0) return fail(why, "ring_count is zero");
  if (h.ring_count > kMaxRingCount) {
    return fail(why, "ring_count exceeds the sanity ceiling");
  }
  if (!is_pow2(h.event_capacity) || h.event_capacity > kMaxRingCapacity) {
    return fail(why, "event_capacity not a bounded power of two");
  }
  if (!is_pow2(h.sample_capacity) || h.sample_capacity > kMaxRingCapacity) {
    return fail(why, "sample_capacity not a bounded power of two");
  }
  if (h.crash_capacity > kMaxCrashCapacity) {
    return fail(why, "crash_capacity exceeds the sanity ceiling");
  }

  // Section extents. Every offset must land past the header (the producer
  // publishes geometry exactly once; an offset inside the header aliases
  // live handshake atomics) and every section must fit below limit.
  const std::uint64_t sections[] = {h.event_headers_off, h.sample_headers_off,
                                    h.event_cells_off, h.sample_cells_off,
                                    h.telemetry_off, h.crash_off};
  for (const std::uint64_t off : sections) {
    if (off < sizeof(SegmentHeader)) {
      return fail(why, "section offset aliases the segment header");
    }
    if (off % alignof(RingCell) != 0) {
      return fail(why, "section offset not 8-byte aligned");
    }
  }
  // RingHeader is alignas(64): casting a misaligned offset to RingHeader*
  // is UB before the first atomic load, so the banks get the strict check.
  if (h.event_headers_off % alignof(RingHeader) != 0 ||
      h.sample_headers_off % alignof(RingHeader) != 0) {
    return fail(why, "ring header bank not cacheline aligned");
  }
  if (!section_fits(h.event_headers_off, h.ring_count, sizeof(RingHeader),
                    limit)) {
    return fail(why, "event ring headers exceed segment_bytes");
  }
  if (!section_fits(h.sample_headers_off, h.ring_count, sizeof(RingHeader),
                    limit)) {
    return fail(why, "sample ring headers exceed segment_bytes");
  }
  // Cell banks are ring_count * capacity cells; fold the product into the
  // count argument via a division-guarded multiply.
  const std::uint64_t event_cells =
      static_cast<std::uint64_t>(h.ring_count) * h.event_capacity;
  const std::uint64_t sample_cells =
      static_cast<std::uint64_t>(h.ring_count) * h.sample_capacity;
  if (!section_fits(h.event_cells_off, event_cells, sizeof(RingCell), limit)) {
    return fail(why, "event cells exceed segment_bytes");
  }
  if (!section_fits(h.sample_cells_off, sample_cells, sizeof(RingCell),
                    limit)) {
    return fail(why, "sample cells exceed segment_bytes");
  }
  if (!section_fits(h.telemetry_off, 1, sizeof(TelemetryMirror), limit)) {
    return fail(why, "telemetry mirror exceeds segment_bytes");
  }
  if (!section_fits(h.crash_off, 1, sizeof(CrashRegion), limit) ||
      !section_fits(h.crash_off + sizeof(CrashRegion), h.crash_capacity, 1,
                    limit)) {
    return fail(why, "crash region exceeds segment_bytes");
  }

  // The label is rendered into reports; an un-terminated one would make
  // every later strnlen-bounded copy carry 64 bytes of attacker-chosen
  // junk and, worse, invites unbounded reads in naive consumers.
  if (std::memchr(h.label, '\0', sizeof(h.label)) == nullptr) {
    return fail(why, "label not NUL-terminated");
  }
  return true;
}

}  // namespace orca::shm
