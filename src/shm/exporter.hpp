/// \file exporter.hpp
/// In-process side of the shm export layer (docs/FLEET.md): maps a named
/// segment in /dev/shm and mirrors the runtime's event stream, SIGPROF
/// samples, telemetry metrics, and crash-dump state into it so an external
/// daemon (orcamon) can attach at any time.
///
/// Arming is process-global and reference-counted, exactly like
/// telemetry::arm(): MiniMPI ranks each own a Runtime inside one process,
/// and they all share one segment. The first Runtime whose config sets
/// `shm_export` creates the segment; the last one out finalizes and
/// unlinks it.
///
/// The disarmed hot path is one acquire load + branch (the same budget as
/// the telemetry hooks — see DESIGN.md §5.1): `mirror_event` reads a
/// process-global exporter pointer and returns when it is null. Armed, the
/// push is wait-free and async-signal-safe (layout.hpp's broadcast push),
/// so the SIGPROF sampler mirrors through the same hook.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace orca::shm {

struct SegmentHeader;

/// Creation-time options, filled from RuntimeConfig by the runtime.
struct ExporterOptions {
  /// Segment name *without* the leading slash: "<prefix>.<pid>.<seq>".
  std::string name;
  std::string label;                   ///< display name for fleet reports
  std::uint32_t ring_count = 65;       ///< one per thread slot (gtid)
  std::uint32_t event_capacity = 4096; ///< cells per event ring
  std::uint32_t sample_capacity = 1024;
  std::uint32_t crash_capacity = 4096; ///< crash-region text bytes
  std::uint32_t heartbeat_ms = 50;
};

class ShmExporter;

namespace detail {
/// Process-global armed exporter. Plain namespace-scope atomic so the
/// disarmed fast path has no guard variable.
extern std::atomic<ShmExporter*> g_exporter;

/// Out-of-line armed paths (exporter.cpp) so the inline hooks stay tiny.
void publish_event(ShmExporter* e, int tid, int event) noexcept;
void publish_sample(ShmExporter* e, int tid, int state,
                    std::uint64_t region) noexcept;
}  // namespace detail

inline bool export_armed() noexcept {
  return detail::g_exporter.load(std::memory_order_acquire) != nullptr;
}

/// Hot hook: mirror one collector event into the shm segment. Disarmed
/// cost is the single load + branch; armed cost is one clock read and one
/// wait-free broadcast push. Safe from signal handlers.
inline void mirror_event(int tid, int event) noexcept {
  ShmExporter* e = detail::g_exporter.load(std::memory_order_acquire);
  if (e == nullptr) return;
  detail::publish_event(e, tid, event);
}

/// Same, for SIGPROF samples (state + current region id).
inline void mirror_sample(int tid, int state, std::uint64_t region) noexcept {
  ShmExporter* e = detail::g_exporter.load(std::memory_order_acquire);
  if (e == nullptr) return;
  detail::publish_sample(e, tid, state, region);
}

// ---------------------------------------------------------------------------
// Process-global arming (refcounted).

/// Arm the process exporter. The first call creates the segment (later
/// calls just bump the refcount; their options are ignored — one process,
/// one segment). Returns false when segment creation failed, in which case
/// the refcount is *not* taken and the runtime runs without export.
bool arm(const ExporterOptions& opts);

/// Balance one successful arm(). The last disarm finalizes the segment
/// (producer_state = kFinalized, final telemetry mirror + totals), stops
/// the heartbeat, and unlinks the name. Attached readers keep their
/// mapping; new readers get ENOENT.
void disarm();

/// Name of the armed segment ("" when disarmed) — tests and diagnostics.
std::string armed_segment_name();

/// "<prefix>.<pid>.<seq>" with a process-unique seq, the canonical segment
/// name shape discover_segments() and the stale-segment reaper parse.
std::string default_segment_name(const std::string& prefix);

/// Async-signal-safe postmortem: write the crash section into the shm
/// crash region (kind = postmortem) and, when `fd >= 0`, mirror the same
/// key/value lines into the crash-dump file. One-shot; later calls no-op.
/// Wired into resilience::register_crash_section by the runtime.
void crash_postmortem(int fd) noexcept;

// ---------------------------------------------------------------------------
// Stale-segment hygiene (satellite: crashed runs leave /orca.* behind).

/// Unlink every "/dev/shm/<prefix>.<pid>.*" segment whose owner pid (parsed
/// from the name) no longer exists (kill(pid, 0) == ESRCH). Segments with
/// unparseable names or live owners are left alone. Returns the number of
/// segments removed. Called by the runtime before arming and by ci.sh
/// (shell equivalent) before test runs.
std::size_t cleanup_stale_segments(const std::string& prefix);

}  // namespace orca::shm
