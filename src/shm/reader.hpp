/// \file reader.hpp
/// Out-of-process side of the shm export layer: discover segments in
/// /dev/shm, attach (read-only semantics — readers never store into the
/// segment), drain the broadcast rings with private cursors, watch the
/// sense-reversing heartbeat, and salvage the crash region when the
/// producer dies. This is what orcamon (src/tool/orcamon) is built from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shm/layout.hpp"

namespace orca::shm {

/// One discovered segment name (no leading slash) + the owner pid parsed
/// out of it.
struct SegmentName {
  std::string name;
  std::int64_t pid = 0;
};

/// Scan /dev/shm for "<prefix>.<pid>.<seq>" segments, sorted by name.
std::vector<SegmentName> discover_segments(const std::string& prefix);

/// Consistent telemetry-mirror snapshot (seqlock copy-out).
struct MirrorSnapshot {
  bool torn = false;  ///< producer died mid-write; values are best-effort
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> gauges;
};

/// Crash-region salvage.
struct CrashSalvage {
  std::uint32_t kind = 0;  ///< kCrashEmpty / kCrashSnapshot / kCrashPostmortem
  bool torn = false;       ///< producer died mid-snapshot
  std::uint64_t ns = 0;    ///< producer clock at last write
  std::string text;        ///< the key/value body
};

/// Producer liveness as judged by the heartbeat watch + kill(pid, 0).
enum class Liveness {
  kAlive,      ///< sense still flipping (or within the grace window)
  kFinalized,  ///< producer declared a clean shutdown
  kDead,       ///< pulse stopped and the owner pid is gone
};

/// Attached view of one producer segment. Not thread-safe as a whole —
/// the fleet monitor partitions rings across shards, and each Cursor must
/// be driven by one thread at a time; the underlying mapping is immutable
/// from this side, so concurrent polls of *different* cursors are fine.
class SegmentReader {
 public:
  /// Map "<name>" (no leading slash). Returns nullptr (with a message in
  /// *error when non-null) on ENOENT, bad magic/version, or a truncated
  /// segment. Attaching mid-initialization (ready == 0) fails softly:
  /// retry on the next discovery pass.
  static std::unique_ptr<SegmentReader> attach(const std::string& name,
                                               std::string* error = nullptr);

  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::int64_t owner_pid() const noexcept;
  std::string label() const;
  std::uint32_t ring_count() const noexcept;
  std::uint64_t created_ns() const noexcept;
  std::uint64_t events_published() const noexcept;
  std::uint64_t samples_published() const noexcept;
  ProducerState producer_state() const noexcept;

  /// Poll one record off the given event/sample ring using the reader's
  /// own cursor for it. Cursors live in the reader (one per ring per
  /// bank), created at attach time.
  Poll poll_event(std::uint32_t ring, Record* out) noexcept;
  Poll poll_sample(std::uint32_t ring, Record* out) noexcept;

  const Cursor& event_cursor(std::uint32_t ring) const noexcept {
    return event_cursors_[ring];
  }
  const Cursor& sample_cursor(std::uint32_t ring) const noexcept {
    return sample_cursors_[ring];
  }

  /// Charge everything still unread on `ring` to the loss books (call
  /// only after the producer is dead/finalized and a drain pass made no
  /// progress).
  void finalize_ring(std::uint32_t ring) noexcept;

  /// Summed loss books across every ring of both banks.
  std::uint64_t total_read() const noexcept;
  std::uint64_t total_lost() const noexcept;
  /// Records the producer claims to have pushed (heartbeat-refreshed sum
  /// of ring tails — exact once finalized/dead and drained).
  std::uint64_t total_produced() const noexcept;

  /// Heartbeat watch: call periodically; it tracks the last sense flip
  /// against the *caller's* clock. `now_ns` is the caller's SteadyClock.
  /// The producer is suspect after `grace` missed intervals (default 8)
  /// and declared dead only when its pid is also gone.
  Liveness check_liveness(std::uint64_t now_ns, unsigned grace = 8) noexcept;

  MirrorSnapshot telemetry_snapshot() const;
  CrashSalvage salvage_crash() const;

  /// Unlink the segment name (reaping a dead producer). The mapping —
  /// ours and any other reader's — survives; only the name goes away.
  bool unlink_segment() noexcept;

 private:
  SegmentReader() = default;

  const SegmentHeader* header() const noexcept {
    return reinterpret_cast<const SegmentHeader*>(base_);
  }
  const RingHeader* ring_header(std::uint64_t off,
                                std::uint32_t ring) const noexcept {
    return reinterpret_cast<const RingHeader*>(base_ + off) + ring;
  }
  const RingCell* ring_cells(std::uint64_t off, std::uint32_t ring,
                             std::uint32_t capacity) const noexcept {
    return reinterpret_cast<const RingCell*>(base_ + off) +
           static_cast<std::size_t>(ring) * capacity;
  }

  std::string name_;
  const char* base_ = nullptr;
  std::uint64_t mapped_bytes_ = 0;
  std::vector<Cursor> event_cursors_;
  std::vector<Cursor> sample_cursors_;

  // Heartbeat watch state (single caller by contract).
  std::uint32_t last_sense_ = 0;
  std::uint64_t last_flip_local_ns_ = 0;
};

}  // namespace orca::shm
