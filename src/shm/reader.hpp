/// \file reader.hpp
/// Out-of-process side of the shm export layer: discover segments in
/// /dev/shm, attach (read-only where possible — readers never need to
/// store into the segment beyond the diagnostic attach counter), drain
/// the broadcast rings with private cursors, watch the sense-reversing
/// heartbeat, and salvage the crash region when the producer dies. This
/// is what orcamon (src/tool/orcamon) is built from.
///
/// ## Trust boundary
///
/// The producer is another process and may be buggy, crashed, or hostile.
/// Attach therefore runs the deep structural validation in validate.hpp
/// and then *snapshots* every geometry field (offsets, capacities, label,
/// owner pid) into the reader: polls dereference only the validated
/// snapshot, so a producer that rewrites its header after we attached can
/// lie in reports at worst — it can never redirect a cursor outside the
/// mapping. Only the handshake atomics (ready, producer_state, heartbeat,
/// published totals) and the ring tails are ever re-read from the shared
/// mapping. The one hazard validation cannot close — the file shrinking
/// under the mapping, which turns loads into SIGBUS — is handled by
/// `revalidate()` (cheap fstat on the kept fd) plus sigbus_guard.hpp
/// around the drain paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shm/layout.hpp"

namespace orca::shm {

/// One discovered segment name (no leading slash) + the owner pid parsed
/// out of it.
struct SegmentName {
  std::string name;
  std::int64_t pid = 0;
};

/// Scan /dev/shm for "<prefix>.<pid>.<seq>" segments, sorted by name.
std::vector<SegmentName> discover_segments(const std::string& prefix);

/// Typed attach failure, so callers can pick a policy per class instead
/// of string-matching: transient failures are retried with backoff,
/// corrupt segments are quarantined immediately, vanished ones dropped.
struct AttachError {
  enum class Kind {
    kNone,       ///< no failure recorded
    kNotFound,   ///< ENOENT: unlinked between discovery and open
    kTransient,  ///< mid-initialization (ready == 0) or racing a resize
    kCorrupt,    ///< failed structural validation; retrying is pointless
    kIo,         ///< open/stat/mmap failed for a system-level reason
  };
  Kind kind = Kind::kNone;
  std::string message;

  bool retryable() const noexcept {
    return kind == Kind::kTransient || kind == Kind::kIo;
  }
};

const char* attach_error_kind_name(AttachError::Kind kind) noexcept;

/// Consistent telemetry-mirror snapshot (seqlock copy-out).
struct MirrorSnapshot {
  bool torn = false;  ///< producer died mid-write; values are best-effort
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> gauges;
};

/// Crash-region salvage.
struct CrashSalvage {
  std::uint32_t kind = 0;  ///< kCrashEmpty / kCrashSnapshot / kCrashPostmortem
  bool torn = false;       ///< producer died mid-snapshot
  std::uint64_t ns = 0;    ///< producer clock at last write
  std::string text;        ///< the key/value body
};

/// Producer liveness as judged by the heartbeat watch + kill(pid, 0).
enum class Liveness {
  kAlive,      ///< sense still flipping (or within the grace window)
  kFinalized,  ///< producer declared a clean shutdown
  kDead,       ///< pulse stopped and the owner pid is gone
  kStalled,    ///< pulse stopped past the hard deadline, pid still exists
};

/// Attached view of one producer segment. Not thread-safe as a whole —
/// the fleet monitor partitions rings across shards, and each Cursor must
/// be driven by one thread at a time; the underlying mapping is immutable
/// from this side, so concurrent polls of *different* cursors are fine.
class SegmentReader {
 public:
  /// Map "<name>" (no leading slash). Returns nullptr with the failure
  /// class in *err (when non-null) on ENOENT, a failed deep validation
  /// (validate.hpp), or a truncated segment. Attaching
  /// mid-initialization (ready == 0) fails kTransient: retry later.
  static std::unique_ptr<SegmentReader> attach(const std::string& name,
                                               AttachError* err);

  /// Legacy convenience: message-only error reporting.
  static std::unique_ptr<SegmentReader> attach(const std::string& name,
                                               std::string* error = nullptr);

  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::int64_t owner_pid() const noexcept { return owner_pid_; }
  const std::string& label() const noexcept { return label_; }
  std::uint32_t ring_count() const noexcept { return geom_.ring_count; }
  std::uint64_t created_ns() const noexcept { return created_ns_; }
  std::uint64_t events_published() const noexcept;
  std::uint64_t samples_published() const noexcept;
  ProducerState producer_state() const noexcept;

  /// True while the reader could write into the mapping (the attach
  /// counter bump); false when the segment was opened read-only.
  bool writable() const noexcept { return writable_; }

  /// Re-check that the file behind the mapping is still at least as large
  /// as what we mapped (cheap fstat on the kept fd). False — with a
  /// reason in *why when non-null — means the producer truncated the
  /// segment: every further dereference risks SIGBUS and the caller
  /// should quarantine this reader.
  bool revalidate(std::string* why = nullptr) const noexcept;

  /// Poll one record off the given event/sample ring using the reader's
  /// own cursor for it. Cursors live in the reader (one per ring per
  /// bank), created at attach time.
  Poll poll_event(std::uint32_t ring, Record* out) noexcept;
  Poll poll_sample(std::uint32_t ring, Record* out) noexcept;

  const Cursor& event_cursor(std::uint32_t ring) const noexcept {
    return event_cursors_[ring];
  }
  const Cursor& sample_cursor(std::uint32_t ring) const noexcept {
    return sample_cursors_[ring];
  }

  /// Charge everything still unread on `ring` to the loss books (call
  /// only after the producer is dead/finalized and a drain pass made no
  /// progress).
  void finalize_ring(std::uint32_t ring) noexcept;

  /// Summed loss books across every ring of both banks.
  std::uint64_t total_read() const noexcept;
  std::uint64_t total_lost() const noexcept;
  /// Records the producer claims to have pushed (heartbeat-refreshed sum
  /// of ring tails — exact once finalized/dead and drained).
  std::uint64_t total_produced() const noexcept;

  /// Heartbeat watch: call periodically; it tracks the last sense flip
  /// against the *caller's* clock. `now_ns` is the caller's SteadyClock.
  /// The producer is suspect after `grace` missed intervals (default 8)
  /// and declared dead only when its pid is also gone — unless
  /// `stall_deadline_ns` > 0 and the pulse has been quiet that long, in
  /// which case a live-pid producer is reported kStalled and the caller
  /// picks the policy (orcamon treats it as dead for draining purposes).
  Liveness check_liveness(std::uint64_t now_ns, unsigned grace = 8,
                          std::uint64_t stall_deadline_ns = 0) noexcept;

  MirrorSnapshot telemetry_snapshot() const;
  CrashSalvage salvage_crash() const;

  /// Unlink the segment name (reaping a dead producer). The mapping —
  /// ours and any other reader's — survives; only the name goes away.
  bool unlink_segment() noexcept;

 private:
  SegmentReader() = default;

  /// Validated attach-time copy of the producer's geometry. Poll paths
  /// dereference only these — never the live header fields.
  struct Snapshot {
    std::uint32_t ring_count = 0;
    std::uint32_t event_capacity = 0;
    std::uint32_t sample_capacity = 0;
    std::uint32_t crash_capacity = 0;
    std::uint64_t event_headers_off = 0;
    std::uint64_t sample_headers_off = 0;
    std::uint64_t event_cells_off = 0;
    std::uint64_t sample_cells_off = 0;
    std::uint64_t telemetry_off = 0;
    std::uint64_t crash_off = 0;
    std::uint32_t heartbeat_interval_ms = 0;
  };

  const SegmentHeader* header() const noexcept {
    return reinterpret_cast<const SegmentHeader*>(base_);
  }
  const RingHeader* ring_header(std::uint64_t off,
                                std::uint32_t ring) const noexcept {
    return reinterpret_cast<const RingHeader*>(base_ + off) + ring;
  }
  const RingCell* ring_cells(std::uint64_t off, std::uint32_t ring,
                             std::uint32_t capacity) const noexcept {
    return reinterpret_cast<const RingCell*>(base_ + off) +
           static_cast<std::size_t>(ring) * capacity;
  }

  std::string name_;
  const char* base_ = nullptr;
  std::uint64_t mapped_bytes_ = 0;
  int fd_ = -1;          ///< kept open for revalidate()
  bool writable_ = false;
  Snapshot geom_;
  std::string label_;
  std::int64_t owner_pid_ = 0;
  std::uint64_t created_ns_ = 0;
  std::vector<Cursor> event_cursors_;
  std::vector<Cursor> sample_cursors_;

  // Heartbeat watch state (single caller by contract).
  std::uint32_t last_sense_ = 0;
  std::uint64_t last_flip_local_ns_ = 0;
};

}  // namespace orca::shm
