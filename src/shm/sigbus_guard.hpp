/// \file sigbus_guard.hpp
/// SIGBUS containment for readers of a segment another process controls.
///
/// Structural validation (validate.hpp) proves every offset fits the
/// mapping *we measured at attach time* — but the file behind a MAP_SHARED
/// mapping can shrink afterwards (a hostile or buggy producer calls
/// ftruncate), and the kernel's answer to touching a page past the new
/// EOF is SIGBUS, which no bounds check can see coming. A fleet daemon
/// attached to N untrusted processes must not die because one of them
/// truncated its segment mid-drain.
///
/// `with_sigbus_guard(fn)` runs `fn` with a thread-local escape hatch
/// armed: a SIGBUS raised on this thread while inside the guard longjmps
/// back out and the call returns false. SIGBUS on a thread with no guard
/// armed falls through to whatever disposition was installed before the
/// first guard (crash-dump handlers keep working). Guards nest; the
/// innermost wins.
///
/// Contract for `fn`: it must hold no locks while touching guarded
/// memory and leave only state that tolerates abandonment at an arbitrary
/// instruction (the shm reader's cursors qualify: a torn cursor update
/// is at worst one record of drift, and a guard trip quarantines the
/// whole segment anyway). The jump is taken with sigsetjmp(.., 0) — no
/// signal-mask save/restore syscall — and the handler is installed with
/// SA_NODEFER, so no mask cleanup is owed after the escape.
#pragma once

#include <csetjmp>

namespace orca::shm {

namespace detail {

/// RAII arming of the thread-local escape target. The ctor installs the
/// process-wide SIGBUS handler once (saving the previous disposition for
/// unguarded threads) and pushes `buf`; the dtor pops back to the outer
/// guard, if any.
class SigbusScope {
 public:
  explicit SigbusScope(sigjmp_buf* buf) noexcept;
  ~SigbusScope() noexcept;
  SigbusScope(const SigbusScope&) = delete;
  SigbusScope& operator=(const SigbusScope&) = delete;

 private:
  sigjmp_buf* prev_;
};

}  // namespace detail

/// Run `fn` with SIGBUS containment. Returns false when `fn` was aborted
/// by SIGBUS (the segment shrank under us), true when it ran to the end.
template <typename Fn>
bool with_sigbus_guard(Fn&& fn) noexcept {
  sigjmp_buf buf;
  detail::SigbusScope scope(&buf);
  // The sigsetjmp must sit in this frame: it stays live for the whole of
  // fn(), which is what makes the handler's siglongjmp well-defined.
  if (sigsetjmp(buf, 0) != 0) return false;
  fn();
  return true;
}

}  // namespace orca::shm
