#include "shm/sigbus_guard.hpp"

#include <signal.h>

#include <mutex>

namespace orca::shm {
namespace {

/// Innermost armed escape target on this thread; null = not in a guard.
thread_local sigjmp_buf* t_target = nullptr;

/// Disposition that was installed before the guard armed, replayed
/// verbatim for SIGBUS on unguarded threads (e.g. the crash-dump handler
/// from docs/RESILIENCE.md, or the default core-dumping one).
struct sigaction g_previous;
std::mutex g_install_mu;

void on_sigbus(int sig, siginfo_t* info, void* ucontext) {
  if (t_target != nullptr) {
    siglongjmp(*t_target, 1);
  }
  // Not ours: put the previous disposition back and re-deliver so the
  // process dies (or dumps) exactly as it would have without the guard.
  ::sigaction(SIGBUS, &g_previous, nullptr);
  if ((g_previous.sa_flags & SA_SIGINFO) != 0 &&
      g_previous.sa_sigaction != nullptr) {
    g_previous.sa_sigaction(sig, info, ucontext);
    return;
  }
  if (g_previous.sa_handler != SIG_DFL && g_previous.sa_handler != SIG_IGN &&
      g_previous.sa_handler != nullptr) {
    g_previous.sa_handler(sig);
    return;
  }
  ::raise(SIGBUS);
}

/// Install (or re-install) the guard handler. Re-checked on every guard
/// entry rather than once: the resilience layer also claims SIGBUS when a
/// runtime arms crash dumps, and whichever layer installed *last* must
/// chain to the other — so if someone replaced us, we re-front them and
/// keep their disposition as the unguarded fallthrough.
void ensure_installed() {
  std::scoped_lock lk(g_install_mu);
  struct sigaction current {};
  ::sigaction(SIGBUS, nullptr, &current);
  if ((current.sa_flags & SA_SIGINFO) != 0 &&
      current.sa_sigaction == &on_sigbus) {
    return;  // still fronting
  }
  struct sigaction sa {};
  sa.sa_sigaction = &on_sigbus;
  // SA_NODEFER: the guard's siglongjmp skips the normal handler return,
  // which would otherwise leave SIGBUS blocked forever on this thread.
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGBUS, &sa, &g_previous);
}

}  // namespace

namespace detail {

SigbusScope::SigbusScope(sigjmp_buf* buf) noexcept : prev_(t_target) {
  ensure_installed();
  t_target = buf;
}

SigbusScope::~SigbusScope() noexcept { t_target = prev_; }

}  // namespace detail
}  // namespace orca::shm
