/// \file cacheline.hpp
/// Cache-line geometry helpers used to keep hot shared data off the same
/// line (false-sharing avoidance for thread descriptors, callback tables,
/// and per-thread queues).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace orca {

/// Size in bytes of one destructive-interference cache line.
///
/// `std::hardware_destructive_interference_size` is not usable as a stable
/// ABI constant (it varies with -mtune), so we pin the conventional x86-64
/// value; 64 is also correct for every AArch64 core we care about.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies at least one full cache line.
///
/// Used for arrays indexed by thread id (thread descriptors, per-thread
/// request queues, per-thread sample buffers) where neighbouring entries
/// are written by different threads.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  static_assert(!std::is_reference_v<T>, "CachePadded cannot hold references");

  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(CachePadded<char>) == kCacheLineSize);
static_assert(sizeof(CachePadded<char>) % kCacheLineSize == 0);

}  // namespace orca
