/// \file clock.hpp
/// Time sources for the measurement substrate.
///
/// The paper's prototype tool stores "a sample of a hardware-based time
/// counter" at each event callback (Sec. V). We model that with a
/// `TickSource` abstraction offering two backends:
///  * `TscClock`  — raw time-stamp counter (RDTSC), the hardware counter.
///  * `SteadyClock` — `std::chrono::steady_clock`, the portable fallback.
#pragma once

#include <chrono>
#include <cstdint>

namespace orca {

/// Raw hardware time-stamp counter. Monotonic on every post-2008 x86
/// (invariant TSC), which covers the paper's Xeon E5462 testbed.
struct TscClock {
  static std::uint64_t now() noexcept {
#if defined(__x86_64__)
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
};

/// Portable monotonic clock reporting nanoseconds.
struct SteadyClock {
  static std::uint64_t now() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Seconds since an arbitrary epoch, highest-resolution portable clock.
inline double wall_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple RAII stopwatch measuring wall time in seconds.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(wall_seconds()) {}

  /// Seconds elapsed since construction or the last `reset()`.
  double elapsed() const noexcept { return wall_seconds() - start_; }

  void reset() noexcept { start_ = wall_seconds(); }

 private:
  double start_;
};

}  // namespace orca
