/// \file strutil.hpp
/// printf-style string building (libstdc++ 12 lacks <format>) and the
/// fixed-width text tables the bench binaries print for each paper
/// table/figure.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace orca {

/// vsnprintf into a std::string. Attributes let the compiler check the
/// format string at every call site.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

/// Minimal fixed-width table renderer: the bench harnesses print rows that
/// mirror the paper's tables/figures, and tests assert on cell content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with column auto-sizing; every row is padded to the header
  /// width so ragged rows cannot silently mis-align.
  std::string render() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < header_.size() && c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    std::string out = render_row(header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      rule += (c + 1 < width.size()) ? "+" : "\n";
    }
    out += rule;
    for (const auto& row : rows_) out += render_row(row, width);
    return out;
  }

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  static std::string render_row(const std::vector<std::string>& cells,
                                const std::vector<std::size_t>& width) {
    std::string out;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += ' ';
      out += cell;
      out += std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) out += '|';
    }
    out += '\n';
    return out;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace orca
