/// \file spinlock.hpp
/// Light-weight spin locks for short critical sections inside the runtime.
///
/// Both locks are *yield-friendly*: after a short bounded spin they fall
/// back to `std::this_thread::yield()`. This matters because the runtime
/// must stay live when threads are oversubscribed (the EPCC experiments run
/// 32 "threads" on far fewer cores, exactly as the paper ran 32 threads on
/// a shared Altix).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace orca {

/// CPU pause hint inside spin loops (PAUSE on x86, YIELD on ARM).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Number of busy iterations before a spinning thread starts yielding.
inline constexpr int kSpinBeforeYield = 64;

/// Back-off helper: spin `kSpinBeforeYield` times, then yield to the OS.
class Backoff {
 public:
  void pause() noexcept {
    if (spins_ < kSpinBeforeYield) {
      ++spins_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { spins_ = 0; }

 private:
  int spins_ = 0;
};

/// Test-and-test-and-set spin lock. Satisfies Lockable, so it composes with
/// `std::scoped_lock` / `std::lock_guard` (CP.20: RAII, never plain
/// lock/unlock).
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// FIFO ticket lock: fair under contention, used where starvation would
/// distort wait-state measurements (e.g. the critical-section lock that
/// backs `__ompc_critical`, whose wait time the collector reports).
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != my) backoff.pause();
  }

  bool try_lock() noexcept {
    std::uint32_t cur = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = cur;
    // Only succeed when no one is queued: next == serving.
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace orca
