/// \file rng.hpp
/// Deterministic, fast pseudo-random generators for workload synthesis.
///
/// The NPB analogs (EP in particular) need a splittable counter-based
/// generator so every thread can jump to its slice of the stream without
/// communication — mirroring NPB's own power-of-two LCG "randlc".
#pragma once

#include <cstdint>

namespace orca {

/// SplitMix64: tiny, passes BigCrush, ideal for seeding and for
/// counter-based splitting (stateless `at(i)` addressing).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// The i-th element of the stream for `seed`, computed without stepping.
  static std::uint64_t at(std::uint64_t seed, std::uint64_t i) noexcept {
    std::uint64_t z = seed + (i + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0,1) for stream position `i` (splittable form).
  static double double_at(std::uint64_t seed, std::uint64_t i) noexcept {
    return static_cast<double>(at(seed, i) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// NPB's "randlc" linear congruential generator (a = 5^13, mod 2^46),
/// reimplemented so the EP analog reproduces the reference random-pair
/// acceptance pattern. Operates in exact integer arithmetic.
class NpbRandlc {
 public:
  static constexpr std::uint64_t kMod = 1ULL << 46;
  static constexpr std::uint64_t kA = 1220703125ULL;  // 5^13

  explicit NpbRandlc(std::uint64_t seed = 271828183ULL) noexcept
      : state_(seed % kMod) {}

  /// Next uniform double in (0, 1); advances the state by one step.
  double next() noexcept {
    state_ = (mulmod(kA, state_));
    return static_cast<double>(state_) * 0x1.0p-46;
  }

  /// Jump the state forward by `n` steps in O(log n) (used by EP to give
  /// each thread an independent slice, as the NPB reference code does).
  void jump(std::uint64_t n) noexcept {
    std::uint64_t an = powmod(kA, n);
    state_ = mulmod2(an, state_);
  }

  std::uint64_t state() const noexcept { return state_; }

 private:
  static std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) noexcept {
    return (static_cast<unsigned __int128>(a) * b) % kMod;
  }
  static std::uint64_t mulmod2(std::uint64_t a, std::uint64_t b) noexcept {
    return mulmod(a, b);
  }
  static std::uint64_t powmod(std::uint64_t a, std::uint64_t n) noexcept {
    std::uint64_t result = 1;
    std::uint64_t base = a % kMod;
    while (n > 0) {
      if (n & 1) result = mulmod(result, base);
      base = mulmod(base, base);
      n >>= 1;
    }
    return result;
  }

  std::uint64_t state_;
};

}  // namespace orca
