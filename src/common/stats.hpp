/// \file stats.hpp
/// Streaming statistics used by the benchmark harnesses (EPCC reports mean
/// and standard deviation over outer repetitions; the NPB harness reports
/// run-to-run deviation, which the paper bounds at "< 2 secs").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace orca {

/// Welford single-pass accumulator: mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile helper (EPCC-style outlier rejection keeps samples
/// within mean ± 3 sigma; we also expose the median for robust reporting).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double median() const { return percentile(0.5); }

  RunningStats stats() const {
    RunningStats s;
    for (double x : samples_) s.add(x);
    return s;
  }

  /// EPCC-style trimmed stats: drop samples outside mean ± 3 stddev.
  RunningStats trimmed_stats() const {
    const RunningStats all = stats();
    RunningStats out;
    const double lo = all.mean() - 3.0 * all.stddev();
    const double hi = all.mean() + 3.0 * all.stddev();
    for (double x : samples_) {
      if (x >= lo && x <= hi) out.add(x);
    }
    return out;
  }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace orca
