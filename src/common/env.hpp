/// \file env.hpp
/// Environment-variable parsing for runtime ICVs (OMP_NUM_THREADS,
/// OMP_SCHEDULE, ...) and ORCA's own tuning knobs.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace orca::env {

/// Raw lookup; empty optional when the variable is unset.
inline std::optional<std::string> get(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

/// Parse an integer environment variable; returns `fallback` when unset or
/// malformed (malformed values are ignored rather than fatal, matching how
/// OpenMP runtimes treat bad ICV strings).
inline long get_long(const char* name, long fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str()) return fallback;
  return parsed;
}

inline int get_int(const char* name, int fallback) {
  return static_cast<int>(get_long(name, fallback));
}

/// Accepts "1/0, true/false, yes/no, on/off" case-insensitively.
inline bool get_bool(const char* name, bool fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  std::string s;
  s.reserve(v->size());
  for (char c : *v) s.push_back(static_cast<char>(std::tolower(c)));
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

/// Warn-and-default integer knob reader: the implementation behind
/// `RuntimeConfig::env_long`, hoisted here so daemon-side code (orcamon)
/// that deliberately does not link orca_runtime reads its ORCA_MON_* knobs
/// with the same one-voice diagnostic — "ORCA: ignoring invalid
/// NAME=\"...\" (expected ...); keeping ...". Unset returns `fallback`; a
/// value that fails to parse in full or is below `min_value` warns and
/// returns `fallback`.
inline long long_or(const char* name, long fallback, long min_value,
                    const char* expected) {
  const auto text = get(name);
  if (!text) return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text->c_str(), &end, 10);
  // errno check: strtol silently clamps "99999999999999999999" to
  // LONG_MAX with a fully consumed string, which would otherwise pass
  // validation and look like a deliberate (absurd) setting.
  if (errno == ERANGE || end == text->c_str() || *end != '\0' ||
      value < min_value) {
    std::fprintf(stderr,
                 "ORCA: ignoring invalid %s=\"%s\" (expected %s); "
                 "keeping %ld\n",
                 name, text->c_str(), expected, fallback);
    return fallback;
  }
  return value;
}

/// Split a string on a delimiter, trimming ASCII whitespace from each piece.
inline std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(delim, begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = text.substr(begin, end - begin);
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.front()))) {
      piece.remove_prefix(1);
    }
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.back()))) {
      piece.remove_suffix(1);
    }
    out.emplace_back(piece);
    if (end == text.size()) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace orca::env
