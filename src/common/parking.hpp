/// \file parking.hpp
/// Blocking primitives for the persistent worker pool.
///
/// OpenUH keeps slave threads "sleeping in between non-nested parallel
/// regions" (paper Sec. IV-C1). `Parker` is the piece that implements that
/// sleep: a worker parks on its own epoch counter and the master unparks it
/// by bumping the epoch. A short adaptive spin before blocking keeps fork
/// latency low when regions are back-to-back, while still yielding the CPU
/// under oversubscription.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/spinlock.hpp"

namespace orca {

/// One-producer/one-consumer epoch parker. The consumer calls
/// `wait(last_seen)` and returns once the epoch has advanced past it; the
/// producer calls `signal()` to advance the epoch and wake the consumer.
class Parker {
 public:
  /// Current epoch; the consumer records this before going to work so the
  /// next `wait()` can detect a signal that raced ahead of it.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Block until `epoch() > seen`. Spins briefly first: back-to-back
  /// parallel regions (the EPCC hot loop) then never enter the kernel.
  void wait(std::uint64_t seen) {
    for (int i = 0; i < kSpinBeforeYield; ++i) {
      if (epoch_.load(std::memory_order_acquire) > seen) return;
      cpu_relax();
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return epoch_.load(std::memory_order_acquire) > seen; });
  }

  /// Like `wait()`, but gives up after `timeout`. Returns true when the
  /// epoch advanced, false on timeout. Consumers whose producers signal
  /// opportunistically (the async event drainer) use this as a bounded
  /// backstop against lost wake-ups instead of a seq-cst handshake on the
  /// producer fast path.
  template <typename Rep, typename Period>
  bool wait_for(std::uint64_t seen,
                std::chrono::duration<Rep, Period> timeout) {
    for (int i = 0; i < kSpinBeforeYield; ++i) {
      if (epoch_.load(std::memory_order_acquire) > seen) return true;
      cpu_relax();
    }
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, timeout, [&] {
      return epoch_.load(std::memory_order_acquire) > seen;
    });
  }

  /// Advance the epoch and wake the consumer if it is blocked.
  void signal() {
    {
      // The lock orders the epoch bump with the consumer's predicate check;
      // without it a wait could miss a signal and sleep forever.
      std::scoped_lock lk(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_one();
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Many-waiters completion latch used for join: the master blocks until
/// `count` workers have called `arrive()`. Reusable across generations.
class CountdownEvent {
 public:
  /// Arm the event for `count` arrivals. Must not race with arrive().
  void reset(std::uint32_t count) noexcept {
    remaining_.store(count, std::memory_order_release);
  }

  /// Worker-side: report completion; wakes the waiter on the last arrival.
  void arrive() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::scoped_lock lk(mu_);
      done_.store(true, std::memory_order_release);
      cv_.notify_all();
    }
  }

  /// Master-side: block until all arrivals for this generation occurred.
  void wait() {
    for (int i = 0; i < kSpinBeforeYield; ++i) {
      if (remaining_.load(std::memory_order_acquire) == 0 &&
          done_.load(std::memory_order_acquire)) {
        done_.store(false, std::memory_order_relaxed);
        return;
      }
      cpu_relax();
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return done_.load(std::memory_order_acquire); });
    done_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<bool> done_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace orca
