/// \file buildinfo.hpp
/// One build-info stamp shared by every CLI surface (orcamon,
/// sequence_trace, resilience_smoke): git sha + build type, injected by
/// the top-level CMakeLists as ORCA_GIT_SHA / ORCA_BUILD_TYPE so the
/// fleet report can say exactly which build produced a trace.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#ifndef ORCA_GIT_SHA
#define ORCA_GIT_SHA "unknown"
#endif
#ifndef ORCA_BUILD_TYPE
#define ORCA_BUILD_TYPE "unknown"
#endif

namespace orca::common {

/// "<tool> (orca <sha>, <build-type>)" — the line `--version` prints.
inline std::string version_line(const char* tool) {
  std::string out = tool;
  out += " (orca ";
  out += ORCA_GIT_SHA;
  out += ", ";
  out += ORCA_BUILD_TYPE;
  out += ")";
  return out;
}

/// Scan argv for --version; print the stamp and return true when found
/// (the caller exits 0). Keeps every tool's main() to one line of
/// version plumbing.
inline bool handle_version_flag(int argc, char** argv, const char* tool) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::puts(version_line(tool).c_str());
      return true;
    }
  }
  return false;
}

}  // namespace orca::common
