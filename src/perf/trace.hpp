/// \file trace.hpp
/// On-disk trace spill and reload.
///
/// The paper's workflow is two-phase: the collector records raw samples
/// online, and "reconstructing the callstack to provide a user view of the
/// program is done offline after the application finishes" (Sec. IV).
/// This module is the boundary between the phases: a compact binary trace
/// containing event samples and callstack records, plus a CSV export for
/// human inspection.
#pragma once

#include <string>
#include <vector>

#include "perf/samples.hpp"

namespace orca::perf {

/// Complete content of one trace file.
struct TraceData {
  std::vector<EventSample> samples;
  std::vector<CallstackRecord> callstacks;
};

/// Write `data` to `path` in the ORCA binary trace format (magic
/// "ORCATRC1"). Returns false on I/O failure.
bool write_trace(const std::string& path, const TraceData& data);

/// Read a trace produced by write_trace. Returns false on I/O failure or a
/// malformed/mismatched header.
bool read_trace(const std::string& path, TraceData* out);

/// Export samples as CSV ("ticks,event,tid,region_id") for inspection.
bool write_csv(const std::string& path, const std::vector<EventSample>& samples);

}  // namespace orca::perf
