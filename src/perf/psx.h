/// \file psx.h
/// The libpsx-style C API (paper Sec. IV-F): the auxiliary-library entry
/// points "callable by the collector" that expose callstack retrieval and
/// IP→source mapping. A tool written against this header needs no
/// knowledge of ORCA's C++ internals — mirroring how PerfSuite's libpsx
/// extensions were consumable by any ORA collector.
#ifndef ORCA_PERF_PSX_H
#define ORCA_PERF_PSX_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/// Fill `ips` with up to `max` instruction pointers of the calling
/// thread's stack (innermost first), skipping `skip` innermost frames.
/// Returns the number of frames written.
int psx_callstack_get(const void** ips, int max, int skip);

/// Resolved source info for one instruction pointer.
typedef struct {
  char symbol[256];  /**< demangled symbol / region label ("" if unknown) */
  char file[256];    /**< source file ("" if unknown)                     */
  unsigned line;     /**< source line (0 if unknown)                      */
  int exact;         /**< 1 when resolved through region debug info       */
} psx_source_info;

/// Map `ip` to source coordinates (BFD-equivalent lookup). Returns 0 on
/// success, -1 when nothing at all could be resolved.
int psx_ip_to_source(const void* ip, psx_source_info* out);

/// Read the hardware time counter (TSC when available).
unsigned long long psx_timer_read(void);

/// Convert a tick delta from psx_timer_read to seconds.
double psx_timer_seconds(unsigned long long ticks);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* ORCA_PERF_PSX_H */
