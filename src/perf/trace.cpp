#include "perf/trace.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace orca::perf {
namespace {

constexpr char kMagic[8] = {'O', 'R', 'C', 'A', 'T', 'R', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool write_bytes(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}

bool read_bytes(std::FILE* f, void* p, std::size_t n) {
  return std::fread(p, 1, n, f) == n;
}

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return write_bytes(f, &v, sizeof(T));
}

template <typename T>
bool read_pod(std::FILE* f, T* v) {
  return read_bytes(f, v, sizeof(T));
}

}  // namespace

bool write_trace(const std::string& path, const TraceData& data) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;

  if (!write_bytes(f.get(), kMagic, sizeof(kMagic))) return false;
  const auto n_samples = static_cast<std::uint64_t>(data.samples.size());
  const auto n_stacks = static_cast<std::uint64_t>(data.callstacks.size());
  if (!write_pod(f.get(), n_samples) || !write_pod(f.get(), n_stacks)) {
    return false;
  }
  for (const EventSample& s : data.samples) {
    if (!write_pod(f.get(), s)) return false;
  }
  for (const CallstackRecord& c : data.callstacks) {
    if (!write_pod(f.get(), c.ticks) || !write_pod(f.get(), c.region_id)) {
      return false;
    }
    const auto addr = reinterpret_cast<std::uint64_t>(c.region_fn);
    if (!write_pod(f.get(), addr)) return false;
    const auto depth = static_cast<std::uint64_t>(c.frames.size());
    if (!write_pod(f.get(), depth)) return false;
    for (const void* ip : c.frames) {
      const auto v = reinterpret_cast<std::uint64_t>(ip);
      if (!write_pod(f.get(), v)) return false;
    }
  }
  return true;
}

bool read_trace(const std::string& path, TraceData* out) {
  if (out == nullptr) return false;
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;

  char magic[8] = {};
  if (!read_bytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  std::uint64_t n_samples = 0;
  std::uint64_t n_stacks = 0;
  if (!read_pod(f.get(), &n_samples) || !read_pod(f.get(), &n_stacks)) {
    return false;
  }
  out->samples.clear();
  out->samples.reserve(n_samples);
  for (std::uint64_t i = 0; i < n_samples; ++i) {
    EventSample s;
    if (!read_pod(f.get(), &s)) return false;
    out->samples.push_back(s);
  }
  out->callstacks.clear();
  out->callstacks.reserve(n_stacks);
  for (std::uint64_t i = 0; i < n_stacks; ++i) {
    CallstackRecord c;
    std::uint64_t addr = 0;
    std::uint64_t depth = 0;
    if (!read_pod(f.get(), &c.ticks) || !read_pod(f.get(), &c.region_id) ||
        !read_pod(f.get(), &addr) || !read_pod(f.get(), &depth)) {
      return false;
    }
    if (depth > 1024) return false;  // malformed: implausible stack depth
    c.region_fn = reinterpret_cast<const void*>(addr);
    c.frames.reserve(depth);
    for (std::uint64_t j = 0; j < depth; ++j) {
      std::uint64_t ip = 0;
      if (!read_pod(f.get(), &ip)) return false;
      c.frames.push_back(reinterpret_cast<const void*>(ip));
    }
    out->callstacks.push_back(std::move(c));
  }
  return true;
}

bool write_csv(const std::string& path,
               const std::vector<EventSample>& samples) {
  File f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return false;
  if (std::fputs("ticks,event,tid,region_id\n", f.get()) < 0) return false;
  for (const EventSample& s : samples) {
    if (std::fprintf(f.get(), "%llu,%d,%d,%llu\n",
                     static_cast<unsigned long long>(s.ticks), s.event, s.tid,
                     static_cast<unsigned long long>(s.region_id)) < 0) {
      return false;
    }
  }
  return true;
}

}  // namespace orca::perf
