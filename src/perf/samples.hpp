/// \file samples.hpp
/// Sample storage for the collector tool — the "measurement/storage phase"
/// whose cost dominates the paper's overhead breakdown (Sec. V-B: 81-99% of
/// the observed overhead is measurement/storage, not callbacks).
///
/// Event samples go into preallocated per-thread ring-less buffers (drop +
/// count on overflow, never block); join-time callstack records go into a
/// per-thread growable store, since their cost is exactly what experiment
/// E6 measures.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "testing/fault_injection.hpp"

namespace orca::perf {

/// One event notification sample.
struct EventSample {
  std::uint64_t ticks = 0;      ///< hardware time-counter value
  std::uint64_t region_id = 0;  ///< current parallel region (0 = none)
  std::int32_t event = 0;       ///< OMP_COLLECTORAPI_EVENT value
  std::int32_t tid = 0;         ///< sampling thread's gtid
};

/// One join-time callstack record (implementation model, reconstructed to
/// the user model offline).
struct CallstackRecord {
  std::uint64_t ticks = 0;
  std::uint64_t region_id = 0;
  const void* region_fn = nullptr;        ///< outlined procedure
  std::vector<const void*> frames;        ///< innermost first
};

/// Bounded append-only event buffer for one thread slot. Growth is
/// amortized (the paper's "storage" cost the breakdown experiment
/// measures); beyond the hard cap samples are dropped and counted, never
/// blocking the application.
///
/// Slots are normally single-writer (indexed by gtid), but slot *sharing*
/// is legal — several MiniMPI rank masters all carry gtid 0, and unknown
/// threads clamp to slot 0 — so the write side takes a per-buffer lock
/// (uncontended in the common single-writer case).
class SampleBuffer {
 public:
  /// Set the hard cap and pre-reserve a modest initial block.
  void reserve(std::size_t capacity) {
    std::scoped_lock lk(mu_);
    capacity_ = capacity;
    samples_.reserve(std::min<std::size_t>(capacity, 4096));
  }

  void record(const EventSample& s) {
    // Injected allocation failure behaves exactly like hitting the hard
    // cap: drop and count, never block or throw into the event path.
    if (testing::FaultInjector::alloc_fails(
            testing::FaultPoint::kSampleRecord)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // try_lock, never lock: record() is reachable from a signal handler
    // interrupting the very thread that holds mu_ (a SIGPROF mid-record),
    // where a blocking acquire would self-deadlock. Contention — including
    // that reentrancy case — degrades to drop-and-count, same as the hard
    // cap; dropped_ is atomic so the count never needs the lock.
    if (!mu_.try_lock()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::scoped_lock lk(std::adopt_lock, mu_);
    if (samples_.size() < capacity_) {
      samples_.push_back(s);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Quiescent-side accessor: callers read after the producing threads
  /// have joined (merge/report paths), so no snapshot copy is taken.
  const std::vector<EventSample>& samples() const noexcept { return samples_; }

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void clear() noexcept {
    std::scoped_lock lk(mu_);
    samples_.clear();
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  mutable SpinLock mu_;
  std::size_t capacity_ = 0;
  std::vector<EventSample> samples_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Fixed-capacity, truly async-signal-safe sample lane: one writer (the
/// thread whose signal handler records into it), any number of quiescent
/// readers. The array is preallocated up front — record() performs no
/// allocation, locking, or syscalls, so it is the storage path a SIGPROF
/// handler uses (SampleBuffer, in contrast, may grow its vector and only
/// guarantees deadlock-freedom, not signal-safety). The crash postmortem
/// flusher reads count() with acquire ordering from an arbitrary thread,
/// which is why the counter publishes each slot with release semantics.
class SignalSampleLane {
 public:
  explicit SignalSampleLane(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)),
        slots_(std::make_unique<EventSample[]>(capacity_)) {}

  /// Single-writer append; drop-and-count when full. Safe from a signal
  /// handler running on the owning thread.
  void record(const EventSample& s) noexcept {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[n] = s;
    count_.store(n + 1, std::memory_order_release);
  }

  /// Samples published so far (acquire: the slots below the count are
  /// fully written, even when read from another thread or a crash handler).
  std::size_t count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  const EventSample* data() const noexcept { return slots_.get(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void clear() noexcept {
    count_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_;
  std::unique_ptr<EventSample[]> slots_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Per-thread sample storage for one tool session.
class SampleStore {
 public:
  /// `threads` buffer slots (indexed by gtid), each preallocated to
  /// `capacity` samples.
  SampleStore(std::size_t threads, std::size_t capacity);

  /// Buffer of thread slot `tid` (clamped to the last slot).
  SampleBuffer& buffer(int tid) noexcept;

  /// Append a callstack record for thread slot `tid`.
  void record_callstack(int tid, CallstackRecord record);

  /// All event samples, merged across threads, ordered by tick.
  std::vector<EventSample> merged_samples() const;

  /// All callstack records, merged, ordered by tick.
  std::vector<CallstackRecord> merged_callstacks() const;

  std::uint64_t total_samples() const noexcept;
  std::uint64_t total_dropped() const noexcept;
  std::size_t slots() const noexcept { return event_buffers_.size(); }

  void clear();

 private:
  struct CallstackSlot {
    mutable SpinLock mu;
    std::vector<CallstackRecord> records;
  };

  std::vector<CachePadded<SampleBuffer>> event_buffers_;
  std::vector<CachePadded<CallstackSlot>> callstack_slots_;
};

}  // namespace orca::perf
