/// \file counter.hpp
/// Hardware time-counter abstraction (paper Sec. V: the prototype tool's
/// callback "stores a sample of a hardware-based time counter").
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace orca::perf {

/// Which physical counter backs `HwTimeCounter`.
enum class CounterSource {
  kTsc,     ///< raw RDTSC — the paper's hardware counter
  kSteady,  ///< std::chrono::steady_clock — portable fallback
};

/// Thin façade over the selected time source with tick→seconds conversion.
class HwTimeCounter {
 public:
  explicit HwTimeCounter(CounterSource source = CounterSource::kTsc) noexcept
      : source_(source) {}

  std::uint64_t read() const noexcept {
    return source_ == CounterSource::kTsc ? TscClock::now()
                                          : SteadyClock::now();
  }

  CounterSource source() const noexcept { return source_; }

  /// Convert a tick delta to seconds. TSC frequency is calibrated once per
  /// process against the steady clock (~10 ms of sampling at first use).
  double to_seconds(std::uint64_t ticks) const noexcept {
    if (source_ == CounterSource::kSteady) {
      return static_cast<double>(ticks) * 1e-9;
    }
    return static_cast<double>(ticks) / tsc_hz();
  }

  /// Calibrated TSC frequency in Hz.
  static double tsc_hz() noexcept;

 private:
  CounterSource source_;
};

}  // namespace orca::perf
