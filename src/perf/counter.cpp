#include "perf/counter.hpp"

#include <chrono>
#include <thread>

namespace orca::perf {
namespace {

double calibrate_tsc_hz() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = orca::TscClock::now();
  // 10 ms window: long enough for <0.1% error, short enough to be an
  // acceptable one-time startup cost.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto t1 = clock::now();
  const std::uint64_t c1 = orca::TscClock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  if (seconds <= 0 || c1 <= c0) return 1e9;  // defensive fallback
  return static_cast<double>(c1 - c0) / seconds;
}

}  // namespace

double HwTimeCounter::tsc_hz() noexcept {
  static const double hz = calibrate_tsc_hz();
  return hz;
}

}  // namespace orca::perf
