#include "perf/samples.hpp"

#include <algorithm>
#include <mutex>

namespace orca::perf {

SampleStore::SampleStore(std::size_t threads, std::size_t capacity)
    : event_buffers_(std::max<std::size_t>(threads, 1)),
      callstack_slots_(std::max<std::size_t>(threads, 1)) {
  for (auto& buf : event_buffers_) buf->reserve(capacity);
}

SampleBuffer& SampleStore::buffer(int tid) noexcept {
  const auto slot =
      tid >= 0 ? std::min(static_cast<std::size_t>(tid),
                          event_buffers_.size() - 1)
               : 0;
  return *event_buffers_[slot];
}

void SampleStore::record_callstack(int tid, CallstackRecord record) {
  const auto slot =
      tid >= 0 ? std::min(static_cast<std::size_t>(tid),
                          callstack_slots_.size() - 1)
               : 0;
  CallstackSlot& cs = *callstack_slots_[slot];
  std::scoped_lock lk(cs.mu);
  cs.records.push_back(std::move(record));
}

std::vector<EventSample> SampleStore::merged_samples() const {
  std::vector<EventSample> out;
  for (const auto& buf : event_buffers_) {
    const auto& s = buf->samples();
    out.insert(out.end(), s.begin(), s.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EventSample& a, const EventSample& b) {
                     return a.ticks < b.ticks;
                   });
  return out;
}

std::vector<CallstackRecord> SampleStore::merged_callstacks() const {
  std::vector<CallstackRecord> out;
  for (const auto& slot : callstack_slots_) {
    std::scoped_lock lk(slot->mu);
    out.insert(out.end(), slot->records.begin(), slot->records.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CallstackRecord& a, const CallstackRecord& b) {
                     return a.ticks < b.ticks;
                   });
  return out;
}

std::uint64_t SampleStore::total_samples() const noexcept {
  std::uint64_t n = 0;
  for (const auto& buf : event_buffers_) n += buf->samples().size();
  return n;
}

std::uint64_t SampleStore::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& buf : event_buffers_) n += buf->dropped();
  return n;
}

void SampleStore::clear() {
  for (auto& buf : event_buffers_) buf->clear();
  for (auto& slot : callstack_slots_) {
    std::scoped_lock lk(slot->mu);
    slot->records.clear();
  }
}

}  // namespace orca::perf
