#include "perf/psx.h"

#include <cstring>

#include "perf/counter.hpp"
#include "unwind/backtrace.hpp"
#include "unwind/symbolize.hpp"

namespace {

void copy_bounded(char* dst, std::size_t cap, const std::string& src) {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

const orca::perf::HwTimeCounter& counter() {
  static const orca::perf::HwTimeCounter c(orca::perf::CounterSource::kTsc);
  return c;
}

}  // namespace

extern "C" {

int psx_callstack_get(const void** ips, int max, int skip) {
  if (ips == nullptr || max <= 0) return 0;
  // +1: hide this shim frame as well as the requested skip count.
  const auto stack = orca::unwind::Callstack::capture(skip + 1);
  const int n = std::min<int>(max, static_cast<int>(stack.depth()));
  for (int i = 0; i < n; ++i) ips[i] = stack.frame(static_cast<std::size_t>(i));
  return n;
}

int psx_ip_to_source(const void* ip, psx_source_info* out) {
  if (out == nullptr) return -1;
  const orca::unwind::SymbolInfo info = orca::unwind::symbolize(ip);
  copy_bounded(out->symbol, sizeof(out->symbol), info.symbol);
  copy_bounded(out->file, sizeof(out->file), info.file);
  out->line = info.line;
  out->exact = info.resolution == orca::unwind::Resolution::kRegion ? 1 : 0;
  return info.resolution == orca::unwind::Resolution::kUnknown ? -1 : 0;
}

unsigned long long psx_timer_read(void) { return counter().read(); }

double psx_timer_seconds(unsigned long long ticks) {
  return counter().to_seconds(ticks);
}

}  // extern "C"
