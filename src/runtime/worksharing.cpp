#include <algorithm>
#include <mutex>

#include "runtime/runtime.hpp"

namespace orca::rt {
namespace {

/// Normalized trip count of [lower, upper] step incr; 0 for empty loops.
long trip_count_of(long lower, long upper, long incr) noexcept {
  if (incr > 0) {
    return upper >= lower ? (upper - lower) / incr + 1 : 0;
  }
  if (incr < 0) {
    return lower >= upper ? (lower - upper) / (-incr) + 1 : 0;
  }
  return 0;
}

}  // namespace

WorkshareLoop& Runtime::serial_fallback_loop() noexcept {
  // One per OS thread: orphaned loops execute on the encountering thread
  // alone, so no sharing (and no locking beyond the buffer's own mutex)
  // is ever needed.
  thread_local WorkshareLoop loop;
  return loop;
}

bool Runtime::static_init(ThreadDescriptor& td, Schedule kind, long* lower,
                          long* upper, long* stride, long incr, long chunk) {
  const TeamDescriptor* team = td.team;
  const long n = team != nullptr ? team->size : 1;
  const long tid = td.tid_in_team;

  const long lo = *lower;
  const long trip = trip_count_of(lo, *upper, incr);
  if (trip <= 0) return false;

  if (kind == Schedule::kRuntime) {
    kind = config_.runtime_schedule.kind == Schedule::kStaticChunked
               ? Schedule::kStaticChunked
               : Schedule::kStaticEven;
    if (chunk <= 0) chunk = config_.runtime_schedule.chunk;
  }

  if (kind == Schedule::kStaticChunked && chunk > 0) {
    // Block-cyclic: thread `tid` owns chunks tid, tid+n, tid+2n, ...
    // The caller walks blocks of `chunk` iterations separated by *stride.
    const long first = tid * chunk;
    if (first >= trip) return false;
    *lower = lo + first * incr;
    *upper = lo + (trip - 1) * incr;  // global last iteration; the block
                                      // walker clips each chunk against it
    *stride = n * chunk * incr;
    return true;
  }

  // OMP_STATIC_EVEN (paper Fig. 2): one contiguous block per thread.
  const long per = (trip + n - 1) / n;
  const long first = tid * per;
  if (first >= trip) return false;
  const long last = std::min(first + per, trip) - 1;
  *lower = lo + first * incr;
  *upper = lo + last * incr;
  *stride = incr;
  return true;
}

void Runtime::scheduler_init(ThreadDescriptor& td, Schedule kind, long lower,
                             long upper, long incr, long chunk) {
  if (kind == Schedule::kRuntime) {
    kind = config_.runtime_schedule.kind;
    if (chunk <= 0) chunk = config_.runtime_schedule.chunk;
    if (kind == Schedule::kStaticChunked) kind = Schedule::kDynamic;
  }
  if (chunk <= 0) chunk = 1;

  TeamDescriptor* team = td.team;
  const std::uint64_t seq = ++td.loop_count;

  if (team == nullptr) {
    // Orphaned worksharing outside any region: a private single-thread
    // loop; reuse the recycled team-of-one machinery via a descriptor-local
    // buffer would be overkill — execute as one dynamic loop over the
    // scratch buffer below.
  }
  WorkshareLoop& loop =
      team != nullptr ? team->loop_buffer(seq) : serial_fallback_loop();

  std::scoped_lock lk(loop.init_mu);
  if (loop.sequence != seq || !loop.initialized) {
    // First thread of the team to reach this loop instance publishes it.
    loop.sequence = seq;
    loop.kind = kind;
    loop.lower = lower;
    loop.upper = upper;
    loop.incr = incr == 0 ? 1 : incr;
    loop.chunk = chunk;
    loop.trip_count = trip_count_of(lower, upper, loop.incr);
    loop.next.store(0, std::memory_order_relaxed);
    loop.initialized = true;
    if (team != nullptr) {
      team->ordered_next.store(0, std::memory_order_relaxed);
      std::scoped_lock hwm(team->loop_mu);
      team->loop_hwm = std::max(team->loop_hwm, seq);
    }
  }
}

bool Runtime::schedule_next(ThreadDescriptor& td, long* lower, long* upper) {
  TeamDescriptor* team = td.team;
  WorkshareLoop& loop = team != nullptr ? team->loop_buffer(td.loop_count)
                                        : serial_fallback_loop();
  const long trip = loop.trip_count;
  if (trip <= 0) return false;

  long begin = 0;
  long size = 0;
  if (loop.kind == Schedule::kGuided) {
    // Guided: each grab takes remaining/(2*team) iterations, never less
    // than the chunk floor, claimed by CAS on the shared cursor.
    const long n = team != nullptr ? team->size : 1;
    long cur = loop.next.load(std::memory_order_relaxed);
    for (;;) {
      const long remaining = trip - cur;
      if (remaining <= 0) return false;
      size = std::max(loop.chunk, (remaining + 2 * n - 1) / (2 * n));
      size = std::min(size, remaining);
      if (loop.next.compare_exchange_weak(cur, cur + size,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        begin = cur;
        break;
      }
    }
  } else {
    // Dynamic (and the static kinds routed here by Schedule::kRuntime):
    // fixed chunks, first come first served.
    begin = loop.next.fetch_add(loop.chunk, std::memory_order_acq_rel);
    if (begin >= trip) return false;
    size = std::min(loop.chunk, trip - begin);
  }

  *lower = loop.lower + begin * loop.incr;
  *upper = loop.lower + (begin + size - 1) * loop.incr;
  return true;
}

bool Runtime::single_begin(ThreadDescriptor& td) {
  const std::uint64_t ticket = ++td.single_count;
  TeamDescriptor* team = td.team;
  if (team == nullptr || team->size <= 1) {
    event(td, OMP_EVENT_THR_BEGIN_SINGLE);
    return true;
  }
  // The k-th single of the region is executed by whichever thread advances
  // the claim counter from k-1 to k. A thread that arrives before the
  // previous single was claimed waits for the counter to catch up (nowait
  // singles make that possible).
  Backoff backoff;
  for (;;) {
    std::uint64_t claimed = team->single_claimed.load(std::memory_order_acquire);
    if (claimed >= ticket) return false;  // someone else won this single
    if (claimed == ticket - 1) {
      std::uint64_t expected = ticket - 1;
      if (team->single_claimed.compare_exchange_weak(
              expected, ticket, std::memory_order_acq_rel)) {
        // Paper IV-C6: default state inside single is THR_WORK_STATE.
        td.set_state(THR_WORK_STATE);
        event(td, OMP_EVENT_THR_BEGIN_SINGLE);
        return true;
      }
      continue;
    }
    backoff.pause();  // claimed < ticket-1: an earlier single is unclaimed
  }
}

void Runtime::single_end(ThreadDescriptor& td, bool executed) {
  // The extra end-of-single runtime call exists purely so the exit event
  // is captured (paper IV-C6).
  if (executed) event(td, OMP_EVENT_THR_END_SINGLE);
}

bool Runtime::master_begin(ThreadDescriptor& td) {
  if (td.tid_in_team != 0) return false;
  td.set_state(THR_WORK_STATE);  // paper IV-C6 default
  event(td, OMP_EVENT_THR_BEGIN_MASTER);
  return true;
}

void Runtime::master_end(ThreadDescriptor& td) {
  if (td.tid_in_team != 0) return;
  event(td, OMP_EVENT_THR_END_MASTER);
}

void Runtime::ordered_begin(ThreadDescriptor& td, long iteration) {
  TeamDescriptor* team = td.team;
  if (team == nullptr) {
    if (config_.ordered_events) {
      event(td, OMP_EVENT_THR_BEGIN_ORDERED);
    }
    return;
  }
  if (team->ordered_next.load(std::memory_order_acquire) != iteration) {
    ++td.ordered_wait_id;
    const auto prev = td.get_state();
    td.set_state(THR_ODWT_STATE);
    if (config_.ordered_events) {
      event(td, OMP_EVENT_THR_BEGIN_ODWT);
    }
    Backoff backoff;
    while (team->ordered_next.load(std::memory_order_acquire) != iteration) {
      backoff.pause();
    }
    if (config_.ordered_events) {
      event(td, OMP_EVENT_THR_END_ODWT);
    }
    td.set_state(prev == THR_ODWT_STATE ? THR_WORK_STATE : prev);
  }
  if (config_.ordered_events) {
    event(td, OMP_EVENT_THR_BEGIN_ORDERED);
  }
}

void Runtime::ordered_end(ThreadDescriptor& td) {
  TeamDescriptor* team = td.team;
  if (config_.ordered_events) {
    event(td, OMP_EVENT_THR_END_ORDERED);
  }
  if (team != nullptr) {
    team->ordered_next.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace orca::rt
