/// Explicit tasking (OpenMP 3.0) — the ORCA implementation of the paper's
/// future work ("More work will be needed to extend the interface to
/// handle the constructs in the recent OpenMP 3.0 standard", Sec. VI).
///
/// Model: one task pool per team. Any member may push deferred tasks; the
/// pool drains at scheduling points — `taskwait` and every barrier.
/// `taskwait` has OpenMP's child-only semantics: every task carries a
/// pointer to its parent's pending-children counter, and a waiting thread
/// *helps* by executing arbitrary pool tasks until its own children are
/// done (which guarantees progress for recursive task graphs such as the
/// classic fib example). A task's own children complete before the task
/// does (implicit wait at task end), so child counters can live on the
/// executing thread's stack.
///
/// Task execution is bracketed by the ORCA_EVENT_TASK_BEGIN/END extension
/// events, letting an extension-aware collector attribute task time the
/// same way it attributes region time.
#include <mutex>

#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace orca::rt {
namespace {

std::atomic<int>& children_counter(ThreadDescriptor& td) noexcept {
  if (td.task_children == nullptr) td.task_children = &td.own_task_children;
  return *td.task_children;
}

}  // namespace

void Runtime::task_spawn(ThreadDescriptor& td, std::function<void()> body) {
  TeamDescriptor* team = td.team;
  if (!config_.tasking || team == nullptr || team->size <= 1) {
    // Undeferred execution: serial context, or tasking disabled (the
    // OpenUH-2009 behaviour). The events still fire when supported so a
    // trace shows *where* task bodies ran.
    event(td, ORCA_EVENT_TASK_BEGIN);
    body();
    event(td, ORCA_EVENT_TASK_END);
    return;
  }
  std::atomic<int>& parent = children_counter(td);
  parent.fetch_add(1, std::memory_order_acq_rel);
  team->tasks_in_flight.fetch_add(1, std::memory_order_acq_rel);
  std::size_t depth = 0;
  {
    std::scoped_lock lk(team->task_mu);
    team->task_queue.push_back(
        TeamDescriptor::TaskFrame{std::move(body), &parent});
    depth = team->task_queue.size();
  }
  telemetry::count(telemetry::Counter::kTasksSpawned);
  telemetry::gauge_max(telemetry::Gauge::kTaskQueueDepth, depth);
}

bool Runtime::execute_pending_task(ThreadDescriptor& td) {
  TeamDescriptor* team = td.team;
  if (team == nullptr) return false;
  TeamDescriptor::TaskFrame frame;
  {
    std::scoped_lock lk(team->task_mu);
    if (team->task_queue.empty()) return false;
    frame = std::move(team->task_queue.front());
    team->task_queue.pop_front();
  }

  // Establish this task as the current parent for anything it spawns.
  std::atomic<int>* prev_children = td.task_children;
  std::atomic<int> my_children{0};
  td.task_children = &my_children;

  event(td, ORCA_EVENT_TASK_BEGIN);
  frame.body();
  // Implicit wait for this task's own children: keeps `my_children` (and
  // any stack state the children reference) alive until they finish.
  Backoff backoff;
  while (my_children.load(std::memory_order_acquire) > 0) {
    if (execute_pending_task(td)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  event(td, ORCA_EVENT_TASK_END);
  telemetry::count(telemetry::Counter::kTasksExecuted);

  td.task_children = prev_children;
  // Completion order matters: the parent's counter may only drop after
  // this task (and its subtree) fully finished.
  if (frame.parent_children != nullptr) {
    frame.parent_children->fetch_sub(1, std::memory_order_acq_rel);
  }
  team->tasks_in_flight.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void Runtime::taskwait(ThreadDescriptor& td) {
  TeamDescriptor* team = td.team;
  if (team == nullptr) return;
  std::atomic<int>& my_children = children_counter(td);
  Backoff backoff;
  while (my_children.load(std::memory_order_acquire) > 0) {
    if (execute_pending_task(td)) {
      backoff.reset();
    } else {
      backoff.pause();  // a child is mid-flight on another thread
    }
  }
}

}  // namespace orca::rt
