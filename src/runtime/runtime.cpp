#include "runtime/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <string>

#include "collector/message.hpp"
#include "collector/names.hpp"
#include "runtime/resilience.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/fault_injection.hpp"

namespace orca::rt {
namespace {

/// Thread-local binding: which runtime this OS thread belongs to, and its
/// descriptor there. Workers bind themselves at startup; MiniMPI ranks bind
/// via make_current(); the first foreign thread to touch a runtime claims
/// its master persona.
thread_local Runtime* tls_runtime = nullptr;
thread_local ThreadDescriptor* tls_descriptor = nullptr;

/// Reentrancy sentinel for collector_api: set while the full (lock-taking)
/// dispatcher runs on this thread, so a signal handler re-entering the API
/// mid-dispatch can be refused instead of self-deadlocking on the queue or
/// registry locks.
thread_local bool tls_in_collector_api = false;

}  // namespace

/// Pool worker: a slave thread that survives, sleeping, between parallel
/// regions (paper IV-C1).
struct Runtime::Worker {
  Worker(Runtime& owner, int slot) : runtime(owner) {
    desc.gtid = slot + 1;
    desc.runtime = &owner;
    // Paper IV-D: slave descriptors start in THR_OVHD_STATE "to reflect
    // the slave threads are in the process of being created", so a state
    // query during creation still has an answer.
    desc.set_state(THR_OVHD_STATE);
    desc.emitter = owner.registry().acquire_emitter();
    thread = std::thread([this] { runtime.worker_main(*this); });
  }

  ~Worker() {
    shutdown.store(true, std::memory_order_release);
    // The signal exists only to wake the thread for the join. After a
    // fork() the child detaches the handle first (the thread exists only
    // in the parent), and skipping the signal then is what keeps this
    // destructor fork-safe: Parker::signal() locks a mutex the vanished
    // worker may have held at the snapshot instant.
    if (thread.joinable()) {
      parker.signal();
      thread.join();
    }
    runtime.registry().release_emitter(desc.emitter);
  }

  Runtime& runtime;
  ThreadDescriptor desc;
  Parker parker;
  std::atomic<TeamDescriptor*> inbox{nullptr};
  std::atomic<bool> shutdown{false};
  std::thread thread;  // last member: starts only after the rest is ready
};

namespace {

/// Capabilities advertised to collectors, derived from the configuration:
/// the OpenUH 2009 baseline, plus whichever extensions are switched on.
collector::EventCapabilities capabilities_for(const RuntimeConfig& cfg) {
  collector::EventCapabilities caps =
      collector::EventCapabilities::openuh_default();
  if (cfg.atomic_events) {
    caps.enable(OMP_EVENT_THR_BEGIN_ATWT);
    caps.enable(OMP_EVENT_THR_END_ATWT);
  }
  if (cfg.tasking) {
    caps.enable(ORCA_EVENT_TASK_BEGIN);
    caps.enable(ORCA_EVENT_TASK_END);
  }
  return caps;
}

}  // namespace

namespace {

collector::Backpressure to_collector_policy(EventBackpressure p) noexcept {
  switch (p) {
    case EventBackpressure::kDropNewest:
      return collector::Backpressure::kDropNewest;
    case EventBackpressure::kOverwriteOldest:
      return collector::Backpressure::kOverwriteOldest;
    case EventBackpressure::kBlock:
      break;
  }
  return collector::Backpressure::kBlock;
}

}  // namespace

Runtime::Runtime(RuntimeConfig cfg)
    : config_(cfg),
      registry_(capabilities_for(cfg)),
      queues_(static_cast<std::size_t>(cfg.max_threads) + 1,
              cfg.per_thread_queues ? collector::QueuePolicy::kPerThread
                                    : collector::QueuePolicy::kGlobal) {
  config_.num_threads = std::clamp(config_.num_threads, 1, config_.max_threads);
  // Arm self-telemetry before any state store or worker spawn so the very
  // first transitions are captured. Reference-counted: the destructor
  // disarms the same bits, so runtime-per-test storms compose.
  if (config_.telemetry_timeline || config_.telemetry_metrics) {
    if (config_.telemetry_timeline) {
      telemetry::set_ring_capacity(config_.telemetry_ring_capacity);
    }
    telemetry_bits_ =
        (config_.telemetry_timeline ? telemetry::kTimelineBit : 0) |
        (config_.telemetry_metrics ? telemetry::kMetricsBit : 0);
    telemetry::arm(telemetry_bits_);
    telemetry::name_thread("master");
    // Surface the selected barrier algorithm in the metrics registry
    // (1 + BarrierKind so 0 keeps meaning "never recorded").
    telemetry::gauge_max(
        telemetry::Gauge::kBarrierAlgorithm,
        static_cast<std::uint64_t>(config_.barrier) + 1);
  }
  serial_master_.gtid = 0;
  serial_master_.runtime = this;
  serial_master_.set_state(THR_SERIAL_STATE);
  serial_master_.emitter = registry_.acquire_emitter();
  parallel_master_.gtid = 0;
  parallel_master_.runtime = this;
  parallel_master_.emitter = registry_.acquire_emitter();
  team_.runtime = this;
  if (config_.event_delivery == EventDelivery::kAsync) {
    async_ = std::make_unique<collector::AsyncDispatcher>(
        registry_, static_cast<std::size_t>(config_.max_threads) + 1,
        config_.event_ring_capacity,
        to_collector_policy(config_.event_backpressure));
    // Installed before any event can fire; the drainer itself starts
    // lazily on OMP_REQ_START (provider_lifecycle) so uninstrumented runs
    // never pay for the extra thread.
    registry_.set_async_sink(&Runtime::async_sink, this);
    // Deadline set before the drainer can start: start() reads it to
    // decide whether to spawn the watchdog.
    async_->set_callback_deadline(config_.callback_deadline_ms);
  }
  if (!config_.crash_dump.empty()) {
    resilience::arm_crash_dump(config_.crash_dump.c_str());
    crash_section_slot_ =
        resilience::register_crash_section("runtime", &Runtime::crash_section,
                                           this);
  }
  if (config_.shm_export) {
    // Hygiene first: segments a crashed run left behind would otherwise
    // sit in /dev/shm forever and confuse fleet discovery.
    shm::cleanup_stale_segments(config_.shm_prefix);
    shm::ExporterOptions sopts;
    sopts.name = shm::default_segment_name(config_.shm_prefix);
#if defined(__GLIBC__)
    sopts.label = program_invocation_short_name;
#else
    sopts.label = "orca";
#endif
    sopts.ring_count = static_cast<std::uint32_t>(config_.max_threads) + 1;
    sopts.event_capacity =
        static_cast<std::uint32_t>(config_.shm_ring_capacity);
    sopts.heartbeat_ms = static_cast<std::uint32_t>(config_.shm_heartbeat_ms);
    shm_armed_ = shm::arm(sopts);
    if (shm_armed_) {
      // Crash handlers go in even without ORCA_CRASH_DUMP: the shm crash
      // region is its own sink, so a SIGSEGV postmortem lands there (and
      // the heartbeat's rolling snapshot covers SIGKILL, where no handler
      // can run).
      resilience::arm_crash_sections();
      shm_crash_slot_ = resilience::register_crash_section(
          "shm-export", &Runtime::shm_crash_section, nullptr);
    }
  }
  resilience::register_fork_participant(this);
}

Runtime::~Runtime() {
  // Unhook from the process-global tables first: an atfork or crash
  // handler firing mid-destruction must not walk into a dying runtime.
  resilience::unregister_fork_participant(this);
  resilience::unregister_crash_section(crash_section_slot_);
  resilience::unregister_crash_section(shm_crash_slot_);
  // Workers join in ~Worker (CP.25: threads are joined, never detached) —
  // before ~async_ so every event producer is gone when the drainer stops.
  workers_.clear();
  if (async_) async_->stop_and_join();
  // Every event producer is quiescent now; the last disarm finalizes the
  // segment (final telemetry mirror — so it must run before telemetry
  // disarms below) and unlinks it.
  if (shm_armed_) shm::disarm();
  registry_.release_emitter(serial_master_.emitter);
  registry_.release_emitter(parallel_master_.emitter);
  // Export before disarming: workers and the drainer are quiescent, so the
  // timeline/metric reads are exact.
  if (telemetry_bits_ != 0) {
    if (!config_.telemetry_trace.empty()) {
      telemetry::write_chrome_trace(config_.telemetry_trace, {});
    }
    telemetry::shutdown_report(config_.telemetry_report);
    telemetry::disarm(telemetry_bits_);
  }
  if (tls_runtime == this) {
    tls_runtime = nullptr;
    tls_descriptor = nullptr;
  }
}

Runtime& Runtime::global() {
  // Magic-static: thread-safe since C++11, avoids hand-rolled
  // double-checked locking (Core Guidelines CP.110).
  static Runtime instance;
  return instance;
}

Runtime& Runtime::current() {
  if (tls_runtime != nullptr) return *tls_runtime;
  Runtime& g = global();
  tls_runtime = &g;
  return g;
}

void Runtime::make_current(Runtime* rt) noexcept {
  tls_runtime = rt;
  tls_descriptor = nullptr;
  if (rt != nullptr) (void)rt->self();  // claim the master persona if free
}

ThreadDescriptor* Runtime::self() noexcept {
  if (tls_descriptor != nullptr && tls_descriptor->runtime == this) {
    return tls_descriptor;
  }
  bool expected = false;
  if (master_claimed_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    tls_runtime = this;
    tls_descriptor = &serial_master_;
    return tls_descriptor;
  }
  return nullptr;
}

ThreadDescriptor& Runtime::self_or_serial() noexcept {
  ThreadDescriptor* td = self();
  // Threads unknown to the runtime still get an answer (paper IV-D: any
  // thread "will always return a correct value"): they observe the serial
  // persona, whose state is at least THR_SERIAL_STATE.
  return td != nullptr ? *td : serial_master_;
}

void Runtime::ensure_pool(int needed) {
  while (static_cast<int>(workers_.size()) < needed) {
    workers_.push_back(
        std::make_unique<Worker>(*this, static_cast<int>(workers_.size())));
  }
}

void Runtime::quiesce() { quiesce_workers(static_cast<int>(workers_.size())); }

void Runtime::quiesce_workers(int count) {
  Backoff backoff;
  for (int i = 0; i < count && i < static_cast<int>(workers_.size()); ++i) {
    while (workers_[static_cast<std::size_t>(i)]->inbox.load(
               std::memory_order_acquire) != nullptr) {
      backoff.pause();
    }
    backoff.reset();
  }
}

void Runtime::worker_main(Worker& w) {
  tls_runtime = this;
  tls_descriptor = &w.desc;
  telemetry::name_thread("worker-" + std::to_string(w.desc.gtid));
  // Creation complete: the slave parks between regions in the idle state
  // (paper IV-C1: "as soon as the threads are created, they are set to be
  // in the THR_IDLE_STATE and OMP_EVENT_THR_BEGIN_IDLE triggers").
  w.desc.set_state(THR_IDLE_STATE);
  event(w.desc, OMP_EVENT_THR_BEGIN_IDLE);

  // Start from epoch 0, not the current epoch: the master may already have
  // signalled this worker's first assignment while the thread was starting
  // up, and that signal must not be lost.
  std::uint64_t seen = 0;
  for (;;) {
    // A parked thread is quiescent: drop the generation pin so REGISTER
    // churn between regions never keeps retired callback tables alive.
    registry_.unpin(w.desc.emitter);
    w.parker.wait(seen);
    seen = w.parker.epoch();
    if (w.shutdown.load(std::memory_order_acquire)) break;
    TeamDescriptor* team = w.inbox.load(std::memory_order_acquire);
    if (team == nullptr) continue;  // spurious wake-up

    registry_.refresh(w.desc.emitter);  // wake-up = quiescent point
    event(w.desc, OMP_EVENT_THR_END_IDLE);
    w.desc.set_state(THR_WORK_STATE);
    run_region(*team, w.desc);
    w.desc.team = nullptr;
    w.desc.publish_region_snapshot();
    w.desc.set_state(THR_IDLE_STATE);
    event(w.desc, OMP_EVENT_THR_BEGIN_IDLE);
    // Last store: tells the master's quiesce that this worker has fully
    // departed the team (the team object may be recycled afterwards).
    w.inbox.store(nullptr, std::memory_order_release);
  }
}

void Runtime::run_region(TeamDescriptor& team, ThreadDescriptor& td) {
  team.fn(td.gtid, team.frame);
  // Every parallel region ends in an implicit barrier; the compiler plants
  // `__ompc_ibarrier` in the outlined procedure (paper Fig. 2).
  implicit_barrier(td);
}

void Runtime::fork(Microtask fn, void* frame, int num_threads) {
  ThreadDescriptor* caller = self();
  if (caller == nullptr) {
    // A thread the runtime has never seen (and whose master persona is
    // taken) executes the region serially with a scratch descriptor.
    thread_local ThreadDescriptor scratch;
    scratch.runtime = this;
    scratch.gtid = 0;
    fork_serialized(scratch, fn, frame);
    return;
  }

  // Fork entry is a natural quiescent point: re-pin the caller's emitter
  // cache on the current generation before any event of this region fires.
  registry_.refresh(caller->emitter);

  if (caller->team != nullptr) {
    if (config_.nested) {
      fork_nested(*caller, fn, frame, num_threads);
    } else {
      // OpenUH serializes nested parallel regions and fires no fork event
      // for them (paper IV-C1).
      fork_serialized(*caller, fn, frame);
    }
    return;
  }

  int n = num_threads > 0 ? num_threads : config_.num_threads;
  n = std::clamp(n, 1, config_.max_threads);

  // The master is in the overhead state while it prepares the fork and
  // updates the slave descriptors (paper IV-C1).
  caller->set_state(THR_OVHD_STATE);

  // Conceptually every parallel region forks, even when the runtime only
  // wakes sleeping threads; the event precedes thread creation/wake-up.
  event(*caller, OMP_EVENT_FORK);
  telemetry::count(telemetry::Counter::kForks);

  ensure_pool(n - 1);
  quiesce_workers(static_cast<int>(workers_.size()));

  const auto rid =
      static_cast<unsigned long>(next_region_id_.fetch_add(1, std::memory_order_relaxed));
  telemetry::record_span(telemetry::SpanKind::kParallelRegion,
                         telemetry::Phase::kBegin,
                         static_cast<std::uint32_t>(rid));
  team_.reset_for_region(rid, 0UL, n, fn, frame, config_.barrier);
  {
    std::scoped_lock lk(regions_mu_);
    ++region_calls_[reinterpret_cast<void*>(fn)];
  }

  parallel_master_.begin_team(&team_, 0);
  team_.members[0] = &parallel_master_;
  for (int i = 1; i < n; ++i) {
    Worker& w = *workers_[static_cast<std::size_t>(i - 1)];
    w.desc.begin_team(&team_, i);
    team_.members[static_cast<std::size_t>(i)] = &w.desc;
  }
  for (int i = 1; i < n; ++i) {
    Worker& w = *workers_[static_cast<std::size_t>(i - 1)];
    w.inbox.store(&team_, std::memory_order_release);
    w.parker.signal();
  }

  // The master becomes team member 0 and does its share of the work.
  ThreadDescriptor* prev_tls = tls_descriptor;
  tls_descriptor = &parallel_master_;
  parallel_master_.set_state(THR_WORK_STATE);
  run_region(team_, parallel_master_);

  // Join: "OMP_EVENT_JOIN is triggered and the state of the master thread
  // is set to THR_OVHD_STATE as soon as it leaves the implicit barrier at
  // the end of the parallel region" (paper IV-C1).
  parallel_master_.set_state(THR_OVHD_STATE);
  event(parallel_master_, OMP_EVENT_JOIN);
  telemetry::count(telemetry::Counter::kJoins);
  telemetry::record_span(telemetry::SpanKind::kParallelRegion,
                         telemetry::Phase::kEnd,
                         static_cast<std::uint32_t>(rid));
  parallel_master_.team = nullptr;
  parallel_master_.publish_region_snapshot();
  tls_descriptor = prev_tls;
  serial_master_.set_state(THR_SERIAL_STATE);
}

void Runtime::fork_serialized(ThreadDescriptor& parent, Microtask fn,
                              void* frame) {
  TeamDescriptor serial_team;
  serial_team.runtime = this;
  const unsigned long rid = parent.team != nullptr ? parent.team->region_id : 0;
  const unsigned long parent_rid =
      parent.team != nullptr ? parent.team->parent_region_id : 0;
  serial_team.reset_for_region(rid, parent_rid, 1, fn, frame);
  serial_team.is_parallel = false;  // region-id queries walk to parent_team
  serial_team.parent_team = parent.team;

  TeamDescriptor* prev_team = parent.team;
  const int prev_tid = parent.tid_in_team;
  const std::uint64_t prev_loops = parent.loop_count;
  const std::uint64_t prev_singles = parent.single_count;

  parent.begin_team(&serial_team, 0);
  fn(parent.gtid, frame);
  implicit_barrier(parent);

  parent.team = prev_team;
  parent.tid_in_team = prev_tid;
  parent.loop_count = prev_loops;
  parent.single_count = prev_singles;
  parent.publish_region_snapshot();
}

void Runtime::fork_nested(ThreadDescriptor& parent, Microtask fn, void* frame,
                          int num_threads) {
  int n = num_threads > 0 ? num_threads : config_.num_threads;
  n = std::clamp(n, 1, config_.max_threads);

  const auto prev_state = parent.get_state();
  parent.set_state(THR_OVHD_STATE);
  // Future-work behaviour the paper sketches: "a fork event will be
  // generated whenever we create a nested parallel region".
  event(parent, OMP_EVENT_FORK);
  telemetry::count(telemetry::Counter::kForks);

  auto team = std::make_unique<TeamDescriptor>();
  team->runtime = this;
  const auto rid = static_cast<unsigned long>(
      next_region_id_.fetch_add(1, std::memory_order_relaxed));
  const unsigned long parent_rid =
      parent.team != nullptr ? parent.team->region_id : 0;
  team->reset_for_region(rid, parent_rid, n, fn, frame, config_.barrier);
  team->parent_team = parent.team;
  {
    std::scoped_lock lk(regions_mu_);
    ++region_calls_[reinterpret_cast<void*>(fn)];
  }

  // Ephemeral slaves for the nested team (OpenUH's future compiler would
  // "create a nested parallel region and the corresponding OpenMP threads").
  std::vector<std::unique_ptr<ThreadDescriptor>> slaves;
  slaves.reserve(static_cast<std::size_t>(n - 1));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n - 1));

  TeamDescriptor* prev_team = parent.team;
  const int prev_tid = parent.tid_in_team;
  const std::uint64_t prev_loops = parent.loop_count;
  const std::uint64_t prev_singles = parent.single_count;
  parent.begin_team(team.get(), 0);
  team->members[0] = &parent;

  for (int i = 1; i < n; ++i) {
    auto desc = std::make_unique<ThreadDescriptor>();
    desc->runtime = this;
    desc->gtid = static_cast<int>(
        1 + nested_gtid_counter_.fetch_add(1, std::memory_order_relaxed) %
                static_cast<std::uint32_t>(config_.max_threads));
    desc->set_state(THR_OVHD_STATE);
    desc->begin_team(team.get(), i);
    team->members[static_cast<std::size_t>(i)] = desc.get();
    slaves.push_back(std::move(desc));
  }
  for (int i = 1; i < n; ++i) {
    ThreadDescriptor* desc = slaves[static_cast<std::size_t>(i - 1)].get();
    threads.emplace_back([this, desc] {
      tls_runtime = this;
      tls_descriptor = desc;
      desc->emitter = registry_.acquire_emitter();
      desc->set_state(THR_WORK_STATE);
      run_region(*desc->team, *desc);
      registry_.release_emitter(desc->emitter);
      desc->emitter = nullptr;
      tls_descriptor = nullptr;
    });
  }

  parent.set_state(THR_WORK_STATE);
  run_region(*team, parent);

  for (auto& t : threads) t.join();

  parent.set_state(THR_OVHD_STATE);
  event(parent, OMP_EVENT_JOIN);
  telemetry::count(telemetry::Counter::kJoins);

  parent.team = prev_team;
  parent.tid_in_team = prev_tid;
  parent.loop_count = prev_loops;
  parent.single_count = prev_singles;
  parent.publish_region_snapshot();
  parent.set_state(prev_state);
}

int Runtime::thread_num() noexcept { return self_or_serial().tid_in_team; }

int Runtime::num_threads() noexcept {
  const ThreadDescriptor& td = self_or_serial();
  return td.team != nullptr ? td.team->size : 1;
}

bool Runtime::in_parallel() noexcept {
  const ThreadDescriptor& td = self_or_serial();
  const TeamDescriptor* team = td.team;
  while (team != nullptr) {
    if (team->is_parallel && team->size >= 1) return true;
    team = team->parent_team;
  }
  return false;
}

void Runtime::set_num_threads(int n) noexcept {
  config_.num_threads = std::clamp(n, 1, config_.max_threads);
}

std::size_t Runtime::distinct_region_count() const {
  std::scoped_lock lk(regions_mu_);
  return region_calls_.size();
}

std::unordered_map<void*, std::uint64_t> Runtime::region_call_counts() const {
  std::scoped_lock lk(regions_mu_);
  return region_calls_;
}

// --- collector glue ---------------------------------------------------------

OMP_COLLECTOR_API_THR_STATE Runtime::provider_state(void* ctx,
                                                    unsigned long* wait_id) {
  auto& rt = *static_cast<Runtime*>(ctx);
  ThreadDescriptor& td = rt.self_or_serial();
  const auto state = td.get_state();
  switch (state) {
    case THR_IBAR_STATE: *wait_id = td.ibar_id; break;
    case THR_EBAR_STATE: *wait_id = td.ebar_id; break;
    case THR_LKWT_STATE: *wait_id = td.lock_wait_id; break;
    case THR_CTWT_STATE: *wait_id = td.critical_wait_id; break;
    case THR_ODWT_STATE: *wait_id = td.ordered_wait_id; break;
    case THR_ATWT_STATE: *wait_id = td.atomic_wait_id; break;
    default: break;
  }
  return state;
}

OMP_COLLECTORAPI_EC Runtime::provider_current_prid(void* ctx,
                                                   unsigned long* id) {
  auto& rt = *static_cast<Runtime*>(ctx);
  const ThreadDescriptor& td = rt.self_or_serial();
  const TeamDescriptor* team = td.team;
  while (team != nullptr && !team->is_parallel) team = team->parent_team;
  if (team == nullptr) {
    // Outside any parallel region: id 0 plus an out-of-sequence error
    // (paper IV-E).
    *id = 0;
    return OMP_ERRCODE_SEQUENCE_ERR;
  }
  *id = team->region_id;
  return OMP_ERRCODE_OK;
}

OMP_COLLECTORAPI_EC Runtime::provider_parent_prid(void* ctx,
                                                  unsigned long* id) {
  auto& rt = *static_cast<Runtime*>(ctx);
  const ThreadDescriptor& td = rt.self_or_serial();
  const TeamDescriptor* team = td.team;
  while (team != nullptr && !team->is_parallel) team = team->parent_team;
  if (team == nullptr) {
    *id = 0;
    return OMP_ERRCODE_SEQUENCE_ERR;
  }
  // Non-nested regions report parent id 0 (paper IV-E).
  *id = team->parent_region_id;
  return OMP_ERRCODE_OK;
}

std::size_t Runtime::provider_queue_slot(void* ctx) {
  auto& rt = *static_cast<Runtime*>(ctx);
  const ThreadDescriptor& td = rt.self_or_serial();
  return td.gtid >= 0 ? static_cast<std::size_t>(td.gtid) : 0;
}

void Runtime::provider_lifecycle(void* ctx, OMP_COLLECTORAPI_REQUEST req,
                                 int before, OMP_COLLECTORAPI_EC ec) {
  if (before) {
    ORCA_FAULT_POINT(kLifecycleBefore);
  } else {
    ORCA_FAULT_POINT(kLifecycleAfter);
  }
  auto& rt = *static_cast<Runtime*>(ctx);
  collector::AsyncDispatcher* async = rt.async_.get();
  if (async == nullptr) return;
  switch (req) {
    case OMP_REQ_START:
      if (!before && ec == OMP_ERRCODE_OK) async->start();
      break;
    case OMP_REQ_STOP:
      // Flush *before* the registry clears the callback table: events
      // admitted before the STOP edge are delivered while their callbacks
      // still exist. Afterwards (on success) the drainer joins, so no
      // callback can fire once OMP_REQ_STOP has returned (paper IV-A
      // lifecycle contract, extended to the decoupled path).
      if (before) {
        async->flush();
      } else if (ec == OMP_ERRCODE_OK) {
        async->stop_and_join();
      }
      break;
    case OMP_REQ_PAUSE:
      // Pause gates admission first (registry transition), then the flush
      // guarantees every pre-PAUSE event has been observed when the
      // request returns.
      if (!before && ec == OMP_ERRCODE_OK) async->flush();
      break;
    case OMP_REQ_RESUME:
      if (!before && ec == OMP_ERRCODE_OK) async->start();
      break;
    default:
      break;
  }
}

OMP_COLLECTORAPI_EC Runtime::provider_event_stats(void* ctx,
                                                  orca_event_stats* out) {
  auto& rt = *static_cast<Runtime*>(ctx);
  const collector::AsyncDispatcher* async = rt.async_.get();
  if (async == nullptr) {
    // Async delivery compiled in but disabled (ORCA_EVENT_DELIVERY=sync):
    // the runtime recognizes the request but has no delivery engine, so the
    // honest answer is "not supported here", not fabricated zero counters.
    return OMP_ERRCODE_UNSUPPORTED;
  }
  const collector::EventRingStats s = async->stats();
  out->submitted = s.submitted;
  out->delivered = s.delivered;
  out->dropped = s.dropped;
  out->overwritten = s.overwritten;
  out->ring_capacity = async->ring_capacity();
  out->active = async->running() ? 1 : 0;
  return OMP_ERRCODE_OK;
}

OMP_COLLECTORAPI_EC Runtime::provider_telemetry_snapshot(
    void* ctx, orca_telemetry_snapshot* out) {
  auto& rt = *static_cast<Runtime*>(ctx);
  // Deterministic per *this runtime's* configuration, not the volatile
  // global armed mask: another runtime arming telemetry concurrently must
  // not flip this answer (the conformance model mirrors the config).
  if (!rt.config_.telemetry_timeline && !rt.config_.telemetry_metrics) {
    return OMP_ERRCODE_UNSUPPORTED;
  }
  const telemetry::MetricsView m = telemetry::metrics();
  const auto counter = [&m](telemetry::Counter c) {
    return static_cast<unsigned long long>(
        m.counters[static_cast<std::size_t>(c)]);
  };
  const auto gauge = [&m](telemetry::Gauge g) {
    return static_cast<unsigned long long>(
        m.gauges[static_cast<std::size_t>(g)]);
  };
  out->armed_mask = m.armed;
  out->threads_tracked = m.threads_tracked;
  out->timeline_records = m.timeline_records;
  out->timeline_dropped = counter(telemetry::Counter::kTimelineOverwrites);
  out->forks = counter(telemetry::Counter::kForks);
  out->joins = counter(telemetry::Counter::kJoins);
  out->barrier_waits = counter(telemetry::Counter::kBarrierWaits);
  out->barrier_wait_ns =
      m.histograms[static_cast<std::size_t>(
                       telemetry::Histogram::kBarrierWaitNs)]
          .sum_ns;
  out->tasks_executed = counter(telemetry::Counter::kTasksExecuted);
  out->task_queue_depth_hwm = gauge(telemetry::Gauge::kTaskQueueDepth);
  out->ring_enqueue_stalls = counter(telemetry::Counter::kRingEnqueueStalls);
  out->ring_occupancy_hwm = gauge(telemetry::Gauge::kRingOccupancy);
  out->callback_failures = counter(telemetry::Counter::kCallbackFailures);
  out->generations_published =
      counter(telemetry::Counter::kGenerationsPublished);
  out->generations_retired = counter(telemetry::Counter::kGenerationsRetired);
  out->retire_latency_ns_max =
      m.histograms[static_cast<std::size_t>(
                       telemetry::Histogram::kRetireLatencyNs)]
          .max_ns;
  // Deterministic per this runtime's config (like the supported check
  // above), not the cross-runtime gauge: 1 + BarrierKind.
  out->barrier_algorithm =
      static_cast<unsigned long long>(rt.config_.barrier) + 1;
  return OMP_ERRCODE_OK;
}

void Runtime::fill_resilience_stats(orca_resilience_stats* out) noexcept {
  // Atomic loads only: this fills on the signal-safe fast path too.
  out->quarantined_collectors = registry_.quarantined();
  out->crash_dump_armed = resilience::crash_dump_armed() ? 1 : 0;
  out->signal_queries_served =
      signal_queries_served_.load(std::memory_order_relaxed);
  out->fork_events = resilience::fork_events();
}

OMP_COLLECTORAPI_EC Runtime::provider_resilience_stats(
    void* ctx, orca_resilience_stats* out) {
  static_cast<Runtime*>(ctx)->fill_resilience_stats(out);
  return OMP_ERRCODE_OK;
}

void Runtime::crash_section(void* ctx, int fd) {
  auto& rt = *static_cast<Runtime*>(ctx);
  // Everything below is loads of atomics + raw write(2): safe with the
  // process in an arbitrary (crashed) state.
  resilience::write_kv(fd, "quarantined_collectors",
                       rt.registry_.quarantined());
  resilience::write_kv(
      fd, "signal_queries_served",
      rt.signal_queries_served_.load(std::memory_order_relaxed));
  if (rt.async_ != nullptr) {
    const collector::EventRingStats s = rt.async_->stats();
    resilience::write_kv(fd, "events_submitted", s.submitted);
    resilience::write_kv(fd, "events_delivered", s.delivered);
    resilience::write_kv(fd, "events_dropped", s.dropped);
    resilience::write_kv(fd, "events_overwritten", s.overwritten);
  }
}

void Runtime::shm_crash_section(void* /*ctx*/, int fd) {
  // Writes the postmortem into the shm crash region (its own sink — works
  // with fd == -1 under sections-only arming) and drops a breadcrumb into
  // the dump file when there is one.
  shm::crash_postmortem(fd);
}

void Runtime::prepare_fork() {
  if (async_ != nullptr) async_->quiesce_for_fork();
  registry_.prepare_fork();
}

void Runtime::resume_parent_after_fork() noexcept {
  registry_.resume_after_fork();
  if (async_ != nullptr) async_->resume_parent_after_fork();
}

void Runtime::resume_child_after_fork() {
  registry_.resume_after_fork();
  // Only the forking thread crossed into the child: the pool threads exist
  // solely in the parent. Joining them would hang forever, so their handles
  // are detached and the pool rebuilt lazily by the next parallel region.
  // The Worker structs themselves are deliberately LEAKED, not destroyed:
  // each embeds the parker mutex/condvar the vanished thread may have been
  // blocked on at the snapshot instant, and glibc's pthread_cond_destroy
  // waits for such a waiter to leave — which in the child can never happen.
  // Only the emitter nodes (plain atomics under the registry SpinLock,
  // which the resume above already unlocked) go back to the pool.
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.detach();
    w->shutdown.store(true, std::memory_order_relaxed);
    w->inbox.store(nullptr, std::memory_order_relaxed);
    registry_.release_emitter(w->desc.emitter);
    (void)w.release();
  }
  workers_.clear();
  const bool rearm = config_.fork_mode == ForkMode::kRearm;
  if (async_ != nullptr) {
    async_->reset_after_fork(rearm && registry_.initialized());
  }
  if (!rearm) {
    // Disable mode: tear down the collection session. State/region-id
    // queries keep working; callbacks are gone until the collector in the
    // child runs a fresh START/REGISTER sequence.
    (void)registry_.stop();
  }
}

bool Runtime::async_sink(void* ctx, OMP_COLLECTORAPI_EVENT event) noexcept {
  auto& rt = *static_cast<Runtime*>(ctx);
  collector::AsyncDispatcher* async = rt.async_.get();
  if (async == nullptr) return false;
  return async->publish(provider_queue_slot(ctx), event);
}

int Runtime::signal_safe_query_path(void* arg) noexcept {
  using collector::MessageCursor;
  // Pass 1: validate-all. Only buffers made up entirely of the four
  // signal-safe kinds are eligible; a malformed record rejects the whole
  // buffer unanswered, exactly as the full dispatcher would.
  MessageCursor scan(arg);
  while (!scan.at_terminator()) {
    if (!scan.valid()) return -1;
    switch (scan.request()) {
      case OMP_REQ_STATE:
      case OMP_REQ_CURRENT_PRID:
      case OMP_REQ_PARENT_PRID:
      case ORCA_REQ_RESILIENCE_STATS:
        break;
      default:
        return 1;  // needs the full dispatcher
    }
    scan.advance();
  }
  // Pass 2: answer-all from atomic snapshots. self() is lock-free (a TLS
  // read, at worst one CAS claiming the master persona), and every reply
  // below is memcpy into the caller's buffer — byte-identical to what
  // dispatch.cpp's answer() would produce for the same records.
  ThreadDescriptor* td = self();
  ThreadDescriptor& d = td != nullptr ? *td : serial_master_;
  MessageCursor cursor(arg);
  while (!cursor.at_terminator()) {
    switch (cursor.request()) {
      case OMP_REQ_STATE: {
        // Wait ids are written only by the descriptor's owner, so reading
        // them from that thread's own signal handler is safe; the state
        // itself is an atomic.
        unsigned long wait_id = 0;
        const OMP_COLLECTOR_API_THR_STATE state = d.get_state();
        switch (state) {
          case THR_IBAR_STATE: wait_id = d.ibar_id; break;
          case THR_EBAR_STATE: wait_id = d.ebar_id; break;
          case THR_LKWT_STATE: wait_id = d.lock_wait_id; break;
          case THR_CTWT_STATE: wait_id = d.critical_wait_id; break;
          case THR_ODWT_STATE: wait_id = d.ordered_wait_id; break;
          case THR_ATWT_STATE: wait_id = d.atomic_wait_id; break;
          default: break;
        }
        const int state_value = static_cast<int>(state);
        if (!cursor.write_reply(&state_value, sizeof(state_value))) break;
        if (collector::state_has_wait_id(state) &&
            !cursor.write_reply(&wait_id, sizeof(wait_id),
                                sizeof(state_value))) {
          break;
        }
        cursor.set_errcode(OMP_ERRCODE_OK);
        signal_queries_served_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case OMP_REQ_CURRENT_PRID:
      case OMP_REQ_PARENT_PRID: {
        unsigned long id = 0;
        OMP_COLLECTORAPI_EC ec = OMP_ERRCODE_SEQUENCE_ERR;
        if (d.snap_in_parallel.load(std::memory_order_acquire) != 0) {
          id = cursor.request() == OMP_REQ_CURRENT_PRID
                   ? d.snap_current_prid.load(std::memory_order_relaxed)
                   : d.snap_parent_prid.load(std::memory_order_relaxed);
          ec = OMP_ERRCODE_OK;
        }
        if (!cursor.write_reply(&id, sizeof(id))) break;
        cursor.set_errcode(ec);
        signal_queries_served_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case ORCA_REQ_RESILIENCE_STATS: {
        orca_resilience_stats stats = {};
        if (cursor.payload_capacity() < sizeof(stats)) {
          cursor.set_errcode(OMP_ERRCODE_MEM_TOO_SMALL);
          break;
        }
        fill_resilience_stats(&stats);
        if (!cursor.write_reply(&stats, sizeof(stats))) break;
        cursor.set_errcode(OMP_ERRCODE_OK);
        signal_queries_served_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        break;  // unreachable: pass 1 filtered the kinds
    }
    cursor.advance();
  }
  return 0;
}

int Runtime::collector_api(void* arg) {
  ORCA_FAULT_POINT(kSignalDuringQuery);
  if (arg == nullptr) return -1;
  // Query-only buffers take the async-signal-safe path: no locks, no
  // allocation, no queue routing. Everything else falls through to the
  // full dispatcher below.
  if (const int rc = signal_safe_query_path(arg); rc != 1) return rc;
  if (tls_in_collector_api) {
    // A signal handler re-entered the API while the full dispatcher was
    // live on this very thread, with records the lock-free path cannot
    // serve. Refuse them all rather than deadlock on the queue/registry
    // locks the interrupted frame may hold.
    collector::MessageCursor cursor(arg);
    while (!cursor.at_terminator()) {
      if (!cursor.valid()) return -1;
      cursor.set_errcode(OMP_ERRCODE_ERROR);
      cursor.advance();
    }
    return 0;
  }
  tls_in_collector_api = true;
  // Dispatch entry is a quiescent point: registration churn arriving here
  // re-pins the caller's generation so superseded tables get reclaimed even
  // when no parallel work is running.
  if (ThreadDescriptor* td = self(); td != nullptr) {
    registry_.refresh(td->emitter);
  }
  const collector::Providers providers{
      &Runtime::provider_state,
      &Runtime::provider_current_prid,
      &Runtime::provider_parent_prid,
      &Runtime::provider_queue_slot,
      this,
      &Runtime::provider_lifecycle,
      &Runtime::provider_event_stats,
      &Runtime::provider_telemetry_snapshot,
      &Runtime::provider_resilience_stats,
  };
  const int rc = collector::process_messages(registry_, queues_, providers, arg);
  tls_in_collector_api = false;
  return rc;
}

}  // namespace orca::rt
