/// \file runtime.hpp
/// The ORCA OpenMP-style runtime — the host for the paper's ORA
/// implementation (the OpenUH runtime library stand-in).
///
/// A `Runtime` owns a persistent pool of worker threads that sleep between
/// parallel regions (exactly OpenUH's model: "all the threads survive (and
/// are sleeping) in between non-nested parallel regions"), the collector
/// registry, and all worksharing/synchronization state. It is
/// *instance-based*: MiniMPI ranks each own a private Runtime inside one
/// process. The C ABI in ompc_api.h binds to a thread-local current
/// runtime, falling back to a lazily constructed process-global default.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collector/async.hpp"
#include "collector/dispatch.hpp"
#include "collector/queue.hpp"
#include "collector/registry.hpp"
#include "common/parking.hpp"
#include "common/spinlock.hpp"
#include "runtime/config.hpp"
#include "runtime/descriptor.hpp"
#include "shm/exporter.hpp"

namespace orca::rt {

/// User-visible OpenMP lock (omp_lock_t analog). Lock waits are reported
/// through THR_LKWT_STATE and the LKWT events via the try-lock-first path
/// (paper IV-C3).
struct OmpLock {
  TicketLock impl;
};

/// Nestable OpenMP lock (omp_nest_lock_t analog).
struct OmpNestLock {
  TicketLock impl;
  std::atomic<const void*> owner{nullptr};  ///< owning thread descriptor
  int depth = 0;                            ///< only touched by the owner
};

/// Outlined parallel-region procedure: (global thread id, frame pointer),
/// the signature the OpenUH compiler gives `__ompdo_*` functions (Fig. 2).
using Microtask = void (*)(int gtid, void* frame);

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg = RuntimeConfig::from_env());
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- thread-local binding ----------------------------------------------

  /// Runtime the calling thread is bound to; lazily creates the process
  /// default on first use (which is how a collector can initialize ORA
  /// "before the OpenMP runtime library is initialized" — touching the API
  /// constructs the runtime and its serial master descriptor).
  static Runtime& current();

  /// Bind the calling thread to `rt` (MiniMPI rank setup); nullptr unbinds.
  static void make_current(Runtime* rt) noexcept;

  /// The process-global default runtime (created on demand).
  static Runtime& global();

  // --- parallel regions ---------------------------------------------------

  /// `__ompc_fork`: run `fn` on a team of `num_threads` threads
  /// (0 = the configured default). Fires OMP_EVENT_FORK/JOIN on the master,
  /// BEGIN/END_IDLE on the slaves, and brackets the region with the
  /// implicit barrier (IBAR state + events) per paper Sec. IV-C1/2.
  void fork(Microtask fn, void* frame, int num_threads = 0);

  /// Block until every pool worker has fully departed its last region
  /// (post-barrier events fired, idle again). The master returns from
  /// fork() as soon as *it* clears the join barrier; slaves may still be
  /// emitting their END_IBAR/BEGIN_IDLE events. Callers that snapshot
  /// collector state between regions use this to draw a clean line.
  void quiesce();

  /// Descriptor of the calling thread: the team-slot descriptor inside a
  /// region, the serial persona on the master outside one, or nullptr for
  /// threads unknown to this runtime.
  ThreadDescriptor* self() noexcept;

  /// Like self(), but never null: unknown threads get the serial persona
  /// (every thread must always have *a* state, paper IV-D).
  ThreadDescriptor& self_or_serial() noexcept;

  // --- worksharing --------------------------------------------------------

  /// `__ompc_static_init_4`: compute the calling thread's bounds for a
  /// statically scheduled loop. In/out: lower/upper; out: stride of the
  /// thread's block sequence. Returns false when the thread has no
  /// iterations.
  bool static_init(ThreadDescriptor& td, Schedule kind, long* lower,
                   long* upper, long* stride, long incr, long chunk);

  /// `__ompc_scheduler_init_4`: publish a dynamic/guided/runtime loop.
  void scheduler_init(ThreadDescriptor& td, Schedule kind, long lower,
                      long upper, long incr, long chunk);

  /// `__ompc_schedule_next_4`: claim the next chunk. Returns false when
  /// the loop is exhausted.
  bool schedule_next(ThreadDescriptor& td, long* lower, long* upper);

  /// `__ompc_single`: true when the calling thread executes this single
  /// block (fires the BEGIN_SINGLE event on that thread).
  bool single_begin(ThreadDescriptor& td);
  void single_end(ThreadDescriptor& td, bool executed);

  /// `__ompc_master`: true on the team master (fires BEGIN_MASTER there).
  bool master_begin(ThreadDescriptor& td);
  void master_end(ThreadDescriptor& td);

  /// `__ompc_ordered`: block until `iteration` may enter the ordered
  /// section (ODWT state/events while waiting).
  void ordered_begin(ThreadDescriptor& td, long iteration);
  void ordered_end(ThreadDescriptor& td);

  // --- synchronization ----------------------------------------------------

  /// Explicit barrier (`#pragma omp barrier` -> `__ompc_barrier`):
  /// EBAR state, per-thread ebar id, BEGIN/END_EBAR events.
  void explicit_barrier(ThreadDescriptor& td);

  /// Implicit barrier (region/worksharing end -> `__ompc_ibarrier`):
  /// IBAR state, per-thread ibar id, BEGIN/END_IBAR events. The compiler
  /// had to emit *distinct* calls for the two barrier flavours (paper
  /// IV-C2) — hence two entry points of identical machinery.
  void implicit_barrier(ThreadDescriptor& td);

  /// Critical section (`__ompc_critical` / `__ompc_end_critical`). `word`
  /// is the compiler-generated per-name lock variable; the runtime interns
  /// an actual lock per (runtime, word) on first use.
  void critical_begin(ThreadDescriptor& td, orca_lock_word* word);
  void critical_end(ThreadDescriptor& td, orca_lock_word* word);

  /// Reduction update bracket (`__ompc_reduction`/`__ompc_end_reduction`):
  /// THR_REDUC_STATE around the team reduction lock (paper IV-C5 gave
  /// reductions their own runtime call, split from critical).
  void reduction_begin(ThreadDescriptor& td);
  void reduction_end(ThreadDescriptor& td);

  /// Atomic fallback path (`__ompc_atomic_begin/end`). With
  /// `config().atomic_events` set, generates ATWT state/events — the
  /// extension OpenUH declined to implement (paper IV-C7).
  void atomic_begin(ThreadDescriptor& td);
  void atomic_end(ThreadDescriptor& td);

  // --- explicit tasks (OpenMP 3.0 extension, paper Sec. VI) ----------------

  /// `orca::omp::task`: defer `body` to the team's task pool. Serial
  /// teams (or tasking disabled) execute it immediately (undeferred).
  /// Fires ORCA_EVENT_TASK_BEGIN/END around execution either way.
  void task_spawn(ThreadDescriptor& td, std::function<void()> body);

  /// `orca::omp::taskwait`: execute/await pool tasks until none remain.
  /// (Simplification over full 3.0 semantics — waits on *all* team tasks,
  /// not just children — matching OpenUH's "partial implementation".)
  void taskwait(ThreadDescriptor& td);

  /// Pop and run one pending task; false when the pool is empty. Barriers
  /// call this in a loop, making them task scheduling points.
  bool execute_pending_task(ThreadDescriptor& td);

  // --- user-visible locks -------------------------------------------------

  void lock_init(OmpLock& lk);
  void lock_destroy(OmpLock& lk);
  void lock_acquire(ThreadDescriptor& td, OmpLock& lk);
  bool lock_test(ThreadDescriptor& td, OmpLock& lk);
  void lock_release(ThreadDescriptor& td, OmpLock& lk);

  void nest_lock_init(OmpNestLock& lk);
  void nest_lock_destroy(OmpNestLock& lk);
  void nest_lock_acquire(ThreadDescriptor& td, OmpNestLock& lk);
  void nest_lock_release(ThreadDescriptor& td, OmpNestLock& lk);

  // --- user API ------------------------------------------------------------

  int thread_num() noexcept;   ///< omp_get_thread_num
  int num_threads() noexcept;  ///< omp_get_num_threads (current team size)
  bool in_parallel() noexcept; ///< omp_in_parallel
  int max_threads() const noexcept { return config_.num_threads; }
  void set_num_threads(int n) noexcept;
  void set_nested(bool enabled) noexcept { config_.nested = enabled; }

  // --- collector glue -------------------------------------------------------

  collector::Registry& registry() noexcept { return registry_; }
  const RuntimeConfig& config() const noexcept { return config_; }

  /// `__omp_collector_api` bound to this runtime instance.
  ///
  /// Buffers containing only STATE/CURRENT_PRID/PARENT_PRID/
  /// RESILIENCE_STATS records are answered on an async-signal-safe fast
  /// path: per-thread atomic snapshots, no locks, no allocation, no queue
  /// routing — callable from a SIGPROF handler. Any other request mix
  /// takes the full dispatcher; if a signal handler re-enters the API
  /// while that dispatcher is live on the same thread, the non-signal-safe
  /// records are refused with OMP_ERRCODE_ERROR instead of deadlocking.
  int collector_api(void* arg);

  /// Requests answered on the signal-safe fast path so far.
  std::uint64_t signal_queries_served() const noexcept {
    return signal_queries_served_.load(std::memory_order_relaxed);
  }

  // --- fork()/crash glue (resilience.cpp pthread_atfork handlers) ----------

  /// atfork-prepare: flush async delivery, then hold the dispatcher and
  /// registry locks across the kernel snapshot.
  void prepare_fork();

  /// atfork-parent: release the locks taken by prepare_fork().
  void resume_parent_after_fork() noexcept;

  /// atfork-child: release inherited locks, detach the worker pool (those
  /// threads only exist in the parent), and disarm or re-arm event
  /// delivery per config().fork_mode.
  void resume_child_after_fork();

  /// Fire an event — `__ompc_event` from the paper — through the ambient
  /// (no-descriptor) path. Foreign threads and compat callers only; runtime
  /// code with a descriptor in hand uses the two-argument overload.
  /// With ORCA_EVENT_DELIVERY=async the registry's sink enqueues the event
  /// on the calling thread's ring and the drainer invokes the callback; the
  /// admission checks (registered/initialized/!paused) stay on this thread
  /// either way.
  void event(OMP_COLLECTORAPI_EVENT e) noexcept {
    shm::mirror_event(-1, static_cast<int>(e));
    registry_.fire(e);
  }

  /// Fire an event on behalf of `td` via its leased EmitterCache: the
  /// disarmed case is one relaxed 64-bit load + predictable branch, no
  /// shared-state traffic (the epoch fast path).
  void event(ThreadDescriptor& td, OMP_COLLECTORAPI_EVENT e) noexcept {
    // The shm mirror rides in front of the registry fast path; disarmed it
    // is one acquire load + branch, the same budget class as the epoch
    // fast path's relaxed mask load (docs/FLEET.md).
    shm::mirror_event(td.gtid, static_cast<int>(e));
    registry_.fire(e, td.emitter);
  }

  /// Quiescent-point hook: re-pin `td`'s emitter cache on the currently
  /// published callback generation so superseded generations can be
  /// reclaimed. Called at fork, after barriers, and on collector-API entry.
  void quiescent(ThreadDescriptor& td) noexcept {
    registry_.refresh(td.emitter);
  }

  /// Asynchronous delivery engine; nullptr when configured for synchronous
  /// dispatch (the default).
  collector::AsyncDispatcher* async_dispatcher() noexcept {
    return async_.get();
  }

  /// Total parallel regions executed (Tables I/II instrumentation).
  std::uint64_t regions_executed() const noexcept {
    return next_region_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Number of pool threads created so far (pthread_create count).
  int pool_size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Number of *distinct* parallel regions (unique outlined procedures)
  /// executed so far — the static region count of the paper's Table I.
  std::size_t distinct_region_count() const;

  /// Snapshot of per-outlined-procedure invocation counts (Table I/II
  /// instrumentation: "# region calls" per region).
  std::unordered_map<void*, std::uint64_t> region_call_counts() const;

 private:
  struct Worker;

  void ensure_pool(int needed);
  void worker_main(Worker& w);
  void run_region(TeamDescriptor& team, ThreadDescriptor& td);
  void fork_serialized(ThreadDescriptor& parent, Microtask fn, void* frame);
  void fork_nested(ThreadDescriptor& parent, Microtask fn, void* frame,
                   int num_threads);
  void quiesce_workers(int count);

  /// Scratch loop state for orphaned (outside-any-team) worksharing.
  static WorkshareLoop& serial_fallback_loop() noexcept;
  TicketLock& intern_critical_lock(orca_lock_word* word);

  // Collector provider trampolines (collector::Providers hooks).
  static OMP_COLLECTOR_API_THR_STATE provider_state(void* ctx,
                                                    unsigned long* wait_id);
  static OMP_COLLECTORAPI_EC provider_current_prid(void* ctx,
                                                   unsigned long* id);
  static OMP_COLLECTORAPI_EC provider_parent_prid(void* ctx,
                                                  unsigned long* id);
  static std::size_t provider_queue_slot(void* ctx);
  static void provider_lifecycle(void* ctx, OMP_COLLECTORAPI_REQUEST req,
                                 int before, OMP_COLLECTORAPI_EC ec);
  static OMP_COLLECTORAPI_EC provider_event_stats(void* ctx,
                                                  orca_event_stats* out);
  static OMP_COLLECTORAPI_EC provider_telemetry_snapshot(
      void* ctx, orca_telemetry_snapshot* out);
  static OMP_COLLECTORAPI_EC provider_resilience_stats(
      void* ctx, orca_resilience_stats* out);

  /// Crash-dump section: loss counters and event-stats footer, written
  /// with the resilience module's signal-safe helpers.
  static void crash_section(void* ctx, int fd);

  /// Crash-dump section trampoline for the shm export layer (the runtime
  /// registers it to keep shm free of a resilience dependency).
  static void shm_crash_section(void* ctx, int fd);

  /// Answer an all-fast-kinds buffer from atomic snapshots. Returns 0
  /// (answered) or -1 (malformed) when the buffer was eligible; 1 when it
  /// holds any record the signal-safe path cannot serve.
  int signal_safe_query_path(void* arg) noexcept;

  void fill_resilience_stats(orca_resilience_stats* out) noexcept;

  /// Registry::AsyncSink trampoline: enqueue an admitted event on the
  /// calling thread's ring.
  static bool async_sink(void* ctx, OMP_COLLECTORAPI_EVENT event) noexcept;

  RuntimeConfig config_;

  /// Telemetry bits this instance armed at construction (0 = none); the
  /// destructor disarms exactly these, so concurrently-live runtimes with
  /// different configs compose through the refcounted global mask.
  std::uint64_t telemetry_bits_ = 0;

  collector::Registry registry_;
  collector::RequestQueues queues_;

  /// Master's serial persona — the second descriptor of the paper's
  /// "master has two thread descriptors" design (Sec. IV-C).
  ThreadDescriptor serial_master_;

  /// Master's in-team persona (team slot 0).
  ThreadDescriptor parallel_master_;

  std::vector<std::unique_ptr<Worker>> workers_;
  TeamDescriptor team_;           ///< recycled top-level team
  std::atomic<std::uint64_t> next_region_id_{1};
  std::atomic<bool> master_claimed_{false};
  std::atomic<std::uint32_t> nested_gtid_counter_{0};

  SpinLock critical_mu_;
  std::unordered_map<orca_lock_word*, std::unique_ptr<TicketLock>>
      critical_locks_;

  /// Global lock backing the atomic fallback path.
  TicketLock atomic_lock_;

  mutable SpinLock regions_mu_;
  std::unordered_map<void*, std::uint64_t> region_calls_;  ///< fn -> calls

  /// Requests answered by signal_safe_query_path().
  std::atomic<std::uint64_t> signal_queries_served_{0};

  /// Crash-dump section slot (-1 when the dump is not armed or the table
  /// was full).
  int crash_section_slot_ = -1;

  /// Whether this instance holds a refcount on the process shm exporter,
  /// and its crash-section slot (-1 when none).
  bool shm_armed_ = false;
  int shm_crash_slot_ = -1;

  /// Asynchronous event delivery (EventDelivery::kAsync only). Declared
  /// last so its destructor — which joins the drainer thread that still
  /// reads registry_ — runs before the members it depends on are torn down.
  std::unique_ptr<collector::AsyncDispatcher> async_;
};

}  // namespace orca::rt
