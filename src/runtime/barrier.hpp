/// \file barrier.hpp
/// Pluggable team-barrier algorithms.
///
/// Every implicit/explicit barrier of every benchmark funnels through one
/// of these, so the algorithm is on the hottest path the EPCC/NPB overhead
/// story has (paper Sec. V measures BARRIER as its own directive). The
/// runtime selects an algorithm per team via `ORCA_BARRIER`
/// (`centralized` | `dissemination` | `tree`, see RuntimeConfig::barrier):
///
///  * **centralized** — the original sense-reversing counter barrier:
///    one fetch_add per arrival, a generation flip by the last thread,
///    condition-variable sleep for late wakers. O(n) contention on two
///    cachelines, but the CV sleep makes it the safest default when
///    threads are heavily oversubscribed (32 EPCC threads on few cores).
///  * **dissemination** — ceil(log2 n) rounds of pairwise signalling;
///    thread i signals (i + 2^r) mod n each round and waits on its own
///    cacheline-padded inbox. No shared hot line, no serial release
///    broadcast; the classic choice once n grows.
///  * **tree** — a fanout-4 combining tree with cacheline-padded per-node
///    arrival flags and a single release generation. Arrivals climb the
///    tree (each parent spins only on its ≤4 children), the root publishes
///    the release; O(n) total stores with constant per-line sharing.
///
/// All three are reusable-by-generation: flags carry monotonically
/// increasing episode numbers instead of reversing a sense bit, so a team
/// descriptor can `init()` and re-run regions indefinitely (including
/// shrinking/growing the team) without a rendezvous to reset state —
/// `init()` only runs while the team is quiescent (master-side
/// reset_for_region, after quiesce_workers).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"

namespace orca::rt {

/// Which barrier algorithm a team uses (ORCA_BARRIER).
enum class BarrierKind : int {
  kCentralized = 0,   ///< sense-reversing counter + CV (the default)
  kDissemination = 1, ///< log2(n)-round pairwise signalling
  kTree = 2,          ///< fanout-4 combining tree + release broadcast
};

/// Stable lowercase name ("centralized" | "dissemination" | "tree") used in
/// telemetry, bench JSON rows, and warning messages.
const char* barrier_kind_name(BarrierKind kind) noexcept;

/// One team-barrier algorithm. `init(size)` is master-only and must not
/// race with `arrive_and_wait`; the runtime guarantees that by resetting
/// teams only while quiescent. `arrive_and_wait(tid)` is called by team
/// member `tid` (0 <= tid < size) — the dissemination and tree algorithms
/// key their per-thread flag slots off it.
class Barrier {
 public:
  virtual ~Barrier() = default;
  virtual void init(int size) = 0;
  virtual void arrive_and_wait(int tid) = 0;
  virtual BarrierKind kind() const noexcept = 0;
};

/// Centralized sense-reversing barrier (the pre-pluggable `TeamBarrier`).
/// Yield-friendly: a short spin, then a condition-variable sleep, so
/// oversubscribed runs (32 EPCC threads on few cores) do not livelock.
class CentralizedBarrier final : public Barrier {
 public:
  void init(int size) noexcept override {
    size_ = size;
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(0, std::memory_order_relaxed);
  }

  void arrive_and_wait(int tid) override;

  BarrierKind kind() const noexcept override {
    return BarrierKind::kCentralized;
  }

 private:
  int size_ = 1;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Dissemination barrier: in round r (0..rounds-1), thread i stores its
/// episode number into the round-r inbox of thread (i + 2^r) mod n, then
/// waits for its own round-r inbox to reach that episode. After
/// ceil(log2 n) rounds every thread transitively synchronizes with every
/// other. Inboxes are per-thread cacheline-padded slots, each round's
/// inbox written by exactly one peer, so there is no shared hot line.
class DisseminationBarrier final : public Barrier {
 public:
  void init(int size) override;
  void arrive_and_wait(int tid) override;

  BarrierKind kind() const noexcept override {
    return BarrierKind::kDissemination;
  }

 private:
  /// 2^16 team members is far beyond max_threads; fixing the round count
  /// keeps a slot a flat object (one padded line per thread for the hot
  /// inboxes, no per-round indirection).
  static constexpr int kMaxRounds = 16;

  struct Slot {
    std::atomic<std::uint64_t> inbox[kMaxRounds] = {};
    std::uint64_t episode = 0;  ///< owner-thread-only barrier count
  };

  int size_ = 1;
  int rounds_ = 0;
  std::vector<CachePadded<Slot>> slots_;
};

/// Fanout-4 combining-tree barrier. Thread t's children are 4t+1..4t+4;
/// each thread gathers its children's padded arrival flags, publishes its
/// own, and the root then bumps one release generation every waiter spins
/// on. Release-store/acquire-load chains up the tree and back down give
/// the usual barrier memory semantics.
class TreeBarrier final : public Barrier {
 public:
  void init(int size) override;
  void arrive_and_wait(int tid) override;

  BarrierKind kind() const noexcept override { return BarrierKind::kTree; }

 private:
  static constexpr int kFanout = 4;

  struct Node {
    std::atomic<std::uint64_t> arrived{0};  ///< subtree-complete episode
    std::uint64_t episode = 0;              ///< owner-thread-only count
  };

  int size_ = 1;
  std::vector<CachePadded<Node>> nodes_;
  CachePadded<std::atomic<std::uint64_t>> release_;
};

/// The barrier slot of one team descriptor: owns the selected algorithm
/// and swaps it only when the configured kind changes, so recycled teams
/// (the runtime's top-level team runs every region) reuse the allocation.
class TeamBarrier {
 public:
  /// Master-only, team quiescent (reset_for_region).
  void init(BarrierKind kind, int size);

  void arrive_and_wait(int tid) {
    if (impl_ != nullptr) impl_->arrive_and_wait(tid);
  }

  BarrierKind kind() const noexcept {
    return impl_ != nullptr ? impl_->kind() : BarrierKind::kCentralized;
  }

 private:
  std::unique_ptr<Barrier> impl_;
};

}  // namespace orca::rt
