#include <mutex>

#include "common/clock.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace orca::rt {

// --- barriers ---------------------------------------------------------------
//
// The functionality of implicit and explicit barriers is identical, but the
// paper had to split them into distinct runtime calls so the collector can
// tell the two apart (Sec. IV-C2): "we had to change the way our compiler
// translated OpenMP barriers so that different runtime calls were generated".
// ORCA is built split from the start; both wrappers share `barrier_common`.

namespace {

template <OMP_COLLECTOR_API_THR_STATE State, OMP_COLLECTORAPI_EVENT Begin,
          OMP_COLLECTORAPI_EVENT End>
void barrier_common(Runtime& rt, ThreadDescriptor& td, unsigned long& wait_id) {
  // Barriers are task scheduling points: drain the team's explicit-task
  // pool before arriving, so all tasks complete by the barrier (OpenMP
  // 3.0 semantics for the ORCA tasking extension).
  while (rt.execute_pending_task(td)) {
  }
  // "Each thread keeps track of its own implicit or explicit barrier ID,
  // which is incremented each time a thread enters a barrier" (IV-C2).
  ++wait_id;
  const auto prev = td.get_state();
  td.set_state(State);
  rt.event(td, Begin);
  // Self-telemetry: time the arrive..release window. The clock reads are
  // gated so a metrics-disarmed barrier pays only the relaxed-load checks.
  const std::uint64_t wait_begin =
      telemetry::metrics_armed() ? SteadyClock::now() : 0;
  if (td.team != nullptr) td.team->barrier.arrive_and_wait(td.tid_in_team);
  if (wait_begin != 0) {
    telemetry::count(telemetry::Counter::kBarrierWaits);
    telemetry::observe(telemetry::Histogram::kBarrierWaitNs,
                       SteadyClock::now() - wait_begin);
  }
  // Departing a barrier is a natural quiescent point: every thread passes
  // here between regions/phases, so re-pin the emitter cache before the
  // END event fires.
  rt.quiescent(td);
  rt.event(td, End);
  td.set_state(prev == State ? THR_WORK_STATE : prev);
}

}  // namespace

void Runtime::implicit_barrier(ThreadDescriptor& td) {
  barrier_common<THR_IBAR_STATE, OMP_EVENT_THR_BEGIN_IBAR,
                 OMP_EVENT_THR_END_IBAR>(*this, td, td.ibar_id);
}

void Runtime::explicit_barrier(ThreadDescriptor& td) {
  barrier_common<THR_EBAR_STATE, OMP_EVENT_THR_BEGIN_EBAR,
                 OMP_EVENT_THR_END_EBAR>(*this, td, td.ebar_id);
}

// --- critical sections -------------------------------------------------------

TicketLock& Runtime::intern_critical_lock(orca_lock_word* word) {
  // `word` is the compiler-generated static lock variable for one critical
  // name; locks are interned per (runtime, word) so MiniMPI ranks — which
  // model separate processes — never share a critical section.
  std::scoped_lock lk(critical_mu_);
  auto& slot = critical_locks_[word];
  if (slot == nullptr) slot = std::make_unique<TicketLock>();
  return *slot;
}

void Runtime::critical_begin(ThreadDescriptor& td, orca_lock_word* word) {
  TicketLock& lock = intern_critical_lock(word);
  if (lock.try_lock()) return;  // uncontended: no wait state, no events
  // "A critical region wait ID is maintained and incremented each time a
  // thread waits to acquire the lock inside a critical region" (IV-C4).
  ++td.critical_wait_id;
  const auto prev = td.get_state();
  td.set_state(THR_CTWT_STATE);
  event(td, OMP_EVENT_THR_BEGIN_CTWT);
  lock.lock();
  event(td, OMP_EVENT_THR_END_CTWT);
  td.set_state(prev == THR_CTWT_STATE ? THR_WORK_STATE : prev);
}

void Runtime::critical_end(ThreadDescriptor& td, orca_lock_word* word) {
  (void)td;
  intern_critical_lock(word).unlock();
}

// --- reductions ---------------------------------------------------------------
//
// Reductions were originally translated to plain critical regions; the
// paper split them into a dedicated runtime call so the collector can
// distinguish the reduction state (Sec. IV-C5). There is no reduction
// *event* in ORA — only THR_REDUC_STATE.

void Runtime::reduction_begin(ThreadDescriptor& td) {
  td.set_state(THR_REDUC_STATE);
  if (td.team != nullptr) td.team->reduction_lock.lock();
}

void Runtime::reduction_end(ThreadDescriptor& td) {
  if (td.team != nullptr) td.team->reduction_lock.unlock();
  td.set_state(THR_WORK_STATE);
}

// --- atomic fallback -----------------------------------------------------------
//
// OpenUH translated atomics to intrinsic instructions outside the runtime
// and therefore could not observe them (Sec. IV-C7). ORCA's fallback path
// routes atomics through a runtime lock; when `config().atomic_events` is
// set it reports the ATWT state/events — the wrapper-function approach the
// paper proposes as future work.

void Runtime::atomic_begin(ThreadDescriptor& td) {
  if (!config_.atomic_events) {
    atomic_lock_.lock();
    return;
  }
  if (atomic_lock_.try_lock()) return;
  ++td.atomic_wait_id;
  const auto prev = td.get_state();
  td.set_state(THR_ATWT_STATE);
  event(td, OMP_EVENT_THR_BEGIN_ATWT);
  atomic_lock_.lock();
  event(td, OMP_EVENT_THR_END_ATWT);
  td.set_state(prev == THR_ATWT_STATE ? THR_WORK_STATE : prev);
}

void Runtime::atomic_end(ThreadDescriptor& td) {
  (void)td;
  atomic_lock_.unlock();
}

// --- user-visible locks ---------------------------------------------------------
//
// Paper IV-C3: "we added the function pthread_try_lock() to capture an
// individual thread's behavior and check whether the lock is available. If
// it is available, then the thread acquires the lock and continues its
// execution. If the lock is busy, then we trigger the wait lock state and
// corresponding event." Events fire only for user-defined locks, never for
// the runtime's internal ones.

void Runtime::lock_init(OmpLock& lk) { new (&lk) OmpLock(); }

void Runtime::lock_destroy(OmpLock& lk) { (void)lk; }

void Runtime::lock_acquire(ThreadDescriptor& td, OmpLock& lk) {
  if (lk.impl.try_lock()) return;
  ++td.lock_wait_id;
  const auto prev = td.get_state();
  td.set_state(THR_LKWT_STATE);
  event(td, OMP_EVENT_THR_BEGIN_LKWT);
  lk.impl.lock();
  event(td, OMP_EVENT_THR_END_LKWT);
  td.set_state(prev == THR_LKWT_STATE ? THR_WORK_STATE : prev);
}

bool Runtime::lock_test(ThreadDescriptor& td, OmpLock& lk) {
  (void)td;
  return lk.impl.try_lock();
}

void Runtime::lock_release(ThreadDescriptor& td, OmpLock& lk) {
  (void)td;
  lk.impl.unlock();
}

void Runtime::nest_lock_init(OmpNestLock& lk) {
  lk.owner.store(nullptr, std::memory_order_relaxed);
  lk.depth = 0;
}

void Runtime::nest_lock_destroy(OmpNestLock& lk) { (void)lk; }

void Runtime::nest_lock_acquire(ThreadDescriptor& td, OmpNestLock& lk) {
  if (lk.owner.load(std::memory_order_acquire) == &td) {
    ++lk.depth;  // re-entrant acquisition by the owner
    return;
  }
  // "The same procedure is applied for nested locks" (IV-C3): try first,
  // wait state + events only when contended.
  if (!lk.impl.try_lock()) {
    ++td.lock_wait_id;
    const auto prev = td.get_state();
    td.set_state(THR_LKWT_STATE);
    event(td, OMP_EVENT_THR_BEGIN_LKWT);
    lk.impl.lock();
    event(td, OMP_EVENT_THR_END_LKWT);
    td.set_state(prev == THR_LKWT_STATE ? THR_WORK_STATE : prev);
  }
  lk.owner.store(&td, std::memory_order_release);
  lk.depth = 1;
}

void Runtime::nest_lock_release(ThreadDescriptor& td, OmpNestLock& lk) {
  if (lk.owner.load(std::memory_order_acquire) != &td) return;  // not owner
  if (--lk.depth == 0) {
    lk.owner.store(nullptr, std::memory_order_release);
    lk.impl.unlock();
  }
}

}  // namespace orca::rt
