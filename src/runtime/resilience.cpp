#include "runtime/resilience.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include "common/spinlock.hpp"
#include "runtime/runtime.hpp"
#include "testing/fault_injection.hpp"

namespace orca::rt::resilience {
namespace {

// --- crash dump state -------------------------------------------------------
// Everything the handler touches is preallocated and lock-free: a crash
// handler runs with arbitrary locks held (possibly by the crashing thread
// itself) and must not allocate, lock, or call into stdio.

constexpr int kMaxSections = 16;

struct Section {
  std::atomic<CrashSectionFn> fn{nullptr};
  void* ctx = nullptr;
  const char* name = nullptr;
};

Section g_sections[kMaxSections];

/// Serializes slot claiming only; the crash handler never takes it (it
/// reads the per-slot fn atomics directly).
SpinLock g_sections_mu;

char g_dump_path[512];
std::atomic<bool> g_armed{false};
std::atomic<bool> g_crashing{false};

const int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGABRT};

extern "C" void orca_crash_handler(int sig) {
  // One shot: a fault inside the dump (or a second crashing thread racing
  // in) must not recurse — the loser proceeds straight to the re-raise.
  bool expected = false;
  if (g_crashing.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Sections-only arming (arm_crash_sections) runs with fd = -1: the
    // write_* helpers no-op, but contributors with their own sink — the
    // shm crash region — still get their postmortem.
    const int fd = g_dump_path[0] != '\0'
                       ? ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC,
                                0644)
                       : -1;
    write_str(fd, "ORCA_CRASH_DUMP v1\n");
    write_kv(fd, "signal", static_cast<unsigned long long>(sig));
    write_kv(fd, "fork_events", fork_events());
    for (const Section& s : g_sections) {
      const CrashSectionFn fn = s.fn.load(std::memory_order_acquire);
      if (fn == nullptr) continue;
      write_str(fd, "section ");
      write_str(fd, s.name != nullptr ? s.name : "?");
      write_str(fd, "\n");
      fn(s.ctx, fd);
    }
    write_str(fd, "end\n");
    if (fd >= 0) ::close(fd);
  }
  // Re-raise with the default disposition so the process still terminates
  // (and core-dumps) exactly as it would have without the profiler.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

// --- fork participants ------------------------------------------------------

constexpr int kMaxParticipants = 16;

/// Held from the atfork prepare hook until the parent/child hook: the
/// participant set must not change while the kernel snapshots the process.
SpinLock g_participants_mu;
Runtime* g_participants[kMaxParticipants] = {};
std::atomic<std::uint64_t> g_fork_events{0};

void atfork_prepare() {
  ORCA_FAULT_POINT(kForkRace);
  g_fork_events.fetch_add(1, std::memory_order_relaxed);
  g_participants_mu.lock();
  for (Runtime* rt : g_participants) {
    if (rt != nullptr) rt->prepare_fork();
  }
}

void atfork_parent() {
  for (int i = kMaxParticipants - 1; i >= 0; --i) {
    if (g_participants[i] != nullptr) g_participants[i]->resume_parent_after_fork();
  }
  g_participants_mu.unlock();
}

void atfork_child() {
  for (int i = kMaxParticipants - 1; i >= 0; --i) {
    if (g_participants[i] != nullptr) g_participants[i]->resume_child_after_fork();
  }
  g_participants_mu.unlock();
}

}  // namespace

int register_crash_section(const char* name, CrashSectionFn fn,
                           void* ctx) noexcept {
  if (fn == nullptr) return -1;
  std::scoped_lock lk(g_sections_mu);
  for (int i = 0; i < kMaxSections; ++i) {
    if (g_sections[i].fn.load(std::memory_order_relaxed) != nullptr) continue;
    // ctx/name first, then the release-published fn: a concurrent crash
    // handler that loads a non-null fn is guaranteed to see them.
    g_sections[i].ctx = ctx;
    g_sections[i].name = name;
    g_sections[i].fn.store(fn, std::memory_order_release);
    return i;
  }
  return -1;
}

void unregister_crash_section(int slot) noexcept {
  if (slot < 0 || slot >= kMaxSections) return;
  g_sections[slot].fn.store(nullptr, std::memory_order_release);
}

namespace {

void install_crash_handlers() noexcept {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &orca_crash_handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler restores SIG_DFL itself after the dump,
  // and keeping the disposition lets a SIGBUS raised *inside* a SIGSEGV
  // dump still funnel through the one-shot gate.
  sa.sa_flags = 0;
  for (int sig : kCrashSignals) {
    (void)::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace

bool arm_crash_dump(const char* path) noexcept {
  if (path == nullptr || path[0] == '\0') return g_armed.load();
  bool expected = false;
  if (!g_armed.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    // Handlers already installed. A sections-only arming (empty path) is
    // upgraded to a full dump by the first real path to arrive; a second
    // real path loses to the first, as before.
    if (g_dump_path[0] == '\0') {
      std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
      g_dump_path[sizeof(g_dump_path) - 1] = '\0';
    }
    return true;
  }
  std::strncpy(g_dump_path, path, sizeof(g_dump_path) - 1);
  g_dump_path[sizeof(g_dump_path) - 1] = '\0';
  install_crash_handlers();
  return true;
}

bool arm_crash_sections() noexcept {
  bool expected = false;
  if (!g_armed.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return true;  // handlers (with or without a path) already installed
  }
  install_crash_handlers();
  return true;
}

bool crash_dump_armed() noexcept {
  return g_armed.load(std::memory_order_acquire);
}

void write_str(int fd, const char* s) noexcept {
  if (fd < 0) return;  // sections-only crash arming: no dump file
  std::size_t len = 0;
  while (s[len] != '\0') ++len;
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, s + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void write_u64(int fd, unsigned long long v) noexcept {
  char buf[24];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  write_str(fd, p);
}

void write_kv(int fd, const char* key, unsigned long long v) noexcept {
  write_str(fd, key);
  write_str(fd, " ");
  write_u64(fd, v);
  write_str(fd, "\n");
}

void register_fork_participant(Runtime* rt) noexcept {
  if (rt == nullptr) return;
  static std::once_flag once;
  std::call_once(once, [] {
    (void)::pthread_atfork(&atfork_prepare, &atfork_parent, &atfork_child);
  });
  std::scoped_lock lk(g_participants_mu);
  for (Runtime*& slot : g_participants) {
    if (slot == nullptr) {
      slot = rt;
      return;
    }
  }
  // Table full: the runtime simply does not take part in the quiesce
  // protocol (fork still works, it just loses the pre-fork flush).
}

void unregister_fork_participant(Runtime* rt) noexcept {
  std::scoped_lock lk(g_participants_mu);
  for (Runtime*& slot : g_participants) {
    if (slot == rt) slot = nullptr;
  }
}

std::uint64_t fork_events() noexcept {
  return g_fork_events.load(std::memory_order_relaxed);
}

}  // namespace orca::rt::resilience
