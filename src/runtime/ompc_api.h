/// \file ompc_api.h
/// The C ABI of the ORCA OpenMP runtime — the entry points that compiled
/// OpenMP code calls.
///
/// These mirror the OpenUH runtime calls shown in the paper's Fig. 2
/// (`__ompc_fork`, `__ompc_static_init_4`, `__ompc_reduction`,
/// `__ompc_ibarrier`, ...) plus the user-level OpenMP library routines.
/// The `orca/translate` header layer ("the compiler") emits exactly these
/// calls; hand-written "outlined" code can call them directly, as the
/// paper's Fig. 2 listing does.
///
/// Every function operates on the calling thread's *current runtime*
/// (thread-local binding, defaulting to the process-global runtime).
#ifndef ORCA_RUNTIME_OMPC_API_H
#define ORCA_RUNTIME_OMPC_API_H

#ifdef __cplusplus
extern "C" {
#endif

/// Outlined parallel-region procedure (paper Fig. 2's `__ompdo_main1`):
/// receives the executing thread's global id and the frame pointer that
/// carries shared variables.
typedef void (*orca_microtask_t)(int gtid, void* frame);

/// Schedule kinds accepted by the worksharing entry points; values match
/// orca::rt::Schedule.
enum {
  ORCA_SCHED_STATIC_EVEN = 1,
  ORCA_SCHED_STATIC_CHUNKED = 2,
  ORCA_SCHED_DYNAMIC = 3,
  ORCA_SCHED_GUIDED = 4,
  ORCA_SCHED_RUNTIME = 5
};

/* --- parallel regions ---------------------------------------------------- */

/// Fork a team of `num_threads` threads (0 = default) running `task`.
/// Blocks until the region's implicit barrier completes (join).
void __ompc_fork(int num_threads, orca_microtask_t task, void* frame);

/// Global thread id of the calling thread within its runtime.
int __ompc_get_global_thread_num(void);

/// Team-local thread id (what omp_get_thread_num returns).
int __ompc_get_local_thread_num(void);

/* --- worksharing ----------------------------------------------------------- */

/// Static loop scheduling (paper Fig. 2's `__ompc_static_init_4`): on
/// entry *plower/*pupper hold the loop bounds; on exit they hold the
/// calling thread's block and *pstride the step between its blocks.
/// Returns 0 when the thread has no iterations.
int __ompc_static_init_4(int gtid, int schedtype, int* plower, int* pupper,
                         int* pstride, int incr, int chunk);
int __ompc_static_init_8(int gtid, int schedtype, long long* plower,
                         long long* pupper, long long* pstride, long long incr,
                         long long chunk);

/// Dynamic/guided/runtime scheduling: publish the loop, then claim chunks.
void __ompc_scheduler_init_4(int gtid, int schedtype, int lower, int upper,
                             int incr, int chunk);
void __ompc_scheduler_init_8(int gtid, int schedtype, long long lower,
                             long long upper, long long incr, long long chunk);

/// Claim the next chunk into *plower/*pupper. Returns 0 when exhausted.
int __ompc_schedule_next_4(int gtid, int* plower, int* pupper);
int __ompc_schedule_next_8(int gtid, long long* plower, long long* pupper);

/// `single` construct: returns 1 on the executing thread.
int __ompc_single(int gtid);
void __ompc_end_single(int gtid, int executed);

/// `master` construct: returns 1 on the team master. The paired end call
/// exists so the exit event can be captured (paper IV-C6).
int __ompc_master(int gtid);
void __ompc_end_master(int gtid);

/// `ordered` construct: blocks until `iteration` (the loop's logical
/// iteration index, starting at 0) may enter.
void __ompc_ordered(int gtid, long long iteration);
void __ompc_end_ordered(int gtid);

/* --- explicit tasks (OpenMP 3.0, ORCA extension) ---------------------------- */

/// Defer `fn(arg)` to the team's task pool (executes immediately in
/// serial contexts or when tasking is disabled).
void __ompc_task(int gtid, void (*fn)(void*), void* arg);

/// Execute/await pool tasks until none remain.
void __ompc_taskwait(int gtid);

/* --- synchronization --------------------------------------------------------- */

/// Explicit barrier (`#pragma omp barrier`).
void __ompc_barrier(void);

/// Implicit barrier (end of parallel/worksharing). Distinct entry point so
/// the collector can tell the flavours apart (paper IV-C2).
void __ompc_ibarrier(void);

/// Critical section; `lck` is the address of the compiler-generated static
/// lock variable for the critical's name (initialize it to NULL).
void __ompc_critical(int gtid, void** lck);
void __ompc_end_critical(int gtid, void** lck);

/// Reduction bracket (dedicated entry point, split from critical so the
/// collector sees THR_REDUC_STATE — paper IV-C5).
void __ompc_reduction(int gtid, void** lck);
void __ompc_end_reduction(int gtid, void** lck);

/// Atomic fallback bracket (paper IV-C7 future work; events appear only
/// when the runtime was configured with atomic_events).
void __ompc_atomic(int gtid);
void __ompc_end_atomic(int gtid);

/* --- collector hooks ----------------------------------------------------------- */

/// Fire an ORA event — the `__ompc_event` function of paper Sec. IV-C.
void __ompc_event(int event);

/// Set the calling thread's state — `__ompc_set_state` of Sec. IV-C.
void __ompc_set_state(int state);

/// ORCA extension (not part of ORA): outlined procedure of the calling
/// thread's current parallel region, or NULL outside one. Lets tests and
/// examples cross-check the callstack-based source mapping against ground
/// truth; a portable ORA collector must not rely on it.
void* __ompc_get_current_region_fn(void);

/// The ORA entry point ("the OpenMP runtime [implements] a single API
/// function omp_collector_api and export[s] its symbol", Sec. IV).
/// Declared in collector/api.h; defined by this runtime library.

/* --- user-level OpenMP API ------------------------------------------------------ */

typedef struct { void* opaque[4]; } omp_lock_t;
typedef struct { void* opaque[6]; } omp_nest_lock_t;

int omp_get_thread_num(void);
int omp_get_num_threads(void);
int omp_get_max_threads(void);
void omp_set_num_threads(int n);
int omp_in_parallel(void);
int omp_get_num_procs(void);
double omp_get_wtime(void);
double omp_get_wtick(void);
int omp_get_nested(void);
void omp_set_nested(int enabled);
int omp_get_dynamic(void);
void omp_set_dynamic(int enabled);

void omp_init_lock(omp_lock_t* lock);
void omp_destroy_lock(omp_lock_t* lock);
void omp_set_lock(omp_lock_t* lock);
void omp_unset_lock(omp_lock_t* lock);
int omp_test_lock(omp_lock_t* lock);

void omp_init_nest_lock(omp_nest_lock_t* lock);
void omp_destroy_nest_lock(omp_nest_lock_t* lock);
void omp_set_nest_lock(omp_nest_lock_t* lock);
void omp_unset_nest_lock(omp_nest_lock_t* lock);

#ifdef __cplusplus
}  // extern "C"
#endif

#endif  // ORCA_RUNTIME_OMPC_API_H
