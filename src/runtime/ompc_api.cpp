/// \file ompc_api.cpp
/// C ABI shims: every entry point resolves the calling thread's current
/// runtime and descriptor, then forwards to the C++ implementation.
#include "runtime/ompc_api.h"

#include <chrono>
#include <new>
#include <thread>

#include "collector/api.h"
#include "common/clock.hpp"
#include "runtime/runtime.hpp"

namespace {

using orca::rt::OmpLock;
using orca::rt::OmpNestLock;
using orca::rt::Runtime;
using orca::rt::Schedule;
using orca::rt::ThreadDescriptor;

static_assert(sizeof(OmpLock) <= sizeof(omp_lock_t),
              "omp_lock_t opaque storage too small");
static_assert(sizeof(OmpNestLock) <= sizeof(omp_nest_lock_t),
              "omp_nest_lock_t opaque storage too small");

OmpLock& as_lock(omp_lock_t* lock) {
  return *std::launder(reinterpret_cast<OmpLock*>(lock));
}
OmpNestLock& as_nest_lock(omp_nest_lock_t* lock) {
  return *std::launder(reinterpret_cast<OmpNestLock*>(lock));
}

Schedule to_schedule(int schedtype) {
  switch (schedtype) {
    case ORCA_SCHED_STATIC_CHUNKED: return Schedule::kStaticChunked;
    case ORCA_SCHED_DYNAMIC: return Schedule::kDynamic;
    case ORCA_SCHED_GUIDED: return Schedule::kGuided;
    case ORCA_SCHED_RUNTIME: return Schedule::kRuntime;
    default: return Schedule::kStaticEven;
  }
}

}  // namespace

extern "C" {

void __ompc_fork(int num_threads, orca_microtask_t task, void* frame) {
  Runtime::current().fork(task, frame, num_threads);
}

int __ompc_get_global_thread_num(void) {
  return Runtime::current().self_or_serial().gtid;
}

int __ompc_get_local_thread_num(void) {
  return Runtime::current().thread_num();
}

int __ompc_static_init_4(int gtid, int schedtype, int* plower, int* pupper,
                         int* pstride, int incr, int chunk) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  long lower = *plower;
  long upper = *pupper;
  long stride = 0;
  const bool has_work =
      rt.static_init(rt.self_or_serial(), to_schedule(schedtype), &lower,
                     &upper, &stride, incr, chunk);
  *plower = static_cast<int>(lower);
  *pupper = static_cast<int>(upper);
  *pstride = static_cast<int>(stride);
  return has_work ? 1 : 0;
}

int __ompc_static_init_8(int gtid, int schedtype, long long* plower,
                         long long* pupper, long long* pstride, long long incr,
                         long long chunk) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  long lower = static_cast<long>(*plower);
  long upper = static_cast<long>(*pupper);
  long stride = 0;
  const bool has_work =
      rt.static_init(rt.self_or_serial(), to_schedule(schedtype), &lower,
                     &upper, &stride, static_cast<long>(incr),
                     static_cast<long>(chunk));
  *plower = lower;
  *pupper = upper;
  *pstride = stride;
  return has_work ? 1 : 0;
}

void __ompc_scheduler_init_4(int gtid, int schedtype, int lower, int upper,
                             int incr, int chunk) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.scheduler_init(rt.self_or_serial(), to_schedule(schedtype), lower, upper,
                    incr, chunk);
}

void __ompc_scheduler_init_8(int gtid, int schedtype, long long lower,
                             long long upper, long long incr, long long chunk) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.scheduler_init(rt.self_or_serial(), to_schedule(schedtype),
                    static_cast<long>(lower), static_cast<long>(upper),
                    static_cast<long>(incr), static_cast<long>(chunk));
}

int __ompc_schedule_next_4(int gtid, int* plower, int* pupper) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  long lower = 0;
  long upper = 0;
  if (!rt.schedule_next(rt.self_or_serial(), &lower, &upper)) return 0;
  *plower = static_cast<int>(lower);
  *pupper = static_cast<int>(upper);
  return 1;
}

int __ompc_schedule_next_8(int gtid, long long* plower, long long* pupper) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  long lower = 0;
  long upper = 0;
  if (!rt.schedule_next(rt.self_or_serial(), &lower, &upper)) return 0;
  *plower = lower;
  *pupper = upper;
  return 1;
}

int __ompc_single(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  return rt.single_begin(rt.self_or_serial()) ? 1 : 0;
}

void __ompc_end_single(int gtid, int executed) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.single_end(rt.self_or_serial(), executed != 0);
}

int __ompc_master(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  return rt.master_begin(rt.self_or_serial()) ? 1 : 0;
}

void __ompc_end_master(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.master_end(rt.self_or_serial());
}

void __ompc_ordered(int gtid, long long iteration) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.ordered_begin(rt.self_or_serial(), static_cast<long>(iteration));
}

void __ompc_end_ordered(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.ordered_end(rt.self_or_serial());
}

void __ompc_task(int gtid, void (*fn)(void*), void* arg) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.task_spawn(rt.self_or_serial(), [fn, arg] { fn(arg); });
}

void __ompc_taskwait(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.taskwait(rt.self_or_serial());
}

void __ompc_barrier(void) {
  Runtime& rt = Runtime::current();
  rt.explicit_barrier(rt.self_or_serial());
}

void __ompc_ibarrier(void) {
  Runtime& rt = Runtime::current();
  rt.implicit_barrier(rt.self_or_serial());
}

void __ompc_critical(int gtid, void** lck) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.critical_begin(rt.self_or_serial(),
                    reinterpret_cast<orca::rt::orca_lock_word*>(lck));
}

void __ompc_end_critical(int gtid, void** lck) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.critical_end(rt.self_or_serial(),
                  reinterpret_cast<orca::rt::orca_lock_word*>(lck));
}

void __ompc_reduction(int gtid, void** lck) {
  (void)gtid;
  (void)lck;  // the team's dedicated reduction lock is used (paper IV-C5)
  Runtime& rt = Runtime::current();
  rt.reduction_begin(rt.self_or_serial());
}

void __ompc_end_reduction(int gtid, void** lck) {
  (void)gtid;
  (void)lck;
  Runtime& rt = Runtime::current();
  rt.reduction_end(rt.self_or_serial());
}

void __ompc_atomic(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.atomic_begin(rt.self_or_serial());
}

void __ompc_end_atomic(int gtid) {
  (void)gtid;
  Runtime& rt = Runtime::current();
  rt.atomic_end(rt.self_or_serial());
}

void __ompc_event(int event) {
  Runtime::current().event(static_cast<OMP_COLLECTORAPI_EVENT>(event));
}

void __ompc_set_state(int state) {
  Runtime::current().self_or_serial().set_state(
      static_cast<OMP_COLLECTOR_API_THR_STATE>(state));
}

void* __ompc_get_current_region_fn(void) {
  const orca::rt::TeamDescriptor* team =
      Runtime::current().self_or_serial().team;
  while (team != nullptr && !team->is_parallel) team = team->parent_team;
  return team != nullptr ? reinterpret_cast<void*>(team->fn) : nullptr;
}

int __omp_collector_api(void* arg) {
  return Runtime::current().collector_api(arg);
}

int omp_collector_api(void* arg) { return __omp_collector_api(arg); }

/* --- user-level API ---------------------------------------------------------- */

int omp_get_thread_num(void) { return Runtime::current().thread_num(); }

int omp_get_num_threads(void) { return Runtime::current().num_threads(); }

int omp_get_max_threads(void) { return Runtime::current().max_threads(); }

void omp_set_num_threads(int n) { Runtime::current().set_num_threads(n); }

int omp_in_parallel(void) { return Runtime::current().in_parallel() ? 1 : 0; }

int omp_get_num_procs(void) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

double omp_get_wtime(void) { return orca::wall_seconds(); }

double omp_get_wtick(void) {
  // steady_clock resolution: one tick of the underlying period.
  return static_cast<double>(std::chrono::steady_clock::period::num) /
         static_cast<double>(std::chrono::steady_clock::period::den);
}

int omp_get_nested(void) {
  return Runtime::current().config().nested ? 1 : 0;
}

void omp_set_nested(int enabled) {
  Runtime::current().set_nested(enabled != 0);
}

int omp_get_dynamic(void) {
  return 0;  // ORCA never adjusts team sizes behind the program's back
}

void omp_set_dynamic(int enabled) {
  (void)enabled;  // accepted and ignored, like many 2009-era runtimes
}

void omp_init_lock(omp_lock_t* lock) {
  new (lock) OmpLock();
}

void omp_destroy_lock(omp_lock_t* lock) {
  Runtime::current().lock_destroy(as_lock(lock));
  as_lock(lock).~OmpLock();
}

void omp_set_lock(omp_lock_t* lock) {
  Runtime& rt = Runtime::current();
  rt.lock_acquire(rt.self_or_serial(), as_lock(lock));
}

void omp_unset_lock(omp_lock_t* lock) {
  Runtime& rt = Runtime::current();
  rt.lock_release(rt.self_or_serial(), as_lock(lock));
}

int omp_test_lock(omp_lock_t* lock) {
  Runtime& rt = Runtime::current();
  return rt.lock_test(rt.self_or_serial(), as_lock(lock)) ? 1 : 0;
}

void omp_init_nest_lock(omp_nest_lock_t* lock) {
  new (lock) OmpNestLock();
}

void omp_destroy_nest_lock(omp_nest_lock_t* lock) {
  Runtime::current().nest_lock_destroy(as_nest_lock(lock));
  as_nest_lock(lock).~OmpNestLock();
}

void omp_set_nest_lock(omp_nest_lock_t* lock) {
  Runtime& rt = Runtime::current();
  rt.nest_lock_acquire(rt.self_or_serial(), as_nest_lock(lock));
}

void omp_unset_nest_lock(omp_nest_lock_t* lock) {
  Runtime& rt = Runtime::current();
  rt.nest_lock_release(rt.self_or_serial(), as_nest_lock(lock));
}

}  // extern "C"
