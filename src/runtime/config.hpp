/// \file config.hpp
/// Runtime internal control variables (ICVs) and ORCA tuning knobs.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>

#include "common/env.hpp"
#include "runtime/barrier.hpp"

namespace orca::rt {

/// Loop schedule kinds understood by the worksharing layer. The *_EVEN
/// value mirrors OpenUH's `OMP_STATIC_EVEN` (block distribution computed by
/// `__ompc_static_init_4` in the paper's Fig. 2).
enum class Schedule : int {
  kStaticEven = 1,   ///< one contiguous block per thread
  kStaticChunked = 2,///< block-cyclic with a fixed chunk
  kDynamic = 3,      ///< first-come-first-served chunks
  kGuided = 4,       ///< exponentially shrinking chunks
  kRuntime = 5,      ///< take kind+chunk from OMP_SCHEDULE
};

/// Parsed OMP_SCHEDULE value.
struct ScheduleSpec {
  Schedule kind = Schedule::kStaticEven;
  long chunk = 0;  ///< 0 = unspecified (scheduler picks)
};

/// How `__ompc_event` reaches registered collector callbacks.
enum class EventDelivery {
  kSync,   ///< paper's behaviour: callback runs inline on the app thread
  kAsync,  ///< callback runs on the drainer thread (per-thread ring buffers)
};

/// What an application thread does when its event ring is full
/// (EventDelivery::kAsync only).
enum class EventBackpressure {
  kBlock,            ///< wait for the drainer (lossless, can stall)
  kDropNewest,       ///< shed the incoming event, count it
  kOverwriteOldest,  ///< evict the oldest undelivered event, count it
};

/// What collection does in a fork()ed child process
/// (ORCA_FORK_MODE=disable|rearm; docs/RESILIENCE.md).
enum class ForkMode {
  kDisable,  ///< child keeps state queries but stops event delivery
  kRearm,    ///< child reopens rings and restarts the drainer
};

/// Construction-time configuration of a `Runtime` instance.
///
/// Defaults replicate the paper's OpenUH runtime: nested parallel regions
/// serialized, atomic wait events not generated, states always tracked.
struct RuntimeConfig {
  /// Default team size for parallel regions (OMP_NUM_THREADS).
  int num_threads = 4;

  /// Hard cap on pool size; forks request at most this many threads.
  int max_threads = 64;

  /// True nested parallelism. OpenUH serialized nested regions ("our
  /// compiler currently serializes nested parallel regions"); enabling this
  /// turns on the paper's future-work behaviour: real nested teams, nested
  /// FORK/JOIN events, and parent-region-id tracking.
  bool nested = false;

  /// Generate THR_ATWT_STATE and the atomic wait events from the
  /// lock-fallback atomic path. OpenUH left these unimplemented
  /// (Sec. IV-C7); ORCA implements them behind this flag.
  bool atomic_events = false;

  /// Generate ordered-section wait events (optional in the spec).
  bool ordered_events = true;

  /// OpenMP 3.0 explicit tasking (`orca::omp::task` / `taskwait`) and the
  /// ORCA_EVENT_TASK_* extension events — the paper's future work
  /// ("extend the interface to handle the constructs in the recent OpenMP
  /// 3.0 standard"). With tasking off, task bodies run undeferred and the
  /// extension events are unsupported, mirroring OpenUH 2009.
  bool tasking = true;

  /// Route collector requests through per-thread queues (the paper's
  /// design) or one global queue (the ablation baseline, Sec. IV-B).
  bool per_thread_queues = true;

  /// Event delivery mode (ORCA_EVENT_DELIVERY=sync|async). Synchronous is
  /// the default so the paper's event ordering — callback completes before
  /// `__ompc_event` returns — is preserved unless a deployment opts into
  /// the decoupled path.
  EventDelivery event_delivery = EventDelivery::kSync;

  /// Per-thread event ring capacity in records, rounded up to a power of
  /// two (ORCA_EVENT_RING_CAPACITY). Only meaningful with async delivery.
  std::size_t event_ring_capacity = 1024;

  /// Full-ring policy for async delivery
  /// (ORCA_EVENT_BACKPRESSURE=block|drop_newest|overwrite_oldest).
  EventBackpressure event_backpressure = EventBackpressure::kBlock;

  /// Record per-thread state/span timelines into the telemetry rings
  /// (ORCA_TELEMETRY=timeline|full). Off by default: the disarmed cost is
  /// one relaxed load per hook.
  bool telemetry_timeline = false;

  /// Maintain the sharded self-telemetry metrics registry
  /// (ORCA_TELEMETRY=metrics|full).
  bool telemetry_metrics = false;

  /// Per-thread timeline ring capacity in 16-byte records, rounded up to a
  /// power of two (ORCA_TELEMETRY_RING). Only meaningful with the timeline
  /// armed.
  std::size_t telemetry_ring_capacity = 4096;

  /// Where the human-readable telemetry report goes at runtime shutdown:
  /// "stderr", a file path, or empty for no report (ORCA_TELEMETRY_REPORT).
  std::string telemetry_report;

  /// Chrome/Perfetto trace_event JSON written at runtime shutdown; empty
  /// for no trace (ORCA_TELEMETRY_TRACE).
  std::string telemetry_trace;

  /// Crash postmortem dump file (ORCA_CRASH_DUMP): when non-empty, the
  /// runtime installs SIGSEGV/SIGBUS/SIGABRT handlers that flush sample
  /// buffers and loss counters here with raw write(2) before re-raising.
  /// Empty (the default) leaves signal dispositions untouched.
  std::string crash_dump;

  /// Mirror the event stream, SIGPROF samples, telemetry metrics, and
  /// crash-dump state into a named /dev/shm segment an external daemon
  /// (orcamon) can attach to (ORCA_SHM_EXPORT; docs/FLEET.md). Off by
  /// default: the disarmed hook is one acquire load per event.
  /// Env-backed default (like `barrier`): `ORCA_SHM_EXPORT=1` must reach
  /// every process in a fleet, including tools and benches that build
  /// `RuntimeConfig cfg;` by hand and never call from_env().
  bool shm_export = shm_export_from_env();

  /// Per-thread shm event-ring capacity in records, rounded up to a power
  /// of two (ORCA_SHM_RING_CAPACITY). Only meaningful with export armed.
  std::size_t shm_ring_capacity =
      env_size("ORCA_SHM_RING_CAPACITY", 4096, "a positive record count");

  /// Producer heartbeat interval in milliseconds (ORCA_SHM_HEARTBEAT_MS):
  /// how often the sense pulse flips and the telemetry mirror + crash
  /// snapshot refresh.
  int shm_heartbeat_ms = static_cast<int>(env_long(
      "ORCA_SHM_HEARTBEAT_MS", 50, 1, "a positive millisecond count"));

  /// Segment-name prefix (ORCA_SHM_PREFIX): segments are named
  /// "<prefix>.<pid>.<seq>". Tests point this at a unique prefix so
  /// concurrent suites never discover each other's fleets.
  std::string shm_prefix = shm_prefix_from_env();

  /// Callback watchdog deadline in milliseconds
  /// (ORCA_CALLBACK_DEADLINE_MS). A collector callback on the async
  /// drainer exceeding it is quarantined through the generation retire
  /// path. 0 (the default) disables the watchdog.
  int callback_deadline_ms = 0;

  /// Child-side behaviour after fork() (ORCA_FORK_MODE=disable|rearm).
  ForkMode fork_mode = ForkMode::kDisable;

  /// Team-barrier algorithm (ORCA_BARRIER=centralized|dissemination|tree).
  /// The default initializer reads the environment so *every* construction
  /// path — `RuntimeConfig cfg;` in tests and benches as much as
  /// `from_env()` — honours an env-injected selection (the ctest
  /// per-algorithm instances rely on this). Unknown values warn once per
  /// construction and keep the centralized default.
  BarrierKind barrier = barrier_kind_from_env();

  /// Schedule applied when a loop asks for Schedule::kRuntime.
  ScheduleSpec runtime_schedule{};

  /// Read OMP_NUM_THREADS, OMP_SCHEDULE, OMP_NESTED, OMP_THREAD_LIMIT and
  /// the ORCA_* extension variables.
  static RuntimeConfig from_env();

  /// Parse an OMP_SCHEDULE string such as "dynamic,4" or "guided".
  /// Unrecognized strings yield the static-even default.
  static ScheduleSpec parse_schedule(const std::string& text);

  /// Parse ORCA_EVENT_DELIVERY ("sync" / "async", case-insensitive).
  /// Unrecognized strings yield `fallback`.
  static EventDelivery parse_event_delivery(const std::string& text,
                                            EventDelivery fallback);

  /// Parse ORCA_EVENT_BACKPRESSURE ("block" / "drop_newest" /
  /// "overwrite_oldest"). Unrecognized strings yield `fallback`.
  static EventBackpressure parse_backpressure(const std::string& text,
                                              EventBackpressure fallback);

  /// Parse an ORCA_TELEMETRY mode string ("off" / "metrics" / "timeline" /
  /// "full", case-insensitive) into the two arming flags. Returns false —
  /// leaving the flags untouched — when the string is unrecognized, so the
  /// caller can warn and keep its defaults.
  static bool parse_telemetry_mode(const std::string& text, bool* timeline,
                                   bool* metrics);

  /// Parse an ORCA_FORK_MODE string ("disable" / "rearm",
  /// case-insensitive). Returns false — leaving `mode` untouched — when
  /// the string is unrecognized, so the caller can warn and keep defaults.
  static bool parse_fork_mode(const std::string& text, ForkMode* mode);

  /// Parse an ORCA_BARRIER string ("centralized" / "dissemination" /
  /// "tree", case-insensitive). Returns false — leaving `kind` untouched —
  /// when the string is unrecognized, so the caller can warn and keep the
  /// centralized default.
  static bool parse_barrier_kind(const std::string& text, BarrierKind* kind);

  /// Read ORCA_BARRIER, warning and returning kCentralized on an
  /// unrecognized value. Backs the `barrier` member's default initializer.
  static BarrierKind barrier_kind_from_env();

  /// Read ORCA_SHM_EXPORT / ORCA_SHM_PREFIX for the shm members' default
  /// initializers: a fleet operator exports whole process trees by
  /// environment, so the knobs must reach hand-built configs too.
  static bool shm_export_from_env();
  static std::string shm_prefix_from_env();

  // --- warn-and-default env readers ----------------------------------------
  // Every ORCA_* knob goes through these, so a misparse always warns with
  // one voice — "ORCA: ignoring invalid NAME=\"...\" (expected ...);
  // keeping ..." — instead of each call site inventing its own (or, worse,
  // silently falling back and looking like a runtime bug).

  /// Read an integer knob. Unset returns `fallback`; a value that fails to
  /// parse in full or is below `min_value` warns (quoting `expected`) and
  /// returns `fallback`.
  static long env_long(const char* name, long fallback, long min_value,
                       const char* expected);

  /// env_long for size-like knobs (capacities, record counts); min 1.
  static std::size_t env_size(const char* name, std::size_t fallback,
                              const char* expected);

  /// Read a string knob through a parser such as parse_fork_mode: `parse`
  /// returns false on an unrecognized value, which warns (quoting
  /// `expected`, naming `kept` as what stays) and leaves the out-param
  /// untouched.
  template <typename ParseFn>
  static void env_parsed(const char* name, ParseFn parse,
                         const char* expected, const char* kept);
};

template <typename ParseFn>
void RuntimeConfig::env_parsed(const char* name, ParseFn parse,
                               const char* expected, const char* kept) {
  const auto text = env::get(name);
  if (!text) return;
  if (!parse(*text)) {
    std::fprintf(stderr,
                 "ORCA: ignoring invalid %s=\"%s\" (expected %s); "
                 "keeping %s\n",
                 name, text->c_str(), expected, kept);
  }
}

}  // namespace orca::rt
