/// \file descriptor.hpp
/// Thread and team descriptors — the data structures the paper's runtime
/// modifications live in.
///
/// Paper Sec. IV-C: "The state values are stored in a field of the OpenMP
/// thread descriptor, a data structure that is kept within the runtime to
/// manage OpenMP threads. [...] The master thread is the only thread that
/// can run in parallel or serial mode and because of that it has two thread
/// descriptors."
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "collector/api.h"
#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "runtime/barrier.hpp"
#include "runtime/config.hpp"
#include "telemetry/telemetry.hpp"

namespace orca::collector {
class EmitterCache;
}  // namespace orca::collector

namespace orca::rt {

class Runtime;
struct TeamDescriptor;

/// Per-thread runtime bookkeeping. One exists per pool worker, one for the
/// master's serial persona, and one per member slot of an active team.
struct ThreadDescriptor {
  /// Global thread id within the owning runtime (0 = master). This is the
  /// `__ompv_gtid` value the outlined procedure receives (paper Fig. 2).
  int gtid = 0;

  /// Thread id within the current team (omp_get_thread_num()).
  int tid_in_team = 0;

  /// Current collector state. Always maintained once the runtime is
  /// initialized — "keeping track of the thread states is an inexpensive
  /// operation which consists of performing one assignment operation per
  /// state" (paper IV-C) — hence a relaxed store, no branches.
  std::atomic<int> state{THR_SERIAL_STATE};

  // Wait ids (paper IV-C2/3/4, IV-D): "Each thread keeps track of its own
  // wait IDs", incremented every time the thread enters the corresponding
  // wait. Only ever written by the owning thread.
  unsigned long ibar_id = 0;       ///< implicit-barrier id
  unsigned long ebar_id = 0;       ///< explicit-barrier id
  unsigned long lock_wait_id = 0;  ///< user-lock wait id
  unsigned long critical_wait_id = 0;
  unsigned long ordered_wait_id = 0;
  unsigned long atomic_wait_id = 0;

  /// Worksharing-loop instances this thread has encountered in the current
  /// team (selects the dispatch buffer, see WorkshareLoop).
  std::uint64_t loop_count = 0;

  /// `single` constructs encountered in the current team (claim ticket).
  std::uint64_t single_count = 0;

  /// Team this thread is currently executing in; nullptr when idle/serial.
  TeamDescriptor* team = nullptr;

  // Async-signal-safe region-id snapshots (docs/RESILIENCE.md). `team` and
  // the chain behind it are written by the *master* while a worker is
  // parked, so a signal landing on that worker cannot safely walk them.
  // Every site that changes a descriptor's team publishes the region ids
  // here (publish_region_snapshot, non-signal context); the fast path in
  // Runtime::collector_api reads only these relaxed atomics.
  std::atomic<unsigned long> snap_current_prid{0};
  std::atomic<unsigned long> snap_parent_prid{0};
  std::atomic<int> snap_in_parallel{0};  ///< 0 => PRID answers SEQUENCE_ERR

  /// Re-derive the snapshot from `team` (walking out of serialized nested
  /// teams exactly like the slow-path providers). Call after every write to
  /// `team`; defined after TeamDescriptor below.
  void publish_region_snapshot() noexcept;

  /// Pending-children counter of the task (or thread) currently executing
  /// on this thread: spawned tasks register here, and `taskwait` waits for
  /// exactly this counter — OpenMP's child-only semantics. Outside any
  /// explicit task it points at `own_task_children`.
  std::atomic<int>* task_children = nullptr;

  /// Children spawned directly from this thread's implicit task.
  std::atomic<int> own_task_children{0};

  /// Owning runtime instance.
  Runtime* runtime = nullptr;

  /// This thread's leased event-admission cache (64-bit armed mask + pinned
  /// callback generation; see collector/registry.hpp). Owned by the
  /// registry; the descriptor only carries the lease so emission sites can
  /// take the one-load fast path. nullptr for ephemeral descriptors
  /// (serialized scratch teams), which fall back to the ambient path.
  collector::EmitterCache* emitter = nullptr;

  void set_state(OMP_COLLECTOR_API_THR_STATE s) noexcept {
    state.store(static_cast<int>(s), std::memory_order_relaxed);
    // Timeline piggyback on the paper's "one assignment per state" point:
    // disarmed this is one relaxed load + branch on top of the store.
    telemetry::record_state(static_cast<int>(s));
  }
  OMP_COLLECTOR_API_THR_STATE get_state() const noexcept {
    return static_cast<OMP_COLLECTOR_API_THR_STATE>(
        state.load(std::memory_order_relaxed));
  }

  /// Reset the per-team counters when the thread joins a new team.
  void begin_team(TeamDescriptor* t, int tid) noexcept {
    team = t;
    tid_in_team = tid;
    loop_count = 0;
    single_count = 0;
    own_task_children.store(0, std::memory_order_relaxed);
    task_children = &own_task_children;
    publish_region_snapshot();
  }
};

/// Shared state of one worksharing loop instance. Teams keep a small ring
/// of these ("dispatch buffers") so a nowait loop can still be draining
/// while the next loop initializes.
struct WorkshareLoop {
  SpinLock init_mu;
  std::uint64_t sequence = 0;  ///< loop instance number occupying this buffer
  bool initialized = false;

  Schedule kind = Schedule::kStaticEven;
  long lower = 0;
  long upper = 0;
  long incr = 1;
  long chunk = 1;
  long trip_count = 0;

  /// Next unclaimed logical iteration index [0, trip_count).
  std::atomic<long> next{0};
};

/// Compiler-visible handle for a critical section / reduction lock. The
/// OpenUH compiler materializes one static variable per critical name and
/// passes its address to `__ompc_critical`; the runtime allocates the lock
/// on first use. `orca_lock_word` plays that static variable's role.
using orca_lock_word = std::atomic<void*>;

/// One parallel-region team.
struct TeamDescriptor {
  Runtime* runtime = nullptr;
  int size = 1;

  /// ORA region ids (paper IV-E): updated each time a team executes a
  /// parallel region; parent id is 0 for non-nested regions.
  unsigned long region_id = 0;
  unsigned long parent_region_id = 0;

  /// True for a real parallel region (PRID queries answer OK); false for
  /// the synthetic serial "team" wrapping serialized nested regions.
  bool is_parallel = false;

  /// Enclosing team (nullptr for top-level teams). Serialized nested
  /// "teams" use this so region-id queries can walk out to the innermost
  /// *parallel* team (paper IV-E keeps reporting the outer region's id).
  TeamDescriptor* parent_team = nullptr;

  /// Outlined procedure and its frame pointer (paper Fig. 2:
  /// `__ompdo_main1` and `stack_pointer_of_main1`).
  void (*fn)(int, void*) = nullptr;
  void* frame = nullptr;

  TeamBarrier barrier;

  /// `single` construct: monotonically increasing claim counter; the
  /// thread that advances it from k-1 to k executes the k-th single.
  std::atomic<std::uint64_t> single_claimed{0};

  /// `ordered` construct: next logical iteration allowed to enter.
  std::atomic<long> ordered_next{0};

  /// Per-team lock backing `__ompc_reduction` (the compiler-generated lock
  /// of paper Fig. 2).
  TicketLock reduction_lock;

  /// Dispatch buffers for in-flight worksharing loops.
  static constexpr std::uint64_t kLoopBuffers = 4;
  CachePadded<WorkshareLoop> loops[kLoopBuffers];

  /// Highest loop sequence number initialized so far.
  std::uint64_t loop_hwm = 0;
  SpinLock loop_mu;

  /// One deferred task: the packaged body plus the pending-children
  /// counter of its parent (decremented when this task completes).
  struct TaskFrame {
    std::function<void()> body;
    std::atomic<int>* parent_children = nullptr;
  };

  /// Explicit-task pool (OpenMP 3.0 tasking, the ORCA extension of the
  /// paper's future work): deferred tasks pushed by any team member and
  /// drained at scheduling points (taskwait, barriers).
  SpinLock task_mu;
  std::deque<TaskFrame> task_queue;
  std::atomic<int> tasks_in_flight{0};

  /// Member descriptors, indexed by tid (slot 0 = master persona).
  std::vector<ThreadDescriptor*> members;

  WorkshareLoop& loop_buffer(std::uint64_t sequence) noexcept {
    return *loops[sequence % kLoopBuffers];
  }

  void reset_for_region(unsigned long rid, unsigned long parent_rid, int n,
                        void (*outlined)(int, void*), void* fp,
                        BarrierKind barrier_kind = BarrierKind::kCentralized) {
    region_id = rid;
    parent_region_id = parent_rid;
    parent_team = nullptr;
    size = n;
    is_parallel = true;
    fn = outlined;
    frame = fp;
    barrier.init(barrier_kind, n);
    single_claimed.store(0, std::memory_order_relaxed);
    ordered_next.store(0, std::memory_order_relaxed);
    loop_hwm = 0;
    for (auto& buf : loops) {
      buf->initialized = false;
      buf->sequence = 0;
    }
    {
      std::scoped_lock lk(task_mu);
      task_queue.clear();
    }
    tasks_in_flight.store(0, std::memory_order_relaxed);
    members.assign(static_cast<std::size_t>(n), nullptr);
  }
};

inline void ThreadDescriptor::publish_region_snapshot() noexcept {
  // Same walk as the slow-path PRID providers: serialized nested "teams"
  // defer to the innermost *parallel* team (paper IV-E).
  const TeamDescriptor* t = team;
  while (t != nullptr && !t->is_parallel) t = t->parent_team;
  if (t == nullptr) {
    snap_in_parallel.store(0, std::memory_order_relaxed);
    snap_current_prid.store(0, std::memory_order_relaxed);
    snap_parent_prid.store(0, std::memory_order_relaxed);
    return;
  }
  snap_current_prid.store(t->region_id, std::memory_order_relaxed);
  snap_parent_prid.store(t->parent_region_id, std::memory_order_relaxed);
  // in_parallel last (release) so a fast-path reader that sees 1 also sees
  // the ids of this region, not a torn mix with the previous one.
  snap_in_parallel.store(1, std::memory_order_release);
}

}  // namespace orca::rt
