#include "runtime/config.hpp"

#include <algorithm>
#include <thread>

#include "common/env.hpp"

namespace orca::rt {

ScheduleSpec RuntimeConfig::parse_schedule(const std::string& text) {
  ScheduleSpec spec;
  const auto parts = env::split(text, ',');
  if (parts.empty() || parts[0].empty()) return spec;

  std::string kind;
  kind.reserve(parts[0].size());
  for (char c : parts[0]) kind.push_back(static_cast<char>(std::tolower(c)));

  if (kind == "static") {
    spec.kind = Schedule::kStaticEven;
  } else if (kind == "dynamic") {
    spec.kind = Schedule::kDynamic;
  } else if (kind == "guided") {
    spec.kind = Schedule::kGuided;
  } else {
    return spec;  // unknown kind: keep defaults, ignore any chunk
  }

  if (parts.size() > 1 && !parts[1].empty()) {
    char* end = nullptr;
    const long chunk = std::strtol(parts[1].c_str(), &end, 10);
    if (end != parts[1].c_str() && chunk > 0) {
      spec.chunk = chunk;
      if (spec.kind == Schedule::kStaticEven) spec.kind = Schedule::kStaticChunked;
    }
  }
  return spec;
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cfg.num_threads = env::get_int("OMP_NUM_THREADS", static_cast<int>(hw));
  cfg.num_threads = std::max(1, cfg.num_threads);
  cfg.max_threads = std::max(
      cfg.num_threads, env::get_int("OMP_THREAD_LIMIT", cfg.max_threads));
  cfg.nested = env::get_bool("OMP_NESTED", cfg.nested);
  cfg.atomic_events = env::get_bool("ORCA_ATOMIC_EVENTS", cfg.atomic_events);
  cfg.ordered_events = env::get_bool("ORCA_ORDERED_EVENTS", cfg.ordered_events);
  cfg.tasking = env::get_bool("ORCA_TASKING", cfg.tasking);
  cfg.per_thread_queues =
      env::get_bool("ORCA_PER_THREAD_QUEUES", cfg.per_thread_queues);
  if (const auto sched = env::get("OMP_SCHEDULE")) {
    cfg.runtime_schedule = parse_schedule(*sched);
  }
  return cfg;
}

}  // namespace orca::rt
