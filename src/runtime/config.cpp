#include "runtime/config.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/env.hpp"

namespace orca::rt {

ScheduleSpec RuntimeConfig::parse_schedule(const std::string& text) {
  ScheduleSpec spec;
  const auto parts = env::split(text, ',');
  if (parts.empty() || parts[0].empty()) return spec;

  std::string kind;
  kind.reserve(parts[0].size());
  for (char c : parts[0]) kind.push_back(static_cast<char>(std::tolower(c)));

  if (kind == "static") {
    spec.kind = Schedule::kStaticEven;
  } else if (kind == "dynamic") {
    spec.kind = Schedule::kDynamic;
  } else if (kind == "guided") {
    spec.kind = Schedule::kGuided;
  } else {
    return spec;  // unknown kind: keep defaults, ignore any chunk
  }

  if (parts.size() > 1 && !parts[1].empty()) {
    char* end = nullptr;
    const long chunk = std::strtol(parts[1].c_str(), &end, 10);
    if (end != parts[1].c_str() && chunk > 0) {
      spec.chunk = chunk;
      if (spec.kind == Schedule::kStaticEven) spec.kind = Schedule::kStaticChunked;
    }
  }
  return spec;
}

namespace {

std::string ascii_lower(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

}  // namespace

EventDelivery RuntimeConfig::parse_event_delivery(const std::string& text,
                                                  EventDelivery fallback) {
  const std::string s = ascii_lower(text);
  if (s == "sync" || s == "synchronous") return EventDelivery::kSync;
  if (s == "async" || s == "asynchronous") return EventDelivery::kAsync;
  return fallback;
}

EventBackpressure RuntimeConfig::parse_backpressure(
    const std::string& text, EventBackpressure fallback) {
  const std::string s = ascii_lower(text);
  if (s == "block") return EventBackpressure::kBlock;
  if (s == "drop_newest" || s == "drop-newest" || s == "drop") {
    return EventBackpressure::kDropNewest;
  }
  if (s == "overwrite_oldest" || s == "overwrite-oldest" || s == "overwrite") {
    return EventBackpressure::kOverwriteOldest;
  }
  return fallback;
}

bool RuntimeConfig::parse_telemetry_mode(const std::string& text,
                                         bool* timeline, bool* metrics) {
  const std::string s = ascii_lower(text);
  if (s == "off" || s == "none" || s == "0") {
    *timeline = false;
    *metrics = false;
  } else if (s == "metrics") {
    *timeline = false;
    *metrics = true;
  } else if (s == "timeline") {
    *timeline = true;
    *metrics = false;
  } else if (s == "full" || s == "on" || s == "1") {
    *timeline = true;
    *metrics = true;
  } else {
    return false;
  }
  return true;
}

bool RuntimeConfig::parse_barrier_kind(const std::string& text,
                                       BarrierKind* kind) {
  const std::string s = ascii_lower(text);
  if (s == "centralized" || s == "central") {
    *kind = BarrierKind::kCentralized;
  } else if (s == "dissemination" || s == "dissem") {
    *kind = BarrierKind::kDissemination;
  } else if (s == "tree" || s == "hierarchical") {
    *kind = BarrierKind::kTree;
  } else {
    return false;
  }
  return true;
}

BarrierKind RuntimeConfig::barrier_kind_from_env() {
  BarrierKind kind = BarrierKind::kCentralized;
  env_parsed(
      "ORCA_BARRIER",
      [&kind](const std::string& text) {
        return parse_barrier_kind(text, &kind);
      },
      "centralized|dissemination|tree", "centralized");
  return kind;
}

bool RuntimeConfig::shm_export_from_env() {
  return env::get_bool("ORCA_SHM_EXPORT", false);
}

std::string RuntimeConfig::shm_prefix_from_env() {
  if (const auto prefix = env::get("ORCA_SHM_PREFIX")) {
    if (!prefix->empty() && prefix->find('/') == std::string::npos) {
      return *prefix;
    }
    std::fprintf(stderr,
                 "ORCA: ignoring invalid ORCA_SHM_PREFIX=\"%s\" (expected "
                 "a non-empty name without '/'); keeping orca\n",
                 prefix->c_str());
  }
  return "orca";
}

bool RuntimeConfig::parse_fork_mode(const std::string& text, ForkMode* mode) {
  const std::string s = ascii_lower(text);
  if (s == "disable" || s == "disabled" || s == "off") {
    *mode = ForkMode::kDisable;
  } else if (s == "rearm" || s == "re-arm" || s == "on") {
    *mode = ForkMode::kRearm;
  } else {
    return false;
  }
  return true;
}

long RuntimeConfig::env_long(const char* name, long fallback, long min_value,
                             const char* expected) {
  // The implementation lives in env::long_or (common/env.hpp) so code
  // that does not link orca_runtime — orcamon in particular — parses its
  // knobs with the identical warn-and-default diagnostic.
  return env::long_or(name, fallback, min_value, expected);
}

std::size_t RuntimeConfig::env_size(const char* name, std::size_t fallback,
                                    const char* expected) {
  return static_cast<std::size_t>(
      env_long(name, static_cast<long>(fallback), 1, expected));
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cfg.num_threads = env::get_int("OMP_NUM_THREADS", static_cast<int>(hw));
  cfg.num_threads = std::max(1, cfg.num_threads);
  cfg.max_threads = std::max(
      cfg.num_threads, env::get_int("OMP_THREAD_LIMIT", cfg.max_threads));
  cfg.nested = env::get_bool("OMP_NESTED", cfg.nested);
  cfg.atomic_events = env::get_bool("ORCA_ATOMIC_EVENTS", cfg.atomic_events);
  cfg.ordered_events = env::get_bool("ORCA_ORDERED_EVENTS", cfg.ordered_events);
  cfg.tasking = env::get_bool("ORCA_TASKING", cfg.tasking);
  cfg.per_thread_queues =
      env::get_bool("ORCA_PER_THREAD_QUEUES", cfg.per_thread_queues);
  if (const auto delivery = env::get("ORCA_EVENT_DELIVERY")) {
    cfg.event_delivery =
        parse_event_delivery(*delivery, cfg.event_delivery);
  }
  cfg.event_ring_capacity =
      env_size("ORCA_EVENT_RING_CAPACITY", cfg.event_ring_capacity,
               "a positive record count");
  if (const auto policy = env::get("ORCA_EVENT_BACKPRESSURE")) {
    cfg.event_backpressure =
        parse_backpressure(*policy, cfg.event_backpressure);
  }
  if (const auto sched = env::get("OMP_SCHEDULE")) {
    cfg.runtime_schedule = parse_schedule(*sched);
  }
  // Telemetry knobs warn-and-default instead of silently falling back: a
  // profiling run with a typo'd mode would otherwise record nothing and
  // look like a runtime bug.
  env_parsed(
      "ORCA_TELEMETRY",
      [&cfg](const std::string& text) {
        return parse_telemetry_mode(text, &cfg.telemetry_timeline,
                                    &cfg.telemetry_metrics);
      },
      "off|metrics|timeline|full", "telemetry off");
  cfg.telemetry_ring_capacity =
      env_size("ORCA_TELEMETRY_RING", cfg.telemetry_ring_capacity,
               "a positive record count");
  if (const auto report = env::get("ORCA_TELEMETRY_REPORT")) {
    cfg.telemetry_report = *report;
  }
  if (const auto trace = env::get("ORCA_TELEMETRY_TRACE")) {
    cfg.telemetry_trace = *trace;
  }
  // Shm export knobs (docs/FLEET.md) are env-backed *defaults* — read at
  // RuntimeConfig construction like ORCA_BARRIER, so they reach every
  // process in a fleet, not just from_env() callers.
  // Resilience knobs use the same warn-and-default contract: a typo'd
  // value must never silently disarm crash dumps or the watchdog.
  if (const auto dump = env::get("ORCA_CRASH_DUMP")) {
    cfg.crash_dump = *dump;
  }
  cfg.callback_deadline_ms = static_cast<int>(
      env_long("ORCA_CALLBACK_DEADLINE_MS", cfg.callback_deadline_ms, 0,
               "a non-negative millisecond count"));
  env_parsed(
      "ORCA_FORK_MODE",
      [&cfg](const std::string& text) {
        return parse_fork_mode(text, &cfg.fork_mode);
      },
      "disable|rearm", "disable");
  return cfg;
}

}  // namespace orca::rt
