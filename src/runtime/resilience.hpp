/// \file resilience.hpp
/// Process-level crash and fork survival for the profiling runtime.
///
/// Two facilities live here, both deliberately runtime-instance-agnostic
/// because POSIX signal dispositions and pthread_atfork handlers are
/// process-global:
///
///  * **Crash postmortem dump** — SIGSEGV/SIGBUS/SIGABRT handlers that
///    flush registered data sections to ORCA_CRASH_DUMP using only
///    async-signal-safe primitives (open/write/close, no allocation, no
///    locks, no stdio) and then re-raise with the default disposition so
///    the process still dies with the original signal.
///  * **fork() safety** — pthread_atfork hooks that quiesce every
///    registered Runtime before the kernel snapshots the address space,
///    so the child never inherits a lock held by a thread that does not
///    exist there. The child then disarms or re-arms collection per
///    RuntimeConfig::fork_mode.
///
/// See docs/RESILIENCE.md for the dump format and the fork-mode contract.
#pragma once

#include <cstdint>

namespace orca::rt {

class Runtime;

namespace resilience {

/// A crash-dump contributor: called from the crash signal handler with the
/// open dump fd. The function must itself be async-signal-safe — use the
/// write_* helpers below, never allocate, lock, or touch stdio.
using CrashSectionFn = void (*)(void* ctx, int fd);

/// Register a dump section. Returns the claimed slot (>= 0), or -1 when
/// the fixed section table is full. Sections are emitted in slot order
/// under a "section <name>" heading; `name` must outlive the registration.
int register_crash_section(const char* name, CrashSectionFn fn,
                           void* ctx) noexcept;

/// Release a slot returned by register_crash_section (no-op for -1).
void unregister_crash_section(int slot) noexcept;

/// Install the crash handlers writing to `path` (copied into preallocated
/// storage; at most 511 bytes are kept). Idempotent: the first arming wins
/// and later calls only update nothing. Returns true when the handlers are
/// (now) installed.
bool arm_crash_dump(const char* path) noexcept;

/// True once arm_crash_dump() installed the handlers.
bool crash_dump_armed() noexcept;

/// Install the crash handlers with *no* dump file: registered sections
/// still run (with fd = -1, which the write_* helpers below ignore), so
/// contributors that write somewhere else — the shm crash region — get
/// their postmortem even when ORCA_CRASH_DUMP is unset. If a dump path
/// was armed first, this is a no-op; if the path arrives later,
/// arm_crash_dump() upgrades the already-installed handlers.
bool arm_crash_sections() noexcept;

// --- async-signal-safe formatting helpers ---------------------------------

/// write(2) a NUL-terminated string, restarting on EINTR.
void write_str(int fd, const char* s) noexcept;

/// write(2) `v` in decimal.
void write_u64(int fd, unsigned long long v) noexcept;

/// write(2) "<key> <v>\n".
void write_kv(int fd, const char* key, unsigned long long v) noexcept;

// --- fork() support -------------------------------------------------------

/// Enroll `rt` in the pthread_atfork quiesce protocol (registers the
/// process-wide handlers on first use). Balanced by
/// unregister_fork_participant() in the Runtime destructor.
void register_fork_participant(Runtime* rt) noexcept;

void unregister_fork_participant(Runtime* rt) noexcept;

/// fork() calls observed by the atfork prepare hook since process start
/// (the child inherits the pre-fork count, already incremented for the
/// fork that created it).
std::uint64_t fork_events() noexcept;

}  // namespace resilience
}  // namespace orca::rt
