#include "runtime/barrier.hpp"

#include <chrono>
#include <thread>

namespace orca::rt {

const char* barrier_kind_name(BarrierKind kind) noexcept {
  switch (kind) {
    case BarrierKind::kCentralized: return "centralized";
    case BarrierKind::kDissemination: return "dissemination";
    case BarrierKind::kTree: return "tree";
  }
  return "?";
}

namespace {

/// Flag-spin helper for the dissemination/tree algorithms: bounded busy
/// spin, then OS yields, then short sleeps. The sleep tier matters on the
/// oversubscribed configurations (32 threads on one core): a pure yield
/// loop stays live but can starve the signalling thread of whole
/// scheduling quanta, while a 50µs nap lets stragglers through without
/// the cost of a full futex rendezvous per flag.
class FlagWait {
 public:
  void pause() noexcept {
    if (waits_ < kSpinBeforeYield) {
      cpu_relax();
    } else if (waits_ < kSpinBeforeYield + kYieldBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++waits_;
  }

 private:
  static constexpr int kYieldBeforeSleep = 512;
  int waits_ = 0;
};

int ceil_log2(int n) noexcept {
  int rounds = 0;
  for (int reach = 1; reach < n; reach <<= 1) ++rounds;
  return rounds;
}

}  // namespace

// --- centralized ------------------------------------------------------------

void CentralizedBarrier::arrive_and_wait(int tid) {
  (void)tid;  // the counter is the rendezvous; member identity is irrelevant
  if (size_ <= 1) return;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
    arrived_.store(0, std::memory_order_relaxed);
    {
      // The lock orders the generation flip with a waiter's predicate
      // check; without it a late sleeper could miss the wake-up forever.
      std::scoped_lock lk(mu_);
      generation_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }
  for (int i = 0; i < kSpinBeforeYield; ++i) {
    if (generation_.load(std::memory_order_acquire) != gen) return;
    cpu_relax();
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return generation_.load(std::memory_order_acquire) != gen;
  });
}

// --- dissemination ----------------------------------------------------------

void DisseminationBarrier::init(int size) {
  size_ = size;
  rounds_ = ceil_log2(size);
  if (slots_.size() < static_cast<std::size_t>(size)) {
    slots_ = std::vector<CachePadded<Slot>>(static_cast<std::size_t>(size));
    return;  // freshly value-initialized: all inboxes and episodes are 0
  }
  for (auto& slot : slots_) {
    slot->episode = 0;
    for (auto& inbox : slot->inbox) inbox.store(0, std::memory_order_relaxed);
  }
}

void DisseminationBarrier::arrive_and_wait(int tid) {
  if (size_ <= 1) return;
  Slot& self = *slots_[static_cast<std::size_t>(tid)];
  const std::uint64_t gen = ++self.episode;
  for (int r = 0; r < rounds_; ++r) {
    const int peer = (tid + (1 << r)) % size_;
    // Signal the round-r partner, then wait for our own round-r signal.
    // Episode numbers only grow, so a partner already in the *next*
    // episode (it finished this barrier and re-entered) satisfies the
    // `>=` wait — the reuse case sense-reversal bits get wrong.
    slots_[static_cast<std::size_t>(peer)]->inbox[r].store(
        gen, std::memory_order_release);
    FlagWait wait;
    while (self.inbox[r].load(std::memory_order_acquire) < gen) wait.pause();
  }
}

// --- tree -------------------------------------------------------------------

void TreeBarrier::init(int size) {
  size_ = size;
  if (nodes_.size() < static_cast<std::size_t>(size)) {
    nodes_ = std::vector<CachePadded<Node>>(static_cast<std::size_t>(size));
  } else {
    for (auto& node : nodes_) {
      node->episode = 0;
      node->arrived.store(0, std::memory_order_relaxed);
    }
  }
  release_->store(0, std::memory_order_relaxed);
}

void TreeBarrier::arrive_and_wait(int tid) {
  if (size_ <= 1) return;
  Node& self = *nodes_[static_cast<std::size_t>(tid)];
  const std::uint64_t gen = ++self.episode;

  // Gather phase: wait for each child subtree. A child's release-store of
  // `arrived` happens after it gathered its own children, so observing it
  // (acquire) carries the whole subtree's pre-barrier writes upward.
  for (int c = kFanout * tid + 1; c <= kFanout * tid + kFanout && c < size_;
       ++c) {
    FlagWait wait;
    while (nodes_[static_cast<std::size_t>(c)]->arrived.load(
               std::memory_order_acquire) < gen) {
      wait.pause();
    }
  }

  if (tid == 0) {
    // Root saw every subtree: publish the release generation.
    release_->store(gen, std::memory_order_release);
    return;
  }
  self.arrived.store(gen, std::memory_order_release);
  FlagWait wait;
  while (release_->load(std::memory_order_acquire) < gen) wait.pause();
}

// --- facade -----------------------------------------------------------------

void TeamBarrier::init(BarrierKind kind, int size) {
  if (impl_ == nullptr || impl_->kind() != kind) {
    switch (kind) {
      case BarrierKind::kDissemination:
        impl_ = std::make_unique<DisseminationBarrier>();
        break;
      case BarrierKind::kTree:
        impl_ = std::make_unique<TreeBarrier>();
        break;
      case BarrierKind::kCentralized:
        impl_ = std::make_unique<CentralizedBarrier>();
        break;
    }
  }
  impl_->init(size);
}

}  // namespace orca::rt
