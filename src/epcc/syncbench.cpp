#include "epcc/syncbench.hpp"

#include <atomic>

#include "common/clock.hpp"
#include "runtime/ompc_api.h"
#include "translate/omp.hpp"

namespace orca::epcc {

const std::vector<Directive>& all_directives() {
  static const std::vector<Directive> directives = {
      Directive::kParallel, Directive::kFor,      Directive::kParallelFor,
      Directive::kBarrier,  Directive::kSingle,   Directive::kCritical,
      Directive::kLock,     Directive::kOrdered,  Directive::kAtomic,
      Directive::kReduction, Directive::kMaster,
  };
  return directives;
}

const char* name(Directive directive) {
  switch (directive) {
    case Directive::kParallel: return "PARALLEL";
    case Directive::kFor: return "FOR";
    case Directive::kParallelFor: return "PARALLEL FOR";
    case Directive::kBarrier: return "BARRIER";
    case Directive::kSingle: return "SINGLE";
    case Directive::kCritical: return "CRITICAL";
    case Directive::kLock: return "LOCK/UNLOCK";
    case Directive::kOrdered: return "ORDERED";
    case Directive::kAtomic: return "ATOMIC";
    case Directive::kReduction: return "REDUCTION";
    case Directive::kMaster: return "MASTER";
  }
  return "?";
}

SyncBench::SyncBench(Options opts) : opts_(opts) {}

void SyncBench::delay(int length) {
  // EPCC's delay(): a floating-point dependency chain the optimizer cannot
  // collapse, touching no shared memory.
  volatile float a = 0.0f;
  for (int i = 0; i < length; ++i) a = a + static_cast<float>(i);
}

double SyncBench::reference_seconds() {
  // Payload-only reference: inner_reps delays on one thread, best of three
  // (EPCC uses the mean of repeated references; min is more robust against
  // scheduler noise on shared machines).
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    for (int k = 0; k < opts_.inner_reps; ++k) delay(opts_.delay_length);
    best = std::min(best, sw.elapsed());
  }
  return best;
}

double SyncBench::time_directive(Directive directive) {
  const int reps = opts_.inner_reps;
  const int delay_len = opts_.delay_length;
  const int threads = opts_.num_threads;

  Stopwatch sw;
  switch (directive) {
    case Directive::kParallel: {
      for (int k = 0; k < reps; ++k) {
        omp::parallel([&](int) { delay(delay_len); }, threads);
      }
      break;
    }
    case Directive::kFor: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              omp::for_static(0, threads - 1, 1,
                              [&](long long) { delay(delay_len); });
            }
          },
          threads);
      break;
    }
    case Directive::kParallelFor: {
      for (int k = 0; k < reps; ++k) {
        omp::parallel_for(0, threads - 1,
                          [&](long long) { delay(delay_len); }, threads);
      }
      break;
    }
    case Directive::kBarrier: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              delay(delay_len);
              omp::barrier();
            }
          },
          threads);
      break;
    }
    case Directive::kSingle: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              omp::single([&] { delay(delay_len); });
            }
          },
          threads);
      break;
    }
    case Directive::kCritical: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              omp::critical([&] { delay(delay_len); });
            }
          },
          threads);
      break;
    }
    case Directive::kLock: {
      omp_lock_t lock;
      omp_init_lock(&lock);
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              omp_set_lock(&lock);
              delay(delay_len);
              omp_unset_lock(&lock);
            }
          },
          threads);
      omp_destroy_lock(&lock);
      break;
    }
    case Directive::kOrdered: {
      // An ordered loop over inner_reps iterations, one delay each.
      omp::parallel(
          [&](int) {
            omp::for_dynamic(
                0, reps - 1, 1,
                [&](long long i) {
                  omp::ordered(i, [&] { delay(delay_len); });
                },
                omp::Sched::kDynamic, 1);
          },
          threads);
      break;
    }
    case Directive::kAtomic: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              delay(delay_len);
              omp::atomic_update([] {
                static volatile long counter = 0;
                counter = counter + 1;
              });
            }
          },
          threads);
      break;
    }
    case Directive::kReduction: {
      for (int k = 0; k < reps; ++k) {
        (void)omp::parallel_reduce(
            0, threads - 1, 0.0, [](double a, double b) { return a + b; },
            [&](long long) {
              delay(delay_len);
              return 1.0;
            },
            threads);
      }
      break;
    }
    case Directive::kMaster: {
      omp::parallel(
          [&](int) {
            for (int k = 0; k < reps; ++k) {
              omp::master([&] { delay(delay_len); });
            }
          },
          threads);
      break;
    }
  }
  return sw.elapsed();
}

Result SyncBench::measure(Directive directive) {
  if (reference_cache_ < 0) reference_cache_ = reference_seconds();
  const double reference = reference_cache_;

  SampleSet overheads;
  Stopwatch total;
  for (int rep = 0; rep < opts_.outer_reps; ++rep) {
    const double elapsed = time_directive(directive);
    const double per_call_overhead =
        (elapsed - reference) / static_cast<double>(opts_.inner_reps);
    overheads.add(per_call_overhead * 1e6);  // microseconds
  }

  const RunningStats stats = overheads.trimmed_stats();
  Result result;
  result.directive = directive;
  result.overhead_us = stats.mean();
  result.min_overhead_us = overheads.stats().min();
  result.stddev_us = stats.stddev();
  result.reference_us =
      reference / static_cast<double>(opts_.inner_reps) * 1e6;
  result.total_seconds = total.elapsed();
  return result;
}

std::vector<Result> SyncBench::measure_all() {
  std::vector<Result> results;
  results.reserve(all_directives().size());
  for (const Directive d : all_directives()) results.push_back(measure(d));
  return results;
}

}  // namespace orca::epcc
