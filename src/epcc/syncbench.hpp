/// \file syncbench.hpp
/// EPCC-style synchronization microbenchmarks over the ORCA runtime —
/// the workload of the paper's Figure 4.
///
/// Methodology (EPCC syncbench): a reference loop measures the cost of the
/// delay payload alone; each directive test measures `inner_reps`
/// executions of the construct wrapping the same payload; the per-call
/// directive overhead is the difference divided by `inner_reps`. Outer
/// repetitions give mean/stddev, with EPCC's mean±3σ outlier trimming.
///
/// The paper's experiment enables/disables ORA data collection around this
/// harness and reports the percentage increase per directive
/// (bench/bench_fig4_epcc.cpp drives that comparison).
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace orca::epcc {

/// The EPCC syncbench directive set.
enum class Directive {
  kParallel,
  kFor,
  kParallelFor,
  kBarrier,
  kSingle,
  kCritical,
  kLock,
  kOrdered,
  kAtomic,
  kReduction,
  kMaster,
};

/// All directives, in report order.
const std::vector<Directive>& all_directives();

/// Display name ("PARALLEL", "LOCK/UNLOCK", ...).
const char* name(Directive directive);

struct Options {
  int num_threads = 4;
  int outer_reps = 10;    ///< statistical repetitions
  int inner_reps = 128;   ///< construct executions per timing
  int delay_length = 500; ///< payload size (EPCC delay loop iterations)
};

/// Result of one directive measurement.
struct Result {
  Directive directive{};
  double overhead_us = 0;     ///< mean per-call overhead, microseconds
  double min_overhead_us = 0; ///< best-of across outer repetitions (the
                              ///< robust statistic on noisy/shared hosts)
  double stddev_us = 0;       ///< across outer repetitions
  double reference_us = 0;    ///< payload-only reference per inner rep
  double total_seconds = 0;   ///< wall time of the whole measurement
};

/// The benchmark harness. One instance per thread-count configuration.
class SyncBench {
 public:
  explicit SyncBench(Options opts);

  /// Measure a single directive.
  Result measure(Directive directive);

  /// Measure the full EPCC set.
  std::vector<Result> measure_all();

  const Options& options() const noexcept { return opts_; }

  /// The EPCC delay payload (volatile float loop; resists optimization).
  static void delay(int length);

 private:
  double reference_seconds();
  double time_directive(Directive directive);

  Options opts_;
  double reference_cache_ = -1;
};

}  // namespace orca::epcc
